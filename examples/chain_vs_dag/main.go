// Chain vs DAG: the paper's headline comparison, runnable in seconds.
//
// At a fixed Byzantine share t/n = 0.4, the access rate λ is swept.
// Theorem 5.4 predicts the Chain's resilience bound 1/(1+λ(n−t)) dives
// below 0.4 as the rate grows — the tie-breaker adversary then flips the
// decision. Theorem 5.6 predicts the DAG does not care about λ at all.
//
//	go run ./examples/chain_vs_dag
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	const (
		n, t   = 10, 4
		k      = 41
		trials = 40
	)
	fmt.Printf("Chain vs DAG at t/n = %.1f (n=%d, k=%d, %d trials per point)\n\n", float64(t)/n, n, k, trials)
	fmt.Printf("%-6s %-8s %-22s %-16s %-16s\n", "λ", "λ(n-t)", "chain bound 1/(1+λ(n-t))", "chain validity", "dag validity")
	for _, lambda := range []float64{0.05, 0.1, 0.25, 0.5, 1.0} {
		chainSum, err := core.RunTrials(core.Config{
			Protocol: core.Chain, N: n, T: t, Lambda: lambda, K: k,
			TieBreak: core.TieRandom, Attack: core.AttackTieBreak, Seed: 1,
		}, trials)
		if err != nil {
			log.Fatal(err)
		}
		dagSum, err := core.RunTrials(core.Config{
			Protocol: core.Dag, N: n, T: t, Lambda: lambda, K: k,
			Pivot: core.PivotGhost, Attack: core.AttackPrivateChain, Seed: 1,
		}, trials)
		if err != nil {
			log.Fatal(err)
		}
		bound := 1 / (1 + lambda*float64(n-t))
		fmt.Printf("%-6g %-8.2g %-22.3f %3d/%-12d %3d/%-12d\n",
			lambda, lambda*float64(n-t), bound, chainSum.Validity, trials, dagSum.Validity, trials)
	}
	fmt.Println("\nThe chain column collapses once the bound drops below t/n = 0.4;")
	fmt.Println("the DAG column stays flat — why BlockDAGs excel blockchains.")
}

// Adversary lab: every attack of Section 5 against both structures, with
// the structural damage made visible — forks, orphaned blocks, Byzantine
// share of the decision prefix and the resulting verdicts.
//
//	go run ./examples/adversary_lab
package main

import (
	"fmt"
	"log"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/dag"
)

func main() {
	const (
		n, t   = 10, 4
		lambda = 1.0
		k      = 41
		trials = 25
	)
	fmt.Printf("Adversary lab: n=%d t=%d λ=%g k=%d, %d trials each\n\n", n, t, lambda, k, trials)
	fmt.Printf("%-9s %-14s %-13s  %-22s %s\n", "protocol", "attack", "validity", "byz share of prefix", "structure damage")

	cases := []struct {
		protocol core.Protocol
		tb       core.TieBreak
		attack   core.Attack
	}{
		{core.Chain, core.TieRandom, core.AttackSilent},
		{core.Chain, core.TieRandom, core.AttackFlip},
		{core.Chain, core.TieAdversarial, core.AttackFork},
		{core.Chain, core.TieRandom, core.AttackTieBreak},
		{core.Chain, core.TieRandom, core.AttackEquivocate},
		{core.Dag, "", core.AttackSilent},
		{core.Dag, "", core.AttackFlip},
		{core.Dag, "", core.AttackPrivateChain},
	}
	for _, tc := range cases {
		valid := 0
		var byzShare, damage float64
		for seed := uint64(0); seed < trials; seed++ {
			r, err := core.Run(core.Config{
				Protocol: tc.protocol, N: n, T: t, Lambda: lambda, K: k,
				TieBreak: tc.tb, Attack: tc.attack, Seed: seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			if r.Verdict.Validity {
				valid++
			}
			share, dmg := analyze(r, string(tc.protocol), k)
			byzShare += share
			damage += dmg
		}
		dmgLabel := "orphaned blocks"
		if tc.protocol == core.Dag {
			dmgLabel = "blocks outside ordering"
		}
		fmt.Printf("%-9s %-14s %3d/%-9d  %-22.3f %.1f %s\n",
			tc.protocol, tc.attack, valid, trials, byzShare/trials, damage/trials, dmgLabel)
	}
	fmt.Println("\nReading the table: the fork attack needs adversarial ties (Theorem 5.3);")
	fmt.Println("the tie-break attack kills the chain at high λ (Theorem 5.4); the DAG")
	fmt.Println("wastes nothing and holds validity (Theorem 5.6).")
}

// analyze returns the Byzantine share of the decision prefix and the count
// of blocks that do not contribute to it (orphans / unordered blocks).
func analyze(r *core.Result, protocol string, k int) (byzShare, damage float64) {
	view := r.FinalView
	switch protocol {
	case "chain":
		tree := chain.Build(view)
		tips := tree.LongestTips()
		if len(tips) == 0 {
			return 0, 0
		}
		ids := tree.ChainTo(tips[0])
		if len(ids) > k {
			ids = ids[:k]
		}
		byz := 0
		for _, id := range ids {
			if r.Roster.IsByzantine(view.Message(id).Author) {
				byz++
			}
		}
		return float64(byz) / float64(len(ids)), float64(tree.Forks())
	case "dag":
		d := dag.Build(view)
		order := d.Linearize(d.GhostPivot())
		unordered := d.Size() - len(order)
		if len(order) > k {
			order = order[:k]
		}
		if len(order) == 0 {
			return 0, 0
		}
		byz := 0
		for _, id := range order {
			if r.Roster.IsByzantine(view.Message(id).Author) {
				byz++
			}
		}
		return float64(byz) / float64(len(order)), float64(unordered)
	}
	return 0, 0
}

// Quickstart: the smallest end-to-end use of the library — Byzantine
// agreement on a BlockDAG in the append memory, 7 nodes of which 2 are
// Byzantine and run the Lemma 5.5 private-chain attack.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/appendmem"
	"repro/internal/core"
)

func main() {
	cfg := core.Config{
		Protocol: core.Dag, // Algorithm 6: BA on the BlockDAG
		N:        7, T: 2,  // 7 nodes, last 2 Byzantine
		Lambda: 0.5, // each node gets a memory-access token every 2Δ on average
		K:      21,  // decide on the sign of the first 21 ordered values
		Attack: core.AttackPrivateChain,
		Seed:   42,
	}
	r, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Byzantine agreement on the DAG (append memory model)")
	fmt.Printf("  n=%d t=%d λ=%g k=%d adversary=%s\n", cfg.N, cfg.T, cfg.Lambda, cfg.K, cfg.Attack)
	fmt.Printf("  agreement:   %v\n", r.Verdict.Agreement)
	fmt.Printf("  validity:    %v\n", r.Verdict.Validity)
	fmt.Printf("  termination: %v\n", r.Verdict.Termination)
	fmt.Printf("  memory size: %d appends (%d Byzantine)\n", r.TotalAppends, r.ByzAppends)
	fmt.Printf("  duration:    %.2f Δ\n", float64(r.Duration))
	for i := 0; i < cfg.N; i++ {
		id := appendmem.NodeID(i)
		if r.Roster.IsByzantine(id) {
			continue
		}
		fmt.Printf("  node %d decided %+d\n", i, r.Decision[i])
	}
}

// Impossibility: Section 2 of the paper, live. The model checker
// exhaustively explores deterministic consensus protocols in the append
// memory and shows (1) every candidate fails a consensus property
// (Theorem 2.1), (2) the proof's machinery — a bivalent initial
// configuration and an explicit never-deciding schedule — on an FLP-style
// protocol, and (3) the §1.2 contrast: the same exhaustive treatment
// certifies that sticky bits DO solve consensus, because they order
// concurrent writes and the append memory will not.
//
//	go run ./examples/impossibility
package main

import (
	"fmt"

	"repro/internal/bivalence"
	"repro/internal/stickybit"
)

func main() {
	fmt.Println("-- 1. Theorem 2.1, exhaustively (n = 3) --")
	fmt.Printf("%-34s %-10s %-9s %-12s\n", "protocol", "agreement", "validity", "termination")
	for _, p := range bivalence.Family(3) {
		v := bivalence.CheckTheorem(p, 3, 300000)
		fmt.Printf("%-34s %-10v %-9v %-12v\n", v.Protocol, v.Agreement, v.Validity, v.Termination)
		if v.OK() {
			panic("a protocol solved 1-resilient consensus — impossible!")
		}
	}
	fmt.Println("every member fails at least one property, as the theorem demands")

	fmt.Println("\n-- 2. the proof's adversary, on retry-vote (inputs 0,1,1) --")
	p := &bivalence.RetryVote{N: 3}
	g := bivalence.Explore(p, bivalence.Initial(p, []int{0, 1, 1}), 30000)
	fmt.Printf("explored %d configurations; initial bivalent (Lemma 2.2): %v\n",
		g.Size(), g.Bivalent(g.Root()))
	trace, ok := g.NonDecidingSchedule(g.Root(), 5)
	fmt.Printf("non-deciding schedule, 5 round-robin cycles: ok=%v, %d configurations, all bivalent+undecided\n",
		ok, len(trace))

	fmt.Println("\n-- 3. the §1.2 separation: sticky bits are stronger --")
	for n := 2; n <= 4; n++ {
		rep := stickybit.Verify(n)
		fmt.Printf("sticky-bit consensus, n=%d: agreement=%v validity=%v 1-res-termination=%v (%d configs)\n",
			n, rep.Agreement, rep.Validity, rep.Termination, rep.Configurations)
	}
	fmt.Println("the sticky bit breaks write ties; the append memory refuses to — that single power is consensus")
}

// Message passing: the append memory simulated over a signed network
// (Section 4, Algorithms 2 and 3), exercised end to end:
//
//  1. appends terminate on majority acks and reach every correct view;
//
//  2. a reader that missed the broadcast still recovers the record
//     through the read quorum (Lemma 4.2's quorum intersection);
//
//  3. a Byzantine node fails to forge a correct node's record (real
//     ed25519 verification) but can append two values in parallel —
//     which the append memory permits too;
//
//  4. a one-round crash-tolerant consensus runs on top, the paper's
//     observation that crash-failure agreement needs only one round;
//
//  5. Algorithm 1 itself — the synchronous Byzantine agreement protocol
//     defined over the append memory — runs unchanged over the simulated
//     memory and reaches the same decisions as the native run.
//
//     go run ./examples/msgpassing
package main

import (
	"fmt"

	"repro/internal/abdsim"
	"repro/internal/appendmem"
	"repro/internal/msgnet"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func main() {
	const n = 5
	s := sim.New()
	nw := msgnet.New(s, xrand.New(2024, 7), n, 1.0)
	cluster := abdsim.NewCluster(nw, []appendmem.NodeID{4}) // node 4 Byzantine

	fmt.Println("-- 1. appends with quorum acks --")
	inputs := []int64{+1, +1, -1, +1}
	for i := 0; i < 4; i++ {
		i := i
		cluster.Nodes[i].Append(inputs[i], 0, func() {
			fmt.Printf("  node %d: append %+d terminated at t=%.2f\n", i, inputs[i], float64(s.Now()))
		})
	}
	s.Run()

	fmt.Println("-- 2. read quorum recovers everything --")
	cluster.Nodes[0].Read(func(view []abdsim.SignedRecord) {
		fmt.Printf("  node 0 read %d records\n", len(view))
	})
	s.Run()

	fmt.Println("-- 3. Byzantine powers and limits --")
	forged := cluster.Byz[4].ForgeAppend(0, -99)
	cluster.Byz[4].AppendEquivocate(+1, -1, 0)
	s.Run()
	seen := 0
	for _, sr := range cluster.Nodes[1].LocalView() {
		if sr.Record.Key() == forged.Key() {
			seen++
		}
	}
	fmt.Printf("  forged record claiming node 0 accepted anywhere: %v\n", seen > 0)
	fmt.Printf("  node 1 view size after equivocation: %d (both parallel values accepted)\n",
		cluster.Nodes[1].ViewSize())

	fmt.Println("-- 4. one-round consensus over the simulated memory --")
	decisions := make([]int64, 4)
	for i := 0; i < 4; i++ {
		i := i
		cluster.Nodes[i].Read(func(view []abdsim.SignedRecord) {
			var sum int64
			for _, sr := range view {
				if sr.Record.Author != 4 { // count only the agreed round-0 inputs
					sum += sr.Record.Value
				}
			}
			decisions[i] = node.Sign(sum)
		})
	}
	s.Run()
	fmt.Printf("  decisions: %v\n", decisions)

	st := nw.Stats()
	fmt.Printf("-- traffic: %d messages, %d bytes (append=%d ack=%d read=%d view=%d) --\n",
		st.Messages, st.Bytes, st.ByKind["append"], st.ByKind["ack"], st.ByKind["read"], st.ByKind["view"])

	fmt.Println("-- 5. Algorithm 1 over the simulated memory --")
	s2 := sim.New()
	nw2 := msgnet.New(s2, xrand.New(2025, 8), n, 1.0)
	cluster2 := abdsim.NewCluster(nw2, nil)
	res, err := abdsim.RunSyncBA(s2, cluster2, []int64{+1, +1, +1, -1, -1}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  verdict: agreement=%v validity=%v termination=%v\n",
		res.Verdict.Agreement, res.Verdict.Validity, res.Verdict.Termination)
	fmt.Printf("  decisions: %v (majority +1)\n", res.Outcome.Decision)
	fmt.Printf("  simulation cost: %d messages, %d bytes — vs 2 ops/node/round natively\n",
		res.Stats.Messages, res.Stats.Bytes)
}

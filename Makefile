# appendmemory — build / test / reproduce targets.

GO ?= go

.PHONY: all build test vet check cover bench experiments quick examples clean

all: build vet test check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full verification: vet, race-enabled tests, and every paper prediction
# evaluated against a quick run (amexp exits 2 if any check fails).
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) run ./cmd/amexp -e all -quick -check

cover:
	$(GO) test ./... -cover

# One benchmark per experiment plus substrate micro-benches.
bench:
	$(GO) test -bench=. -benchmem

# Regenerate every experiment at full scale (the EXPERIMENTS.md numbers).
experiments:
	$(GO) run ./cmd/amexp -e all

# Fast smoke pass over everything.
quick:
	$(GO) run ./cmd/amexp -e all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/chain_vs_dag
	$(GO) run ./examples/msgpassing
	$(GO) run ./examples/adversary_lab
	$(GO) run ./examples/impossibility

clean:
	$(GO) clean ./...

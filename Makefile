# appendmemory — build / test / reproduce targets.

GO ?= go

.PHONY: all build test vet check cover bench bench-diff experiments quick examples scenarios distributed search-smoke clean

all: build vet test check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full verification: vet, race-enabled tests, and every paper prediction
# evaluated against a quick run (amexp exits 2 if any check fails).
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) run ./cmd/amexp -e all -quick -check

cover:
	$(GO) test ./... -cover

# One benchmark per experiment plus substrate micro-benches. The run is
# piped through cmd/benchjson, which echoes the human-readable output and
# writes the machine-readable record to $(BENCH). Each benchmark runs
# BENCHCOUNT times and benchjson records the per-metric minimum, which
# filters out scheduling/GC interference spikes; override BENCHTIME for
# steadier numbers still (e.g. make bench BENCHTIME=1s) and BENCH to
# record under a different name (e.g. make bench BENCH=BENCH_local.json).
BENCHTIME ?= 0.2s
BENCHCOUNT ?= 3
BENCH ?= BENCH_PR10.json
BENCH_BASE ?= BENCH_PR9.json
BENCH_THRESHOLD ?= 0.35
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) | $(GO) run ./cmd/benchjson -o $(BENCH)

# Diff the committed benchmark records: fails if any B/op or allocs/op
# metric in $(BENCH) regressed more than BENCH_THRESHOLD (fractional)
# against $(BENCH_BASE), or any ns/op more than twice that — the memory
# metrics are deterministic, wall clock on a shared 1-CPU box is not.
bench-diff:
	$(GO) run ./cmd/benchjson -baseline $(BENCH_BASE) -compare $(BENCH) -threshold $(BENCH_THRESHOLD)

# Regenerate every experiment at full scale (the EXPERIMENTS.md numbers).
experiments:
	$(GO) run ./cmd/amexp -e all

# Fast smoke pass over everything.
quick:
	$(GO) run ./cmd/amexp -e all -quick

# Parse and run every shipped scenario file (one trial per point — a
# structural smoke pass; raise -trials for real numbers).
scenarios:
	@set -e; for f in examples/scenarios/*.json; do \
		echo "== $$f"; $(GO) run ./cmd/amrun -spec $$f -trials 1; \
	done

# Distributed-sweep smoke: the same sweep run in-process and sharded
# across two spawned worker processes must produce byte-identical output,
# and a warm re-run over the cache directory must dispatch nothing.
DIST_ARGS ?= -protocol dag -n 10 -t 4 -lambda 1 -k 21 -attack private-chain \
	-trials 40 -sweep lambda=0.5,1,2 -metrics ok,validity,decide-time -format json
distributed:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/amrun ./cmd/amrun; \
	$$tmp/amrun $(DIST_ARGS) > $$tmp/local.json; \
	$$tmp/amrun $(DIST_ARGS) -distribute 2 -cache $$tmp/cache -timing > $$tmp/dist.json 2> $$tmp/cold.txt; \
	cmp $$tmp/local.json $$tmp/dist.json; \
	$$tmp/amrun $(DIST_ARGS) -distribute 2 -cache $$tmp/cache -timing > $$tmp/warm.json 2> $$tmp/warm.txt; \
	cmp $$tmp/local.json $$tmp/warm.json; \
	cat $$tmp/cold.txt $$tmp/warm.txt; \
	grep -q 'dispatched=0' $$tmp/warm.txt; \
	echo "distributed smoke: byte-identical, warm run fully cache-served"

# Adversary-search smoke (~5s): a small-budget search must beat or match
# the hand-coded preset it started from, and every promoted counterexample
# committed under examples/scenarios/ must still reproduce its violation.
SEARCH_ARGS ?= -protocol chain -n 9 -t 3 -lambda 0.5 -k 41 -tiebreak adversarial \
	-attack fork -budget 960 -rungs 8,32 -seed 1
search-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/amsearch ./cmd/amsearch; \
	$$tmp/amsearch $(SEARCH_ARGS) | tee $$tmp/out.txt; \
	grep -q '^best: ' $$tmp/out.txt; \
	for f in examples/scenarios/searched-*.json; do \
		$$tmp/amsearch -replay $$f; \
	done; \
	echo "search smoke: search ran, all promoted counterexamples reproduce"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/chain_vs_dag
	$(GO) run ./examples/msgpassing
	$(GO) run ./examples/adversary_lab
	$(GO) run ./examples/impossibility

clean:
	$(GO) clean ./...

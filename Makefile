# appendmemory — build / test / reproduce targets.

GO ?= go

.PHONY: all build test vet cover bench experiments quick examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

cover:
	$(GO) test ./... -cover

# One benchmark per experiment plus substrate micro-benches.
bench:
	$(GO) test -bench=. -benchmem

# Regenerate every experiment at full scale (the EXPERIMENTS.md numbers).
experiments:
	$(GO) run ./cmd/amexp -e all

# Fast smoke pass over everything.
quick:
	$(GO) run ./cmd/amexp -e all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/chain_vs_dag
	$(GO) run ./examples/msgpassing
	$(GO) run ./examples/adversary_lab
	$(GO) run ./examples/impossibility

clean:
	$(GO) clean ./...

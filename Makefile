# appendmemory — build / test / reproduce targets.

GO ?= go

.PHONY: all build test vet check cover bench experiments quick examples clean

all: build vet test check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full verification: vet, race-enabled tests, and every paper prediction
# evaluated against a quick run (amexp exits 2 if any check fails).
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) run ./cmd/amexp -e all -quick -check

cover:
	$(GO) test ./... -cover

# One benchmark per experiment plus substrate micro-benches. The run is
# piped through cmd/benchjson, which echoes the human-readable output and
# writes the machine-readable record to BENCH_PR2.json. Override BENCHTIME
# for steadier numbers (e.g. make bench BENCHTIME=1s).
BENCHTIME ?= 0.2s
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) | $(GO) run ./cmd/benchjson -o BENCH_PR2.json

# Regenerate every experiment at full scale (the EXPERIMENTS.md numbers).
experiments:
	$(GO) run ./cmd/amexp -e all

# Fast smoke pass over everything.
quick:
	$(GO) run ./cmd/amexp -e all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/chain_vs_dag
	$(GO) run ./examples/msgpassing
	$(GO) run ./examples/adversary_lab
	$(GO) run ./examples/impossibility

clean:
	$(GO) clean ./...

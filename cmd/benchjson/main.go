// Command benchjson converts `go test -bench` output into a machine-readable
// JSON record and compares records across runs.
//
// Record mode (the default) reads the benchmark output on stdin, echoes it
// through to stdout unchanged (so the human-readable numbers stay visible
// in the terminal), and writes the parsed records to the -o file:
//
//	go test -run='^$' -bench=. -benchmem | benchjson -o BENCH.json
//
// Each `BenchmarkName-P  N  v1 unit1  v2 unit2 ...` result line becomes one
// record with the benchmark name (GOMAXPROCS suffix split off), the
// iteration count, and a metrics map keyed by unit (ns/op, B/op, allocs/op,
// plus any custom b.ReportMetric units). Repeated results for the same
// benchmark (`go test -count=N`) are merged by per-metric minimum — the
// usual noise-robust estimator, since scheduling and GC interference only
// ever inflate a measurement.
//
// Compare mode diffs two committed records without running anything:
//
//	benchjson -baseline BENCH_PR2.json -compare BENCH_PR3.json -threshold 0.3
//
// It prints per-benchmark ns/op, B/op and allocs/op deltas and exits 1 when
// any metric regressed by more than the threshold (a fraction: 0.3 means
// +30%). Candidate benchmarks with no baseline entry are reported
// explicitly but pass by default — intentional additions should not break
// the gate; -require-baseline turns them into failures for workflows that
// refresh the baseline in lockstep. Passing -baseline together with -o
// applies the same gate to a freshly recorded run:
//
//	go test -run='^$' -bench=. -benchmem | benchjson -o BENCH.json -baseline OLD.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type record struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

// parseLine parses one benchmark result line, reporting ok=false for
// non-result lines (headers, PASS, b.Log output, ...).
func parseLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

// readRecord loads a benchjson -o file.
func readRecord(path string) (record, error) {
	var rec record
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// compareUnits are the metrics diffed by compare mode, in display order.
// Only ns/op is wall-clock noisy; B/op and allocs/op are effectively
// deterministic for these benchmarks, so compare gates them with the
// tight threshold and ns/op with the looser timeThreshold.
var compareUnits = []string{"ns/op", "B/op", "allocs/op"}

// compare prints the per-benchmark deltas of cur vs base and returns the
// number of regressions — metrics whose relative increase exceeds their
// threshold — plus the number of candidate benchmarks with no baseline
// entry. New and removed benchmarks are reported but never count as
// regressions (adding or removing a benchmark is a deliberate act); the
// caller decides whether missing baselines are acceptable.
func compare(base, cur record, threshold, timeThreshold float64) (regressions, missingBaseline int) {
	baseBy := make(map[string]benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	curBy := make(map[string]benchmark, len(cur.Benchmarks))
	names := make([]string, 0, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
		names = append(names, b.Name)
	}

	fmt.Printf("%-36s %14s %14s %14s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, name := range names {
		nb := curBy[name]
		ob, ok := baseBy[name]
		if !ok {
			fmt.Printf("%-36s %s\n", name, "(new benchmark, no baseline)")
			missingBaseline++
			continue
		}
		cells := make([]string, len(compareUnits))
		for i, unit := range compareUnits {
			nv, nok := nb.Metrics[unit]
			ov, ook := ob.Metrics[unit]
			switch {
			case !nok || !ook:
				cells[i] = "-"
			case ov == 0:
				if nv == 0 {
					cells[i] = "0 = 0"
				} else {
					cells[i] = fmt.Sprintf("0 -> %g", nv)
				}
			default:
				rel := (nv - ov) / ov
				limit := threshold
				if unit == "ns/op" {
					limit = timeThreshold
				}
				mark := ""
				if rel > limit {
					mark = " !"
					regressions++
				}
				cells[i] = fmt.Sprintf("%+.1f%%%s", 100*rel, mark)
			}
		}
		fmt.Printf("%-36s %14s %14s %14s\n", name, cells[0], cells[1], cells[2])
	}
	var removed []string
	for name := range baseBy {
		if _, ok := curBy[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Printf("%-36s %s\n", name, "(removed: in baseline only)")
	}
	if missingBaseline > 0 {
		fmt.Printf("benchjson: %d candidate benchmark(s) have no baseline entry\n", missingBaseline)
	}
	if regressions > 0 {
		fmt.Printf("benchjson: %d metric(s) regressed past the threshold (B/op, allocs/op: %.0f%%; ns/op: %.0f%%)\n",
			regressions, 100*threshold, 100*timeThreshold)
	} else {
		fmt.Printf("benchjson: no regression past the threshold (B/op, allocs/op: %.0f%%; ns/op: %.0f%%)\n",
			100*threshold, 100*timeThreshold)
	}
	return regressions, missingBaseline
}

func main() {
	out := flag.String("o", "", "write the JSON records parsed from stdin to this file")
	baseline := flag.String("baseline", "", "baseline JSON record to compare against")
	compareWith := flag.String("compare", "", "compare this JSON record to -baseline without reading stdin")
	threshold := flag.Float64("threshold", 0.25, "relative regression threshold for B/op and allocs/op (0.25 = +25%)")
	timeThreshold := flag.Float64("time-threshold", -1, "relative regression threshold for ns/op; default 2x -threshold (wall clock is the noisy metric)")
	requireBaseline := flag.Bool("require-baseline", false, "fail the comparison when a candidate benchmark has no baseline entry (default: report it and pass)")
	flag.Parse()
	if *timeThreshold < 0 {
		*timeThreshold = 2 * *threshold
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	// Pure compare mode: diff two committed records.
	if *compareWith != "" {
		if *baseline == "" {
			fail(fmt.Errorf("-compare requires -baseline"))
		}
		base, err := readRecord(*baseline)
		if err != nil {
			fail(err)
		}
		cur, err := readRecord(*compareWith)
		if err != nil {
			fail(err)
		}
		regressions, missing := compare(base, cur, *threshold, *timeThreshold)
		if regressions > 0 || (*requireBaseline && missing > 0) {
			os.Exit(1)
		}
		return
	}

	if *out == "" {
		fail(fmt.Errorf("-o is required (or use -baseline with -compare)"))
	}

	rec := record{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rec.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if b, ok := parseLine(line); ok {
				merged := false
				for i := range rec.Benchmarks {
					if rec.Benchmarks[i].Name == b.Name {
						for unit, v := range b.Metrics {
							if old, ok := rec.Benchmarks[i].Metrics[unit]; !ok || v < old {
								rec.Benchmarks[i].Metrics[unit] = v
							}
						}
						merged = true
						break
					}
				}
				if !merged {
					rec.Benchmarks = append(rec.Benchmarks, b)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(rec.Benchmarks), *out)

	if *baseline != "" {
		base, err := readRecord(*baseline)
		if err != nil {
			fail(err)
		}
		regressions, missing := compare(base, rec, *threshold, *timeThreshold)
		if regressions > 0 || (*requireBaseline && missing > 0) {
			os.Exit(1)
		}
	}
}

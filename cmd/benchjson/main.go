// Command benchjson converts `go test -bench` output into a machine-readable
// JSON record. It reads the benchmark output on stdin, echoes it through to
// stdout unchanged (so the human-readable numbers stay visible in the
// terminal), and writes the parsed records to the -o file.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem | benchjson -o BENCH.json
//
// Each `BenchmarkName-P  N  v1 unit1  v2 unit2 ...` result line becomes one
// record with the benchmark name (GOMAXPROCS suffix split off), the
// iteration count, and a metrics map keyed by unit (ns/op, B/op, allocs/op,
// plus any custom b.ReportMetric units).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type record struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

// parseLine parses one benchmark result line, reporting ok=false for
// non-result lines (headers, PASS, b.Log output, ...).
func parseLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

func main() {
	out := flag.String("o", "", "write the JSON records to this file (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -o is required")
		os.Exit(1)
	}

	rec := record{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rec.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if b, ok := parseLine(line); ok {
				rec.Benchmarks = append(rec.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(rec.Benchmarks), *out)
}

package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildAmrun compiles this command once per test run and returns the
// binary path — the differential tests below exercise the shipped CLI,
// not a reimplementation of it.
var buildAmrun = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "amrun-dist-test")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "amrun")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("go build: %v\n%s", err, out)
	}
	return bin, nil
})

func amrunBin(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and spawns amrun processes")
	}
	bin, err := buildAmrun()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// run executes the binary and returns stdout; stderr is returned
// separately so -timing output never contaminates the byte comparison.
func run(t *testing.T, bin string, args ...string) (stdout, stderr string) {
	t.Helper()
	var so, se strings.Builder
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &so
	cmd.Stderr = &se
	if err := cmd.Run(); err != nil {
		t.Fatalf("amrun %s: %v\nstderr:\n%s", strings.Join(args, " "), err, se.String())
	}
	return so.String(), se.String()
}

// The quick differential suite at the CLI level: flag-built sweeps and the
// committed example scenarios (checkpoint-free ones, trial counts lowered
// via the -trials override) must render byte-identically with and without
// -distribute, in every output format.
func TestDistributeByteIdentical(t *testing.T) {
	bin := amrunBin(t)

	type tc struct {
		name string
		args []string
	}
	cases := []tc{
		{"dag-private", []string{"-protocol", "dag", "-n", "10", "-t", "4", "-lambda", "1", "-k", "21",
			"-attack", "private-chain", "-trials", "24", "-sweep", "lambda=0.5,1,2",
			"-metrics", "ok,validity,decide-time,byz-prefix-share"}},
		{"chain-tiebreak", []string{"-protocol", "chain", "-n", "8", "-t", "3", "-lambda", "0.5", "-k", "15",
			"-attack", "tiebreak", "-trials", "18", "-sweep", "tiebreak=random,adversarial"}},
		{"sync-split", []string{"-protocol", "sync", "-n", "7", "-t", "2", "-inputs", "split:3",
			"-trials", "12", "-metrics", "ok,agreement,duration"}},
		{"spec-crashes", []string{"-spec", "../../examples/scenarios/crashes-asynchrony.json", "-trials", "6"}},
		{"spec-equivocation", []string{"-spec", "../../examples/scenarios/equivocation-confirm.json", "-trials", "6"}},
		{"spec-windowed", []string{"-spec", "../../examples/scenarios/windowed-long-horizon.json", "-trials", "4"}},
	}
	for _, c := range cases {
		for _, format := range []string{"text", "json", "csv"} {
			args := append(append([]string{}, c.args...), "-format", format)
			local, _ := run(t, bin, args...)
			dist, _ := run(t, bin, append(args, "-distribute", "3")...)
			if local != dist {
				t.Errorf("%s (%s): -distribute 3 output differs from single-process\nlocal:\n%s\ndist:\n%s",
					c.name, format, local, dist)
			}
		}
	}
}

// A warm cache must serve >= 90% of leases (here: all) and leave the
// bytes untouched.
func TestDistributeWarmCache(t *testing.T) {
	bin := amrunBin(t)
	cacheDir := t.TempDir()
	args := []string{"-protocol", "dag", "-n", "10", "-t", "4", "-lambda", "1", "-k", "21",
		"-attack", "private-chain", "-trials", "40", "-format", "json"}
	local, _ := run(t, bin, append(args, "-sweep", "lambda=0.5,1")...)

	cold, coldErr := run(t, bin, append(args, "-sweep", "lambda=0.5,1",
		"-distribute", "2", "-cache", cacheDir, "-timing")...)
	if cold != local {
		t.Fatalf("cold distributed run differs from local:\n%s\nvs\n%s", cold, local)
	}
	if !strings.Contains(coldErr, "cache-hits=0") {
		t.Fatalf("cold run reported cache hits: %s", coldErr)
	}

	warm, warmErr := run(t, bin, append(args, "-sweep", "lambda=0.5,1",
		"-distribute", "2", "-cache", cacheDir, "-timing")...)
	if warm != local {
		t.Fatalf("warm distributed run differs from local:\n%s\nvs\n%s", warm, local)
	}
	stats := parseTiming(t, warmErr)
	if stats["leases"] == 0 || stats["cache-hits"]*10 < stats["leases"]*9 {
		t.Fatalf("warm run served %d/%d leases from cache, want >= 90%%: %s",
			stats["cache-hits"], stats["leases"], warmErr)
	}
}

// Killing a worker process mid-sweep must not change a byte of output.
// The victim is found via the coordinator's own children; the sweep is
// big enough that leases are still in flight when the kill lands.
func TestDistributeSurvivesKilledWorker(t *testing.T) {
	bin := amrunBin(t)
	args := []string{"-protocol", "dag", "-n", "12", "-t", "5", "-lambda", "1", "-k", "31",
		"-attack", "private-chain", "-trials", "64", "-sweep", "lambda=0.5,1,2",
		"-metrics", "ok,validity,decide-time", "-format", "json"}
	local, _ := run(t, bin, args...)

	var so, se strings.Builder
	cmd := exec.Command(bin, append(args, "-distribute", "3", "-lease-timeout", "10s", "-timing")...)
	cmd.Stdout = &so
	cmd.Stderr = &se
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill the first spawned worker (a child amrun -amworker) shortly after
	// dispatch begins.
	go func() {
		// Let the spawn handshakes finish first: a worker killed before its
		// hello would fail the spawn itself rather than exercise reassignment.
		time.Sleep(25 * time.Millisecond)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			out, err := exec.Command("pgrep", "-P", fmt.Sprint(cmd.Process.Pid)).Output()
			if err == nil {
				if kids := strings.Fields(string(out)); len(kids) > 0 {
					exec.Command("kill", "-KILL", kids[0]).Run()
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("distributed run with killed worker failed: %v\nstderr:\n%s", err, se.String())
	}
	if so.String() != local {
		t.Fatalf("killed worker changed the output:\nlocal:\n%s\ndist:\n%s", local, so.String())
	}
	t.Logf("timing: %s", strings.TrimSpace(se.String()))
}

// Checkpointed sweeps must be refused in distributed mode with a clear
// error, not silently produce different bytes.
func TestDistributeRejectsCheckpoint(t *testing.T) {
	bin := amrunBin(t)
	cmd := exec.Command(bin, "-protocol", "chain", "-n", "8", "-t", "2", "-lambda", "1", "-k", "15",
		"-trials", "4", "-sweep", "confirm=0,5", "-checkpoint", "-distribute", "2")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("checkpointed distributed run succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), "checkpoint") {
		t.Fatalf("error does not mention checkpoints: %s", out)
	}
}

// Duplicate sweep axes are rejected whether they come from flags or from
// a spec file plus flags.
func TestDuplicateSweepAxisRejected(t *testing.T) {
	bin := amrunBin(t)
	cmd := exec.Command(bin, "-protocol", "dag", "-n", "8", "-lambda", "1", "-k", "15",
		"-trials", "2", "-sweep", "lambda=0.5,1", "-sweep", "lambda=2,4")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("duplicate -sweep axis accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "twice") {
		t.Fatalf("error does not flag the duplicate axis: %s", out)
	}
}

// parseTiming extracts the k=v counters from the -timing stderr line.
func parseTiming(t *testing.T, line string) map[string]int {
	t.Helper()
	out := map[string]int{}
	for _, f := range strings.Fields(line) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(v, "%d", &n); err == nil {
			out[k] = n
		}
	}
	return out
}

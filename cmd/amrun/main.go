// Command amrun executes Byzantine-agreement protocol runs in the append
// memory: a single run, a batch of trials, or a declarative scenario
// sweep. Every protocol, tie-break, pivot, attack, access-model and
// metric name comes from the internal/scenario registries — `amrun -list`
// enumerates them.
//
// Examples:
//
//	amrun -protocol dag -n 10 -t 4 -lambda 1 -k 41 -attack private-chain
//	amrun -protocol chain -tiebreak random -n 10 -t 4 -lambda 1 -k 41 -attack tiebreak -trials 50
//	amrun -protocol sync -n 8 -t 3 -rounds 2 -inputs split:3 -attack delayed-chain
//	amrun -protocol dag -n 12 -t 4 -lambda 0.5 -k 41 -trials 20 -sweep attack=silent,private-chain,private-fork -metrics ok,byz-prefix-share
//	amrun -spec examples/scenarios/rates_private_chain.json
//	amrun -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/appendmem"
	"repro/internal/distrib"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/trace"
)

// sweepFlags collects repeatable -sweep axis=v1,v2,... flags.
type sweepFlags []scenario.Axis

func (s *sweepFlags) String() string { return fmt.Sprintf("%d axes", len(*s)) }

func (s *sweepFlags) Set(v string) error {
	ax, err := scenario.ParseAxis(v)
	if err != nil {
		return err
	}
	*s = append(*s, ax)
	return nil
}

func main() {
	var sweeps sweepFlags
	var (
		protocol  = flag.String("protocol", "dag", scenario.Protocols.Help())
		n         = flag.Int("n", 10, "total nodes")
		t         = flag.Int("t", 0, "Byzantine nodes (the last t ids)")
		lambda    = flag.Float64("lambda", 0.5, "token rate per node per Δ (randomized protocols)")
		delta     = flag.Float64("delta", 1.0, "synchrony bound Δ")
		k         = flag.Int("k", 21, "decision threshold (randomized protocols)")
		rounds    = flag.Int("rounds", 0, "rounds for sync protocol (0 = t+1)")
		tiebreak  = flag.String("tiebreak", "random", "chain tie-breaking: "+scenario.TieBreaks.Help())
		pivot     = flag.String("pivot", "ghost", "dag pivot rule: "+scenario.Pivots.Help())
		attack    = flag.String("attack", "silent", scenario.Attacks.Help())
		attackPar = flag.String("attack-params", "", "attack template parameter overrides as name=value,name=value (see -list for each attack's schema)")
		confirm   = flag.Int("confirm", 0, "chain/dag confirmation depth")
		margin    = flag.Int("margin", 0, "last-minute attack burst margin (0 = default 6)")
		crashes   = flag.Int("crashes", 0, "crash-faulty correct nodes")
		inputs    = flag.String("inputs", "same", `inputs: same | same:-1 | split:<ones> | random`)
		seed      = flag.Uint64("seed", 1, "base seed")
		trials    = flag.Int("trials", 1, "number of runs (seeds seed..seed+trials-1)")
		fresh     = flag.Bool("fresh-reads", false, "ablation: honest nodes read at grant time (no Δ staleness)")
		access    = flag.String("access", "", "token authority: "+scenario.AccessModels.Help()+" (default poisson)")
		topo      = flag.String("topology", "", "network topology: "+scenario.Topologies.Help()+" (default complete)")
		topoPar   = flag.String("topology-params", "", "topology generator parameters as k=v,k=v (e.g. k=2,beta=0.3)")
		linkDel   = flag.Float64("link-delay", 0, "base per-link latency in Δ (0 = default 0.5)")
		linkJit   = flag.Float64("link-jitter", 0, "per-link delay spread fraction in [0,1) (0 = model default)")
		delayD    = flag.String("delay-dist", "", "per-link delay distribution: "+strings.Join(topology.DelayKinds(), " | ")+" (default fixed)")
		rr        = flag.Bool("round-robin", false, "ablation: burst-free round-robin token authority (same as -access round-robin)")
		stallAt   = flag.Int("stall-at", 0, "inject async blackout once memory reaches this size (0 = off)")
		stallFor  = flag.Float64("stall-for", 0, "blackout duration in Δ (0 = default 8)")
		adm       = flag.Float64("async-delay-max", 0, "honest token-to-append delay bound in Δ (0 = off)")
		window    = flag.Int("window", 0, "bounded-memory horizon: retire message prefixes older than this many ids below every reachability floor (0 = unbounded)")
		checkpt   = flag.Bool("checkpoint", false, "snapshot each trial at first decision and reuse the prefix across confirm-sweep points")
		verbose   = flag.Bool("v", false, "print per-node decisions")
		traceN    = flag.Int("trace", 0, "print the last N trace events of the run")
		timing    = flag.Bool("timing", false, "report sweep wall clock and checkpoint prefix reuse on stderr")

		list     = flag.Bool("list", false, "enumerate the registries (protocols, tie-breaks, pivots, attacks, access models, metrics, sweep axes) and exit")
		specPath = flag.String("spec", "", "run a JSON scenario spec (explicitly-set flags override its fields)")
		metricsF = flag.String("metrics", "", "comma-separated metric extractors for sweep output (see -list metrics)")
		format   = flag.String("format", "text", "sweep output format: text | md | json | csv")
		out      = flag.String("o", "", "write sweep output to file instead of stdout")
		workers  = flag.Int("workers", 0, "trial parallelism (0 = GOMAXPROCS)")

		distribute = flag.Int("distribute", 0, "spawn this many local worker processes and shard sweep trials across them")
		workersAdr = flag.String("workers-addr", "", "comma-separated amworker TCP addresses to shard sweep trials across")
		cacheDir   = flag.String("cache", "", "content-addressed lease result cache directory (distributed sweeps)")
		leaseTO    = flag.Duration("lease-timeout", 0, "per-lease worker timeout before reassignment (0 = 2m)")
		chunkSize  = flag.Int("chunk", 0, "trials per distributed lease (0 = adaptive sizing, or 16 with -cache; shapes cache keys)")
		amworker   = flag.Bool("amworker", false, "internal: serve leases over stdio (what -distribute spawns)")
	)
	flag.Var(&sweeps, "sweep", "sweep axis as axis=v1,v2,... (repeatable; see -list for axes)")
	flag.Parse()

	// Worker mode: the re-exec'd child of a -distribute run. Serve leases
	// over stdin/stdout until the coordinator hangs up.
	if *amworker {
		if err := distrib.ServeStdio(); err != nil {
			fatal(err)
		}
		return
	}

	// -list is a query, not a run.
	if *list {
		printList()
		return
	}

	// Fail fast on misspelled registry names: the error enumerates what
	// exists instead of surfacing later from a half-built spec.
	if *access != "" {
		if _, ok := scenario.AccessModels.Lookup(*access); !ok {
			fatal(fmt.Errorf("unknown access model %q (have %s)", *access, scenario.AccessModels.Help()))
		}
	}
	if *topo != "" {
		if _, ok := scenario.Topologies.Lookup(*topo); !ok {
			fatal(fmt.Errorf("unknown topology %q (have %s)", *topo, scenario.Topologies.Help()))
		}
	}
	topoParams, err := scenario.ParseTopologyParams(*topoPar)
	if err != nil {
		fatal(err)
	}
	attackParams, err := scenario.ParseAttackParams(*attackPar)
	if err != nil {
		fatal(err)
	}

	spec := scenario.Spec{
		Protocol: scenario.Protocol(*protocol),
		N:        *n, T: *t, Crashes: *crashes,
		Lambda: *lambda, Delta: *delta, K: *k, Rounds: *rounds,
		TieBreak:     scenario.TieBreak(*tiebreak),
		Pivot:        scenario.Pivot(*pivot),
		Attack:       scenario.Attack(*attack),
		AttackParams: attackParams,
		Confirm:      *confirm, Margin: *margin,
		Inputs: *inputs, Seed: *seed, Trials: *trials,
		FreshReads:     *fresh,
		Access:         scenario.Access(*access),
		Topology:       scenario.Topology(*topo),
		TopologyParams: topoParams,
		LinkDelay:      *linkDel, LinkJitter: *linkJit, DelayDist: *delayD,
		StallAtSize: *stallAt, StallFor: *stallFor,
		AsyncDelayMax: *adm,
		Window:        *window, Checkpoint: *checkpt,
	}
	if *rr {
		spec.Access = scenario.AccessRoundRobin
	}

	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fatal(err)
		}
		fileSpec, err := scenario.ParseSpec(data)
		if err != nil {
			fatal(err)
		}
		// The file is authoritative; flags the user explicitly set on the
		// command line override its fields.
		overrideSpec(&fileSpec, spec)
		spec = fileSpec
	}
	spec.Sweep = append(spec.Sweep, sweeps...)
	if *metricsF != "" {
		spec.Metrics = splitList(*metricsF)
	}

	// A spec file, a sweep, an explicit metric set or a distributed flag
	// selects table mode; bare flag runs keep the classic single-run /
	// trials output.
	distributed := *distribute > 0 || *workersAdr != "" || *cacheDir != ""
	if *specPath != "" || len(spec.Sweep) > 0 || len(spec.Metrics) > 0 || distributed {
		if distributed {
			runDistributed(spec, distribOptions{
				spawn: *distribute, addrs: *workersAdr,
				cacheDir: *cacheDir, leaseTimeout: *leaseTO,
				chunk: *chunkSize,
			}, *format, *out, *timing)
			return
		}
		runSweep(spec, *workers, *format, *out, *timing)
		return
	}

	if spec.Trials > 1 {
		s, err := scenario.RunTrials(spec, spec.Trials)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s n=%d t=%d λ=%g k=%d attack=%s: %s\n",
			spec.Protocol, spec.N, spec.T, spec.Lambda, spec.K, attackName(spec), s)
		return
	}

	runOne(spec, *verbose, *traceN)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amrun:", err)
	os.Exit(1)
}

func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

func attackName(s scenario.Spec) scenario.Attack {
	if s.Attack == "" {
		return scenario.AttackSilent
	}
	return s.Attack
}

// overrideSpec copies into dst every field of the flag-built spec whose
// flag was explicitly set on the command line.
func overrideSpec(dst *scenario.Spec, flags scenario.Spec) {
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "protocol":
			dst.Protocol = flags.Protocol
		case "n":
			dst.N = flags.N
		case "t":
			dst.T = flags.T
		case "crashes":
			dst.Crashes = flags.Crashes
		case "lambda":
			dst.Lambda = flags.Lambda
		case "delta":
			dst.Delta = flags.Delta
		case "k":
			dst.K = flags.K
		case "rounds":
			dst.Rounds = flags.Rounds
		case "tiebreak":
			dst.TieBreak = flags.TieBreak
		case "pivot":
			dst.Pivot = flags.Pivot
		case "attack":
			dst.Attack = flags.Attack
		case "attack-params":
			dst.AttackParams = flags.AttackParams
		case "confirm":
			dst.Confirm = flags.Confirm
		case "margin":
			dst.Margin = flags.Margin
		case "inputs":
			dst.Inputs = flags.Inputs
		case "seed":
			dst.Seed = flags.Seed
		case "trials":
			dst.Trials = flags.Trials
		case "fresh-reads":
			dst.FreshReads = flags.FreshReads
		case "access", "round-robin":
			dst.Access = flags.Access
		case "topology":
			dst.Topology = flags.Topology
		case "topology-params":
			dst.TopologyParams = flags.TopologyParams
		case "link-delay":
			dst.LinkDelay = flags.LinkDelay
		case "link-jitter":
			dst.LinkJitter = flags.LinkJitter
		case "delay-dist":
			dst.DelayDist = flags.DelayDist
		case "stall-at":
			dst.StallAtSize = flags.StallAtSize
		case "stall-for":
			dst.StallFor = flags.StallFor
		case "async-delay-max":
			dst.AsyncDelayMax = flags.AsyncDelayMax
		case "window":
			dst.Window = flags.Window
		case "checkpoint":
			dst.Checkpoint = flags.Checkpoint
		}
	})
}

// runSweep executes the spec through the scenario layer and renders the
// point table in the requested format.
func runSweep(spec scenario.Spec, workers int, format, out string, timing bool) {
	start := time.Now()
	res, err := scenario.RunSpec(spec, scenario.Options{Workers: workers})
	if err != nil {
		fatal(err)
	}
	if timing {
		fmt.Fprintf(os.Stderr, "amrun: sweep %v", time.Since(start).Round(time.Millisecond))
		if res.Reuse != nil {
			fmt.Fprintf(os.Stderr, "  checkpoints captured=%d resumed=%d", res.Reuse.Captured, res.Reuse.Resumed)
		}
		fmt.Fprintln(os.Stderr)
	}
	renderSweep(res, format, out)
}

// distribOptions carries the distributed-execution flags.
type distribOptions struct {
	spawn        int    // -distribute: local worker processes to fork
	addrs        string // -workers-addr: remote amworker TCP addresses
	cacheDir     string // -cache: lease result cache directory
	leaseTimeout time.Duration
	chunk        int // -chunk: trials per lease (0 = adaptive / default)
}

// runDistributed shards the sweep's trials across worker processes via
// internal/distrib and renders the merged result — byte-identical to the
// same sweep run in-process at the same seed.
func runDistributed(spec scenario.Spec, o distribOptions, format, out string, timing bool) {
	var ws []distrib.Transport
	if o.addrs != "" {
		remote, err := distrib.DialWorkers(o.addrs)
		if err != nil {
			fatal(err)
		}
		ws = append(ws, remote...)
	}
	if o.spawn > 0 {
		exe, err := os.Executable()
		if err != nil {
			fatal(fmt.Errorf("cannot locate own binary to spawn workers: %w", err))
		}
		procs, err := distrib.SpawnN(o.spawn, []string{exe, "-amworker"}, nil)
		if err != nil {
			fatal(err)
		}
		for _, p := range procs {
			ws = append(ws, p)
		}
	}
	defer func() {
		for _, w := range ws {
			w.Close()
		}
	}()

	var cache *distrib.Cache
	if o.cacheDir != "" {
		var err error
		if cache, err = distrib.NewCache(o.cacheDir, 0); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	res, stats, err := distrib.Run(spec, distrib.Config{
		Workers: ws, Cache: cache, LeaseTimeout: o.leaseTimeout,
		ChunkSize: o.chunk,
	})
	if err != nil {
		fatal(err)
	}
	if timing {
		fmt.Fprintf(os.Stderr,
			"amrun: sweep %v  workers=%d leases=%d dispatched=%d cache-hits=%d inline=%d retries=%d lost=%d\n",
			time.Since(start).Round(time.Millisecond), len(ws),
			stats.Leases, stats.Dispatched, stats.FromCache, stats.Inline, stats.Retries, stats.LostWorker)
	}
	renderSweep(res, format, out)
}

// renderSweep writes the point table in the requested format — shared by
// the in-process and distributed paths so their bytes can only agree.
func renderSweep(res *scenario.SweepResult, format, out string) {
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "text":
		fmt.Fprint(w, report.TableText(experiments.SweepTable(res)))
	case "md":
		fmt.Fprint(w, report.TableMarkdown(experiments.SweepTable(res)))
	case "json":
		if err := report.WriteJSON(w, []*experiments.Result{experiments.SweepResult(res)}); err != nil {
			fatal(err)
		}
	case "csv":
		if err := report.WriteCSV(w, []*experiments.Result{experiments.SweepResult(res)}); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q (want text | md | json | csv)", format))
	}
}

// runOne preserves amrun's classic single-run report.
func runOne(spec scenario.Spec, verbose bool, traceN int) {
	var rec *trace.Recorder
	if traceN > 0 {
		rec = trace.New()
	}
	b, err := scenario.Bind(spec)
	if err != nil {
		fatal(err)
	}
	r, err := b.RunTraced(spec.Seed, rec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("protocol    %s (attack %s)\n", spec.Protocol, attackName(spec))
	fmt.Printf("nodes       n=%d t=%d crashes=%d\n", spec.N, spec.T, spec.Crashes)
	fmt.Printf("verdict     agreement=%v validity=%v termination=%v\n",
		r.Verdict.Agreement, r.Verdict.Validity, r.Verdict.Termination)
	fmt.Printf("appends     total=%d byzantine=%d\n", r.TotalAppends, r.ByzAppends)
	fmt.Printf("duration    %.3f Δ\n", float64(r.Duration))
	if verbose {
		for i, d := range r.Decision {
			role := r.Roster.Role(appendmem.NodeID(i))
			status := "undecided"
			if r.Decided[i] {
				status = fmt.Sprintf("decided %+d", d)
			}
			fmt.Printf("  node %2d  %-9s input %+d  %s\n", i, role, r.Inputs[i], status)
		}
	}
	if rec != nil {
		fmt.Printf("trace (%d events total):\n%s", rec.Len(), rec.Render(traceN))
	}
	if !r.Verdict.OK() {
		os.Exit(2)
	}
}

// printList enumerates the registries, one line per name with its doc.
func printList() {
	section := func(title string, names []string, doc func(string) string) {
		fmt.Printf("%s:\n", title)
		for _, name := range names {
			fmt.Printf("  %-17s %s\n", name, doc(name))
		}
		fmt.Println()
	}
	section("protocols", scenario.Protocols.Names(), scenario.Protocols.Doc)
	section("tie-breaks (chain)", scenario.TieBreaks.Names(), scenario.TieBreaks.Doc)
	section("pivots (dag)", scenario.Pivots.Names(), scenario.Pivots.Doc)
	fmt.Printf("attacks:\n")
	for _, name := range scenario.Attacks.Names() {
		fmt.Printf("  %-17s [%s] %s\n", name, attackScope(name), scenario.Attacks.Doc(name))
		for _, line := range scenario.AttackParamLines(name) {
			fmt.Printf("      %s\n", line)
		}
	}
	fmt.Println()
	section("access models", scenario.AccessModels.Names(), scenario.AccessModels.Doc)
	section("topologies", scenario.Topologies.Names(), scenario.Topologies.Doc)
	fmt.Printf("delay distributions:\n  %s\n\n", strings.Join(topology.DelayKinds(), ", "))
	section("metrics", scenario.Metrics.Names(), scenario.Metrics.Doc)
	fmt.Printf("sweep axes:\n  %s\n", strings.Join(scenario.SweepAxes(), ", "))
}

// attackScope renders which protocols an attack applies to.
func attackScope(name string) string {
	var ps []string
	for _, p := range scenario.Protocols.Names() {
		if p == string(scenario.Sync) {
			for _, s := range scenario.SyncAttacks() {
				if s == name {
					ps = append(ps, p)
				}
			}
			continue
		}
		for _, a := range scenario.AttacksFor(scenario.Protocol(p)) {
			if a == name {
				ps = append(ps, p)
			}
		}
	}
	return strings.Join(ps, " ")
}

// Command amrun executes one Byzantine-agreement protocol run (or a batch
// of trials) in the append memory and reports the consensus verdict.
//
// Examples:
//
//	amrun -protocol dag -n 10 -t 4 -lambda 1 -k 41 -attack private-chain
//	amrun -protocol chain -tiebreak random -n 10 -t 4 -lambda 1 -k 41 -attack tiebreak -trials 50
//	amrun -protocol sync -n 8 -t 3 -rounds 2 -inputs split:3 -attack delayed-chain
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/appendmem"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	var (
		protocol = flag.String("protocol", "dag", "sync | timestamp | chain | dag")
		n        = flag.Int("n", 10, "total nodes")
		t        = flag.Int("t", 0, "Byzantine nodes (the last t ids)")
		lambda   = flag.Float64("lambda", 0.5, "token rate per node per Δ (randomized protocols)")
		delta    = flag.Float64("delta", 1.0, "synchrony bound Δ")
		k        = flag.Int("k", 21, "decision threshold (randomized protocols)")
		rounds   = flag.Int("rounds", 0, "rounds for sync protocol (0 = t+1)")
		tiebreak = flag.String("tiebreak", "random", "chain tie-breaking: first | random | adversarial")
		pivot    = flag.String("pivot", "ghost", "dag pivot rule: ghost | longest")
		attack   = flag.String("attack", "silent", "silent | flip | random | fork | tiebreak | private-chain | equivocate | delayed-chain | loud-flip")
		crashes  = flag.Int("crashes", 0, "crash-faulty correct nodes")
		inputs   = flag.String("inputs", "same", `inputs: same | same:-1 | split:<ones> | random`)
		seed     = flag.Uint64("seed", 1, "base seed")
		trials   = flag.Int("trials", 1, "number of runs (seeds seed..seed+trials-1)")
		fresh    = flag.Bool("fresh-reads", false, "ablation: honest nodes read at grant time (no Δ staleness)")
		rr       = flag.Bool("round-robin", false, "ablation: burst-free round-robin token authority")
		stallAt  = flag.Int("stall-at", 0, "inject async blackout once memory reaches this size (0 = off)")
		stallFor = flag.Float64("stall-for", 0, "blackout duration in Δ (0 = default 8)")
		verbose  = flag.Bool("v", false, "print per-node decisions")
		traceN   = flag.Int("trace", 0, "print the last N trace events of the run")
	)
	flag.Parse()

	var rec *trace.Recorder
	if *traceN > 0 {
		rec = trace.New()
	}
	cfg := core.Config{
		Protocol: core.Protocol(*protocol),
		N:        *n, T: *t,
		Lambda: *lambda, Delta: *delta, K: *k, Rounds: *rounds,
		TieBreak:    core.TieBreak(*tiebreak),
		Pivot:       core.Pivot(*pivot),
		Attack:      core.Attack(*attack),
		Crashes:     *crashes,
		Inputs:      *inputs,
		Seed:        *seed,
		FreshReads:  *fresh,
		RoundRobin:  *rr,
		StallAtSize: *stallAt,
		StallFor:    *stallFor,
		Trace:       rec,
	}

	if *trials > 1 {
		s, err := core.RunTrials(cfg, *trials)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amrun:", err)
			os.Exit(1)
		}
		fmt.Printf("%s n=%d t=%d λ=%g k=%d attack=%s: %s\n",
			cfg.Protocol, cfg.N, cfg.T, cfg.Lambda, cfg.K, cfg.Attack, s)
		return
	}

	r, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amrun:", err)
		os.Exit(1)
	}
	fmt.Printf("protocol    %s (attack %s)\n", cfg.Protocol, cfg.Attack)
	fmt.Printf("nodes       n=%d t=%d crashes=%d\n", cfg.N, cfg.T, cfg.Crashes)
	fmt.Printf("verdict     agreement=%v validity=%v termination=%v\n",
		r.Verdict.Agreement, r.Verdict.Validity, r.Verdict.Termination)
	fmt.Printf("appends     total=%d byzantine=%d\n", r.TotalAppends, r.ByzAppends)
	fmt.Printf("duration    %.3f Δ\n", float64(r.Duration))
	if *verbose {
		for i, d := range r.Decision {
			role := r.Roster.Role(appendmem.NodeID(i))
			status := "undecided"
			if r.Decided[i] {
				status = fmt.Sprintf("decided %+d", d)
			}
			fmt.Printf("  node %2d  %-9s input %+d  %s\n", i, role, r.Inputs[i], status)
		}
	}
	if rec != nil {
		fmt.Printf("trace (%d events total):\n%s", rec.Len(), rec.Render(*traceN))
	}
	if !r.Verdict.OK() {
		os.Exit(2)
	}
}

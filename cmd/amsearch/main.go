// Command amsearch searches the attack-parameter space of a
// parameterized adversary template for the worst case: instead of
// trusting a hand-coded preset (fork, equivocate, private-chain, ...) to
// be the strongest strategy, it optimizes the template's parameters
// against an objective — the disagreement rate, or the mean decision
// latency — under a fixed trial budget. Same seed, same trajectory: the
// candidate pool, the rung decisions and the winner are reproducible
// from the printed seed, regardless of -workers or -distribute.
//
// Examples:
//
//	amsearch -protocol chain -n 32 -t 11 -lambda 0.5 -k 41 -tiebreak adversarial -attack fork -budget 4800 -seed 1
//	amsearch -protocol dag -n 16 -t 5 -lambda 0.5 -k 41 -attack private-chain -objective latency
//	amsearch -protocol chain -n 9 -t 4 -lambda 0.5 -k 41 -tiebreak adversarial -attack fork -promote examples/scenarios
//	amsearch -replay examples/scenarios/searched_chain_disagreement.json
//	amsearch -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/adversary"
	"repro/internal/distrib"
	"repro/internal/scenario"
	"repro/internal/search"
)

func main() {
	var (
		protocol = flag.String("protocol", "chain", scenario.Protocols.Help())
		n        = flag.Int("n", 10, "total nodes")
		t        = flag.Int("t", 3, "Byzantine nodes (the last t ids)")
		lambda   = flag.Float64("lambda", 0.5, "token rate per node per Δ")
		delta    = flag.Float64("delta", 1.0, "synchrony bound Δ")
		k        = flag.Int("k", 21, "decision threshold")
		tiebreak = flag.String("tiebreak", "random", "chain tie-breaking: "+scenario.TieBreaks.Help())
		pivot    = flag.String("pivot", "ghost", "dag pivot rule: "+scenario.Pivots.Help())
		attack   = flag.String("attack", "fork", "searched attack template: "+strings.Join(scenario.ParameterizedAttacks(), " | "))
		confirm  = flag.Int("confirm", 0, "chain/dag confirmation depth")
		inputs   = flag.String("inputs", "same", `inputs: same | same:-1 | split:<ones> | random`)
		specPath = flag.String("spec", "", "search around a JSON scenario spec instead of the flags above")

		objective = flag.String("objective", string(search.Disagreement),
			"maximized objective: "+strings.Join(search.Objectives(), " | "))
		budget  = flag.Int("budget", search.DefaultBudget, "total trial budget across all rungs (sizes the candidate pool)")
		seed    = flag.Uint64("seed", 1, "search seed: candidate sampling AND trial base seed (same seed = same trajectory)")
		rungsF  = flag.String("rungs", "", "successive-halving trial budgets, ascending (default 16,64,256)")
		eta     = flag.Int("eta", 0, "halving rate: each rung keeps ceil(active/eta) survivors (0 = 4)")
		workers = flag.Int("workers", 0, "in-process trial parallelism (0 = GOMAXPROCS)")

		format  = flag.String("format", "text", "output format: text | json")
		promote = flag.String("promote", "", "minimize the winner to a single-seed counterexample spec and write it here (a directory or a .json path)")
		replayF = flag.String("replay", "", "replay a committed counterexample spec; exit 1 unless some trial disagrees or violates an invariant")
		list    = flag.Bool("list", false, "enumerate searchable attacks (with parameter schemas) and objectives, then exit")

		distribute = flag.Int("distribute", 0, "spawn this many local worker processes and shard evaluation trials across them")
		workersAdr = flag.String("workers-addr", "", "comma-separated amworker TCP addresses to shard evaluation trials across")
		cacheDir   = flag.String("cache", "", "content-addressed lease result cache directory (rung escalations re-serve lower-rung chunks)")
		leaseTO    = flag.Duration("lease-timeout", 0, "per-lease worker timeout before reassignment (0 = 2m)")
		chunkSize  = flag.Int("chunk", 0, "trials per distributed lease (0 = adaptive sizing, or 16 with -cache; shapes cache keys)")
		amworker   = flag.Bool("amworker", false, "internal: serve leases over stdio (what -distribute spawns)")
	)
	flag.Parse()

	if *amworker {
		if err := distrib.ServeStdio(); err != nil {
			fatal(err)
		}
		return
	}
	if *list {
		printList()
		return
	}
	if *replayF != "" {
		replay(*replayF)
		return
	}

	spec := scenario.Spec{
		Protocol: scenario.Protocol(*protocol),
		N:        *n, T: *t, Lambda: *lambda, Delta: *delta, K: *k,
		TieBreak: scenario.TieBreak(*tiebreak),
		Pivot:    scenario.Pivot(*pivot),
		Attack:   scenario.Attack(*attack),
		Confirm:  *confirm, Inputs: *inputs,
	}
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fatal(err)
		}
		spec, err = scenario.ParseSpec(data)
		if err != nil {
			fatal(err)
		}
		spec.Sweep = nil
		spec.Trials = 0
	}
	// One seed reproduces everything: candidate sampling and the trials.
	spec.Seed = *seed

	rungs, err := parseRungs(*rungsF)
	if err != nil {
		fatal(err)
	}
	ws, cleanup, err := connectWorkers(*distribute, *workersAdr)
	if err != nil {
		fatal(err)
	}
	defer cleanup()
	var cache *distrib.Cache
	if *cacheDir != "" {
		if cache, err = distrib.NewCache(*cacheDir, 0); err != nil {
			fatal(err)
		}
	}

	cfg := search.Config{
		Spec:      spec,
		Objective: search.Objective(*objective),
		Budget:    *budget, Seed: *seed, Rungs: rungs, Eta: *eta,
		Distrib: distrib.Config{
			Workers: ws, Cache: cache, LeaseTimeout: *leaseTO,
			ChunkSize: *chunkSize, InlineWorkers: *workers,
		},
	}
	start := time.Now()
	res, err := search.Run(cfg)
	if err != nil {
		fatal(err)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	case "text":
		printResult(res, spec, time.Since(start))
	default:
		fatal(fmt.Errorf("unknown format %q (want text | json)", *format))
	}

	if *promote != "" {
		ce, err := search.Counterexample(spec, res.Best.Candidate, res.Objective, res.Best.Trials)
		if err != nil {
			fatal(fmt.Errorf("promote: %w", err))
		}
		path, err := search.WriteCounterexample(ce, *promote)
		if err != nil {
			fatal(fmt.Errorf("promote: %w", err))
		}
		fmt.Printf("promoted: %s (seed %d, %s)\n", path, ce.Seed, ce.Name)
	}
}

// replay runs a committed counterexample and gates on reproduction: CI
// executes this against every promoted spec, so a counterexample that
// silently stops reproducing fails the build.
func replay(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	spec, err := scenario.ParseSpec(data)
	if err != nil {
		fatal(err)
	}
	hits, trials, why, err := search.Replay(spec)
	if err != nil {
		fatal(err)
	}
	if hits == 0 {
		fmt.Fprintf(os.Stderr, "amsearch: %s: no disagreement or invariant violation in %d trial(s) — the counterexample no longer reproduces\n",
			path, trials)
		os.Exit(1)
	}
	fmt.Printf("%s: %d/%d trial(s) reproduce (%s)\n", path, hits, trials, strings.Join(why, ", "))
}

// printResult renders the search trajectory and the winner, ending with
// a ready-to-paste reproduction line.
func printResult(res *search.Result, spec scenario.Spec, elapsed time.Duration) {
	fmt.Printf("== amsearch: %s n=%d t=%d λ=%g k=%d attack=%s ==\n",
		spec.Protocol, spec.N, spec.T, spec.Lambda, spec.K, attackName(spec))
	fmt.Printf("objective=%s metric=%s seed=%d budget=%d candidates=%d trials-used=%d elapsed=%v\n",
		res.Objective, res.MetricName, res.Seed, res.Budget, res.Candidates,
		res.TrialsUsed, elapsed.Round(time.Millisecond))
	schema := attackSchema(spec)
	for i, r := range res.Rungs {
		fmt.Printf("rung %d: trials=%-4d evaluated=%-4d kept=%-4d best score=%.4f  %s\n",
			i+1, r.Trials, r.Evaluated, r.Kept, r.Best.Score, r.Best.Text(schema))
	}
	b := res.Best
	fmt.Printf("best: score=%.4f %s=%.4f violations/trial=%.3g  (origin %s, index %d, %d trials)\n",
		b.Score, res.MetricName, b.Metric, b.Violations, b.Origin, b.Index, b.Trials)
	fmt.Printf("  %s\n", b.Text(schema))
	if st := res.Stats; st.Dispatched > 0 || st.FromCache > 0 {
		fmt.Printf("fleet: leases=%d dispatched=%d cache-hits=%d inline=%d retries=%d lost=%d\n",
			st.Leases, st.Dispatched, st.FromCache, st.Inline, st.Retries, st.LostWorker)
	}
	fmt.Printf("reproduce: amsearch -protocol %s -n %d -t %d -lambda %g -k %d -attack %s -objective %s -budget %d -seed %d\n",
		spec.Protocol, spec.N, spec.T, spec.Lambda, spec.K, attackName(spec),
		res.Objective, res.Budget, res.Seed)
}

// printList enumerates the search space: every parameterized attack with
// its schema, and the objectives.
func printList() {
	fmt.Println("searchable attacks:")
	for _, name := range scenario.ParameterizedAttacks() {
		fmt.Printf("  %-17s %s\n", name, scenario.Attacks.Doc(name))
		for _, line := range scenario.AttackParamLines(name) {
			fmt.Printf("      %s\n", line)
		}
	}
	fmt.Println()
	fmt.Println("objectives:")
	fmt.Printf("  %-17s maximize 1 - agreement rate (trials where correct nodes split)\n", search.Disagreement)
	fmt.Printf("  %-17s maximize the mean decision time in Δ\n", search.Latency)
}

// parseRungs parses "16,64,256" into the halving schedule.
func parseRungs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("bad -rungs %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// connectWorkers assembles the evaluation fleet: dialed remote workers
// plus re-exec'd local ones, exactly like amrun -distribute.
func connectWorkers(spawn int, addrs string) ([]distrib.Transport, func(), error) {
	var ws []distrib.Transport
	if addrs != "" {
		remote, err := distrib.DialWorkers(addrs)
		if err != nil {
			return nil, nil, err
		}
		ws = append(ws, remote...)
	}
	if spawn > 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, nil, fmt.Errorf("cannot locate own binary to spawn workers: %w", err)
		}
		procs, err := distrib.SpawnN(spawn, []string{exe, "-amworker"}, nil)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range procs {
			ws = append(ws, p)
		}
	}
	return ws, func() {
		for _, w := range ws {
			w.Close()
		}
	}, nil
}

func attackName(s scenario.Spec) string {
	if s.Attack == "" {
		return string(scenario.AttackSilent)
	}
	return string(s.Attack)
}

func attackSchema(s scenario.Spec) adversary.Schema {
	def, ok := scenario.Attacks.Lookup(attackName(s))
	if !ok {
		return nil
	}
	return def.Schema
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amsearch:", err)
	os.Exit(1)
}

package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildAmsearch compiles this command once per test run — the tests
// below exercise the shipped CLI end to end, including worker spawning.
var buildAmsearch = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "amsearch-test")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "amsearch")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("go build: %v\n%s", err, out)
	}
	return bin, nil
})

func amsearchBin(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and spawns amsearch processes")
	}
	bin, err := buildAmsearch()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (stdout string) {
	t.Helper()
	var so, se strings.Builder
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &so
	cmd.Stderr = &se
	if err := cmd.Run(); err != nil {
		t.Fatalf("amsearch %s: %v\nstderr:\n%s", strings.Join(args, " "), err, se.String())
	}
	return so.String()
}

var searchArgs = []string{
	"-protocol", "chain", "-n", "9", "-t", "3", "-lambda", "0.5", "-k", "21",
	"-tiebreak", "adversarial", "-attack", "fork",
	"-budget", "120", "-rungs", "4,12", "-seed", "11", "-format", "json",
}

// The search trajectory is reproducible from the printed seed and does
// not depend on how the trials are executed: in-process, and sharded
// across two spawned worker processes, must yield the same JSON result
// (the distributed run pins -chunk so even the lease accounting agrees).
func TestSearchSeedReproducibleAndDistributeInvariant(t *testing.T) {
	bin := amsearchBin(t)
	local := run(t, bin, searchArgs...)
	again := run(t, bin, searchArgs...)
	if local != again {
		t.Fatal("same seed produced different search results")
	}
	// Lease accounting differs between execution shapes by design, so
	// compare the trajectory: everything up to the stats block.
	cut := func(s string) string {
		if i := strings.Index(s, "\"Stats\""); i >= 0 {
			return s[:i]
		}
		return s
	}
	dist := run(t, bin, append(append([]string{}, searchArgs...), "-distribute", "2", "-chunk", "4")...)
	if cut(local) != cut(dist) {
		t.Fatalf("search result depends on -distribute:\nlocal:\n%s\ndist:\n%s", local, dist)
	}
}

// -promote minimizes the winner to a single-seed spec; -replay on that
// file must reproduce (exit 0), and -replay on a spec that never
// disagrees must fail the build (exit 1).
func TestPromoteReplayRoundTrip(t *testing.T) {
	bin := amsearchBin(t)
	dir := t.TempDir()
	args := []string{
		"-protocol", "chain", "-n", "9", "-t", "4", "-lambda", "0.5", "-k", "41",
		"-tiebreak", "adversarial", "-attack", "fork",
		"-budget", "120", "-rungs", "4,16", "-seed", "1", "-promote", dir,
	}
	out := run(t, bin, args...)
	if !strings.Contains(out, "promoted: ") {
		t.Fatalf("no promotion line in output:\n%s", out)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("promoted files = %v, err %v; want exactly one", files, err)
	}
	if out := run(t, bin, "-replay", files[0]); !strings.Contains(out, "reproduce") {
		t.Fatalf("replay output: %s", out)
	}

	clean := filepath.Join(dir, "clean.json")
	if err := os.WriteFile(clean, []byte(`{"protocol":"chain","n":6,"lambda":1,"k":11,"seed":1,"trials":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-replay", clean)
	if err := cmd.Run(); err == nil {
		t.Fatal("-replay on a clean spec should exit nonzero")
	}
}

func TestListShowsSchemas(t *testing.T) {
	bin := amsearchBin(t)
	out := run(t, bin, "-list")
	for _, want := range []string{"fork_period", "start_within", "withhold", "objectives:", "disagreement", "latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}

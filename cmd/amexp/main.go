// Command amexp regenerates the paper's experiments (see DESIGN.md's
// experiment index): each experiment corresponds to one theorem or lemma
// and prints the measured tables next to the analytic predictions.
//
// Examples:
//
//	amexp -list
//	amexp -e E10
//	amexp -e E5,E8,E10
//	amexp -e all -quick
//	amexp -e E6 -trials 200 -seed 42
//	amexp -e all -quick -format json -o results.json
//	amexp -e all -quick -check
//	amexp -e all -timing
//
// Selected experiments run concurrently on the shared trial scheduler;
// output is still emitted in selection order, so it is byte-identical to
// a serial run. -timing reports each experiment's wall clock on stderr.
//
// Exit codes: 0 on success, 1 on usage errors, 2 when -check finds a
// failed prediction.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	os.Exit(run())
}

// run carries the whole program so deferred cleanups (profile writers,
// output files) execute before the process exits with a status code.
func run() int {
	all := experiments.All()
	eHelp := fmt.Sprintf("experiment id (%s..%s), a comma-separated list, or 'all'", all[0].ID, all[len(all)-1].ID)
	var (
		exp     = flag.String("e", "all", eHelp)
		trials  = flag.Int("trials", 0, "trials per parameter point (0 = experiment default)")
		seed    = flag.Uint64("seed", 1, "base seed")
		quick   = flag.Bool("quick", false, "trimmed parameter grids")
		workers = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list experiments and exit")
		format  = flag.String("format", "text", "output format: text | md | json | csv")
		bars    = flag.Int("bars", -1, "also render this column index of each table as an ASCII bar chart (text/md only)")
		check   = flag.Bool("check", false, "evaluate each experiment's predictions; exit 2 if any fail")
		timing  = flag.Bool("timing", false, "report per-experiment and total wall clock on stderr")
		outPath = flag.String("o", "", "write output to this file instead of stdout")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %-55s %s\n", e.ID, e.Title, e.PaperRef)
		}
		return 0
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amexp: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "amexp: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amexp: %v\n", err)
			return 1
		}
		defer func() {
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "amexp: %v\n", err)
			}
			f.Close()
		}()
	}

	switch *format {
	case "text", "md", "json", "csv":
	default:
		fmt.Fprintf(os.Stderr, "amexp: unknown format %q (want text, md, json or csv)\n", *format)
		return 1
	}

	opts := experiments.Options{Trials: *trials, Seed: *seed, Quick: *quick, Workers: *workers}
	var selected []experiments.Experiment
	if strings.EqualFold(*exp, "all") {
		selected = all
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				fmt.Fprintf(os.Stderr, "amexp: empty experiment id in %q\n", *exp)
				return 1
			}
			e, ok := experiments.ByID(id)
			if !ok {
				ids := make([]string, len(all))
				for i, a := range all {
					ids[i] = a.ID
				}
				fmt.Fprintf(os.Stderr, "amexp: unknown experiment %q (valid: %s, or 'all')\n", id, strings.Join(ids, ", "))
				return 1
			}
			selected = append(selected, e)
		}
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amexp: %v\n", err)
			return 1
		}
		defer f.Close()
		out = f
	}

	failed := 0
	var results []*experiments.Result
	start := time.Now()
	// All selected experiments run concurrently on the shared trial
	// scheduler; RunStream hands back results in selection order, so the
	// text/md streams below are byte-identical to a serial run.
	experiments.RunStream(selected, opts, func(r *experiments.Result) {
		if *timing {
			fmt.Fprintf(os.Stderr, "amexp: %-4s %v", r.ID, r.Elapsed.Round(time.Millisecond))
			if r.Reuse != nil {
				fmt.Fprintf(os.Stderr, "  checkpoints captured=%d resumed=%d", r.Reuse.Captured, r.Reuse.Resumed)
			}
			fmt.Fprintln(os.Stderr)
		}
		switch *format {
		case "text", "md":
			// Stream each experiment as it is handed back, interleaving
			// the optional bar charts between tables.
			fmt.Fprint(out, report.Header(r))
			for _, t := range r.Tables {
				if *format == "md" {
					fmt.Fprintln(out, report.TableMarkdown(t))
				} else {
					fmt.Fprintln(out, report.TableText(t))
				}
				if *bars >= 0 && *bars < len(t.Cols) {
					fmt.Fprintln(out, report.Bars(t, *bars, 40))
				}
			}
			if *check {
				fmt.Fprintln(out, report.ChecksText(r))
			}
		default:
			results = append(results, r)
		}
		if *check {
			failed += experiments.FailedChecks(r.EvalChecks())
		}
	})
	if *timing {
		fmt.Fprintf(os.Stderr, "amexp: total %v\n", time.Since(start).Round(time.Millisecond))
	}

	switch *format {
	case "json":
		if err := report.WriteJSON(out, results); err != nil {
			fmt.Fprintf(os.Stderr, "amexp: %v\n", err)
			return 1
		}
	case "csv":
		if err := report.WriteCSV(out, results); err != nil {
			fmt.Fprintf(os.Stderr, "amexp: %v\n", err)
			return 1
		}
	}
	if *format == "json" || *format == "csv" {
		if *check {
			for _, r := range results {
				fmt.Fprint(os.Stderr, report.ChecksText(r))
			}
		}
	}

	if *check && failed > 0 {
		fmt.Fprintf(os.Stderr, "amexp: %d prediction check(s) failed\n", failed)
		return 2
	}
	return 0
}

// Command amexp regenerates the paper's experiments (see DESIGN.md's
// experiment index): each experiment corresponds to one theorem or lemma
// and prints the measured tables next to the analytic predictions.
//
// Examples:
//
//	amexp -list
//	amexp -e E10
//	amexp -e all -quick
//	amexp -e E6 -trials 200 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("e", "all", "experiment id (E1..E19) or 'all'")
		trials = flag.Int("trials", 0, "trials per parameter point (0 = experiment default)")
		seed   = flag.Uint64("seed", 1, "base seed")
		quick  = flag.Bool("quick", false, "trimmed parameter grids")
		list   = flag.Bool("list", false, "list experiments and exit")
		format = flag.String("format", "text", "output format: text | md")
		bars   = flag.Int("bars", -1, "also render this column index of each table as an ASCII bar chart")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-55s %s\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	opts := experiments.Options{Trials: *trials, Seed: *seed, Quick: *quick}
	var selected []experiments.Experiment
	if strings.EqualFold(*exp, "all") {
		selected = experiments.All()
	} else {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "amexp: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		selected = []experiments.Experiment{e}
	}

	for _, e := range selected {
		start := time.Now()
		tables := e.Run(opts)
		fmt.Printf("### %s — %s (%s) [%v]\n\n", e.ID, e.Title, e.PaperRef, time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			if *format == "md" {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t)
			}
			if *bars >= 0 && *bars < len(t.Cols) {
				fmt.Println(t.Bars(*bars, 40))
			}
		}
	}
}

// Command amcheck runs the Section 2 bivalence model checker: it
// exhaustively explores deterministic consensus protocols in the append
// memory and reports which consensus property fails — the executable form
// of Theorem 2.1 — and, for the retry-vote protocol, exhibits the explicit
// non-deciding schedule of the impossibility proof.
//
// Examples:
//
//	amcheck -n 3                 # check the whole threshold-vote family
//	amcheck -n 3 -retry -cycles 6  # show the non-deciding schedule
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bivalence"
)

func main() {
	var (
		n      = flag.Int("n", 3, "number of nodes (2 or 3 recommended)")
		max    = flag.Int("max", 300000, "configuration exploration bound")
		retry  = flag.Bool("retry", false, "analyze the FLP-style retry-vote protocol instead of the family")
		cycles = flag.Int("cycles", 4, "round-robin cycles of the non-deciding schedule (-retry)")
		dot    = flag.Int("dot", 0, "emit the first N configurations of the computation graph as Graphviz DOT and exit")
	)
	flag.Parse()
	if *n < 2 || *n > 6 {
		fmt.Fprintln(os.Stderr, "amcheck: n must be in [2,6] (state space is exponential)")
		os.Exit(1)
	}

	if *dot > 0 {
		p := bivalence.NewThresholdVote(2, bivalence.DecideMajority)
		inputs := make([]int, *n)
		for i := 1; i < *n; i++ {
			inputs[i] = 1
		}
		g := bivalence.Explore(p, bivalence.Initial(p, inputs), *max)
		fmt.Print(g.Dot(*dot))
		return
	}

	if *retry {
		p := &bivalence.RetryVote{N: *n}
		inputs := make([]int, *n)
		for i := 1; i < *n; i++ {
			inputs[i] = 1
		}
		fmt.Printf("protocol %s, inputs %v\n", p.Name(), inputs)
		g := bivalence.Explore(p, bivalence.Initial(p, inputs), *max)
		fmt.Printf("explored %d configurations (truncated: %v)\n", g.Size(), g.Truncated())
		fmt.Printf("initial configuration bivalent (Lemma 2.2): %v\n", g.Bivalent(g.Root()))
		trace, ok := g.NonDecidingSchedule(g.Root(), *cycles)
		fmt.Printf("non-deciding schedule over %d round-robin cycles: ok=%v, %d configurations visited\n",
			*cycles, ok, len(trace))
		if !ok {
			os.Exit(2)
		}
		fmt.Println("every visited configuration is bivalent and undecided — the Theorem 2.1 adversary in action")
		return
	}

	fmt.Printf("%-34s %-10s %-9s %-12s %-14s %-8s %s\n",
		"protocol", "agreement", "validity", "termination", "bivalent-init", "configs", "solves consensus?")
	anyOK := false
	for _, p := range bivalence.Family(*n) {
		v := bivalence.CheckTheorem(p, *n, *max)
		fmt.Printf("%-34s %-10v %-9v %-12v %-14v %-8d %v\n",
			v.Protocol, v.Agreement, v.Validity, v.Termination, v.BivalentInitial, v.Configs, v.OK())
		if v.OK() {
			anyOK = true
		}
	}
	if anyOK {
		fmt.Fprintln(os.Stderr, "amcheck: a protocol solved 1-resilient consensus — Theorem 2.1 falsified?!")
		os.Exit(2)
	}
	fmt.Println("\nevery candidate fails at least one property — consistent with Theorem 2.1")
}

// Command amcheck runs the Section 2 bivalence model checker: it
// exhaustively explores deterministic consensus protocols in the append
// memory and reports which consensus property fails — the executable form
// of Theorem 2.1 — and, for the retry-vote protocol, exhibits the explicit
// non-deciding schedule of the impossibility proof.
//
// Examples:
//
//	amcheck -n 3                 # check the whole threshold-vote family
//	amcheck -n 3 -format json    # the same verdicts as a structured record
//	amcheck -n 3 -retry -cycles 6  # show the non-deciding schedule
//
// Exit codes: 0 on success, 1 on usage errors, 2 when a protocol solves
// consensus (Theorem 2.1 falsified) or the non-deciding schedule is not
// found.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bivalence"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		n      = flag.Int("n", 3, "number of nodes (2 or 3 recommended)")
		max    = flag.Int("max", 300000, "configuration exploration bound")
		retry  = flag.Bool("retry", false, "analyze the FLP-style retry-vote protocol instead of the family")
		cycles = flag.Int("cycles", 4, "round-robin cycles of the non-deciding schedule (-retry)")
		dot    = flag.Int("dot", 0, "emit the first N configurations of the computation graph as Graphviz DOT and exit")
		format = flag.String("format", "text", "family output format: text | md | json | csv")
	)
	flag.Parse()
	if *n < 2 || *n > 6 {
		fmt.Fprintln(os.Stderr, "amcheck: n must be in [2,6] (state space is exponential)")
		os.Exit(1)
	}
	switch *format {
	case "text", "md", "json", "csv":
	default:
		fmt.Fprintf(os.Stderr, "amcheck: unknown format %q (want text, md, json or csv)\n", *format)
		os.Exit(1)
	}

	if *dot > 0 {
		p := bivalence.NewThresholdVote(2, bivalence.DecideMajority)
		inputs := make([]int, *n)
		for i := 1; i < *n; i++ {
			inputs[i] = 1
		}
		g := bivalence.Explore(p, bivalence.Initial(p, inputs), *max)
		fmt.Print(g.Dot(*dot))
		return
	}

	if *retry {
		p := &bivalence.RetryVote{N: *n}
		inputs := make([]int, *n)
		for i := 1; i < *n; i++ {
			inputs[i] = 1
		}
		fmt.Printf("protocol %s, inputs %v\n", p.Name(), inputs)
		g := bivalence.Explore(p, bivalence.Initial(p, inputs), *max)
		fmt.Printf("explored %d configurations (truncated: %v)\n", g.Size(), g.Truncated())
		fmt.Printf("initial configuration bivalent (Lemma 2.2): %v\n", g.Bivalent(g.Root()))
		trace, ok := g.NonDecidingSchedule(g.Root(), *cycles)
		fmt.Printf("non-deciding schedule over %d round-robin cycles: ok=%v, %d configurations visited\n",
			*cycles, ok, len(trace))
		if !ok {
			os.Exit(2)
		}
		fmt.Println("every visited configuration is bivalent and undecided — the Theorem 2.1 adversary in action")
		return
	}

	// Family check: build a typed table so every format renders from the
	// same structured record.
	tbl := experiments.NewTable("",
		"protocol", "agreement", "validity", "termination", "bivalent-init", "configs", "solves consensus?")
	anyOK := false
	for _, p := range bivalence.Family(*n) {
		v := bivalence.CheckTheorem(p, *n, *max)
		tbl.AddRow(v.Protocol, v.Agreement, v.Validity, v.Termination, v.BivalentInitial, v.Configs, v.OK())
		tbl.Expect(len(tbl.Rows)-1, 6, experiments.OpEq, 0, 0,
			"Theorem 2.1: no deterministic protocol in the family solves 1-resilient consensus")
		if v.OK() {
			anyOK = true
		}
	}
	tbl.Title = fmt.Sprintf("amcheck: threshold-vote family, n=%d, bound %d configurations", *n, *max)
	r := experiments.NewResult("amcheck", "Theorem 2.1 bivalence model check", "Theorem 2.1",
		[]*experiments.Table{tbl})

	switch *format {
	case "text":
		fmt.Print(report.TableText(tbl))
	case "md":
		fmt.Print(report.TableMarkdown(tbl))
	case "json":
		if err := report.WriteJSON(os.Stdout, []*experiments.Result{r}); err != nil {
			fmt.Fprintf(os.Stderr, "amcheck: %v\n", err)
			os.Exit(1)
		}
	case "csv":
		if err := report.WriteCSV(os.Stdout, []*experiments.Result{r}); err != nil {
			fmt.Fprintf(os.Stderr, "amcheck: %v\n", err)
			os.Exit(1)
		}
	}

	if anyOK {
		fmt.Fprintln(os.Stderr, "amcheck: a protocol solved 1-resilient consensus — Theorem 2.1 falsified?!")
		os.Exit(2)
	}
	if *format == "text" {
		fmt.Println("\nevery candidate fails at least one property — consistent with Theorem 2.1")
	}
}

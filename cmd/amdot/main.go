// Command amdot runs one protocol execution and dumps the resulting
// append-memory structure (chain tree or BlockDAG) as Graphviz DOT on
// stdout — Byzantine blocks in red, the decision prefix bold. With
// -topology it instead emits the generated network graph itself, so
// scenario topologies can be inspected before running anything. DOT
// output is refused above -dot-max-nodes (Graphviz layouts of 10k+-node
// graphs are unreadable and take minutes); use -stats there instead,
// which prints the graph's shape — size, degree distribution, hop
// diameter — without rendering it.
//
// Examples:
//
//	amdot -protocol chain -n 8 -t 3 -lambda 0.5 -k 15 -attack fork | dot -Tsvg > run.svg
//	amdot -protocol dag -n 8 -t 2 -lambda 1 -k 15 -attack private-chain
//	amdot -topology smallworld -n 16 -topology-params k=2,beta=0.3 | dot -Tsvg > net.svg
//	amdot -topology scalefree -n 10000 -topology-params m=3 -stats
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"

	"repro/internal/core"
	"repro/internal/dotviz"
	"repro/internal/scenario"
	"repro/internal/topology"
)

func main() {
	var (
		protocol   = flag.String("protocol", "dag", "chain | dag")
		n          = flag.Int("n", 8, "total nodes")
		t          = flag.Int("t", 2, "Byzantine nodes")
		lambda     = flag.Float64("lambda", 0.5, "token rate per node per Δ")
		k          = flag.Int("k", 15, "decision threshold")
		attack     = flag.String("attack", "silent", "Byzantine strategy (see amrun -h)")
		seed       = flag.Uint64("seed", 1, "seed")
		topo       = flag.String("topology", "", "emit this network topology as DOT instead of a run: "+scenario.Topologies.Help())
		topoParams = flag.String("topology-params", "", "topology generator parameters as k=v,k=v (e.g. k=2,beta=0.3)")
		linkDelay  = flag.Float64("link-delay", 0, "base per-link latency in Δ (0 = default 0.5)")
		stats      = flag.Bool("stats", false, "with -topology: print graph statistics instead of DOT")
		dotMax     = flag.Int("dot-max-nodes", 1024, "refuse DOT output for topologies above this many nodes")
	)
	flag.Parse()

	if *topo != "" {
		if _, ok := scenario.Topologies.Lookup(*topo); !ok {
			fatal(fmt.Errorf("unknown topology %q (have %s)", *topo, scenario.Topologies.Help()))
		}
		params, err := scenario.ParseTopologyParams(*topoParams)
		if err != nil {
			fatal(err)
		}
		g, err := scenario.BuildTopology(scenario.Spec{
			N: *n, Seed: *seed,
			Topology:       scenario.Topology(*topo),
			TopologyParams: params,
			LinkDelay:      *linkDelay,
		})
		if err != nil {
			fatal(err)
		}
		if *stats {
			printTopologyStats(g, *topo)
			return
		}
		if g.N() > *dotMax {
			fatal(fmt.Errorf("topology has %d nodes, above the %d-node DOT limit — a Graphviz layout at this scale is unusable; use -stats for a structural summary (or raise -dot-max-nodes)", g.N(), *dotMax))
		}
		fmt.Print(dotviz.Topology(g, *topo))
		return
	}

	if *stats {
		fatal(fmt.Errorf("-stats requires -topology"))
	}

	if *protocol != "chain" && *protocol != "dag" {
		fatal(fmt.Errorf("-protocol must be chain or dag"))
	}

	r, err := core.Run(core.Config{
		Protocol: core.Protocol(*protocol),
		N:        *n, T: *t, Lambda: *lambda, K: *k,
		Attack: core.Attack(*attack), Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	opts := dotviz.Options{IsByzantine: r.Roster.IsByzantine, K: *k}
	if *protocol == "chain" {
		fmt.Print(dotviz.Chain(r.FinalView, opts))
	} else {
		fmt.Print(dotviz.Dag(r.FinalView, opts))
	}
}

// printTopologyStats summarizes a generated graph without rendering it:
// size, degree spread, a power-of-two degree histogram (the shape that
// separates rings from scale-free hubs at a glance), and the hop
// diameter. This is the inspection path for graphs too large for DOT.
func printTopologyStats(g *topology.Graph, name string) {
	n := g.N()
	minDeg, maxDeg, total := n, 0, 0
	// Histogram bucket i counts nodes with degree in [2^i, 2^(i+1)).
	var hist [32]int
	for i := 0; i < n; i++ {
		d := g.Degree(i)
		total += d
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
		hist[bits.Len(uint(d))]++
	}
	fmt.Printf("topology:     %s\n", name)
	fmt.Printf("nodes:        %d\n", n)
	fmt.Printf("links:        %d\n", g.NumEdges())
	fmt.Printf("degree:       min %d / mean %.2f / max %d\n", minDeg, float64(total)/float64(n), maxDeg)
	fmt.Printf("degree histogram:\n")
	for i, c := range hist {
		if c == 0 {
			continue
		}
		lo := 0
		if i > 0 {
			lo = 1 << (i - 1)
		}
		hi := 1<<i - 1
		if lo == hi {
			fmt.Printf("  %7d       %6d nodes\n", lo, c)
		} else {
			fmt.Printf("  %4d-%-4d     %6d nodes\n", lo, hi, c)
		}
	}
	fmt.Printf("hop diameter: %d\n", g.HopDiameter())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amdot:", err)
	os.Exit(1)
}

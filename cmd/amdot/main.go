// Command amdot runs one protocol execution and dumps the resulting
// append-memory structure (chain tree or BlockDAG) as Graphviz DOT on
// stdout — Byzantine blocks in red, the decision prefix bold.
//
// Examples:
//
//	amdot -protocol chain -n 8 -t 3 -lambda 0.5 -k 15 -attack fork | dot -Tsvg > run.svg
//	amdot -protocol dag -n 8 -t 2 -lambda 1 -k 15 -attack private-chain
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dotviz"
)

func main() {
	var (
		protocol = flag.String("protocol", "dag", "chain | dag")
		n        = flag.Int("n", 8, "total nodes")
		t        = flag.Int("t", 2, "Byzantine nodes")
		lambda   = flag.Float64("lambda", 0.5, "token rate per node per Δ")
		k        = flag.Int("k", 15, "decision threshold")
		attack   = flag.String("attack", "silent", "Byzantine strategy (see amrun -h)")
		seed     = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()
	if *protocol != "chain" && *protocol != "dag" {
		fmt.Fprintln(os.Stderr, "amdot: -protocol must be chain or dag")
		os.Exit(1)
	}

	r, err := core.Run(core.Config{
		Protocol: core.Protocol(*protocol),
		N:        *n, T: *t, Lambda: *lambda, K: *k,
		Attack: core.Attack(*attack), Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "amdot:", err)
		os.Exit(1)
	}
	opts := dotviz.Options{IsByzantine: r.Roster.IsByzantine, K: *k}
	if *protocol == "chain" {
		fmt.Print(dotviz.Chain(r.FinalView, opts))
	} else {
		fmt.Print(dotviz.Dag(r.FinalView, opts))
	}
}

// Command amdot runs one protocol execution and dumps the resulting
// append-memory structure (chain tree or BlockDAG) as Graphviz DOT on
// stdout — Byzantine blocks in red, the decision prefix bold. With
// -topology it instead emits the generated network graph itself, so
// scenario topologies can be inspected before running anything.
//
// Examples:
//
//	amdot -protocol chain -n 8 -t 3 -lambda 0.5 -k 15 -attack fork | dot -Tsvg > run.svg
//	amdot -protocol dag -n 8 -t 2 -lambda 1 -k 15 -attack private-chain
//	amdot -topology smallworld -n 16 -topology-params k=2,beta=0.3 | dot -Tsvg > net.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dotviz"
	"repro/internal/scenario"
)

func main() {
	var (
		protocol   = flag.String("protocol", "dag", "chain | dag")
		n          = flag.Int("n", 8, "total nodes")
		t          = flag.Int("t", 2, "Byzantine nodes")
		lambda     = flag.Float64("lambda", 0.5, "token rate per node per Δ")
		k          = flag.Int("k", 15, "decision threshold")
		attack     = flag.String("attack", "silent", "Byzantine strategy (see amrun -h)")
		seed       = flag.Uint64("seed", 1, "seed")
		topo       = flag.String("topology", "", "emit this network topology as DOT instead of a run: "+scenario.Topologies.Help())
		topoParams = flag.String("topology-params", "", "topology generator parameters as k=v,k=v (e.g. k=2,beta=0.3)")
		linkDelay  = flag.Float64("link-delay", 0, "base per-link latency in Δ (0 = default 0.5)")
	)
	flag.Parse()

	if *topo != "" {
		if _, ok := scenario.Topologies.Lookup(*topo); !ok {
			fatal(fmt.Errorf("unknown topology %q (have %s)", *topo, scenario.Topologies.Help()))
		}
		params, err := scenario.ParseTopologyParams(*topoParams)
		if err != nil {
			fatal(err)
		}
		g, err := scenario.BuildTopology(scenario.Spec{
			N: *n, Seed: *seed,
			Topology:       scenario.Topology(*topo),
			TopologyParams: params,
			LinkDelay:      *linkDelay,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(dotviz.Topology(g, *topo))
		return
	}

	if *protocol != "chain" && *protocol != "dag" {
		fatal(fmt.Errorf("-protocol must be chain or dag"))
	}

	r, err := core.Run(core.Config{
		Protocol: core.Protocol(*protocol),
		N:        *n, T: *t, Lambda: *lambda, K: *k,
		Attack: core.Attack(*attack), Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	opts := dotviz.Options{IsByzantine: r.Roster.IsByzantine, K: *k}
	if *protocol == "chain" {
		fmt.Print(dotviz.Chain(r.FinalView, opts))
	} else {
		fmt.Print(dotviz.Dag(r.FinalView, opts))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amdot:", err)
	os.Exit(1)
}

// Command amworker serves append-memory sweep leases to a distributed
// amrun coordinator. It speaks the internal/distrib length-prefixed JSON
// protocol either over stdin/stdout (the default — what `amrun
// -distribute N` spawns) or over TCP for remote fleets:
//
//	amworker -listen :7070          # on each worker machine
//	amrun -spec sweep.json -workers-addr host1:7070,host2:7070
//
// A worker holds no state a coordinator depends on: killing one
// mid-sweep only moves its leases elsewhere, the merged output is
// byte-identical.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"repro/internal/distrib"
)

func main() {
	listen := flag.String("listen", "", "serve leases over TCP on this address (default: stdio)")
	flag.Parse()

	if *listen == "" {
		if err := distrib.ServeStdio(); err != nil {
			fmt.Fprintln(os.Stderr, "amworker:", err)
			os.Exit(1)
		}
		return
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amworker:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "amworker: serving leases on %s\n", ln.Addr())
	if err := distrib.ServeTCP(ln); err != nil {
		fmt.Fprintln(os.Stderr, "amworker:", err)
		os.Exit(1)
	}
}

package stickybit

import (
	"testing"
	"testing/quick"

	"repro/internal/bivalence"
)

func TestBitFirstWriteWins(t *testing.T) {
	var b Bit
	if b.IsSet() {
		t.Fatal("zero value set")
	}
	if _, ok := b.Read(); ok {
		t.Fatal("unset bit readable")
	}
	if !b.Write(1) {
		t.Fatal("first write did not stick")
	}
	if b.Write(0) {
		t.Fatal("second write stuck")
	}
	v, ok := b.Read()
	if !ok || v != 1 {
		t.Fatalf("read = (%d, %v)", v, ok)
	}
}

func TestBitPropertySticky(t *testing.T) {
	// Property: after any write sequence, the bit holds the first value.
	if err := quick.Check(func(vals []bool) bool {
		var b Bit
		for i, v := range vals {
			iv := 0
			if v {
				iv = 1
			}
			stuck := b.Write(iv)
			if (i == 0) != stuck {
				return false
			}
		}
		if len(vals) == 0 {
			return !b.IsSet()
		}
		got, ok := b.Read()
		want := 0
		if vals[0] {
			want = 1
		}
		return ok && got == want
	}, nil); err != nil {
		t.Error(err)
	}
}

// The §1.2 separation, executable: sticky bits solve 1-resilient consensus
// for every n the verifier covers...
func TestStickyBitsSolveConsensus(t *testing.T) {
	for n := 2; n <= 4; n++ {
		rep := Verify(n)
		if !rep.OK() {
			t.Fatalf("n=%d: %+v", n, rep)
		}
		if rep.Configurations == 0 {
			t.Fatal("nothing explored")
		}
	}
}

// ...while the append memory cannot (Theorem 2.1, cross-checked against
// the bivalence checker on the same task).
func TestAppendMemoryCannot(t *testing.T) {
	for _, p := range bivalence.Family(2) {
		if v := bivalence.CheckTheorem(p, 2, 100000); v.OK() {
			t.Fatalf("append-memory protocol %s solved consensus", v.Protocol)
		}
	}
}

func TestVerifyBounds(t *testing.T) {
	for _, n := range []int{1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Verify(%d) did not panic", n)
				}
			}()
			Verify(n)
		}()
	}
}

func TestVerifyDetectsBrokenObject(t *testing.T) {
	// Sanity check that the verifier is not vacuous: a "last write wins"
	// register (ordinary read-write register) would break agreement. We
	// simulate by checking that the sticky semantics is what makes
	// agreement hold: with split inputs, both orders of the two writes are
	// explored and the deciders follow the bit, so if the bit flipped on
	// the second write the runs would disagree. Verify that both input
	// orders genuinely occur by checking configuration counts grow with n.
	small := Verify(2).Configurations
	big := Verify(3).Configurations
	if big <= small {
		t.Fatalf("exploration not growing: %d vs %d", small, big)
	}
}

// Package stickybit implements the sticky-bit shared object of Plotkin
// (and of Malkhi et al., the paper's reference [16]) and verifies — by
// exhaustive exploration of all schedules — that it solves 1-resilient
// binary consensus, for any number of nodes.
//
// This is the contrast the paper draws in Sections 1 and 1.3: "the append
// memory is not as strong as the concept of sticky bits, since it does not
// make use of registers that implicitly solve consensus for two parallel
// writes". A sticky bit retains the FIRST value ever written; two
// concurrent writes are implicitly ordered by the object, so the object's
// consensus number is unbounded. The append memory deliberately withholds
// this power (two concurrent appends both land, unordered), which is why
// Theorem 2.1 applies to it while the trivial sticky-bit protocol below is
// a correct consensus algorithm.
//
// The verifier mirrors internal/bivalence's configuration-graph approach:
// node programs are deterministic (write your input to the bit, read it,
// decide what you read); only the scheduler chooses interleavings; the
// whole graph is explored and every property checked on every reachable
// configuration, including all crash (v-free) variants.
package stickybit

// Bit is a sticky bit: Write succeeds only while the bit is unset; Read
// returns the retained value. The zero value is an unset bit.
type Bit struct {
	set bool
	val int
}

// Write sets the bit to v if it is unset and reports whether this write
// stuck. Concurrent writers are implicitly ordered: exactly one sticks.
func (b *Bit) Write(v int) bool {
	if b.set {
		return false
	}
	b.set = true
	b.val = v
	return true
}

// Read returns (value, true) when the bit is set, (0, false) otherwise.
func (b *Bit) Read() (int, bool) {
	return b.val, b.set
}

// IsSet reports whether some write has stuck.
func (b *Bit) IsSet() bool { return b.set }

// The consensus protocol: each node (phase 0) writes its input to the
// bit, then (phase 1) reads it and decides the retained value.

type phase int

const (
	phaseWrite phase = iota
	phaseRead
	phaseDone
)

type nodeState struct {
	phase    phase
	input    int
	decision int
}

// config is one configuration of the exhaustive exploration: the bit
// state plus every node's local state. Value semantics; comparable.
type config struct {
	bitSet bool
	bitVal int
	nodes  [maxNodes]nodeState
	n      int
}

// maxNodes bounds the exhaustive verifier; schedules grow super-
// exponentially, so this stays small (the consensus-number argument only
// needs n = 2 anyway).
const maxNodes = 4

// step advances node i by one deterministic operation and returns the
// successor (self for done nodes).
func (c config) step(i int) config {
	s := c.nodes[i]
	switch s.phase {
	case phaseWrite:
		if !c.bitSet {
			c.bitSet, c.bitVal = true, s.input
		}
		c.nodes[i].phase = phaseRead
	case phaseRead:
		// The bit is necessarily set: this node wrote in its previous step.
		c.nodes[i].decision = c.bitVal
		c.nodes[i].phase = phaseDone
	}
	return c
}

// Report is the outcome of the exhaustive verification.
type Report struct {
	N              int
	Configurations int
	Agreement      bool // all deciders agree, in every reachable config
	Validity       bool // unanimous inputs force that decision
	Termination    bool // 1-resilient: in every v-free run all others decide
}

// OK reports whether the object solves 1-resilient consensus.
func (r Report) OK() bool { return r.Agreement && r.Validity && r.Termination }

// Verify exhaustively explores every schedule of the sticky-bit consensus
// protocol for all 2^n input assignments and checks the three consensus
// properties, including every single-crash (v-free) variant. It panics for
// n outside [2, maxNodes].
func Verify(n int) Report {
	if n < 2 || n > maxNodes {
		panic("stickybit: Verify supports 2..4 nodes")
	}
	rep := Report{N: n, Agreement: true, Validity: true, Termination: true}

	for bits := 0; bits < 1<<uint(n); bits++ {
		var init config
		init.n = n
		allSame := true
		for i := 0; i < n; i++ {
			init.nodes[i] = nodeState{phase: phaseWrite, input: (bits >> uint(i)) & 1}
			if init.nodes[i].input != init.nodes[0].input {
				allSame = false
			}
		}

		// Explore the full configuration graph (all nodes may step).
		seen := map[config]bool{init: true}
		queue := []config{init}
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			rep.Configurations++

			// Agreement and validity on this configuration.
			first, have := 0, false
			for i := 0; i < n; i++ {
				if c.nodes[i].phase != phaseDone {
					continue
				}
				d := c.nodes[i].decision
				if have && d != first {
					rep.Agreement = false
				}
				first, have = d, true
				if allSame && d != init.nodes[0].input {
					rep.Validity = false
				}
			}

			for i := 0; i < n; i++ {
				next := c.step(i)
				if next != c && !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}

		// 1-resilient termination: in the v-free subgraph, every maximal
		// run leaves all nodes != v decided. Because each node's program is
		// wait-free (write, read, done — never blocked on others), it
		// suffices to check that from every reachable v-free configuration,
		// running each node != v to completion decides it; i.e. no node can
		// be stuck. We verify it directly by exhausting v-free schedules.
		for v := 0; v < n; v++ {
			seenV := map[config]bool{init: true}
			queueV := []config{init}
			for len(queueV) > 0 {
				c := queueV[0]
				queueV = queueV[1:]
				terminal := true
				for i := 0; i < n; i++ {
					if i == v {
						continue
					}
					next := c.step(i)
					if next != c {
						terminal = false
						if !seenV[next] {
							seenV[next] = true
							queueV = append(queueV, next)
						}
					}
				}
				if terminal {
					for i := 0; i < n; i++ {
						if i != v && c.nodes[i].phase != phaseDone {
							rep.Termination = false
						}
					}
				}
			}
		}
	}
	return rep
}

package bivalence

// Termination analysis: 1-resilient termination fails for faulty node v
// when there exists a fair infinite v-free computation in which some
// correct node never decides. On the finite computation graph this is a
// reachable strongly connected component of the v-free step graph in
// which (a) every node w ≠ v has at least one step (no-op self-steps
// count — reading an unchanged memory is an operation, the paper's
// property (b)), and (b) some node w ≠ v is undecided. Decision flags are
// monotone along edges, so all configurations of one SCC agree on who has
// decided.

// TerminationViolation searches for such an SCC with node v silent.
// It returns a configuration index inside a violating SCC, or -1.
func (g *Graph) TerminationViolation(v int) int {
	if g.truncated {
		return -1 // sound answers only on fully explored graphs
	}
	n := len(g.configs)

	// v-free reachability from the root.
	reach := make([]bool, n)
	stack := []int{0}
	reach[0] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for node := 0; node < g.n; node++ {
			if node == v {
				continue
			}
			j := g.Succ(i, node)
			if !reach[j] {
				reach[j] = true
				stack = append(stack, j)
			}
		}
	}

	// Tarjan SCC over the v-free edges restricted to reachable configs.
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var tarStack []int
	counter := 0
	comps := 0

	type frame struct {
		node int
		edge int
	}
	for start := 0; start < n; start++ {
		if !reach[start] || index[start] != -1 {
			continue
		}
		var frames []frame
		push := func(i int) {
			index[i] = counter
			low[i] = counter
			counter++
			tarStack = append(tarStack, i)
			onStack[i] = true
			frames = append(frames, frame{node: i})
		}
		push(start)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.edge < g.n {
				step := f.edge
				f.edge++
				if step == v {
					continue
				}
				j := g.Succ(f.node, step)
				if !reach[j] {
					continue
				}
				if index[j] == -1 {
					push(j)
					advanced = true
					break
				}
				if onStack[j] && index[j] < low[f.node] {
					low[f.node] = index[j]
				}
			}
			if advanced {
				continue
			}
			// Pop frame.
			i := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if low[i] < low[frames[len(frames)-1].node] {
					low[frames[len(frames)-1].node] = low[i]
				}
			}
			if low[i] == index[i] {
				for {
					j := tarStack[len(tarStack)-1]
					tarStack = tarStack[:len(tarStack)-1]
					onStack[j] = false
					comp[j] = comps
					if j == i {
						break
					}
				}
				comps++
			}
		}
	}

	// Per SCC: which nodes step internally, and is someone undecided.
	type sccInfo struct {
		steps     []bool
		undecided bool
		rep       int
		hasEdge   bool
	}
	infos := make([]*sccInfo, comps)
	for i := 0; i < n; i++ {
		if !reach[i] || comp[i] == -1 {
			continue
		}
		ci := comp[i]
		if infos[ci] == nil {
			infos[ci] = &sccInfo{steps: make([]bool, g.n), rep: i}
		}
		info := infos[ci]
		for _, s := range g.configs[i].States {
			_ = s
		}
		for w := 0; w < g.n; w++ {
			if w == v {
				continue
			}
			j := g.Succ(i, w)
			if reach[j] && comp[j] == ci {
				info.steps[w] = true
				info.hasEdge = true
			}
		}
		for w := 0; w < g.n; w++ {
			if w != v && !g.configs[i].States[w].Decided {
				info.undecided = true
			}
		}
	}
	for _, info := range infos {
		if info == nil || !info.hasEdge || !info.undecided {
			continue
		}
		ok := true
		for w := 0; w < g.n; w++ {
			if w != v && !info.steps[w] {
				ok = false
				break
			}
		}
		if ok {
			return info.rep
		}
	}
	return -1
}

// Verdict summarizes a full Theorem 2.1 check of one protocol on one node
// count: which consensus property fails (at least one must, by the
// impossibility result).
type Verdict struct {
	Protocol  string
	N         int
	Agreement bool // true = holds on all explored input assignments
	Validity  bool
	// Termination is 1-resilient termination: false when some faulty-node
	// choice admits a fair non-deciding computation.
	Termination bool
	// BivalentInitial reports whether some input assignment yields a
	// bivalent initial configuration (Lemma 2.2's premise for protocols
	// with both decisions reachable).
	BivalentInitial bool
	// Configs is the total number of configurations explored.
	Configs int
}

// OK reports whether the protocol would solve 1-resilient consensus —
// Theorem 2.1 says this must never be true.
func (v Verdict) OK() bool { return v.Agreement && v.Validity && v.Termination }

// CheckTheorem runs the full analysis of one protocol for n nodes over all
// 2^n input assignments, exploring at most maxConfigs configurations per
// assignment.
func CheckTheorem(p Protocol, n, maxConfigs int) Verdict {
	v := Verdict{Protocol: p.Name(), N: n, Agreement: true, Validity: true, Termination: true}
	for bits := 0; bits < 1<<uint(n); bits++ {
		inputs := make([]int, n)
		allSame := true
		for i := range inputs {
			inputs[i] = (bits >> uint(i)) & 1
			if inputs[i] != inputs[0] {
				allSame = false
			}
		}
		g := Explore(p, Initial(p, inputs), maxConfigs)
		v.Configs += g.Size()
		if g.AgreementViolation() >= 0 {
			v.Agreement = false
		}
		if allSame && g.DecisionReached(1-inputs[0]) {
			v.Validity = false
		}
		if g.Bivalent(g.Root()) {
			v.BivalentInitial = true
		}
		for faulty := 0; faulty < n; faulty++ {
			if g.TerminationViolation(faulty) >= 0 {
				v.Termination = false
				break
			}
		}
	}
	return v
}

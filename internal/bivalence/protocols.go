package bivalence

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file defines the candidate protocol family the Theorem 2.1
// experiment sweeps. Each protocol follows the natural shape of a
// read-write consensus attempt in the append memory: append your input
// once, then read until a decision criterion fires. The family varies the
// wait threshold θ (how many appends a node must see before deciding) and
// the decision function. Theorem 2.1 predicts that every member fails
// agreement, validity or 1-resilient termination — the checker verifies it
// exhaustively for small n.

// DecisionFunc maps the multiset of seen messages to a decision value.
type DecisionFunc struct {
	Name string
	F    func(view []Msg) int
}

// DecideMajority decides the majority value, ties broken towards the value
// of the smallest author seen.
var DecideMajority = DecisionFunc{
	Name: "majority",
	F: func(view []Msg) int {
		count := [2]int{}
		minAuthor, minVal := 1<<30, 0
		for _, m := range view {
			count[m.Value]++
			if m.Author < minAuthor {
				minAuthor, minVal = m.Author, m.Value
			}
		}
		switch {
		case count[0] > count[1]:
			return 0
		case count[1] > count[0]:
			return 1
		default:
			return minVal
		}
	},
}

// DecideMinAuthor decides the value appended by the smallest author seen.
var DecideMinAuthor = DecisionFunc{
	Name: "min-author",
	F: func(view []Msg) int {
		best, val := 1<<30, 0
		for _, m := range view {
			if m.Author < best {
				best, val = m.Author, m.Value
			}
		}
		return val
	},
}

// DecideMaxValue decides 1 if any 1 was seen (OR of the inputs seen).
var DecideMaxValue = DecisionFunc{
	Name: "max-value",
	F: func(view []Msg) int {
		for _, m := range view {
			if m.Value == 1 {
				return 1
			}
		}
		return 0
	},
}

// ThresholdVote is the family member: append the input once, then read
// until at least Theta distinct authors are visible, then decide
// Decide.F(view).
type ThresholdVote struct {
	Theta  int
	Decide DecisionFunc
}

// NewThresholdVote constructs a family member.
func NewThresholdVote(theta int, decide DecisionFunc) *ThresholdVote {
	return &ThresholdVote{Theta: theta, Decide: decide}
}

// Name implements Protocol.
func (t *ThresholdVote) Name() string {
	return fmt.Sprintf("threshold-vote(θ=%d,%s)", t.Theta, t.Decide.Name)
}

// State encoding: "A:<input>" before the append, "R:<input>" after.
// Everything else the node knows is read fresh from the memory, so no
// more needs to be remembered.

// Init implements Protocol.
func (t *ThresholdVote) Init(_, input int) State {
	return State{Data: fmt.Sprintf("A:%d", input)}
}

// Next implements Protocol.
func (t *ThresholdVote) Next(_ int, s State) Op {
	if strings.HasPrefix(s.Data, "A:") {
		return Op{Append: true, Value: int(s.Data[2] - '0')}
	}
	return Op{}
}

// OnAppend implements Protocol.
func (t *ThresholdVote) OnAppend(_ int, s State) State {
	return State{Data: "R:" + s.Data[2:]}
}

// OnRead implements Protocol.
func (t *ThresholdVote) OnRead(_ int, s State, view []Msg) State {
	if strings.HasPrefix(s.Data, "A:") {
		return s // still has to append; reads before that change nothing
	}
	// The view is sorted by (author, seq), so distinct authors are the
	// author-change boundaries — no set needed.
	distinct, prev := 0, -1
	for _, m := range view {
		if m.Author != prev {
			distinct++
			prev = m.Author
		}
	}
	if distinct < t.Theta {
		return s
	}
	return State{Data: s.Data, Decided: true, Decision: t.Decide.F(view)}
}

// Family returns the candidate protocols checked in the Theorem 2.1
// experiment for n nodes: all thresholds 1..n crossed with the three
// decision functions.
func Family(n int) []Protocol {
	var ps []Protocol
	for theta := 1; theta <= n; theta++ {
		for _, d := range []DecisionFunc{DecideMajority, DecideMinAuthor, DecideMaxValue} {
			ps = append(ps, NewThresholdVote(theta, d))
		}
	}
	return ps
}

// ViewString renders a view compactly for debugging and reports.
func ViewString(view []Msg) string {
	msgs := append([]Msg(nil), view...)
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].Author != msgs[j].Author {
			return msgs[i].Author < msgs[j].Author
		}
		return msgs[i].Seq < msgs[j].Seq
	})
	parts := make([]string, len(msgs))
	for i, m := range msgs {
		parts[i] = fmt.Sprintf("%d:%d", m.Author, m.Value)
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// RetryVote is the FLP-style adaptive protocol on which the paper's
// bivalence argument bites in its full form: nodes vote in phases
// (a node's phase-p vote is its (p+1)-th append), wait until n−1 distinct
// authors have voted in their current phase, decide on unanimity and
// otherwise adopt the majority and move to the next phase. It satisfies
// validity, pursues termination — and therefore, by Theorem 2.1, must
// admit schedules on which it never decides. The computation graph is
// infinite (phases are unbounded); the checker explores it truncated and
// exhibits arbitrarily long non-deciding bivalent schedules.
type RetryVote struct {
	// N is the number of nodes (the wait threshold is N−1).
	N int
}

// Name implements Protocol.
func (r *RetryVote) Name() string { return fmt.Sprintf("retry-vote(n=%d)", r.N) }

// State encoding: "V:<phase>:<vote>:<a|r>" — a: must append its phase vote,
// r: appended, reading.

// Init implements Protocol.
func (r *RetryVote) Init(_, input int) State {
	return retryState(0, input, false)
}

// retryState renders the canonical "V:<phase>:<vote>:<a|r>" encoding.
func retryState(phase, vote int, appended bool) State {
	mode := ":a"
	if appended {
		mode = ":r"
	}
	return State{Data: "V:" + strconv.Itoa(phase) + ":" + strconv.Itoa(vote) + mode}
}

func parseRetry(data string) (phase, vote int, appended bool) {
	// Inverse of retryState; a manual scan, since this runs on every
	// Next/OnRead/OnAppend of the exploration.
	i := 2
	for ; i < len(data) && data[i] != ':'; i++ {
		phase = phase*10 + int(data[i]-'0')
	}
	for i++; i < len(data) && data[i] != ':'; i++ {
		vote = vote*10 + int(data[i]-'0')
	}
	return phase, vote, i+1 < len(data) && data[i+1] == 'r'
}

// Next implements Protocol.
func (r *RetryVote) Next(_ int, s State) Op {
	_, vote, appended := parseRetry(s.Data)
	if !appended {
		return Op{Append: true, Value: vote}
	}
	return Op{}
}

// OnAppend implements Protocol.
func (r *RetryVote) OnAppend(_ int, s State) State {
	phase, vote, _ := parseRetry(s.Data)
	return retryState(phase, vote, true)
}

// OnRead implements Protocol.
func (r *RetryVote) OnRead(_ int, s State, view []Msg) State {
	phase, _, appended := parseRetry(s.Data)
	if !appended {
		return s
	}
	// Phase-p votes are the appends with Seq == p.
	count := [2]int{}
	total := 0
	for _, m := range view {
		if m.Seq == phase {
			count[m.Value]++
			total++
		}
	}
	if total < r.N-1 {
		return s
	}
	if count[0] == total || count[1] == total {
		d := 0
		if count[1] > 0 {
			d = 1
		}
		return State{Data: s.Data, Decided: true, Decision: d}
	}
	adopt := 0
	if count[1] > count[0] {
		adopt = 1
	}
	return retryState(phase+1, adopt, false)
}

package bivalence

import (
	"strings"
	"testing"
)

func TestApplyAppendAndSeq(t *testing.T) {
	p := NewThresholdVote(2, DecideMajority)
	c := Initial(p, []int{1, 0})
	c1, changed := Apply(p, c, 0)
	if !changed {
		t.Fatal("append reported no change")
	}
	if len(c1.Mem) != 1 || c1.Mem[0] != (Msg{Author: 0, Seq: 0, Value: 1}) {
		t.Fatalf("mem = %v", c1.Mem)
	}
	// Original config untouched (value semantics).
	if len(c.Mem) != 0 {
		t.Fatal("Apply mutated the input configuration")
	}
}

func TestApplyNoOpRead(t *testing.T) {
	p := NewThresholdVote(2, DecideMajority)
	c := Initial(p, []int{1, 0})
	c1, _ := Apply(p, c, 0) // 0 appends
	c2, _ := Apply(p, c1, 0)
	// Node 0 now reads; only its own append is visible (< θ=2): state
	// unchanged → property (b) self-loop.
	c3, changed := Apply(p, c2, 0)
	if changed {
		t.Fatal("read below threshold changed the configuration")
	}
	if c3.Key() != c2.Key() {
		t.Fatal("no-op read altered the configuration key")
	}
}

func TestDecidedNodesHalt(t *testing.T) {
	p := NewThresholdVote(1, DecideMajority)
	c := Initial(p, []int{1, 1})
	c, _ = Apply(p, c, 0) // append
	c, _ = Apply(p, c, 0) // read, sees 1 author >= θ=1 → decides
	if !c.States[0].Decided || c.States[0].Decision != 1 {
		t.Fatalf("state = %+v", c.States[0])
	}
	c2, changed := Apply(p, c, 0)
	if changed || c2.Key() != c.Key() {
		t.Fatal("decided node still takes effective steps")
	}
}

func TestKeyIgnoresCrossRegisterOrder(t *testing.T) {
	// Two schedules: node 0 appends then node 1, and vice versa. The
	// memories must be identical — the append memory cannot order appends
	// from different nodes.
	p := NewThresholdVote(2, DecideMajority)
	c0 := Initial(p, []int{1, 0})
	a, _ := Apply(p, c0, 0)
	a, _ = Apply(p, a, 1)
	b, _ := Apply(p, c0, 1)
	b, _ = Apply(p, b, 0)
	if a.Key() != b.Key() {
		t.Fatalf("append order leaked into configuration:\n%s\n%s", a.Key(), b.Key())
	}
}

func TestExploreCompleteAndValency(t *testing.T) {
	p := NewThresholdVote(1, DecideMajority)
	g := Explore(p, Initial(p, []int{0, 1}), 100000)
	if g.Truncated() {
		t.Fatal("tiny graph truncated")
	}
	if !g.Bivalent(g.Root()) {
		t.Fatal("θ=1 with split inputs must be bivalent (each node can decide its own value first)")
	}
}

func TestUnanimousInputsUnivalent(t *testing.T) {
	p := NewThresholdVote(1, DecideMajority)
	g := Explore(p, Initial(p, []int{1, 1}), 100000)
	if g.Bivalent(g.Root()) {
		t.Fatal("unanimous inputs produced a bivalent initial configuration")
	}
	if !g.DecisionReached(1) || g.DecisionReached(0) {
		t.Fatal("validity broken on unanimous inputs")
	}
}

func TestAgreementViolationFound(t *testing.T) {
	// θ=1: both nodes can decide their own value before seeing the other.
	p := NewThresholdVote(1, DecideMajority)
	g := Explore(p, Initial(p, []int{0, 1}), 100000)
	if g.AgreementViolation() < 0 {
		t.Fatal("known agreement violation not found")
	}
}

func TestTerminationViolationForWaitAll(t *testing.T) {
	// θ=n: if one node is silent the others wait forever.
	p := NewThresholdVote(3, DecideMajority)
	g := Explore(p, Initial(p, []int{0, 1, 1}), 200000)
	found := false
	for v := 0; v < 3; v++ {
		if g.TerminationViolation(v) >= 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("wait-for-all protocol passed 1-resilient termination")
	}
}

func TestNoFalseTerminationViolation(t *testing.T) {
	// θ=1 decides after its own append: no v-free computation can stall
	// an undecided correct node forever.
	p := NewThresholdVote(1, DecideMajority)
	g := Explore(p, Initial(p, []int{0, 1}), 100000)
	for v := 0; v < 2; v++ {
		if i := g.TerminationViolation(v); i >= 0 {
			t.Fatalf("false termination violation at config %d with faulty %d", i, v)
		}
	}
}

func TestExtendBivalence(t *testing.T) {
	// Lemma 2.3 on a concrete bivalent configuration.
	p := &RetryVote{N: 3}
	g := Explore(p, Initial(p, []int{0, 1, 1}), 30000)
	if !g.Bivalent(g.Root()) {
		t.Fatal("root not bivalent")
	}
	for node := 0; node < 3; node++ {
		path, ok := g.ExtendBivalence(g.Root(), node)
		if !ok {
			t.Fatalf("no bivalent extension with a step of node %d", node)
		}
		if len(path) < 1 || !g.Bivalent(path[len(path)-1]) {
			t.Fatalf("extension path does not end bivalent: %v", path)
		}
	}
}

func TestNonDecidingSchedule(t *testing.T) {
	// Theorem 2.1's construction on the FLP-style RetryVote protocol: a
	// schedule prefix in which every node steps repeatedly and every
	// configuration stays bivalent and undecided.
	p := &RetryVote{N: 3}
	g := Explore(p, Initial(p, []int{0, 1, 1}), 30000)
	if !g.Bivalent(g.Root()) {
		t.Fatal("RetryVote root not bivalent for split inputs")
	}
	trace, ok := g.NonDecidingSchedule(g.Root(), 4)
	if !ok {
		t.Fatal("non-deciding schedule construction got stuck (falsifies Lemma 2.3)")
	}
	if len(trace) < 5 {
		t.Fatalf("suspiciously short schedule: %v", trace)
	}
	for _, i := range trace {
		if !g.Bivalent(i) {
			t.Fatalf("schedule visited a univalent configuration %d", i)
		}
		for _, s := range g.Config(i).States {
			if s.Decided {
				t.Fatal("schedule visited a decided configuration")
			}
		}
	}
}

func TestRetryVoteValidityAndDecidability(t *testing.T) {
	p := &RetryVote{N: 3}
	// Unanimous inputs: only that value is ever decided.
	g1 := Explore(p, Initial(p, []int{1, 1, 1}), 30000)
	if g1.DecisionReached(0) || !g1.DecisionReached(1) {
		t.Fatal("RetryVote violates validity on unanimous 1s")
	}
	g0 := Explore(p, Initial(p, []int{0, 0, 0}), 30000)
	if g0.DecisionReached(1) || !g0.DecisionReached(0) {
		t.Fatal("RetryVote violates validity on unanimous 0s")
	}
	// Split inputs: both decisions reachable (bivalent), so the protocol
	// does decide under some schedules — the impossibility is about ALL
	// schedules, not about never deciding.
	g := Explore(p, Initial(p, []int{0, 1, 1}), 30000)
	if !g.DecisionReached(0) || !g.DecisionReached(1) {
		t.Fatal("RetryVote never decides under split inputs")
	}
}

// The executable Theorem 2.1: every member of the candidate family fails
// at least one consensus property, for n = 2, 3 and 4, exhaustively.
func TestTheoremTwoOneOverFamily(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		for _, p := range Family(n) {
			v := CheckTheorem(p, n, 2000000)
			if v.OK() {
				t.Errorf("n=%d: %s solves 1-resilient consensus — impossibility violated", n, v.Protocol)
			}
		}
	}
}

func TestFamilyShapes(t *testing.T) {
	// Below-threshold members break agreement with a bivalent initial
	// configuration; the wait-for-all members break termination instead.
	for _, p := range Family(3) {
		tv := p.(*ThresholdVote)
		v := CheckTheorem(p, 3, 300000)
		if tv.Theta < 3 {
			if v.Agreement {
				t.Errorf("%s: agreement unexpectedly holds", v.Protocol)
			}
			if !v.BivalentInitial {
				t.Errorf("%s: no bivalent initial configuration found", v.Protocol)
			}
		} else {
			if !v.Agreement {
				t.Errorf("%s: agreement fails for wait-all", v.Protocol)
			}
			if v.Termination {
				t.Errorf("%s: termination unexpectedly holds", v.Protocol)
			}
		}
		if !v.Validity {
			t.Errorf("%s: validity fails (decision functions respect unanimity)", v.Protocol)
		}
	}
}

func TestViewString(t *testing.T) {
	s := ViewString([]Msg{{Author: 1, Seq: 0, Value: 1}, {Author: 0, Seq: 0, Value: 0}})
	if s != "{0:0 1:1}" {
		t.Fatalf("ViewString = %q", s)
	}
}

func TestExploreTruncation(t *testing.T) {
	p := NewThresholdVote(3, DecideMajority)
	g := Explore(p, Initial(p, []int{0, 1, 1}), 5)
	if !g.Truncated() {
		t.Fatal("bound of 5 configs not reported as truncation")
	}
	// Truncated graphs refuse unsound termination verdicts.
	if g.TerminationViolation(0) != -1 {
		t.Fatal("truncated graph returned a termination verdict")
	}
}

func TestDotExport(t *testing.T) {
	p := NewThresholdVote(1, DecideMajority) // bivalent root: orange appears
	g := Explore(p, Initial(p, []int{0, 1}), 100000)
	out := g.Dot(50)
	for _, want := range []string{"digraph computation", "c0", "orange", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot missing %q", want)
		}
	}
	// Bounded output respects the cap.
	small := g.Dot(3)
	if strings.Count(small, "[label=\"#") > 3 {
		t.Error("dot exceeded maxConfigs")
	}
}

// Package bivalence is a bounded model checker for deterministic consensus
// protocols in the append memory, implementing the machinery of Section 2
// of the paper (and of Loui–Abu-Amara, which the paper's proof follows).
//
// A protocol is a deterministic state machine per node: given its state,
// the node's next operation is fixed (a read or an append of a determined
// value); the *scheduler* only chooses which node steps next. This matches
// the paper's event model: read events always apply; append events append
// to the current memory; a read of an unchanged memory leaves the
// configuration unchanged (the self-loop of property (b) in §2.1).
// Configurations are canonical — the memory is kept as per-register
// sequences with no cross-register order, exactly the information content
// the append memory exposes.
//
// The checker explores the full computation graph (finite for protocols
// with bounded appends) and decides, exactly:
//
//   - Valency of every configuration (which decision values are reachable),
//     giving Lemma 2.2's bivalent initial configurations;
//   - Lemma 2.3's extension property: from a bivalent configuration, for
//     any node p, a bivalent configuration is reachable via a path
//     containing a p-step — and from it, Theorem 2.1's explicit infinite
//     non-deciding schedule (any finite prefix of it);
//   - violations of agreement (two nodes decided differently in some
//     reachable configuration), validity (a reachable decision contradicts
//     unanimous inputs) and 1-resilient termination (a fair cycle in the
//     v-free subgraph on which some correct node never decides, found via
//     SCC analysis).
//
// Theorem 2.1 becomes the executable statement: every protocol in a
// candidate family violates at least one of the three properties.
package bivalence

import (
	"fmt"
	"strconv"
	"strings"
)

// Msg is one appended message in the checker's memory model.
type Msg struct {
	Author, Seq, Value int
}

// Op is a node's next operation.
type Op struct {
	Append bool
	Value  int // appended value, when Append
}

// State is a node's local state. Data must canonically encode everything
// the node remembers; two states with equal fields are THE SAME state.
type State struct {
	Data     string
	Decided  bool
	Decision int
}

// Protocol is a deterministic consensus protocol in the append memory.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Init returns node id's state given its binary input.
	Init(id, input int) State
	// Next returns the node's next operation. Deterministic in (id, s).
	Next(id int, s State) Op
	// OnRead returns the node's state after reading view (the complete
	// memory, sorted by (author, seq)). Deterministic.
	OnRead(id int, s State, view []Msg) State
	// OnAppend returns the node's state after its append lands.
	OnAppend(id int, s State) State
}

// Config is a configuration: all node states plus the memory content.
type Config struct {
	States []State
	Mem    []Msg // sorted by (author, seq); canonical
}

// Key returns the canonical string identity of the configuration.
func (c Config) Key() string { return string(appendKey(nil, c)) }

// appendKey appends c's canonical identity — "[data|decided|decision]" per
// state, '#', "(author,seq,value)" per message — to buf and returns it.
// Explore reuses one scratch buffer through it, so checking whether a
// successor configuration was already visited allocates nothing.
func appendKey(buf []byte, c Config) []byte {
	for _, s := range c.States {
		buf = append(buf, '[')
		buf = append(buf, s.Data...)
		buf = append(buf, '|')
		buf = strconv.AppendBool(buf, s.Decided)
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(s.Decision), 10)
		buf = append(buf, ']')
	}
	buf = append(buf, '#')
	for _, m := range c.Mem {
		buf = append(buf, '(')
		buf = strconv.AppendInt(buf, int64(m.Author), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(m.Seq), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(m.Value), 10)
		buf = append(buf, ')')
	}
	return buf
}

// Initial returns the initial configuration for the given inputs.
func Initial(p Protocol, inputs []int) Config {
	states := make([]State, len(inputs))
	for i, in := range inputs {
		states[i] = p.Init(i, in)
	}
	return Config{States: states}
}

// Apply performs node's next operation on c and returns the successor.
// The returned changed flag is false for no-op reads (property (b)).
func Apply(p Protocol, c Config, node int) (Config, bool) {
	s := c.States[node]
	if s.Decided {
		return c, false // decided nodes halt (their steps are no-ops)
	}
	op := p.Next(node, s)
	if op.Append {
		// Mem is kept sorted by (author, seq) and the new message carries
		// the author's next seq, so its slot is right after the author's
		// existing block: one scan finds both the seq and the insertion
		// point, no re-sort needed.
		seq := 0
		pos := len(c.Mem)
		for i, m := range c.Mem {
			if m.Author == node {
				seq++
			} else if m.Author > node {
				pos = i
				break
			}
		}
		mem := make([]Msg, len(c.Mem)+1)
		copy(mem, c.Mem[:pos])
		mem[pos] = Msg{Author: node, Seq: seq, Value: op.Value}
		copy(mem[pos+1:], c.Mem[pos:])
		states := append([]State(nil), c.States...)
		states[node] = p.OnAppend(node, s)
		return Config{States: states, Mem: mem}, true
	}
	ns := p.OnRead(node, s, c.Mem)
	if ns == s {
		return c, false
	}
	states := append([]State(nil), c.States...)
	states[node] = ns
	return Config{States: states, Mem: c.Mem}, true
}

// Graph is the fully explored computation graph from one initial
// configuration.
type Graph struct {
	p         Protocol
	n         int
	configs   []Config
	index     map[string]int
	succ      [][]int // succ[i][node] = successor config index
	valency   []uint8 // bit0: decision 0 reachable; bit1: decision 1
	truncated bool
	keyBuf    []byte // scratch for appendKey during exploration
}

// Explore builds the computation graph from c0, bounded by maxConfigs.
// When the bound is hit, Truncated reports true and valencies are lower
// bounds (a "bivalent" verdict is still sound; "univalent" may not be).
func Explore(p Protocol, c0 Config, maxConfigs int) *Graph {
	g := &Graph{p: p, n: len(c0.States), index: make(map[string]int)}
	add := func(c Config) int {
		g.keyBuf = appendKey(g.keyBuf[:0], c)
		if i, ok := g.index[string(g.keyBuf)]; ok { // no-alloc map probe
			return i
		}
		i := len(g.configs)
		g.index[string(g.keyBuf)] = i
		g.configs = append(g.configs, c)
		g.succ = append(g.succ, nil)
		return i
	}
	root := add(c0)
	queue := []int{root}
	for len(queue) > 0 {
		if len(g.configs) > maxConfigs {
			g.truncated = true
			break
		}
		i := queue[0]
		queue = queue[1:]
		if g.succ[i] != nil {
			continue
		}
		succs := make([]int, g.n)
		for node := 0; node < g.n; node++ {
			nc, _ := Apply(p, g.configs[i], node)
			j := add(nc)
			succs[node] = j
			if g.succ[j] == nil && j != i {
				queue = append(queue, j)
			}
		}
		g.succ[i] = succs
	}
	// Backward-propagate decision reachability to a fixpoint.
	g.valency = make([]uint8, len(g.configs))
	for i, c := range g.configs {
		for _, s := range c.States {
			if s.Decided {
				g.valency[i] |= 1 << uint(s.Decision)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := range g.configs {
			if g.succ[i] == nil {
				continue
			}
			for _, j := range g.succ[i] {
				if v := g.valency[i] | g.valency[j]; v != g.valency[i] {
					g.valency[i] = v
					changed = true
				}
			}
		}
	}
	return g
}

// Size returns the number of explored configurations.
func (g *Graph) Size() int { return len(g.configs) }

// Truncated reports whether exploration hit the configuration bound.
func (g *Graph) Truncated() bool { return g.truncated }

// Root returns the initial configuration's index (always 0).
func (g *Graph) Root() int { return 0 }

// Config returns configuration i.
func (g *Graph) Config(i int) Config { return g.configs[i] }

// Valency returns the set of decision values reachable from configuration
// i, as a bitmask (bit v set: decision v reachable).
func (g *Graph) Valency(i int) uint8 { return g.valency[i] }

// Bivalent reports whether both decisions are reachable from i.
func (g *Graph) Bivalent(i int) bool { return g.valency[i] == 3 }

// Succ returns the successor of configuration i under a step of node
// (i itself for halted/no-op steps on frontier configs).
func (g *Graph) Succ(i, node int) int {
	if g.succ[i] == nil {
		return i
	}
	return g.succ[i][node]
}

// AgreementViolation scans for a reachable configuration in which two
// nodes decided different values and returns its index, or -1.
func (g *Graph) AgreementViolation() int {
	for i, c := range g.configs {
		saw := -1
		for _, s := range c.States {
			if !s.Decided {
				continue
			}
			if saw >= 0 && saw != s.Decision {
				return i
			}
			saw = s.Decision
		}
	}
	return -1
}

// DecisionReached reports whether value v is decided in any reachable
// configuration.
func (g *Graph) DecisionReached(v int) bool {
	return g.valency[0]&(1<<uint(v)) != 0
}

// Undecided reports whether no node has decided in configuration i.
func (g *Graph) Undecided(i int) bool {
	for _, s := range g.configs[i].States {
		if s.Decided {
			return false
		}
	}
	return true
}

// ExtendBivalence implements Lemma 2.3 operationally: starting from
// bivalent configuration i, find a path on which node p takes at least one
// step, ending in a bivalent configuration. Returns the path (config
// indices, starting at i) and ok.
func (g *Graph) ExtendBivalence(i, p int) ([]int, bool) {
	return g.extend(i, p, g.Bivalent)
}

func (g *Graph) extend(i, p int, accept func(int) bool) ([]int, bool) {
	// BFS items are (cfg, stepped) pairs, encoded as cfg<<1 | stepped and
	// tracked in flat slices instead of maps — the search touches every
	// reachable configuration twice at most, so dense indexing beats
	// per-item map inserts. prev[x] holds the encoded predecessor + 1
	// (0 = unset, i.e. the start item).
	n2 := 2 * len(g.configs)
	seen := make([]bool, n2)
	prev := make([]int32, n2)
	start := i << 1
	queue := make([]int32, 1, 64)
	queue[0] = int32(start)
	seen[start] = true
	for qi := 0; qi < len(queue); qi++ {
		cur := int(queue[qi])
		cfg, stepped := cur>>1, cur&1 == 1
		if stepped && accept(cfg) {
			// Reconstruct path.
			var rev []int
			for at := cur; ; {
				rev = append(rev, at>>1)
				if prev[at] == 0 {
					break
				}
				at = int(prev[at]) - 1
			}
			path := make([]int, len(rev))
			for k := range rev {
				path[k] = rev[len(rev)-1-k]
			}
			return path, true
		}
		if g.succ[cfg] == nil {
			continue // truncation frontier: successors unknown
		}
		for node := 0; node < g.n; node++ {
			j := g.Succ(cfg, node)
			if j == cfg && node != p {
				continue
			}
			next := j << 1
			if stepped || node == p {
				next |= 1
			}
			if !seen[next] {
				seen[next] = true
				prev[next] = int32(cur + 1)
				queue = append(queue, int32(next))
			}
		}
	}
	return nil, false
}

// NonDecidingSchedule constructs a prefix of Theorem 2.1's infinite
// computation: starting from a bivalent undecided configuration, it
// repeatedly extends round-robin over all nodes, each time reaching a
// configuration that is bivalent AND fully undecided. Because decision
// flags are monotone along steps, every configuration on the resulting
// schedule is undecided — this is the explicit computation in which every
// correct node performs infinitely many events and the algorithm never
// terminates. Returns the visited configuration indices and ok=false if
// the construction gets stuck (which, for a protocol satisfying agreement
// and validity, would falsify Lemma 2.3).
func (g *Graph) NonDecidingSchedule(start, cycles int) ([]int, bool) {
	if !g.Bivalent(start) || !g.Undecided(start) {
		return nil, false
	}
	goal := func(i int) bool { return g.Bivalent(i) && g.Undecided(i) }
	cur := start
	trace := []int{cur}
	for c := 0; c < cycles; c++ {
		for p := 0; p < g.n; p++ {
			path, ok := g.extend(cur, p, goal)
			if !ok {
				return trace, false
			}
			trace = append(trace, path[1:]...)
			cur = path[len(path)-1]
		}
	}
	return trace, true
}

// Dot renders the explored computation graph as Graphviz DOT, up to
// maxConfigs configurations (breadth-first from the root). Valency is
// colour-coded: bivalent orange, 0-valent blue, 1-valent green, dead
// (no decision reachable) grey; configurations with a decided node are
// double-ringed. Self-loop (no-op) edges are omitted for readability.
func (g *Graph) Dot(maxConfigs int) string {
	var b strings.Builder
	b.WriteString("digraph computation {\n  rankdir=TB;\n  node [shape=box, fontsize=8];\n")
	include := make(map[int]bool)
	order := []int{0}
	include[0] = true
	for i := 0; i < len(order) && len(order) < maxConfigs; i++ {
		cur := order[i]
		if g.succ[cur] == nil {
			continue
		}
		for _, j := range g.succ[cur] {
			if !include[j] && len(order) < maxConfigs {
				include[j] = true
				order = append(order, j)
			}
		}
	}
	for _, i := range order {
		color := "grey"
		switch g.valency[i] {
		case 1:
			color = "lightblue"
		case 2:
			color = "lightgreen"
		case 3:
			color = "orange"
		}
		shape := "box"
		for _, s := range g.configs[i].States {
			if s.Decided {
				shape = "doubleoctagon"
			}
		}
		fmt.Fprintf(&b, "  c%d [label=\"#%d\", style=filled, fillcolor=%s, shape=%s];\n", i, i, color, shape)
		if g.succ[i] == nil {
			continue
		}
		for node, j := range g.succ[i] {
			if j == i || !include[j] {
				continue
			}
			fmt.Fprintf(&b, "  c%d -> c%d [label=\"%d\", fontsize=7];\n", i, j, node)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

package runner

import (
	"reflect"
	"testing"
)

func TestTrialsOrderAndDeterminism(t *testing.T) {
	f := func(seed uint64) uint64 { return seed * 3 }
	out := Trials(20, 100, 0, f)
	for i, v := range out {
		if v != (100+uint64(i))*3 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestTrialsWorkerCountInvariance(t *testing.T) {
	f := func(seed uint64) uint64 { return seed*seed + 7 }
	want := Trials(33, 5, 1, f)
	for _, workers := range []int{2, 4, 16, 100, -3} {
		got := Trials(33, 5, workers, f)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d changed the output", workers)
		}
	}
}

func TestTrialsZeroAndOne(t *testing.T) {
	if out := Trials(0, 1, 0, func(seed uint64) int { return 1 }); len(out) != 0 {
		t.Fatalf("n=0 returned %v", out)
	}
	if out := Trials(1, 9, 4, func(seed uint64) uint64 { return seed }); len(out) != 1 || out[0] != 9 {
		t.Fatalf("n=1 returned %v", out)
	}
}

func TestCountTrue(t *testing.T) {
	if got := CountTrue([]bool{true, false, true, true}); got != 3 {
		t.Fatalf("CountTrue = %d", got)
	}
	if got := CountTrue(nil); got != 0 {
		t.Fatalf("CountTrue(nil) = %d", got)
	}
}

func TestRatioValue(t *testing.T) {
	if v := Rate(17, 20).Value(); v != 0.85 {
		t.Fatalf("Rate(17,20).Value() = %v", v)
	}
	if v := Rate(0, 0).Value(); v != 0 {
		t.Fatalf("empty ratio value = %v", v)
	}
}

package runner

import (
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

func TestTrialsOrderAndDeterminism(t *testing.T) {
	f := func(seed uint64) uint64 { return seed * 3 }
	out := Trials(20, 100, 0, f)
	for i, v := range out {
		if v != (100+uint64(i))*3 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestTrialsWorkerCountInvariance(t *testing.T) {
	f := func(seed uint64) uint64 { return seed*seed + 7 }
	want := Trials(33, 5, 1, f)
	for _, workers := range []int{2, 4, 16, 100, -3} {
		got := Trials(33, 5, workers, f)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d changed the output", workers)
		}
	}
}

func TestTrialsZeroAndOne(t *testing.T) {
	for _, n := range []int{0, -5} {
		if out := Trials(n, 1, 0, func(seed uint64) int { return 1 }); len(out) != 0 {
			t.Fatalf("n=%d returned %v", n, out)
		}
	}
	if out := Trials(1, 9, 4, func(seed uint64) uint64 { return seed }); len(out) != 1 || out[0] != 9 {
		t.Fatalf("n=1 returned %v", out)
	}
}

// TestTrialsSeedOrderProperty is the fan-out contract as a property: for
// every size, results are exactly [f(base), f(base+1), ...] regardless of
// the worker count — 1 (inline), 2, 7 and NumCPU all produce the same
// seed-ordered slice.
func TestTrialsSeedOrderProperty(t *testing.T) {
	f := func(seed uint64) uint64 { return seed ^ (seed << 7) }
	for _, n := range []int{1, 2, 3, 5, 16, 64, 257, 1000} {
		want := make([]uint64, n)
		for i := range want {
			want[i] = f(42 + uint64(i))
		}
		for _, workers := range []int{1, 2, 7, runtime.NumCPU()} {
			got := Trials(n, 42, workers, f)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d workers=%d: results not seed-ordered", n, workers)
			}
		}
	}
}

// TestTrialsReduceFoldOrder uses a deliberately non-commutative fold (it
// records the order results arrive) to pin the strict seed-order folding
// contract at every worker count.
func TestTrialsReduceFoldOrder(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 257} {
		for _, workers := range []int{1, 2, 7, runtime.NumCPU(), 0} {
			got := TrialsReduce(n, 10, workers, []uint64(nil),
				func(seed uint64) uint64 { return seed },
				func(a []uint64, v uint64) []uint64 { return append(a, v) })
			if len(got) != n {
				t.Fatalf("n=%d workers=%d: folded %d results", n, workers, len(got))
			}
			for i, v := range got {
				if v != 10+uint64(i) {
					t.Fatalf("n=%d workers=%d: fold order broken at %d: %v", n, workers, i, got)
				}
			}
		}
	}
}

// TestTrialsReduceFloatBitIdentical checks the reduce path against the
// materialize-then-fold path on a float sum, where association changes
// low bits: strict seed-order folding must make them equal exactly.
func TestTrialsReduceFloatBitIdentical(t *testing.T) {
	f := func(seed uint64) float64 { return math.Sqrt(float64(seed)) * 0.1 }
	n := 1000
	want := 0.0
	for _, v := range Trials(n, 3, 1, f) {
		want += v
	}
	for _, workers := range []int{2, 7, 0} {
		got := TrialsReduce(n, 3, workers, 0.0, f, func(a, x float64) float64 { return a + x })
		if got != want {
			t.Fatalf("workers=%d: float fold differs in low bits: %v != %v", workers, got, want)
		}
	}
	if m := MeanTrials(n, 3, 0, f); m != want/float64(n) {
		t.Fatalf("MeanTrials = %v, want %v", m, want/float64(n))
	}
}

func TestCountAndRateTrials(t *testing.T) {
	even := func(seed uint64) bool { return seed%2 == 0 }
	for _, workers := range []int{1, 3, 0} {
		if got := CountTrials(100, 0, workers, even); got != 50 {
			t.Fatalf("workers=%d: CountTrials = %d", workers, got)
		}
	}
	if r := RateTrials(20, 0, 0, even); r != Rate(10, 20) {
		t.Fatalf("RateTrials = %+v", r)
	}
	if got := CountTrials(0, 0, 0, even); got != 0 {
		t.Fatalf("CountTrials(0) = %d", got)
	}
	if m := MeanTrials(0, 0, 0, func(seed uint64) float64 { return 1 }); m != 0 {
		t.Fatalf("MeanTrials(0) = %v", m)
	}
}

// TestConcurrentFanOuts submits many fan-outs from independent goroutines
// — the cross-experiment shape — and checks every one merges in seed
// order while sharing the single pool.
func TestConcurrentFanOuts(t *testing.T) {
	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * 1000)
			out := Trials(200, base, 0, func(seed uint64) uint64 { return seed * 2 })
			for i, v := range out {
				if v != (base+uint64(i))*2 {
					errs <- "fan-out merged out of order"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestNestedTrials pins the no-deadlock property: a trial function that
// itself fans out makes progress because submitters help run their own
// jobs even when every pool worker is busy.
func TestNestedTrials(t *testing.T) {
	out := Trials(8, 0, 0, func(seed uint64) int {
		inner := Trials(16, seed*100, 0, func(s uint64) int { return int(s) })
		sum := 0
		for _, v := range inner {
			sum += v
		}
		return sum
	})
	for i, got := range out {
		base := i * 100
		want := 16*base + 120 // sum of base..base+15
		if got != want {
			t.Fatalf("nested out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestPoolRetainsAcrossGC(t *testing.T) {
	type state struct{ id int }
	made := 0
	p := NewPool(func() *state { made++; return &state{id: made} })
	s := p.Get()
	p.Put(s)
	runtime.GC()
	runtime.GC()
	if got := p.Get(); got != s {
		t.Fatalf("pool state not retained across GC: got %p, want %p", got, s)
	}
	if made != 1 {
		t.Fatalf("pool created %d states, want 1", made)
	}
}

func TestPoolBoundedRetention(t *testing.T) {
	p := NewPool(func() *int { v := 0; return &v })
	bound := runtime.GOMAXPROCS(0) + 8
	for i := 0; i < bound+10; i++ {
		v := i
		p.Put(&v)
	}
	if len(p.slots) != bound {
		t.Fatalf("pool retained %d states, want cap %d", len(p.slots), bound)
	}
	// LIFO: the warmest state comes back first.
	last := p.Get()
	if *last != bound-1 {
		t.Fatalf("pool Get returned %d, want most recent retained %d", *last, bound-1)
	}
}

func TestCountTrue(t *testing.T) {
	if got := CountTrue([]bool{true, false, true, true}); got != 3 {
		t.Fatalf("CountTrue = %d", got)
	}
	if got := CountTrue(nil); got != 0 {
		t.Fatalf("CountTrue(nil) = %d", got)
	}
}

func TestRatioValue(t *testing.T) {
	if v := Rate(17, 20).Value(); v != 0.85 {
		t.Fatalf("Rate(17,20).Value() = %v", v)
	}
	if v := Rate(0, 0).Value(); v != 0 {
		t.Fatalf("empty ratio value = %v", v)
	}
}

// The process-wide trial scheduler. Every Trials/TrialsReduce fan-out in
// the process is a job on one persistent worker pool (started lazily, one
// worker per GOMAXPROCS), instead of a private fork-join that spawns
// goroutines, fills a channel with one send per trial and barriers on the
// stragglers. Dispatch is chunked — workers claim contiguous seed ranges
// with a single atomic add — and the pool steals across jobs: a worker
// that drains one fan-out rotates to the next active one, so concurrently
// submitted fan-outs (different experiments, parallel tests) interleave
// onto the same CPUs and small jobs never leave the machine idle.
//
// The submitting goroutine always helps — it claims chunks of its own job
// until none remain, then waits for the stragglers. That keeps latency low
// when the pool is busy elsewhere and makes nested fan-outs (a trial
// function that itself calls Trials) deadlock-free by construction: the
// inner caller can always make progress on its own job.
//
// Determinism is unaffected by any of this: trial i always runs with seed
// base+i and lands in slot i (or is folded in seed order — see
// TrialsReduce), so the output is independent of worker count, chunk size,
// steal order and GOMAXPROCS.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// job is one fan-out: n trials dispatched in chunks via an atomic cursor.
type job struct {
	n     int
	chunk int
	limit int32 // max concurrent executors (0 = unbounded); Options.Workers
	run   func(lo, hi int)

	active atomic.Int32 // executors currently inside run
	next   atomic.Int64 // next unclaimed trial index
	done   atomic.Int64 // completed trials; == n closes fin
	fin    chan struct{}

	pmu sync.Mutex
	pan *TrialPanic // lowest-index trial panic, re-raised on the submitter
}

// TrialPanic is the value a Trials/TrialsReduce fan-out re-panics with
// when a trial function panicked on a pool worker: the original panic
// value annotated with the trial index, its seed and the worker's stack.
// Without it the panic would tear down the process from a bare scheduler
// goroutine, with no way to tell which trial died.
type TrialPanic struct {
	Trial int    // trial index within the fan-out (0-based)
	Seed  uint64 // base + Trial
	Value any    // the original panic value
	Stack []byte // stack of the panicking worker at recover time
}

func (p *TrialPanic) Error() string {
	return fmt.Sprintf("runner: trial %d (seed %#x) panicked: %v", p.Trial, p.Seed, p.Value)
}

func (p *TrialPanic) String() string {
	return fmt.Sprintf("%s\nworker stack:\n%s", p.Error(), p.Stack)
}

// Unwrap exposes an error panic value to errors.Is/As through the wrapper.
func (p *TrialPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// recordPanic keeps the panic of the lowest trial index, so concurrent
// panics re-raise deterministically.
func (j *job) recordPanic(p *TrialPanic) {
	j.pmu.Lock()
	if j.pan == nil || p.Trial < j.pan.Trial {
		j.pan = p
	}
	j.pmu.Unlock()
}

// panicked reports whether some trial of this job has panicked so far.
func (j *job) panicked() bool {
	j.pmu.Lock()
	p := j.pan
	j.pmu.Unlock()
	return p != nil
}

// repanic re-raises the recorded trial panic, if any, on the caller's
// goroutine. Called by the submitter after fin: every executor has left
// run, so the job's accounting is complete and the pool is unharmed.
func (j *job) repanic() {
	if j.pan != nil {
		panic(j.pan)
	}
}

// guarded wraps a per-trial body into the chunk runner the scheduler
// executes: it tracks the in-flight trial index and converts a panic into
// a recorded TrialPanic instead of crashing the pool worker. The chunk is
// accounted as done by runChunk either way — recovery must not strand the
// fan-out's completion barrier.
func guarded(j *job, base uint64, body func(i int)) func(lo, hi int) {
	return func(lo, hi int) {
		i := lo
		defer func() {
			if r := recover(); r != nil {
				j.recordPanic(&TrialPanic{Trial: i, Seed: base + uint64(i), Value: r, Stack: debug.Stack()})
			}
		}()
		for ; i < hi; i++ {
			body(i)
		}
	}
}

// runChunk claims and executes one chunk, reporting whether it did any
// work. The executor that completes the last trial closes fin.
func (j *job) runChunk() bool {
	if j.limit > 0 {
		if j.active.Add(1) > j.limit {
			j.active.Add(-1)
			return false
		}
		defer j.active.Add(-1)
	}
	lo := int(j.next.Add(int64(j.chunk))) - j.chunk
	if lo >= j.n {
		return false
	}
	hi := lo + j.chunk
	if hi > j.n {
		hi = j.n
	}
	j.run(lo, hi)
	if j.done.Add(int64(hi-lo)) == int64(j.n) {
		close(j.fin)
	}
	return true
}

// claimable reports whether the job still has unclaimed work a new
// executor could pick up.
func (j *job) claimable() bool {
	return int(j.next.Load()) < j.n && (j.limit == 0 || j.active.Load() < j.limit)
}

// scheduler is the process-wide pool. There is exactly one (see sched);
// the type exists so its methods read naturally.
type scheduler struct {
	once sync.Once
	size int           // worker count, fixed at first use
	wake chan struct{} // buffered wake tokens, capacity size

	mu   sync.Mutex
	jobs []*job // active jobs in submission order; the steal list
}

var sched scheduler

// start spawns the workers on first use. They are daemons: parked on wake
// when the process has no fan-out in flight, they cost nothing.
func (s *scheduler) start() {
	s.once.Do(func() {
		s.size = runtime.GOMAXPROCS(0)
		s.wake = make(chan struct{}, s.size)
		for i := 0; i < s.size; i++ {
			go s.worker()
		}
	})
}

// submit registers the job with the steal list and wakes the pool.
func (s *scheduler) submit(j *job) {
	s.start()
	s.mu.Lock()
	s.jobs = append(s.jobs, j)
	s.mu.Unlock()
	s.poke(s.size)
}

// remove deletes a finished job from the steal list. Called by the
// submitter after fin; workers only ever skip drained jobs.
func (s *scheduler) remove(j *job) {
	s.mu.Lock()
	for i, jj := range s.jobs {
		if jj == j {
			s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// poke deposits up to n wake tokens without blocking; a full channel means
// the pool is already fully signalled.
func (s *scheduler) poke(n int) {
	for i := 0; i < n; i++ {
		select {
		case s.wake <- struct{}{}:
		default:
			return
		}
	}
}

// pick returns an active job with claimable work, rotating a per-worker
// cursor through the list so concurrent fan-outs interleave rather than
// strictly queue — the work-stealing policy.
func (s *scheduler) pick(cursor *int) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < len(s.jobs); i++ {
		j := s.jobs[(*cursor+i)%len(s.jobs)]
		if j.claimable() {
			*cursor = (*cursor + i + 1) % len(s.jobs)
			return j
		}
	}
	return nil
}

// worker runs chunks of whatever job pick selects until no job has
// claimable work, then parks on wake. After each chunk it re-picks, so one
// long fan-out cannot starve a newly submitted one; the poke re-engages
// workers that parked while a worker-limited job was saturated.
func (s *scheduler) worker() {
	var cursor int
	for range s.wake {
		for {
			j := s.pick(&cursor)
			if j == nil {
				break
			}
			if j.runChunk() && j.claimable() {
				s.poke(1)
			}
		}
	}
}

// chunkFor sizes dispatch chunks: roughly four claims per worker keeps the
// atomic-add traffic negligible while still load-balancing uneven trial
// costs, and the cap bounds a TrialsReduce chunk buffer.
func chunkFor(n int) int {
	sched.start()
	c := n / (4 * sched.size)
	if c < 1 {
		c = 1
	}
	if c > 1024 {
		c = 1024
	}
	return c
}

// dispatch fans body(i) for i in [0, n) over the pool with the submitting
// goroutine helping, and returns when all n trials have completed.
// workers > 0 caps the number of concurrent executors on this job. If any
// trial panicked, dispatch re-panics on the caller with a TrialPanic.
func dispatch(n, workers, chunk int, base uint64, body func(i int)) {
	j := &job{n: n, chunk: chunk, fin: make(chan struct{})}
	j.run = guarded(j, base, body)
	if workers > 0 {
		j.limit = int32(workers)
	}
	sched.submit(j)
	for j.runChunk() {
	}
	<-j.fin
	sched.remove(j)
	j.repanic()
}

// Package runner holds the shared trial fan-out used by every experiment:
// deterministic seed-indexed repetitions dispatched onto one process-wide
// worker pool (see sched.go), plus streaming reductions (CountTrials,
// RateTrials, MeanTrials) and the small aggregation helpers their tables
// are built from.
package runner

import (
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Trials runs f for seeds base..base+n-1 on the process-wide pool and
// returns the results in seed order. f must be a pure function of its
// seed, so the output is independent of the worker count. workers > 0
// caps the concurrent executors on this fan-out (1 runs inline on the
// calling goroutine); <= 0 means as many as the pool provides.
//
// Prefer TrialsReduce (or CountTrials/RateTrials/MeanTrials) when the
// caller only folds the results: Trials materializes all n of them.
//
// If f panics on a pool worker, the fan-out still completes and Trials
// re-panics on the caller with a *TrialPanic annotating the trial index
// (the workers==1 inline path propagates the panic unwrapped).
func Trials[T any](n int, base uint64, workers int, f func(seed uint64) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			out[i] = f(base + uint64(i))
		}
		return out
	}
	dispatch(n, workers, chunkFor(n), base, func(i int) {
		out[i] = f(base + uint64(i))
	})
	return out
}

// TrialsReduce runs f for seeds base..base+n-1 on the process-wide pool
// and folds the results into acc strictly in seed order — the fold is
// bit-identical to folding the slice Trials would return, including for
// non-associative accumulation like float sums. Workers buffer only their
// current chunk of results and the submitting goroutine folds chunks as
// their turn comes, so memory stays O(chunk·workers) instead of O(n):
// huge -trials runs stop materializing []T.
//
// If f panics on a pool worker, the panicked chunk is never folded, the
// fan-out still completes, and TrialsReduce re-panics on the caller with
// a *TrialPanic annotating the trial index (the workers==1 inline path
// propagates the panic unwrapped).
func TrialsReduce[T, A any](n int, base uint64, workers int, acc A, f func(seed uint64) T, fold func(A, T) A) A {
	if n <= 0 {
		return acc
	}
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			acc = fold(acc, f(base+uint64(i)))
		}
		return acc
	}
	chunk := chunkFor(n)
	nchunks := (n + chunk - 1) / chunk
	bufs := make([][]T, nchunks)
	ready := make([]atomic.Bool, nchunks)
	j := &job{n: n, chunk: chunk, fin: make(chan struct{})}
	j.run = func(lo, hi int) {
		buf := make([]T, hi-lo)
		var done bool
		i := lo
		defer func() {
			// A panicking trial function must not crash the bare pool
			// goroutine: record it (annotated with the trial index) and let
			// runChunk account the chunk, so the fan-out still completes and
			// the submitter re-panics below. The chunk never turns ready, so
			// no partial buffer is folded.
			if !done {
				j.recordPanic(&TrialPanic{Trial: i, Seed: base + uint64(i), Value: recover(), Stack: debug.Stack()})
			}
		}()
		for ; i < hi; i++ {
			buf[i-lo] = f(base + uint64(i))
		}
		done = true
		c := lo / chunk
		bufs[c] = buf
		ready[c].Store(true)
	}
	if workers > 0 {
		j.limit = int32(workers)
	}
	sched.submit(j)
	folded := 0
	foldReady := func() {
		for folded < nchunks && ready[folded].Load() {
			for _, v := range bufs[folded] {
				acc = fold(acc, v)
			}
			bufs[folded] = nil
			folded++
		}
	}
	for j.runChunk() {
		foldReady()
	}
	<-j.fin
	sched.remove(j)
	j.repanic()
	foldReady()
	return acc
}

// CountTrials runs f for seeds base..base+n-1 and returns how many trials
// reported true, without materializing the per-trial results.
func CountTrials(n int, base uint64, workers int, f func(seed uint64) bool) int {
	return TrialsReduce(n, base, workers, 0, f, func(c int, ok bool) int {
		if ok {
			c++
		}
		return c
	})
}

// RateTrials runs f for seeds base..base+n-1 and returns successes/n as a
// Ratio — the streaming form of Rate(CountTrue(Trials(...)), n).
func RateTrials(n int, base uint64, workers int, f func(seed uint64) bool) Ratio {
	return Rate(CountTrials(n, base, workers, f), n)
}

// MeanTrials runs f for seeds base..base+n-1 and returns the mean of its
// results, summed in seed order (bit-identical to stats.Mean over the
// slice Trials would return). n <= 0 yields 0.
func MeanTrials(n int, base uint64, workers int, f func(seed uint64) float64) float64 {
	if n <= 0 {
		return 0
	}
	sum := TrialsReduce(n, base, workers, 0.0, f, func(a, x float64) float64 { return a + x })
	return sum / float64(n)
}

// Pool recycles per-trial state (a simulator, scratch slices) across
// fan-outs, so trials reuse warmed-up capacity instead of re-growing it
// and fighting the GC. Unlike sync.Pool it is never drained by a GC
// cycle: it retains up to one state per pool worker (plus headroom for
// submitting goroutines, which execute trials too) in a fixed LIFO slot
// array, so at steady state every concurrent executor gets the warmest
// retained state back. When all slots are empty Get falls back to newFn;
// when all are full Put drops the state for the GC — the retained set
// can never exceed what the pool can actually keep busy. Callers must
// fully re-initialize whatever state they read — a pooled value carries
// only capacity, never content.
type Pool[S any] struct {
	newFn func() S
	mu    sync.Mutex
	slots []S // lazily sized to the worker count on first Put
}

// NewPool returns a pool producing fresh states with newFn when empty. S
// should be a pointer type; non-pointer states would be copied on every
// Get/Put.
func NewPool[S any](newFn func() S) *Pool[S] {
	return &Pool[S]{newFn: newFn}
}

// Get returns the most recently retained state, or a fresh one.
func (p *Pool[S]) Get() S {
	p.mu.Lock()
	if n := len(p.slots); n > 0 {
		s := p.slots[n-1]
		var zero S
		p.slots[n-1] = zero // drop the reference so the slot does not pin it
		p.slots = p.slots[:n-1]
		p.mu.Unlock()
		return s
	}
	p.mu.Unlock()
	return p.newFn()
}

// Put retains a state for the next Get. The caller must not use it
// afterwards.
func (p *Pool[S]) Put(s S) {
	p.mu.Lock()
	if p.slots == nil {
		p.slots = make([]S, 0, runtime.GOMAXPROCS(0)+8)
	}
	if len(p.slots) < cap(p.slots) {
		p.slots = append(p.slots, s)
	}
	p.mu.Unlock()
}

// Resize returns s with length n and zeroed contents, reusing the backing
// array when capacity allows — the scratch-slice companion of Pool. Zeroing
// drops references a previous trial left behind.
func Resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// CountTrue counts true values.
func CountTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// Ratio is a successes/trials pair kept in exact integer form; tables
// format it as "0.85 (17/20)" and checks read it as Num/Den.
type Ratio struct {
	Num int `json:"num"`
	Den int `json:"den"`
}

// Rate pairs successes with the trial count as a Ratio.
func Rate(successes, trials int) Ratio {
	return Ratio{Num: successes, Den: trials}
}

// Value returns Num/Den, or 0 for an empty ratio.
func (r Ratio) Value() float64 {
	if r.Den == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Den)
}

// Package runner holds the shared trial fan-out used by every experiment:
// deterministic seed-indexed repetitions spread across worker goroutines,
// plus the small aggregation helpers (success counting, success ratios)
// their tables are built from.
package runner

import (
	"runtime"
	"sync"
)

// Trials runs f for seeds base..base+n-1 across workers goroutines
// (workers <= 0 means one per CPU) and returns the results in seed order.
// f must be a pure function of its seed, so the output is independent of
// the worker count.
func Trials[T any](n int, base uint64, workers int, f func(seed uint64) T) []T {
	out := make([]T, n)
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = f(base + uint64(i))
			}
		}()
	}
	wg.Wait()
	return out
}

// Pool recycles per-trial state (a simulator, scratch slices) across the
// trials of a fan-out, so parallel trials reuse warmed-up capacity instead
// of re-growing it and fighting the GC. It is a typed wrapper over
// sync.Pool: safe for concurrent Get/Put from trial workers, and drained by
// the GC like any sync.Pool. Callers must fully re-initialize whatever
// state they read — a pooled value carries only capacity, never content.
type Pool[S any] struct {
	p sync.Pool
}

// NewPool returns a pool producing fresh states with newFn when empty. S
// should be a pointer type; non-pointer states would be boxed on every Put.
func NewPool[S any](newFn func() S) *Pool[S] {
	p := &Pool[S]{}
	p.p.New = func() any { return newFn() }
	return p
}

// Get returns a pooled or fresh state.
func (p *Pool[S]) Get() S { return p.p.Get().(S) }

// Put returns a state to the pool. The caller must not use it afterwards.
func (p *Pool[S]) Put(s S) { p.p.Put(s) }

// Resize returns s with length n and zeroed contents, reusing the backing
// array when capacity allows — the scratch-slice companion of Pool. Zeroing
// drops references a previous trial left behind.
func Resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// CountTrue counts true values.
func CountTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// Ratio is a successes/trials pair kept in exact integer form; tables
// format it as "0.85 (17/20)" and checks read it as Num/Den.
type Ratio struct {
	Num int `json:"num"`
	Den int `json:"den"`
}

// Rate pairs successes with the trial count as a Ratio.
func Rate(successes, trials int) Ratio {
	return Ratio{Num: successes, Den: trials}
}

// Value returns Num/Den, or 0 for an empty ratio.
func (r Ratio) Value() float64 {
	if r.Den == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Den)
}

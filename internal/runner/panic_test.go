package runner

import (
	"errors"
	"strings"
	"testing"
)

// catchTrialPanic runs fn and returns the *TrialPanic it panics with.
func catchTrialPanic(t *testing.T, fn func()) (tp *TrialPanic) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("fan-out did not panic")
		}
		var ok bool
		tp, ok = r.(*TrialPanic)
		if !ok {
			t.Fatalf("panic value is %T (%v), want *TrialPanic", r, r)
		}
	}()
	fn()
	return nil
}

// A panicking trial must not crash the pool: TrialsReduce re-panics on
// the caller with the trial index and seed annotated.
func TestTrialsReducePanicAnnotated(t *testing.T) {
	boom := errors.New("boom")
	tp := catchTrialPanic(t, func() {
		TrialsReduce(64, 100, 0, 0, func(seed uint64) int {
			if seed == 107 {
				panic(boom)
			}
			return 1
		}, func(a, x int) int { return a + x })
	})
	if tp.Trial != 7 || tp.Seed != 107 {
		t.Fatalf("panic annotated trial=%d seed=%d, want trial=7 seed=107", tp.Trial, tp.Seed)
	}
	if !errors.Is(tp, boom) {
		t.Fatalf("TrialPanic does not unwrap to the original error: %v", tp)
	}
	if !strings.Contains(tp.Error(), "trial 7") {
		t.Fatalf("Error() does not name the trial: %q", tp.Error())
	}
	if len(tp.Stack) == 0 {
		t.Fatalf("no worker stack captured")
	}
}

// Multiple panicking trials re-raise the lowest trial index, so the
// failure is deterministic across worker counts and steal orders.
func TestTrialsReducePanicLowestIndexWins(t *testing.T) {
	tp := catchTrialPanic(t, func() {
		TrialsReduce(256, 0, 0, 0, func(seed uint64) int {
			if seed%3 == 2 { // trials 2, 5, 8, ...
				panic("deterministic failure")
			}
			return 1
		}, func(a, x int) int { return a + x })
	})
	if tp.Trial != 2 {
		t.Fatalf("re-panicked trial %d, want the lowest panicking index 2", tp.Trial)
	}
}

// Trials (the materializing form) gets the same annotation.
func TestTrialsPanicAnnotated(t *testing.T) {
	tp := catchTrialPanic(t, func() {
		Trials(64, 0, 0, func(seed uint64) int {
			if seed == 13 {
				panic("boom")
			}
			return int(seed)
		})
	})
	if tp.Trial != 13 || tp.Seed != 13 {
		t.Fatalf("panic annotated trial=%d seed=%d, want 13/13", tp.Trial, tp.Seed)
	}
}

// The pool must stay healthy after a recovered trial panic: subsequent
// fan-outs on the same process-wide scheduler run to completion.
func TestPoolSurvivesTrialPanic(t *testing.T) {
	for round := 0; round < 3; round++ {
		catchTrialPanic(t, func() {
			TrialsReduce(128, 0, 0, 0, func(seed uint64) int {
				if seed == 64 {
					panic("boom")
				}
				return 1
			}, func(a, x int) int { return a + x })
		})
		got := CountTrials(512, 0, 0, func(seed uint64) bool { return seed%2 == 0 })
		if got != 256 {
			t.Fatalf("round %d: pool broken after panic: CountTrials = %d, want 256", round, got)
		}
	}
}

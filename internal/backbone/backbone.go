// Package backbone measures the blockchain backbone properties — chain
// growth, chain quality and common prefix — over recorded protocol runs.
//
// Section 5.2 of the paper builds directly on the backbone analyses of
// Garay, Kiayias & Leonardos [9] and Ren [21]; this package makes those
// three properties first-class measurements so experiments can relate the
// paper's validity results to the classical backbone vocabulary:
//
//   - Chain growth: decided-structure length per Δ of virtual time.
//   - Chain quality: the fraction of honestly-authored blocks among the
//     first k blocks of the decided structure. Algorithm 5/6 decide on the
//     sign of the first k values, so validity under a value-flipping
//     adversary is exactly "chain quality > 1/2".
//   - Common prefix: across the *actual decision views* of every pair of
//     correct nodes (reconstructed from the run via Memory.ViewAt), the
//     number of trailing blocks that must be chopped from the shorter
//     decision prefix to make it a prefix of the other's. 0 means perfect
//     agreement on the decision data.
package backbone

import (
	"sort"

	"repro/internal/agreement"
	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/dag"
	"repro/internal/node"
)

// Report holds the three backbone measurements for one run.
type Report struct {
	// Growth is decided-structure length per Δ.
	Growth float64
	// Quality is the honest fraction of the first-k decision prefix
	// (taken from the final view's canonical selection).
	Quality float64
	// CommonPrefixViolation is the maximum, over pairs of decided correct
	// nodes, of the chop depth between their first-k decision prefixes.
	CommonPrefixViolation int
	// Wasted is the fraction of blocks that do not contribute to the
	// decision structure (orphans for the chain, unordered for the DAG).
	Wasted float64
}

// prefixFor returns the decision prefix (first k block ids) of one view.
type prefixFor func(view appendmem.View, k int) []appendmem.MsgID

// chopDepth returns how many trailing elements of the shorter slice must
// be removed for it to be a prefix of the longer one.
func chopDepth(a, b []appendmem.MsgID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	common := 0
	for common < n && a[common] == b[common] {
		common++
	}
	return n - common
}

// analyze computes the report. prefix and finalStructured typically close
// over one cached index (chain.Cached / dag.Cached); analyze visits the
// per-node decision views in ascending size order and the final (largest)
// view last, so the index only ever extends — each block is processed once
// across the whole analysis instead of once per view.
func analyze(r *agreement.Result, k int, prefix prefixFor, finalStructured func() int, total int) Report {
	rep := Report{}

	// Common prefix across the decided correct nodes' decision views.
	// chopDepth is taken as a max over unordered pairs, so visiting the
	// views sorted by size leaves the result unchanged.
	var sizes []int
	for _, id := range r.Roster.Correct() {
		if !r.Outcome.Decided[id] || r.DecideViewSize[id] == 0 {
			continue
		}
		sizes = append(sizes, r.DecideViewSize[id])
	}
	sort.Ints(sizes)
	prefixes := make([][]appendmem.MsgID, 0, len(sizes))
	for _, size := range sizes {
		prefixes = append(prefixes, prefix(r.Mem.ViewAt(size), k))
	}
	for i := 0; i < len(prefixes); i++ {
		for j := i + 1; j < len(prefixes); j++ {
			if d := chopDepth(prefixes[i], prefixes[j]); d > rep.CommonPrefixViolation {
				rep.CommonPrefixViolation = d
			}
		}
	}

	structured := finalStructured()
	if r.Duration > 0 {
		rep.Growth = float64(structured) / (float64(r.Duration) / r.Cfg.Delta)
	}
	ids := prefix(r.FinalView, k)
	if len(ids) > 0 {
		honest := 0
		for _, id := range ids {
			if !r.Roster.IsByzantine(r.FinalView.Message(id).Author) {
				honest++
			}
		}
		rep.Quality = float64(honest) / float64(len(ids))
	}
	if total > 0 {
		rep.Wasted = float64(total-structured) / float64(total)
	}
	return rep
}

// AnalyzeChain measures the backbone properties of a chain (Algorithm 5)
// run. The canonical selection uses first-arrived tie-breaking, which is
// deterministic and view-only.
func AnalyzeChain(r *agreement.Result, k int) Report {
	idx := chain.NewCached()
	sel := func(view appendmem.View, k int) []appendmem.MsgID {
		tree := idx.At(view)
		tips := tree.LongestTips()
		if len(tips) == 0 {
			return nil
		}
		ids := tree.ChainTo(tips[0])
		if len(ids) > k {
			ids = ids[:k]
		}
		return ids
	}
	final := func() int { return idx.At(r.FinalView).Height() }
	return analyze(r, k, sel, final, r.TotalAppends)
}

// AnalyzeDag measures the backbone properties of a DAG (Algorithm 6) run
// under the given pivot choice.
func AnalyzeDag(r *agreement.Result, k int, ghost bool) Report {
	idx := dag.NewCached()
	pivotOf := func(d *dag.Dag) []appendmem.MsgID {
		if ghost {
			return d.GhostPivot()
		}
		return d.LongestPivot()
	}
	sel := func(view appendmem.View, k int) []appendmem.MsgID {
		d := idx.At(view)
		ids := d.Linearize(pivotOf(d))
		if len(ids) > k {
			ids = ids[:k]
		}
		return ids
	}
	final := func() int {
		d := idx.At(r.FinalView)
		return len(d.Linearize(pivotOf(d)))
	}
	return analyze(r, k, sel, final, r.TotalAppends)
}

// HonestShare returns the honest fraction of all appends in the run — the
// baseline chain quality would have with no structural advantage for
// either side (the honest token share).
func HonestShare(r *agreement.Result) float64 {
	if r.TotalAppends == 0 {
		return 0
	}
	return float64(r.CorrectAppends) / float64(r.TotalAppends)
}

// QualityImpliesValidity reports whether the run's verdict is consistent
// with its measured quality: under a −1-voting adversary and unanimous +1
// honest inputs, validity should hold iff quality > 1/2 in the prefix the
// nodes actually decided on. Small discrepancies can occur when different
// nodes decide on different prefixes; the function is used as a
// cross-check, not an assertion.
func QualityImpliesValidity(rep Report, verdict node.Verdict) bool {
	return (rep.Quality > 0.5) == verdict.Validity
}

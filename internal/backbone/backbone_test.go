package backbone

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/agreement/chainba"
	"repro/internal/agreement/dagba"
	"repro/internal/appendmem"
	"repro/internal/chain"
)

func chainRun(t *testing.T, n, tt int, lambda float64, k int, adv agreement.Adversary) *agreement.Result {
	t.Helper()
	r, err := agreement.RunRandomized(agreement.RandomizedConfig{
		N: n, T: tt, Lambda: lambda, K: k, Seed: 5,
	}, chainba.Rule{TB: chain.RandomTieBreaker{}}, adv)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestChopDepth(t *testing.T) {
	a := []appendmem.MsgID{1, 2, 3, 4}
	for _, tc := range []struct {
		b    []appendmem.MsgID
		want int
	}{
		{[]appendmem.MsgID{1, 2, 3, 4}, 0},
		{[]appendmem.MsgID{1, 2}, 0},       // prefix: nothing to chop
		{[]appendmem.MsgID{1, 2, 9}, 1},    // diverges at third
		{[]appendmem.MsgID{9, 9, 9, 9}, 4}, // nothing shared
		{nil, 0},
	} {
		if got := chopDepth(a, tc.b); got != tc.want {
			t.Errorf("chopDepth(%v, %v) = %d, want %d", a, tc.b, got, tc.want)
		}
	}
}

func TestHonestChainBackbone(t *testing.T) {
	r := chainRun(t, 8, 0, 0.2, 21, agreement.Silent{})
	rep := AnalyzeChain(r, 21)
	if rep.Quality != 1.0 {
		t.Fatalf("quality = %v with no Byzantine nodes", rep.Quality)
	}
	if rep.Growth <= 0 {
		t.Fatalf("growth = %v", rep.Growth)
	}
	if rep.CommonPrefixViolation != 0 {
		t.Fatalf("common-prefix violation %d without an adversary at low rate", rep.CommonPrefixViolation)
	}
	// Chain growth is bounded by the aggregate append rate nλ per Δ.
	if rep.Growth > 8*0.2*1.5 {
		t.Fatalf("growth %v exceeds the token rate", rep.Growth)
	}
}

func TestQualityDegradesUnderAttack(t *testing.T) {
	silent := AnalyzeChain(chainRun(t, 10, 4, 1, 21, agreement.Silent{}), 21)
	attacked := AnalyzeChain(chainRun(t, 10, 4, 1, 21, &adversary.ChainTieBreaker{}), 21)
	if attacked.Quality >= silent.Quality {
		t.Fatalf("quality did not degrade: %v -> %v", silent.Quality, attacked.Quality)
	}
	if attacked.Quality > 0.6 {
		t.Fatalf("tie-break attack left quality at %v; expected collapse", attacked.Quality)
	}
}

func TestDagQualityResists(t *testing.T) {
	r, err := agreement.RunRandomized(agreement.RandomizedConfig{
		N: 10, T: 4, Lambda: 1, K: 81, Seed: 5,
	}, dagba.Rule{Pivot: dagba.Ghost}, &adversary.DagChainExtender{Pivot: dagba.Ghost})
	if err != nil {
		t.Fatal(err)
	}
	rep := AnalyzeDag(r, 81, true)
	// The DAG cannot be pushed far below the honest token share.
	if rep.Quality < 0.5 {
		t.Fatalf("dag quality = %v under private-chain attack", rep.Quality)
	}
	// The DAG wastes almost nothing (inclusive structure).
	if rep.Wasted > 0.2 {
		t.Fatalf("dag wasted fraction = %v", rep.Wasted)
	}
}

func TestChainWastesUnderForks(t *testing.T) {
	attacked := AnalyzeChain(chainRun(t, 10, 4, 1, 21, &adversary.ChainTieBreaker{}), 21)
	if attacked.Wasted < 0.2 {
		t.Fatalf("high-rate attacked chain wasted only %v", attacked.Wasted)
	}
}

func TestHonestShare(t *testing.T) {
	r := chainRun(t, 10, 5, 0.5, 15, &agreement.ValueFlip{Rule: chainba.Rule{TB: chain.RandomTieBreaker{}}})
	share := HonestShare(r)
	if share < 0.3 || share > 0.7 {
		t.Fatalf("honest share = %v, want near 0.5 for t=n/2", share)
	}
}

func TestQualityImpliesValidityCrossCheck(t *testing.T) {
	// Over a batch of runs, the quality>1/2 <-> validity correspondence
	// should hold for the vast majority (small slack for nodes deciding on
	// different prefixes).
	agreeing := 0
	const trials = 20
	for seed := uint64(0); seed < trials; seed++ {
		r, err := agreement.RunRandomized(agreement.RandomizedConfig{
			N: 10, T: 4, Lambda: 0.25, K: 21, Seed: seed,
		}, chainba.Rule{TB: chain.RandomTieBreaker{}}, &adversary.ChainTieBreaker{})
		if err != nil {
			t.Fatal(err)
		}
		if QualityImpliesValidity(AnalyzeChain(r, 21), r.Verdict) {
			agreeing++
		}
	}
	if agreeing < trials*3/4 {
		t.Fatalf("quality/validity correspondence held only %d/%d", agreeing, trials)
	}
}

func TestCommonPrefixViolationDetectable(t *testing.T) {
	// Under heavy forking, different nodes can decide on diverging
	// prefixes; the analyzer must be able to report a nonzero violation
	// somewhere in a batch. (Agreement failures in E6-style runs are rare
	// but the violation metric is softer: any divergence counts.)
	found := false
	for seed := uint64(0); seed < 30 && !found; seed++ {
		r, err := agreement.RunRandomized(agreement.RandomizedConfig{
			N: 10, T: 4, Lambda: 2, K: 15, Seed: seed,
		}, chainba.Rule{TB: chain.RandomTieBreaker{}}, &adversary.ChainTieBreaker{})
		if err != nil {
			t.Fatal(err)
		}
		if AnalyzeChain(r, 15).CommonPrefixViolation > 0 {
			found = true
		}
	}
	if !found {
		t.Log("no common-prefix divergence in 30 hostile runs (metric may be conservative)")
	}
}

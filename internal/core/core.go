// Package core is the library's compatibility front door: a flat Config
// that names a protocol, an adversary and the model parameters, and a Run
// function returning a uniform result. Since the scenario layer landed,
// core is a thin adapter over internal/scenario — the registries there
// are the single source of truth for protocol, tie-break, pivot, attack
// and access-model names, and Config/Run simply translate to a
// scenario.Spec. Examples and quick scripts use core; anything that
// wants sweeps, JSON specs or metric extraction uses scenario directly.
package core

import (
	"repro/internal/appendmem"
	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Protocol selects the agreement algorithm.
type Protocol = scenario.Protocol

// Protocols.
const (
	Sync      = scenario.Sync
	Timestamp = scenario.Timestamp
	Chain     = scenario.Chain
	Dag       = scenario.Dag
)

// TieBreak selects the chain protocol's tie-breaking rule.
type TieBreak = scenario.TieBreak

// Tie-breaking rules (chain protocol only).
const (
	TieFirst       = scenario.TieFirst
	TieRandom      = scenario.TieRandom
	TieAdversarial = scenario.TieAdversarial
)

// Pivot selects the DAG protocol's pivot rule.
type Pivot = scenario.Pivot

// Pivot rules (dag protocol only).
const (
	PivotGhost   = scenario.PivotGhost
	PivotLongest = scenario.PivotLongest
)

// Attack names the Byzantine strategy.
type Attack = scenario.Attack

// Attacks. Silent works everywhere; the rest are protocol-specific (run
// `amrun -list` for the full registry with one-line docs).
const (
	AttackSilent       = scenario.AttackSilent
	AttackFlip         = scenario.AttackFlip
	AttackFork         = scenario.AttackFork
	AttackTieBreak     = scenario.AttackTieBreak
	AttackPrivateChain = scenario.AttackPrivateChain
	AttackLastMinute   = scenario.AttackLastMinute
	AttackPrivateFork  = scenario.AttackPrivateFork
	AttackEquivocate   = scenario.AttackEquivocate
	AttackDelayedChain = scenario.AttackDelayedChain
	AttackLoudFlip     = scenario.AttackLoudFlip
	AttackRandom       = scenario.AttackRandom
)

// Config declares one run.
type Config struct {
	Protocol Protocol
	N, T     int
	Lambda   float64 // token rate per node per Δ (randomized protocols)
	Delta    float64 // synchrony bound; 0 means 1.0
	K        int     // decision threshold (randomized protocols)
	Rounds   int     // sync protocol; 0 means T+1
	TieBreak TieBreak
	Pivot    Pivot
	Attack   Attack
	Crashes  int
	Seed     uint64
	// Inputs: "same" (all +1, default), "same:-1", "split:<ones>", or
	// "random".
	Inputs string

	// FreshReads removes honest Δ-staleness (ablation; randomized
	// protocols only).
	FreshReads bool
	// RoundRobin replaces the Poisson token authority with the burst-free
	// deterministic one (ablation; randomized protocols only).
	RoundRobin bool
	// StallAtSize/StallFor inject a temporal-asynchrony blackout of honest
	// view refreshes (randomized protocols only; see §5.3's discussion).
	StallAtSize int
	StallFor    float64

	// Trace, when non-nil, records the run's events (see internal/trace).
	Trace *trace.Recorder
}

// Spec translates the flat config into the scenario layer's declarative
// form.
func (c Config) Spec() scenario.Spec {
	s := scenario.Spec{
		Protocol: c.Protocol, N: c.N, T: c.T, Crashes: c.Crashes,
		Lambda: c.Lambda, Delta: c.Delta, K: c.K, Rounds: c.Rounds,
		TieBreak: c.TieBreak, Pivot: c.Pivot, Attack: c.Attack,
		Inputs: c.Inputs, FreshReads: c.FreshReads,
		StallAtSize: c.StallAtSize, StallFor: c.StallFor,
		Seed: c.Seed,
	}
	if c.RoundRobin {
		s.Access = scenario.AccessRoundRobin
	}
	return s
}

// Result is the uniform outcome of one run.
type Result struct {
	Config   Config
	Verdict  node.Verdict
	Decision []int64 // per node; meaningful where Decided
	Decided  []bool
	Roster   node.Roster
	Inputs   node.Inputs

	// Randomized-protocol extras (zero for sync runs).
	TotalAppends int
	ByzAppends   int
	Duration     sim.Time
	FinalView    appendmem.View
	HasView      bool
}

// Run executes one run of the configured protocol.
func Run(cfg Config) (*Result, error) {
	b, err := scenario.Bind(cfg.Spec())
	if err != nil {
		return nil, err
	}
	r, err := b.RunTraced(cfg.Seed, cfg.Trace)
	if err != nil {
		return nil, err
	}
	return &Result{
		Config: cfg, Verdict: r.Verdict,
		Decision: r.Decision, Decided: r.Decided,
		Roster: r.Roster, Inputs: r.Inputs,
		TotalAppends: r.TotalAppends, ByzAppends: r.ByzAppends,
		Duration: r.Duration, FinalView: r.FinalView, HasView: r.HasView,
	}, nil
}

// TrialSummary aggregates repeated runs of one configuration.
type TrialSummary = scenario.TrialSummary

// RunTrials executes trials runs with seeds cfg.Seed, cfg.Seed+1, ... and
// aggregates the verdicts.
func RunTrials(cfg Config, trials int) (TrialSummary, error) {
	return scenario.RunTrials(cfg.Spec(), trials)
}

// Package core is the library's front door: a declarative configuration
// that names a protocol, an adversary and the model parameters, and a Run
// function that wires the right substrate together and returns a uniform
// result. Examples and the amrun CLI are thin layers over this package;
// everything here delegates to the per-protocol packages, which remain
// usable directly for finer control.
//
// The four protocols are the paper's four agreement algorithms:
//
//	sync       Algorithm 1 — deterministic BA, synchronous rounds (§3.2)
//	timestamp  Algorithm 4 — absolute-timestamp baseline (§5.1)
//	chain      Algorithm 5 — longest chain with a tie-breaking rule (§5.2)
//	dag        Algorithm 6 — BlockDAG with a pivot rule (§5.3)
//
// Each protocol is paired with the adversaries that its section analyses;
// Run rejects meaningless combinations (e.g. the fork adversary against
// the timestamp baseline) rather than running a misleading experiment.
package core

import (
	"fmt"
	"strings"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/agreement/chainba"
	"repro/internal/agreement/dagba"
	"repro/internal/agreement/syncba"
	"repro/internal/agreement/timestamp"
	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Protocol selects the agreement algorithm.
type Protocol string

// Protocols.
const (
	Sync      Protocol = "sync"
	Timestamp Protocol = "timestamp"
	Chain     Protocol = "chain"
	Dag       Protocol = "dag"
)

// TieBreak selects the chain protocol's tie-breaking rule.
type TieBreak string

// Tie-breaking rules (chain protocol only).
const (
	TieFirst       TieBreak = "first"
	TieRandom      TieBreak = "random"
	TieAdversarial TieBreak = "adversarial"
)

// Pivot selects the DAG protocol's pivot rule.
type Pivot string

// Pivot rules (dag protocol only).
const (
	PivotGhost   Pivot = "ghost"
	PivotLongest Pivot = "longest"
)

// Attack names the Byzantine strategy.
type Attack string

// Attacks. Silent works everywhere; the rest are protocol-specific (see
// the package docs of internal/adversary and internal/agreement/syncba).
const (
	AttackSilent       Attack = "silent"
	AttackFlip         Attack = "flip"          // timestamp/chain/dag: honest structure, flipped vote, fresh reads
	AttackFork         Attack = "fork"          // chain: Theorem 5.3 sibling forks
	AttackTieBreak     Attack = "tiebreak"      // chain: Theorem 5.4 fresh-tip extension
	AttackPrivateChain Attack = "private-chain" // dag: Lemma 5.5 pivot-extending chains
	AttackEquivocate   Attack = "equivocate"    // chain: alternating fork/extend
	AttackDelayedChain Attack = "delayed-chain" // sync: Lemma 3.1 hidden chain
	AttackLoudFlip     Attack = "loud-flip"     // sync: on-schedule flipped votes
	AttackRandom       Attack = "random"        // any randomized protocol: well-formed fuzzing noise
)

// Config declares one run.
type Config struct {
	Protocol Protocol
	N, T     int
	Lambda   float64 // token rate per node per Δ (randomized protocols)
	Delta    float64 // synchrony bound; 0 means 1.0
	K        int     // decision threshold (randomized protocols)
	Rounds   int     // sync protocol; 0 means T+1
	TieBreak TieBreak
	Pivot    Pivot
	Attack   Attack
	Crashes  int
	Seed     uint64
	// Inputs: "same" (all +1, default), "same:-1", "split:<ones>", or
	// "random".
	Inputs string

	// FreshReads removes honest Δ-staleness (ablation; randomized
	// protocols only).
	FreshReads bool
	// RoundRobin replaces the Poisson token authority with the burst-free
	// deterministic one (ablation; randomized protocols only).
	RoundRobin bool
	// StallAtSize/StallFor inject a temporal-asynchrony blackout of honest
	// view refreshes (randomized protocols only; see §5.3's discussion).
	StallAtSize int
	StallFor    float64

	// Trace, when non-nil, records the run's events (see internal/trace).
	Trace *trace.Recorder
}

// Result is the uniform outcome of one run.
type Result struct {
	Config   Config
	Verdict  node.Verdict
	Decision []int64 // per node; meaningful where Decided
	Decided  []bool
	Roster   node.Roster
	Inputs   node.Inputs

	// Randomized-protocol extras (zero for sync runs).
	TotalAppends int
	ByzAppends   int
	Duration     sim.Time
	FinalView    appendmem.View
	HasView      bool
}

func (c *Config) inputs(rng *xrand.PCG) (node.Inputs, error) {
	spec := c.Inputs
	if spec == "" {
		spec = "same"
	}
	switch {
	case spec == "same":
		return node.AllSame(c.N, +1), nil
	case spec == "same:-1":
		return node.AllSame(c.N, -1), nil
	case strings.HasPrefix(spec, "split:"):
		var ones int
		if _, err := fmt.Sscanf(spec, "split:%d", &ones); err != nil || ones < 0 || ones > c.N {
			return nil, fmt.Errorf("core: bad input spec %q", spec)
		}
		return node.SplitInputs(c.N, ones), nil
	case spec == "random":
		return node.RandomInputs(rng, c.N), nil
	default:
		return nil, fmt.Errorf("core: unknown input spec %q", spec)
	}
}

func (c *Config) tieBreaker() (chain.TieBreaker, error) {
	switch c.TieBreak {
	case "", TieRandom:
		return chain.RandomTieBreaker{}, nil
	case TieFirst:
		return chain.FirstTieBreaker{}, nil
	case TieAdversarial:
		n, t := c.N, c.T
		return chain.AdversarialTieBreaker{
			IsByzantine: func(id appendmem.NodeID) bool { return int(id) >= n-t },
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown tie-break %q", c.TieBreak)
	}
}

func (c *Config) pivot() (dagba.PivotRule, error) {
	switch c.Pivot {
	case "", PivotGhost:
		return dagba.Ghost, nil
	case PivotLongest:
		return dagba.Longest, nil
	default:
		return 0, fmt.Errorf("core: unknown pivot %q", c.Pivot)
	}
}

func (c *Config) randomizedAdversary(rule agreement.HonestRule) (agreement.Adversary, error) {
	switch c.Attack {
	case "", AttackSilent:
		return agreement.Silent{}, nil
	case AttackFlip:
		return &agreement.ValueFlip{Rule: rule}, nil
	case AttackRandom:
		return &adversary.Random{}, nil
	case AttackFork:
		if c.Protocol != Chain {
			return nil, fmt.Errorf("core: attack %q needs the chain protocol", c.Attack)
		}
		return &adversary.ChainForker{}, nil
	case AttackTieBreak:
		if c.Protocol != Chain {
			return nil, fmt.Errorf("core: attack %q needs the chain protocol", c.Attack)
		}
		return &adversary.ChainTieBreaker{}, nil
	case AttackEquivocate:
		if c.Protocol != Chain {
			return nil, fmt.Errorf("core: attack %q needs the chain protocol", c.Attack)
		}
		return &adversary.Equivocator{}, nil
	case AttackPrivateChain:
		if c.Protocol != Dag {
			return nil, fmt.Errorf("core: attack %q needs the dag protocol", c.Attack)
		}
		p, err := c.pivot()
		if err != nil {
			return nil, err
		}
		return &adversary.DagChainExtender{Pivot: p}, nil
	default:
		return nil, fmt.Errorf("core: attack %q not valid for protocol %q", c.Attack, c.Protocol)
	}
}

// Run executes one run of the configured protocol.
func Run(cfg Config) (*Result, error) {
	rng := xrand.New(cfg.Seed, 0xC0DE)
	inputs, err := cfg.inputs(rng)
	if err != nil {
		return nil, err
	}

	if cfg.Protocol == Sync {
		var adv syncba.Adversary
		switch cfg.Attack {
		case "", AttackSilent:
			adv = syncba.Silent{}
		case AttackDelayedChain:
			adv = &syncba.DelayedChain{}
		case AttackLoudFlip:
			adv = &syncba.LoudFlip{}
		default:
			return nil, fmt.Errorf("core: attack %q not valid for protocol sync", cfg.Attack)
		}
		r, err := syncba.Run(syncba.Config{
			N: cfg.N, T: cfg.T, Rounds: cfg.Rounds, Delta: cfg.Delta,
			Seed: cfg.Seed, Inputs: inputs, Crashes: cfg.Crashes,
			Trace: cfg.Trace,
		}, adv)
		if err != nil {
			return nil, err
		}
		return &Result{
			Config: cfg, Verdict: r.Verdict,
			Decision: r.Outcome.Decision, Decided: r.Outcome.Decided,
			Roster: r.Roster, Inputs: r.Inputs,
			TotalAppends: r.FinalView.Size(), Duration: r.Duration,
			FinalView: r.FinalView, HasView: true,
		}, nil
	}

	var rule agreement.HonestRule
	switch cfg.Protocol {
	case Timestamp:
		rule = timestamp.Rule{}
	case Chain:
		tb, err := cfg.tieBreaker()
		if err != nil {
			return nil, err
		}
		rule = chainba.Rule{TB: tb}
	case Dag:
		p, err := cfg.pivot()
		if err != nil {
			return nil, err
		}
		rule = dagba.Rule{Pivot: p}
	default:
		return nil, fmt.Errorf("core: unknown protocol %q", cfg.Protocol)
	}
	adv, err := cfg.randomizedAdversary(rule)
	if err != nil {
		return nil, err
	}
	r, err := agreement.RunRandomized(agreement.RandomizedConfig{
		N: cfg.N, T: cfg.T, Lambda: cfg.Lambda, Delta: cfg.Delta,
		K: cfg.K, Seed: cfg.Seed, Inputs: inputs, Crashes: cfg.Crashes,
		FreshHonestReads: cfg.FreshReads,
		RoundRobinAccess: cfg.RoundRobin,
		StallAtSize:      cfg.StallAtSize, StallFor: cfg.StallFor,
		Trace: cfg.Trace,
	}, rule, adv)
	if err != nil {
		return nil, err
	}
	return &Result{
		Config: cfg, Verdict: r.Verdict,
		Decision: r.Outcome.Decision, Decided: r.Outcome.Decided,
		Roster: r.Roster, Inputs: r.Inputs,
		TotalAppends: r.TotalAppends, ByzAppends: r.ByzAppends,
		Duration: r.Duration, FinalView: r.FinalView, HasView: true,
	}, nil
}

// TrialSummary aggregates repeated runs of one configuration.
type TrialSummary struct {
	Trials      int
	OK          int
	Agreement   int
	Validity    int
	Termination int
}

// Rate returns the all-properties success rate.
func (s TrialSummary) Rate() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.OK) / float64(s.Trials)
}

func (s TrialSummary) String() string {
	return fmt.Sprintf("ok %d/%d (agreement %d, validity %d, termination %d)",
		s.OK, s.Trials, s.Agreement, s.Validity, s.Termination)
}

// RunTrials executes trials runs with seeds cfg.Seed, cfg.Seed+1, ... and
// aggregates the verdicts.
func RunTrials(cfg Config, trials int) (TrialSummary, error) {
	var s TrialSummary
	for i := 0; i < trials; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		r, err := Run(c)
		if err != nil {
			return s, err
		}
		s.Trials++
		if r.Verdict.OK() {
			s.OK++
		}
		if r.Verdict.Agreement {
			s.Agreement++
		}
		if r.Verdict.Validity {
			s.Validity++
		}
		if r.Verdict.Termination {
			s.Termination++
		}
	}
	return s, nil
}

package core

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestRunEachProtocol(t *testing.T) {
	for _, cfg := range []Config{
		{Protocol: Sync, N: 7, T: 2, Seed: 1},
		{Protocol: Timestamp, N: 8, T: 2, Lambda: 0.5, K: 11, Seed: 1},
		{Protocol: Chain, N: 8, T: 2, Lambda: 0.2, K: 11, Seed: 1},
		{Protocol: Dag, N: 8, T: 2, Lambda: 0.5, K: 11, Seed: 1},
	} {
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Protocol, err)
		}
		if !r.Verdict.OK() {
			t.Errorf("%s with silent adversary: %+v", cfg.Protocol, r.Verdict)
		}
		if !r.HasView || r.TotalAppends == 0 {
			t.Errorf("%s: missing view/appends", cfg.Protocol)
		}
	}
}

func TestRunRejectsBadCombos(t *testing.T) {
	bad := []Config{
		{Protocol: "nope", N: 4, Lambda: 1, K: 3},
		{Protocol: Timestamp, N: 4, T: 1, Lambda: 1, K: 3, Attack: AttackFork},
		{Protocol: Chain, N: 4, T: 1, Lambda: 1, K: 3, Attack: AttackPrivateChain},
		{Protocol: Dag, N: 4, T: 1, Lambda: 1, K: 3, Attack: AttackTieBreak},
		{Protocol: Sync, N: 4, T: 1, Attack: AttackFork},
		{Protocol: Chain, N: 4, T: 1, Lambda: 1, K: 3, TieBreak: "bogus"},
		{Protocol: Dag, N: 4, T: 1, Lambda: 1, K: 3, Pivot: "bogus"},
		{Protocol: Chain, N: 4, T: 1, Lambda: 1, K: 3, Inputs: "bogus"},
		{Protocol: Chain, N: 4, T: 1, Lambda: 1, K: 3, Inputs: "split:9"},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestInputSpecs(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want func(in []int64) bool
	}{
		{"", func(in []int64) bool { return in[0] == 1 && in[5] == 1 }},
		{"same", func(in []int64) bool { return in[0] == 1 }},
		{"same:-1", func(in []int64) bool { return in[0] == -1 }},
		{"split:2", func(in []int64) bool { return in[0] == 1 && in[1] == 1 && in[2] == -1 }},
		{"random", func(in []int64) bool { return in[0] == 1 || in[0] == -1 }},
	} {
		r, err := Run(Config{Protocol: Timestamp, N: 6, Lambda: 1, K: 5, Seed: 2, Inputs: tc.spec})
		if err != nil {
			t.Fatalf("%q: %v", tc.spec, err)
		}
		if !tc.want([]int64(r.Inputs)) {
			t.Errorf("%q: inputs %v", tc.spec, r.Inputs)
		}
	}
}

func TestAttackWiring(t *testing.T) {
	// The flip attack must actually hurt validity at small k, tight margin.
	fails := 0
	for seed := uint64(0); seed < 30; seed++ {
		r, err := Run(Config{Protocol: Timestamp, N: 10, T: 4, Lambda: 0.5, K: 5, Seed: seed, Attack: AttackFlip})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Verdict.Validity {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("flip attack had no effect; wiring broken?")
	}
}

func TestSyncAttacks(t *testing.T) {
	r, err := Run(Config{Protocol: Sync, N: 8, T: 3, Seed: 1, Attack: AttackLoudFlip})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verdict.OK() {
		t.Fatalf("loud flip at t<n/2: %+v", r.Verdict)
	}
	r2, err := Run(Config{Protocol: Sync, N: 8, T: 3, Rounds: 2, Seed: 1, Inputs: "split:3", Attack: AttackDelayedChain})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Verdict.Agreement {
		t.Fatal("delayed chain at rounds<t+1 did not break agreement on seed 1")
	}
}

func TestRunTrials(t *testing.T) {
	s, err := RunTrials(Config{Protocol: Dag, N: 8, T: 2, Lambda: 0.5, K: 11, Seed: 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Trials != 5 || s.OK == 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Rate() != float64(s.OK)/5 {
		t.Fatal("rate arithmetic broken")
	}
	if !strings.Contains(s.String(), "ok") {
		t.Fatal("summary string broken")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := Config{Protocol: Chain, N: 8, T: 2, Lambda: 0.5, K: 15, Seed: 77, Attack: AttackTieBreak}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalAppends != b.TotalAppends || a.Duration != b.Duration {
		t.Fatal("same config+seed produced different runs")
	}
	for i := range a.Decision {
		if a.Decision[i] != b.Decision[i] {
			t.Fatal("decisions differ")
		}
	}
}

func TestCrashesPassThrough(t *testing.T) {
	r, err := Run(Config{Protocol: Dag, N: 8, Crashes: 3, Lambda: 0.5, K: 11, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Roster.Correct()) != 5 {
		t.Fatalf("correct = %d", len(r.Roster.Correct()))
	}
	if !r.Verdict.OK() {
		t.Fatalf("verdict = %+v", r.Verdict)
	}
}

func TestAblationKnobs(t *testing.T) {
	// Fresh reads restore chain validity under the tie-break attack at a
	// rate where stale views collapse.
	cfg := Config{Protocol: Chain, N: 10, T: 4, Lambda: 1, K: 21, Attack: AttackTieBreak, Seed: 0}
	staleOK, freshOK := 0, 0
	for seed := uint64(0); seed < 15; seed++ {
		cfg.Seed = seed
		cfg.FreshReads = false
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.FreshReads = true
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Verdict.Validity {
			staleOK++
		}
		if b.Verdict.Validity {
			freshOK++
		}
	}
	if freshOK <= staleOK {
		t.Fatalf("fresh reads did not help: stale %d vs fresh %d", staleOK, freshOK)
	}
}

func TestStallKnob(t *testing.T) {
	fails := 0
	for seed := uint64(0); seed < 15; seed++ {
		r, err := Run(Config{Protocol: Dag, N: 10, T: 4, Lambda: 1, K: 41,
			Attack: AttackPrivateChain, StallAtSize: 30, StallFor: 6, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Verdict.Validity {
			fails++
		}
	}
	if fails < 8 {
		t.Fatalf("blackout barely hurt DAG validity: %d/15 failures", fails)
	}
}

func TestRoundRobinKnob(t *testing.T) {
	// The burst-free authority must still complete runs, and the grant
	// pattern must be perfectly even: with round-robin, per-node GRANT
	// counts differ by at most one (appends can differ more — nodes stop
	// appending once decided).
	rec := trace.New()
	r, err := Run(Config{Protocol: Timestamp, N: 6, Lambda: 1, K: 24, RoundRobin: true, Seed: 2, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verdict.OK() {
		t.Fatalf("%+v", r.Verdict)
	}
	counts := make(map[int]int)
	for _, e := range rec.Events() {
		if e.Kind == trace.Grant {
			counts[int(e.Node)]++
		}
	}
	min, max := 1<<30, 0
	for i := 0; i < 6; i++ {
		if counts[i] < min {
			min = counts[i]
		}
		if counts[i] > max {
			max = counts[i]
		}
	}
	if max-min > 1 {
		t.Fatalf("round-robin grants uneven: %v", counts)
	}
}

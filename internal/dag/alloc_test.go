package dag

import (
	"testing"

	"repro/internal/appendmem"
	"repro/internal/xrand"
)

// dagStepBudget bounds the allocations of one incremental Cached.At step
// (view grows by one message) plus a GhostPivot query. The pivot walk
// rebuilds its path slice, so the budget is wider than the chain's, but
// it must stay independent of the history length.
const dagStepBudget = 64

func TestCachedExtendStepAllocBudget(t *testing.T) {
	m := appendmem.New(8)
	rng := xrand.New(9, 9)
	var ids []appendmem.MsgID
	for i := 0; i < 1200; i++ {
		var parents []appendmem.MsgID
		if len(ids) > 0 {
			for j := 0; j < 1+rng.Intn(2); j++ {
				parents = append(parents, ids[rng.Intn(len(ids))])
			}
		}
		msg := m.Writer(appendmem.NodeID(rng.Intn(8))).MustAppend(1, 0, parents)
		ids = append(ids, msg.ID)
	}

	c := NewCached()
	size := 1000
	c.At(m.ViewAt(size))

	allocs := testing.AllocsPerRun(100, func() {
		size++
		d := c.At(m.ViewAt(size))
		_ = d.GhostPivot()
	})
	if allocs > dagStepBudget {
		t.Fatalf("one cached extend step allocated %.1f times, budget %d", allocs, dagStepBudget)
	}
}

package dag

import (
	"testing"
	"testing/quick"

	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/xrand"
)

// Differential property: on single-parent structures, the DAG's
// longest-pivot rule and the chain package's longest-chain selection (with
// first-arrived tie-breaking) must pick the exact same chain — the DAG is
// a strict generalization of the chain.
func TestDifferentialLongestPivotVsChain(t *testing.T) {
	rng := xrand.New(77, 77)
	if err := quick.Check(func(steps uint8) bool {
		n := 4
		m := appendmem.New(n)
		var ids []appendmem.MsgID
		for s := 0; s < int(steps%60)+1; s++ {
			parent := appendmem.None
			if len(ids) > 0 {
				parent = ids[rng.Intn(len(ids))]
			}
			msg := m.Writer(appendmem.NodeID(rng.Intn(n))).MustAppend(int64(s), 0, []appendmem.MsgID{parent})
			ids = append(ids, msg.ID)
		}
		view := m.Read()

		d := Build(view)
		pivot := d.LongestPivot()

		tree := chain.Build(view)
		tips := tree.LongestTips()
		if len(tips) == 0 {
			return len(pivot) == 0
		}
		chainIDs := tree.ChainTo(tips[0])

		if len(pivot) != len(chainIDs) {
			return false
		}
		for i := range pivot {
			if pivot[i] != chainIDs[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

// On single-parent structures the DAG's linearization of the longest pivot
// is exactly the chain itself: no epochs, no extra blocks.
func TestDifferentialLinearizeIsChain(t *testing.T) {
	rng := xrand.New(78, 78)
	m := appendmem.New(3)
	var ids []appendmem.MsgID
	for s := 0; s < 50; s++ {
		parent := appendmem.None
		if len(ids) > 0 {
			parent = ids[rng.Intn(len(ids))]
		}
		msg := m.Writer(appendmem.NodeID(rng.Intn(3))).MustAppend(int64(s), 0, []appendmem.MsgID{parent})
		ids = append(ids, msg.ID)
	}
	view := m.Read()
	d := Build(view)
	pivot := d.LongestPivot()
	order := d.Linearize(pivot)
	if len(order) != len(pivot) {
		t.Fatalf("single-parent linearization has %d blocks for a %d-block pivot", len(order), len(pivot))
	}
	for i := range pivot {
		if order[i] != pivot[i] {
			t.Fatal("linearization deviates from the chain")
		}
	}
}

// GHOST and longest-pivot agree whenever the structure is a simple path.
func TestDifferentialPivotRulesOnPath(t *testing.T) {
	m := appendmem.New(1)
	parent := appendmem.None
	for i := 0; i < 20; i++ {
		msg := m.Writer(0).MustAppend(int64(i), 0, []appendmem.MsgID{parent})
		parent = msg.ID
	}
	d := Build(m.Read())
	ghost, longest := d.GhostPivot(), d.LongestPivot()
	if len(ghost) != 20 || len(longest) != 20 {
		t.Fatal("pivot lengths wrong on a path")
	}
	for i := range ghost {
		if ghost[i] != longest[i] {
			t.Fatal("pivot rules disagree on a path")
		}
	}
}

package dag

import (
	"testing"
	"testing/quick"

	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/xrand"
)

// Differential property: on single-parent structures, the DAG's
// longest-pivot rule and the chain package's longest-chain selection (with
// first-arrived tie-breaking) must pick the exact same chain — the DAG is
// a strict generalization of the chain.
func TestDifferentialLongestPivotVsChain(t *testing.T) {
	rng := xrand.New(77, 77)
	if err := quick.Check(func(steps uint8) bool {
		n := 4
		m := appendmem.New(n)
		var ids []appendmem.MsgID
		for s := 0; s < int(steps%60)+1; s++ {
			parent := appendmem.None
			if len(ids) > 0 {
				parent = ids[rng.Intn(len(ids))]
			}
			msg := m.Writer(appendmem.NodeID(rng.Intn(n))).MustAppend(int64(s), 0, []appendmem.MsgID{parent})
			ids = append(ids, msg.ID)
		}
		view := m.Read()

		d := Build(view)
		pivot := d.LongestPivot()

		tree := chain.Build(view)
		tips := tree.LongestTips()
		if len(tips) == 0 {
			return len(pivot) == 0
		}
		chainIDs := tree.ChainTo(tips[0])

		if len(pivot) != len(chainIDs) {
			return false
		}
		for i := range pivot {
			if pivot[i] != chainIDs[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

// On single-parent structures the DAG's linearization of the longest pivot
// is exactly the chain itself: no epochs, no extra blocks.
func TestDifferentialLinearizeIsChain(t *testing.T) {
	rng := xrand.New(78, 78)
	m := appendmem.New(3)
	var ids []appendmem.MsgID
	for s := 0; s < 50; s++ {
		parent := appendmem.None
		if len(ids) > 0 {
			parent = ids[rng.Intn(len(ids))]
		}
		msg := m.Writer(appendmem.NodeID(rng.Intn(3))).MustAppend(int64(s), 0, []appendmem.MsgID{parent})
		ids = append(ids, msg.ID)
	}
	view := m.Read()
	d := Build(view)
	pivot := d.LongestPivot()
	order := d.Linearize(pivot)
	if len(order) != len(pivot) {
		t.Fatalf("single-parent linearization has %d blocks for a %d-block pivot", len(order), len(pivot))
	}
	for i := range pivot {
		if order[i] != pivot[i] {
			t.Fatal("linearization deviates from the chain")
		}
	}
}

// GHOST and longest-pivot agree whenever the structure is a simple path.
func TestDifferentialPivotRulesOnPath(t *testing.T) {
	m := appendmem.New(1)
	parent := appendmem.None
	for i := 0; i < 20; i++ {
		msg := m.Writer(0).MustAppend(int64(i), 0, []appendmem.MsgID{parent})
		parent = msg.ID
	}
	d := Build(m.Read())
	ghost, longest := d.GhostPivot(), d.LongestPivot()
	if len(ghost) != 20 || len(longest) != 20 {
		t.Fatal("pivot lengths wrong on a path")
	}
	for i := range ghost {
		if ghost[i] != longest[i] {
			t.Fatal("pivot rules disagree on a path")
		}
	}
}

// equalIDs reports element-wise equality, treating nil and empty alike.
func equalIDs(a, b []appendmem.MsgID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertSameDag compares every observable of an incrementally extended index
// against a from-scratch one.
func assertSameDag(t *testing.T, step int, inc, ref *Dag) {
	t.Helper()
	if inc.Size() != ref.Size() {
		t.Fatalf("prefix %d: size %d vs %d", step, inc.Size(), ref.Size())
	}
	if inc.Height() != ref.Height() {
		t.Fatalf("prefix %d: height %d vs %d", step, inc.Height(), ref.Height())
	}
	if !equalIDs(inc.Tips(), ref.Tips()) {
		t.Fatalf("prefix %d: tips %v vs %v", step, inc.Tips(), ref.Tips())
	}
	if !equalIDs(inc.GhostPivot(), ref.GhostPivot()) {
		t.Fatalf("prefix %d: ghost pivot %v vs %v", step, inc.GhostPivot(), ref.GhostPivot())
	}
	if !equalIDs(inc.LongestPivot(), ref.LongestPivot()) {
		t.Fatalf("prefix %d: longest pivot %v vs %v", step, inc.LongestPivot(), ref.LongestPivot())
	}
	for id := appendmem.MsgID(0); int(id) < step; id++ {
		if inc.Contains(id) != ref.Contains(id) {
			t.Fatalf("prefix %d: Contains(%d) differs", step, id)
		}
		di, oki := inc.Depth(id)
		dr, okr := ref.Depth(id)
		if di != dr || oki != okr {
			t.Fatalf("prefix %d: depth(%d) %d,%v vs %d,%v", step, id, di, oki, dr, okr)
		}
		if inc.Weight(id) != ref.Weight(id) {
			t.Fatalf("prefix %d: weight(%d) %d vs %d", step, id, inc.Weight(id), ref.Weight(id))
		}
		if !equalIDs(inc.Children(id), ref.Children(id)) {
			t.Fatalf("prefix %d: children(%d) differ", step, id)
		}
		if !equalIDs(inc.PastCone(id), ref.PastCone(id)) {
			t.Fatalf("prefix %d: past cone(%d) differs", step, id)
		}
	}
	if !equalIDs(inc.Linearize(inc.GhostPivot()), ref.Linearize(ref.GhostPivot())) {
		t.Fatalf("prefix %d: ghost linearizations differ", step)
	}
	if !equalIDs(inc.Linearize(inc.LongestPivot()), ref.Linearize(ref.LongestPivot())) {
		t.Fatalf("prefix %d: longest linearizations differ", step)
	}
}

// adversarialHistory mixes honest inclusive appends (all current tips, pivot
// first) with withholding-style private-chain extensions and arbitrary
// multi-parent blocks — the block shapes every adversary in the repo emits.
func adversarialHistory(rng *xrand.PCG, steps int) *appendmem.Memory {
	n := 4
	m := appendmem.New(n)
	private := appendmem.None // tip of a privately extended chain
	for s := 0; s < steps; s++ {
		w := m.Writer(appendmem.NodeID(rng.Intn(n)))
		switch style := rng.Intn(4); {
		case style == 0 && m.Len() > 0: // withholding: extend a private chain
			msg := w.MustAppend(-1, 0, []appendmem.MsgID{private})
			private = msg.ID
		case style == 1 && m.Len() > 0: // arbitrary parents, duplicates allowed
			var parents []appendmem.MsgID
			for j := 0; j < 1+rng.Intn(3); j++ {
				parents = append(parents, appendmem.MsgID(rng.Intn(m.Len())))
			}
			w.MustAppend(int64(s), 0, parents)
		default: // honest inclusive append over the full view
			d := Build(m.Read())
			tips := d.Tips()
			if len(tips) == 0 {
				w.MustAppend(int64(s), 0, nil)
				break
			}
			pivot := d.GhostPivot()
			parents := []appendmem.MsgID{pivot[len(pivot)-1]}
			for _, tip := range tips {
				if tip != parents[0] {
					parents = append(parents, tip)
				}
			}
			w.MustAppend(int64(s), 0, parents)
		}
	}
	return m
}

// TestDifferentialExtendVsBuild: for every prefix of randomized adversarial
// histories, a Dag grown one block at a time through Extend must agree with
// a from-scratch Build on every observable.
func TestDifferentialExtendVsBuild(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := xrand.New(seed, 99)
		m := adversarialHistory(rng, 70)
		inc := Build(m.ViewAt(0))
		for s := 0; s <= m.Len(); s++ {
			view := m.ViewAt(s)
			inc.Extend(view)
			assertSameDag(t, s, inc, Build(view))
		}
	}
}

// TestCachedFallsBackOnRegression: a Cached handle handed non-monotone view
// sizes (stale async reads) must still answer exactly like Build — the
// rebuild fallback, not a wrong in-place answer.
func TestCachedFallsBackOnRegression(t *testing.T) {
	rng := xrand.New(5, 99)
	m := adversarialHistory(rng, 60)
	c := NewCached()
	sizes := []int{10, 25, 25, 7, 40, 12, 60, 60, 3, 55}
	for _, s := range sizes {
		view := m.ViewAt(s)
		assertSameDag(t, s, c.At(view), Build(view))
	}
}

// TestExtendRejectsForeignView: Extend must refuse a view that is not an
// extension of the indexed one.
func TestExtendRejectsForeignView(t *testing.T) {
	m := adversarialHistory(xrand.New(6, 99), 20)
	other := adversarialHistory(xrand.New(7, 99), 20)
	d := Build(m.ViewAt(10))
	for _, bad := range []appendmem.View{m.ViewAt(5), other.Read()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("Extend accepted a non-extension view")
				}
			}()
			d.Extend(bad)
		}()
	}
}

// Package dag implements the BlockDAG structure of Section 5.3: appended
// messages reference *all* latest seen appends ("childless states"), forming
// a directed acyclic graph rooted at a virtual genesis.
//
// Ordering a DAG requires a pivot rule; the paper names two (Algorithm 6's
// correctness "is based on one of the tie-breaking rules"):
//
//   - GHOST (Sompolinsky & Zohar [22]): descend the selected-parent tree
//     into the child with the heaviest subtree.
//   - Longest chain (Conflux pivot [14]): follow the longest selected-parent
//     chain.
//
// Each block's first parent is its *selected parent*; the selected-parent
// edges form a tree embedded in the DAG over which both pivot rules walk.
// Given a pivot chain, Linearize produces the total order of Algorithm 6
// Line 9: pivot blocks in order, each preceded by the not-yet-ordered
// blocks of its past cone ("epoch"), topologically sorted with a
// deterministic tie-break. The linearization is a linear extension of the
// DAG's ancestry partial order and identical for identical views — the two
// properties Byzantine agreement on the DAG rests on.
//
// # Incremental indexing
//
// A Dag is a dense-slice index over the view's MsgID space (IDs are the
// contiguous 0..Size-1 arrival prefix of one append-only Memory, and
// parents always carry smaller IDs than their children). Build constructs
// the index from scratch; Extend ingests only the blocks appended since the
// previous view, keeping every derived quantity — depth, selected-parent
// tree depth, GHOST subtree weights and their per-parent tie-state, the tip
// set, both pivot anchors — incrementally correct. Extending by one block
// costs O(parents) plus one walk up the block's selected-parent path for
// the weight updates, instead of the O(view) full rebuild; a consumer that
// re-reads a growing memory every step (see Cached) pays amortized O(1) per
// block instead of O(view) per step.
package dag

import (
	"sort"

	"repro/internal/appendmem"
)

// Dag indexes the multi-parent structure of a view. Blocks with any parent
// reference outside the view are dangling and excluded (with the append
// memory this needs a malformed reference, since parents always precede
// children). All per-block data lives in slices indexed by MsgID; the
// parent-keyed slices use index int(id)+1 so the virtual genesis
// (appendmem.None) occupies slot 0.
type Dag struct {
	view  appendmem.View
	built int // number of view-prefix blocks ingested == len(inDag)
	size  int // non-dangling blocks

	inDag     []bool              // by id
	depth     []int32             // longest all-parent path; genesis children = 1; 0 = dangling
	treeDepth []int32             // selected-parent tree depth; 0 = dangling
	weight    []int32             // selected-parent subtree size
	children  [][]appendmem.MsgID // by parent id+1, over all parent edges
	treeKids  [][]appendmem.MsgID // by parent id+1, selected-parent tree
	ghostBest []appendmem.MsgID   // by parent id+1: earliest heaviest tree kid; None when childless
	parent    []appendmem.MsgID   // selected parent, cached to avoid Message lookups on hot walks

	height int

	// Longest selected-parent chain anchor: the earliest-arrived deepest
	// tree block (LongestPivot's tie-break), maintained on Extend.
	bestTreeTip   appendmem.MsgID
	bestTreeDepth int32

	// tips is the current childless set in ascending id (= arrival) order.
	tips []appendmem.MsgID

	// Epoch-stamped scratch for the traversal helpers: a slot is "visited"
	// in the current traversal iff its stamp equals the current epoch, so
	// clearing between traversals is a counter increment, not an O(V) wipe.
	visited      []uint64
	visitEpoch   uint64
	ordered      []uint64
	orderedEpoch uint64
	dfsStack     []appendmem.MsgID
	epochBuf     []appendmem.MsgID
}

// SelectedParent returns the block's selected parent: Parents[0], or None
// for genesis children.
func SelectedParent(msg *appendmem.Message) appendmem.MsgID {
	if len(msg.Parents) == 0 {
		return appendmem.None
	}
	return msg.Parents[0]
}

// Build indexes the DAG of view from scratch.
func Build(view appendmem.View) *Dag {
	d := &Dag{
		view:        view,
		inDag:       make([]bool, 0, view.Size()),
		depth:       make([]int32, 0, view.Size()),
		treeDepth:   make([]int32, 0, view.Size()),
		weight:      make([]int32, 0, view.Size()),
		children:    make([][]appendmem.MsgID, 1, view.Size()+1),
		treeKids:    make([][]appendmem.MsgID, 1, view.Size()+1),
		ghostBest:   make([]appendmem.MsgID, 1, view.Size()+1),
		parent:      make([]appendmem.MsgID, 0, view.Size()),
		bestTreeTip: appendmem.None,
	}
	d.ghostBest[0] = appendmem.None
	d.extend(view.Size())
	return d
}

// Extend ingests the blocks appended between the Dag's current view and
// view, which must be a later read of the same memory (the Dag's view is a
// prefix of it). All queries afterwards answer for the extended view. It
// panics when view is not an extension.
func (d *Dag) Extend(view appendmem.View) {
	if !d.view.SubsetOf(view) {
		panic("dag: Extend with a view that does not extend the indexed one")
	}
	d.view = view
	d.extend(view.Size())
}

// extend ingests ids [d.built, size).
func (d *Dag) extend(size int) {
	for id := appendmem.MsgID(d.built); int(id) < size; id++ {
		msg := d.view.Message(id)
		ok := true
		var maxDepth int32
		for _, p := range msg.Parents {
			if p == appendmem.None {
				continue
			}
			if !d.inDag[p] {
				ok = false
				break
			}
			if d.depth[p] > maxDepth {
				maxDepth = d.depth[p]
			}
		}
		// Grow the per-id slots (zero values = dangling).
		d.inDag = append(d.inDag, false)
		d.depth = append(d.depth, 0)
		d.treeDepth = append(d.treeDepth, 0)
		d.weight = append(d.weight, 0)
		d.children = append(d.children, nil)
		d.treeKids = append(d.treeKids, nil)
		d.ghostBest = append(d.ghostBest, appendmem.None)
		d.parent = append(d.parent, appendmem.None)
		d.visited = append(d.visited, 0)
		d.ordered = append(d.ordered, 0)
		if !ok {
			continue
		}
		d.inDag[id] = true
		d.size++
		d.depth[id] = maxDepth + 1
		if int(d.depth[id]) > d.height {
			d.height = int(d.depth[id])
		}
		// Child edges (one per distinct parent) and tip maintenance: every
		// referenced parent stops being childless, the new block becomes the
		// (largest-id) tip.
		if len(msg.Parents) == 0 {
			d.children[0] = append(d.children[0], id)
		} else {
			for i, p := range msg.Parents {
				dup := false
				for _, q := range msg.Parents[:i] {
					if q == p {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				d.children[p+1] = append(d.children[p+1], id)
				if p != appendmem.None {
					d.dropTip(p)
				}
			}
		}
		d.tips = append(d.tips, id)

		// Selected-parent tree: attach, then push the new block's unit
		// weight up the selected-parent path, keeping each ancestor's
		// heaviest-kid tie-state exact.
		sp := SelectedParent(msg)
		d.parent[id] = sp
		d.treeKids[sp+1] = append(d.treeKids[sp+1], id)
		if sp == appendmem.None {
			d.treeDepth[id] = 1
		} else {
			d.treeDepth[id] = d.treeDepth[sp] + 1
		}
		if d.treeDepth[id] > d.bestTreeDepth {
			d.bestTreeDepth, d.bestTreeTip = d.treeDepth[id], id
		}
		d.weight[id] = 1
		d.bumpGhostBest(sp, id)
		for p := sp; p != appendmem.None; {
			d.weight[p]++
			pp := d.parent[p]
			d.bumpGhostBest(pp, p)
			p = pp
		}
	}
	d.built = size
}

// dropTip removes p from the tip set; no-op when p is not a tip.
func (d *Dag) dropTip(p appendmem.MsgID) {
	for i, t := range d.tips {
		if t == p {
			d.tips = append(d.tips[:i], d.tips[i+1:]...)
			return
		}
	}
}

// bumpGhostBest re-establishes "ghostBest[p] is the earliest-arrived
// maximum-weight selected-parent kid of p" after kid's weight grew by one.
// Increments preserve the invariant with a single comparison: kid either
// was the best (still is), strictly passes the best, or ties it — and a tie
// goes to the earlier arrival, matching the from-scratch arrival-order scan.
func (d *Dag) bumpGhostBest(p, kid appendmem.MsgID) {
	cur := d.ghostBest[p+1]
	if cur == kid {
		return
	}
	if cur == appendmem.None || d.weight[kid] > d.weight[cur] ||
		(d.weight[kid] == d.weight[cur] && kid < cur) {
		d.ghostBest[p+1] = kid
	}
}

// View returns the view the DAG was built from (the latest extension).
func (d *Dag) View() appendmem.View { return d.view }

// Size returns the number of non-dangling blocks.
func (d *Dag) Size() int { return d.size }

// Height returns the longest all-parent path length from genesis.
func (d *Dag) Height() int { return d.height }

// Contains reports whether the block is in the DAG (visible, well-formed).
func (d *Dag) Contains(id appendmem.MsgID) bool {
	return id >= 0 && int(id) < d.built && d.inDag[id]
}

// Depth returns the block's depth (genesis children have depth 1) and
// whether it is in the DAG.
func (d *Dag) Depth(id appendmem.MsgID) (int, bool) {
	if !d.Contains(id) {
		return 0, false
	}
	return int(d.depth[id]), true
}

// Weight returns the selected-parent subtree size of the block (the GHOST
// weight), or 0 when absent.
func (d *Dag) Weight(id appendmem.MsgID) int {
	if !d.Contains(id) {
		return 0
	}
	return int(d.weight[id])
}

// Tips returns the blocks with no children over any parent edge — the set
// C of "last states which do not have child nodes" that Algorithm 6 Line 5
// references — in arrival order.
func (d *Dag) Tips() []appendmem.MsgID {
	if len(d.tips) == 0 {
		return nil
	}
	return append([]appendmem.MsgID(nil), d.tips...)
}

// kids returns the child list slot for id (None maps to the genesis slot);
// nil when id is outside the indexed range.
func (d *Dag) kids(of [][]appendmem.MsgID, id appendmem.MsgID) []appendmem.MsgID {
	if id < appendmem.None || int(id)+1 >= len(of) {
		return nil
	}
	return of[id+1]
}

// Children returns the blocks that list id among their parents (None for
// genesis children), in arrival order.
func (d *Dag) Children(id appendmem.MsgID) []appendmem.MsgID {
	return append([]appendmem.MsgID(nil), d.kids(d.children, id)...)
}

// GhostPivot returns the pivot chain chosen by the GHOST rule: from the
// genesis, repeatedly descend into the selected-parent child with the
// largest subtree weight, breaking ties by arrival order. Oldest first;
// empty for an empty DAG. The heaviest-kid choice is maintained
// incrementally on Extend, so retrieval is O(pivot length).
func (d *Dag) GhostPivot() []appendmem.MsgID {
	var pivot []appendmem.MsgID
	cur := appendmem.None
	for {
		best := d.ghostBest[cur+1]
		if best == appendmem.None {
			return pivot
		}
		pivot = append(pivot, best)
		cur = best
	}
}

// LongestPivot returns the pivot chain chosen by the longest-chain rule
// over the selected-parent tree, ties by arrival order. Oldest first. The
// deepest tree tip is maintained on Extend, so retrieval is O(pivot
// length).
func (d *Dag) LongestPivot() []appendmem.MsgID {
	if d.bestTreeTip == appendmem.None {
		return nil
	}
	pivot := make([]appendmem.MsgID, d.bestTreeDepth)
	cur := d.bestTreeTip
	for i := int(d.bestTreeDepth) - 1; i >= 0; i-- {
		pivot[i] = cur
		cur = d.parent[cur]
	}
	return pivot
}

// PastCone returns all ancestors of id over all parent edges, including id
// itself, in ascending id order. Empty when id is not in the DAG. The
// traversal reuses the Dag's epoch-stamped scratch, so the only allocation
// is the returned slice.
func (d *Dag) PastCone(id appendmem.MsgID) []appendmem.MsgID {
	if !d.Contains(id) {
		return nil
	}
	d.visitEpoch++
	e := d.visitEpoch
	d.visited[id] = e
	stack := append(d.dfsStack[:0], id)
	cone := []appendmem.MsgID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range d.view.Message(cur).Parents {
			if p != appendmem.None && d.visited[p] != e {
				d.visited[p] = e
				cone = append(cone, p)
				stack = append(stack, p)
			}
		}
	}
	d.dfsStack = stack
	sort.Slice(cone, func(i, j int) bool { return cone[i] < cone[j] })
	return cone
}

// IsAncestor reports whether a is an ancestor of b (or equal) over all
// parent edges. The search walks b's ancestry pruning branches that are
// already too shallow or too old to reach a, and stops as soon as a is
// found instead of materializing the full cone.
func (d *Dag) IsAncestor(a, b appendmem.MsgID) bool {
	if !d.Contains(a) || !d.Contains(b) {
		return false
	}
	if a == b {
		return true
	}
	da := d.depth[a]
	d.visitEpoch++
	e := d.visitEpoch
	d.visited[b] = e
	stack := append(d.dfsStack[:0], b)
	found := false
	for len(stack) > 0 && !found {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range d.view.Message(cur).Parents {
			if p == a {
				found = true
				break
			}
			// Ancestor ids strictly decrease and depths strictly decrease
			// along parent edges: anything older or shallower than a cannot
			// lead back to it.
			if p == appendmem.None || p < a || d.depth[p] <= da || d.visited[p] == e {
				continue
			}
			d.visited[p] = e
			stack = append(stack, p)
		}
	}
	d.dfsStack = stack[:0]
	return found
}

// Linearize returns the total order over the past cone of the pivot tip:
// for each pivot block in order, the blocks of its past cone not ordered by
// earlier pivot blocks ("its epoch"), sorted by (depth, author, seq), with
// the pivot block last in its epoch. Since every ancestor has strictly
// smaller depth, the result is a linear extension of the DAG's ancestry
// order. Blocks outside the pivot tip's past cone are not ordered (they
// will be, once a later pivot block references them).
func (d *Dag) Linearize(pivot []appendmem.MsgID) []appendmem.MsgID {
	var order []appendmem.MsgID
	d.orderedEpoch++
	oe := d.orderedEpoch
	for _, pb := range pivot {
		// Epoch members: ancestors of pb not ordered by earlier pivot
		// blocks. The DFS stops at already-ordered blocks, so each block
		// is visited once across the whole linearization (amortized
		// O(V+E) instead of one full past-cone walk per pivot block).
		d.visitEpoch++
		ve := d.visitEpoch
		d.visited[pb] = ve
		epoch := d.epochBuf[:0]
		stack := d.dfsStack[:0]
		for _, p := range d.view.Message(pb).Parents {
			if p != appendmem.None && d.ordered[p] != oe && d.visited[p] != ve {
				d.visited[p] = ve
				stack = append(stack, p)
			}
		}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			epoch = append(epoch, cur)
			for _, p := range d.view.Message(cur).Parents {
				if p != appendmem.None && d.ordered[p] != oe && d.visited[p] != ve {
					d.visited[p] = ve
					stack = append(stack, p)
				}
			}
		}
		d.dfsStack = stack
		sort.Slice(epoch, func(i, j int) bool {
			a, b := d.view.Message(epoch[i]), d.view.Message(epoch[j])
			if d.depth[epoch[i]] != d.depth[epoch[j]] {
				return d.depth[epoch[i]] < d.depth[epoch[j]]
			}
			if a.Author != b.Author {
				return a.Author < b.Author
			}
			return a.Seq < b.Seq
		})
		for _, id := range epoch {
			d.ordered[id] = oe
			order = append(order, id)
		}
		d.epochBuf = epoch[:0]
		d.ordered[pb] = oe
		order = append(order, pb)
	}
	return order
}

// OrderedValues returns the values of the first k blocks in the
// linearization of the given pivot — the decision input of Algorithm 6
// Line 10. Fewer than k when the ordering is shorter.
func (d *Dag) OrderedValues(pivot []appendmem.MsgID, k int) []int64 {
	order := d.Linearize(pivot)
	if len(order) > k {
		order = order[:k]
	}
	vals := make([]int64, len(order))
	for i, id := range order {
		vals[i] = d.view.Message(id).Value
	}
	return vals
}

// Cached is a reusable index handle for one consumer whose reads of a
// single memory grow monotonically (every View is a prefix of the next —
// the append-memory invariant every protocol loop and analyzer obeys). At
// extends the held index by the view's new suffix instead of rebuilding;
// when handed a view of a different memory or an older prefix (e.g. an
// asynchronous node's stale append view) it falls back to a from-scratch
// Build, so it is always correct and only *fast* in the monotone case.
//
// The zero value is not ready; use NewCached. A Cached must not be shared
// across goroutines.
type Cached struct {
	d *Dag
}

// NewCached returns an empty handle; the first At builds the index.
func NewCached() *Cached { return &Cached{} }

// At returns the index of view, extending the previously returned index
// when view is a forward read of the same memory. The returned Dag is
// owned by the handle and is invalidated (re-pointed at a larger view) by
// the next At call.
func (c *Cached) At(view appendmem.View) *Dag {
	if c.d != nil && c.d.view.SubsetOf(view) {
		c.d.Extend(view)
		return c.d
	}
	c.d = Build(view)
	return c.d
}

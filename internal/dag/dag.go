// Package dag implements the BlockDAG structure of Section 5.3: appended
// messages reference *all* latest seen appends ("childless states"), forming
// a directed acyclic graph rooted at a virtual genesis.
//
// Ordering a DAG requires a pivot rule; the paper names two (Algorithm 6's
// correctness "is based on one of the tie-breaking rules"):
//
//   - GHOST (Sompolinsky & Zohar [22]): descend the selected-parent tree
//     into the child with the heaviest subtree.
//   - Longest chain (Conflux pivot [14]): follow the longest selected-parent
//     chain.
//
// Each block's first parent is its *selected parent*; the selected-parent
// edges form a tree embedded in the DAG over which both pivot rules walk.
// Given a pivot chain, Linearize produces the total order of Algorithm 6
// Line 9: pivot blocks in order, each preceded by the not-yet-ordered
// blocks of its past cone ("epoch"), topologically sorted with a
// deterministic tie-break. The linearization is a linear extension of the
// DAG's ancestry partial order and identical for identical views — the two
// properties Byzantine agreement on the DAG rests on.
//
// # Incremental indexing
//
// A Dag is a dense-slice index over the view's MsgID space (IDs are the
// contiguous 0..Size-1 arrival prefix of one append-only Memory, and
// parents always carry smaller IDs than their children). Build constructs
// the index from scratch; Extend ingests only the blocks appended since the
// previous view, keeping every derived quantity — depth, selected-parent
// tree depth, GHOST subtree weights and their per-parent tie-state, the tip
// set, both pivot anchors — incrementally correct. Extending by one block
// costs O(parents) plus one walk up the block's selected-parent path for
// the weight updates, instead of the O(view) full rebuild; a consumer that
// re-reads a growing memory every step (see Cached) pays amortized O(1) per
// block instead of O(view) per step.
package dag

import (
	"fmt"
	"sort"

	"repro/internal/appendmem"
)

// Dag indexes the multi-parent structure of a view. Blocks with any parent
// reference outside the view are dangling and excluded (with the append
// memory this needs a malformed reference, since parents always precede
// children). All per-block data lives in slices indexed by MsgID minus the
// compaction origin `off`; the parent-keyed slices use index int(id)+1-off
// so the virtual genesis (appendmem.None) — or, after a Compact, the
// anchor block off-1 — occupies slot 0.
//
// Once compaction is engaged the index caches parents, values and
// (author, seq), so every query is answered from the index alone: a
// windowed memory may retire messages the index still holds live, and the
// traversals must not read them back.
type Dag struct {
	view  appendmem.View
	built int // number of view-prefix blocks ingested
	size  int // non-dangling blocks, including frozen ones

	off       int                 // first live id; per-id slices index id-off
	inDag     []bool              // by id-off
	depth     []int32             // longest all-parent path; genesis children = 1; 0 = dangling
	treeDepth []int32             // selected-parent tree depth; 0 = dangling
	weight    []int32             // selected-parent subtree size
	children  [][]appendmem.MsgID // by parent id+1-off, over all parent edges
	treeKids  [][]appendmem.MsgID // by parent id+1-off, selected-parent tree
	ghostBest []appendmem.MsgID   // by parent id+1-off: earliest heaviest tree kid; None when childless
	parent    []appendmem.MsgID   // selected parent, cached to avoid Message lookups on hot walks

	// Structure caches, materialized by the first Compact and maintained
	// by extend from then on: a windowed memory may retire messages the
	// index still answers for, so a compacting index must never re-read
	// the view. Until then traversals read the view directly and the
	// caches cost nothing — the unbounded path carries no windowed
	// overhead.
	tracking  bool
	parents   [][]appendmem.MsgID // by id-off: all parent refs, spans into parArena
	value     []int64             // by id-off: block value
	authorSeq []int64             // by id-off: author<<32|seq, the linearize tie-break key
	parArena  []appendmem.MsgID   // current parent-span arena block

	height int

	// Longest selected-parent chain anchor: the earliest-arrived deepest
	// tree block (LongestPivot's tie-break), maintained on Extend.
	bestTreeTip   appendmem.MsgID
	bestTreeDepth int32

	// tips is the current childless set in ascending id (= arrival) order.
	tips []appendmem.MsgID

	// Frozen-prefix state: the linearized values of the blocks at or below
	// the anchor (a shared prefix of both pivot rules' orders — see
	// Compact) and the anchor's selected-parent tree depth.
	frozenVals      []int64
	anchorTreeDepth int32

	// Epoch-stamped scratch for the traversal helpers: a slot is "visited"
	// in the current traversal iff its stamp equals the current epoch, so
	// clearing between traversals is a counter increment, not an O(V) wipe.
	visited      []uint64
	visitEpoch   uint64
	ordered      []uint64
	orderedEpoch uint64
	dfsStack     []appendmem.MsgID
	epochBuf     []appendmem.MsgID
}

// SelectedParent returns the block's selected parent: Parents[0], or None
// for genesis children.
func SelectedParent(msg *appendmem.Message) appendmem.MsgID {
	if len(msg.Parents) == 0 {
		return appendmem.None
	}
	return msg.Parents[0]
}

// Build indexes the DAG of view from scratch.
func Build(view appendmem.View) *Dag {
	d := &Dag{
		view:        view,
		inDag:       make([]bool, 0, view.Size()),
		depth:       make([]int32, 0, view.Size()),
		treeDepth:   make([]int32, 0, view.Size()),
		weight:      make([]int32, 0, view.Size()),
		children:    make([][]appendmem.MsgID, 1, view.Size()+1),
		treeKids:    make([][]appendmem.MsgID, 1, view.Size()+1),
		ghostBest:   make([]appendmem.MsgID, 1, view.Size()+1),
		parent:      make([]appendmem.MsgID, 0, view.Size()),
		bestTreeTip: appendmem.None,
	}
	d.ghostBest[0] = appendmem.None
	d.extend(view.Size())
	return d
}

// Extend ingests the blocks appended between the Dag's current view and
// view, which must be a later read of the same memory (the Dag's view is a
// prefix of it). All queries afterwards answer for the extended view. It
// panics when view is not an extension.
func (d *Dag) Extend(view appendmem.View) {
	if !d.view.SubsetOf(view) {
		panic("dag: Extend with a view that does not extend the indexed one")
	}
	d.view = view
	d.extend(view.Size())
}

// Parent-span arena geometry, mirroring the append memory's: blocks
// double from parArenaBase up to parArenaMax, so interning a block's
// parents amortizes to zero allocations.
const (
	parArenaBase = 64
	parArenaMax  = 16384
)

// internParents copies ps into the index-owned arena and returns the
// span. The index must answer traversals without reading the memory —
// a windowed memory may retire messages the index still holds live.
func (d *Dag) internParents(ps []appendmem.MsgID) []appendmem.MsgID {
	if len(ps) == 0 {
		return nil
	}
	if cap(d.parArena)-len(d.parArena) < len(ps) {
		c := cap(d.parArena) * 2
		if c < parArenaBase {
			c = parArenaBase
		}
		if c > parArenaMax {
			c = parArenaMax
		}
		if len(ps) > c {
			c = len(ps)
		}
		d.parArena = make([]appendmem.MsgID, 0, c)
	}
	start := len(d.parArena)
	d.parArena = append(d.parArena, ps...)
	return d.parArena[start:len(d.parArena):len(d.parArena)]
}

// track materializes the parents/value/authorSeq caches from the view.
// Called by the first Compact, which always precedes any memory
// retirement (the harness compacts indexes before retiring chunks), so
// every built id is still readable here. Dangling blocks keep zero slots,
// exactly as a tracking extend would have left them.
func (d *Dag) track() {
	if d.tracking {
		return
	}
	d.tracking = true
	d.parents = make([][]appendmem.MsgID, d.built-d.off)
	d.value = make([]int64, d.built-d.off)
	d.authorSeq = make([]int64, d.built-d.off)
	for id := appendmem.MsgID(d.off); int(id) < d.built; id++ {
		idx := int(id) - d.off
		if !d.inDag[idx] {
			continue
		}
		msg := d.view.Message(id)
		d.parents[idx] = d.internParents(msg.Parents)
		d.value[idx] = msg.Value
		d.authorSeq[idx] = int64(msg.Author)<<32 | int64(msg.Seq)
	}
}

// parentsOf returns the parent refs of a built block, from the cache when
// compaction is engaged and from the view otherwise.
func (d *Dag) parentsOf(id appendmem.MsgID) []appendmem.MsgID {
	if d.tracking {
		return d.parents[int(id)-d.off]
	}
	return d.view.Message(id).Parents
}

// valueOf is parentsOf's counterpart for the block value.
func (d *Dag) valueOf(id appendmem.MsgID) int64 {
	if d.tracking {
		return d.value[int(id)-d.off]
	}
	return d.view.Message(id).Value
}

// authorSeqOf is parentsOf's counterpart for the linearize tie-break key.
func (d *Dag) authorSeqOf(id appendmem.MsgID) int64 {
	if d.tracking {
		return d.authorSeq[int(id)-d.off]
	}
	msg := d.view.Message(id)
	return int64(msg.Author)<<32 | int64(msg.Seq)
}

// extend ingests ids [d.built, size).
func (d *Dag) extend(size int) {
	for id := appendmem.MsgID(d.built); int(id) < size; id++ {
		msg := d.view.Message(id)
		idx := int(id) - d.off
		ok := true
		var maxDepth int32
		for _, p := range msg.Parents {
			if p == appendmem.None {
				continue
			}
			if int(p) < d.off || !d.inDag[int(p)-d.off] {
				ok = false // dangling: parent invisible, dangling or frozen away
				break
			}
			if d.depth[int(p)-d.off] > maxDepth {
				maxDepth = d.depth[int(p)-d.off]
			}
		}
		// Grow the per-id slots (zero values = dangling).
		d.inDag = append(d.inDag, false)
		d.depth = append(d.depth, 0)
		d.treeDepth = append(d.treeDepth, 0)
		d.weight = append(d.weight, 0)
		d.children = append(d.children, nil)
		d.treeKids = append(d.treeKids, nil)
		d.ghostBest = append(d.ghostBest, appendmem.None)
		d.parent = append(d.parent, appendmem.None)
		if d.tracking {
			d.parents = append(d.parents, nil)
			d.value = append(d.value, 0)
			d.authorSeq = append(d.authorSeq, 0)
		}
		d.visited = append(d.visited, 0)
		d.ordered = append(d.ordered, 0)
		if !ok {
			continue
		}
		d.inDag[idx] = true
		d.size++
		d.depth[idx] = maxDepth + 1
		if d.tracking {
			d.parents[idx] = d.internParents(msg.Parents)
			d.value[idx] = msg.Value
			d.authorSeq[idx] = int64(msg.Author)<<32 | int64(msg.Seq)
		}
		if int(d.depth[idx]) > d.height {
			d.height = int(d.depth[idx])
		}
		// Child edges (one per distinct parent) and tip maintenance: every
		// referenced parent stops being childless, the new block becomes the
		// (largest-id) tip.
		if len(msg.Parents) == 0 {
			if d.off == 0 {
				d.children[0] = append(d.children[0], id)
			} // else: a fresh root after Compact — no genesis slot remains
		} else {
			for i, p := range msg.Parents {
				dup := false
				for _, q := range msg.Parents[:i] {
					if q == p {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				if ci := int(p) + 1 - d.off; ci >= 0 {
					d.children[ci] = append(d.children[ci], id)
				}
				if p != appendmem.None {
					d.dropTip(p)
				}
			}
		}
		d.tips = append(d.tips, id)

		// Selected-parent tree: attach, then push the new block's unit
		// weight up the selected-parent path, keeping each ancestor's
		// heaviest-kid tie-state exact. The walk stops at the compaction
		// anchor: the frozen pivot prefix no longer competes, so its
		// weights need not stay current.
		sp := SelectedParent(msg)
		d.parent[idx] = sp
		if si := int(sp) + 1 - d.off; si >= 0 {
			d.treeKids[si] = append(d.treeKids[si], id)
		}
		if sp == appendmem.None {
			d.treeDepth[idx] = 1
		} else {
			d.treeDepth[idx] = d.treeDepth[int(sp)-d.off] + 1
		}
		if d.treeDepth[idx] > d.bestTreeDepth {
			d.bestTreeDepth, d.bestTreeTip = d.treeDepth[idx], id
		}
		d.weight[idx] = 1
		if int(sp)+1-d.off >= 0 {
			d.bumpGhostBest(sp, id)
		}
		for p := sp; int(p) >= d.off; {
			d.weight[int(p)-d.off]++
			pp := d.parent[int(p)-d.off]
			if int(pp)+1-d.off >= 0 {
				d.bumpGhostBest(pp, p)
			}
			p = pp
		}
	}
	d.built = size
}

// dropTip removes p from the tip set; no-op when p is not a tip.
func (d *Dag) dropTip(p appendmem.MsgID) {
	for i, t := range d.tips {
		if t == p {
			d.tips = append(d.tips[:i], d.tips[i+1:]...)
			return
		}
	}
}

// bumpGhostBest re-establishes "ghostBest[p] is the earliest-arrived
// maximum-weight selected-parent kid of p" after kid's weight grew by one.
// Increments preserve the invariant with a single comparison: kid either
// was the best (still is), strictly passes the best, or ties it — and a tie
// goes to the earlier arrival, matching the from-scratch arrival-order scan.
func (d *Dag) bumpGhostBest(p, kid appendmem.MsgID) {
	slot := int(p) + 1 - d.off
	cur := d.ghostBest[slot]
	if cur == kid {
		return
	}
	if cur == appendmem.None || d.weight[int(kid)-d.off] > d.weight[int(cur)-d.off] ||
		(d.weight[int(kid)-d.off] == d.weight[int(cur)-d.off] && kid < cur) {
		d.ghostBest[slot] = kid
	}
}

// View returns the view the DAG was built from (the latest extension).
func (d *Dag) View() appendmem.View { return d.view }

// Size returns the number of non-dangling blocks.
func (d *Dag) Size() int { return d.size }

// Height returns the longest all-parent path length from genesis.
func (d *Dag) Height() int { return d.height }

// belowWatermark panics for ids frozen away by Compact.
func (d *Dag) belowWatermark(id appendmem.MsgID) {
	if id >= 0 && int(id) < d.off {
		panic(fmt.Sprintf("dag: query for id %d below watermark %d", id, d.off))
	}
}

// Contains reports whether the block is in the DAG (visible, well-formed).
// It panics for blocks frozen below the compaction watermark.
func (d *Dag) Contains(id appendmem.MsgID) bool {
	d.belowWatermark(id)
	return id >= 0 && int(id) < d.built && d.inDag[int(id)-d.off]
}

// Depth returns the block's depth (genesis children have depth 1) and
// whether it is in the DAG. It panics below the compaction watermark.
func (d *Dag) Depth(id appendmem.MsgID) (int, bool) {
	if !d.Contains(id) {
		return 0, false
	}
	return int(d.depth[int(id)-d.off]), true
}

// Weight returns the selected-parent subtree size of the block (the GHOST
// weight), or 0 when absent. It panics below the compaction watermark.
// Live weights stay exact across Compact: a block's subtree holds only
// blocks with larger ids, which retirement never touches.
func (d *Dag) Weight(id appendmem.MsgID) int {
	if !d.Contains(id) {
		return 0
	}
	return int(d.weight[int(id)-d.off])
}

// Tips returns the blocks with no children over any parent edge — the set
// C of "last states which do not have child nodes" that Algorithm 6 Line 5
// references — in arrival order.
func (d *Dag) Tips() []appendmem.MsgID {
	if len(d.tips) == 0 {
		return nil
	}
	return append([]appendmem.MsgID(nil), d.tips...)
}

// kids returns the child list slot for id (None — or the compaction
// anchor — maps to slot 0); nil when id is outside the indexed range.
func (d *Dag) kids(of [][]appendmem.MsgID, id appendmem.MsgID) []appendmem.MsgID {
	slot := int(id) + 1 - d.off
	if slot < 0 || slot >= len(of) {
		return nil
	}
	return of[slot]
}

// Children returns the blocks that list id among their parents (None for
// genesis children), in arrival order.
func (d *Dag) Children(id appendmem.MsgID) []appendmem.MsgID {
	return append([]appendmem.MsgID(nil), d.kids(d.children, id)...)
}

// GhostPivot returns the pivot chain chosen by the GHOST rule: from the
// genesis, repeatedly descend into the selected-parent child with the
// largest subtree weight, breaking ties by arrival order. Oldest first;
// empty for an empty DAG. The heaviest-kid choice is maintained
// incrementally on Extend, so retrieval is O(pivot length).
// After a Compact the walk starts at the anchor (slot 0) and the returned
// chain is the live pivot segment; the frozen prefix is fixed and already
// folded into OrderedValues.
func (d *Dag) GhostPivot() []appendmem.MsgID {
	var pivot []appendmem.MsgID
	slot := 0
	for {
		best := d.ghostBest[slot]
		if best == appendmem.None {
			return pivot
		}
		pivot = append(pivot, best)
		slot = int(best) + 1 - d.off
	}
}

// LongestPivot returns the pivot chain chosen by the longest-chain rule
// over the selected-parent tree, ties by arrival order. Oldest first. The
// deepest tree tip is maintained on Extend, so retrieval is O(pivot
// length).
func (d *Dag) LongestPivot() []appendmem.MsgID {
	if d.bestTreeTip == appendmem.None {
		return nil
	}
	n := int(d.bestTreeDepth - d.anchorTreeDepth)
	pivot := make([]appendmem.MsgID, n)
	cur := d.bestTreeTip
	for i := n - 1; i >= 0; i-- {
		pivot[i] = cur
		cur = d.parent[int(cur)-d.off]
	}
	return pivot
}

// PastCone returns all ancestors of id over all parent edges, including id
// itself, in ascending id order. Empty when id is not in the DAG. The
// traversal reuses the Dag's epoch-stamped scratch, so the only allocation
// is the returned slice.
// After a Compact the cone is truncated at the watermark: frozen
// ancestors are already ordered and no longer enumerable.
func (d *Dag) PastCone(id appendmem.MsgID) []appendmem.MsgID {
	if !d.Contains(id) {
		return nil
	}
	d.visitEpoch++
	e := d.visitEpoch
	d.visited[int(id)-d.off] = e
	stack := append(d.dfsStack[:0], id)
	cone := []appendmem.MsgID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range d.parentsOf(cur) {
			if p == appendmem.None || int(p) < d.off {
				continue
			}
			if d.visited[int(p)-d.off] != e {
				d.visited[int(p)-d.off] = e
				cone = append(cone, p)
				stack = append(stack, p)
			}
		}
	}
	d.dfsStack = stack
	sort.Slice(cone, func(i, j int) bool { return cone[i] < cone[j] })
	return cone
}

// IsAncestor reports whether a is an ancestor of b (or equal) over all
// parent edges. The search walks b's ancestry pruning branches that are
// already too shallow or too old to reach a, and stops as soon as a is
// found instead of materializing the full cone.
func (d *Dag) IsAncestor(a, b appendmem.MsgID) bool {
	if !d.Contains(a) || !d.Contains(b) {
		return false
	}
	if a == b {
		return true
	}
	da := d.depth[int(a)-d.off]
	d.visitEpoch++
	e := d.visitEpoch
	d.visited[int(b)-d.off] = e
	stack := append(d.dfsStack[:0], b)
	found := false
	for len(stack) > 0 && !found {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range d.parentsOf(cur) {
			if p == a {
				found = true
				break
			}
			// Ancestor ids strictly decrease and depths strictly decrease
			// along parent edges: anything older or shallower than a cannot
			// lead back to it. (a >= off, so frozen parents prune here too.)
			if p == appendmem.None || p < a || d.depth[int(p)-d.off] <= da || d.visited[int(p)-d.off] == e {
				continue
			}
			d.visited[int(p)-d.off] = e
			stack = append(stack, p)
		}
	}
	d.dfsStack = stack[:0]
	return found
}

// Linearize returns the total order over the past cone of the pivot tip:
// for each pivot block in order, the blocks of its past cone not ordered by
// earlier pivot blocks ("its epoch"), sorted by (depth, author, seq), with
// the pivot block last in its epoch. Since every ancestor has strictly
// smaller depth, the result is a linear extension of the DAG's ancestry
// order. Blocks outside the pivot tip's past cone are not ordered (they
// will be, once a later pivot block references them).
func (d *Dag) Linearize(pivot []appendmem.MsgID) []appendmem.MsgID {
	var order []appendmem.MsgID
	d.orderedEpoch++
	oe := d.orderedEpoch
	for _, pb := range pivot {
		// Epoch members: ancestors of pb not ordered by earlier pivot
		// blocks. The DFS stops at already-ordered blocks, so each block
		// is visited once across the whole linearization (amortized
		// O(V+E) instead of one full past-cone walk per pivot block).
		// Frozen parents (below the watermark) are by construction inside
		// the anchor's past cone, i.e. ordered by the frozen prefix, so the
		// DFS treats them exactly like earlier-epoch blocks and stops.
		d.visitEpoch++
		ve := d.visitEpoch
		d.visited[int(pb)-d.off] = ve
		epoch := d.epochBuf[:0]
		stack := d.dfsStack[:0]
		for _, p := range d.parentsOf(pb) {
			if p != appendmem.None && int(p) >= d.off && d.ordered[int(p)-d.off] != oe && d.visited[int(p)-d.off] != ve {
				d.visited[int(p)-d.off] = ve
				stack = append(stack, p)
			}
		}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			epoch = append(epoch, cur)
			for _, p := range d.parentsOf(cur) {
				if p != appendmem.None && int(p) >= d.off && d.ordered[int(p)-d.off] != oe && d.visited[int(p)-d.off] != ve {
					d.visited[int(p)-d.off] = ve
					stack = append(stack, p)
				}
			}
		}
		d.dfsStack = stack
		sort.Slice(epoch, func(i, j int) bool {
			ii, jj := int(epoch[i])-d.off, int(epoch[j])-d.off
			if d.depth[ii] != d.depth[jj] {
				return d.depth[ii] < d.depth[jj]
			}
			// authorSeq packs (author, seq) so one compare is the
			// lexicographic tie-break.
			return d.authorSeqOf(epoch[i]) < d.authorSeqOf(epoch[j])
		})
		for _, id := range epoch {
			d.ordered[int(id)-d.off] = oe
			order = append(order, id)
		}
		d.epochBuf = epoch[:0]
		d.ordered[int(pb)-d.off] = oe
		order = append(order, pb)
	}
	return order
}

// OrderedValues returns the values of the first k blocks in the
// linearization of the given pivot — the decision input of Algorithm 6
// Line 10. Fewer than k when the ordering is shorter. After a Compact the
// frozen prefix supplies the leading values and pivot is the live segment
// (what GhostPivot/LongestPivot return), so decisions are unchanged by
// retirement.
func (d *Dag) OrderedValues(pivot []appendmem.MsgID, k int) []int64 {
	if k <= len(d.frozenVals) {
		return append([]int64(nil), d.frozenVals[:k]...)
	}
	order := d.Linearize(pivot)
	if rest := k - len(d.frozenVals); len(order) > rest {
		order = order[:rest]
	}
	vals := make([]int64, 0, len(d.frozenVals)+len(order))
	vals = append(vals, d.frozenVals...)
	for _, id := range order {
		vals = append(vals, d.valueOf(id))
	}
	return vals
}

// Watermark returns the compaction watermark: the first id still held
// live. Queries below it panic. 0 before any successful Compact.
func (d *Dag) Watermark() int { return d.off }

// TipFloor returns the smallest id in the childless set, or -1 for an
// empty DAG — the reachability floor windowed retirement takes the
// minimum over, since every future block's parents draw from the current
// tips or newer.
func (d *Dag) TipFloor() appendmem.MsgID {
	if len(d.tips) == 0 {
		return -1
	}
	return d.tips[0]
}

// Compact retires the index prefix below a safe anchor: the deepest
// ghost-pivot block, strictly below both reqW and every current tip, that
// (a) every live block descends from in the selected-parent tree and (b)
// whose past cone contains every live block at or below it. Under (a) both
// pivot rules pass through the anchor forever (its subtree alone keeps
// growing, frozen siblings never catch up), and under (b) the prefix of
// the linearization up to the anchor is fixed, so its values are frozen
// into frozenVals and the dense slices are rebased in place — dropping the
// retired ids' slots and handing the anchor the virtual-genesis slot 0.
//
// Compact is conservative: when no anchor at or below reqW qualifies
// (e.g. a fork off the deep past is still live), it declines and returns
// the current watermark. The watermark is monotone; ids below it panic.
// Decisions are unaffected: heights, sizes, tips, weights of live blocks,
// fork counts and OrderedValues all answer exactly as the uncompacted
// index would.
func (d *Dag) Compact(reqW int) int {
	d.track()
	if reqW > d.built {
		reqW = d.built
	}
	if reqW <= d.off || d.bestTreeTip == appendmem.None {
		return d.off
	}
	limit := reqW
	if len(d.tips) > 0 && int(d.tips[0]) < limit {
		limit = int(d.tips[0])
	}
	if int(d.bestTreeTip) < limit {
		limit = int(d.bestTreeTip)
	}
	if limit <= d.off {
		return d.off
	}
	// Candidate: deepest ghost-pivot block with id < limit. The pivot path
	// from the old anchor to the candidate is recorded for the freeze step
	// (a fresh slice: Linearize reuses the shared scratch buffers).
	var seg []appendmem.MsgID
	cand := appendmem.None
	slot := 0
	for {
		best := d.ghostBest[slot]
		if best == appendmem.None || int(best) >= limit {
			break
		}
		cand = best
		seg = append(seg, best)
		slot = int(best) + 1 - d.off
	}
	if cand == appendmem.None {
		return d.off
	}
	// (a) Every live block above the candidate must descend from it in the
	// selected-parent tree. Parents precede children, so one ascending
	// marking pass suffices.
	d.visitEpoch++
	e := d.visitEpoch
	d.visited[int(cand)-d.off] = e
	for i := int(cand) + 1 - d.off; i < len(d.inDag); i++ {
		if !d.inDag[i] {
			continue
		}
		sp := d.parent[i]
		if int(sp) < d.off || d.visited[int(sp)-d.off] != e {
			return d.off
		}
		d.visited[i] = e
	}
	// (b) Every live block at or below the candidate must be in its past
	// cone — otherwise the cone walk skipping frozen parents would miss
	// blocks the full linearization orders. Blocks below the old watermark
	// satisfied (b) at their own retirement, so the walk prunes there.
	d.orderedEpoch++
	oe := d.orderedEpoch
	d.ordered[int(cand)-d.off] = oe
	stack := append(d.dfsStack[:0], cand)
	covered := 1
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range d.parents[int(cur)-d.off] {
			if p == appendmem.None || int(p) < d.off {
				continue
			}
			if d.ordered[int(p)-d.off] != oe {
				d.ordered[int(p)-d.off] = oe
				covered++
				stack = append(stack, p)
			}
		}
	}
	d.dfsStack = stack[:0]
	live := 0
	for i := 0; i <= int(cand)-d.off; i++ {
		if d.inDag[i] {
			live++
		}
	}
	if covered != live {
		return d.off
	}
	// Freeze: linearize the pivot segment ending at the candidate. By (b)
	// this orders exactly the live blocks at or below it, extending
	// frozenVals by the same values the full index's linearization holds
	// at those positions.
	order := d.Linearize(seg)
	if len(order) != live {
		panic(fmt.Sprintf("dag: Compact froze %d blocks, expected %d", len(order), live))
	}
	for _, id := range order {
		d.frozenVals = append(d.frozenVals, d.value[int(id)-d.off])
	}
	d.anchorTreeDepth = d.treeDepth[int(cand)-d.off]

	// Rebase all dense slices in place: live data shifts down by
	// newOff-off; the anchor's parent-keyed slots land on slot 0.
	newOff := int(cand) + 1
	shift := newOff - d.off
	d.inDag = d.inDag[:copy(d.inDag, d.inDag[shift:])]
	d.depth = d.depth[:copy(d.depth, d.depth[shift:])]
	d.treeDepth = d.treeDepth[:copy(d.treeDepth, d.treeDepth[shift:])]
	d.weight = d.weight[:copy(d.weight, d.weight[shift:])]
	d.parent = d.parent[:copy(d.parent, d.parent[shift:])]
	d.parents = d.parents[:copy(d.parents, d.parents[shift:])]
	d.value = d.value[:copy(d.value, d.value[shift:])]
	d.authorSeq = d.authorSeq[:copy(d.authorSeq, d.authorSeq[shift:])]
	d.visited = d.visited[:copy(d.visited, d.visited[shift:])]
	d.ordered = d.ordered[:copy(d.ordered, d.ordered[shift:])]
	d.children = d.children[:copy(d.children, d.children[shift:])]
	d.treeKids = d.treeKids[:copy(d.treeKids, d.treeKids[shift:])]
	d.ghostBest = d.ghostBest[:copy(d.ghostBest, d.ghostBest[shift:])]
	d.off = newOff
	return d.off
}

// Cached is a reusable index handle for one consumer whose reads of a
// single memory grow monotonically (every View is a prefix of the next —
// the append-memory invariant every protocol loop and analyzer obeys). At
// extends the held index by the view's new suffix instead of rebuilding;
// when handed a view of a different memory or an older prefix (e.g. an
// asynchronous node's stale append view) it falls back to a from-scratch
// Build, so it is always correct and only *fast* in the monotone case.
//
// The zero value is not ready; use NewCached. A Cached must not be shared
// across goroutines.
type Cached struct {
	d *Dag
}

// NewCached returns an empty handle; the first At builds the index.
func NewCached() *Cached { return &Cached{} }

// At returns the index of view, extending the previously returned index
// when view is a forward read of the same memory. The returned Dag is
// owned by the handle and is invalidated (re-pointed at a larger view) by
// the next At call.
func (c *Cached) At(view appendmem.View) *Dag {
	if c.d != nil && c.d.view.SubsetOf(view) {
		c.d.Extend(view)
		return c.d
	}
	c.d = Build(view)
	return c.d
}

// Floor returns the smallest id the handle's future extensions or appends
// can reach: the minimum of the built prefix (extensions read from there)
// and the tip floor (parents draw from the tips). 0 before the first At.
func (c *Cached) Floor() int {
	if c.d == nil {
		return 0
	}
	f := c.d.built
	if tf := c.d.TipFloor(); tf >= 0 && int(tf) < f {
		f = int(tf)
	}
	return f
}

// CompactTo forwards Compact(reqW) to the held index and returns the
// watermark achieved; 0 when no index exists yet.
func (c *Cached) CompactTo(reqW int) int {
	if c.d == nil {
		return 0
	}
	return c.d.Compact(reqW)
}

// Package dag implements the BlockDAG structure of Section 5.3: appended
// messages reference *all* latest seen appends ("childless states"), forming
// a directed acyclic graph rooted at a virtual genesis.
//
// Ordering a DAG requires a pivot rule; the paper names two (Algorithm 6's
// correctness "is based on one of the tie-breaking rules"):
//
//   - GHOST (Sompolinsky & Zohar [22]): descend the selected-parent tree
//     into the child with the heaviest subtree.
//   - Longest chain (Conflux pivot [14]): follow the longest selected-parent
//     chain.
//
// Each block's first parent is its *selected parent*; the selected-parent
// edges form a tree embedded in the DAG over which both pivot rules walk.
// Given a pivot chain, Linearize produces the total order of Algorithm 6
// Line 9: pivot blocks in order, each preceded by the not-yet-ordered
// blocks of its past cone ("epoch"), topologically sorted with a
// deterministic tie-break. The linearization is a linear extension of the
// DAG's ancestry partial order and identical for identical views — the two
// properties Byzantine agreement on the DAG rests on.
package dag

import (
	"sort"

	"repro/internal/appendmem"
)

// Dag indexes the multi-parent structure of a view. Blocks with any parent
// reference outside the view are dangling and excluded (with the append
// memory this needs a malformed reference, since parents precede children).
type Dag struct {
	view     appendmem.View
	inDag    map[appendmem.MsgID]bool
	children map[appendmem.MsgID][]appendmem.MsgID // over all parent edges
	treeKids map[appendmem.MsgID][]appendmem.MsgID // selected-parent tree
	depth    map[appendmem.MsgID]int               // longest all-parent path; genesis children = 1
	weight   map[appendmem.MsgID]int               // selected-parent subtree size
	height   int
}

// SelectedParent returns the block's selected parent: Parents[0], or None
// for genesis children.
func SelectedParent(msg *appendmem.Message) appendmem.MsgID {
	if len(msg.Parents) == 0 {
		return appendmem.None
	}
	return msg.Parents[0]
}

// Build indexes the DAG of view.
func Build(view appendmem.View) *Dag {
	d := &Dag{
		view:     view,
		inDag:    make(map[appendmem.MsgID]bool, view.Size()),
		children: make(map[appendmem.MsgID][]appendmem.MsgID),
		treeKids: make(map[appendmem.MsgID][]appendmem.MsgID),
		depth:    make(map[appendmem.MsgID]int, view.Size()),
		weight:   make(map[appendmem.MsgID]int, view.Size()),
	}
	// IDs arrive in causal order (parents have smaller ids), so one pass
	// computes membership and depth.
	for id := appendmem.MsgID(0); int(id) < view.Size(); id++ {
		msg := view.Message(id)
		ok := true
		maxDepth := 0
		for _, p := range msg.Parents {
			if p == appendmem.None {
				continue
			}
			if !d.inDag[p] {
				ok = false
				break
			}
			if d.depth[p] > maxDepth {
				maxDepth = d.depth[p]
			}
		}
		if !ok {
			continue
		}
		d.inDag[id] = true
		d.depth[id] = maxDepth + 1
		if d.depth[id] > d.height {
			d.height = d.depth[id]
		}
		if len(msg.Parents) == 0 {
			d.children[appendmem.None] = append(d.children[appendmem.None], id)
		} else {
			seen := make(map[appendmem.MsgID]bool, len(msg.Parents))
			for _, p := range msg.Parents {
				if seen[p] {
					continue
				}
				seen[p] = true
				d.children[p] = append(d.children[p], id)
			}
		}
		d.treeKids[SelectedParent(msg)] = append(d.treeKids[SelectedParent(msg)], id)
	}
	// Selected-parent subtree weights, by decreasing id (children first).
	for id := appendmem.MsgID(view.Size()) - 1; id >= 0; id-- {
		if !d.inDag[id] {
			continue
		}
		d.weight[id]++ // itself
		if p := SelectedParent(view.Message(id)); p != appendmem.None {
			d.weight[p] += d.weight[id]
		}
	}
	return d
}

// View returns the view the DAG was built from.
func (d *Dag) View() appendmem.View { return d.view }

// Size returns the number of non-dangling blocks.
func (d *Dag) Size() int { return len(d.inDag) }

// Height returns the longest all-parent path length from genesis.
func (d *Dag) Height() int { return d.height }

// Contains reports whether the block is in the DAG (visible, well-formed).
func (d *Dag) Contains(id appendmem.MsgID) bool { return d.inDag[id] }

// Depth returns the block's depth (genesis children have depth 1) and
// whether it is in the DAG.
func (d *Dag) Depth(id appendmem.MsgID) (int, bool) {
	dep, ok := d.depth[id]
	return dep, ok
}

// Weight returns the selected-parent subtree size of the block (the GHOST
// weight), or 0 when absent.
func (d *Dag) Weight(id appendmem.MsgID) int { return d.weight[id] }

// Tips returns the blocks with no children over any parent edge — the set
// C of "last states which do not have child nodes" that Algorithm 6 Line 5
// references — in arrival order.
func (d *Dag) Tips() []appendmem.MsgID {
	var tips []appendmem.MsgID
	for id := appendmem.MsgID(0); int(id) < d.view.Size(); id++ {
		if d.inDag[id] && len(d.children[id]) == 0 {
			tips = append(tips, id)
		}
	}
	return tips
}

// Children returns the blocks that list id among their parents (None for
// genesis children), in arrival order.
func (d *Dag) Children(id appendmem.MsgID) []appendmem.MsgID {
	return append([]appendmem.MsgID(nil), d.children[id]...)
}

// GhostPivot returns the pivot chain chosen by the GHOST rule: from the
// genesis, repeatedly descend into the selected-parent child with the
// largest subtree weight, breaking ties by arrival order. Oldest first;
// empty for an empty DAG.
func (d *Dag) GhostPivot() []appendmem.MsgID {
	var pivot []appendmem.MsgID
	cur := appendmem.None
	for {
		kids := d.treeKids[cur]
		if len(kids) == 0 {
			return pivot
		}
		best := kids[0]
		for _, k := range kids[1:] {
			if d.weight[k] > d.weight[best] {
				best = k
			}
		}
		pivot = append(pivot, best)
		cur = best
	}
}

// LongestPivot returns the pivot chain chosen by the longest-chain rule
// over the selected-parent tree, ties by arrival order. Oldest first.
func (d *Dag) LongestPivot() []appendmem.MsgID {
	// Longest selected-parent chain: compute tree depth per block.
	treeDepth := make(map[appendmem.MsgID]int, len(d.inDag))
	var best appendmem.MsgID = appendmem.None
	bestDepth := 0
	for id := appendmem.MsgID(0); int(id) < d.view.Size(); id++ {
		if !d.inDag[id] {
			continue
		}
		p := SelectedParent(d.view.Message(id))
		td := 1
		if p != appendmem.None {
			td = treeDepth[p] + 1
		}
		treeDepth[id] = td
		if td > bestDepth {
			bestDepth, best = td, id
		}
	}
	if best == appendmem.None {
		return nil
	}
	pivot := make([]appendmem.MsgID, bestDepth)
	cur := best
	for i := bestDepth - 1; i >= 0; i-- {
		pivot[i] = cur
		cur = SelectedParent(d.view.Message(cur))
	}
	return pivot
}

// PastCone returns the set of all ancestors of id over all parent edges,
// including id itself. Empty when id is not in the DAG.
func (d *Dag) PastCone(id appendmem.MsgID) map[appendmem.MsgID]bool {
	cone := make(map[appendmem.MsgID]bool)
	if !d.inDag[id] {
		return cone
	}
	stack := []appendmem.MsgID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cone[cur] {
			continue
		}
		cone[cur] = true
		for _, p := range d.view.Message(cur).Parents {
			if p != appendmem.None && !cone[p] {
				stack = append(stack, p)
			}
		}
	}
	return cone
}

// IsAncestor reports whether a is an ancestor of b (or equal) over all
// parent edges.
func (d *Dag) IsAncestor(a, b appendmem.MsgID) bool {
	if !d.inDag[a] || !d.inDag[b] {
		return false
	}
	return d.PastCone(b)[a]
}

// Linearize returns the total order over the past cone of the pivot tip:
// for each pivot block in order, the blocks of its past cone not ordered by
// earlier pivot blocks ("its epoch"), sorted by (depth, author, seq), with
// the pivot block last in its epoch. Since every ancestor has strictly
// smaller depth, the result is a linear extension of the DAG's ancestry
// order. Blocks outside the pivot tip's past cone are not ordered (they
// will be, once a later pivot block references them).
func (d *Dag) Linearize(pivot []appendmem.MsgID) []appendmem.MsgID {
	var order []appendmem.MsgID
	ordered := make(map[appendmem.MsgID]bool)
	for _, pb := range pivot {
		// Epoch members: ancestors of pb not ordered by earlier pivot
		// blocks. The DFS stops at already-ordered blocks, so each block
		// is visited once across the whole linearization (amortized
		// O(V+E) instead of one full past-cone walk per pivot block).
		var epoch []appendmem.MsgID
		visited := map[appendmem.MsgID]bool{pb: true}
		stack := make([]appendmem.MsgID, 0, len(d.view.Message(pb).Parents))
		for _, p := range d.view.Message(pb).Parents {
			if p != appendmem.None && !ordered[p] && !visited[p] {
				visited[p] = true
				stack = append(stack, p)
			}
		}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			epoch = append(epoch, cur)
			for _, p := range d.view.Message(cur).Parents {
				if p != appendmem.None && !ordered[p] && !visited[p] {
					visited[p] = true
					stack = append(stack, p)
				}
			}
		}
		sort.Slice(epoch, func(i, j int) bool {
			a, b := d.view.Message(epoch[i]), d.view.Message(epoch[j])
			if d.depth[epoch[i]] != d.depth[epoch[j]] {
				return d.depth[epoch[i]] < d.depth[epoch[j]]
			}
			if a.Author != b.Author {
				return a.Author < b.Author
			}
			return a.Seq < b.Seq
		})
		for _, id := range epoch {
			ordered[id] = true
			order = append(order, id)
		}
		ordered[pb] = true
		order = append(order, pb)
	}
	return order
}

// OrderedValues returns the values of the first k blocks in the
// linearization of the given pivot — the decision input of Algorithm 6
// Line 10. Fewer than k when the ordering is shorter.
func (d *Dag) OrderedValues(pivot []appendmem.MsgID, k int) []int64 {
	order := d.Linearize(pivot)
	if len(order) > k {
		order = order[:k]
	}
	vals := make([]int64, len(order))
	for i, id := range order {
		vals[i] = d.view.Message(id).Value
	}
	return vals
}

package dag

import (
	"testing"

	"repro/internal/appendmem"
	"repro/internal/xrand"
)

// safeWatermarks returns, for every prefix size s, the largest watermark
// no block with id >= s reaches below: the minimum parent referenced by
// the suffix, over all parent edges. Compacting to this bound is exactly
// the guarantee the agreement harness provides via per-node tip floors.
func safeWatermarks(m *appendmem.Memory) []int {
	n := m.Len()
	suffMin := make([]int, n+1)
	suffMin[n] = n
	for i := n - 1; i >= 0; i-- {
		lo := suffMin[i+1]
		if i < lo {
			lo = i
		}
		for _, p := range m.Message(appendmem.MsgID(i)).Parents {
			if p != appendmem.None && int(p) < lo {
				lo = int(p)
			}
		}
		suffMin[i] = lo
	}
	return suffMin
}

// assertSameDagDecisions compares every decision-relevant observable of a
// compacted index against the full one: sizes, heights, tip sets, the live
// pivot segments under both rules, the ordered value prefixes that feed
// Decide, and per-block depth/weight/ancestry over the live window.
func assertSameDagDecisions(t *testing.T, step int, pruned, full *Dag) {
	t.Helper()
	if pruned.Size() != full.Size() {
		t.Fatalf("prefix %d: size %d vs %d", step, pruned.Size(), full.Size())
	}
	if pruned.Height() != full.Height() {
		t.Fatalf("prefix %d: height %d vs %d", step, pruned.Height(), full.Height())
	}
	if !equalIDs(pruned.Tips(), full.Tips()) {
		t.Fatalf("prefix %d: tips %v vs %v", step, pruned.Tips(), full.Tips())
	}
	pg, fg := pruned.GhostPivot(), full.GhostPivot()
	pl, fl := pruned.LongestPivot(), full.LongestPivot()
	if len(pg) > len(fg) || !equalIDs(pg, fg[len(fg)-len(pg):]) {
		t.Fatalf("prefix %d: ghost pivot %v is not a suffix of %v", step, pg, fg)
	}
	if len(pl) > len(fl) || !equalIDs(pl, fl[len(fl)-len(pl):]) {
		t.Fatalf("prefix %d: longest pivot %v is not a suffix of %v", step, pl, fl)
	}
	for _, k := range []int{1, 3, 8, full.Size()} {
		pv, fv := pruned.OrderedValues(pg, k), full.OrderedValues(fg, k)
		if len(pv) != len(fv) {
			t.Fatalf("prefix %d: ghost OrderedValues(%d) length %d vs %d", step, k, len(pv), len(fv))
		}
		for i := range pv {
			if pv[i] != fv[i] {
				t.Fatalf("prefix %d: ghost OrderedValues(%d)[%d] = %d vs %d", step, k, i, pv[i], fv[i])
			}
		}
		pv, fv = pruned.OrderedValues(pl, k), full.OrderedValues(fl, k)
		for i := range pv {
			if pv[i] != fv[i] {
				t.Fatalf("prefix %d: longest OrderedValues(%d)[%d] = %d vs %d", step, k, i, pv[i], fv[i])
			}
		}
	}
	for id := pruned.off; id < step; id++ {
		mid := appendmem.MsgID(id)
		if pruned.Contains(mid) != full.Contains(mid) {
			t.Fatalf("prefix %d: Contains(%d) differs", step, id)
		}
		dp, okp := pruned.Depth(mid)
		df, okf := full.Depth(mid)
		if dp != df || okp != okf {
			t.Fatalf("prefix %d: depth(%d) %d,%v vs %d,%v", step, id, dp, okp, df, okf)
		}
		if pruned.Weight(mid) != full.Weight(mid) {
			t.Fatalf("prefix %d: weight(%d) %d vs %d", step, id, pruned.Weight(mid), full.Weight(mid))
		}
		if !equalIDs(pruned.Children(mid), full.Children(mid)) {
			t.Fatalf("prefix %d: children(%d) differ", step, id)
		}
		// The pruned cone is the full cone truncated at the watermark.
		fc := full.PastCone(mid)
		var lc []appendmem.MsgID
		for _, c := range fc {
			if int(c) >= pruned.off {
				lc = append(lc, c)
			}
		}
		if !equalIDs(pruned.PastCone(mid), lc) {
			t.Fatalf("prefix %d: past cone(%d) differs above the watermark", step, id)
		}
	}
	// Ancestry queries over live pairs must agree (tips against pivot blocks
	// exercises both found and pruned-search paths).
	for _, a := range pg {
		for _, b := range pruned.Tips() {
			if pruned.IsAncestor(a, b) != full.IsAncestor(a, b) {
				t.Fatalf("prefix %d: IsAncestor(%d,%d) differs", step, a, b)
			}
		}
	}
}

// recentDagHistory mixes honest inclusive appends with forks and private
// extensions that only reach a few blocks back (like nodes bounded by Δ
// staleness), so reachability floors — and with them the compaction
// watermark — advance steadily. adversarialHistory pins correctness when
// compaction must decline; this one pins it when compaction actually runs.
func recentDagHistory(rng *xrand.PCG, steps int) *appendmem.Memory {
	n := 4
	m := appendmem.New(n)
	for s := 0; s < steps; s++ {
		w := m.Writer(appendmem.NodeID(rng.Intn(n)))
		if m.Len() > 0 && rng.Intn(3) == 0 {
			// Fork: one or two parents among the last few blocks.
			var parents []appendmem.MsgID
			for j := 0; j < 1+rng.Intn(2); j++ {
				back := rng.Intn(6) + 1
				if back > m.Len() {
					back = m.Len()
				}
				parents = append(parents, appendmem.MsgID(m.Len()-back))
			}
			w.MustAppend(-1, 0, parents)
			continue
		}
		d := Build(m.Read())
		tips := d.Tips()
		if len(tips) == 0 {
			w.MustAppend(int64(s), 0, nil)
			continue
		}
		pivot := d.GhostPivot()
		parents := []appendmem.MsgID{pivot[len(pivot)-1]}
		for _, tip := range tips {
			if tip != parents[0] {
				parents = append(parents, tip)
			}
		}
		w.MustAppend(int64(s), 0, parents)
	}
	return m
}

// TestDifferentialCompactVsFull: on every prefix of randomized histories,
// an index compacted as aggressively as the reachability bound allows must
// agree with the full index on every decision observable — the pruned ==
// unpruned pin of the bounded-memory mode.
func TestDifferentialCompactVsFull(t *testing.T) {
	histories := []func(*xrand.PCG, int) *appendmem.Memory{adversarialHistory, recentDagHistory}
	compacted := 0
	for _, history := range histories {
		for seed := uint64(1); seed <= 8; seed++ {
			rng := xrand.New(seed, 99)
			m := history(rng, 80)
			safe := safeWatermarks(m)
			pruned := Build(m.ViewAt(0))
			full := Build(m.ViewAt(0))
			for s := 1; s <= m.Len(); s++ {
				view := m.ViewAt(s)
				pruned.Extend(view)
				full.Extend(view)
				w := pruned.Compact(safe[s])
				if w != pruned.off {
					t.Fatalf("prefix %d: Compact returned %d, watermark %d", s, w, pruned.off)
				}
				if w > 0 {
					compacted++
				}
				assertSameDagDecisions(t, s, pruned, full)
			}
		}
	}
	if compacted == 0 {
		t.Fatal("no history ever allowed retirement; the differential is vacuous")
	}
}

// TestCompactMonotoneAndBounded: the watermark never regresses, never
// exceeds the request, and queries below it panic.
func TestCompactMonotoneAndBounded(t *testing.T) {
	rng := xrand.New(3, 99)
	m := recentDagHistory(rng, 60)
	safe := safeWatermarks(m)
	d := Build(m.Read())
	w := d.Compact(safe[m.Len()])
	if w > safe[m.Len()] {
		t.Fatalf("Compact overshot: %d > %d", w, safe[m.Len()])
	}
	if again := d.Compact(w); again != w {
		t.Fatalf("re-Compact moved the watermark: %d -> %d", w, again)
	}
	if down := d.Compact(w - 5); down != w {
		t.Fatalf("Compact regressed the watermark: %d -> %d", w, down)
	}
	if w == 0 {
		t.Skip("history never allowed retirement; nothing to panic on")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Depth below the watermark did not panic")
		}
	}()
	d.Depth(appendmem.MsgID(w - 1))
}

// TestCompactDeclinesUnsafeWatermark: when a live fork still reaches below
// the requested watermark, Compact must refuse rather than freeze an
// anchor a later traversal would walk past.
func TestCompactDeclinesUnsafeWatermark(t *testing.T) {
	m := appendmem.New(2)
	w0, w1 := m.Writer(0), m.Writer(1)
	// A linear chain by node 0, plus a node-1 fork hanging off the genesis
	// child: no anchor above id 0 can tree-cover it.
	root := w0.MustAppend(1, 0, []appendmem.MsgID{appendmem.None})
	prev := root.ID
	for i := 0; i < 10; i++ {
		prev = w0.MustAppend(1, 0, []appendmem.MsgID{prev}).ID
	}
	w1.MustAppend(-1, 0, []appendmem.MsgID{root.ID})
	d := Build(m.Read())
	if w := d.Compact(8); w > int(root.ID)+1 {
		t.Fatalf("Compact froze past a live fork: watermark %d", w)
	}
}

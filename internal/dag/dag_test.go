package dag

import (
	"testing"
	"testing/quick"

	"repro/internal/appendmem"
	"repro/internal/xrand"
)

func TestEmpty(t *testing.T) {
	m := appendmem.New(2)
	d := Build(m.Read())
	if d.Size() != 0 || d.Height() != 0 {
		t.Fatal("empty DAG not empty")
	}
	if d.GhostPivot() != nil || d.LongestPivot() != nil {
		t.Fatal("pivot of empty DAG not nil")
	}
	if d.Tips() != nil {
		t.Fatal("tips of empty DAG not nil")
	}
}

func TestSingle(t *testing.T) {
	m := appendmem.New(1)
	msg := m.Writer(0).MustAppend(5, 0, nil)
	d := Build(m.Read())
	if d.Size() != 1 || d.Height() != 1 {
		t.Fatalf("size=%d height=%d", d.Size(), d.Height())
	}
	tips := d.Tips()
	if len(tips) != 1 || tips[0] != msg.ID {
		t.Fatalf("tips = %v", tips)
	}
	if got := d.GhostPivot(); len(got) != 1 || got[0] != msg.ID {
		t.Fatalf("ghost pivot = %v", got)
	}
	if got := d.LongestPivot(); len(got) != 1 || got[0] != msg.ID {
		t.Fatalf("longest pivot = %v", got)
	}
}

// diamond builds:  g -> a, g -> b, (a,b) -> c   with c's selected parent a.
func diamond(t *testing.T) (*appendmem.Memory, [4]appendmem.MsgID) {
	t.Helper()
	m := appendmem.New(3)
	g := m.Writer(0).MustAppend(0, 0, nil)
	a := m.Writer(1).MustAppend(1, 0, []appendmem.MsgID{g.ID})
	b := m.Writer(2).MustAppend(2, 0, []appendmem.MsgID{g.ID})
	c := m.Writer(0).MustAppend(3, 0, []appendmem.MsgID{a.ID, b.ID})
	return m, [4]appendmem.MsgID{g.ID, a.ID, b.ID, c.ID}
}

func TestDiamondStructure(t *testing.T) {
	m, ids := diamond(t)
	d := Build(m.Read())
	g, a, b, c := ids[0], ids[1], ids[2], ids[3]
	if d.Height() != 3 {
		t.Fatalf("height = %d", d.Height())
	}
	if dep, _ := d.Depth(c); dep != 3 {
		t.Fatalf("depth(c) = %d", dep)
	}
	tips := d.Tips()
	if len(tips) != 1 || tips[0] != c {
		t.Fatalf("tips = %v", tips)
	}
	if !d.IsAncestor(g, c) || !d.IsAncestor(b, c) || d.IsAncestor(c, a) {
		t.Fatal("ancestry wrong")
	}
	// Selected-parent tree: g->a, g->b, a->c, so subtree(g) = 4.
	if w := d.Weight(g); w != 4 {
		t.Fatalf("weight(g) = %d, want 4", w)
	}
	if w := d.Weight(a); w != 2 {
		t.Fatalf("weight(a) = %d, want 2", w)
	}
	if w := d.Weight(b); w != 1 {
		t.Fatalf("weight(b) = %d, want 1", w)
	}
}

func TestDiamondPivotAndLinearize(t *testing.T) {
	m, ids := diamond(t)
	d := Build(m.Read())
	g, a, b, c := ids[0], ids[1], ids[2], ids[3]
	pivot := d.GhostPivot()
	want := []appendmem.MsgID{g, a, c}
	if len(pivot) != 3 {
		t.Fatalf("pivot = %v", pivot)
	}
	for i := range want {
		if pivot[i] != want[i] {
			t.Fatalf("pivot = %v, want %v", pivot, want)
		}
	}
	order := d.Linearize(pivot)
	// b is in c's epoch: order must be g, a, b, c.
	wantOrder := []appendmem.MsgID{g, a, b, c}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("order = %v, want %v", order, wantOrder)
		}
	}
	vals := d.OrderedValues(pivot, 3)
	if len(vals) != 3 || vals[0] != 0 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("values = %v", vals)
	}
}

func TestGhostPrefersHeavier(t *testing.T) {
	// g has two selected-parent children a (subtree 1) and b (subtree 2).
	m := appendmem.New(4)
	g := m.Writer(0).MustAppend(0, 0, nil)
	m.Writer(1).MustAppend(1, 0, []appendmem.MsgID{g.ID}) // a, arrives first
	b := m.Writer(2).MustAppend(2, 0, []appendmem.MsgID{g.ID})
	m.Writer(3).MustAppend(3, 0, []appendmem.MsgID{b.ID})
	d := Build(m.Read())
	pivot := d.GhostPivot()
	if pivot[1] != b.ID {
		t.Fatalf("GHOST chose %d at level 2, want %d (heavier)", pivot[1], b.ID)
	}
}

func TestGhostTieBreaksByArrival(t *testing.T) {
	m := appendmem.New(3)
	g := m.Writer(0).MustAppend(0, 0, nil)
	a := m.Writer(1).MustAppend(1, 0, []appendmem.MsgID{g.ID})
	m.Writer(2).MustAppend(2, 0, []appendmem.MsgID{g.ID})
	d := Build(m.Read())
	if pivot := d.GhostPivot(); pivot[1] != a.ID {
		t.Fatalf("tie broken to %d, want first-arrived %d", pivot[1], a.ID)
	}
}

func TestLongestPivotDiffersFromGhost(t *testing.T) {
	// Selected-parent tree: g -> a -> x (long, light) vs g -> b with two
	// sibling leaves under b (short, heavy).
	m := appendmem.New(2)
	g := m.Writer(0).MustAppend(0, 0, nil)
	a := m.Writer(0).MustAppend(1, 0, []appendmem.MsgID{g.ID})
	x := m.Writer(0).MustAppend(2, 0, []appendmem.MsgID{a.ID})
	b := m.Writer(1).MustAppend(3, 0, []appendmem.MsgID{g.ID})
	m.Writer(1).MustAppend(4, 0, []appendmem.MsgID{b.ID})
	m.Writer(1).MustAppend(5, 0, []appendmem.MsgID{b.ID})
	d := Build(m.Read())
	// weights: subtree(a)=2 < subtree(b)=3, so GHOST goes g,b,...
	ghost := d.GhostPivot()
	if ghost[1] != b.ID {
		t.Fatalf("ghost pivot = %v", ghost)
	}
	// longest selected-parent chain is g,a,x (length 3).
	longest := d.LongestPivot()
	if len(longest) != 3 || longest[2] != x.ID {
		t.Fatalf("longest pivot = %v", longest)
	}
}

func TestDanglingExcluded(t *testing.T) {
	m := appendmem.New(2)
	g := m.Writer(0).MustAppend(0, 0, nil)
	a := m.Writer(1).MustAppend(1, 0, []appendmem.MsgID{g.ID})
	m.Writer(0).MustAppend(2, 0, []appendmem.MsgID{a.ID})
	partial := m.ViewAt(1)
	d := Build(partial)
	if d.Size() != 1 {
		t.Fatalf("size = %d, want 1", d.Size())
	}
}

func TestDuplicateParentEdges(t *testing.T) {
	m := appendmem.New(2)
	g := m.Writer(0).MustAppend(0, 0, nil)
	c := m.Writer(1).MustAppend(1, 0, []appendmem.MsgID{g.ID, g.ID})
	d := Build(m.Read())
	kids := d.Children(g.ID)
	if len(kids) != 1 || kids[0] != c.ID {
		t.Fatalf("duplicate parent created duplicate child edges: %v", kids)
	}
}

// randomDag builds a random DAG where each block picks 1-3 random parents
// among existing blocks (plus possibly being a root).
func randomDag(rng *xrand.PCG, steps int) *appendmem.Memory {
	n := 4
	m := appendmem.New(n)
	var ids []appendmem.MsgID
	for s := 0; s < steps; s++ {
		var parents []appendmem.MsgID
		if len(ids) > 0 {
			for j := 0; j < 1+rng.Intn(3); j++ {
				parents = append(parents, ids[rng.Intn(len(ids))])
			}
		}
		msg := m.Writer(appendmem.NodeID(rng.Intn(n))).MustAppend(int64(s), 0, parents)
		ids = append(ids, msg.ID)
	}
	return m
}

func TestPropertyLinearizeIsLinearExtension(t *testing.T) {
	rng := xrand.New(11, 11)
	if err := quick.Check(func(steps uint8) bool {
		m := randomDag(rng, int(steps%40)+1)
		d := Build(m.Read())
		pivot := d.GhostPivot()
		order := d.Linearize(pivot)
		pos := make(map[appendmem.MsgID]int, len(order))
		for i, id := range order {
			if _, dup := pos[id]; dup {
				return false // no duplicates
			}
			pos[id] = i
		}
		// Every ordered block's parents in the cone precede it.
		for _, id := range order {
			for _, p := range m.Message(id).Parents {
				if p == appendmem.None {
					continue
				}
				pp, ok := pos[p]
				if !ok || pp >= pos[id] {
					return false
				}
			}
		}
		// The ordering covers exactly the past cone of the pivot tip.
		if len(pivot) > 0 {
			cone := d.PastCone(pivot[len(pivot)-1])
			if len(cone) != len(order) {
				return false
			}
			for _, id := range cone {
				if _, ok := pos[id]; !ok {
					return false
				}
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyIdenticalViewsIdenticalOrder(t *testing.T) {
	rng := xrand.New(12, 12)
	m := randomDag(rng, 60)
	v := m.Read()
	a := Build(v).Linearize(Build(v).GhostPivot())
	b := Build(v).Linearize(Build(v).GhostPivot())
	if len(a) != len(b) {
		t.Fatal("orders differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("identical views produced different orders")
		}
	}
}

func TestPropertyGhostWeightEqualsSubtreeSize(t *testing.T) {
	rng := xrand.New(13, 13)
	if err := quick.Check(func(steps uint8) bool {
		m := randomDag(rng, int(steps%40)+1)
		d := Build(m.Read())
		// Sum of root weights equals DAG size (selected-parent tree
		// partitions the DAG).
		total := 0
		for id := appendmem.MsgID(0); int(id) < m.Len(); id++ {
			if !d.Contains(id) {
				continue
			}
			if SelectedParent(m.Message(id)) == appendmem.None {
				total += d.Weight(id)
			}
		}
		return total == d.Size()
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyPivotIsChain(t *testing.T) {
	rng := xrand.New(14, 14)
	if err := quick.Check(func(steps uint8) bool {
		m := randomDag(rng, int(steps%40)+1)
		d := Build(m.Read())
		for _, pivot := range [][]appendmem.MsgID{d.GhostPivot(), d.LongestPivot()} {
			for i := 1; i < len(pivot); i++ {
				if SelectedParent(m.Message(pivot[i])) != pivot[i-1] {
					return false
				}
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPastConeClosed(t *testing.T) {
	rng := xrand.New(15, 15)
	m := randomDag(rng, 50)
	d := Build(m.Read())
	for id := appendmem.MsgID(0); int(id) < m.Len(); id++ {
		if !d.Contains(id) {
			continue
		}
		cone := d.PastCone(id)
		inCone := make(map[appendmem.MsgID]bool, len(cone))
		for _, member := range cone {
			inCone[member] = true
		}
		for _, member := range cone {
			for _, p := range m.Message(member).Parents {
				if p != appendmem.None && !inCone[p] {
					t.Fatalf("past cone of %d not ancestor-closed at %d", id, member)
				}
			}
		}
	}
}

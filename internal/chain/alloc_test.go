package chain

import (
	"testing"

	"repro/internal/appendmem"
	"repro/internal/xrand"
)

// chainStepBudget bounds the allocations of one incremental Cached.At
// step (view grows by one message) plus a LongestTips query. The cost is
// per-suffix work — appending the new message to the index and refreshing
// the tip set — and must stay O(1)-ish, not O(history).
const chainStepBudget = 24

func TestCachedExtendStepAllocBudget(t *testing.T) {
	m := appendmem.New(8)
	rng := xrand.New(9, 9)
	var ids []appendmem.MsgID
	for i := 0; i < 1200; i++ {
		var parents []appendmem.MsgID
		if len(ids) > 0 {
			parents = append(parents, ids[rng.Intn(len(ids))])
		}
		msg := m.Writer(appendmem.NodeID(rng.Intn(8))).MustAppend(1, 0, parents)
		ids = append(ids, msg.ID)
	}

	c := NewCached()
	size := 1000
	c.At(m.ViewAt(size))

	allocs := testing.AllocsPerRun(100, func() {
		size++
		tree := c.At(m.ViewAt(size))
		_ = tree.LongestTips()
	})
	if allocs > chainStepBudget {
		t.Fatalf("one cached extend step allocated %.1f times, budget %d", allocs, chainStepBudget)
	}
}

package chain

import (
	"testing"
	"testing/quick"

	"repro/internal/appendmem"
	"repro/internal/xrand"
)

// buildLinear appends a chain of length k by node 0 and returns the memory.
func buildLinear(k int) *appendmem.Memory {
	m := appendmem.New(2)
	parent := appendmem.None
	for i := 0; i < k; i++ {
		msg := m.Writer(0).MustAppend(int64(i), 0, []appendmem.MsgID{parent})
		parent = msg.ID
	}
	return m
}

func TestEmptyView(t *testing.T) {
	m := appendmem.New(2)
	tr := Build(m.Read())
	if tr.Height() != 0 {
		t.Fatalf("height = %d", tr.Height())
	}
	if tips := tr.LongestTips(); tips != nil {
		t.Fatalf("tips = %v", tips)
	}
	if _, ok := SelectTip(m.Read(), FirstTieBreaker{}, nil); ok {
		t.Fatal("SelectTip succeeded on empty view")
	}
}

func TestLinearChain(t *testing.T) {
	m := buildLinear(5)
	tr := Build(m.Read())
	if tr.Height() != 5 {
		t.Fatalf("height = %d, want 5", tr.Height())
	}
	tips := tr.LongestTips()
	if len(tips) != 1 || tips[0] != 4 {
		t.Fatalf("tips = %v", tips)
	}
	chain := tr.ChainTo(tips[0])
	if len(chain) != 5 {
		t.Fatalf("chain length = %d", len(chain))
	}
	for i, id := range chain {
		if int(id) != i {
			t.Fatalf("chain[%d] = %d", i, id)
		}
	}
}

func TestFork(t *testing.T) {
	m := appendmem.New(3)
	root := m.Writer(0).MustAppend(0, 0, nil)
	a := m.Writer(1).MustAppend(1, 0, []appendmem.MsgID{root.ID})
	b := m.Writer(2).MustAppend(2, 0, []appendmem.MsgID{root.ID})
	tr := Build(m.Read())
	if tr.Height() != 2 {
		t.Fatalf("height = %d", tr.Height())
	}
	tips := tr.LongestTips()
	if len(tips) != 2 || tips[0] != a.ID || tips[1] != b.ID {
		t.Fatalf("tips = %v", tips)
	}
	// Both tips lie on some longest chain, so no block is wasted yet.
	if got := tr.Forks(); got != 0 {
		t.Fatalf("forks = %d, want 0", got)
	}
}

func TestForksCountsOrphans(t *testing.T) {
	m := appendmem.New(3)
	root := m.Writer(0).MustAppend(0, 0, nil)
	a := m.Writer(1).MustAppend(1, 0, []appendmem.MsgID{root.ID})
	m.Writer(2).MustAppend(2, 0, []appendmem.MsgID{root.ID}) // sibling, orphaned below
	m.Writer(1).MustAppend(3, 0, []appendmem.MsgID{a.ID})    // extends a: unique longest
	tr := Build(m.Read())
	if tr.Height() != 3 {
		t.Fatalf("height = %d", tr.Height())
	}
	if got := tr.Forks(); got != 1 {
		t.Fatalf("forks = %d, want 1", got)
	}
}

func TestDanglingParentExcluded(t *testing.T) {
	// A block referencing a parent outside the view must not count.
	m := appendmem.New(2)
	root := m.Writer(0).MustAppend(0, 0, nil)
	m.Writer(1).MustAppend(1, 0, []appendmem.MsgID{root.ID})
	partial := m.ViewAt(1) // only root visible
	tr := Build(partial)
	if tr.Height() != 1 {
		t.Fatalf("height = %d, want 1", tr.Height())
	}
	full := Build(m.Read())
	if full.Height() != 2 {
		t.Fatalf("full height = %d, want 2", full.Height())
	}
}

func TestSubtree(t *testing.T) {
	m := appendmem.New(2)
	root := m.Writer(0).MustAppend(0, 0, nil)
	a := m.Writer(0).MustAppend(1, 0, []appendmem.MsgID{root.ID})
	m.Writer(1).MustAppend(2, 0, []appendmem.MsgID{root.ID})
	m.Writer(1).MustAppend(3, 0, []appendmem.MsgID{a.ID})
	tr := Build(m.Read())
	if got := tr.Subtree(root.ID); got != 4 {
		t.Fatalf("subtree(root) = %d, want 4", got)
	}
	if got := tr.Subtree(a.ID); got != 2 {
		t.Fatalf("subtree(a) = %d, want 2", got)
	}
	if got := tr.Subtree(99); got != 0 {
		t.Fatalf("subtree(unknown) = %d, want 0", got)
	}
}

func TestTieBreakers(t *testing.T) {
	m := appendmem.New(3)
	root := m.Writer(0).MustAppend(0, 0, nil)
	correctTip := m.Writer(0).MustAppend(1, 0, []appendmem.MsgID{root.ID})
	byzTip := m.Writer(2).MustAppend(2, 0, []appendmem.MsgID{root.ID})
	view := m.Read()
	tips := Build(view).LongestTips()
	if len(tips) != 2 {
		t.Fatalf("tips = %v", tips)
	}

	if got := (FirstTieBreaker{}).Pick(tips, view, nil); got != correctTip.ID {
		t.Errorf("FirstTieBreaker picked %d, want %d", got, correctTip.ID)
	}

	adv := AdversarialTieBreaker{IsByzantine: func(id appendmem.NodeID) bool { return id == 2 }}
	if got := adv.Pick(tips, view, nil); got != byzTip.ID {
		t.Errorf("AdversarialTieBreaker picked %d, want %d", got, byzTip.ID)
	}

	advNone := AdversarialTieBreaker{IsByzantine: func(appendmem.NodeID) bool { return false }}
	if got := advNone.Pick(tips, view, nil); got != correctTip.ID {
		t.Errorf("AdversarialTieBreaker without byz tips picked %d", got)
	}

	rng := xrand.New(1, 1)
	counts := map[appendmem.MsgID]int{}
	for i := 0; i < 1000; i++ {
		counts[(RandomTieBreaker{}).Pick(tips, view, rng)]++
	}
	if counts[correctTip.ID] < 400 || counts[byzTip.ID] < 400 {
		t.Errorf("RandomTieBreaker not uniform: %v", counts)
	}
}

func TestPrefixValues(t *testing.T) {
	m := buildLinear(6)
	tr := Build(m.Read())
	tip := tr.LongestTips()[0]
	vals := tr.PrefixValues(tip, 4)
	if len(vals) != 4 {
		t.Fatalf("len = %d", len(vals))
	}
	for i, v := range vals {
		if v != int64(i) {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
	all := tr.PrefixValues(tip, 100)
	if len(all) != 6 {
		t.Fatalf("over-long prefix = %d values", len(all))
	}
}

func TestCommonPrefix(t *testing.T) {
	m := appendmem.New(2)
	root := m.Writer(0).MustAppend(0, 0, nil)
	mid := m.Writer(0).MustAppend(1, 0, []appendmem.MsgID{root.ID})
	a := m.Writer(0).MustAppend(2, 0, []appendmem.MsgID{mid.ID})
	b := m.Writer(1).MustAppend(3, 0, []appendmem.MsgID{mid.ID})
	tr := Build(m.Read())
	prefix := tr.CommonPrefix(a.ID, b.ID)
	if len(prefix) != 2 || prefix[0] != root.ID || prefix[1] != mid.ID {
		t.Fatalf("common prefix = %v", prefix)
	}
}

func TestChainToUnknown(t *testing.T) {
	m := buildLinear(2)
	tr := Build(m.Read())
	if got := tr.ChainTo(55); got != nil {
		t.Fatalf("ChainTo(unknown) = %v", got)
	}
}

func TestPropertyLongestTipsMaximal(t *testing.T) {
	// Property: for random trees, every longest tip has depth == Height,
	// ChainTo(tip) has exactly Height blocks, and consecutive chain blocks
	// are parent-linked.
	rng := xrand.New(9, 9)
	if err := quick.Check(func(steps uint8) bool {
		n := 4
		m := appendmem.New(n)
		var ids []appendmem.MsgID
		for s := 0; s < int(steps%50)+1; s++ {
			parent := appendmem.None
			if len(ids) > 0 {
				parent = ids[rng.Intn(len(ids))]
			}
			msg := m.Writer(appendmem.NodeID(rng.Intn(n))).MustAppend(1, 0, []appendmem.MsgID{parent})
			ids = append(ids, msg.ID)
		}
		tr := Build(m.Read())
		tips := tr.LongestTips()
		if len(tips) == 0 {
			return tr.Height() == 0
		}
		for _, tip := range tips {
			d, ok := tr.Depth(tip)
			if !ok || d != tr.Height() {
				return false
			}
			chain := tr.ChainTo(tip)
			if len(chain) != tr.Height() {
				return false
			}
			for i := 1; i < len(chain); i++ {
				if Parent(m.Message(chain[i])) != chain[i-1] {
					return false
				}
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySubtreeSum(t *testing.T) {
	// Property: sum of subtree sizes over genesis children equals total
	// number of non-dangling blocks.
	rng := xrand.New(10, 10)
	if err := quick.Check(func(steps uint8) bool {
		m := appendmem.New(3)
		var ids []appendmem.MsgID
		for s := 0; s < int(steps%40)+1; s++ {
			parent := appendmem.None
			if len(ids) > 0 && rng.Bool() {
				parent = ids[rng.Intn(len(ids))]
			}
			msg := m.Writer(appendmem.NodeID(rng.Intn(3))).MustAppend(1, 0, []appendmem.MsgID{parent})
			ids = append(ids, msg.ID)
		}
		tr := Build(m.Read())
		total := 0
		for _, r := range tr.Children(appendmem.None) {
			total += tr.Subtree(r)
		}
		return total == m.Len()
	}, nil); err != nil {
		t.Error(err)
	}
}

// Package chain implements the blockchain structure of Section 5.2 on top
// of the append memory: every appended message designates exactly one
// parent (Parents[0], or appendmem.None for blocks attached to the virtual
// genesis), forming a tree; protocols follow a longest chain and break ties
// between equally long chains by a pluggable rule.
//
// The three tie-breaking rules mirror the paper's discussion:
//
//   - Deterministic "first" (Garay et al. [9]): the first of the longest
//     tips in memory-arrival order. In the append memory arrival order is
//     not observable by nodes, but since appends are instantly visible,
//     "first seen" coincides with arrival order for every node, so this is
//     the faithful simulation of the first-seen rule.
//   - Adversarial: the worst case over all deterministic rules, used by
//     Theorem 5.3 ("one can assume that all ties will be broken in favor of
//     the adversary"): whenever a Byzantine tip ties, it wins.
//   - Randomized (Ren [21]): a uniformly random longest tip.
//
// A Tree is a dense-slice index over a View's MsgID space (IDs are the
// contiguous 0..Size-1 arrival prefix of one append-only Memory, parents
// always precede children). Build constructs it from scratch in O(view);
// Extend ingests only the suffix appended since the previous view, keeping
// depth, height and the longest-tip set incrementally correct in O(1) per
// block — a consumer that re-reads a growing memory every step (see
// Cached) pays amortized O(1) per block instead of O(view) per step.
package chain

import (
	"sort"

	"repro/internal/appendmem"
	"repro/internal/xrand"
)

// Tree indexes the parent structure of a view. Blocks whose parent is not
// visible in the view are "dangling" and excluded from depth computations;
// with the append memory this only happens for malformed (Byzantine)
// references, since parents must be appended before children. The
// parent-keyed children slices use index int(id)+1 so the virtual genesis
// (appendmem.None) occupies slot 0.
type Tree struct {
	view  appendmem.View
	built int // number of view-prefix blocks ingested
	size  int // non-dangling blocks

	depth    []int32             // by id; genesis-adjacent = 1; 0 = dangling
	children [][]appendmem.MsgID // by parent id+1
	roots    []appendmem.MsgID   // blocks with parent None
	height   int
	// levelTips is the arrival-ordered set of blocks at depth == height,
	// maintained on Extend so LongestTips is O(tips) instead of O(view).
	levelTips []appendmem.MsgID

	// Epoch-stamped scratch for Forks: a slot is marked in the current pass
	// iff its stamp equals the current epoch.
	mark      []uint64
	markEpoch uint64
}

// Parent returns the chain parent of msg: Parents[0], or None when the
// block hangs off the genesis.
func Parent(msg *appendmem.Message) appendmem.MsgID {
	if len(msg.Parents) == 0 {
		return appendmem.None
	}
	return msg.Parents[0]
}

// Build indexes the chain structure of view from scratch.
func Build(view appendmem.View) *Tree {
	t := &Tree{
		view:     view,
		depth:    make([]int32, 0, view.Size()),
		children: make([][]appendmem.MsgID, 1, view.Size()+1),
	}
	t.extend(view.Size())
	return t
}

// Extend ingests the blocks appended between the Tree's current view and
// view, which must be a later read of the same memory (the Tree's view is
// a prefix of it). All queries afterwards answer for the extended view. It
// panics when view is not an extension.
func (t *Tree) Extend(view appendmem.View) {
	if !t.view.SubsetOf(view) {
		panic("chain: Extend with a view that does not extend the indexed one")
	}
	t.view = view
	t.extend(view.Size())
}

// extend ingests ids [t.built, size). MsgIDs are assigned in arrival order
// and parents always precede children, so one increasing-ID pass computes
// all depths.
func (t *Tree) extend(size int) {
	for id := appendmem.MsgID(t.built); int(id) < size; id++ {
		msg := t.view.Message(id)
		p := Parent(msg)
		t.depth = append(t.depth, 0)
		t.children = append(t.children, nil)
		t.mark = append(t.mark, 0)
		switch {
		case p == appendmem.None:
			t.depth[id] = 1
			t.roots = append(t.roots, id)
		default:
			pd := t.depth[p]
			if pd == 0 {
				continue // dangling: parent invisible or itself dangling
			}
			t.depth[id] = pd + 1
		}
		t.size++
		t.children[p+1] = append(t.children[p+1], id)
		if int(t.depth[id]) > t.height {
			t.height = int(t.depth[id])
			t.levelTips = t.levelTips[:0]
		}
		if int(t.depth[id]) == t.height {
			t.levelTips = append(t.levelTips, id)
		}
	}
	t.built = size
}

// View returns the view the tree was built from (the latest extension).
func (t *Tree) View() appendmem.View { return t.view }

// Height returns the length of the longest chain (0 for an empty view).
func (t *Tree) Height() int { return t.height }

// Depth returns the depth of a block (1 for genesis children) and whether
// the block is in the tree (visible and not dangling).
func (t *Tree) Depth(id appendmem.MsgID) (int, bool) {
	if id < 0 || int(id) >= t.built || t.depth[id] == 0 {
		return 0, false
	}
	return int(t.depth[id]), true
}

// depthOf returns the block's depth, 0 when absent or dangling.
func (t *Tree) depthOf(id appendmem.MsgID) int32 {
	if id < 0 || int(id) >= t.built {
		return 0
	}
	return t.depth[id]
}

// Children returns the blocks whose parent is id (use None for the genesis
// level), in arrival order.
func (t *Tree) Children(id appendmem.MsgID) []appendmem.MsgID {
	if id < appendmem.None || int(id)+1 >= len(t.children) {
		return nil
	}
	return append([]appendmem.MsgID(nil), t.children[id+1]...)
}

// LongestTips returns the tips of all longest chains — every block at
// maximal depth — in arrival order. Empty when the view is empty. The set
// is maintained incrementally, so the call costs O(tips).
func (t *Tree) LongestTips() []appendmem.MsgID {
	if t.height == 0 {
		return nil
	}
	return append([]appendmem.MsgID(nil), t.levelTips...)
}

// ChainTo returns the chain from the genesis child down to tip, inclusive,
// oldest first. It returns nil when tip is not in the tree.
func (t *Tree) ChainTo(tip appendmem.MsgID) []appendmem.MsgID {
	d := t.depthOf(tip)
	if d == 0 {
		return nil
	}
	chain := make([]appendmem.MsgID, d)
	cur := tip
	for i := int(d) - 1; i >= 0; i-- {
		chain[i] = cur
		cur = Parent(t.view.Message(cur))
	}
	return chain
}

// Subtree returns the number of blocks in the subtree rooted at id,
// including id itself. Returns 0 when id is not in the tree.
func (t *Tree) Subtree(id appendmem.MsgID) int {
	if t.depthOf(id) == 0 {
		return 0
	}
	count := 0
	stack := []appendmem.MsgID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		stack = append(stack, t.children[cur+1]...)
	}
	return count
}

// Forks returns the number of blocks that are not on any longest chain —
// the "wasted" appends of Theorem 5.4's analysis.
func (t *Tree) Forks() int {
	t.markEpoch++
	e := t.markEpoch
	for _, tip := range t.LongestTips() {
		cur := tip
		for cur != appendmem.None && t.mark[cur] != e {
			t.mark[cur] = e
			cur = Parent(t.view.Message(cur))
		}
	}
	wasted := 0
	for id := 0; id < t.built; id++ {
		if t.depth[id] != 0 && t.mark[id] != e {
			wasted++
		}
	}
	return wasted
}

// TieBreaker selects one tip among the longest tips. Implementations must
// handle a non-empty tips slice (in arrival order) and return an element
// of it.
type TieBreaker interface {
	// Pick chooses among tips; view gives access to the blocks' contents
	// and rng supplies the calling node's private randomness (ignored by
	// deterministic rules).
	Pick(tips []appendmem.MsgID, view appendmem.View, rng *xrand.PCG) appendmem.MsgID
}

// FirstTieBreaker implements the deterministic first-seen rule of Garay et
// al.: the earliest-arrived longest tip wins.
type FirstTieBreaker struct{}

// Pick returns the first tip.
func (FirstTieBreaker) Pick(tips []appendmem.MsgID, _ appendmem.View, _ *xrand.PCG) appendmem.MsgID {
	return tips[0]
}

// RandomTieBreaker implements Ren's randomized rule: a uniformly random
// longest tip, drawn from the calling node's randomness.
type RandomTieBreaker struct{}

// Pick returns a uniformly random tip.
func (RandomTieBreaker) Pick(tips []appendmem.MsgID, _ appendmem.View, rng *xrand.PCG) appendmem.MsgID {
	return tips[rng.Intn(len(tips))]
}

// AdversarialTieBreaker is the worst case over all deterministic rules used
// in Theorem 5.3's analysis: if any tip was authored by a Byzantine node,
// the earliest such tip wins; otherwise the first tip.
type AdversarialTieBreaker struct {
	// IsByzantine reports whether the author is Byzantine.
	IsByzantine func(appendmem.NodeID) bool
}

// Pick prefers Byzantine-authored tips.
func (a AdversarialTieBreaker) Pick(tips []appendmem.MsgID, view appendmem.View, _ *xrand.PCG) appendmem.MsgID {
	for _, tip := range tips {
		if a.IsByzantine(view.Message(tip).Author) {
			return tip
		}
	}
	return tips[0]
}

// SelectTip builds the tree of view and returns the tip chosen by tb among
// the longest chains, or (None, false) for an empty/all-dangling view.
func SelectTip(view appendmem.View, tb TieBreaker, rng *xrand.PCG) (appendmem.MsgID, bool) {
	tips := Build(view).LongestTips()
	if len(tips) == 0 {
		return appendmem.None, false
	}
	return tb.Pick(tips, view, rng), true
}

// PrefixValues returns the values of the first k blocks of the chain ending
// at tip (oldest first); fewer when the chain is shorter. This is the
// decision input of Algorithm 5 Line 10.
func (t *Tree) PrefixValues(tip appendmem.MsgID, k int) []int64 {
	chain := t.ChainTo(tip)
	if len(chain) > k {
		chain = chain[:k]
	}
	vals := make([]int64, len(chain))
	for i, id := range chain {
		vals[i] = t.view.Message(id).Value
	}
	return vals
}

// CommonPrefix returns the longest common prefix of the chains ending at
// the two tips (oldest first). Used to check consistency-style properties.
func (t *Tree) CommonPrefix(a, b appendmem.MsgID) []appendmem.MsgID {
	ca, cb := t.ChainTo(a), t.ChainTo(b)
	n := len(ca)
	if len(cb) < n {
		n = len(cb)
	}
	var prefix []appendmem.MsgID
	for i := 0; i < n; i++ {
		if ca[i] != cb[i] {
			break
		}
		prefix = append(prefix, ca[i])
	}
	return prefix
}

// SortByDepth orders ids by (depth, arrival) ascending; a deterministic
// helper for rendering and tests.
func (t *Tree) SortByDepth(ids []appendmem.MsgID) {
	sort.Slice(ids, func(i, j int) bool {
		di, dj := t.depthOf(ids[i]), t.depthOf(ids[j])
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
}

// Cached is a reusable index handle for one consumer whose reads of a
// single memory grow monotonically (every View is a prefix of the next —
// the append-memory invariant every protocol loop and analyzer obeys). At
// extends the held index by the view's new suffix instead of rebuilding;
// when handed a view of a different memory or an older prefix (e.g. an
// asynchronous node's stale append view) it falls back to a from-scratch
// Build, so it is always correct and only *fast* in the monotone case.
//
// The zero value is not ready; use NewCached. A Cached must not be shared
// across goroutines.
type Cached struct {
	t *Tree
}

// NewCached returns an empty handle; the first At builds the index.
func NewCached() *Cached { return &Cached{} }

// At returns the index of view, extending the previously returned index
// when view is a forward read of the same memory. The returned Tree is
// owned by the handle and is invalidated (re-pointed at a larger view) by
// the next At call.
func (c *Cached) At(view appendmem.View) *Tree {
	if c.t != nil && c.t.view.SubsetOf(view) {
		c.t.Extend(view)
		return c.t
	}
	c.t = Build(view)
	return c.t
}

// Package chain implements the blockchain structure of Section 5.2 on top
// of the append memory: every appended message designates exactly one
// parent (Parents[0], or appendmem.None for blocks attached to the virtual
// genesis), forming a tree; protocols follow a longest chain and break ties
// between equally long chains by a pluggable rule.
//
// The three tie-breaking rules mirror the paper's discussion:
//
//   - Deterministic "first" (Garay et al. [9]): the first of the longest
//     tips in memory-arrival order. In the append memory arrival order is
//     not observable by nodes, but since appends are instantly visible,
//     "first seen" coincides with arrival order for every node, so this is
//     the faithful simulation of the first-seen rule.
//   - Adversarial: the worst case over all deterministic rules, used by
//     Theorem 5.3 ("one can assume that all ties will be broken in favor of
//     the adversary"): whenever a Byzantine tip ties, it wins.
//   - Randomized (Ren [21]): a uniformly random longest tip.
//
// A Tree is a dense-slice index over a View's MsgID space (IDs are the
// contiguous 0..Size-1 arrival prefix of one append-only Memory, parents
// always precede children). Build constructs it from scratch in O(view);
// Extend ingests only the suffix appended since the previous view, keeping
// depth, height and the longest-tip set incrementally correct in O(1) per
// block — a consumer that re-reads a growing memory every step (see
// Cached) pays amortized O(1) per block instead of O(view) per step.
package chain

import (
	"fmt"
	"sort"

	"repro/internal/appendmem"
	"repro/internal/xrand"
)

// Tree indexes the parent structure of a view. Blocks whose parent is not
// visible in the view are "dangling" and excluded from depth computations;
// with the append memory this only happens for malformed (Byzantine)
// references, since parents must be appended before children. The
// parent-keyed children slices use index int(id)+1 so the virtual genesis
// (appendmem.None) occupies slot 0.
// Compact (the retirement companion of Extend) rebases every per-id slice
// on an origin `off`: ids below off are frozen — their chain values are
// retained in frozenVals but their structure is dropped, and any query
// for them panics, mirroring the append memory's watermark contract. The
// anchor block off-1 takes over the virtual-genesis slot 0 of the
// parent-keyed children slices.
type Tree struct {
	view  appendmem.View
	built int // number of view-prefix blocks ingested
	size  int // non-dangling blocks, including frozen ones

	off      int                 // first live id; per-id slices index id-off
	depth    []int32             // by id-off; genesis-adjacent = 1; 0 = dangling
	children [][]appendmem.MsgID // by parent id+1-off; slot 0 = genesis or anchor
	roots    []appendmem.MsgID   // live blocks with parent None

	// Structure caches, materialized by the first Compact and maintained
	// by extend from then on: a windowed memory may retire messages the
	// index still answers for, so a compacting tree must never re-read the
	// view. Until then the tree reads the view directly and the caches
	// cost nothing — the unbounded path carries no windowed overhead.
	tracking bool
	parent   []appendmem.MsgID // by id-off; chain parent
	value    []int64           // by id-off; block value
	height   int
	// levelTips is the arrival-ordered set of blocks at depth == height,
	// maintained on Extend so LongestTips is O(tips) instead of O(view).
	levelTips []appendmem.MsgID

	// Frozen-prefix state: the values of the chain genesis..anchor (oldest
	// first; the anchor's depth equals len(frozenVals)) and the count of
	// frozen non-dangling blocks that were not on that chain.
	frozenVals   []int64
	frozenWasted int

	// Epoch-stamped scratch for Forks and Compact: a slot is marked in the
	// current pass iff its stamp equals the current epoch.
	mark      []uint64
	markEpoch uint64
}

// Parent returns the chain parent of msg: Parents[0], or None when the
// block hangs off the genesis.
func Parent(msg *appendmem.Message) appendmem.MsgID {
	if len(msg.Parents) == 0 {
		return appendmem.None
	}
	return msg.Parents[0]
}

// Build indexes the chain structure of view from scratch.
func Build(view appendmem.View) *Tree {
	t := &Tree{
		view:     view,
		depth:    make([]int32, 0, view.Size()),
		children: make([][]appendmem.MsgID, 1, view.Size()+1),
	}
	t.extend(view.Size())
	return t
}

// Extend ingests the blocks appended between the Tree's current view and
// view, which must be a later read of the same memory (the Tree's view is
// a prefix of it). All queries afterwards answer for the extended view. It
// panics when view is not an extension.
func (t *Tree) Extend(view appendmem.View) {
	if !t.view.SubsetOf(view) {
		panic("chain: Extend with a view that does not extend the indexed one")
	}
	t.view = view
	t.extend(view.Size())
}

// extend ingests ids [t.built, size). MsgIDs are assigned in arrival order
// and parents always precede children, so one increasing-ID pass computes
// all depths.
func (t *Tree) extend(size int) {
	for id := appendmem.MsgID(t.built); int(id) < size; id++ {
		msg := t.view.Message(id)
		p := Parent(msg)
		idx := int(id) - t.off
		t.depth = append(t.depth, 0)
		if t.tracking {
			t.parent = append(t.parent, p)
			t.value = append(t.value, msg.Value)
		}
		t.children = append(t.children, nil)
		t.mark = append(t.mark, 0)
		switch {
		case p == appendmem.None:
			t.depth[idx] = 1
			t.roots = append(t.roots, id)
		default:
			var pd int32
			switch {
			case int(p) < t.off-1:
				continue // dangling: parent frozen away (malformed reference)
			case t.off > 0 && int(p) == t.off-1:
				pd = int32(len(t.frozenVals)) // extends the anchor directly
			default:
				// Parents precede children, so p is already indexed; read the
				// slice directly (t.built is only advanced after the batch).
				pd = t.depth[int(p)-t.off]
				if pd == 0 {
					continue // dangling: parent invisible or itself dangling
				}
			}
			t.depth[idx] = pd + 1
		}
		t.size++
		if ci := int(p) + 1 - t.off; ci >= 0 {
			t.children[ci] = append(t.children[ci], id)
		} // else: a fresh root after Compact — no genesis slot remains for it
		if int(t.depth[idx]) > t.height {
			t.height = int(t.depth[idx])
			t.levelTips = t.levelTips[:0]
		}
		if int(t.depth[idx]) == t.height {
			t.levelTips = append(t.levelTips, id)
		}
	}
	t.built = size
}

// View returns the view the tree was built from (the latest extension).
func (t *Tree) View() appendmem.View { return t.view }

// track materializes the parent/value caches from the view. Called by the
// first Compact, which always precedes any memory retirement (the harness
// compacts indexes before retiring chunks), so every built id is still
// readable here.
func (t *Tree) track() {
	if t.tracking {
		return
	}
	t.tracking = true
	t.parent = make([]appendmem.MsgID, 0, t.built)
	t.value = make([]int64, 0, t.built)
	for id := appendmem.MsgID(t.off); int(id) < t.built; id++ {
		msg := t.view.Message(id)
		t.parent = append(t.parent, Parent(msg))
		t.value = append(t.value, msg.Value)
	}
}

// parentOf returns the chain parent of a built block, from the cache when
// compaction is engaged and from the view otherwise.
func (t *Tree) parentOf(id appendmem.MsgID) appendmem.MsgID {
	if t.tracking {
		return t.parent[int(id)-t.off]
	}
	return Parent(t.view.Message(id))
}

// valueOf is parentOf's counterpart for the block value.
func (t *Tree) valueOf(id appendmem.MsgID) int64 {
	if t.tracking {
		return t.value[int(id)-t.off]
	}
	return t.view.Message(id).Value
}

// Compact retires the index prefix below reqW that the decision rules can
// no longer reach, and returns the watermark actually achieved (old one
// when nothing could be retired). It freezes an anchor block A — the
// deepest ancestor of the longest chains with id below both reqW and
// every longest tip, such that every live non-dangling block descends
// from A — records the chain values genesis..A in frozenVals (so
// PrefixValues and decisions stay exact), and drops the per-id slices
// below A+1 by shifting them down in place. MsgIDs strictly increase
// along chains, so an id-based cut at a chain anchor is reachability-
// exact: no tip walk, depth lookup or tie-break can reach below it.
//
// Compact is conservative: when no anchor below reqW can be proven
// unreachable it does nothing and returns the current watermark. The
// caller must guarantee that blocks ingested by later Extends reference
// parents at or above the returned watermark (the agreement harness
// enforces this by taking the minimum over all nodes' tip floors before
// retiring the memory).
func (t *Tree) Compact(reqW int) int {
	t.track()
	if reqW > t.built {
		reqW = t.built
	}
	if reqW <= t.off || t.height == 0 || len(t.levelTips) == 0 {
		return t.off
	}
	// The anchor must sit strictly below every longest tip.
	limit := reqW
	if int(t.levelTips[0]) < limit {
		limit = int(t.levelTips[0])
	}
	if limit <= t.off {
		return t.off
	}
	// Candidate: the deepest ancestor of the first longest tip below limit.
	// Any other longest tip's chain meets this chain at or below the
	// candidate (checked by the descendant pass below).
	cand := t.levelTips[0]
	for int(cand) >= limit {
		cand = t.parent[int(cand)-t.off]
		if cand == appendmem.None || int(cand) < t.off {
			return t.off // chain exits the live region before an eligible anchor
		}
	}
	// Every live non-dangling block above the candidate must descend from
	// it; one ascending-id pass inherits the mark from the parent.
	t.markEpoch++
	e := t.markEpoch
	t.mark[int(cand)-t.off] = e
	for id := cand + 1; int(id) < t.built; id++ {
		idx := int(id) - t.off
		if t.depth[idx] == 0 {
			continue // dangling blocks freeze away silently
		}
		p := t.parent[idx]
		if int(p) < int(cand) || t.mark[int(p)-t.off] != e {
			return t.off // a live fork still reaches below the candidate
		}
		t.mark[idx] = e
	}
	// Freeze: append the chain values old-anchor..cand to frozenVals and
	// count the frozen off-chain blocks.
	w := int(cand) + 1
	chainLen := 0
	for cur := cand; int(cur) >= t.off; cur = t.parent[int(cur)-t.off] {
		chainLen++
	}
	at := len(t.frozenVals)
	t.frozenVals = append(t.frozenVals, make([]int64, chainLen)...)
	for cur, i := cand, at+chainLen-1; int(cur) >= t.off; cur, i = t.parent[int(cur)-t.off], i-1 {
		t.frozenVals[i] = t.value[int(cur)-t.off]
	}
	frozen := 0 // non-dangling blocks in [off, cand]
	for idx := 0; idx <= int(cand)-t.off; idx++ {
		if t.depth[idx] != 0 {
			frozen++
		}
	}
	t.frozenWasted += frozen - chainLen
	// Rebase every per-id slice: shift the live region down in place so
	// backing arrays stay bounded by the live window.
	shift := w - t.off
	t.depth = append(t.depth[:0], t.depth[shift:]...)
	t.parent = append(t.parent[:0], t.parent[shift:]...)
	t.value = append(t.value[:0], t.value[shift:]...)
	t.mark = append(t.mark[:0], t.mark[shift:]...)
	// children is keyed by parent id+1-off: the anchor's slot lands on the
	// genesis slot 0 after the shift.
	for i := 0; i < shift; i++ {
		t.children[i] = nil
	}
	t.children = append(t.children[:0], t.children[shift:]...)
	nroots := t.roots[:0]
	for _, r := range t.roots {
		if int(r) >= w {
			nroots = append(nroots, r)
		}
	}
	t.roots = nroots
	t.off = w
	return w
}

// Height returns the length of the longest chain (0 for an empty view).
func (t *Tree) Height() int { return t.height }

// Watermark returns the first live id: queries for blocks below it panic.
// 0 until the first successful Compact.
func (t *Tree) Watermark() int { return t.off }

// TipFloor returns the smallest id among the longest tips, or -1 for an
// empty tree. levelTips is kept in arrival (ascending-id) order, so this
// is O(1) and allocation-free — it is the reachability floor windowed
// retirement takes the minimum over.
func (t *Tree) TipFloor() appendmem.MsgID {
	if len(t.levelTips) == 0 {
		return -1
	}
	return t.levelTips[0]
}

// belowWatermark panics for ids frozen away by Compact.
func (t *Tree) belowWatermark(id appendmem.MsgID) {
	if id >= 0 && int(id) < t.off {
		panic(fmt.Sprintf("chain: query for id %d below watermark %d", id, t.off))
	}
}

// Depth returns the depth of a block (1 for genesis children) and whether
// the block is in the tree (visible and not dangling). It panics for
// blocks frozen below the compaction watermark.
func (t *Tree) Depth(id appendmem.MsgID) (int, bool) {
	t.belowWatermark(id)
	if id < 0 || int(id) >= t.built || t.depth[int(id)-t.off] == 0 {
		return 0, false
	}
	return int(t.depth[int(id)-t.off]), true
}

// depthOf returns the block's depth, 0 when absent or dangling. It panics
// for blocks frozen below the compaction watermark.
func (t *Tree) depthOf(id appendmem.MsgID) int32 {
	t.belowWatermark(id)
	if id < 0 || int(id) >= t.built {
		return 0
	}
	return t.depth[int(id)-t.off]
}

// Children returns the blocks whose parent is id (use None for the genesis
// level, or the anchor block after a Compact), in arrival order.
func (t *Tree) Children(id appendmem.MsgID) []appendmem.MsgID {
	if id < appendmem.None || int(id)+1-t.off >= len(t.children) || int(id)+1-t.off < 0 {
		return nil
	}
	return append([]appendmem.MsgID(nil), t.children[int(id)+1-t.off]...)
}

// LongestTips returns the tips of all longest chains — every block at
// maximal depth — in arrival order. Empty when the view is empty. The set
// is maintained incrementally, so the call costs O(tips).
func (t *Tree) LongestTips() []appendmem.MsgID {
	if t.height == 0 {
		return nil
	}
	return append([]appendmem.MsgID(nil), t.levelTips...)
}

// ChainTo returns the chain down to tip, inclusive, oldest first: from the
// genesis child, or — after a Compact — from the first live block above
// the anchor. It returns nil when tip is not in the tree.
func (t *Tree) ChainTo(tip appendmem.MsgID) []appendmem.MsgID {
	d := t.depthOf(tip)
	if d == 0 {
		return nil
	}
	n := int(d) - len(t.frozenVals) // live chain length
	chain := make([]appendmem.MsgID, n)
	cur := tip
	for i := n - 1; i >= 0; i-- {
		chain[i] = cur
		cur = t.parentOf(cur)
	}
	if t.off > 0 && cur != appendmem.MsgID(t.off-1) {
		panic("chain: compacted chain does not land on the anchor")
	}
	return chain
}

// Subtree returns the number of live blocks in the subtree rooted at id,
// including id itself. Returns 0 when id is not in the tree.
func (t *Tree) Subtree(id appendmem.MsgID) int {
	if t.depthOf(id) == 0 {
		return 0
	}
	count := 0
	stack := []appendmem.MsgID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		stack = append(stack, t.children[int(cur)+1-t.off]...)
	}
	return count
}

// Forks returns the number of blocks that are not on any longest chain —
// the "wasted" appends of Theorem 5.4's analysis. Blocks frozen by Compact
// keep contributing through the frozen-wasted tally: the anchor is on
// every longest chain, so their on/off-chain status is final.
func (t *Tree) Forks() int {
	t.markEpoch++
	e := t.markEpoch
	for _, tip := range t.LongestTips() {
		cur := tip
		for int(cur) >= t.off && cur != appendmem.None && t.mark[int(cur)-t.off] != e {
			t.mark[int(cur)-t.off] = e
			cur = t.parentOf(cur)
		}
	}
	wasted := t.frozenWasted
	for idx := 0; idx < t.built-t.off; idx++ {
		if t.depth[idx] != 0 && t.mark[idx] != e {
			wasted++
		}
	}
	return wasted
}

// TieBreaker selects one tip among the longest tips. Implementations must
// handle a non-empty tips slice (in arrival order) and return an element
// of it.
type TieBreaker interface {
	// Pick chooses among tips; view gives access to the blocks' contents
	// and rng supplies the calling node's private randomness (ignored by
	// deterministic rules).
	Pick(tips []appendmem.MsgID, view appendmem.View, rng *xrand.PCG) appendmem.MsgID
}

// FirstTieBreaker implements the deterministic first-seen rule of Garay et
// al.: the earliest-arrived longest tip wins.
type FirstTieBreaker struct{}

// Pick returns the first tip.
func (FirstTieBreaker) Pick(tips []appendmem.MsgID, _ appendmem.View, _ *xrand.PCG) appendmem.MsgID {
	return tips[0]
}

// RandomTieBreaker implements Ren's randomized rule: a uniformly random
// longest tip, drawn from the calling node's randomness.
type RandomTieBreaker struct{}

// Pick returns a uniformly random tip.
func (RandomTieBreaker) Pick(tips []appendmem.MsgID, _ appendmem.View, rng *xrand.PCG) appendmem.MsgID {
	return tips[rng.Intn(len(tips))]
}

// AdversarialTieBreaker is the worst case over all deterministic rules used
// in Theorem 5.3's analysis: if any tip was authored by a Byzantine node,
// the earliest such tip wins; otherwise the first tip.
type AdversarialTieBreaker struct {
	// IsByzantine reports whether the author is Byzantine.
	IsByzantine func(appendmem.NodeID) bool
}

// Pick prefers Byzantine-authored tips.
func (a AdversarialTieBreaker) Pick(tips []appendmem.MsgID, view appendmem.View, _ *xrand.PCG) appendmem.MsgID {
	for _, tip := range tips {
		if a.IsByzantine(view.Message(tip).Author) {
			return tip
		}
	}
	return tips[0]
}

// SelectTip builds the tree of view and returns the tip chosen by tb among
// the longest chains, or (None, false) for an empty/all-dangling view.
func SelectTip(view appendmem.View, tb TieBreaker, rng *xrand.PCG) (appendmem.MsgID, bool) {
	tips := Build(view).LongestTips()
	if len(tips) == 0 {
		return appendmem.None, false
	}
	return tb.Pick(tips, view, rng), true
}

// PrefixValues returns the values of the first k blocks of the chain ending
// at tip (oldest first); fewer when the chain is shorter. This is the
// decision input of Algorithm 5 Line 10. The prefix spans the full chain
// from genesis even after a Compact: the frozen chain's values are exactly
// what Compact retains, so windowed decisions match unwindowed ones.
func (t *Tree) PrefixValues(tip appendmem.MsgID, k int) []int64 {
	d := t.depthOf(tip)
	if d == 0 {
		return nil
	}
	n := int(d)
	if n > k {
		n = k
	}
	vals := make([]int64, n)
	if n <= len(t.frozenVals) {
		copy(vals, t.frozenVals[:n])
		return vals
	}
	copy(vals, t.frozenVals)
	// Walk the live chain down to the anchor, filling the tail backwards;
	// entries above position n-1 are skipped.
	cur := tip
	for i := int(d) - 1; i >= len(t.frozenVals); i-- {
		if i < n {
			vals[i] = t.valueOf(cur)
		}
		cur = t.parentOf(cur)
	}
	return vals
}

// CommonPrefix returns the longest common prefix of the chains ending at
// the two tips (oldest first). Used to check consistency-style properties.
func (t *Tree) CommonPrefix(a, b appendmem.MsgID) []appendmem.MsgID {
	ca, cb := t.ChainTo(a), t.ChainTo(b)
	n := len(ca)
	if len(cb) < n {
		n = len(cb)
	}
	var prefix []appendmem.MsgID
	for i := 0; i < n; i++ {
		if ca[i] != cb[i] {
			break
		}
		prefix = append(prefix, ca[i])
	}
	return prefix
}

// SortByDepth orders ids by (depth, arrival) ascending; a deterministic
// helper for rendering and tests.
func (t *Tree) SortByDepth(ids []appendmem.MsgID) {
	sort.Slice(ids, func(i, j int) bool {
		di, dj := t.depthOf(ids[i]), t.depthOf(ids[j])
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
}

// Cached is a reusable index handle for one consumer whose reads of a
// single memory grow monotonically (every View is a prefix of the next —
// the append-memory invariant every protocol loop and analyzer obeys). At
// extends the held index by the view's new suffix instead of rebuilding;
// when handed a view of a different memory or an older prefix (e.g. an
// asynchronous node's stale append view) it falls back to a from-scratch
// Build, so it is always correct and only *fast* in the monotone case.
//
// The zero value is not ready; use NewCached. A Cached must not be shared
// across goroutines.
type Cached struct {
	t *Tree
}

// NewCached returns an empty handle; the first At builds the index.
func NewCached() *Cached { return &Cached{} }

// At returns the index of view, extending the previously returned index
// when view is a forward read of the same memory. The returned Tree is
// owned by the handle and is invalidated (re-pointed at a larger view) by
// the next At call.
func (c *Cached) At(view appendmem.View) *Tree {
	if c.t != nil && c.t.view.SubsetOf(view) {
		c.t.Extend(view)
		return c.t
	}
	c.t = Build(view)
	return c.t
}

// Floor returns the smallest id the handle may still touch on its next At
// or append decision: the minimum of the held index's tip floor and its
// built size (an Extend reads the memory from there). 0 when no index has
// been built yet — such a consumer would Build from id 0, so nothing may
// be retired under it.
func (c *Cached) Floor() int {
	if c.t == nil {
		return 0
	}
	f := c.t.built
	if tf := c.t.TipFloor(); tf >= 0 && int(tf) < f {
		f = int(tf)
	}
	return f
}

// CompactTo forwards Compact(reqW) to the held index and returns the
// watermark achieved; 0 when no index exists yet.
func (c *Cached) CompactTo(reqW int) int {
	if c.t == nil {
		return 0
	}
	return c.t.Compact(reqW)
}

// Package chain implements the blockchain structure of Section 5.2 on top
// of the append memory: every appended message designates exactly one
// parent (Parents[0], or appendmem.None for blocks attached to the virtual
// genesis), forming a tree; protocols follow a longest chain and break ties
// between equally long chains by a pluggable rule.
//
// The three tie-breaking rules mirror the paper's discussion:
//
//   - Deterministic "first" (Garay et al. [9]): the first of the longest
//     tips in memory-arrival order. In the append memory arrival order is
//     not observable by nodes, but since appends are instantly visible,
//     "first seen" coincides with arrival order for every node, so this is
//     the faithful simulation of the first-seen rule.
//   - Adversarial: the worst case over all deterministic rules, used by
//     Theorem 5.3 ("one can assume that all ties will be broken in favor of
//     the adversary"): whenever a Byzantine tip ties, it wins.
//   - Randomized (Ren [21]): a uniformly random longest tip.
//
// A Tree is an immutable index built from a View; rebuilding per read is
// O(view size) and keeps protocols stateless between reads, matching the
// model where a read returns the complete memory.
package chain

import (
	"sort"

	"repro/internal/appendmem"
	"repro/internal/xrand"
)

// Tree indexes the parent structure of a view. Blocks whose parent is not
// visible in the view are "dangling" and excluded from depth computations;
// with the append memory this only happens for malformed (Byzantine)
// references, since parents must be appended before children.
type Tree struct {
	view     appendmem.View
	depth    map[appendmem.MsgID]int // genesis-adjacent blocks have depth 1
	children map[appendmem.MsgID][]appendmem.MsgID
	roots    []appendmem.MsgID // blocks with parent None
	height   int
}

// Parent returns the chain parent of msg: Parents[0], or None when the
// block hangs off the genesis.
func Parent(msg *appendmem.Message) appendmem.MsgID {
	if len(msg.Parents) == 0 {
		return appendmem.None
	}
	return msg.Parents[0]
}

// Build indexes the chain structure of view.
func Build(view appendmem.View) *Tree {
	t := &Tree{
		view:     view,
		depth:    make(map[appendmem.MsgID]int, view.Size()),
		children: make(map[appendmem.MsgID][]appendmem.MsgID),
	}
	// MsgIDs are assigned in arrival order and parents always precede
	// children, so one increasing-ID pass computes all depths.
	for id := appendmem.MsgID(0); int(id) < view.Size(); id++ {
		msg := view.Message(id)
		p := Parent(msg)
		switch {
		case p == appendmem.None:
			t.depth[id] = 1
			t.roots = append(t.roots, id)
		default:
			pd, ok := t.depth[p]
			if !ok {
				continue // dangling: parent invisible or itself dangling
			}
			t.depth[id] = pd + 1
		}
		t.children[p] = append(t.children[p], id)
		if t.depth[id] > t.height {
			t.height = t.depth[id]
		}
	}
	return t
}

// View returns the view the tree was built from.
func (t *Tree) View() appendmem.View { return t.view }

// Height returns the length of the longest chain (0 for an empty view).
func (t *Tree) Height() int { return t.height }

// Depth returns the depth of a block (1 for genesis children) and whether
// the block is in the tree (visible and not dangling).
func (t *Tree) Depth(id appendmem.MsgID) (int, bool) {
	d, ok := t.depth[id]
	return d, ok
}

// Children returns the blocks whose parent is id (use None for the genesis
// level), in arrival order.
func (t *Tree) Children(id appendmem.MsgID) []appendmem.MsgID {
	return append([]appendmem.MsgID(nil), t.children[id]...)
}

// LongestTips returns the tips of all longest chains — every block at
// maximal depth — in arrival order. Empty when the view is empty.
func (t *Tree) LongestTips() []appendmem.MsgID {
	if t.height == 0 {
		return nil
	}
	var tips []appendmem.MsgID
	for id := appendmem.MsgID(0); int(id) < t.view.Size(); id++ {
		if t.depth[id] == t.height {
			tips = append(tips, id)
		}
	}
	return tips
}

// ChainTo returns the chain from the genesis child down to tip, inclusive,
// oldest first. It returns nil when tip is not in the tree.
func (t *Tree) ChainTo(tip appendmem.MsgID) []appendmem.MsgID {
	d, ok := t.depth[tip]
	if !ok {
		return nil
	}
	chain := make([]appendmem.MsgID, d)
	cur := tip
	for i := d - 1; i >= 0; i-- {
		chain[i] = cur
		cur = Parent(t.view.Message(cur))
	}
	return chain
}

// Subtree returns the number of blocks in the subtree rooted at id,
// including id itself. Returns 0 when id is not in the tree.
func (t *Tree) Subtree(id appendmem.MsgID) int {
	if _, ok := t.depth[id]; !ok {
		return 0
	}
	count := 0
	stack := []appendmem.MsgID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		stack = append(stack, t.children[cur]...)
	}
	return count
}

// Forks returns the number of blocks that are not on any longest chain —
// the "wasted" appends of Theorem 5.4's analysis.
func (t *Tree) Forks() int {
	onLongest := make(map[appendmem.MsgID]bool)
	for _, tip := range t.LongestTips() {
		for _, id := range t.ChainTo(tip) {
			onLongest[id] = true
		}
	}
	wasted := 0
	for id := range t.depth {
		if !onLongest[id] {
			wasted++
		}
	}
	return wasted
}

// TieBreaker selects one tip among the longest tips. Implementations must
// handle a non-empty tips slice (in arrival order) and return an element
// of it.
type TieBreaker interface {
	// Pick chooses among tips; view gives access to the blocks' contents
	// and rng supplies the calling node's private randomness (ignored by
	// deterministic rules).
	Pick(tips []appendmem.MsgID, view appendmem.View, rng *xrand.PCG) appendmem.MsgID
}

// FirstTieBreaker implements the deterministic first-seen rule of Garay et
// al.: the earliest-arrived longest tip wins.
type FirstTieBreaker struct{}

// Pick returns the first tip.
func (FirstTieBreaker) Pick(tips []appendmem.MsgID, _ appendmem.View, _ *xrand.PCG) appendmem.MsgID {
	return tips[0]
}

// RandomTieBreaker implements Ren's randomized rule: a uniformly random
// longest tip, drawn from the calling node's randomness.
type RandomTieBreaker struct{}

// Pick returns a uniformly random tip.
func (RandomTieBreaker) Pick(tips []appendmem.MsgID, _ appendmem.View, rng *xrand.PCG) appendmem.MsgID {
	return tips[rng.Intn(len(tips))]
}

// AdversarialTieBreaker is the worst case over all deterministic rules used
// in Theorem 5.3's analysis: if any tip was authored by a Byzantine node,
// the earliest such tip wins; otherwise the first tip.
type AdversarialTieBreaker struct {
	// IsByzantine reports whether the author is Byzantine.
	IsByzantine func(appendmem.NodeID) bool
}

// Pick prefers Byzantine-authored tips.
func (a AdversarialTieBreaker) Pick(tips []appendmem.MsgID, view appendmem.View, _ *xrand.PCG) appendmem.MsgID {
	for _, tip := range tips {
		if a.IsByzantine(view.Message(tip).Author) {
			return tip
		}
	}
	return tips[0]
}

// SelectTip builds the tree of view and returns the tip chosen by tb among
// the longest chains, or (None, false) for an empty/all-dangling view.
func SelectTip(view appendmem.View, tb TieBreaker, rng *xrand.PCG) (appendmem.MsgID, bool) {
	tips := Build(view).LongestTips()
	if len(tips) == 0 {
		return appendmem.None, false
	}
	return tb.Pick(tips, view, rng), true
}

// PrefixValues returns the values of the first k blocks of the chain ending
// at tip (oldest first); fewer when the chain is shorter. This is the
// decision input of Algorithm 5 Line 10.
func (t *Tree) PrefixValues(tip appendmem.MsgID, k int) []int64 {
	chain := t.ChainTo(tip)
	if len(chain) > k {
		chain = chain[:k]
	}
	vals := make([]int64, len(chain))
	for i, id := range chain {
		vals[i] = t.view.Message(id).Value
	}
	return vals
}

// CommonPrefix returns the longest common prefix of the chains ending at
// the two tips (oldest first). Used to check consistency-style properties.
func (t *Tree) CommonPrefix(a, b appendmem.MsgID) []appendmem.MsgID {
	ca, cb := t.ChainTo(a), t.ChainTo(b)
	n := len(ca)
	if len(cb) < n {
		n = len(cb)
	}
	var prefix []appendmem.MsgID
	for i := 0; i < n; i++ {
		if ca[i] != cb[i] {
			break
		}
		prefix = append(prefix, ca[i])
	}
	return prefix
}

// SortByDepth orders ids by (depth, arrival) ascending; a deterministic
// helper for rendering and tests.
func (t *Tree) SortByDepth(ids []appendmem.MsgID) {
	sort.Slice(ids, func(i, j int) bool {
		di, dj := t.depth[ids[i]], t.depth[ids[j]]
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
}

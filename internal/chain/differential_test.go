package chain

import (
	"testing"

	"repro/internal/appendmem"
	"repro/internal/xrand"
)

func equalIDs(a, b []appendmem.MsgID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertSameTree compares every observable of an incrementally extended
// index against a from-scratch one.
func assertSameTree(t *testing.T, step int, inc, ref *Tree) {
	t.Helper()
	if inc.Height() != ref.Height() {
		t.Fatalf("prefix %d: height %d vs %d", step, inc.Height(), ref.Height())
	}
	if inc.size != ref.size {
		t.Fatalf("prefix %d: size %d vs %d", step, inc.size, ref.size)
	}
	if !equalIDs(inc.LongestTips(), ref.LongestTips()) {
		t.Fatalf("prefix %d: longest tips %v vs %v", step, inc.LongestTips(), ref.LongestTips())
	}
	if !equalIDs(inc.roots, ref.roots) {
		t.Fatalf("prefix %d: roots %v vs %v", step, inc.roots, ref.roots)
	}
	for id := appendmem.MsgID(-1); int(id) < step; id++ {
		if !equalIDs(inc.Children(id), ref.Children(id)) {
			t.Fatalf("prefix %d: children(%d) differ", step, id)
		}
		if id < 0 {
			continue
		}
		di, oki := inc.Depth(id)
		dr, okr := ref.Depth(id)
		if di != dr || oki != okr {
			t.Fatalf("prefix %d: depth(%d) %d,%v vs %d,%v", step, id, di, oki, dr, okr)
		}
		if inc.Subtree(id) != ref.Subtree(id) {
			t.Fatalf("prefix %d: subtree(%d) differs", step, id)
		}
	}
	if inc.Forks() != ref.Forks() {
		t.Fatalf("prefix %d: forks %d vs %d", step, inc.Forks(), ref.Forks())
	}
	for _, tip := range ref.LongestTips() {
		if !equalIDs(inc.ChainTo(tip), ref.ChainTo(tip)) {
			t.Fatalf("prefix %d: chain to %d differs", step, tip)
		}
	}
}

// chainHistory mixes honest longest-chain appends with fork-building and
// withholding-style extensions of old blocks — the single-parent block
// shapes the chain adversaries emit.
func chainHistory(rng *xrand.PCG, steps int) *appendmem.Memory {
	n := 4
	m := appendmem.New(n)
	private := appendmem.None
	for s := 0; s < steps; s++ {
		w := m.Writer(appendmem.NodeID(rng.Intn(n)))
		switch style := rng.Intn(4); {
		case style == 0 && m.Len() > 0: // withholding: extend a private chain
			msg := w.MustAppend(-1, 0, []appendmem.MsgID{private})
			private = msg.ID
		case style == 1 && m.Len() > 0: // fork off an arbitrary old block
			w.MustAppend(int64(s), 0, []appendmem.MsgID{appendmem.MsgID(rng.Intn(m.Len()))})
		default: // honest: extend the first-arrived longest tip
			tip := appendmem.None
			if tips := Build(m.Read()).LongestTips(); len(tips) > 0 {
				tip = tips[0]
			}
			w.MustAppend(int64(s), 0, []appendmem.MsgID{tip})
		}
	}
	return m
}

// TestDifferentialExtendVsBuild: for every prefix of randomized histories, a
// Tree grown one block at a time through Extend must agree with a
// from-scratch Build on every observable.
func TestDifferentialExtendVsBuild(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := xrand.New(seed, 98)
		m := chainHistory(rng, 70)
		inc := Build(m.ViewAt(0))
		for s := 0; s <= m.Len(); s++ {
			view := m.ViewAt(s)
			inc.Extend(view)
			assertSameTree(t, s, inc, Build(view))
		}
	}
}

// TestCachedFallsBackOnRegression: a Cached handle handed non-monotone view
// sizes (stale async reads) must still answer exactly like Build.
func TestCachedFallsBackOnRegression(t *testing.T) {
	rng := xrand.New(5, 98)
	m := chainHistory(rng, 60)
	c := NewCached()
	for _, s := range []int{10, 25, 25, 7, 40, 12, 60, 60, 3, 55} {
		view := m.ViewAt(s)
		assertSameTree(t, s, c.At(view), Build(view))
	}
}

// TestExtendRejectsForeignView: Extend must refuse a view that is not an
// extension of the indexed one.
func TestExtendRejectsForeignView(t *testing.T) {
	m := chainHistory(xrand.New(6, 98), 20)
	other := chainHistory(xrand.New(7, 98), 20)
	tr := Build(m.ViewAt(10))
	for _, bad := range []appendmem.View{m.ViewAt(5), other.Read()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("Extend accepted a non-extension view")
				}
			}()
			tr.Extend(bad)
		}()
	}
}

package chain

import (
	"testing"

	"repro/internal/appendmem"
	"repro/internal/xrand"
)

// safeWatermarks returns, for every prefix size s, the largest watermark
// no block with id >= s reaches below: the minimum parent referenced by
// the suffix. Compacting the index to this bound is exactly the guarantee
// the agreement harness provides via the per-node tip floors.
func safeWatermarks(m *appendmem.Memory) []int {
	n := m.Len()
	suffMin := make([]int, n+1)
	suffMin[n] = n
	for i := n - 1; i >= 0; i-- {
		lo := suffMin[i+1]
		if i < lo {
			lo = i
		}
		for _, p := range m.Message(appendmem.MsgID(i)).Parents {
			if p != appendmem.None && int(p) < lo {
				lo = int(p)
			}
		}
		suffMin[i] = lo
	}
	return suffMin
}

// assertSameDecisions compares every decision-relevant observable of a
// compacted index against the full one: heights, tip sets, fork counts
// and the confirm-depth value prefixes that feed Decide.
func assertSameDecisions(t *testing.T, step int, pruned, full *Tree) {
	t.Helper()
	if pruned.Height() != full.Height() {
		t.Fatalf("prefix %d: height %d vs %d", step, pruned.Height(), full.Height())
	}
	if pruned.size != full.size {
		t.Fatalf("prefix %d: size %d vs %d", step, pruned.size, full.size)
	}
	if !equalIDs(pruned.LongestTips(), full.LongestTips()) {
		t.Fatalf("prefix %d: longest tips %v vs %v", step, pruned.LongestTips(), full.LongestTips())
	}
	if pruned.Forks() != full.Forks() {
		t.Fatalf("prefix %d: forks %d vs %d", step, pruned.Forks(), full.Forks())
	}
	for _, tip := range full.LongestTips() {
		for _, k := range []int{1, 3, 8, full.Height()} {
			pv, fv := pruned.PrefixValues(tip, k), full.PrefixValues(tip, k)
			if len(pv) != len(fv) {
				t.Fatalf("prefix %d: PrefixValues(%d,%d) length %d vs %d", step, tip, k, len(pv), len(fv))
			}
			for i := range pv {
				if pv[i] != fv[i] {
					t.Fatalf("prefix %d: PrefixValues(%d,%d)[%d] = %d vs %d", step, tip, k, i, pv[i], fv[i])
				}
			}
		}
	}
	// Live blocks must agree exactly on depth.
	for id := pruned.off; id < step; id++ {
		dp, okp := pruned.Depth(appendmem.MsgID(id))
		df, okf := full.Depth(appendmem.MsgID(id))
		if dp != df || okp != okf {
			t.Fatalf("prefix %d: depth(%d) %d,%v vs %d,%v", step, id, dp, okp, df, okf)
		}
	}
}

// recentChainHistory forks and withholds only off recent blocks (like
// nodes bounded by Δ staleness do), so reachability floors — and with
// them the compaction watermark — advance steadily. The genesis-forking
// histories above pin correctness when compaction must decline; this one
// pins it when compaction actually runs.
func recentChainHistory(rng *xrand.PCG, steps int) *appendmem.Memory {
	n := 4
	m := appendmem.New(n)
	for s := 0; s < steps; s++ {
		w := m.Writer(appendmem.NodeID(rng.Intn(n)))
		if m.Len() > 0 && rng.Intn(3) == 0 {
			// Fork off one of the last few blocks (a stale or withheld tip).
			back := rng.Intn(6) + 1
			if back > m.Len() {
				back = m.Len()
			}
			w.MustAppend(-1, 0, []appendmem.MsgID{appendmem.MsgID(m.Len() - back)})
			continue
		}
		tip := appendmem.None
		if tips := Build(m.Read()).LongestTips(); len(tips) > 0 {
			tip = tips[rng.Intn(len(tips))]
		}
		w.MustAppend(int64(s), 0, []appendmem.MsgID{tip})
	}
	return m
}

// TestDifferentialCompactVsFull: on every prefix of randomized histories, an
// index compacted as aggressively as the reachability bound allows must
// agree with the full index on every decision observable — the pruned ==
// unpruned pin of the bounded-memory mode.
func TestDifferentialCompactVsFull(t *testing.T) {
	histories := []func(*xrand.PCG, int) *appendmem.Memory{chainHistory, recentChainHistory}
	compacted := 0
	for _, history := range histories {
		for seed := uint64(1); seed <= 8; seed++ {
			rng := xrand.New(seed, 99)
			m := history(rng, 80)
			safe := safeWatermarks(m)
			pruned := Build(m.ViewAt(0))
			full := Build(m.ViewAt(0))
			for s := 1; s <= m.Len(); s++ {
				view := m.ViewAt(s)
				pruned.Extend(view)
				full.Extend(view)
				w := pruned.Compact(safe[s])
				if w != pruned.off {
					t.Fatalf("prefix %d: Compact returned %d, watermark %d", s, w, pruned.off)
				}
				if w > 0 {
					compacted++
				}
				assertSameDecisions(t, s, pruned, full)
			}
		}
	}
	if compacted == 0 {
		t.Fatal("no history ever allowed retirement; the differential is vacuous")
	}
}

// TestCompactMonotoneAndBounded: the watermark never regresses, never
// exceeds the request, and queries below it panic.
func TestCompactMonotoneAndBounded(t *testing.T) {
	rng := xrand.New(3, 99)
	m := chainHistory(rng, 60)
	safe := safeWatermarks(m)
	tr := Build(m.Read())
	w := tr.Compact(safe[m.Len()])
	if w > safe[m.Len()] {
		t.Fatalf("Compact overshot: %d > %d", w, safe[m.Len()])
	}
	if again := tr.Compact(w); again != w {
		t.Fatalf("re-Compact moved the watermark: %d -> %d", w, again)
	}
	if down := tr.Compact(w - 5); down != w {
		t.Fatalf("Compact regressed the watermark: %d -> %d", w, down)
	}
	if w == 0 {
		t.Skip("history never allowed retirement; nothing to panic on")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Depth below the watermark did not panic")
		}
	}()
	tr.Depth(appendmem.MsgID(w - 1))
}

// TestCompactDeclinesUnsafeWatermark: when a live fork still reaches below
// the requested watermark, Compact must refuse rather than freeze an
// anchor a later query would walk past.
func TestCompactDeclinesUnsafeWatermark(t *testing.T) {
	m := appendmem.New(2)
	w0, w1 := m.Writer(0), m.Writer(1)
	// A linear chain by node 0, plus a node-1 fork hanging off the genesis
	// child: no anchor above id 0 can cover it.
	root := w0.MustAppend(1, 0, []appendmem.MsgID{appendmem.None})
	prev := root.ID
	for i := 0; i < 10; i++ {
		prev = w0.MustAppend(1, 0, []appendmem.MsgID{prev}).ID
	}
	w1.MustAppend(-1, 0, []appendmem.MsgID{root.ID})
	tr := Build(m.Read())
	if w := tr.Compact(8); w > int(root.ID)+1 {
		t.Fatalf("Compact froze past a live fork: watermark %d", w)
	}
}

package dolev

import (
	"fmt"

	"repro/internal/appendmem"
	"repro/internal/msgnet"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// honestNode is a correct participant running n parallel broadcast
// instances.
type honestNode struct {
	id     appendmem.NodeID
	nw     *msgnet.Network
	signer *msgnet.Signer
	// extracted[s] is the set of values extracted for sender s.
	extracted map[appendmem.NodeID]map[int64]bool
	// inbox buffers messages received during the current round; they are
	// processed at the next round boundary (round-r messages need >= r
	// signatures).
	inbox []message
}

func newHonestNode(nw *msgnet.Network, id appendmem.NodeID) *honestNode {
	h := &honestNode{
		id:        id,
		nw:        nw,
		signer:    nw.Signer(id),
		extracted: make(map[appendmem.NodeID]map[int64]bool),
	}
	nw.Register(id, func(env msgnet.Envelope) {
		if env.Kind != kindRelay {
			return
		}
		if m, err := unmarshalMessage(env.Body); err == nil {
			h.inbox = append(h.inbox, m)
		}
	})
	return h
}

// extract records a value for an instance; returns true when new.
func (h *honestNode) extract(m message) bool {
	set := h.extracted[m.Instance]
	if set == nil {
		set = make(map[int64]bool)
		h.extracted[m.Instance] = set
	}
	if set[m.Value] {
		return false
	}
	set[m.Value] = true
	return true
}

// processInbox handles the messages received during round r−1 at the start
// of round r: valid chains of length ≥ r−1 whose values are new are
// extracted and (if r ≤ R) relayed with an added signature.
func (h *honestNode) processInbox(justEndedRound, totalRounds int) {
	inbox := h.inbox
	h.inbox = nil
	for _, m := range inbox {
		if len(m.Chain) < justEndedRound {
			continue // too few signatures for this round
		}
		if len(h.extracted[m.Instance]) >= 2 {
			continue // already knows the sender equivocated; ⊥ is locked in
		}
		if !validChain(h.nw, m) {
			continue
		}
		if !h.extract(m) {
			continue
		}
		if justEndedRound < totalRounds {
			relay := extend(h.signer, m)
			for i := 0; i < h.nw.N(); i++ {
				h.nw.Send(h.id, appendmem.NodeID(i), kindRelay, relay.marshal())
			}
		}
	}
}

// deliver returns the broadcast output for one instance: the unique
// extracted value, or Bottom.
func (h *honestNode) deliver(instance appendmem.NodeID) int64 {
	set := h.extracted[instance]
	if len(set) != 1 {
		return Bottom
	}
	for v := range set {
		return v
	}
	return Bottom
}

// Run executes Byzantine agreement via n parallel Dolev–Strong broadcasts
// and a majority decision.
func Run(cfg Config) (*Result, error) {
	if cfg.N <= 0 || cfg.T < 0 || cfg.T >= cfg.N {
		return nil, fmt.Errorf("dolev: invalid n=%d t=%d", cfg.N, cfg.T)
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = cfg.T + 1
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("dolev: invalid rounds=%d", cfg.Rounds)
	}
	if cfg.Inputs == nil {
		cfg.Inputs = node.AllSame(cfg.N, +1)
	}
	if len(cfg.Inputs) != cfg.N {
		return nil, fmt.Errorf("dolev: %d inputs for %d nodes", len(cfg.Inputs), cfg.N)
	}
	if cfg.Adversary == nil {
		cfg.Adversary = SilentAdversary{}
	}

	const roundLen = sim.Time(1.0)
	s := sim.New()
	rng := xrand.New(cfg.Seed, 0xD01E)
	// Delivery within 0.9 of a round so every round-r send arrives before
	// the round-(r+1) boundary.
	nw := msgnet.New(s, rng, cfg.N, 0.9)
	roster := node.NewRoster(cfg.N, cfg.T)

	honest := make(map[appendmem.NodeID]*honestNode)
	byzSigners := make(map[appendmem.NodeID]*msgnet.Signer)
	for i := 0; i < cfg.N; i++ {
		id := appendmem.NodeID(i)
		if roster.IsByzantine(id) {
			byzSigners[id] = nw.Signer(id)
			nw.Register(id, func(msgnet.Envelope) {}) // adversary-driven
		} else {
			honest[id] = newHonestNode(nw, id)
		}
	}

	env := &Env{Sim: s, NW: nw, Roster: roster, Cfg: cfg, RoundLen: roundLen, signers: byzSigners}
	cfg.Adversary.Init(env)

	// Round 1: every correct node starts its own instance.
	s.At(0, func() {
		cfg.Adversary.Round(1)
		for id, h := range honest {
			m := extend(h.signer, message{Instance: id, Value: cfg.Inputs[id]})
			h.extract(m) // the sender extracts its own value
			for i := 0; i < cfg.N; i++ {
				nw.Send(id, appendmem.NodeID(i), kindRelay, m.marshal())
			}
		}
	})
	// Round boundaries 2..R+1: process the previous round's inbox.
	for r := 2; r <= cfg.Rounds+1; r++ {
		r := r
		s.At(roundLen*sim.Time(r-1), func() {
			if r <= cfg.Rounds {
				cfg.Adversary.Round(r)
			}
			for _, h := range honest {
				h.processInbox(r-1, cfg.Rounds)
			}
		})
	}
	s.Run()

	outcome := node.NewOutcome(cfg.N)
	res := &Result{
		Roster:     roster,
		Inputs:     cfg.Inputs,
		Outcome:    outcome,
		Delivered:  make([][]int64, cfg.N),
		Consistent: true,
		Stats:      nw.Stats(),
	}
	var reference []int64
	for i := 0; i < cfg.N; i++ {
		id := appendmem.NodeID(i)
		h, ok := honest[id]
		if !ok {
			continue
		}
		vec := make([]int64, cfg.N)
		var sum int64
		for sdr := 0; sdr < cfg.N; sdr++ {
			vec[sdr] = h.deliver(appendmem.NodeID(sdr))
			sum += vec[sdr]
		}
		res.Delivered[i] = vec
		outcome.Decide(id, node.Sign(sum))
		if reference == nil {
			reference = vec
		} else {
			for j := range vec {
				if vec[j] != reference[j] {
					res.Consistent = false
				}
			}
		}
	}
	res.Verdict = node.Evaluate(roster, cfg.Inputs, outcome)
	return res, nil
}

// MustRun is Run but panics on configuration errors.
func MustRun(cfg Config) *Result {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// StagedRelease is the lower-bound adversary: the first Byzantine node
// equivocates a second value −1 whose signature chain is extended by one
// further Byzantine node per round and finally handed to exactly one
// correct node in the last round. With Rounds ≤ t the chain consists of
// Byzantine signers only and the lone receiver extracts a value nobody
// else ever sees — consistency (and with balanced inputs, agreement)
// breaks. With Rounds = t+1 the chain would need t+1 distinct signers;
// the Byzantine nodes run out, so the attack is impossible.
type StagedRelease struct {
	// Value is the smuggled value; 0 means -1.
	Value int64
	env   *Env
	cur   message
	alive bool
}

// Init implements Adversary.
func (a *StagedRelease) Init(env *Env) {
	a.env = env
	if a.Value == 0 {
		a.Value = -1
	}
}

// Round implements Adversary.
func (a *StagedRelease) Round(r int) {
	byz := a.env.Roster.Byzantines()
	if len(byz) == 0 {
		return
	}
	R := a.env.Cfg.Rounds
	switch {
	case r == 1:
		// The first Byzantine node starts a hidden instance with the
		// smuggled value. (It sends its "public" value to nobody — staying
		// silent publicly is also Byzantine behaviour.)
		a.cur = a.env.NewMessage(byz[0], a.Value)
		a.alive = true
	case r <= R && a.alive:
		// Extend the chain with the next Byzantine signer.
		idx := r - 1
		if idx >= len(byz) {
			a.alive = false // out of distinct Byzantine signers
			return
		}
		a.cur = a.env.Extend(byz[idx], a.cur)
	}
	// In the final round, hand the chain to exactly one correct node,
	// timed to arrive during round R (processed at the last boundary).
	if r == R && a.alive {
		target := a.env.Roster.Correct()[0]
		m := a.cur
		from := byz[len(byz)-1]
		a.env.Send(from, target, m)
	}
}

// SenderEquivocator is the classic Byzantine-sender attack: in round 1 the
// first Byzantine node sends value +1 to half the correct nodes and −1 to
// the other half (each with a valid single-signature chain). Dolev–Strong
// guarantees consistency, not sender validity: relaying exposes both
// values to everyone within the t+1 rounds, every correct node extracts
// two values for the slot and delivers ⊥ — consistently.
type SenderEquivocator struct {
	env *Env
}

// Init implements Adversary.
func (a *SenderEquivocator) Init(env *Env) { a.env = env }

// Round implements Adversary.
func (a *SenderEquivocator) Round(r int) {
	if r != 1 {
		return
	}
	byz := a.env.Roster.Byzantines()
	if len(byz) == 0 {
		return
	}
	sender := byz[0]
	plus := a.env.NewMessage(sender, +1)
	minus := a.env.NewMessage(sender, -1)
	correct := a.env.Roster.Correct()
	for i, id := range correct {
		if i%2 == 0 {
			a.env.Send(sender, id, plus)
		} else {
			a.env.Send(sender, id, minus)
		}
	}
}

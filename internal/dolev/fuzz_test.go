package dolev

import (
	"testing"

	"repro/internal/msgnet"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// FuzzUnmarshalMessage: arbitrary bytes must never panic, and anything
// that parses must fail chain validation unless genuinely signed.
func FuzzUnmarshalMessage(f *testing.F) {
	s := sim.New()
	nw := msgnet.New(s, xrand.New(1, 1), 3, 0.9)
	genuine := extend(nw.Signer(1), message{Instance: 1, Value: 5})
	f.Add([]byte{})
	f.Add(genuine.marshal())
	f.Add(make([]byte, 12))
	f.Add(make([]byte, 12+4+sigLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := unmarshalMessage(data)
		if err != nil {
			return
		}
		// Validation must be safe on arbitrary parsed content.
		valid := validChain(nw, m)
		// Only the genuine message (or a re-encoding of it) may validate.
		if valid {
			if m.Instance != 1 || m.Value != 5 || len(m.Chain) != 1 {
				t.Fatalf("forged chain validated: %+v", m)
			}
		}
	})
}

// Package dolev implements Dolev–Strong authenticated Byzantine broadcast
// over the message-passing substrate — the classic protocol whose
// interactive-consistency idea Algorithm 1 transplants into the append
// memory (Section 3.2 cites Dolev & Strong for the matching upper bound).
//
// One sender broadcasts a value; every relay appends its ed25519
// signature, so a value travelling r rounds carries r distinct signatures.
// A node extracts a value it receives in round r only if the value carries
// at least r valid signatures beginning with the sender's. After R rounds
// a node delivers the unique extracted value, or ⊥ on zero/multiple
// extractions. With R = t+1 rounds any signature chain long enough to be
// accepted late must contain a correct signer who already relayed the
// value to everyone — the same "one correct node extends the chain"
// argument as Theorem 3.2's — so delivery is consistent. With R ≤ t
// rounds a staged-release adversary (a chain of Byzantine signers handing
// the value to a single correct node in the last round) breaks
// consistency; this package implements that adversary too, giving the
// message-passing twin of experiment E2's staircase.
//
// Byzantine agreement is built on top in the standard way: n parallel
// broadcast instances (one per node's input) and a majority decision over
// the delivered vector.
package dolev

import (
	"encoding/binary"
	"fmt"

	"repro/internal/appendmem"
	"repro/internal/msgnet"
	"repro/internal/node"
	"repro/internal/sim"
)

// Bottom is the default value delivered when a broadcast fails (the
// sender equivocated or stayed silent).
const Bottom int64 = 0

// chainEntry is one signature in a relay chain.
type chainEntry struct {
	Signer appendmem.NodeID
	Sig    []byte
}

// payload is the signed core of a broadcast message: instance (the slot,
// i.e. the original sender), and the value.
func payloadBytes(instance appendmem.NodeID, value int64) []byte {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint32(buf[0:], uint32(instance))
	binary.LittleEndian.PutUint64(buf[4:], uint64(value))
	return buf
}

// signedSoFar returns the byte string entry i signs: the payload plus all
// previous entries.
func signedSoFar(payload []byte, entries []chainEntry, i int) []byte {
	data := append([]byte(nil), payload...)
	for j := 0; j < i; j++ {
		var idb [4]byte
		binary.LittleEndian.PutUint32(idb[:], uint32(entries[j].Signer))
		data = append(data, idb[:]...)
		data = append(data, entries[j].Sig...)
	}
	return data
}

// message is one broadcast relay on the wire.
type message struct {
	Instance appendmem.NodeID
	Value    int64
	Chain    []chainEntry
}

const sigLen = 64

func (m message) marshal() []byte {
	buf := payloadBytes(m.Instance, m.Value)
	for _, e := range m.Chain {
		var idb [4]byte
		binary.LittleEndian.PutUint32(idb[:], uint32(e.Signer))
		buf = append(buf, idb[:]...)
		buf = append(buf, e.Sig...)
	}
	return buf
}

func unmarshalMessage(b []byte) (message, error) {
	if len(b) < 12 || (len(b)-12)%(4+sigLen) != 0 {
		return message{}, fmt.Errorf("dolev: bad message size %d", len(b))
	}
	m := message{
		Instance: appendmem.NodeID(int32(binary.LittleEndian.Uint32(b[0:]))),
		Value:    int64(binary.LittleEndian.Uint64(b[4:])),
	}
	for off := 12; off < len(b); off += 4 + sigLen {
		m.Chain = append(m.Chain, chainEntry{
			Signer: appendmem.NodeID(int32(binary.LittleEndian.Uint32(b[off:]))),
			Sig:    append([]byte(nil), b[off+4:off+4+sigLen]...),
		})
	}
	return m, nil
}

// validChain verifies the signature chain: non-empty, first signer is the
// instance's sender, signers distinct, every signature valid.
func validChain(nw *msgnet.Network, m message) bool {
	if len(m.Chain) == 0 || m.Chain[0].Signer != m.Instance {
		return false
	}
	payload := payloadBytes(m.Instance, m.Value)
	seen := map[appendmem.NodeID]bool{}
	for i, e := range m.Chain {
		if seen[e.Signer] {
			return false
		}
		seen[e.Signer] = true
		if !nw.Verify(e.Signer, signedSoFar(payload, m.Chain, i), e.Sig) {
			return false
		}
	}
	return true
}

// extend appends signer's signature to the chain.
func extend(signer *msgnet.Signer, m message) message {
	payload := payloadBytes(m.Instance, m.Value)
	sig := signer.Sign(signedSoFar(payload, m.Chain, len(m.Chain)))
	out := m
	out.Chain = append(append([]chainEntry(nil), m.Chain...), chainEntry{Signer: signer.ID(), Sig: sig})
	return out
}

const kindRelay = "ds-relay"

// Config configures one Dolev–Strong Byzantine agreement run.
type Config struct {
	N, T   int
	Rounds int // 0 means T+1 (the correct round count)
	Seed   uint64
	// Inputs per node; nil means all correct +1.
	Inputs node.Inputs
	// Adversary drives the Byzantine nodes; nil means silent.
	Adversary Adversary
}

// Adversary drives the Byzantine nodes of a run.
type Adversary interface {
	// Init is called once before round 1.
	Init(env *Env)
	// Round is called at the start of every round (1-based).
	Round(r int)
}

// SilentAdversary does nothing.
type SilentAdversary struct{}

// Init implements Adversary.
func (SilentAdversary) Init(*Env) {}

// Round implements Adversary.
func (SilentAdversary) Round(int) {}

// Env is the adversary's interface to the run.
type Env struct {
	Sim      *sim.Sim
	NW       *msgnet.Network
	Roster   node.Roster
	Cfg      Config
	RoundLen sim.Time
	// Signers of the Byzantine nodes only.
	signers map[appendmem.NodeID]*msgnet.Signer
}

// Signer returns a Byzantine node's signer; panics for honest ids.
func (e *Env) Signer(id appendmem.NodeID) *msgnet.Signer {
	s, ok := e.signers[id]
	if !ok {
		panic("dolev: adversary requested an honest signer")
	}
	return s
}

// NewMessage builds a sender-signed round-1 message for a Byzantine
// instance (the Byzantine node's own slot).
func (e *Env) NewMessage(instance appendmem.NodeID, value int64) message {
	return extend(e.Signer(instance), message{Instance: instance, Value: value})
}

// Extend appends a Byzantine signature to a message.
func (e *Env) Extend(signer appendmem.NodeID, m message) message {
	return extend(e.Signer(signer), m)
}

// Send transmits a marshalled relay to one node.
func (e *Env) Send(from, to appendmem.NodeID, m message) {
	e.NW.Send(from, to, kindRelay, m.marshal())
}

// Result is the outcome of one run.
type Result struct {
	Roster  node.Roster
	Inputs  node.Inputs
	Outcome *node.Outcome
	Verdict node.Verdict
	// Delivered[i][s] is what node i delivered for sender s (Bottom on
	// failure); correct nodes only.
	Delivered [][]int64
	// Consistent reports whether all correct nodes delivered identical
	// vectors — the broadcast consistency property.
	Consistent bool
	Stats      msgnet.Stats
}

package dolev

import (
	"testing"

	"repro/internal/appendmem"
	"repro/internal/msgnet"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func TestMessageRoundTrip(t *testing.T) {
	s := sim.New()
	nw := msgnet.New(s, xrand.New(1, 1), 3, 0.9)
	m := extend(nw.Signer(1), message{Instance: 1, Value: -7})
	m = extend(nw.Signer(2), m)
	got, err := unmarshalMessage(m.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Instance != 1 || got.Value != -7 || len(got.Chain) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if !validChain(nw, got) {
		t.Fatal("valid chain rejected after round trip")
	}
}

func TestValidChainRules(t *testing.T) {
	s := sim.New()
	nw := msgnet.New(s, xrand.New(2, 2), 4, 0.9)

	// Chain must start with the instance's sender.
	wrongStart := extend(nw.Signer(2), message{Instance: 1, Value: 5})
	if validChain(nw, wrongStart) {
		t.Fatal("chain not starting with sender accepted")
	}
	// Duplicate signers rejected.
	m := extend(nw.Signer(1), message{Instance: 1, Value: 5})
	dup := extend(nw.Signer(1), m)
	if validChain(nw, dup) {
		t.Fatal("duplicate signer accepted")
	}
	// Tampered value rejected.
	good := extend(nw.Signer(1), message{Instance: 1, Value: 5})
	tampered := good
	tampered.Value = 6
	if validChain(nw, tampered) {
		t.Fatal("tampered value accepted")
	}
	// Empty chain rejected.
	if validChain(nw, message{Instance: 1, Value: 5}) {
		t.Fatal("empty chain accepted")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1, 2, 3}, make([]byte, 13)} {
		if _, err := unmarshalMessage(b); err == nil {
			t.Fatalf("garbage of length %d accepted", len(b))
		}
	}
}

func TestAllHonestAgreement(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		r := MustRun(Config{N: 5, T: 0, Rounds: 1, Seed: seed, Inputs: node.SplitInputs(5, 3)})
		if !r.Consistent {
			t.Fatalf("seed %d: inconsistent delivery with no faults", seed)
		}
		if !r.Verdict.Agreement || !r.Verdict.Termination {
			t.Fatalf("seed %d: %+v", seed, r.Verdict)
		}
		for _, id := range r.Roster.Correct() {
			if r.Outcome.Decision[id] != +1 {
				t.Fatalf("majority +1 not decided: %v", r.Outcome.Decision)
			}
		}
	}
}

func TestDeliveredVectorMatchesInputs(t *testing.T) {
	r := MustRun(Config{N: 4, T: 0, Rounds: 1, Seed: 3, Inputs: node.Inputs{+1, -1, +1, -1}})
	for _, id := range r.Roster.Correct() {
		for s, v := range r.Delivered[id] {
			if v != r.Inputs[s] {
				t.Fatalf("node %d delivered %d for sender %d, want %d", id, v, s, r.Inputs[s])
			}
		}
	}
}

func TestSilentByzantineDeliversBottom(t *testing.T) {
	r := MustRun(Config{N: 5, T: 2, Seed: 1})
	for _, id := range r.Roster.Correct() {
		for _, b := range r.Roster.Byzantines() {
			if r.Delivered[id][b] != Bottom {
				t.Fatalf("silent Byzantine slot delivered %d", r.Delivered[id][b])
			}
		}
	}
	if !r.Verdict.OK() {
		t.Fatalf("%+v", r.Verdict)
	}
}

// The message-passing twin of E2: staged release breaks consistency for
// every round budget <= t and never for t+1.
func TestStagedReleaseStaircase(t *testing.T) {
	for _, tc := range []struct{ n, tt int }{{5, 2}, {7, 3}} {
		for rounds := 1; rounds <= tc.tt+1; rounds++ {
			broke := 0
			const trials = 10
			for seed := uint64(0); seed < trials; seed++ {
				r := MustRun(Config{
					N: tc.n, T: tc.tt, Rounds: rounds, Seed: seed,
					Adversary: &StagedRelease{},
				})
				if !r.Consistent {
					broke++
				}
			}
			if rounds <= tc.tt && broke == 0 {
				t.Errorf("n=%d t=%d rounds=%d: staged release never broke consistency",
					tc.n, tc.tt, rounds)
			}
			if rounds == tc.tt+1 && broke != 0 {
				t.Errorf("n=%d t=%d rounds=%d: consistency broke %d/%d at t+1 rounds",
					tc.n, tc.tt, rounds, broke, trials)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 0},
		{N: 3, T: 3},
		{N: 3, T: -1},
		{N: 3, T: 1, Rounds: -2},
		{N: 3, T: 1, Inputs: node.AllSame(2, 1)},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestDefaultRounds(t *testing.T) {
	r := MustRun(Config{N: 4, T: 2, Seed: 1})
	_ = r // t+1 = 3 rounds ran; success implies the schedule completed
	if !r.Verdict.Termination {
		t.Fatal("termination failed")
	}
}

func TestMessageComplexityQuadraticPerRound(t *testing.T) {
	// n instances × n relays per extraction: relay traffic is Θ(n²) per
	// round minimum; verify it is counted and grows with n.
	small := MustRun(Config{N: 4, T: 1, Seed: 1}).Stats.Messages
	big := MustRun(Config{N: 8, T: 1, Seed: 1}).Stats.Messages
	if big <= small*2 {
		t.Fatalf("traffic not superlinear in n: %d -> %d", small, big)
	}
}

func TestEnvSignerGuards(t *testing.T) {
	r := node.NewRoster(4, 1)
	env := &Env{Roster: r, signers: map[appendmem.NodeID]*msgnet.Signer{}}
	defer func() {
		if recover() == nil {
			t.Fatal("honest signer handed to adversary")
		}
	}()
	env.Signer(0)
}

func TestSenderEquivocationDeliversBottomConsistently(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		r := MustRun(Config{N: 6, T: 2, Seed: seed, Adversary: &SenderEquivocator{}})
		if !r.Consistent {
			t.Fatalf("seed %d: equivocation broke consistency at t+1 rounds", seed)
		}
		byz := r.Roster.Byzantines()[0]
		for _, id := range r.Roster.Correct() {
			if r.Delivered[id][byz] != Bottom {
				t.Fatalf("seed %d: node %d delivered %d for the equivocating sender, want ⊥",
					seed, id, r.Delivered[id][byz])
			}
		}
	}
}

func TestSenderEquivocationWithOneRoundMaySplit(t *testing.T) {
	// With a single round (t=1 would need 2) the two halves never exchange
	// relays: the slot splits. Count split runs; they must exist.
	split := 0
	for seed := uint64(0); seed < 15; seed++ {
		r := MustRun(Config{N: 6, T: 2, Rounds: 1, Seed: seed, Adversary: &SenderEquivocator{}})
		if !r.Consistent {
			split++
		}
	}
	if split == 0 {
		t.Fatal("one-round runs never split under sender equivocation")
	}
}

package distrib

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
)

// Transport is one framed, ordered, bidirectional message channel to a
// worker. Send and Recv are each used from one goroutine at a time (the
// coordinator pairs every worker with one manager goroutine); Close may
// race with either and unblocks a pending Recv.
type Transport interface {
	Send(*Msg) error
	Recv(*Msg) error
	Close() error
}

// streamTransport frames messages over any byte stream: a TCP connection
// or a pair of process pipes.
type streamTransport struct {
	r io.Reader
	w io.Writer

	mu     sync.Mutex
	closed bool
	cs     []io.Closer
}

// NewStreamTransport wraps a read and a write stream into a Transport;
// closers are closed (once) by Close, unblocking pending reads.
func NewStreamTransport(r io.Reader, w io.Writer, closers ...io.Closer) Transport {
	return &streamTransport{r: r, w: w, cs: closers}
}

func (t *streamTransport) Send(m *Msg) error { return WriteFrame(t.w, m) }
func (t *streamTransport) Recv(m *Msg) error { return ReadFrame(t.r, m) }

func (t *streamTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	var first error
	for _, c := range t.cs {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Dial connects to a remote amworker listening on a TCP address and
// completes the hello exchange.
func Dial(addr string) (Transport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("distrib: dial worker %s: %w", addr, err)
	}
	t := NewStreamTransport(conn, conn, conn)
	if err := handshake(t); err != nil {
		t.Close()
		return nil, fmt.Errorf("distrib: worker %s: %w", addr, err)
	}
	return t, nil
}

// DialWorkers connects to every address in a comma-separated list.
func DialWorkers(addrs string) ([]Transport, error) {
	var ts []Transport
	for _, addr := range strings.Split(addrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		t, err := Dial(addr)
		if err != nil {
			for _, prev := range ts {
				prev.Close()
			}
			return nil, err
		}
		ts = append(ts, t)
	}
	return ts, nil
}

// handshake sends our hello and verifies the worker's.
func handshake(t Transport) error {
	if err := t.Send(&Msg{Type: msgHello, Version: Version}); err != nil {
		return fmt.Errorf("hello send: %w", err)
	}
	var m Msg
	if err := t.Recv(&m); err != nil {
		return fmt.Errorf("hello recv: %w", err)
	}
	if m.Type != msgHello || m.Version != Version {
		return fmt.Errorf("bad hello %q v%d (want %q v%d)", m.Type, m.Version, msgHello, Version)
	}
	return nil
}

// Proc is one spawned local worker process with its stdio transport.
type Proc struct {
	Transport
	cmd *exec.Cmd
}

// Kill terminates the worker process without ceremony — the coordinator's
// reassignment path must treat this as routine worker loss.
func (p *Proc) Kill() error { return p.cmd.Process.Kill() }

// Pid returns the worker's OS process id.
func (p *Proc) Pid() int { return p.cmd.Process.Pid }

// Close closes the transport and reaps the process.
func (p *Proc) Close() error {
	err := p.Transport.Close()
	p.cmd.Wait()
	return err
}

// Spawn starts one worker process from argv (argv[0] is the binary; the
// remaining args must put it in stdio-worker mode), wires its stdin/stdout
// into a Transport and completes the hello exchange. Stderr passes through
// to the parent's, so worker crashes stay diagnosable.
func Spawn(argv []string, env []string) (*Proc, error) {
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stderr = os.Stderr
	if env != nil {
		cmd.Env = env
	}
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("distrib: spawn worker %s: %w", argv[0], err)
	}
	t := NewStreamTransport(out, in, in, out)
	p := &Proc{Transport: t, cmd: cmd}
	if err := handshake(t); err != nil {
		p.Kill()
		p.Close()
		return nil, fmt.Errorf("distrib: worker %s: %w", argv[0], err)
	}
	return p, nil
}

// SpawnN starts n identical local workers.
func SpawnN(n int, argv []string, env []string) ([]*Proc, error) {
	procs := make([]*Proc, 0, n)
	for i := 0; i < n; i++ {
		p, err := Spawn(argv, env)
		if err != nil {
			for _, prev := range procs {
				prev.Kill()
				prev.Close()
			}
			return nil, err
		}
		procs = append(procs, p)
	}
	return procs, nil
}

// Loopback starts an in-process worker goroutine running Serve and
// returns the coordinator-side transport — the zero-overhead harness for
// tests and benchmarks of the dispatch/merge machinery.
func Loopback() Transport {
	cr, cw := io.Pipe() // coordinator → worker
	wr, ww := io.Pipe() // worker → coordinator
	wt := NewStreamTransport(cr, ww, cr, ww)
	go func() {
		Serve(wt)
		wt.Close()
	}()
	t := NewStreamTransport(wr, cw, cw, wr)
	if err := handshake(t); err != nil {
		panic(fmt.Sprintf("distrib: loopback handshake: %v", err))
	}
	return t
}

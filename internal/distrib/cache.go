package distrib

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/scenario"
)

// LeaseKey is the content address of one lease: the canonical hash of the
// point spec it runs (which covers every simulation parameter plus the
// resolved metric names), the base seed, and the trial chunk. Worker
// count, chunk scheduling and transport are deliberately absent — they
// cannot change a lease's result. The spec's total trial count and its
// display name/doc are zeroed too: the chunk [lo, hi) fully addresses the
// work, so a budget escalation (say trials 16 → 64 in a successive-halving
// search) reuses every chunk its lower rung already computed.
func LeaseKey(spec scenario.Spec, seed uint64, lo, hi int) string {
	spec.Trials = 0
	spec.Name = ""
	spec.Doc = ""
	h := sha256.New()
	fmt.Fprintf(h, "amlease/v2\nspec=%s\nseed=%d\nchunk=%d-%d\n", scenario.SpecHash(spec), seed, lo, hi)
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is one retained lease result.
type cacheEntry struct {
	key  string
	vals [][]uint64
}

// Cache is the content-addressed result cache: an in-memory LRU bounded
// by entry count, optionally backed by a directory so repeated sweeps and
// CI runs skip completed leases across processes. Disk entries are one
// JSON file per key (written atomically via rename), so concurrent
// coordinators sharing a directory at worst duplicate work, never corrupt
// it.
type Cache struct {
	mu      sync.Mutex
	dir     string // "" = memory only
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used

	hits, misses, evictions int
}

// DefaultCacheEntries bounds the in-memory cache when the caller does not
// say otherwise; at a few KB per lease result this is a few MB.
const DefaultCacheEntries = 4096

// NewCache returns a cache holding at most maxEntries results in memory
// (0 means DefaultCacheEntries). dir != "" additionally persists every
// stored result under dir (created if missing); persisted entries survive
// in-memory eviction and process restarts.
func NewCache(dir string, maxEntries int) (*Cache, error) {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("distrib: cache dir: %w", err)
		}
	}
	return &Cache{dir: dir, max: maxEntries, entries: map[string]*list.Element{}, lru: list.New()}, nil
}

// file is the on-disk serialization of one lease result.
type cacheFile struct {
	Key  string     `json:"key"`
	Vals [][]uint64 `json:"vals"`
}

func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".json") }

// Get returns the cached trial vectors for a lease key, consulting memory
// first and then the backing directory. Counted as a hit or a miss.
func (c *Cache) Get(key string) ([][]uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).vals, true
	}
	if c.dir != "" {
		if data, err := os.ReadFile(c.path(key)); err == nil {
			var f cacheFile
			// A corrupt or foreign file is a miss, not an error: the lease
			// just runs and overwrites it.
			if json.Unmarshal(data, &f) == nil && f.Key == key {
				c.insert(key, f.Vals)
				c.hits++
				return f.Vals, true
			}
		}
	}
	c.misses++
	return nil, false
}

// Put stores a lease result in memory (evicting the least recently used
// entry beyond the bound) and, when backed, on disk.
func (c *Cache) Put(key string, vals [][]uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).vals = vals
	} else {
		c.insert(key, vals)
	}
	if c.dir != "" {
		c.writeFile(key, vals)
	}
}

// insert adds a fresh entry, evicting from the LRU tail past the bound.
// Eviction only drops the in-memory copy: a disk-backed entry remains
// content-addressed on disk and reloads on the next Get.
func (c *Cache) insert(key string, vals [][]uint64) {
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, vals: vals})
	for c.lru.Len() > c.max {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// writeFile persists one entry atomically (temp file + rename), so a
// crashed or concurrent writer can never leave a torn entry.
func (c *Cache) writeFile(key string, vals [][]uint64) {
	data, err := json.Marshal(cacheFile{Key: key, Vals: vals})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits, Misses, Evictions, Live int
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Live: c.lru.Len()}
}

// Package distrib shards a scenario sweep across worker processes: a
// coordinator splits the (sweep point, trial range) space into leases,
// dispatches them to workers speaking length-prefixed JSON over stdio or
// TCP, and merges the returned per-trial metric vectors in (point, chunk,
// trial) order — so the output is byte-identical to a single-process
// scenario.RunSpec at the same seed, at any worker count, across process
// and host boundaries. A content-addressed result cache keyed on
// (canonical spec hash, seed, chunk) lets repeated sweeps skip completed
// leases, and lease timeouts with reassignment make a killed worker a
// wall-clock event, never an output change.
package distrib

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/scenario"
)

// Version is the wire protocol version; both ends send it in their hello
// and refuse to talk across a mismatch (a stale amworker binary must fail
// loudly, not corrupt a sweep).
const Version = 1

// maxFrame bounds a single frame; a lease for a huge topology table or a
// result for a huge chunk stays far below this.
const maxFrame = 64 << 20

// msgType enumerates the protocol messages.
type msgType string

const (
	// msgHello opens both directions of a connection: version check.
	msgHello msgType = "hello"
	// msgLease (coordinator → worker) assigns one (spec, trial range).
	msgLease msgType = "lease"
	// msgResult (worker → coordinator) returns a lease's trial vectors.
	msgResult msgType = "result"
	// msgError (worker → coordinator) reports a deterministic lease
	// failure (bind error, trial panic). Never retried: the same lease
	// would fail everywhere.
	msgError msgType = "error"
	// msgBye (coordinator → worker) ends the session; the worker exits.
	msgBye msgType = "bye"
)

// Msg is the single wire envelope. Fields are populated per Type.
type Msg struct {
	Type    msgType        `json:"type"`
	Version int            `json:"version,omitempty"` // hello
	ID      int            `json:"id,omitempty"`      // lease/result/error: lease id
	Spec    *scenario.Spec `json:"spec,omitempty"`    // lease: the point spec (Sweep empty, Metrics resolved)
	Lo      int            `json:"lo,omitempty"`      // lease: first trial index (inclusive)
	Hi      int            `json:"hi,omitempty"`      // lease: last trial index (exclusive)
	Vals    [][]uint64     `json:"vals,omitempty"`    // result: per-trial metric vectors, IEEE-754 bits
	Err     string         `json:"error,omitempty"`   // error
}

// PackVals converts per-trial metric vectors to their IEEE-754 bit
// patterns for the wire. JSON cannot carry NaN and re-parsing decimal
// floats risks the one-ULP drift that would break byte-identical output;
// the bit pattern round-trips every value exactly, NaN included.
func PackVals(vals [][]float64) [][]uint64 {
	out := make([][]uint64, len(vals))
	for i, row := range vals {
		bits := make([]uint64, len(row))
		for j, v := range row {
			bits[j] = math.Float64bits(v)
		}
		out[i] = bits
	}
	return out
}

// UnpackVals is the inverse of PackVals.
func UnpackVals(bits [][]uint64) [][]float64 {
	out := make([][]float64, len(bits))
	for i, row := range bits {
		vals := make([]float64, len(row))
		for j, b := range row {
			vals[j] = math.Float64frombits(b)
		}
		out[i] = vals
	}
	return out
}

// WriteFrame writes one length-prefixed JSON message: a 4-byte big-endian
// payload length followed by the payload.
func WriteFrame(w io.Writer, m *Msg) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("distrib: encode %s: %w", m.Type, err)
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("distrib: %s frame of %d bytes exceeds the %d-byte bound", m.Type, len(payload), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed JSON message.
func ReadFrame(r io.Reader, m *Msg) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err // io.EOF between frames means a clean close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("distrib: frame of %d bytes exceeds the %d-byte bound", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("distrib: truncated frame: %w", err)
	}
	*m = Msg{}
	if err := json.Unmarshal(payload, m); err != nil {
		return fmt.Errorf("distrib: bad frame: %w", err)
	}
	return nil
}

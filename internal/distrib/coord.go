package distrib

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/scenario"
)

// Config tunes one distributed sweep execution.
type Config struct {
	// Workers are the connected worker transports. Empty means every lease
	// runs inline in this process (the cache still applies).
	Workers []Transport
	// Cache, when non-nil, serves completed leases by content address and
	// stores fresh results.
	Cache *Cache
	// LeaseTimeout bounds one lease on one worker; past it the worker is
	// declared lost and the lease reassigned. 0 means DefaultLeaseTimeout.
	LeaseTimeout time.Duration
	// ChunkSize is the trial count per lease. It shapes cache keys (a
	// different chunking addresses different content), so it defaults to a
	// fixed DefaultChunkSize independent of worker count. When unset AND no
	// cache is configured, the coordinator sizes chunks adaptively: it times
	// a first probe lease and scales subsequent chunks toward
	// TargetLeaseDuration (output bytes are identical either way — only
	// lease boundaries move).
	ChunkSize int
	// TargetLeaseDuration is the wall-clock a lease should take under
	// adaptive chunk sizing. 0 means DefaultTargetLeaseDuration.
	TargetLeaseDuration time.Duration
	// InlineWorkers caps the concurrency of leases run in this process
	// (no workers configured, probe leases, or fallback after losses):
	// 1 runs trials sequentially on the calling goroutine, <= 0 uses the
	// process-wide pool. Results are identical for any value.
	InlineWorkers int
}

// DefaultLeaseTimeout declares a worker lost when one lease exceeds it.
const DefaultLeaseTimeout = 2 * time.Minute

// DefaultTargetLeaseDuration is the adaptive chunk sizer's target: long
// enough that framing is negligible, a small fraction of the lease
// timeout so stragglers are caught quickly.
const DefaultTargetLeaseDuration = time.Second

// MaxAdaptiveChunk caps adaptive chunk growth so very fast trials still
// yield enough leases to load-balance a fleet.
const MaxAdaptiveChunk = 4096

// DefaultChunkSize is the trials-per-lease default. Small enough to load-
// balance a handful of workers on typical -trials counts, big enough that
// framing stays negligible against simulation cost — and deliberately not
// a function of the worker count, so cache keys survive -distribute
// changes.
const DefaultChunkSize = 16

// Stats reports what one distributed execution did — surfaced by
// amrun -timing and asserted by the differential tests.
type Stats struct {
	Points     int // sweep points executed
	Leases     int // total leases (cache hits included)
	FromCache  int // leases served by the result cache
	Dispatched int // lease assignments sent to workers (retries included)
	Inline     int // leases run in-process (no workers, or all lost)
	Retries    int // lease reassignments after a worker was lost
	LostWorker int // workers declared lost (died or timed out)
}

// lease is one unit of dispatch: a sweep point's trial range.
type lease struct {
	id    int
	point int // index into the expanded points
	lo    int // trial range [lo, hi)
	hi    int
	key   string // content address (cache + dedup)
}

// outcome is one manager report back to the coordinator loop.
type outcome struct {
	l    *lease
	vals [][]uint64 // success
	err  error      // deterministic lease failure (never retried)
	lost bool       // transport failure or timeout; l (if any) is reassigned
}

// Run executes the spec's sweep across the configured workers and merges
// the results in (point, chunk, trial) order, yielding a SweepResult
// byte-identical to scenario.RunSpec(spec, ...) at the same seed.
func Run(spec scenario.Spec, cfg Config) (*scenario.SweepResult, *Stats, error) {
	if spec.Checkpoint {
		return nil, nil, fmt.Errorf("distrib: checkpointed sweeps are in-process only (a checkpoint cannot cross a process boundary); drop -distribute or checkpoint")
	}
	names, defs, err := scenario.ResolveMetrics(spec)
	if err != nil {
		return nil, nil, err
	}
	trials := spec.Trials
	if trials <= 0 {
		trials = 1
	}
	chunk := cfg.ChunkSize
	// Adaptive chunk sizing only applies without a cache: cache keys are
	// chunk-shaped, and a wall-clock-dependent chunking would make keys
	// unreproducible across runs.
	adaptive := chunk <= 0 && cfg.Cache == nil
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	points, err := spec.Expand()
	if err != nil {
		return nil, nil, err
	}

	// Pre-bind every point, exactly like the in-process executor: all
	// configuration errors surface here, before any lease is dispatched or
	// served from cache — and the bounds double as the inline fallback.
	bounds := make([]*boundEntry, len(points))
	for i, pt := range points {
		b, err := scenario.Bind(pt.Spec)
		if err != nil {
			return nil, nil, err
		}
		extract, err := b.MetricExtractors(defs)
		if err != nil {
			return nil, nil, err
		}
		bounds[i] = &boundEntry{bound: b, extract: extract}
	}

	// Plan the leases point-major in chunk order. The wire spec pins the
	// resolved metric names so a worker (and the cache key) can never
	// disagree with the coordinator about what to extract; the PointResult
	// keeps the original point spec untouched.
	stats := &Stats{Points: len(points)}
	var leases []*lease
	wireSpecs := make([]scenario.Spec, len(points))
	results := make(map[int][][]uint64) // lease id → trial vectors

	// Adaptive sizing: run the first chunk of the first point inline as a
	// timed probe, then scale the remaining chunks so one lease takes about
	// TargetLeaseDuration. Only lease boundaries move — the merge
	// concatenates chunk vectors in (point, trial) order, so the output
	// stays byte-identical to any other chunking.
	probeHi := 0
	var probeVals [][]uint64
	if adaptive && trials > chunk {
		probeHi = chunk
		start := time.Now()
		probeVals = PackVals(bounds[0].bound.RunTrialValues(bounds[0].extract, 0, probeHi, cfg.InlineWorkers))
		elapsed := time.Since(start)
		target := cfg.TargetLeaseDuration
		if target <= 0 {
			target = DefaultTargetLeaseDuration
		}
		if elapsed > 0 {
			scaled := int(float64(probeHi) * float64(target) / float64(elapsed))
			if scaled < 1 {
				scaled = 1
			}
			if scaled > MaxAdaptiveChunk {
				scaled = MaxAdaptiveChunk
			}
			chunk = scaled
		}
	}

	for i, pt := range points {
		ws := pt.Spec
		ws.Metrics = names
		wireSpecs[i] = ws
		lo := 0
		if i == 0 && probeHi > 0 {
			// The probe is point 0's first lease, already resolved.
			l := &lease{id: len(leases), point: 0, lo: 0, hi: probeHi,
				key: LeaseKey(ws, ws.Seed, 0, probeHi)}
			leases = append(leases, l)
			results[l.id] = probeVals
			stats.Inline++
			lo = probeHi
		}
		for ; lo < trials; lo += chunk {
			hi := lo + chunk
			if hi > trials {
				hi = trials
			}
			l := &lease{id: len(leases), point: i, lo: lo, hi: hi,
				key: LeaseKey(ws, ws.Seed, lo, hi)}
			leases = append(leases, l)
		}
	}
	stats.Leases = len(leases)

	// Serve what the cache already knows (the probe lease, if any, is
	// already resolved).
	var todo []*lease
	for _, l := range leases {
		if _, done := results[l.id]; done {
			continue
		}
		if cfg.Cache != nil {
			if vals, ok := cfg.Cache.Get(l.key); ok {
				results[l.id] = vals
				stats.FromCache++
				continue
			}
		}
		todo = append(todo, l)
	}

	record := func(l *lease, vals [][]uint64) {
		results[l.id] = vals
		if cfg.Cache != nil {
			cfg.Cache.Put(l.key, vals)
		}
	}
	inline := func(l *lease) {
		stats.Inline++
		record(l, PackVals(bounds[l.point].bound.RunTrialValues(bounds[l.point].extract, l.lo, l.hi, cfg.InlineWorkers)))
	}

	if err := dispatchLeases(todo, wireSpecs, cfg, stats, record, inline); err != nil {
		return nil, nil, err
	}

	// Merge: per point, concatenate the chunk vectors in chunk order and
	// replay the in-process fold.
	out := &scenario.SweepResult{Spec: spec}
	for _, ax := range spec.Sweep {
		out.Axes = append(out.Axes, ax.Name)
	}
	byPoint := make([][][]float64, len(points))
	for i := range byPoint {
		byPoint[i] = make([][]float64, 0, trials)
	}
	for _, l := range leases {
		vals, ok := results[l.id]
		if !ok || len(vals) != l.hi-l.lo {
			return nil, nil, fmt.Errorf("distrib: lease %d (point %d trials [%d,%d)) yielded %d vectors, want %d",
				l.id, l.point, l.lo, l.hi, len(vals), l.hi-l.lo)
		}
		byPoint[l.point] = append(byPoint[l.point], UnpackVals(vals)...)
	}
	for i, pt := range points {
		out.Points = append(out.Points, scenario.PointResult{
			Spec: pt.Spec, Coords: pt.Coords, Trials: trials,
			Metrics: scenario.FoldMetrics(names, defs, trials, byPoint[i]),
		})
	}
	return out, stats, nil
}

// dispatchLeases drives the worker fleet over the todo list: every worker
// gets a manager goroutine pulling from one shared lease channel, lost
// workers (transport error or lease timeout) have their in-flight lease
// reassigned, and when no workers remain the leftovers run inline — a
// killed worker can change wall clock, never output.
func dispatchLeases(todo []*lease, wireSpecs []scenario.Spec, cfg Config, stats *Stats,
	record func(*lease, [][]uint64), inline func(*lease)) error {
	if len(todo) == 0 {
		return nil
	}
	if len(cfg.Workers) == 0 {
		for _, l := range todo {
			inline(l)
		}
		return nil
	}
	timeout := cfg.LeaseTimeout
	if timeout <= 0 {
		timeout = DefaultLeaseTimeout
	}

	// Requeues keep the lease channel at most len(todo) deep (a lease is
	// queued, assigned, or resolved — never two at once), and each lease
	// has exactly one terminal outcome while lost outcomes consume a
	// worker each, so both channels are sized to never block a sender.
	leaseCh := make(chan *lease, len(todo))
	outcomes := make(chan outcome, len(todo)+len(cfg.Workers))
	for _, l := range todo {
		leaseCh <- l
	}
	var dispatched atomic.Int64
	for _, w := range cfg.Workers {
		go manage(w, wireSpecs, leaseCh, outcomes, timeout, &dispatched)
	}
	defer func() { stats.Dispatched = int(dispatched.Load()) }()

	live := len(cfg.Workers)
	pending := len(todo)
	var firstErr error
	for pending > 0 && live > 0 && firstErr == nil {
		o := <-outcomes
		switch {
		case o.lost:
			stats.LostWorker++
			live--
			if o.l != nil {
				stats.Retries++
				leaseCh <- o.l
			}
		case o.err != nil:
			firstErr = o.err
		default:
			record(o.l, o.vals)
			pending--
		}
	}
	// Unblock the surviving managers. Drain first so an abort (or the
	// all-workers-lost fallback) does not leave them grinding stale work.
	remaining := drain(leaseCh)
	close(leaseCh)
	if firstErr != nil {
		return firstErr
	}
	for _, l := range remaining {
		inline(l)
	}
	return nil
}

// drain empties the lease channel without closing it.
func drain(ch chan *lease) []*lease {
	var out []*lease
	for {
		select {
		case l := <-ch:
			out = append(out, l)
		default:
			return out
		}
	}
}

// recvMsg is one frame (or stream error) from a worker's reader.
type recvMsg struct {
	m   Msg
	err error
}

// manage drives one worker: send a lease, await its reply under the
// timeout, repeat. Any transport error or timeout retires the worker —
// the transport is closed so a straggling reply can never surface later,
// which is what makes duplicate results impossible and reassignment safe.
func manage(t Transport, wireSpecs []scenario.Spec, leaseCh chan *lease, outcomes chan<- outcome,
	timeout time.Duration, dispatched *atomic.Int64) {
	recvCh := make(chan recvMsg, 4)
	go func() {
		for {
			var m Msg
			if err := t.Recv(&m); err != nil {
				recvCh <- recvMsg{err: err}
				return
			}
			recvCh <- recvMsg{m: m}
		}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for l := range leaseCh {
		spec := wireSpecs[l.point]
		dispatched.Add(1)
		if err := t.Send(&Msg{Type: msgLease, ID: l.id, Spec: &spec, Lo: l.lo, Hi: l.hi}); err != nil {
			t.Close()
			outcomes <- outcome{l: l, lost: true}
			return
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(timeout)
		select {
		case rm := <-recvCh:
			switch {
			case rm.err != nil:
				t.Close()
				outcomes <- outcome{l: l, lost: true}
				return
			case rm.m.Type == msgError && rm.m.ID == l.id:
				outcomes <- outcome{l: l, err: fmt.Errorf("distrib: lease %d (point %d trials [%d,%d)): %s",
					l.id, l.point, l.lo, l.hi, rm.m.Err)}
			case rm.m.Type == msgResult && rm.m.ID == l.id:
				outcomes <- outcome{l: l, vals: rm.m.Vals}
			default:
				// Protocol confusion (wrong id, unexpected type): the worker
				// can no longer be trusted to pair replies with leases.
				t.Close()
				outcomes <- outcome{l: l, lost: true}
				return
			}
		case <-timer.C:
			t.Close()
			outcomes <- outcome{l: l, lost: true}
			return
		}
	}
	t.Send(&Msg{Type: msgBye})
}

package distrib

import (
	"fmt"
	"io"
	"net"
	"os"

	"repro/internal/scenario"
)

// boundEntry caches one resolved point spec on the worker: consecutive
// leases of the same sweep point (different trial ranges) rebind nothing
// — in particular a topology graph and its route plane are built once.
type boundEntry struct {
	bound   *scenario.Bound
	extract []func(*scenario.Result) float64
}

// bindSpec resolves a lease's spec exactly as the in-process executor
// does: metrics first (coordinator-resolved names travel in the spec),
// then the scenario, then the extractors.
func bindSpec(spec scenario.Spec) (*boundEntry, error) {
	_, defs, err := scenario.ResolveMetrics(spec)
	if err != nil {
		return nil, err
	}
	b, err := scenario.Bind(spec)
	if err != nil {
		return nil, err
	}
	extract, err := b.MetricExtractors(defs)
	if err != nil {
		return nil, err
	}
	return &boundEntry{bound: b, extract: extract}, nil
}

// runLease executes one lease's trial range and returns the per-trial
// metric vectors in seed order. A panicking trial (annotated by the
// runner with its index) is converted into an error: lease failures of
// this kind are deterministic, so the coordinator aborts instead of
// retrying.
func runLease(bound *boundEntry, lo, hi int) (vals [][]float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("distrib: lease [%d,%d) panicked: %v", lo, hi, r)
		}
	}()
	return bound.bound.RunTrialValues(bound.extract, lo, hi, 0), nil
}

// Serve runs the worker side of the protocol on one transport until the
// coordinator says bye or the stream closes: answer the hello, then turn
// every lease into a result (or a deterministic error). The worker runs
// one lease at a time — parallelism inside a lease comes from the
// process-wide trial pool, and parallelism across leases from the
// coordinator driving many workers.
func Serve(t Transport) error {
	var m Msg
	if err := t.Recv(&m); err != nil {
		return fmt.Errorf("distrib: worker hello: %w", err)
	}
	if m.Type != msgHello || m.Version != Version {
		// Answer with our version anyway so the coordinator's error names
		// both sides, then refuse.
		t.Send(&Msg{Type: msgHello, Version: Version})
		return fmt.Errorf("distrib: coordinator hello %q v%d (want v%d)", m.Type, m.Version, Version)
	}
	if err := t.Send(&Msg{Type: msgHello, Version: Version}); err != nil {
		return err
	}

	bounds := map[string]*boundEntry{}
	for {
		if err := t.Recv(&m); err != nil {
			if err == io.EOF {
				return nil // coordinator went away; nothing to clean up
			}
			return err
		}
		switch m.Type {
		case msgBye:
			return nil
		case msgLease:
			if m.Spec == nil {
				return fmt.Errorf("distrib: lease %d without a spec", m.ID)
			}
			reply := handleLease(bounds, &m)
			if err := t.Send(reply); err != nil {
				return err
			}
		default:
			return fmt.Errorf("distrib: unexpected %q message", m.Type)
		}
	}
}

// handleLease resolves (with caching) and runs one lease.
func handleLease(bounds map[string]*boundEntry, m *Msg) *Msg {
	key := scenario.SpecHash(*m.Spec)
	entry, ok := bounds[key]
	if !ok {
		var err error
		if entry, err = bindSpec(*m.Spec); err != nil {
			return &Msg{Type: msgError, ID: m.ID, Err: err.Error()}
		}
		// The cache is per sweep: a handful of points, each bound once. A
		// pathological session cycling thousands of specs just starts over.
		if len(bounds) >= 256 {
			clear(bounds)
		}
		bounds[key] = entry
	}
	vals, err := runLease(entry, m.Lo, m.Hi)
	if err != nil {
		return &Msg{Type: msgError, ID: m.ID, Err: err.Error()}
	}
	return &Msg{Type: msgResult, ID: m.ID, Vals: PackVals(vals)}
}

// ServeStdio serves one session over the process's stdin/stdout — the
// worker mode amrun -distribute spawns and amworker defaults to.
func ServeStdio() error {
	return Serve(NewStreamTransport(os.Stdin, os.Stdout))
}

// ServeTCP accepts connections on ln and serves each in its own
// goroutine until the listener closes — the amworker -listen mode.
func ServeTCP(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			if err := Serve(NewStreamTransport(conn, conn, conn)); err != nil {
				fmt.Fprintln(os.Stderr, "amworker:", err)
			}
		}()
	}
}

package distrib

import (
	"testing"
	"time"

	"repro/internal/scenario"
)

// Real worker processes (this test binary re-exec'd in stdio-worker mode,
// see TestMain) over the full quick suite: the distributed result must be
// identical to the in-process run.
func TestProcessWorkersMatchLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	for _, spec := range quickSpecs() {
		// One worker fleet per run: a Run consumes its workers (the
		// coordinator ends the session with bye), exactly as amrun does.
		procs := spawnProcWorkers(t, 3)
		local := mustRunLocal(t, spec)
		dist, stats, err := Run(spec, Config{Workers: transports(procs), ChunkSize: 3})
		if err != nil {
			t.Fatalf("spec %s: %v", spec.Name, err)
		}
		assertSameResult(t, spec, local, dist)
		if stats.Dispatched == 0 {
			t.Fatalf("spec %s: nothing dispatched to the workers: %+v", spec.Name, stats)
		}
		if stats.LostWorker != 0 {
			t.Fatalf("spec %s: healthy workers reported lost: %+v", spec.Name, stats)
		}
	}
}

// Kill one worker mid-sweep: the run must finish with byte-identical
// output — a lost worker changes wall clock, never results.
func TestKilledWorkerDoesNotChangeOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	spec := scenario.Spec{Name: "killed", Protocol: scenario.Dag, N: 12, T: 5, Lambda: 1, K: 31,
		Attack: "private-chain", Trials: 48, Seed: 9,
		Metrics: []string{"ok", "validity", "decide-time", "byz-prefix-share"},
		Sweep:   []scenario.Axis{{Name: "lambda", Values: []scenario.Value{{Num: 0.5}, {Num: 1}, {Num: 2}}}}}
	local := mustRunLocal(t, spec)

	procs := spawnProcWorkers(t, 3)
	victim := procs[0]
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(30 * time.Millisecond)
		victim.Kill()
	}()

	dist, stats, err := Run(spec, Config{
		Workers:      transports(procs),
		ChunkSize:    4,
		LeaseTimeout: 5 * time.Second,
	})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, spec, local, dist)
	// The victim may in rare schedules die between leases with nothing in
	// flight (lost but no retry), but it must at least be noticed.
	if stats.LostWorker == 0 {
		t.Fatalf("killed worker was never declared lost: %+v", stats)
	}
	t.Logf("kill run stats: %+v", stats)
}

// Warm-cache re-run: after one complete distributed run into a cache
// directory, a second run must serve >= 90%% of its leases from cache
// (here: all of them) and still match the local run.
func TestWarmCacheRerun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	spec := scenario.Spec{Name: "warm", Protocol: scenario.Chain, N: 10, T: 3, Lambda: 1, K: 21,
		Attack: "tiebreak", Trials: 24, Seed: 12,
		Sweep: []scenario.Axis{{Name: "lambda", Values: []scenario.Value{{Num: 0.5}, {Num: 1}}}}}
	local := mustRunLocal(t, spec)
	dir := t.TempDir()

	procs := spawnProcWorkers(t, 2)
	cold, err := NewCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, _, err := Run(spec, Config{Workers: transports(procs), Cache: cold, ChunkSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, spec, local, r1)

	warm, err := NewCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	procs2 := spawnProcWorkers(t, 2)
	r2, s2, err := Run(spec, Config{Workers: transports(procs2), Cache: warm, ChunkSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, spec, local, r2)
	if s2.Leases == 0 || s2.FromCache*10 < s2.Leases*9 {
		t.Fatalf("warm re-run served %d/%d leases from cache, want >= 90%%", s2.FromCache, s2.Leases)
	}
}

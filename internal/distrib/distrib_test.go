package distrib

import (
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/scenario"
)

// TestMain doubles this test binary as a worker process: when the helper
// env var is set, the "test" is a stdio amworker. SpawnN re-execs the
// binary with the variable set, so the multi-process tests exercise the
// real spawn/pipe/frame path without building a separate binary.
func TestMain(m *testing.M) {
	if os.Getenv("DISTRIB_STDIO_WORKER") == "1" {
		if err := ServeStdio(); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// spawnProcWorkers starts n real worker processes backed by this test
// binary and returns them with a cleanup.
func spawnProcWorkers(t *testing.T, n int) []*Proc {
	t.Helper()
	procs, err := SpawnN(n, []string{os.Args[0]}, append(os.Environ(), "DISTRIB_STDIO_WORKER=1"))
	if err != nil {
		t.Fatalf("spawn workers: %v", err)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Kill()
			p.Close()
		}
	})
	return procs
}

func transports(procs []*Proc) []Transport {
	ts := make([]Transport, len(procs))
	for i, p := range procs {
		ts[i] = p
	}
	return ts
}

// quickSpecs is the differential suite: every substrate (chain, dag,
// sync), sweeps over numeric and string axes, mean and rate metrics
// (NaN-bearing decide-time included), heterogeneous rates, a sparse
// topology, and a windowed run.
func quickSpecs() []scenario.Spec {
	return []scenario.Spec{
		{Name: "dag-private", Protocol: scenario.Dag, N: 10, T: 4, Lambda: 1, K: 21,
			Attack: "private-chain", Trials: 10, Seed: 1,
			Metrics: []string{"ok", "validity", "decide-time", "byz-prefix-share"},
			Sweep:   []scenario.Axis{{Name: "lambda", Values: []scenario.Value{{Num: 0.5}, {Num: 1}}}}},
		{Name: "chain-tiebreak", Protocol: scenario.Chain, N: 8, T: 3, Lambda: 0.5, K: 15,
			Attack: "tiebreak", Trials: 9, Seed: 7,
			Sweep: []scenario.Axis{{Name: "tiebreak", Values: []scenario.Value{
				{Str: "random", IsStr: true}, {Str: "adversarial", IsStr: true}}}}},
		{Name: "sync-rounds", Protocol: scenario.Sync, N: 7, T: 2, Trials: 8, Seed: 3,
			Inputs:  "split:3",
			Metrics: []string{"ok", "agreement", "duration"}},
		{Name: "dag-topology", Protocol: scenario.Dag, N: 10, T: 4, Lambda: 1, K: 21,
			Attack: "private-chain", Topology: "ring", TopologyParams: map[string]float64{"k": 2},
			LinkDelay: 0.1, Trials: 6, Seed: 11,
			Metrics: []string{"ok", "validity", "vis-lag"}},
		{Name: "chain-windowed", Protocol: scenario.Chain, N: 10, T: 3, Lambda: 1, K: 21,
			Attack: "flip", Window: 30, Trials: 6, Seed: 5,
			Metrics: []string{"ok", "decide-time", "mem-high-water"}},
	}
}

// mustRunLocal executes the spec on the in-process executor.
func mustRunLocal(t *testing.T, spec scenario.Spec) *scenario.SweepResult {
	t.Helper()
	res, err := scenario.RunSpec(spec, scenario.Options{})
	if err != nil {
		t.Fatalf("local run %s: %v", spec.Name, err)
	}
	return res
}

// assertSameResult pins distributed output to the single-process run:
// reflect.DeepEqual over the full SweepResult covers every float bit (the
// rendered tables and JSON are pure functions of this structure).
func assertSameResult(t *testing.T, spec scenario.Spec, local, dist *scenario.SweepResult) {
	t.Helper()
	if !reflect.DeepEqual(local, dist) {
		t.Fatalf("spec %s: distributed result differs from single-process run\nlocal: %+v\ndist:  %+v",
			spec.Name, local, dist)
	}
}

// Loopback (in-process goroutine workers over synchronous pipes): the
// full quick suite must merge byte-identically at several worker counts
// and chunk sizes.
func TestLoopbackMatchesLocal(t *testing.T) {
	for _, spec := range quickSpecs() {
		local := mustRunLocal(t, spec)
		for _, cfg := range []Config{
			{Workers: []Transport{Loopback()}, ChunkSize: 4},
			{Workers: []Transport{Loopback(), Loopback(), Loopback()}, ChunkSize: 3},
			{ChunkSize: 5}, // no workers: pure inline path
		} {
			dist, stats, err := Run(spec, cfg)
			if err != nil {
				t.Fatalf("spec %s: %v", spec.Name, err)
			}
			assertSameResult(t, spec, local, dist)
			if stats.Leases == 0 || stats.Points != len(dist.Points) {
				t.Fatalf("spec %s: implausible stats %+v", spec.Name, stats)
			}
			for _, w := range cfg.Workers {
				w.Close()
			}
		}
	}
}

// Deterministic lease failures (here: a metric invalid for the bound
// protocol at extraction... impossible post-Bind, so use a worker-side
// panic) must abort with the lease identified, not retry forever.
func TestWorkerErrorAborts(t *testing.T) {
	// An order metric with window > 0 fails at MetricExtractors — but the
	// coordinator pre-binds and would catch it locally. Exercise the wire
	// path instead: a spec whose trial panics on the worker. No registry
	// scenario panics by construction, so fake it at the transport level.
	ft := newScriptedTransport()
	ft.script = func(m *Msg) *Msg {
		if m.Type == msgLease {
			return &Msg{Type: msgError, ID: m.ID, Err: "synthetic trial panic"}
		}
		return nil
	}
	spec := scenario.Spec{Protocol: scenario.Dag, N: 6, T: 0, Lambda: 1, K: 9, Trials: 4, Seed: 1}
	_, _, err := Run(spec, Config{Workers: []Transport{ft}, ChunkSize: 2})
	if err == nil {
		t.Fatalf("worker error did not abort the run")
	}
}

// scriptedTransport fakes a worker for failure-path tests.
type scriptedTransport struct {
	script func(*Msg) *Msg // reply per received message; nil = no reply
	inbox  chan *Msg
	closed chan struct{}
}

func newScriptedTransport() *scriptedTransport {
	return &scriptedTransport{inbox: make(chan *Msg, 16), closed: make(chan struct{})}
}

func (s *scriptedTransport) Send(m *Msg) error {
	if reply := s.script(m); reply != nil {
		s.inbox <- reply
	}
	return nil
}

func (s *scriptedTransport) Recv(m *Msg) error {
	select {
	case r := <-s.inbox:
		*m = *r
		return nil
	case <-s.closed:
		return fmt.Errorf("closed")
	}
}

func (s *scriptedTransport) Close() error {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	return nil
}

// A worker that accepts leases but never answers must be timed out and
// its lease reassigned — output unchanged, retries counted.
func TestLeaseTimeoutReassigns(t *testing.T) {
	spec := scenario.Spec{Name: "timeout", Protocol: scenario.Dag, N: 8, T: 2, Lambda: 1, K: 15,
		Attack: "private-chain", Trials: 8, Seed: 2}
	local := mustRunLocal(t, spec)

	stuck := newScriptedTransport()
	stuck.script = func(m *Msg) *Msg { return nil } // swallow every lease
	good := Loopback()
	defer good.Close()

	dist, stats, err := Run(spec, Config{
		Workers:      []Transport{stuck, good},
		ChunkSize:    2,
		LeaseTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, spec, local, dist)
	if stats.LostWorker == 0 {
		t.Fatalf("stuck worker was never declared lost: %+v", stats)
	}
	if stats.Retries == 0 {
		t.Fatalf("timed-out lease was not reassigned: %+v", stats)
	}
}

// When every worker is lost, the coordinator finishes inline — the run
// degrades to single-process, it does not fail.
func TestAllWorkersLostFallsBackInline(t *testing.T) {
	spec := scenario.Spec{Name: "fallback", Protocol: scenario.Chain, N: 8, T: 2, Lambda: 1, K: 15,
		Trials: 6, Seed: 4}
	local := mustRunLocal(t, spec)
	stuck := newScriptedTransport()
	stuck.script = func(m *Msg) *Msg { return nil }
	dist, stats, err := Run(spec, Config{
		Workers: []Transport{stuck}, ChunkSize: 2, LeaseTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, spec, local, dist)
	if stats.Inline == 0 || stats.LostWorker != 1 {
		t.Fatalf("expected inline fallback after losing the only worker: %+v", stats)
	}
}

// Checkpointed sweeps cannot cross process boundaries and must be
// rejected eagerly.
func TestCheckpointRejected(t *testing.T) {
	spec := scenario.Spec{Protocol: scenario.Chain, N: 8, T: 2, Lambda: 1, K: 15,
		Checkpoint: true, Trials: 4}
	if _, _, err := Run(spec, Config{}); err == nil {
		t.Fatalf("checkpointed spec accepted")
	}
}

// Bind errors must surface before any lease is dispatched, with the same
// message the in-process executor produces.
func TestBindErrorsMatchLocal(t *testing.T) {
	spec := scenario.Spec{Protocol: "nonesuch", N: 8, Trials: 2}
	_, localErr := scenario.RunSpec(spec, scenario.Options{})
	_, _, distErr := Run(spec, Config{})
	if localErr == nil || distErr == nil {
		t.Fatalf("invalid spec accepted: local=%v dist=%v", localErr, distErr)
	}
	if localErr.Error() != distErr.Error() {
		t.Fatalf("error text diverged:\nlocal: %v\ndist:  %v", localErr, distErr)
	}
}

// Duplicate sweep axes are rejected on the distributed path too.
func TestDuplicateAxisRejected(t *testing.T) {
	spec := scenario.Spec{Protocol: scenario.Dag, N: 8, Lambda: 1, K: 15, Sweep: []scenario.Axis{
		{Name: "lambda", Values: []scenario.Value{{Num: 0.5}}},
		{Name: "lambda", Values: []scenario.Value{{Num: 1}}},
	}}
	if _, _, err := Run(spec, Config{}); err == nil {
		t.Fatalf("duplicate sweep axis accepted")
	}
}

// Adaptive chunk sizing (no explicit -chunk, no cache) must keep output
// byte-identical to the fixed-chunk run — only lease boundaries move —
// and the probe must count as one inline lease.
func TestAdaptiveChunkingByteIdentical(t *testing.T) {
	spec := scenario.Spec{Name: "adaptive", Protocol: scenario.Chain, N: 8, T: 2, Lambda: 1, K: 15,
		Attack: "fork", Trials: 40, Seed: 3}
	local := mustRunLocal(t, spec)
	for _, target := range []time.Duration{time.Nanosecond, 50 * time.Millisecond, time.Second} {
		w := Loopback()
		dist, stats, err := Run(spec, Config{
			Workers: []Transport{w}, TargetLeaseDuration: target})
		w.Close()
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		assertSameResult(t, spec, local, dist)
		if stats.Inline < 1 {
			t.Fatalf("target %v: probe lease not counted inline: %+v", target, stats)
		}
	}
}

// A configured cache disables adaptive sizing: every lease key must be the
// fixed-chunk key, so a warm rerun is served entirely from cache.
func TestAdaptiveDisabledWithCache(t *testing.T) {
	spec := scenario.Spec{Name: "adaptive-cache", Protocol: scenario.Chain, N: 8, T: 2, Lambda: 1, K: 15,
		Trials: 40, Seed: 9}
	cache, err := NewCache("", 0)
	if err != nil {
		t.Fatal(err)
	}
	cold, stats, err := Run(spec, Config{Cache: cache, TargetLeaseDuration: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FromCache != 0 {
		t.Fatalf("cold run served from cache: %+v", stats)
	}
	warm, stats, err := Run(spec, Config{Cache: cache, TargetLeaseDuration: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FromCache != stats.Leases {
		t.Fatalf("warm run not fully cache-served (adaptive chunking leaked in?): %+v", stats)
	}
	assertSameResult(t, spec, cold, warm)
}

// LeaseKey ignores the spec's total trial count and display name: a
// budget escalation reuses its low-budget chunks.
func TestLeaseKeyIgnoresTrialsAndName(t *testing.T) {
	a := scenario.Spec{Name: "a", Protocol: scenario.Chain, N: 8, T: 2, Lambda: 1, K: 15, Trials: 16}
	b := a
	b.Name, b.Doc, b.Trials = "b", "other doc", 64
	if LeaseKey(a, 1, 0, 16) != LeaseKey(b, 1, 0, 16) {
		t.Fatal("lease key depends on trials/name/doc")
	}
	c := a
	c.Lambda = 2
	if LeaseKey(a, 1, 0, 16) == LeaseKey(c, 1, 0, 16) {
		t.Fatal("lease key ignores a simulation parameter")
	}
}

package distrib

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/scenario"
)

func TestLeaseKeyShape(t *testing.T) {
	spec := scenario.Spec{Protocol: scenario.Dag, N: 8, Lambda: 1, K: 15, Trials: 8}
	base := LeaseKey(spec, 1, 0, 4)
	if len(base) != 64 { // hex sha256
		t.Fatalf("lease key %q is not a sha256 hex digest", base)
	}
	// Every content input must move the key...
	for name, k := range map[string]string{
		"seed": LeaseKey(spec, 2, 0, 4),
		"lo":   LeaseKey(spec, 1, 1, 4),
		"hi":   LeaseKey(spec, 1, 0, 5),
		"spec": LeaseKey(scenario.Spec{Protocol: scenario.Dag, N: 9, Lambda: 1, K: 15, Trials: 8}, 1, 0, 4),
	} {
		if k == base {
			t.Fatalf("changing %s did not change the lease key", name)
		}
	}
	// ...and nothing else: the same inputs re-derive the same key.
	if LeaseKey(spec, 1, 0, 4) != base {
		t.Fatalf("lease key is not deterministic")
	}
}

func TestCacheHitMissEvict(t *testing.T) {
	c, err := NewCache("", 2)
	if err != nil {
		t.Fatal(err)
	}
	v := func(n uint64) [][]uint64 { return [][]uint64{{n}} }
	if _, ok := c.Get("a"); ok {
		t.Fatalf("empty cache hit")
	}
	c.Put("a", v(1))
	c.Put("b", v(2))
	if got, ok := c.Get("a"); !ok || got[0][0] != 1 {
		t.Fatalf("a: got %v ok=%v", got, ok)
	}
	// a was just used, so inserting c evicts b (the LRU tail).
	c.Put("c", v(3))
	if _, ok := c.Get("b"); ok {
		t.Fatalf("b survived eviction past the bound")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatalf("recently-used a was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Live != 2 {
		t.Fatalf("stats %+v, want 1 eviction and 2 live", st)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats %+v, want 2 hits / 2 misses", st)
	}
}

func TestCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	vals := [][]uint64{{1, 2}, {3, 4}}

	c1, err := NewCache(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	c1.Put("k1", vals)

	// A fresh cache over the same directory serves the entry from disk.
	c2, err := NewCache(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("k1")
	if !ok || !reflect.DeepEqual(got, vals) {
		t.Fatalf("disk reload: got %v ok=%v", got, ok)
	}

	// Eviction drops only the memory copy; the next Get reloads from disk.
	c3, err := NewCache(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	c3.Put("k1", vals)
	c3.Put("k2", [][]uint64{{9}})
	if st := c3.Stats(); st.Evictions != 1 {
		t.Fatalf("stats %+v, want one eviction", st)
	}
	if got, ok := c3.Get("k1"); !ok || !reflect.DeepEqual(got, vals) {
		t.Fatalf("evicted disk-backed entry did not reload: got %v ok=%v", got, ok)
	}
}

func TestCacheCorruptFileIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("bad"); ok {
		t.Fatalf("corrupt cache file served as a hit")
	}
	// A key mismatch inside a well-formed file is also a miss.
	if err := os.WriteFile(filepath.Join(dir, "sneaky.json"),
		[]byte(`{"key":"other","vals":[[1]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("sneaky"); ok {
		t.Fatalf("mismatched cache file served as a hit")
	}
}

// A cached distributed run must return the identical result with zero
// dispatches, and a shared disk cache must carry across coordinators.
func TestRunWithCache(t *testing.T) {
	spec := scenario.Spec{Name: "cached", Protocol: scenario.Dag, N: 8, T: 2, Lambda: 1, K: 15,
		Attack: "private-chain", Trials: 10, Seed: 6,
		Sweep: []scenario.Axis{{Name: "lambda", Values: []scenario.Value{{Num: 0.5}, {Num: 1}}}}}
	local := mustRunLocal(t, spec)
	dir := t.TempDir()

	cold, err := NewCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := Loopback()
	defer w.Close()
	r1, s1, err := Run(spec, Config{Workers: []Transport{w}, Cache: cold, ChunkSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, spec, local, r1)
	if s1.FromCache != 0 || s1.Dispatched == 0 {
		t.Fatalf("cold run stats %+v", s1)
	}

	// Warm run, new coordinator and cache instance, no workers at all: every
	// lease must come from the shared directory. The chunk size must match —
	// a different chunking addresses different content.
	warm, err := NewCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := Run(spec, Config{Cache: warm, ChunkSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, spec, local, r2)
	if s2.FromCache != s2.Leases || s2.Dispatched != 0 || s2.Inline != 0 {
		t.Fatalf("warm run was not fully cache-served: %+v", s2)
	}

	// Changing the seed must miss: content addresses cover it.
	spec2 := spec
	spec2.Seed = 7
	_, s3, err := Run(spec2, Config{Cache: warm, ChunkSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s3.FromCache != 0 {
		t.Fatalf("different seed hit the cache: %+v", s3)
	}
}

func BenchmarkLeaseKey(b *testing.B) {
	spec := scenario.Spec{Protocol: scenario.Dag, N: 32, Lambda: 1, K: 21, Trials: 64}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = LeaseKey(spec, 1, 0, 16)
	}
}

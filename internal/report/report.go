// Package report renders experiment results. All presentation of the
// typed tables built by internal/experiments lives here: aligned
// monospace text and GitHub-flavoured markdown (byte-compatible with the
// committed golden output), machine-readable JSON and CSV, ASCII bar
// charts, and the textual form of evaluated prediction checks.
package report

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/experiments"
)

// TableText renders the table as aligned monospace text.
func TableText(t *experiments.Table) string {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	texts := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		texts[r] = make([]string, len(row))
		for i, cell := range row {
			texts[r][i] = cell.Text()
			if i < len(widths) && len(texts[r][i]) > widths[i] {
				widths[i] = len(texts[r][i])
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range texts {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// TableMarkdown renders the table as GitHub-flavoured markdown (used by
// `amexp -format md` to regenerate EXPERIMENTS.md sections).
func TableMarkdown(t *experiments.Table) string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Cols, " | ") + " |\n")
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		texts := make([]string, len(row))
		for i, cell := range row {
			texts[i] = cell.Text()
		}
		b.WriteString("| " + strings.Join(texts, " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n_%s_\n", t.Note)
	}
	return b.String()
}

// Bars renders one numeric column of the table as a horizontal bar chart
// — the textual "figure" form of a sweep. Bars scale to the column's
// maximum; width is the maximum bar length in characters. Non-numeric
// cells render as empty bars.
func Bars(t *experiments.Table, col, width int) string {
	if col < 0 || col >= len(t.Cols) || width < 1 {
		return ""
	}
	maxVal := 0.0
	vals := make([]float64, len(t.Rows))
	oks := make([]bool, len(t.Rows))
	for i, row := range t.Rows {
		if col < len(row) {
			vals[i], oks[i] = row[col].Value()
			if oks[i] && vals[i] > maxVal {
				maxVal = vals[i]
			}
		}
	}
	labels := make([]string, len(t.Rows))
	labelW := 0
	for i, row := range t.Rows {
		if len(row) > 0 {
			labels[i] = row[0].Text()
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s\n", t.Cols[col], t.Cols[0])
	for i := range t.Rows {
		n := 0
		if oks[i] && maxVal > 0 {
			n = int(vals[i]/maxVal*float64(width) + 0.5)
		}
		fmt.Fprintf(&b, "%-*s |%s%s", labelW, labels[i], strings.Repeat("█", n), strings.Repeat(" ", width-n))
		if oks[i] {
			fmt.Fprintf(&b, "| %.3g\n", vals[i])
		} else {
			b.WriteString("| -\n")
		}
	}
	return b.String()
}

// Header is the one-line experiment banner amexp prints above the tables.
func Header(r *experiments.Result) string {
	return fmt.Sprintf("### %s — %s (%s) [%v]\n\n", r.ID, r.Title, r.PaperRef, r.Elapsed.Round(time.Millisecond))
}

// Text renders the full experiment section: banner plus every table,
// each followed by a blank line.
func Text(r *experiments.Result) string {
	var b strings.Builder
	b.WriteString(Header(r))
	for _, t := range r.Tables {
		b.WriteString(TableText(t))
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the full experiment section as markdown.
func Markdown(r *experiments.Result) string {
	var b strings.Builder
	b.WriteString(Header(r))
	for _, t := range r.Tables {
		b.WriteString(TableMarkdown(t))
		b.WriteByte('\n')
	}
	return b.String()
}

// ChecksText renders the evaluated prediction checks of one result, one
// line per check plus a summary line.
func ChecksText(r *experiments.Result) string {
	results := r.EvalChecks()
	var b strings.Builder
	pass := 0
	for _, cr := range results {
		status := "FAIL"
		if cr.Pass {
			status = "pass"
			pass++
		}
		c := cr.Check
		if cr.Err != "" {
			fmt.Fprintf(&b, "%s  %s tbl %d (%d,%d): %s — %s\n", status, r.ID, c.Table, c.Row, c.Col, cr.Err, c.Ref)
			continue
		}
		tol := ""
		if c.Tol != 0 {
			tol = fmt.Sprintf(" ±%.3g", c.Tol)
		}
		fmt.Fprintf(&b, "%s  %s tbl %d (%d,%d): got %.4g %s %.4g%s — %s\n",
			status, r.ID, c.Table, c.Row, c.Col, cr.Got, c.Op, cr.Want, tol, c.Ref)
	}
	fmt.Fprintf(&b, "checks %s: %d pass, %d fail\n", r.ID, pass, len(results)-pass)
	return b.String()
}

package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// fixture builds a small table exercising every cell kind.
func fixture() *experiments.Table {
	tbl := experiments.NewTable("title", "a", "bb", "rate")
	tbl.AddRow(1, 2.5, experiments.Cell{Kind: experiments.KindRatio, Num: 17, Den: 20})
	tbl.AddRow("x", true, experiments.Cell{Kind: experiments.KindRatio})
	tbl.Note = "n"
	return tbl
}

// TestTableTextGolden pins the exact text rendering — the format the
// pre-refactor Table.String produced and the committed docs use.
func TestTableTextGolden(t *testing.T) {
	got := TableText(fixture())
	lines := strings.Split(got, "\n")
	wantLines := []string{
		"== title ==",
		"a  bb    rate        ",
		"-  ----  ------------",
		"1  2.5   0.85 (17/20)",
		"x  true  n/a         ",
		"note: n",
		"",
	}
	if len(lines) != len(wantLines) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(wantLines), got)
	}
	for i := range wantLines {
		if lines[i] != wantLines[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], wantLines[i])
		}
	}
}

func TestTableMarkdownGolden(t *testing.T) {
	want := "**title**\n\n" +
		"| a | bb | rate |\n" +
		"| --- | --- | --- |\n" +
		"| 1 | 2.5 | 0.85 (17/20) |\n" +
		"| x | true | n/a |\n" +
		"\n_n_\n"
	if got := TableMarkdown(fixture()); got != want {
		t.Errorf("markdown mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestTableTextDegenerate covers the index-panic fixes: rows shorter and
// longer than Cols, and zero-length rows, must render without panicking.
func TestTableTextDegenerate(t *testing.T) {
	tbl := experiments.NewTable("t", "a", "b")
	tbl.Rows = [][]experiments.Cell{
		{{Kind: experiments.KindInt, Int: 1}},
		{},
		{{Kind: experiments.KindStr, Str: "x"}, {Kind: experiments.KindStr, Str: "y"}, {Kind: experiments.KindStr, Str: "z"}},
	}
	out := TableText(tbl)
	for _, wantSub := range []string{"1", "x  y  z"} {
		if !strings.Contains(out, wantSub) {
			t.Errorf("degenerate render missing %q:\n%s", wantSub, out)
		}
	}
	md := TableMarkdown(tbl)
	if !strings.Contains(md, "| x | y | z |") {
		t.Errorf("degenerate markdown wrong:\n%s", md)
	}
}

func TestBars(t *testing.T) {
	tbl := experiments.NewTable("t", "x", "rate")
	tbl.AddRow("a", experiments.Cell{Kind: experiments.KindRatio, Num: 20, Den: 20})
	tbl.AddRow("bb", experiments.Cell{Kind: experiments.KindRatio, Num: 10, Den: 20})
	tbl.AddRow("c", experiments.Cell{Kind: experiments.KindRatio})
	out := Bars(tbl, 1, 10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], strings.Repeat("█", 10)) {
		t.Errorf("full bar missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], strings.Repeat("█", 5)) || strings.Contains(lines[2], strings.Repeat("█", 6)) {
		t.Errorf("half bar wrong: %q", lines[2])
	}
	if !strings.Contains(lines[3], "| -") {
		t.Errorf("non-numeric row wrong: %q", lines[3])
	}
	if Bars(tbl, 9, 10) != "" || Bars(tbl, 1, 0) != "" || Bars(tbl, -1, 10) != "" {
		t.Error("invalid args not rejected")
	}
}

// TestBarsDegenerate: zero-length rows must not panic the label pass.
func TestBarsDegenerate(t *testing.T) {
	tbl := experiments.NewTable("t", "x", "rate")
	tbl.Rows = [][]experiments.Cell{
		{{Kind: experiments.KindStr, Str: "a"}, {Kind: experiments.KindFloat, Float: 1}},
		{},
		{{Kind: experiments.KindStr, Str: "c"}},
	}
	out := Bars(tbl, 1, 8)
	if !strings.Contains(out, "█") {
		t.Errorf("bars missing:\n%s", out)
	}
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != 4 {
		t.Errorf("expected header + 3 rows, got %d lines:\n%s", got, out)
	}
}

func TestChecksText(t *testing.T) {
	tbl := experiments.NewTable("t", "x")
	tbl.AddRow(0.8)
	tbl.Expect(0, 0, experiments.OpGe, 0.5, 0, "holds")
	tbl.Expect(0, 0, experiments.OpLe, 0.5, 0, "fails")
	r := experiments.NewResult("EX", "title", "ref", []*experiments.Table{tbl})
	out := ChecksText(r)
	for _, want := range []string{"pass  EX tbl 0 (0,0)", "FAIL  EX tbl 0 (0,0)", "checks EX: 1 pass, 1 fail"} {
		if !strings.Contains(out, want) {
			t.Errorf("checks text missing %q:\n%s", want, out)
		}
	}
}

// TestJSONRoundTrip: Result → JSON → Result → JSON must be byte-stable,
// and the decoded record must re-render to identical text.
func TestJSONRoundTrip(t *testing.T) {
	e, _ := experiments.ByID("E9")
	r := experiments.Run(e, experiments.Options{Quick: true, Seed: 1})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*experiments.Result{r}); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteJSON(&buf2, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("JSON round trip not byte-stable:\nfirst:\n%s\nsecond:\n%s", buf.Bytes(), buf2.Bytes())
	}
	if got, want := Text(decoded[0]), Text(r); got != want {
		t.Errorf("decoded record renders differently:\n%s\nvs\n%s", got, want)
	}
	if len(decoded[0].Checks) != len(r.Checks) {
		t.Errorf("checks lost in round trip: %d vs %d", len(decoded[0].Checks), len(r.Checks))
	}
}

func TestJSONLineCompact(t *testing.T) {
	e, _ := experiments.ByID("E9")
	r := experiments.Run(e, experiments.Options{Quick: true, Seed: 1})
	line, err := JSONLine(r)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(line, "\n") {
		t.Error("JSONLine is not a single line")
	}
	var decoded experiments.Result
	if err := json.Unmarshal([]byte(line), &decoded); err != nil {
		t.Fatalf("JSONLine not valid JSON: %v", err)
	}
	if decoded.ID != "E9" {
		t.Errorf("decoded id = %q", decoded.ID)
	}
}

func TestWriteCSV(t *testing.T) {
	r := experiments.NewResult("EX", "title", "ref", []*experiments.Table{fixture()})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*experiments.Result{r}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 2 rows × 3 cells
	if len(recs) != 7 {
		t.Fatalf("got %d records, want 7", len(recs))
	}
	if recs[0][0] != "experiment" || recs[1][0] != "EX" {
		t.Errorf("unexpected records: %v", recs[:2])
	}
	// ratio cell: value column holds 0.85, text column the full form
	if recs[1+2][7] != "0.85" || recs[1+2][8] != "0.85 (17/20)" {
		t.Errorf("ratio record wrong: %v", recs[3])
	}
	// n/a ratio: empty value
	if recs[1+5][7] != "" || recs[1+5][8] != "n/a" {
		t.Errorf("n/a record wrong: %v", recs[6])
	}
}

var elapsedRe = regexp.MustCompile(`(?m)^(### .*) \[[^\]]*\]$`)

// TestAmexpQuickGolden is the acceptance gate for the refactor: running
// every experiment at -quick scale with seed 1 must render (modulo the
// elapsed time in each banner) byte-identically to the committed golden
// output captured from the pre-refactor pipeline — and every ported paper
// prediction must hold.
func TestAmexpQuickGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run skipped in -short mode (runs all 23 experiments)")
	}
	want, err := os.ReadFile("testdata/amexp-quick.golden")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	failed := 0
	for _, e := range experiments.All() {
		r := experiments.Run(e, experiments.Options{Quick: true, Seed: 1})
		b.WriteString(Text(r))
		failed += experiments.FailedChecks(r.EvalChecks())
	}
	got := elapsedRe.ReplaceAllString(b.String(), "$1")
	if got != string(want) {
		t.Errorf("quick output diverged from golden (run `go run ./cmd/amexp -e all -quick` to inspect)")
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Errorf("first difference at line %d:\ngot:  %q\nwant: %q", i+1, gl[i], wl[i])
				break
			}
		}
	}
	if failed != 0 {
		t.Errorf("%d paper prediction(s) failed at quick scale", failed)
	}
}

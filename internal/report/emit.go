package report

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"

	"repro/internal/experiments"
)

// WriteJSON emits the results as one indented JSON array. The encoding
// round-trips: ReadJSON(WriteJSON(rs)) reproduces the records.
func WriteJSON(w io.Writer, results []*experiments.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// ReadJSON parses a JSON array written by WriteJSON.
func ReadJSON(r io.Reader) ([]*experiments.Result, error) {
	var out []*experiments.Result
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// JSONLine renders one result as a single-line JSON record — the form the
// bench harness logs so BENCH_*.json entries share this code path.
func JSONLine(r *experiments.Result) (string, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// WriteCSV emits every cell of every table in long form, one record per
// cell: experiment id, table index and title, row/col coordinates, the
// column name, the cell kind, its numeric value (empty when non-numeric),
// and its display text.
func WriteCSV(w io.Writer, results []*experiments.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "table", "table_title", "row", "col", "column", "kind", "value", "text"}); err != nil {
		return err
	}
	for _, r := range results {
		for ti, t := range r.Tables {
			for ri, row := range t.Rows {
				for ci, cell := range row {
					name := ""
					if ci < len(t.Cols) {
						name = t.Cols[ci]
					}
					val := ""
					if v, ok := cell.Value(); ok {
						val = strconv.FormatFloat(v, 'g', -1, 64)
					}
					rec := []string{
						r.ID, strconv.Itoa(ti), t.Title,
						strconv.Itoa(ri), strconv.Itoa(ci), name,
						string(cell.Kind), val, cell.Text(),
					}
					if err := cw.Write(rec); err != nil {
						return err
					}
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

package msgnet

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/appendmem"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/xrand"
)

var updateGolden = flag.Bool("update", false, "regenerate golden delivery traces")

// goldenGraph is the fixed trace topology: a 64-node small-world graph,
// the regime where flood and unicast paths both have real route choices.
func goldenGraph() *topology.Graph {
	return topology.WattsStrogatz(xrand.New(1234, 7), 64, 3, 0.3, 0.1)
}

// goldenTrial records the complete delivery trace of one seed: a flood
// from a seed-chosen origin plus two source-routed unicasts, every
// delivery as "(time, node, kind)" in arrival order, and the final
// traffic counters. The trace is a pure function of (graph, seed) and is
// pinned byte-for-byte against the pre-PR8 transport implementation.
func goldenTrial(g *topology.Graph, routes *topology.Routes, seed uint64) string {
	s := sim.New()
	nw := NewGossipWithRoutes(s, xrand.New(seed, 1), g, topology.DelayModel{Kind: topology.DelayLongTail}, routes)
	var b strings.Builder
	fmt.Fprintf(&b, "trial %d\n", seed)
	for i := 0; i < g.N(); i++ {
		i := i
		nw.Register(appendmem.NodeID(i), func(e Envelope) {
			fmt.Fprintf(&b, "%.12g %d %s %s\n", float64(s.Now()), i, e.Kind, e.Body)
		})
	}
	origin := appendmem.NodeID(seed % uint64(g.N()))
	nw.Broadcast(origin, "append", []byte("payload"))
	nw.Send(origin, appendmem.NodeID((int(origin)+g.N()/2)%g.N()), "ack", []byte("a"))
	nw.Send(appendmem.NodeID((int(origin)+1)%g.N()), origin, "ack", []byte("b"))
	s.Run()
	st := nw.Stats()
	fmt.Fprintf(&b, "stats %d %d append=%d ack=%d\n", st.Messages, st.Bytes, st.ByKind["append"], st.ByKind["ack"])
	return b.String()
}

// goldenTraces runs trials seeds through the worker pool and concatenates
// their traces in seed order.
func goldenTraces(g *topology.Graph, routes *topology.Routes, trials, workers int) string {
	parts := runner.Trials(trials, 1, workers, func(seed uint64) string {
		return goldenTrial(g, routes, seed)
	})
	return strings.Join(parts, "")
}

// TestGossipDeliveryTraceGolden pins the optimized transport's full
// delivery trace — delivery order, timestamps (rng draw order), payloads
// and traffic accounting — byte-identical to the pre-PR8 implementation
// the committed golden was generated from, at workers 1 and 8 and with
// the shared route plane engaged.
func TestGossipDeliveryTraceGolden(t *testing.T) {
	g := goldenGraph()
	routes := topology.NewRoutes(g)
	path := filepath.Join("testdata", "gossip_trace.golden")
	got := goldenTraces(g, routes, 8, 1)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		diffLine := 0
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for diffLine < len(gl) && diffLine < len(wl) && gl[diffLine] == wl[diffLine] {
			diffLine++
		}
		t.Fatalf("delivery trace diverges from pre-PR8 golden at line %d:\n got: %q\nwant: %q",
			diffLine+1, at(gl, diffLine), at(wl, diffLine))
	}
	if w8 := goldenTraces(g, routes, 8, 8); w8 != got {
		t.Fatal("delivery traces differ between workers 1 and 8")
	}
}

func at(lines []string, i int) string {
	if i < len(lines) {
		return lines[i]
	}
	return "<eof>"
}

package msgnet

import (
	"fmt"

	"repro/internal/appendmem"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// NewGossip creates a network of g.N() nodes whose delivery is relayed
// over the topology graph g. Broadcasts flood hop by hop: each node takes
// delivery of a message exactly once (duplicate copies arriving over other
// links are suppressed) and forwards it to every neighbor except the one
// it arrived from. Unicasts are source-routed along the minimum-latency
// path. Every hop's delay is the link's base latency shaped by the delay
// model dm.
//
// Determinism: relays are scheduled on the simulator's value-typed event
// heap and all rng draws happen inside event callbacks or synchronous
// sends, so the full delivery trace is a pure function of (g, dm, rng
// state, send sequence) — byte-identical at any worker count.
func NewGossip(s *sim.Sim, rng *xrand.PCG, g *topology.Graph, dm topology.DelayModel) *Network {
	nw := newNetwork(s, rng, g.N())
	eps := sim.Time(g.MinLatency() / 1e9)
	if eps <= 0 {
		eps = 1e-9
	}
	t := &gossipTransport{
		nw:     nw,
		g:      g,
		dm:     dm,
		eps:    eps,
		msgs:   make(map[uint64]*gossipMsg),
		routes: make(map[int]*route),
	}
	t.tick = t.drain
	nw.transport = t
	return nw
}

// gossipTransport relays messages over an explicit graph. It owns its own
// value-typed hop heap (same (at, seq) discipline as the network's pending
// heap) because a hop's arrival triggers relaying, not just handler
// delivery.
type gossipTransport struct {
	nw  *Network
	g   *topology.Graph
	dm  topology.DelayModel
	eps sim.Time // delay floor: zero-length hops and degenerate samples

	hops []hop // in-flight relay hops, min-heap on (at, seq)
	hseq uint64
	tick func() // bound drain, allocated once

	msgs   map[uint64]*gossipMsg // in-flight broadcasts by id
	nextID uint64
	free   []*gossipMsg // pooled records with seen bitmaps

	routes map[int]*route // per-source shortest-path trees, lazy
}

// hop is one in-flight link transmission of a flooded message.
type hop struct {
	at       sim.Time
	seq      uint64
	id       uint64 // broadcast id
	to, from int32  // receiving node; inbound neighbor (-1 at the origin)
}

func (h *hop) before(o *hop) bool {
	if h.at != o.at {
		return h.at < o.at
	}
	return h.seq < o.seq
}

// gossipMsg is one flooded broadcast: the payload, which nodes have taken
// delivery, and how many hops are still in flight (the record is recycled
// when the last one drains).
type gossipMsg struct {
	env      Envelope // From/Kind/Body; To is set per delivery
	seen     []uint64 // delivery bitset
	inflight int
}

// route is one source's shortest-path tree over the graph.
type route struct {
	dist []float64
	prev []int32
}

func (t *gossipTransport) Name() string { return "gossip" }

// Broadcast floods one payload from `from`. The origin's own delivery is
// scheduled after eps (asynchronous like every other delivery, but not a
// link transmission, so it is not counted in stats); relays fan out from
// there as the flood drains.
func (t *gossipTransport) Broadcast(nw *Network, from appendmem.NodeID, kind string, body []byte) {
	if from < 0 || int(from) >= nw.n {
		panic(fmt.Sprintf("msgnet: gossip broadcast from %d out of range", from))
	}
	id := t.nextID
	t.nextID++
	m := t.acquire()
	m.env = Envelope{From: from, Kind: kind, Body: append([]byte(nil), body...)}
	t.msgs[id] = m
	t.schedule(id, m, -1, int32(from), t.eps)
}

// Unicast source-routes env along the minimum-latency path, sampling each
// hop's delay (so the draw count equals the hop count) and delivering once
// at the summed delay. Each hop counts as one transmission; a self-send
// counts as one message.
func (t *gossipTransport) Unicast(nw *Network, env Envelope) {
	src, dst := int(env.From), int(env.To)
	if src < 0 || src >= nw.n {
		panic(fmt.Sprintf("msgnet: gossip send from %d out of range", env.From))
	}
	r := t.route(src)
	if dst != src && r.prev[dst] < 0 {
		panic(fmt.Sprintf("msgnet: gossip send %d -> %d unreachable", src, dst))
	}
	total, links := 0.0, 0
	for v := dst; v != src; {
		p := int(r.prev[v])
		lat, _ := t.g.Link(p, v)
		total += t.dm.Sample(lat, nw.rng)
		links++
		v = p
	}
	if links == 0 {
		links = 1
	}
	nw.Account(env, links)
	if nw.Dropped(env) {
		return
	}
	delay := sim.Time(total)
	if delay <= 0 {
		delay = t.eps
	}
	nw.DeliverAfter(delay, env)
}

// route returns src's shortest-path tree, computing it on first use. The
// tree depends only on the immutable graph, so caching does not affect
// determinism.
func (t *gossipTransport) route(src int) *route {
	r := t.routes[src]
	if r == nil {
		dist, prev := t.g.PathLatencies(src)
		r = &route{dist: dist, prev: prev}
		t.routes[src] = r
	}
	return r
}

// schedule pushes one hop and books its simulator event.
func (t *gossipTransport) schedule(id uint64, m *gossipMsg, from, to int32, delay sim.Time) {
	m.inflight++
	t.hseq++
	t.push(hop{at: t.nw.s.Now() + delay, seq: t.hseq, id: id, to: to, from: from})
	t.nw.s.After(delay, t.tick)
}

// drain fires the earliest in-flight hop. First arrival at a node delivers
// to its handler and relays to every neighbor except the inbound one;
// later copies are suppressed. A dropped receiver is marked seen without
// delivering or relaying — a crashed node neither learns nor forwards.
func (t *gossipTransport) drain() {
	h := t.pop()
	m := t.msgs[h.id]
	m.inflight--
	v := int(h.to)
	if !bitGet(m.seen, v) {
		bitSet(m.seen, v)
		env := m.env
		env.To = appendmem.NodeID(v)
		if !t.nw.Dropped(env) {
			if hnd := t.nw.handlers[v]; hnd != nil {
				hnd(env)
			}
			t.g.Neighbors(v, func(j int, lat float64) bool {
				if int32(j) != h.from {
					t.relay(h.id, m, int32(v), int32(j), lat)
				}
				return true
			})
		}
	}
	if m.inflight == 0 {
		delete(t.msgs, h.id)
		t.release(m)
	}
}

// relay forwards m over one link, sampling the hop delay and counting the
// transmission.
func (t *gossipTransport) relay(id uint64, m *gossipMsg, from, to int32, lat float64) {
	t.nw.Account(m.env, 1)
	delay := sim.Time(t.dm.Sample(lat, t.nw.rng))
	if delay <= 0 {
		delay = t.eps
	}
	t.schedule(id, m, from, to, delay)
}

// acquire returns a cleared gossipMsg, reusing pooled seen bitmaps.
func (t *gossipTransport) acquire() *gossipMsg {
	if n := len(t.free); n > 0 {
		m := t.free[n-1]
		t.free = t.free[:n-1]
		for i := range m.seen {
			m.seen[i] = 0
		}
		return m
	}
	return &gossipMsg{seen: make([]uint64, (t.g.N()+63)/64)}
}

// release recycles a drained gossipMsg, releasing the payload.
func (t *gossipTransport) release(m *gossipMsg) {
	m.env = Envelope{}
	t.free = append(t.free, m)
}

func bitGet(b []uint64, i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func bitSet(b []uint64, i int)      { b[i>>6] |= 1 << (uint(i) & 63) }

// push adds h to the hop min-heap.
func (t *gossipTransport) push(h hop) {
	hs := append(t.hops, h)
	i := len(hs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(&hs[parent]) {
			break
		}
		hs[i] = hs[parent]
		i = parent
	}
	hs[i] = h
	t.hops = hs
}

// pop removes and returns the minimum hop.
func (t *gossipTransport) pop() hop {
	hs := t.hops
	min := hs[0]
	n := len(hs) - 1
	last := hs[n]
	hs = hs[:n]
	t.hops = hs
	if n > 0 {
		i := 0
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			m := l
			if r := l + 1; r < n && hs[r].before(&hs[l]) {
				m = r
			}
			if !hs[m].before(&last) {
				break
			}
			hs[i] = hs[m]
			i = m
		}
		hs[i] = last
	}
	return min
}

package msgnet

import (
	"fmt"

	"repro/internal/appendmem"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// NewGossip creates a network of g.N() nodes whose delivery is relayed
// over the topology graph g. Broadcasts flood hop by hop: each node takes
// delivery of a message exactly once (duplicate copies arriving over other
// links are suppressed) and forwards it to every neighbor except the one
// it arrived from. Unicasts are source-routed along the minimum-latency
// path. Every hop's delay is the link's base latency shaped by the delay
// model dm.
//
// Determinism: relays are scheduled on a value-typed hop heap keyed by
// (at, seq) — the same total order the simulator fires by — and all rng
// draws happen inside event callbacks or synchronous sends, so the full
// delivery trace is a pure function of (g, dm, rng state, send sequence)
// — byte-identical at any worker count.
//
// Payload ownership: the transport pools broadcast payload buffers and
// recycles them once a flood fully drains, so an Envelope's Body is valid
// for the duration of the handler call only — handlers that retain it
// must copy (DESIGN.md §13).
func NewGossip(s *sim.Sim, rng *xrand.PCG, g *topology.Graph, dm topology.DelayModel) *Network {
	return NewGossipWithRoutes(s, rng, g, dm, nil)
}

// NewGossipWithRoutes is NewGossip with a precomputed shared route plane.
// The plane must belong to g; all transports handed the same plane share
// its per-source shortest-path trees read-only, so a sweep's trials pay
// each Dijkstra once per graph instead of once per trial. A nil plane
// keeps the transport-local lazy route table.
func NewGossipWithRoutes(s *sim.Sim, rng *xrand.PCG, g *topology.Graph, dm topology.DelayModel, routes *topology.Routes) *Network {
	if routes != nil && routes.Graph() != g {
		panic("msgnet: route plane belongs to a different graph")
	}
	nw := newNetwork(s, rng, g.N())
	eps := sim.Time(g.MinLatency() / 1e9)
	if eps <= 0 {
		eps = 1e-9
	}
	t := &gossipTransport{
		nw:     nw,
		g:      g,
		dm:     dm,
		eps:    eps,
		routes: routes,
	}
	t.tick = t.drainTick
	nw.transport = t
	return nw
}

// gossipTransport relays messages over an explicit graph. It owns its own
// value-typed hop heap (same (at, seq) discipline as the network's pending
// heap) because a hop's arrival triggers relaying, not just handler
// delivery. All per-message state lives in a slot-indexed freelist table —
// no maps, no per-flood allocations in steady state.
//
// Event coalescing: instead of booking one simulator event per hop, the
// transport keeps a single armed tick at the hop heap's minimum time.
// Arming times form a strictly decreasing stack (a new arm is only pushed
// when a hop beats the current minimum), every tick drains all hops at
// exactly its instant and re-arms at the new minimum, so simulator-heap
// traffic is O(distinct drain times) and the simulator's heap stays near
// empty instead of holding every in-flight hop.
type gossipTransport struct {
	nw  *Network
	g   *topology.Graph
	dm  topology.DelayModel
	eps sim.Time // delay floor: zero-length hops and degenerate samples

	hops []hop // in-flight relay hops, min-heap on (at, seq)
	hseq uint64
	tick func() // bound drainTick, allocated once

	// armed holds the times of outstanding coalesced ticks, strictly
	// decreasing (top of the stack = earliest). Invariant: whenever the
	// hop heap is non-empty, armed's top equals the heap minimum's time,
	// so a tick can never fire with an empty hop heap.
	armed []sim.Time

	slots    []gossipMsg // in-flight broadcasts and unicasts by slot
	freeSlot []int32     // recycled slot indexes, LIFO
	payloads [][]byte    // pooled broadcast payload buffers

	routes *topology.Routes // shared per-graph route plane (may be nil)
	local  []route          // dense per-source fallback, lazy per source
}

// hop is one in-flight link transmission. The slot/gen pair identifies
// the message record: generations catch (and panic on) any hop that
// would touch a recycled slot.
type hop struct {
	at       sim.Time
	seq      uint64
	slot     int32
	gen      uint32
	to, from int32 // receiving node; inbound neighbor (-1 at the origin)
}

func (h *hop) before(o *hop) bool {
	if h.at != o.at {
		return h.at < o.at
	}
	return h.seq < o.seq
}

// gossipMsg is one slot of the message table: a flooded broadcast (seen
// bitset, relay fan-out) or a source-routed unicast (single delivery).
// The record is recycled — generation bumped, payload buffer pooled —
// when the last referencing hop drains.
type gossipMsg struct {
	env      Envelope   // From/Kind/Body; To is set per delivery
	seen     []uint64   // delivery bitset (broadcasts)
	eta      []sim.Time // earliest pending arrival per node; 0 = none yet
	inflight int32
	gen      uint32
	unicast  bool
}

// route is one source's shortest-path tree (transport-local fallback when
// no shared plane is installed).
type route struct {
	dist []float64
	prev []int32
}

func (t *gossipTransport) Name() string { return "gossip" }

// Broadcast floods one payload from `from`. The origin's own delivery is
// scheduled after eps (asynchronous like every other delivery, but not a
// link transmission, so it is not counted in stats); relays fan out from
// there as the flood drains. The payload is copied into a pooled buffer
// that is recycled when the flood drains.
func (t *gossipTransport) Broadcast(nw *Network, from appendmem.NodeID, kind string, body []byte) {
	if from < 0 || int(from) >= nw.n {
		panic(fmt.Sprintf("msgnet: gossip broadcast from %d out of range", from))
	}
	slot := t.acquire()
	m := &t.slots[slot]
	m.env = Envelope{From: from, Kind: kind, Body: t.copyBody(body)}
	m.inflight = 1
	at := nw.s.Now() + t.eps
	m.eta[from] = at
	t.hseq++
	t.push(hop{at: at, seq: t.hseq, slot: slot, gen: m.gen, to: int32(from), from: -1})
	t.maybeArm()
}

// Unicast source-routes env along the minimum-latency path, sampling each
// hop's delay (so the draw count equals the hop count) and delivering once
// at the summed delay. Each hop counts as one transmission; a self-send
// (zero links) counts as one message and is delivered after the eps floor.
// Delivery rides the same coalesced hop heap as floods, so unicasts book
// no per-send simulator event either.
func (t *gossipTransport) Unicast(nw *Network, env Envelope) {
	src, dst := int(env.From), int(env.To)
	if src < 0 || src >= nw.n {
		panic(fmt.Sprintf("msgnet: gossip send from %d out of range", env.From))
	}
	prev := t.prevFor(src)
	if dst != src && prev[dst] < 0 {
		panic(fmt.Sprintf("msgnet: gossip send %d -> %d unreachable", src, dst))
	}
	total, links := 0.0, 0
	for v := dst; v != src; {
		p := int(prev[v])
		lat, _ := t.g.Link(p, v)
		total += t.dm.Sample(lat, nw.rng)
		links++
		v = p
	}
	if links == 0 {
		links = 1
	}
	nw.Account(env, links)
	if nw.Dropped(env) {
		return
	}
	delay := sim.Time(total)
	if delay <= 0 {
		delay = t.eps
	}
	slot := t.acquire()
	m := &t.slots[slot]
	m.env = env
	m.unicast = true
	m.inflight = 1
	t.hseq++
	t.push(hop{at: nw.s.Now() + delay, seq: t.hseq, slot: slot, gen: m.gen, to: int32(dst), from: -1})
	t.maybeArm()
}

// prevFor returns src's shortest-path predecessor tree: from the shared
// route plane when one is installed (computed once per graph, shared
// across transports and trials), otherwise from the transport's dense
// lazy table. Either way the tree depends only on the immutable graph,
// so caching does not affect determinism.
func (t *gossipTransport) prevFor(src int) []int32 {
	if t.routes != nil {
		return t.routes.For(src).Prev
	}
	if t.local == nil {
		t.local = make([]route, t.g.N())
	}
	r := &t.local[src]
	if r.prev == nil {
		r.dist, r.prev = t.g.PathLatencies(src)
	}
	return r.prev
}

// maybeArm books a coalesced tick at the hop heap's minimum if no armed
// tick covers it yet. Arm times are pushed strictly decreasing, so the
// stack top is always the earliest outstanding tick.
func (t *gossipTransport) maybeArm() {
	at := t.hops[0].at
	if n := len(t.armed); n == 0 || at < t.armed[n-1] {
		t.armed = append(t.armed, at)
		t.nw.s.At(at, t.tick)
	}
}

// drainTick fires one coalesced tick: it consumes its arm record, drains
// every hop scheduled at exactly this instant (relay delays are floored
// at eps > 0, so hops pushed while draining always land strictly later),
// and re-arms at the heap's new minimum if no outstanding tick covers it.
func (t *gossipTransport) drainTick() {
	n := len(t.armed)
	if n == 0 || len(t.hops) == 0 {
		panic("msgnet: coalesced gossip tick fired with an empty hop heap")
	}
	at := t.armed[n-1]
	if t.hops[0].at != at {
		panic("msgnet: coalesced gossip tick out of sync with hop heap")
	}
	for len(t.hops) > 0 && t.hops[0].at == at {
		t.drainOne()
	}
	// Consume the arm record only now: while hops at this instant are
	// still draining they remain the heap minimum, and leaving this
	// tick's time on the stack is what stops a mid-drain relay's
	// maybeArm from re-arming a duplicate tick at the current time.
	t.armed = t.armed[:len(t.armed)-1]
	if len(t.hops) > 0 {
		t.maybeArm()
	}
}

// drainOne pops and processes the earliest in-flight hop. First arrival
// at a node delivers to its handler and relays to every neighbor except
// the inbound one; later copies are suppressed. A dropped receiver is
// marked seen without delivering or relaying — a crashed node neither
// learns nor forwards.
func (t *gossipTransport) drainOne() {
	h := t.pop()
	m := &t.slots[h.slot]
	if m.gen != h.gen {
		panic("msgnet: gossip hop references a recycled slot")
	}
	m.inflight--
	if m.unicast {
		env := m.env
		if hnd := t.nw.handlers[env.To]; hnd != nil {
			hnd(env)
		}
	} else if v := int(h.to); !bitGet(m.seen, v) {
		bitSet(m.seen, v)
		env := m.env
		env.To = appendmem.NodeID(v)
		if !t.nw.Dropped(env) {
			if hnd := t.nw.handlers[v]; hnd != nil {
				hnd(env)
			}
			t.relayBatch(h.slot, int32(v), h.from)
		}
	}
	// Handlers may broadcast, growing the slot table; re-index before the
	// final bookkeeping.
	if m = &t.slots[h.slot]; m.inflight == 0 {
		t.release(h.slot)
	}
}

// relayBatch fans slot's flood out from node v as one run of hops:
// delays are sampled in ascending neighbor order (skipping the inbound
// link — the exact per-neighbor draw order of the unbatched relay), the
// run is appended to the hop arena and heapified as a block, and the
// whole fan-out is accounted in one call. A transmission whose target
// has already taken delivery is sampled and counted like any other but
// not materialized as a hop — it could never deliver or relay, only
// advance the virtual clock at quiescence (DESIGN.md §13).
func (t *gossipTransport) relayBatch(slot, v, inbound int32) {
	m := &t.slots[slot]
	rng := t.nw.rng
	now := t.nw.s.Now()
	gen := m.gen
	base := len(t.hops)
	links, queued := 0, 0
	if ts, ls := t.g.Adj(int(v)); ts != nil {
		for k := 0; k < len(ts); k++ {
			j := ts[k]
			if j == inbound {
				continue
			}
			links++
			d := sim.Time(t.dm.Sample(ls[k], rng))
			if d <= 0 {
				d = t.eps
			}
			if bitGet(m.seen, int(j)) {
				continue
			}
			at := now + d
			if e := m.eta[j]; e != 0 && at >= e {
				continue // a pending hop beats this one to j
			}
			m.eta[j] = at
			t.hseq++
			t.hops = append(t.hops, hop{at: at, seq: t.hseq, slot: slot, gen: gen, to: j, from: v})
			queued++
		}
	} else { // implicit complete graph: synthesize the fan-out
		t.g.Neighbors(int(v), func(j int, lat float64) bool {
			if int32(j) == inbound {
				return true
			}
			links++
			d := sim.Time(t.dm.Sample(lat, rng))
			if d <= 0 {
				d = t.eps
			}
			if bitGet(m.seen, j) {
				return true
			}
			at := now + d
			if e := m.eta[j]; e != 0 && at >= e {
				return true // a pending hop beats this one to j
			}
			m.eta[j] = at
			t.hseq++
			t.hops = append(t.hops, hop{at: at, seq: t.hseq, slot: slot, gen: gen, to: int32(j), from: v})
			queued++
			return true
		})
	}
	if links > 0 {
		t.nw.Account(m.env, links)
	}
	m.inflight += int32(queued)
	if queued > 0 {
		t.pushN(base)
		t.maybeArm()
	}
}

// acquire returns a cleared slot, reusing freed records (and their seen
// bitmaps) LIFO.
func (t *gossipTransport) acquire() int32 {
	if n := len(t.freeSlot); n > 0 {
		slot := t.freeSlot[n-1]
		t.freeSlot = t.freeSlot[:n-1]
		m := &t.slots[slot]
		for i := range m.seen {
			m.seen[i] = 0
		}
		for i := range m.eta {
			m.eta[i] = 0
		}
		m.inflight = 0
		m.unicast = false
		return slot
	}
	t.slots = append(t.slots, gossipMsg{
		seen: make([]uint64, (t.g.N()+63)/64),
		eta:  make([]sim.Time, t.g.N()),
	})
	return int32(len(t.slots) - 1)
}

// release recycles a drained slot: the generation is bumped so any stale
// hop panics instead of touching the reused record, and a pooled
// broadcast payload buffer returns to the pool.
func (t *gossipTransport) release(slot int32) {
	m := &t.slots[slot]
	m.gen++
	if !m.unicast && m.env.Body != nil {
		t.payloads = append(t.payloads, m.env.Body[:0])
	}
	m.env = Envelope{}
	t.freeSlot = append(t.freeSlot, slot)
}

// copyBody copies a broadcast payload into a pooled buffer (nil for an
// empty payload, matching the unpooled copy's behavior).
func (t *gossipTransport) copyBody(body []byte) []byte {
	if len(body) == 0 {
		return nil
	}
	var buf []byte
	if n := len(t.payloads); n > 0 {
		buf = t.payloads[n-1]
		t.payloads = t.payloads[:n-1]
	}
	return append(buf, body...)
}

func bitGet(b []uint64, i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func bitSet(b []uint64, i int)      { b[i>>6] |= 1 << (uint(i) & 63) }

// push adds h to the hop min-heap.
func (t *gossipTransport) push(h hop) {
	t.hops = append(t.hops, h)
	t.siftUp(len(t.hops) - 1)
}

// pushN restores the heap property after a block of hops was appended at
// index base. A block landing on an empty heap is heapified bottom-up
// (Floyd, O(block)); otherwise each appended hop sifts up.
func (t *gossipTransport) pushN(base int) {
	hs := t.hops
	if base == 0 {
		for i := len(hs)/2 - 1; i >= 0; i-- {
			t.siftDown(i)
		}
		return
	}
	for i := base; i < len(hs); i++ {
		t.siftUp(i)
	}
}

// siftUp restores the heap property for the element at index i.
func (t *gossipTransport) siftUp(i int) {
	hs := t.hops
	h := hs[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(&hs[parent]) {
			break
		}
		hs[i] = hs[parent]
		i = parent
	}
	hs[i] = h
}

// siftDown restores the heap property below index i.
func (t *gossipTransport) siftDown(i int) {
	hs := t.hops
	n := len(hs)
	h := hs[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && hs[r].before(&hs[l]) {
			m = r
		}
		if !hs[m].before(&h) {
			break
		}
		hs[i] = hs[m]
		i = m
	}
	hs[i] = h
}

// pop removes and returns the minimum hop.
func (t *gossipTransport) pop() hop {
	hs := t.hops
	min := hs[0]
	n := len(hs) - 1
	hs[0] = hs[n]
	hs = hs[:n]
	t.hops = hs
	if n > 0 {
		t.siftDown(0)
	}
	return min
}

package msgnet

import (
	"fmt"
	"testing"

	"repro/internal/appendmem"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// TestGossipSelfSendStats pins the links == 0 unicast path: a self-send
// traverses no links but still counts as exactly one transmission (one
// message, payload bytes once) and is delivered asynchronously after the
// eps floor, never synchronously inside Send.
func TestGossipSelfSendStats(t *testing.T) {
	g := topology.Ring(6, 1, 0.1)
	s, nw := newGossipNet(g, topology.DelayModel{}, 5)
	var at []sim.Time
	nw.Register(2, func(e Envelope) {
		if e.From != 2 || e.To != 2 || e.Kind != "self" || string(e.Body) != "loop" {
			t.Fatalf("envelope = %+v", e)
		}
		at = append(at, s.Now())
	})
	nw.Send(2, 2, "self", []byte("loop"))
	if len(at) != 0 {
		t.Fatal("self-send delivered synchronously inside Send")
	}
	s.Run()
	if len(at) != 1 {
		t.Fatalf("self-send delivered %d times", len(at))
	}
	eps := sim.Time(g.MinLatency() / 1e9)
	if at[0] != eps {
		t.Fatalf("self-send delivered at %v, want eps %v", at[0], eps)
	}
	st := nw.Stats()
	if st.Messages != 1 || st.Bytes != 4 || st.ByKind["self"] != 1 {
		t.Fatalf("stats = %+v, want exactly one 4-byte transmission", st)
	}
}

// TestGossipCoalescedTickInvariant stress-tests the coalesced-tick
// discipline under a randomized workload of overlapping floods and
// unicasts, including sends issued reentrantly from delivery handlers.
// drainTick panics if a tick ever fires with an empty hop heap or at a
// time that is not the heap minimum, so merely surviving the run proves
// the arming invariant; afterwards the transport must be fully quiescent —
// no in-flight hops, no outstanding armed ticks, every slot recycled.
func TestGossipCoalescedTickInvariant(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		g := topology.WattsStrogatz(xrand.New(seed, 11), 48, 3, 0.25, 0.1)
		s, nw := newGossipNet(g, topology.DelayModel{Kind: topology.DelayLongTail}, seed)
		gt := nw.transport.(*gossipTransport)
		wr := xrand.New(seed, 99)
		delivered := 0
		for i := 0; i < g.N(); i++ {
			i := i
			nw.Register(appendmem.NodeID(i), func(e Envelope) {
				delivered++
				// Reentrant sends from inside a drain: a fraction of
				// deliveries trigger a fresh flood or unicast while the
				// current tick is still draining.
				switch {
				case e.Kind == "seed" && wr.Float64() < 0.05:
					nw.Broadcast(appendmem.NodeID(i), "echo", []byte("e"))
				case wr.Float64() < 0.02:
					nw.Send(appendmem.NodeID(i), appendmem.NodeID((i+7)%g.N()), "ping", nil)
				}
			})
		}
		for r := 0; r < 4; r++ {
			nw.Broadcast(appendmem.NodeID((int(seed)*5+r)%g.N()), "seed", []byte(fmt.Sprintf("r%d", r)))
		}
		nw.Send(0, appendmem.NodeID(g.N()-1), "ping", []byte("p"))
		s.Run()
		if delivered < 4*g.N() {
			t.Fatalf("seed %d: only %d deliveries", seed, delivered)
		}
		if len(gt.hops) != 0 {
			t.Fatalf("seed %d: %d hops still in flight after Run", seed, len(gt.hops))
		}
		if len(gt.armed) != 0 {
			t.Fatalf("seed %d: %d armed ticks outstanding after Run", seed, len(gt.armed))
		}
		if got, want := len(gt.freeSlot), len(gt.slots); got != want {
			t.Fatalf("seed %d: %d of %d slots recycled after Run", seed, got, want)
		}
	}
}

// TestGossipSharedPlaneMatchesLazyRoutes pins that routing unicasts
// through a shared topology.Routes plane is observably identical to the
// transport-local lazy table: same delivery times, same stats, and the
// plane is populated only for sources that actually sent.
func TestGossipSharedPlaneMatchesLazyRoutes(t *testing.T) {
	g := topology.WattsStrogatz(xrand.New(7, 3), 32, 2, 0.3, 0.1)
	routes := topology.NewRoutes(g)
	run := func(r *topology.Routes) (string, Stats) {
		s := sim.New()
		nw := NewGossipWithRoutes(s, xrand.New(11, 1), g, topology.DelayModel{Kind: topology.DelayUniform}, r)
		trace := ""
		for i := 0; i < g.N(); i++ {
			i := i
			nw.Register(appendmem.NodeID(i), func(e Envelope) {
				trace += fmt.Sprintf("%.12g %d %s\n", float64(s.Now()), i, e.Kind)
			})
		}
		for src := 0; src < 8; src++ {
			nw.Send(appendmem.NodeID(src), appendmem.NodeID((src+13)%g.N()), "m", []byte("x"))
		}
		s.Run()
		return trace, nw.Stats()
	}
	lazyTrace, lazyStats := run(nil)
	planeTrace, planeStats := run(routes)
	if lazyTrace != planeTrace {
		t.Fatalf("shared-plane trace diverges from lazy routing:\nlazy:\n%s\nplane:\n%s", lazyTrace, planeTrace)
	}
	if lazyStats.Messages != planeStats.Messages || lazyStats.Bytes != planeStats.Bytes {
		t.Fatalf("stats diverge: lazy %+v plane %+v", lazyStats, planeStats)
	}
	if got := routes.Computed(); got != 8 {
		t.Fatalf("plane computed %d sources, want exactly the 8 senders", got)
	}
}

// TestGossipWithRoutesRejectsForeignGraph pins the guard against wiring a
// route plane from one graph into a transport over another.
func TestGossipWithRoutesRejectsForeignGraph(t *testing.T) {
	g1 := topology.Ring(8, 1, 0.1)
	g2 := topology.Ring(8, 1, 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign route plane accepted")
		}
	}()
	NewGossipWithRoutes(sim.New(), xrand.New(1, 1), g1, topology.DelayModel{}, topology.NewRoutes(g2))
}

package msgnet

import (
	"testing"

	"repro/internal/appendmem"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func newNet(n int) (*sim.Sim, *Network) {
	s := sim.New()
	return s, New(s, xrand.New(1, 1), n, 1.0)
}

func TestSendDelivers(t *testing.T) {
	s, nw := newNet(3)
	var got []Envelope
	nw.Register(1, func(e Envelope) { got = append(got, e) })
	nw.Send(0, 1, "hello", []byte("payload"))
	s.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages", len(got))
	}
	e := got[0]
	if e.From != 0 || e.To != 1 || e.Kind != "hello" || string(e.Body) != "payload" {
		t.Fatalf("envelope = %+v", e)
	}
}

func TestDelayBounded(t *testing.T) {
	s := sim.New()
	nw := New(s, xrand.New(2, 2), 2, 0.5)
	var deliveredAt sim.Time
	nw.Register(1, func(Envelope) { deliveredAt = s.Now() })
	nw.Send(0, 1, "x", nil)
	s.Run()
	if deliveredAt <= 0 || deliveredAt > 0.5 {
		t.Fatalf("delivery at %v, want (0, 0.5]", deliveredAt)
	}
}

func TestBroadcastReachesAllIncludingSelf(t *testing.T) {
	s, nw := newNet(4)
	counts := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		nw.Register(appendmem.NodeID(i), func(Envelope) { counts[i]++ })
	}
	nw.Broadcast(2, "b", nil)
	s.Run()
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("node %d received %d", i, c)
		}
	}
}

func TestBodyIsCopied(t *testing.T) {
	s, nw := newNet(2)
	body := []byte{1, 2, 3}
	var got []byte
	nw.Register(1, func(e Envelope) { got = e.Body })
	nw.Send(0, 1, "x", body)
	body[0] = 99
	s.Run()
	if got[0] != 1 {
		t.Fatal("Send aliased the caller's body")
	}
}

func TestDropFilter(t *testing.T) {
	s, nw := newNet(3)
	delivered := 0
	nw.Register(1, func(Envelope) { delivered++ })
	nw.Register(2, func(Envelope) { delivered++ })
	nw.SetDrop(func(e Envelope) bool { return e.To == 1 })
	nw.Send(0, 1, "x", nil)
	nw.Send(0, 2, "x", nil)
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	// Dropped messages still count as sent.
	if nw.Stats().Messages != 2 {
		t.Fatalf("messages = %d", nw.Stats().Messages)
	}
}

func TestStats(t *testing.T) {
	s, nw := newNet(3)
	nw.Register(1, func(Envelope) {})
	nw.Send(0, 1, "a", []byte("1234"))
	nw.Send(0, 1, "b", []byte("12"))
	nw.Send(0, 1, "a", nil)
	s.Run()
	st := nw.Stats()
	if st.Messages != 3 || st.Bytes != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByKind["a"] != 2 || st.ByKind["b"] != 1 {
		t.Fatalf("by kind = %v", st.ByKind)
	}
}

func TestSignVerify(t *testing.T) {
	_, nw := newNet(3)
	data := []byte("the record")
	sig := nw.Signer(0).Sign(data)
	if !nw.Verify(0, data, sig) {
		t.Fatal("valid signature rejected")
	}
	if nw.Verify(1, data, sig) {
		t.Fatal("signature verified against wrong key")
	}
	if nw.Verify(0, []byte("tampered"), sig) {
		t.Fatal("signature verified over tampered data")
	}
	if nw.Verify(99, data, sig) {
		t.Fatal("out-of-range id verified")
	}
}

func TestForgeryImpossible(t *testing.T) {
	// A Byzantine node signing with its own key cannot produce a signature
	// valid under a correct node's key.
	_, nw := newNet(3)
	data := []byte("forged claim: node 0 said X")
	byzSig := nw.Signer(2).Sign(data)
	if nw.Verify(0, data, byzSig) {
		t.Fatal("forged signature accepted")
	}
}

func TestKeysDeterministic(t *testing.T) {
	_, nw1 := newNet(3)
	_, nw2 := newNet(3)
	for i := 0; i < 3; i++ {
		a, b := nw1.PublicKey(appendmem.NodeID(i)), nw2.PublicKey(appendmem.NodeID(i))
		if string(a) != string(b) {
			t.Fatal("keys differ across identical constructions")
		}
	}
}

func TestUnregisteredReceiverDoesNotCrash(t *testing.T) {
	s, nw := newNet(2)
	nw.Send(0, 1, "x", nil)
	s.Run() // no handler for 1: must not panic
}

func TestSendOutOfRangePanics(t *testing.T) {
	_, nw := newNet(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Send did not panic")
		}
	}()
	nw.Send(0, 5, "x", nil)
}

package msgnet

import (
	"fmt"
	"testing"

	"repro/internal/appendmem"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/xrand"
)

func newGossipNet(g *topology.Graph, dm topology.DelayModel, seed uint64) (*sim.Sim, *Network) {
	s := sim.New()
	return s, NewGossip(s, xrand.New(seed, 1), g, dm)
}

func TestGossipBroadcastReachesAllOnce(t *testing.T) {
	// k=2 ring: every node has four links, so duplicate copies of each
	// flood definitely arrive and must be suppressed.
	g := topology.Ring(10, 2, 0.1)
	s, nw := newGossipNet(g, topology.DelayModel{}, 3)
	counts := make([]int, 10)
	for i := 0; i < 10; i++ {
		i := i
		nw.Register(appendmem.NodeID(i), func(e Envelope) {
			if e.From != 4 || e.Kind != "b" || string(e.Body) != "payload" {
				t.Fatalf("envelope = %+v", e)
			}
			counts[i]++
		})
	}
	nw.Broadcast(4, "b", []byte("payload"))
	s.Run()
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("node %d delivered %d times", i, c)
		}
	}
	// Every link transmits at least once in a flood, and relaying
	// amplifies past the n-1 sends a logical broadcast would cost.
	if st := nw.Stats(); st.Messages < g.NumEdges() || st.Messages <= g.N()-1 {
		t.Fatalf("flood transmissions = %d (edges %d)", st.Messages, g.NumEdges())
	}
}

func TestGossipDuplicateSuppressionUnderEquivocation(t *testing.T) {
	// An equivocator broadcasts two conflicting payloads. Each flood is
	// deduplicated independently: every node sees exactly one copy of
	// each, never a third delivery from a relayed duplicate.
	g := topology.Ring(8, 2, 0.1)
	s, nw := newGossipNet(g, topology.DelayModel{Kind: topology.DelayUniform}, 9)
	got := make([]map[string]int, 8)
	for i := 0; i < 8; i++ {
		i := i
		got[i] = map[string]int{}
		nw.Register(appendmem.NodeID(i), func(e Envelope) { got[i][string(e.Body)]++ })
	}
	nw.Broadcast(0, "append", []byte("v1"))
	nw.Broadcast(0, "append", []byte("v2"))
	s.Run()
	for i, m := range got {
		if m["v1"] != 1 || m["v2"] != 1 || len(m) != 2 {
			t.Fatalf("node %d deliveries = %v", i, m)
		}
	}
}

func TestGossipDropStopsRelay(t *testing.T) {
	// On a k=1 ring, dropping both neighbors of the origin's antipode
	// partitions the flood: the antipode must never hear the message.
	g := topology.Ring(8, 1, 0.1)
	s, nw := newGossipNet(g, topology.DelayModel{}, 5)
	nw.SetDrop(func(e Envelope) bool { return e.To == 3 || e.To == 5 })
	heard := make([]bool, 8)
	for i := 0; i < 8; i++ {
		i := i
		nw.Register(appendmem.NodeID(i), func(Envelope) { heard[i] = true })
	}
	nw.Broadcast(0, "b", nil)
	s.Run()
	for i, h := range heard {
		want := i != 3 && i != 4 && i != 5
		if h != want {
			t.Fatalf("node %d heard=%v want %v (heard=%v)", i, h, want, heard)
		}
	}
}

func TestGossipUnicastRoutesShortestPath(t *testing.T) {
	// Line 0-1-2 plus a slow direct link 0-2: the unicast must take the
	// cheap two-hop route, pay both hops in stats, and (with fixed
	// delays) arrive at exactly the summed path latency.
	g, err := topology.FromTable(3, []topology.Link{{From: 0, To: 1, Lat: 0.2}, {From: 1, To: 2, Lat: 0.3}, {From: 0, To: 2, Lat: 2}})
	if err != nil {
		t.Fatal(err)
	}
	s, nw := newGossipNet(g, topology.DelayModel{}, 7)
	var at sim.Time
	nw.Register(2, func(Envelope) { at = s.Now() })
	nw.Send(0, 2, "x", []byte("pp"))
	s.Run()
	if at != sim.Time(0.5) {
		t.Fatalf("delivered at %v, want 0.5", at)
	}
	if st := nw.Stats(); st.Messages != 2 || st.Bytes != 4 {
		t.Fatalf("stats = %+v, want 2 messages / 4 bytes", st)
	}
}

func TestGossipSelfSendDelivers(t *testing.T) {
	g := topology.Ring(4, 1, 0.1)
	s, nw := newGossipNet(g, topology.DelayModel{}, 2)
	n := 0
	nw.Register(1, func(Envelope) { n++ })
	nw.Send(1, 1, "x", nil)
	s.Run()
	if n != 1 {
		t.Fatalf("self-send delivered %d times", n)
	}
}

// gossipTrace runs one flood over a small-world graph and records every
// delivery as "(time, node)" in arrival order.
func gossipTrace(seed uint64, dm topology.DelayModel) []string {
	g := topology.WattsStrogatz(xrand.New(42, 7), 24, 2, 0.3, 0.1)
	s, nw := newGossipNet(g, dm, seed)
	var trace []string
	for i := 0; i < 24; i++ {
		i := i
		nw.Register(appendmem.NodeID(i), func(e Envelope) {
			trace = append(trace, fmt.Sprintf("%.9f:%d", float64(s.Now()), i))
		})
	}
	nw.Broadcast(0, "b", []byte("x"))
	s.Run()
	return trace
}

func TestGossipDeliveryTraceDeterministic(t *testing.T) {
	for _, dm := range []topology.DelayModel{
		{},
		{Kind: topology.DelayUniform},
		{Kind: topology.DelayLongTail},
	} {
		a, b := gossipTrace(11, dm), gossipTrace(11, dm)
		if len(a) != len(b) || len(a) != 24 {
			t.Fatalf("%v: trace lengths %d vs %d", dm, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: traces diverge at %d: %s vs %s", dm, i, a[i], b[i])
			}
		}
	}
}

func TestGossipEqualTimestampDrainOrder(t *testing.T) {
	// Fixed delays on a symmetric ring produce waves of hops with equal
	// timestamps; the (at, seq) heap must drain them in scheduling order,
	// which for the first wave means ascending neighbor id of the origin.
	g := topology.Ring(9, 2, 0.5)
	s, nw := newGossipNet(g, topology.DelayModel{}, 1)
	var order []int
	for i := 0; i < 9; i++ {
		i := i
		nw.Register(appendmem.NodeID(i), func(Envelope) { order = append(order, i) })
	}
	nw.Broadcast(0, "b", nil)
	s.Run()
	// Origin first (eps), then its direct neighbors in ascending id order
	// (Neighbors iterates ascending and all delays are equal), then the
	// second wave.
	want := []int{0, 1, 2, 7, 8, 3, 4, 5, 6}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestOracleEqualTimestampDrainOrder(t *testing.T) {
	// Force every oracle delivery to the same timestamp by exhausting the
	// rng? Not needed: schedule two sends whose drawn delays tie is not
	// controllable, so instead verify the documented contract directly —
	// deliveries pushed with identical `at` drain in seq order.
	s := sim.New()
	nw := New(s, xrand.New(1, 1), 3, 1)
	var order []string
	for i := 0; i < 3; i++ {
		i := i
		nw.Register(appendmem.NodeID(i), func(e Envelope) {
			order = append(order, fmt.Sprintf("%d<-%s", i, e.Body))
		})
	}
	// Bypass the delay draw: schedule equal-timestamp deliveries through
	// the same path transports use.
	nw.DeliverAfter(0.25, Envelope{From: 0, To: 2, Kind: "k", Body: []byte("a")})
	nw.DeliverAfter(0.25, Envelope{From: 0, To: 1, Kind: "k", Body: []byte("b")})
	nw.DeliverAfter(0.25, Envelope{From: 0, To: 0, Kind: "k", Body: []byte("c")})
	s.Run()
	want := []string{"2<-a", "1<-b", "0<-c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTransportName(t *testing.T) {
	s := sim.New()
	if got := New(s, xrand.New(1, 1), 2, 1).TransportName(); got != "oracle" {
		t.Fatalf("oracle name = %q", got)
	}
	_, nw := newGossipNet(topology.Ring(4, 1, 1), topology.DelayModel{}, 1)
	if got := nw.TransportName(); got != "gossip" {
		t.Fatalf("gossip name = %q", got)
	}
}

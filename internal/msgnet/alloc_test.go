package msgnet

import (
	"testing"

	"repro/internal/appendmem"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// TestGossipFloodSteadyStateAllocs pins the steady-state allocation
// behavior of the flood path: once the hop heap, the message pool, the
// payload pool and the simulator's event heap are warm, a full
// broadcast-and-drain cycle over the graph reuses everything — pooled
// gossipMsg records with their seen bitmaps and arrival tables, pooled
// payload buffers, value-typed hops, recycled simulator events. Zero
// allocations per broadcast, payload copy included.
func TestGossipFloodSteadyStateAllocs(t *testing.T) {
	s := sim.New()
	g := topology.Ring(32, 2, 0.1)
	nw := NewGossip(s, xrand.New(1, 1), g, topology.DelayModel{Kind: topology.DelayUniform})
	delivered := 0
	for id := 0; id < g.N(); id++ {
		nw.Register(appendmem.NodeID(id), func(Envelope) { delivered++ })
	}
	body := []byte("steady-state payload")
	flood := func() {
		nw.Broadcast(0, "append", body)
		s.Run()
	}
	for i := 0; i < 50; i++ {
		flood()
	}

	delivered = 0
	allocs := testing.AllocsPerRun(100, flood)
	if allocs > 0 {
		t.Errorf("warm gossip flood allocated %.2f times per broadcast, want 0", allocs)
	}
	// AllocsPerRun invokes the function runs+1 times (one extra warm-up).
	if delivered != 101*g.N() {
		t.Fatalf("floods delivered %d times, want %d", delivered, 101*g.N())
	}
}

// TestGossipUnicastSteadyStateAllocs pins the source-routed path: the
// shortest-path tree is cached on first use, so a warm unicast is heap
// pushes and a delivery — nothing per-send.
func TestGossipUnicastSteadyStateAllocs(t *testing.T) {
	s := sim.New()
	g := topology.Ring(32, 2, 0.1)
	nw := NewGossip(s, xrand.New(2, 2), g, topology.DelayModel{})
	got := 0
	for id := 0; id < g.N(); id++ {
		nw.Register(appendmem.NodeID(id), func(Envelope) { got++ })
	}
	send := func() {
		nw.Send(0, 9, "value", nil)
		s.Run()
	}
	for i := 0; i < 50; i++ {
		send()
	}

	allocs := testing.AllocsPerRun(100, send)
	if allocs > 0 {
		t.Errorf("warm gossip unicast allocated %.2f times per send, want 0", allocs)
	}
}

// Package msgnet is the message-passing substrate for Section 4 of the
// paper: point-to-point channels with bounded random delays, broadcast,
// per-node ed25519 signing capabilities, and message/byte accounting.
//
// The paper's simulation of the append memory (Algorithms 2 and 3) assumes
// nodes "sign their messages and ... these signatures cannot be forged".
// We make that assumption real rather than axiomatic: every node owns an
// ed25519 key pair (crypto/ed25519, stdlib), the Signer capability is
// handed only to its node — Byzantine nodes hold only their own keys — and
// verification actually runs on every record, so the resilience argument
// of Lemmas 4.1/4.2 is exercised end to end.
//
// Delivery is routed through a pluggable Transport. The default oracle
// transport (New) is the paper's Δ-bounded assumption made literal: every
// message is delayed by a uniform draw from (0, MaxDelay], independent of
// who talks to whom. The gossip transport (NewGossip) drops that
// assumption and relays over an explicit topology.Graph hop by hop, with
// per-link sampled delays and duplicate suppression — see gossip.go.
// Dropping (for failure injection) is per-receiver via a pluggable filter.
// The network never corrupts or duplicates; integrity attacks are modelled
// at the payload layer where the signatures live.
package msgnet

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"

	"repro/internal/appendmem"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Envelope is one message in flight.
type Envelope struct {
	From, To appendmem.NodeID
	Kind     string
	Body     []byte
}

// Handler receives delivered envelopes.
type Handler func(Envelope)

// Stats aggregates traffic accounting. Under the oracle transport,
// Messages counts logical sends; under gossip it counts link
// transmissions, so the gossip amplification factor (relays per logical
// broadcast) is directly visible in the counters.
type Stats struct {
	Messages int
	Bytes    int
	ByKind   map[string]int
}

// Transport decides how envelopes move from sender to receiver(s). The
// Network validates and copies payloads, owns keys, stats, the drop filter
// and the delivery heap; the transport decides delays, routes and relays,
// using the exported Account/Dropped/DeliverAfter/Rand/Clock helpers.
type Transport interface {
	// Name returns the transport's registry name ("oracle", "gossip").
	Name() string
	// Unicast schedules delivery of one point-to-point envelope whose
	// body has already been copied. The transport is responsible for
	// accounting and for applying the drop filter.
	Unicast(nw *Network, env Envelope)
	// Broadcast schedules delivery of one payload from `from` to every
	// node, including `from` (the paper's broadcast includes the local
	// append/ack path).
	Broadcast(nw *Network, from appendmem.NodeID, kind string, body []byte)
}

// Network is a simulated message-passing network for n nodes, routing
// through a Transport.
type Network struct {
	s         *sim.Sim
	rng       *xrand.PCG
	n         int
	transport Transport
	handlers  []Handler
	signers   []*Signer
	pubs      []ed25519.PublicKey
	drop      func(Envelope) bool
	stats     Stats

	// In-flight envelopes, a value-typed min-heap ordered by (at, seq) —
	// the same key the simulator fires by, so the single bound deliverNext
	// callback (allocated once) always pops the envelope whose event is
	// firing, instead of each Send allocating a capturing closure.
	pending []delivery
	dseq    uint64
	tick    func()
}

// delivery is one in-flight envelope.
type delivery struct {
	at  sim.Time
	seq uint64
	env Envelope
}

// before orders deliveries exactly like the simulator orders their events:
// scheduled time, then scheduling order.
func (d *delivery) before(o *delivery) bool {
	if d.at != o.at {
		return d.at < o.at
	}
	return d.seq < o.seq
}

// New creates a network of n nodes on simulator s with the oracle
// transport: delivery delays uniform in (0, maxDelay], any pair directly
// connected. Keys are derived deterministically from rng. This is the
// default transport and its rng consumption (one Float64 per send, after
// the drop filter) is the original msgnet contract — outputs at a given
// seed are byte-identical to the pre-Transport implementation.
func New(s *sim.Sim, rng *xrand.PCG, n int, maxDelay float64) *Network {
	if n <= 0 || maxDelay <= 0 {
		panic("msgnet: invalid parameters")
	}
	nw := newNetwork(s, rng, n)
	nw.transport = oracle{maxDelay: maxDelay}
	return nw
}

// newNetwork builds the transport-independent core: handlers, keys, stats.
func newNetwork(s *sim.Sim, rng *xrand.PCG, n int) *Network {
	nw := &Network{
		s:        s,
		rng:      rng,
		n:        n,
		handlers: make([]Handler, n),
		signers:  make([]*Signer, n),
		pubs:     make([]ed25519.PublicKey, n),
	}
	nw.stats.ByKind = make(map[string]int)
	for i := 0; i < n; i++ {
		seed := make([]byte, ed25519.SeedSize)
		for j := 0; j < len(seed); j += 8 {
			binary.LittleEndian.PutUint64(seed[j:], rng.Uint64())
		}
		priv := ed25519.NewKeyFromSeed(seed)
		nw.signers[i] = &Signer{id: appendmem.NodeID(i), priv: priv}
		nw.pubs[i] = priv.Public().(ed25519.PublicKey)
	}
	return nw
}

// TransportName returns the name of the installed transport.
func (nw *Network) TransportName() string { return nw.transport.Name() }

// N returns the number of nodes.
func (nw *Network) N() int { return nw.n }

// Register installs the delivery handler for node id. Must be called
// before the node can receive.
func (nw *Network) Register(id appendmem.NodeID, h Handler) { nw.handlers[id] = h }

// SetDrop installs a message filter: envelopes for which drop returns true
// are silently discarded (after being counted as sent). Used for failure
// injection. A nil filter delivers everything.
func (nw *Network) SetDrop(drop func(Envelope) bool) { nw.drop = drop }

// Signer returns node id's signing capability. Handing it only to the node
// itself is what makes "Byzantine nodes cannot forge the signatures of the
// correct nodes" structural.
func (nw *Network) Signer(id appendmem.NodeID) *Signer { return nw.signers[id] }

// PublicKey returns node id's verification key (public information).
func (nw *Network) PublicKey(id appendmem.NodeID) ed25519.PublicKey { return nw.pubs[id] }

// Verify checks sig over data against node id's public key.
func (nw *Network) Verify(id appendmem.NodeID, data, sig []byte) bool {
	if id < 0 || int(id) >= nw.n {
		return false
	}
	return ed25519.Verify(nw.pubs[id], data, sig)
}

// Stats returns a copy of the traffic counters.
func (nw *Network) Stats() Stats {
	s := nw.stats
	s.ByKind = make(map[string]int, len(nw.stats.ByKind))
	for k, v := range nw.stats.ByKind {
		s.ByKind[k] = v
	}
	return s
}

// Send schedules delivery of one message via the transport. Sending to
// self is delivered like any other message (with delay).
func (nw *Network) Send(from, to appendmem.NodeID, kind string, body []byte) {
	if to < 0 || int(to) >= nw.n {
		panic(fmt.Sprintf("msgnet: Send to %d out of range", to))
	}
	env := Envelope{From: from, To: to, Kind: kind, Body: append([]byte(nil), body...)}
	nw.transport.Unicast(nw, env)
}

// Account adds env to the traffic counters as `links` transmissions.
// Transports call it before applying the drop filter, so dropped messages
// still count as sent.
func (nw *Network) Account(env Envelope, links int) {
	nw.stats.Messages += links
	nw.stats.Bytes += links * len(env.Body)
	nw.stats.ByKind[env.Kind] += links
}

// Dropped applies the failure-injection filter to env.
func (nw *Network) Dropped(env Envelope) bool { return nw.drop != nil && nw.drop(env) }

// DeliverAfter schedules env for handler delivery after delay, preserving
// the (time, scheduling-order) invariant of the pending heap.
func (nw *Network) DeliverAfter(delay sim.Time, env Envelope) {
	if nw.tick == nil {
		nw.tick = nw.deliverNext
	}
	nw.dseq++
	nw.push(delivery{at: nw.s.Now() + delay, seq: nw.dseq, env: env})
	nw.s.After(delay, nw.tick)
}

// Rand returns the network's deterministic rng, for transports sampling
// delays.
func (nw *Network) Rand() *xrand.PCG { return nw.rng }

// Clock returns the simulator the network schedules on.
func (nw *Network) Clock() *sim.Sim { return nw.s }

// oracle is the Δ-bounded delivery assumption of the paper: every pair of
// nodes is directly connected and each send is delayed by one uniform draw
// from (0, maxDelay].
type oracle struct{ maxDelay float64 }

func (o oracle) Name() string { return "oracle" }

func (o oracle) Unicast(nw *Network, env Envelope) {
	nw.Account(env, 1)
	if nw.Dropped(env) {
		return
	}
	delay := sim.Time(nw.rng.Float64() * o.maxDelay)
	if delay == 0 {
		delay = sim.Time(o.maxDelay / 1e9)
	}
	nw.DeliverAfter(delay, env)
}

func (o oracle) Broadcast(nw *Network, from appendmem.NodeID, kind string, body []byte) {
	for i := 0; i < nw.n; i++ {
		nw.Send(from, appendmem.NodeID(i), kind, body)
	}
}

// push adds d to the pending min-heap.
func (nw *Network) push(d delivery) {
	h := append(nw.pending, d)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !d.before(&h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = d
	nw.pending = h
}

// pop removes and returns the minimum pending delivery.
func (nw *Network) pop() delivery {
	h := nw.pending
	min := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = delivery{} // release the body
	h = h[:n]
	nw.pending = h
	if n > 0 {
		i := 0
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			m := l
			if r := l + 1; r < n && h[r].before(&h[l]) {
				m = r
			}
			if !h[m].before(&last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return min
}

// deliverNext fires the earliest in-flight envelope. The simulator fires
// events in (time, scheduling-order) — the exact order of the pending
// heap — so the popped envelope is always the one this event was
// scheduled for.
func (nw *Network) deliverNext() {
	d := nw.pop()
	if h := nw.handlers[d.env.To]; h != nil {
		h(d.env)
	}
}

// Broadcast delivers to every node including the sender (the paper's
// broadcast includes the local append/ack path). The oracle transport
// sends n independent point-to-point messages; gossip floods one message
// over the topology.
func (nw *Network) Broadcast(from appendmem.NodeID, kind string, body []byte) {
	nw.transport.Broadcast(nw, from, kind, body)
}

// Signer signs on behalf of one node.
type Signer struct {
	id   appendmem.NodeID
	priv ed25519.PrivateKey
}

// ID returns the owning node.
func (s *Signer) ID() appendmem.NodeID { return s.id }

// Sign returns the ed25519 signature of data.
func (s *Signer) Sign(data []byte) []byte { return ed25519.Sign(s.priv, data) }

// Package abdsim implements Section 4 of the paper: the simulation of the
// append memory in the message-passing model, following Algorithms 2
// (M.append) and 3 (M.read) — an ABD-style construction with signatures.
//
// Every node keeps a local view M_v of signed append records.
//
//   - Append (Algorithm 2): the appender signs its record and broadcasts
//     append(rec). Every receiver verifies the author's signature, adds
//     the record to its local view and broadcasts a signed ack. The append
//     operation terminates once acks from more than n/2 distinct nodes
//     (with valid signatures over the record) arrive.
//   - Read (Algorithm 3): the reader broadcasts read(); every receiver
//     responds with its local view; once views from more than n/2 distinct
//     nodes arrive, the reader merges every record that carries a valid
//     author signature into its own view and returns it.
//
// Quorum intersection gives the paper's Lemma 4.2: an append that
// terminated was stored by a majority, every read contacts a majority, so
// every completed append is visible to every subsequent read. Byzantine
// nodes cannot forge records of correct authors (ed25519 verification is
// actually performed); they *can* append multiple conflicting records in
// parallel — which the append memory permits too, so the simulation stays
// faithful (see the discussion after Lemma 4.2).
package abdsim

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/appendmem"
	"repro/internal/msgnet"
)

// Ref identifies another record by (author, seq) — the "reference to a
// previous state of the memory" of the paper's message definition, in the
// message-passing encoding.
type Ref struct {
	Author appendmem.NodeID
	Seq    int32
}

// Record is one append command: the author's value (with an optional round
// label) at the author's local sequence number, plus references to
// previously appended records.
type Record struct {
	Author appendmem.NodeID
	Seq    int32
	Round  int32
	Value  int64
	Refs   []Ref
}

const recordHeader = 4 + 4 + 4 + 8 + 4 // fields + ref count
const refSize = 8

// recordSize kept for the fixed-size fast paths of ref-free records.
const recordSize = recordHeader

func (r Record) wireSize() int { return recordHeader + len(r.Refs)*refSize }

// Key returns the record's identity independent of Refs slice aliasing —
// two records are the same iff their Marshal bytes coincide.
func (r Record) Key() string { return string(r.Marshal()) }

// Marshal returns the deterministic wire encoding of the record — the
// exact bytes that are signed.
func (r Record) Marshal() []byte {
	buf := make([]byte, r.wireSize())
	binary.LittleEndian.PutUint32(buf[0:], uint32(r.Author))
	binary.LittleEndian.PutUint32(buf[4:], uint32(r.Seq))
	binary.LittleEndian.PutUint32(buf[8:], uint32(r.Round))
	binary.LittleEndian.PutUint64(buf[12:], uint64(r.Value))
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(r.Refs)))
	for i, ref := range r.Refs {
		off := recordHeader + i*refSize
		binary.LittleEndian.PutUint32(buf[off:], uint32(ref.Author))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(ref.Seq))
	}
	return buf
}

// UnmarshalRecord decodes a record from wire bytes.
func UnmarshalRecord(b []byte) (Record, error) {
	if len(b) < recordHeader {
		return Record{}, errors.New("abdsim: bad record size")
	}
	count := binary.LittleEndian.Uint32(b[20:])
	if count > 1<<16 || len(b) != recordHeader+int(count)*refSize {
		return Record{}, errors.New("abdsim: bad record ref count")
	}
	r := Record{
		Author: appendmem.NodeID(int32(binary.LittleEndian.Uint32(b[0:]))),
		Seq:    int32(binary.LittleEndian.Uint32(b[4:])),
		Round:  int32(binary.LittleEndian.Uint32(b[8:])),
		Value:  int64(binary.LittleEndian.Uint64(b[12:])),
	}
	for i := 0; i < int(count); i++ {
		off := recordHeader + i*refSize
		r.Refs = append(r.Refs, Ref{
			Author: appendmem.NodeID(int32(binary.LittleEndian.Uint32(b[off:]))),
			Seq:    int32(binary.LittleEndian.Uint32(b[off+4:])),
		})
	}
	return r, nil
}

// SignedRecord is a record together with its author's signature over
// Marshal().
type SignedRecord struct {
	Record Record
	Sig    []byte
}

const sigSize = 64 // ed25519

func (sr SignedRecord) marshal() []byte {
	return append(sr.Record.Marshal(), sr.Sig...)
}

func (sr SignedRecord) wireSize() int { return sr.Record.wireSize() + sigSize }

func unmarshalSigned(b []byte) (SignedRecord, error) {
	if len(b) < recordHeader+sigSize {
		return SignedRecord{}, errors.New("abdsim: bad signed record size")
	}
	rec, err := UnmarshalRecord(b[:len(b)-sigSize])
	if err != nil {
		return SignedRecord{}, err
	}
	return SignedRecord{Record: rec, Sig: append([]byte(nil), b[len(b)-sigSize:]...)}, nil
}

// Message kinds on the wire.
const (
	kindAppend = "append"
	kindAck    = "ack"
	kindRead   = "read"
	kindView   = "view"
)

// Node is one participant in the simulated append memory.
type Node struct {
	id      appendmem.NodeID
	nw      *msgnet.Network
	signer  *msgnet.Signer
	view    map[string]SignedRecord // keyed by record wire bytes
	order   []string                // insertion order for deterministic iteration
	nextSeq int32
	crashed bool

	pendingAppends map[string]*appendOp // keyed by record wire bytes
	pendingReads   map[int64]*readOp
	nextReadID     int64
}

type appendOp struct {
	ackers map[appendmem.NodeID]bool
	done   func()
	fired  bool
}

type readOp struct {
	responders map[appendmem.NodeID]bool
	done       func([]SignedRecord)
	fired      bool
}

// NewNode creates node id attached to the network and registers its
// delivery handler.
func NewNode(nw *msgnet.Network, id appendmem.NodeID) *Node {
	n := &Node{
		id:             id,
		nw:             nw,
		signer:         nw.Signer(id),
		view:           make(map[string]SignedRecord),
		pendingAppends: make(map[string]*appendOp),
		pendingReads:   make(map[int64]*readOp),
	}
	nw.Register(id, n.deliver)
	return n
}

// ID returns the node's identity.
func (n *Node) ID() appendmem.NodeID { return n.id }

// Crash makes the node unavailable: it stops responding to all messages.
// The paper requires correct nodes to be available at all times; crashing
// more than (n-1)/2 nodes stalls all subsequent operations.
func (n *Node) Crash() { n.crashed = true }

// ViewSize returns the number of records in the node's local view.
func (n *Node) ViewSize() int { return len(n.view) }

// LocalView returns the node's local view in insertion order. It does NOT
// run Algorithm 3; use Read for a linearizable read.
func (n *Node) LocalView() []SignedRecord {
	out := make([]SignedRecord, 0, len(n.order))
	for _, k := range n.order {
		out = append(out, n.view[k])
	}
	return out
}

// quorum returns the ack/response threshold: strictly more than n/2.
func (n *Node) quorum() int { return n.nw.N()/2 + 1 }

// Append runs Algorithm 2 without references; see AppendRefs.
func (n *Node) Append(value int64, round int32, done func()) Record {
	return n.AppendRefs(value, round, nil, done)
}

// AppendRefs runs Algorithm 2: sign the record (value, round label and
// references to previous records), broadcast it, and invoke done once more
// than n/2 distinct nodes have acked. done may be nil.
func (n *Node) AppendRefs(value int64, round int32, refs []Ref, done func()) Record {
	rec := Record{Author: n.id, Seq: n.nextSeq, Round: round, Value: value, Refs: append([]Ref(nil), refs...)}
	n.nextSeq++
	sr := SignedRecord{Record: rec, Sig: n.signer.Sign(rec.Marshal())}
	key := string(rec.Marshal())
	n.pendingAppends[key] = &appendOp{ackers: make(map[appendmem.NodeID]bool), done: done}
	n.nw.Broadcast(n.id, kindAppend, sr.marshal())
	return rec
}

// Read runs Algorithm 3: broadcast a read request and invoke done with the
// merged view once more than n/2 distinct nodes responded.
func (n *Node) Read(done func([]SignedRecord)) {
	id := n.nextReadID
	n.nextReadID++
	n.pendingReads[id] = &readOp{responders: make(map[appendmem.NodeID]bool), done: done}
	body := make([]byte, 8)
	binary.LittleEndian.PutUint64(body, uint64(id))
	n.nw.Broadcast(n.id, kindRead, body)
}

// addVerified inserts a signed record into the local view after verifying
// the author's signature. Returns false for forged or malformed records.
func (n *Node) addVerified(sr SignedRecord) bool {
	data := sr.Record.Marshal()
	if !n.nw.Verify(sr.Record.Author, data, sr.Sig) {
		return false
	}
	key := string(data)
	if _, ok := n.view[key]; !ok {
		n.view[key] = sr
		n.order = append(n.order, key)
	}
	return true
}

func (n *Node) deliver(env msgnet.Envelope) {
	if n.crashed {
		return
	}
	switch env.Kind {
	case kindAppend:
		sr, err := unmarshalSigned(env.Body)
		if err != nil || !n.addVerified(sr) {
			return // forged or malformed: drop silently
		}
		// Broadcast ack: the signed record plus our signature over it.
		ack := append(sr.marshal(), n.signer.Sign(sr.marshal())...)
		n.nw.Broadcast(n.id, kindAck, ack)

	case kindAck:
		if len(env.Body) < recordHeader+sigSize+sigSize {
			return
		}
		recBytes := env.Body[:len(env.Body)-sigSize] // signed record
		ackSig := env.Body[len(env.Body)-sigSize:]
		op, ok := n.pendingAppends[string(recBytes[:len(recBytes)-sigSize])]
		if !ok || op.fired {
			return
		}
		if !n.nw.Verify(env.From, recBytes, ackSig) {
			return // ack signature invalid
		}
		op.ackers[env.From] = true
		if len(op.ackers) >= n.quorum() {
			op.fired = true
			if op.done != nil {
				op.done()
			}
		}

	case kindRead:
		if len(env.Body) != 8 {
			return
		}
		// Respond with our whole local view, tagged with the read id.
		// Records are variable-size (reference lists), so each one is
		// length-prefixed.
		resp := make([]byte, 8, 8+len(n.order)*(4+recordHeader+sigSize))
		copy(resp, env.Body)
		for _, k := range n.order {
			wire := n.view[k].marshal()
			var lenb [4]byte
			binary.LittleEndian.PutUint32(lenb[:], uint32(len(wire)))
			resp = append(resp, lenb[:]...)
			resp = append(resp, wire...)
		}
		n.nw.Send(n.id, env.From, kindView, resp)

	case kindView:
		if len(env.Body) < 8 {
			return
		}
		id := int64(binary.LittleEndian.Uint64(env.Body))
		op, ok := n.pendingReads[id]
		if !ok || op.fired {
			return
		}
		body := env.Body[8:]
		for len(body) >= 4 {
			l := int(binary.LittleEndian.Uint32(body))
			if l < recordHeader+sigSize || 4+l > len(body) {
				return // malformed framing: drop the rest
			}
			if sr, err := unmarshalSigned(body[4 : 4+l]); err == nil {
				n.addVerified(sr) // drops forged entries
			}
			body = body[4+l:]
		}
		op.responders[env.From] = true
		if len(op.responders) >= n.quorum() {
			op.fired = true
			if op.done != nil {
				op.done(n.LocalView())
			}
		}
	}
}

// ByzantineNode exposes the raw powers of a Byzantine participant: it can
// emit arbitrary envelopes, sign with its own key, and fabricate records —
// but it holds no other node's key, so forging a correct author fails
// verification at every correct receiver.
type ByzantineNode struct {
	ID     appendmem.NodeID
	NW     *msgnet.Network
	Signer *msgnet.Signer
	seq    int32
}

// NewByzantineNode registers a Byzantine node that ignores all deliveries
// (strategies drive it directly).
func NewByzantineNode(nw *msgnet.Network, id appendmem.NodeID) *ByzantineNode {
	nw.Register(id, func(msgnet.Envelope) {})
	return &ByzantineNode{ID: id, NW: nw, Signer: nw.Signer(id)}
}

// AppendEquivocate broadcasts two different validly-signed records with
// the SAME sequence number to model parallel appends; both will be
// accepted by correct nodes, matching the append-memory semantics.
func (b *ByzantineNode) AppendEquivocate(v1, v2 int64, round int32) (Record, Record) {
	r1 := Record{Author: b.ID, Seq: b.seq, Round: round, Value: v1}
	r2 := Record{Author: b.ID, Seq: b.seq, Round: round, Value: v2}
	b.seq++
	for _, r := range []Record{r1, r2} {
		sr := SignedRecord{Record: r, Sig: b.Signer.Sign(r.Marshal())}
		b.NW.Broadcast(b.ID, kindAppend, sr.marshal())
	}
	return r1, r2
}

// ForgeAppend broadcasts a record claiming the given (correct) author,
// signed with the Byzantine node's own key — the only key it has. Correct
// receivers must reject it.
func (b *ByzantineNode) ForgeAppend(victim appendmem.NodeID, value int64) Record {
	rec := Record{Author: victim, Seq: 9999, Value: value}
	sr := SignedRecord{Record: rec, Sig: b.Signer.Sign(rec.Marshal())}
	b.NW.Broadcast(b.ID, kindAppend, sr.marshal())
	return rec
}

// Cluster wires a simulator, network and n nodes together; ids in byz are
// created as ByzantineNodes, the rest as correct Nodes.
type Cluster struct {
	Nodes []*Node
	Byz   map[appendmem.NodeID]*ByzantineNode
	NW    *msgnet.Network
}

// NewCluster builds a cluster of n nodes on nw. byz lists Byzantine ids.
func NewCluster(nw *msgnet.Network, byz []appendmem.NodeID) *Cluster {
	c := &Cluster{NW: nw, Byz: make(map[appendmem.NodeID]*ByzantineNode)}
	isByz := make(map[appendmem.NodeID]bool)
	for _, id := range byz {
		isByz[id] = true
	}
	c.Nodes = make([]*Node, nw.N())
	for i := 0; i < nw.N(); i++ {
		id := appendmem.NodeID(i)
		if isByz[id] {
			c.Byz[id] = NewByzantineNode(nw, id)
		} else {
			c.Nodes[i] = NewNode(nw, id)
		}
	}
	return c
}

// Node returns the correct node with the given id, or an error for
// Byzantine/unknown ids.
func (c *Cluster) Node(id appendmem.NodeID) (*Node, error) {
	if int(id) < 0 || int(id) >= len(c.Nodes) || c.Nodes[id] == nil {
		return nil, fmt.Errorf("abdsim: node %d is not a correct node", id)
	}
	return c.Nodes[id], nil
}

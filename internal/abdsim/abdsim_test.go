package abdsim

import (
	"testing"

	"repro/internal/appendmem"
	"repro/internal/msgnet"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func newCluster(n int, byz ...appendmem.NodeID) (*sim.Sim, *Cluster) {
	s := sim.New()
	nw := msgnet.New(s, xrand.New(7, 7), n, 1.0)
	return s, NewCluster(nw, byz)
}

func TestRecordRoundTrip(t *testing.T) {
	rec := Record{Author: 3, Seq: 42, Round: 7, Value: -5, Refs: []Ref{{Author: 1, Seq: 3}, {Author: 0, Seq: 0}}}
	got, err := UnmarshalRecord(rec.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != rec.Key() || len(got.Refs) != 2 || got.Refs[0] != rec.Refs[0] {
		t.Fatalf("round trip: %+v != %+v", got, rec)
	}
	if _, err := UnmarshalRecord([]byte{1, 2}); err == nil {
		t.Fatal("short record accepted")
	}
}

func TestAppendTerminatesWithQuorum(t *testing.T) {
	s, c := newCluster(5)
	done := false
	c.Nodes[0].Append(+1, 0, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("append did not terminate")
	}
	// Lemma 4.1: the record reaches every correct node's local view.
	for i, n := range c.Nodes {
		if n.ViewSize() != 1 {
			t.Fatalf("node %d view size = %d", i, n.ViewSize())
		}
	}
}

func TestReadSeesCompletedAppend(t *testing.T) {
	// Lemma 4.2 / quorum intersection: a completed append is visible to
	// every subsequent read, even one issued by a node whose local view
	// missed the broadcast.
	s := sim.New()
	nw := msgnet.New(s, xrand.New(8, 8), 5, 1.0)
	// Drop the direct append/ack traffic to node 4 so its local view
	// stays empty; the read quorum must still recover the record.
	nw.SetDrop(func(e msgnet.Envelope) bool {
		return e.To == 4 && (e.Kind == "append" || e.Kind == "ack")
	})
	c := NewCluster(nw, nil)
	appended := false
	c.Nodes[0].Append(+7, 0, func() { appended = true })
	s.Run()
	if !appended {
		t.Fatal("append blocked by a single deaf node")
	}
	if c.Nodes[4].ViewSize() != 0 {
		t.Fatal("test setup broken: node 4 saw the append directly")
	}
	var got []SignedRecord
	c.Nodes[4].Read(func(view []SignedRecord) { got = view })
	s.Run()
	if len(got) != 1 || got[0].Record.Value != +7 {
		t.Fatalf("read returned %v", got)
	}
}

func TestReadMergesIntoLocalView(t *testing.T) {
	s, c := newCluster(3)
	c.Nodes[1].Append(+1, 0, nil)
	s.Run()
	before := c.Nodes[0].ViewSize()
	c.Nodes[0].Read(nil)
	s.Run()
	if c.Nodes[0].ViewSize() < before {
		t.Fatal("read lost records")
	}
}

func TestAppendStallsWithoutQuorum(t *testing.T) {
	// With n/2 or more nodes unavailable, appends must never terminate
	// (and must not terminate wrongly).
	s, c := newCluster(4)
	c.Nodes[2].Crash()
	c.Nodes[3].Crash()
	done := false
	c.Nodes[0].Append(+1, 0, func() { done = true })
	s.Run()
	if done {
		t.Fatal("append terminated with only 2/4 nodes alive (quorum is 3)")
	}
}

func TestReadStallsWithoutQuorum(t *testing.T) {
	s, c := newCluster(4)
	c.Nodes[1].Crash()
	c.Nodes[2].Crash()
	c.Nodes[3].Crash()
	done := false
	c.Nodes[0].Read(func([]SignedRecord) { done = true })
	s.Run()
	if done {
		t.Fatal("read terminated without quorum")
	}
}

func TestMinorityCrashHarmless(t *testing.T) {
	s, c := newCluster(5)
	c.Nodes[3].Crash()
	c.Nodes[4].Crash()
	done := 0
	c.Nodes[0].Append(+1, 0, func() { done++ })
	c.Nodes[1].Append(-1, 0, func() { done++ })
	s.Run()
	if done != 2 {
		t.Fatalf("%d/2 appends terminated with minority crashed", done)
	}
	var got []SignedRecord
	c.Nodes[2].Read(func(v []SignedRecord) { got = v })
	s.Run()
	if len(got) != 2 {
		t.Fatalf("read saw %d records, want 2", len(got))
	}
}

func TestForgedRecordRejectedEverywhere(t *testing.T) {
	s, c := newCluster(4, 3)
	c.Byz[3].ForgeAppend(0, -99)
	s.Run()
	for i := 0; i < 3; i++ {
		if c.Nodes[i].ViewSize() != 0 {
			t.Fatalf("node %d accepted a forged record", i)
		}
	}
}

func TestEquivocationBothValuesAccepted(t *testing.T) {
	// Parallel appends by a Byzantine node are NOT a safety violation of
	// the simulation: the append memory also lets a node's two values both
	// become visible (discussion after Lemma 4.2).
	s, c := newCluster(4, 3)
	c.Byz[3].AppendEquivocate(+1, -1, 0)
	s.Run()
	for i := 0; i < 3; i++ {
		if c.Nodes[i].ViewSize() != 2 {
			t.Fatalf("node %d saw %d records, want both equivocations", i, c.Nodes[i].ViewSize())
		}
	}
}

func TestMessageComplexityLinearPerOp(t *testing.T) {
	// One append: 1 broadcast (n msgs) + n ack broadcasts (n² msgs).
	// One read: 1 broadcast (n) + n responses (n). The dominant term is
	// the ack broadcast — Θ(n²) per append, Θ(n) per read, both within a
	// constant factor; verify the counts exactly for n=6.
	s := sim.New()
	n := 6
	nw := msgnet.New(s, xrand.New(9, 9), n, 1.0)
	c := NewCluster(nw, nil)
	c.Nodes[0].Append(+1, 0, nil)
	s.Run()
	st := nw.Stats()
	if st.ByKind["append"] != n {
		t.Fatalf("append msgs = %d, want %d", st.ByKind["append"], n)
	}
	if st.ByKind["ack"] != n*n {
		t.Fatalf("ack msgs = %d, want %d", st.ByKind["ack"], n*n)
	}
	c.Nodes[1].Read(nil)
	s.Run()
	st = nw.Stats()
	if st.ByKind["read"] != n {
		t.Fatalf("read msgs = %d, want %d", st.ByKind["read"], n)
	}
	if st.ByKind["view"] != n {
		t.Fatalf("view msgs = %d, want %d", st.ByKind["view"], n)
	}
}

func TestCrashMidProtocolDoesNotCorrupt(t *testing.T) {
	s, c := newCluster(5)
	c.Nodes[0].Append(+1, 0, nil)
	// Crash node 1 while messages are in flight.
	s.After(0.2, func() { c.Nodes[1].Crash() })
	s.Run()
	var got []SignedRecord
	c.Nodes[2].Read(func(v []SignedRecord) { got = v })
	s.Run()
	if len(got) != 1 {
		t.Fatalf("read saw %d records", len(got))
	}
}

// One-round crash-tolerant consensus over the simulated memory: every node
// appends its input, then reads and decides the majority sign. This is the
// paper's observation that "agreement with crash failures can be solved in
// the append memory ... within one round", now running over real message
// passing.
func TestOneRoundConsensusOverSimulatedMemory(t *testing.T) {
	s, c := newCluster(5)
	inputs := []int64{+1, +1, +1, -1, -1}
	appended := 0
	for i, n := range c.Nodes {
		n.Append(inputs[i], 0, func() { appended++ })
	}
	s.Run()
	if appended != 5 {
		t.Fatalf("%d/5 appends terminated", appended)
	}
	decisions := make([]int64, 5)
	for i, n := range c.Nodes {
		i := i
		n.Read(func(view []SignedRecord) {
			var sum int64
			for _, sr := range view {
				sum += sr.Record.Value
			}
			decisions[i] = node.Sign(sum)
		})
	}
	s.Run()
	for i, d := range decisions {
		if d != +1 {
			t.Fatalf("node %d decided %d, want +1", i, d)
		}
	}
}

func TestDeterministicCluster(t *testing.T) {
	run := func() int {
		s, c := newCluster(5)
		c.Nodes[0].Append(+1, 0, nil)
		c.Nodes[1].Append(-1, 0, nil)
		fired := s.Run()
		_ = c
		return fired
	}
	if run() != run() {
		t.Fatal("event counts differ across identical runs")
	}
}

func TestClusterNodeAccessor(t *testing.T) {
	_, c := newCluster(3, 2)
	if _, err := c.Node(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(2); err == nil {
		t.Fatal("Byzantine id returned as correct node")
	}
	if _, err := c.Node(9); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// envelopeFor builds a raw envelope for direct delivery in fuzz tests.
func envelopeFor(to appendmem.NodeID, kind string, body []byte) msgnet.Envelope {
	return msgnet.Envelope{From: 2, To: to, Kind: kind, Body: body}
}

package abdsim

import (
	"fmt"
	"sort"

	"repro/internal/agreement/syncba"
	"repro/internal/appendmem"
	"repro/internal/node"
	"repro/internal/sim"
)

// This file carries the paper's Section 4 claim to its conclusion:
// Algorithm 1 — Byzantine agreement with synchronous nodes, defined over
// the append memory — runs unchanged over the SIMULATED memory, with
// every append a quorum-acked broadcast and every read a quorum-merged
// view. Rounds are realized by draining the network between phases (the
// simulation's Δ); the decision rule is literally the same code as the
// native protocol (syncba.AcceptedValues over a reconstructed view).

// SyncOverResult is the outcome of RunSyncBA.
type SyncOverResult struct {
	Outcome *node.Outcome
	Verdict node.Verdict
	Roster  node.Roster
	Stats   struct {
		Messages int
		Bytes    int
	}
}

// RunSyncBA executes Algorithm 1 with `rounds` rounds (use t+1) over the
// cluster's simulated append memory. Byzantine members of the cluster stay
// silent (crash-equivalent); the run demonstrates simulation fidelity, not
// adversarial timing — sub-round Byzantine delivery games live in the
// native append-memory harness.
func RunSyncBA(s *sim.Sim, c *Cluster, inputs []int64, rounds int) (*SyncOverResult, error) {
	n := c.NW.N()
	if len(inputs) != n {
		return nil, fmt.Errorf("abdsim: %d inputs for %d nodes", len(inputs), n)
	}
	if rounds < 1 {
		return nil, fmt.Errorf("abdsim: rounds must be >= 1")
	}

	// lastL[i] holds node i's L_{r-1} as refs.
	lastL := make([][]Ref, n)
	finalViews := make([][]SignedRecord, n)

	for r := 1; r <= rounds; r++ {
		// Phase 1: append (val, L_{r-1}).
		for i, nd := range c.Nodes {
			if nd == nil || nd.crashed {
				continue
			}
			nd.AppendRefs(inputs[i], int32(r), lastL[i], nil)
		}
		s.Run()
		// Phase 2: read; L_r := round-r records seen.
		for i, nd := range c.Nodes {
			if nd == nil || nd.crashed {
				continue
			}
			i := i
			r := r
			nd.Read(func(view []SignedRecord) {
				var lr []Ref
				for _, sr := range view {
					if sr.Record.Round == int32(r) {
						lr = append(lr, Ref{Author: sr.Record.Author, Seq: sr.Record.Seq})
					}
				}
				sort.Slice(lr, func(a, b int) bool {
					if lr[a].Author != lr[b].Author {
						return lr[a].Author < lr[b].Author
					}
					return lr[a].Seq < lr[b].Seq
				})
				lastL[i] = lr
				if r == rounds {
					finalViews[i] = view
				}
			})
		}
		s.Run()
	}

	roster := node.NewRoster(n, len(c.Byz))
	// NewRoster marks the LAST t ids Byzantine; remap to the cluster's
	// actual Byzantine set by building the roster manually when they are
	// not the suffix. For simplicity we require the suffix convention.
	for id := range c.Byz {
		if int(id) < n-len(c.Byz) {
			return nil, fmt.Errorf("abdsim: RunSyncBA requires Byzantine ids to be the last ones (got %d)", id)
		}
	}

	res := &SyncOverResult{Outcome: node.NewOutcome(n), Roster: roster}
	for i, nd := range c.Nodes {
		if nd == nil || nd.crashed || finalViews[i] == nil {
			continue
		}
		view, err := reconstruct(n, finalViews[i])
		if err != nil {
			return nil, err
		}
		accepted := syncba.AcceptedValues(view, rounds)
		var sum int64
		for _, v := range accepted {
			sum += v
		}
		res.Outcome.Decide(appendmem.NodeID(i), node.Sign(sum))
	}
	res.Verdict = node.Evaluate(roster, node.Inputs(inputs), res.Outcome)
	st := c.NW.Stats()
	res.Stats.Messages = st.Messages
	res.Stats.Bytes = st.Bytes
	return res, nil
}

// reconstruct rebuilds an appendmem view from a set of signed records so
// the native decision rule (syncba.AcceptedValues) can run on it. Records
// are inserted in round order (refs always point to earlier rounds);
// references to records outside the set are dropped, matching a view that
// never saw them.
func reconstruct(n int, records []SignedRecord) (appendmem.View, error) {
	recs := make([]Record, len(records))
	for i, sr := range records {
		recs[i] = sr.Record
	}
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].Round != recs[b].Round {
			return recs[a].Round < recs[b].Round
		}
		if recs[a].Author != recs[b].Author {
			return recs[a].Author < recs[b].Author
		}
		return recs[a].Seq < recs[b].Seq
	})
	m := appendmem.New(n)
	idOf := make(map[Ref]appendmem.MsgID, len(recs))
	// Per-author sequence remapping: the memory assigns its own Seq in
	// insertion order; acceptance chains only need Round labels and parent
	// links, both preserved.
	for _, rec := range recs {
		var parents []appendmem.MsgID
		for _, ref := range rec.Refs {
			if id, ok := idOf[ref]; ok {
				parents = append(parents, id)
			}
		}
		msg, err := m.Writer(rec.Author).Append(rec.Value, int(rec.Round), parents)
		if err != nil {
			return appendmem.View{}, fmt.Errorf("abdsim: reconstruct: %w", err)
		}
		idOf[Ref{Author: rec.Author, Seq: rec.Seq}] = msg.ID
	}
	return m.Read(), nil
}

package abdsim

import (
	"testing"

	"repro/internal/agreement/syncba"
	"repro/internal/node"
)

func TestSyncBAOverSimulatedMemory(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		s, c := newCluster(5)
		res, err := RunSyncBA(s, c, []int64{+1, +1, +1, -1, -1}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verdict.OK() {
			t.Fatalf("seed %d: %+v", seed, res.Verdict)
		}
		for i := 0; i < 5; i++ {
			if res.Outcome.Decision[i] != +1 {
				t.Fatalf("node %d decided %d, want +1 (majority)", i, res.Outcome.Decision[i])
			}
		}
		if res.Stats.Messages == 0 {
			t.Fatal("no traffic counted")
		}
	}
}

func TestSyncBAMatchesNativeRun(t *testing.T) {
	// The same protocol natively in the append memory and over the
	// simulation must reach the same decision on the same inputs.
	inputs := []int64{+1, -1, +1, -1, +1, +1, -1}
	n, rounds := 7, 3

	native := syncba.MustRun(syncba.Config{N: n, T: 0, Rounds: rounds, Seed: 9, Inputs: node.Inputs(inputs)}, syncba.Silent{})

	s, c := newCluster(n)
	sim, err := RunSyncBA(s, c, inputs, rounds)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if native.Outcome.Decision[i] != sim.Outcome.Decision[i] {
			t.Fatalf("node %d: native %d vs simulated %d",
				i, native.Outcome.Decision[i], sim.Outcome.Decision[i])
		}
	}
}

func TestSyncBAWithSilentByzantineSuffix(t *testing.T) {
	s, c := newCluster(5, 3, 4)
	res, err := RunSyncBA(s, c, []int64{+1, +1, +1, -1, -1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Correct nodes all hold +1; silent Byzantine nodes cannot stop them.
	if !res.Verdict.OK() {
		t.Fatalf("%+v", res.Verdict)
	}
}

func TestSyncBAValidation(t *testing.T) {
	s, c := newCluster(3)
	if _, err := RunSyncBA(s, c, []int64{1}, 1); err == nil {
		t.Fatal("wrong input length accepted")
	}
	if _, err := RunSyncBA(s, c, []int64{1, 1, 1}, 0); err == nil {
		t.Fatal("zero rounds accepted")
	}
	s2, c2 := newCluster(4, 0) // Byzantine id 0 is not a suffix
	if _, err := RunSyncBA(s2, c2, []int64{1, 1, 1, 1}, 1); err == nil {
		t.Fatal("non-suffix Byzantine set accepted")
	}
}

func TestSyncBACrashMidway(t *testing.T) {
	s, c := newCluster(5)
	c.Nodes[0].Crash()
	res, err := RunSyncBA(s, c, []int64{-1, +1, +1, +1, -1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Crashed node never decides; the rest agree on the surviving majority.
	if res.Outcome.Decided[0] {
		t.Fatal("crashed node decided")
	}
	var first int64
	for i := 1; i < 5; i++ {
		if !res.Outcome.Decided[i] {
			t.Fatalf("node %d undecided", i)
		}
		if first == 0 {
			first = res.Outcome.Decision[i]
		} else if res.Outcome.Decision[i] != first {
			t.Fatal("survivors disagree")
		}
	}
}

func TestReconstructPreservesChains(t *testing.T) {
	// Build records with reference chains and verify acceptance logic sees
	// them: value of node 0 supported by node 1 across rounds.
	recs := []SignedRecord{
		{Record: Record{Author: 0, Seq: 0, Round: 1, Value: +1}},
		{Record: Record{Author: 1, Seq: 0, Round: 2, Value: +1, Refs: []Ref{{Author: 0, Seq: 0}}}},
	}
	view, err := reconstruct(2, recs)
	if err != nil {
		t.Fatal(err)
	}
	accepted := syncba.AcceptedValues(view, 2)
	if len(accepted) != 1 || accepted[0] != +1 {
		t.Fatalf("accepted = %v", accepted)
	}
}

func TestReconstructDropsDanglingRefs(t *testing.T) {
	recs := []SignedRecord{
		{Record: Record{Author: 1, Seq: 5, Round: 2, Value: +1, Refs: []Ref{{Author: 0, Seq: 99}}}},
	}
	view, err := reconstruct(2, recs)
	if err != nil {
		t.Fatal(err)
	}
	if view.Size() != 1 {
		t.Fatal("record lost")
	}
	if len(view.Messages()[0].Parents) != 0 {
		t.Fatal("dangling ref kept")
	}
}

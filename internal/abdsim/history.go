package abdsim

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// This file implements a history checker for the simulated append memory:
// operations are recorded with their invocation/response intervals and the
// resulting history is checked against the append-memory specification —
// the executable form of Lemmas 4.1 and 4.2.
//
// The append memory's consistency contract (atomic-register style, lifted
// to sets) is:
//
//   regularity (the paper's requirement): a read must return every record
//   whose append RESPONDED before the read was INVOKED — quorum
//   intersection makes completed appends stable;
//
//   read monotonicity per process: two sequential reads by the same node
//   return non-shrinking sets (the node merges into its local view);
//
//   no phantoms: every record returned by a read was actually appended
//   (signature verification makes fabrication impossible).

// OpKind distinguishes recorded operations.
type OpKind int

// Operation kinds.
const (
	OpAppend OpKind = iota
	OpRead
)

// Op is one recorded operation interval.
type Op struct {
	Kind      OpKind
	Node      int
	Invoked   sim.Time
	Responded sim.Time
	Done      bool // response observed
	// Record is the appended record (OpAppend).
	Record Record
	// Returned is the read's result set (OpRead).
	Returned []SignedRecord
}

// History accumulates operation intervals.
type History struct {
	ops []*Op
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{} }

// BeginAppend records an append invocation and returns a completion hook.
func (h *History) BeginAppend(s *sim.Sim, nodeID int, rec Record) func() {
	op := &Op{Kind: OpAppend, Node: nodeID, Invoked: s.Now(), Record: rec}
	h.ops = append(h.ops, op)
	return func() {
		op.Responded = s.Now()
		op.Done = true
	}
}

// BeginRead records a read invocation and returns a completion hook taking
// the returned view.
func (h *History) BeginRead(s *sim.Sim, nodeID int) func([]SignedRecord) {
	op := &Op{Kind: OpRead, Node: nodeID, Invoked: s.Now()}
	h.ops = append(h.ops, op)
	return func(view []SignedRecord) {
		op.Responded = s.Now()
		op.Done = true
		op.Returned = append([]SignedRecord(nil), view...)
	}
}

// Ops returns the recorded operations in invocation order.
func (h *History) Ops() []*Op {
	sort.SliceStable(h.ops, func(i, j int) bool { return h.ops[i].Invoked < h.ops[j].Invoked })
	return h.ops
}

// Check validates the history against the append-memory contract and
// returns the violations found (empty = consistent).
func (h *History) Check() []string {
	var violations []string
	ops := h.Ops()

	appended := make(map[string]bool)
	for _, op := range ops {
		if op.Kind == OpAppend {
			appended[op.Record.Key()] = true
		}
	}

	// No phantoms.
	for _, op := range ops {
		if op.Kind != OpRead || !op.Done {
			continue
		}
		for _, sr := range op.Returned {
			if !appended[sr.Record.Key()] {
				violations = append(violations,
					fmt.Sprintf("read by %d returned phantom record %+v", op.Node, sr.Record))
			}
		}
	}

	// Regularity: completed appends are visible to later reads.
	for _, ap := range ops {
		if ap.Kind != OpAppend || !ap.Done {
			continue
		}
		for _, rd := range ops {
			if rd.Kind != OpRead || !rd.Done || rd.Invoked <= ap.Responded {
				continue
			}
			found := false
			apKey := ap.Record.Key()
			for _, sr := range rd.Returned {
				if sr.Record.Key() == apKey {
					found = true
					break
				}
			}
			if !found {
				violations = append(violations,
					fmt.Sprintf("read by %d (invoked %.3f) missed append %+v (completed %.3f)",
						rd.Node, float64(rd.Invoked), ap.Record, float64(ap.Responded)))
			}
		}
	}

	// Per-node read monotonicity.
	lastSet := make(map[int]map[string]bool)
	for _, op := range ops {
		if op.Kind != OpRead || !op.Done {
			continue
		}
		cur := make(map[string]bool, len(op.Returned))
		for _, sr := range op.Returned {
			cur[sr.Record.Key()] = true
		}
		if prev, ok := lastSet[op.Node]; ok {
			for rec := range prev {
				if !cur[rec] {
					violations = append(violations,
						fmt.Sprintf("node %d's read shrank: lost record %x", op.Node, rec))
				}
			}
		}
		lastSet[op.Node] = cur
	}
	return violations
}

// InstrumentedAppend wraps Node.Append with history recording.
func (n *Node) InstrumentedAppend(s *sim.Sim, h *History, value int64, round int32, done func()) Record {
	// Append only schedules traffic on the simulator; its completion
	// callback cannot fire before control returns here, so assigning the
	// history hook right after the call is safe (and the nil guard makes
	// the ordering assumption explicit).
	var complete func()
	rec := n.Append(value, round, func() {
		if complete != nil {
			complete()
		}
		if done != nil {
			done()
		}
	})
	complete = h.BeginAppend(s, int(n.id), rec)
	return rec
}

// InstrumentedRead wraps Node.Read with history recording.
func (n *Node) InstrumentedRead(s *sim.Sim, h *History, done func([]SignedRecord)) {
	complete := h.BeginRead(s, int(n.id))
	n.Read(func(view []SignedRecord) {
		complete(view)
		if done != nil {
			done(view)
		}
	})
}

package abdsim

import (
	"testing"
)

func TestIteratedOneRoundAgreement(t *testing.T) {
	s, c := newCluster(5)
	res, err := RunIterated(s, c, []int64{+1, +1, +1, -1, -1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !res.Decided[i] || res.Decisions[i] != +1 {
			t.Fatalf("node %d: decided=%v value=%d", i, res.Decided[i], res.Decisions[i])
		}
	}
}

func TestIteratedInputValidation(t *testing.T) {
	s, c := newCluster(3)
	if _, err := RunIterated(s, c, []int64{1}, 1); err == nil {
		t.Fatal("wrong input length accepted")
	}
	if _, err := RunIterated(s, c, []int64{1, 1, 1}, 0); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestIteratedMultiRoundStable(t *testing.T) {
	// Once all values coincide, further rounds must not change anything.
	s, c := newCluster(4)
	res, err := RunIterated(s, c, []int64{+1, +1, -1, -1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Decisions[0]
	for i := 1; i < 4; i++ {
		if res.Decisions[i] != first {
			t.Fatalf("disagreement after 3 rounds: %v", res.Decisions)
		}
	}
}

func TestIteratedWithMinorityCrashes(t *testing.T) {
	s, c := newCluster(5)
	c.Nodes[4].Crash()
	res, err := RunIterated(s, c, []int64{+1, +1, -1, +1, -1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !res.Decided[i] || res.Decisions[i] != +1 {
			t.Fatalf("node %d: %v %d", i, res.Decided[i], res.Decisions[i])
		}
	}
	if res.Decided[4] {
		t.Fatal("crashed node decided")
	}
}

func TestIteratedTrafficGrowsWithRounds(t *testing.T) {
	// Section 4's warning: each read retransmits the whole history, so
	// later rounds cost strictly more bytes than the first.
	s, c := newCluster(6)
	res, err := RunIterated(s, c, []int64{1, 1, 1, -1, -1, -1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesPerRound[4] <= res.BytesPerRound[0] {
		t.Fatalf("traffic flat: round0=%d round4=%d", res.BytesPerRound[0], res.BytesPerRound[4])
	}
	// Message COUNT per round is constant (same op pattern); only bytes grow.
	if res.MsgsPerRound[4] != res.MsgsPerRound[0] {
		t.Fatalf("message counts changed: %v", res.MsgsPerRound)
	}
	// Growth is at least linear: round r's read phase carries r+1 rounds
	// of history in every view response.
	if res.BytesPerRound[4] < res.BytesPerRound[0]*2 {
		t.Fatalf("growth slower than expected: %v", res.BytesPerRound)
	}
}

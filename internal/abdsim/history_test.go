package abdsim

import (
	"strings"
	"testing"

	"repro/internal/msgnet"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// The executable Lemmas 4.1/4.2: random workloads over the simulated
// memory produce histories that satisfy the append-memory contract.
func TestHistoryRandomWorkloadsConsistent(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		s := sim.New()
		rng := xrand.New(seed, 0xAB1)
		nw := msgnet.New(s, rng.Split(), 5, 1.0)
		c := NewCluster(nw, nil)
		h := NewHistory()

		// Random interleaved appends and reads over virtual time.
		for i := 0; i < 40; i++ {
			at := sim.Time(rng.Float64() * 30)
			nodeID := rng.Intn(5)
			if rng.Bool() {
				val := int64(1)
				if rng.Bool() {
					val = -1
				}
				i := i
				s.At(at, func() {
					c.Nodes[nodeID].InstrumentedAppend(s, h, val, int32(i), nil)
				})
			} else {
				s.At(at, func() {
					c.Nodes[nodeID].InstrumentedRead(s, h, nil)
				})
			}
		}
		s.Run()
		if violations := h.Check(); len(violations) != 0 {
			t.Fatalf("seed %d: history violations:\n%s", seed, strings.Join(violations, "\n"))
		}
	}
}

func TestHistoryConsistentUnderMinorityCrash(t *testing.T) {
	s := sim.New()
	rng := xrand.New(3, 3)
	nw := msgnet.New(s, rng.Split(), 5, 1.0)
	c := NewCluster(nw, nil)
	h := NewHistory()
	for i := 0; i < 20; i++ {
		at := sim.Time(rng.Float64() * 20)
		nodeID := rng.Intn(4) // node 4 will crash
		i := i
		if rng.Bool() {
			s.At(at, func() { c.Nodes[nodeID].InstrumentedAppend(s, h, 1, int32(i), nil) })
		} else {
			s.At(at, func() { c.Nodes[nodeID].InstrumentedRead(s, h, nil) })
		}
	}
	s.At(10, func() { c.Nodes[4].Crash() })
	s.Run()
	if violations := h.Check(); len(violations) != 0 {
		t.Fatalf("violations under crash:\n%s", strings.Join(violations, "\n"))
	}
}

// The checker itself must detect violations — feed it corrupted histories.
func TestHistoryCheckerDetectsPhantom(t *testing.T) {
	s := sim.New()
	h := NewHistory()
	doneRead := h.BeginRead(s, 0)
	doneRead([]SignedRecord{{Record: Record{Author: 1, Seq: 0, Value: 9}}})
	v := h.Check()
	if len(v) == 0 || !strings.Contains(v[0], "phantom") {
		t.Fatalf("phantom not detected: %v", v)
	}
}

func TestHistoryCheckerDetectsLostAppend(t *testing.T) {
	s := sim.New()
	h := NewHistory()
	rec := Record{Author: 0, Seq: 0, Value: 1}
	finish := h.BeginAppend(s, 0, rec)
	finish() // completed at time 0
	s.At(5, func() {
		done := h.BeginRead(s, 1)
		done(nil) // read at time 5 returns nothing: violation
	})
	s.Run()
	v := h.Check()
	if len(v) == 0 || !strings.Contains(v[0], "missed append") {
		t.Fatalf("lost append not detected: %v", v)
	}
}

func TestHistoryCheckerDetectsShrinkingRead(t *testing.T) {
	s := sim.New()
	h := NewHistory()
	rec := Record{Author: 0, Seq: 0, Value: 1}
	finishA := h.BeginAppend(s, 0, rec)
	finishA()
	r1 := h.BeginRead(s, 1)
	r1([]SignedRecord{{Record: rec}})
	s.At(1, func() {
		r2 := h.BeginRead(s, 1)
		r2(nil) // second read by same node loses the record
	})
	s.Run()
	v := h.Check()
	found := false
	for _, msg := range v {
		if strings.Contains(msg, "shrank") {
			found = true
		}
	}
	if !found {
		t.Fatalf("shrinking read not detected: %v", v)
	}
}

func TestHistoryIncompleteOpsIgnored(t *testing.T) {
	s := sim.New()
	h := NewHistory()
	h.BeginAppend(s, 0, Record{Author: 0}) // never completes
	h.BeginRead(s, 1)                      // never completes
	if v := h.Check(); len(v) != 0 {
		t.Fatalf("incomplete ops flagged: %v", v)
	}
}

package abdsim

import (
	"testing"
)

// FuzzUnmarshalRecord: arbitrary bytes must never panic and must only
// round-trip through valid records.
func FuzzUnmarshalRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(Record{Author: 1, Seq: 2, Round: 3, Value: 4}.Marshal())
	f.Add(make([]byte, recordSize))
	f.Add(make([]byte, recordSize+1))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := UnmarshalRecord(data)
		if err != nil {
			return
		}
		// A successfully parsed record re-marshals to the same bytes.
		out := rec.Marshal()
		if len(out) != len(data) {
			t.Fatalf("round trip length changed: %d -> %d", len(data), len(out))
		}
		for i := range out {
			if out[i] != data[i] {
				t.Fatalf("round trip changed byte %d", i)
			}
		}
	})
}

// FuzzDeliverAppend: arbitrary append bodies delivered to a node must
// never panic and never pollute the view with unverifiable records.
func FuzzDeliverAppend(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, recordSize+sigSize))
	f.Fuzz(func(t *testing.T, body []byte) {
		s, c := newCluster(3)
		c.Nodes[1].deliver(envelopeFor(1, "append", body))
		s.Run()
		if c.Nodes[1].ViewSize() != 0 {
			t.Fatal("unverifiable record entered the view")
		}
	})
}

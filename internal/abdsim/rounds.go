package abdsim

import (
	"fmt"

	"repro/internal/node"
	"repro/internal/sim"
)

// This file implements round-based full-participation protocols over the
// simulated append memory — the usage pattern Section 4 warns about:
// "a simulation of an algorithm where all nodes participate, such as
// Algorithm 1, would lead to exponential information exchange". Every
// round, every node appends and then reads; every read retransmits each
// responder's complete local view, whose size grows by n records per
// round, so total traffic grows superlinearly in the number of rounds.

// IteratedResult is the outcome of RunIterated.
type IteratedResult struct {
	Decisions []int64 // per correct node; crashed nodes keep 0
	Decided   []bool
	Rounds    int
	// BytesPerRound[r] is the network bytes consumed by round r.
	BytesPerRound []int
	// MsgsPerRound[r] is the message count of round r.
	MsgsPerRound []int
}

// RunIterated runs `rounds` rounds of iterated majority consensus over the
// cluster's simulated append memory: each round, every correct node
// appends its current value (round-labelled), waits for the round's
// traffic to drain, reads, and adopts the majority of the latest round's
// values. After the last round each node decides its current value.
//
// With crash failures only (Byzantine members of the cluster stay silent),
// one round already suffices for agreement — the paper's observation that
// crash-tolerant agreement is a one-round problem in the append memory;
// extra rounds let tests exercise the traffic growth.
func RunIterated(s *sim.Sim, c *Cluster, inputs []int64, rounds int) (*IteratedResult, error) {
	n := c.NW.N()
	if len(inputs) != n {
		return nil, fmt.Errorf("abdsim: %d inputs for %d nodes", len(inputs), n)
	}
	if rounds < 1 {
		return nil, fmt.Errorf("abdsim: rounds must be >= 1")
	}
	res := &IteratedResult{
		Decisions:     make([]int64, n),
		Decided:       make([]bool, n),
		Rounds:        rounds,
		BytesPerRound: make([]int, rounds),
		MsgsPerRound:  make([]int, rounds),
	}
	current := append([]int64(nil), inputs...)

	for r := 0; r < rounds; r++ {
		before := c.NW.Stats()
		// Phase 1: everyone appends its current value.
		for i, nd := range c.Nodes {
			if nd == nil || nd.crashed {
				continue
			}
			nd.Append(current[i], int32(r), nil)
		}
		s.Run() // drain append + ack traffic

		// Phase 2: everyone reads and adopts the round's majority.
		for i, nd := range c.Nodes {
			if nd == nil || nd.crashed {
				continue
			}
			i := i
			r := r
			nd.Read(func(view []SignedRecord) {
				var sum int64
				for _, sr := range view {
					if sr.Record.Round == int32(r) {
						sum += sr.Record.Value
					}
				}
				current[i] = node.Sign(sum)
			})
		}
		s.Run() // drain read + view traffic

		after := c.NW.Stats()
		res.BytesPerRound[r] = after.Bytes - before.Bytes
		res.MsgsPerRound[r] = after.Messages - before.Messages
	}

	for i, nd := range c.Nodes {
		if nd == nil || nd.crashed {
			continue
		}
		res.Decisions[i] = current[i]
		res.Decided[i] = true
	}
	return res, nil
}

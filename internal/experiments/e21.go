package experiments

import (
	"repro/internal/runner"
	"repro/internal/scenario"
)

// RunE21 — why Algorithm 6 cites GHOST. The paper grounds the DAG's
// ordering in "one of the tie-breaking rules, such as the heaviest chain
// defined in the GHOST protocol [22] or simply the longest chain [14]".
// E8 showed the two rules behave identically under the pivot-extending
// attack; this experiment shows where they separate — the attack GHOST
// was invented against. The Byzantine nodes build one compact private
// chain from the genesis, never referencing honest blocks. Honest
// Δ-staleness forks dilute the honest *longest* selected-parent chain, so
// at high rates the fork-free private chain out-lengths it and hijacks a
// longest-chain pivot; GHOST weighs whole subtrees, which forks do not
// dilute, and keeps following the honest side far longer.
func RunE21(o Options) []*Table {
	trials := o.trials(60)
	lambdas := []float64{0.25, 0.5, 1.0, 2.0}
	if o.Quick {
		trials = o.trials(20)
		lambdas = []float64{0.25, 1.0, 2.0}
	}
	n, t, k := 10, 4, 41
	tbl := NewTable("E21: private genesis-rooted fork vs the two pivot rules (n=10, t=4, k=41)",
		"λ", "GHOST validity", "longest-chain validity")
	for _, lambda := range lambdas {
		lambda := lambda
		run := func(p scenario.Pivot) runner.Ratio {
			b := scenario.MustBind(scenario.Spec{
				Protocol: scenario.Dag, N: n, T: t, Lambda: lambda, K: k,
				Pivot: p, Attack: scenario.AttackPrivateFork,
			})
			return runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool {
				return b.Randomized(seed).Verdict.Validity
			})
		}
		tbl.AddRow(lambda, run(scenario.PivotGhost), run(scenario.PivotLongest))
		row := len(tbl.Rows) - 1
		tbl.ExpectCell(row, 1, OpGe, row, 2, 0.05,
			"refs [22],[14]: GHOST weighs subtrees that forks cannot dilute — it never loses to longest-chain here")
	}
	tbl.ExpectCell(len(tbl.Rows)-1, 1, OpGe, len(tbl.Rows)-1, 2, 0,
		"refs [22],[14]: at the highest rate GHOST strictly dominates the longest-chain pivot")
	tbl.Note = "forks dilute length but not weight: GHOST resists the private fork far longer — the [22] result, reproduced inside the append memory"
	return []*Table{tbl}
}

// Package experiments regenerates every quantitative claim of the paper as
// a printed table: one experiment per theorem/lemma (see DESIGN.md's
// experiment index E1–E20). The same functions back the amexp CLI and the
// root-level benchmarks, so a reader can diff "paper says" against
// "this machine measured" from either entry point.
//
// Experiments are deterministic given (Options.Seed, Options.Trials);
// trials fan out across CPU cores with share-nothing workers (each trial
// builds its own simulator and memory), merged in trial order.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
)

// Options scales an experiment run.
type Options struct {
	// Trials is the number of repetitions per parameter point; 0 means the
	// experiment's default.
	Trials int
	// Seed is the base seed; trial i of a point uses Seed + i.
	Seed uint64
	// Quick trims parameter grids for fast smoke runs (benches use this).
	Quick bool
}

func (o Options) trials(def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	return def
}

// Experiment is one reproducible unit: a theorem or lemma of the paper.
type Experiment struct {
	ID       string // "E1" .. "E10"
	Title    string
	PaperRef string // theorem/lemma/section
	Run      func(Options) []*Table
}

// All returns every experiment in order. The slice is freshly allocated.
func All() []Experiment {
	return []Experiment{
		{"E1", "Asynchronous impossibility (model checking)", "Theorem 2.1, Lemmas 2.2-2.3", RunE1},
		{"E2", "Round lower bound staircase", "Lemma 3.1", RunE2},
		{"E3", "Synchronous BA resilience t < n/2", "Theorem 3.2", RunE3},
		{"E4", "Timestamp baseline validity decay", "Theorem 5.2", RunE4},
		{"E5", "Chain, deterministic tie-breaking: n/3 collapse", "Theorem 5.3", RunE5},
		{"E6", "Chain, randomized tie-breaking: rate-dependent resilience", "Theorem 5.4", RunE6},
		{"E7", "Private-chain insertion grows like log n", "Lemma 5.5", RunE7},
		{"E8", "DAG resilience independent of the rate", "Theorem 5.6", RunE8},
		{"E9", "Message-passing simulation cost", "Section 4", RunE9},
		{"E10", "Headline: Chain vs DAG vs Timestamps", "Section 5", RunE10},
		{"E11", "DAG finality under temporal asynchrony", "Section 5.3 (closing discussion)", RunE11},
		{"E12", "Ablation: honest staleness causes the chain collapse", "Theorem 5.4 (mechanism)", RunE12},
		{"E13", "Sticky bits vs append memory separation", "Section 1.2", RunE13},
		{"E14", "Backbone properties: growth, quality, common prefix", "Section 5.2 (context)", RunE14},
		{"E15", "Append memory vs message passing: cost and the shared staircase", "Sections 1.3, 3, 4", RunE15},
		{"E16", "Asynchronous nodes defeat randomized access", "Theorem 5.1", RunE16},
		{"E17", "Access-discipline ablation: burstiness vs rate", "Section 1.1 / Lemma 5.5 / Theorem 5.4", RunE17},
		{"E18", "Decision latency across structures", "Theorem 3.2 / Section 5", RunE18},
		{"E19", "Confirmation depth: a null result, and why", "extension / Lemma 5.5", RunE19},
		{"E20", "Hashing power, not head count: heterogeneous rates", "Section 1.1 (PoW reading)", RunE20},
		{"E21", "The GHOST advantage: private forks vs pivot rules", "Section 5.3 (refs [22],[14])", RunE21},
	}
}

// ByID returns the experiment with the given id (case-insensitive).
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// Table is a rendered result: named columns, string cells.
type Table struct {
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
}

// NewTable creates a table with the given title and columns.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// AddRow appends a row; cells are formatted with %v, floats with %.4g.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// parallelTrials runs f for seeds base..base+n-1 on all cores and returns
// the results in seed order. f must be a pure function of its seed.
func parallelTrials[T any](n int, base uint64, f func(seed uint64) T) []T {
	out := make([]T, n)
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = f(base + uint64(i))
			}
		}()
	}
	wg.Wait()
	return out
}

// rate formats successes/trials as "0.85 (17/20)".
func rate(successes, trials int) string {
	if trials == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f (%d/%d)", float64(successes)/float64(trials), successes, trials)
}

// countTrue counts true values.
func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

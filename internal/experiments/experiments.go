// Package experiments regenerates every quantitative claim of the paper as
// structured, typed results: one experiment per theorem/lemma (see
// DESIGN.md's experiment index E1–E22). Each run yields tables of typed
// cells plus declarative checks — the paper's predictions as executable
// predicates — and the same functions back the amexp CLI and the
// root-level benchmarks, so a reader can diff "paper says" against
// "this machine measured" from either entry point. Rendering (text,
// markdown, JSON, CSV) lives in internal/report.
//
// Experiments are deterministic given (Options.Seed, Options.Trials);
// trials fan out across share-nothing workers (each trial builds its own
// simulator and memory) via internal/runner, merged in trial order.
package experiments

import "strings"

// Options scales an experiment run.
type Options struct {
	// Trials is the number of repetitions per parameter point; 0 means the
	// experiment's default.
	Trials int `json:"trials,omitempty"`
	// Seed is the base seed; trial i of a point uses Seed + i.
	Seed uint64 `json:"seed"`
	// Quick trims parameter grids for fast smoke runs (benches use this).
	Quick bool `json:"quick,omitempty"`
	// Workers overrides the trial fan-out width; 0 means one per CPU.
	Workers int `json:"workers,omitempty"`
}

func (o Options) trials(def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	return def
}

// Experiment is one reproducible unit: a theorem or lemma of the paper.
type Experiment struct {
	ID       string // "E1" .. "E22"
	Title    string
	PaperRef string // theorem/lemma/section
	Run      func(Options) []*Table
}

// All returns every experiment in order. The slice is freshly allocated.
func All() []Experiment {
	return []Experiment{
		{"E1", "Asynchronous impossibility (model checking)", "Theorem 2.1, Lemmas 2.2-2.3", RunE1},
		{"E2", "Round lower bound staircase", "Lemma 3.1", RunE2},
		{"E3", "Synchronous BA resilience t < n/2", "Theorem 3.2", RunE3},
		{"E4", "Timestamp baseline validity decay", "Theorem 5.2", RunE4},
		{"E5", "Chain, deterministic tie-breaking: n/3 collapse", "Theorem 5.3", RunE5},
		{"E6", "Chain, randomized tie-breaking: rate-dependent resilience", "Theorem 5.4", RunE6},
		{"E7", "Private-chain insertion grows like log n", "Lemma 5.5", RunE7},
		{"E8", "DAG resilience independent of the rate", "Theorem 5.6", RunE8},
		{"E9", "Message-passing simulation cost", "Section 4", RunE9},
		{"E10", "Headline: Chain vs DAG vs Timestamps", "Section 5", RunE10},
		{"E11", "DAG finality under temporal asynchrony", "Section 5.3 (closing discussion)", RunE11},
		{"E12", "Ablation: honest staleness causes the chain collapse", "Theorem 5.4 (mechanism)", RunE12},
		{"E13", "Sticky bits vs append memory separation", "Section 1.2", RunE13},
		{"E14", "Backbone properties: growth, quality, common prefix", "Section 5.2 (context)", RunE14},
		{"E15", "Append memory vs message passing: cost and the shared staircase", "Sections 1.3, 3, 4", RunE15},
		{"E16", "Asynchronous nodes defeat randomized access", "Theorem 5.1", RunE16},
		{"E17", "Access-discipline ablation: burstiness vs rate", "Section 1.1 / Lemma 5.5 / Theorem 5.4", RunE17},
		{"E18", "Decision latency across structures", "Theorem 3.2 / Section 5", RunE18},
		{"E19", "Confirmation depth: a null result, and why", "extension / Lemma 5.5", RunE19},
		{"E20", "Hashing power, not head count: heterogeneous rates", "Section 1.1 (PoW reading)", RunE20},
		{"E21", "The GHOST advantage: private forks vs pivot rules", "Section 5.3 (refs [22],[14])", RunE21},
		{"E22", "Chain vs DAG across network topologies", "Theorems 5.4/5.6 under gossip transport", RunE22},
		{"E23", "Bounded-memory horizons: windowed views and checkpointed prefixes", "Definition 2.1 (view inclusion) / Section 4 (cost)", RunE23},
		{"E24", "Searched adversaries beat hand-coded presets", "Theorems 5.3/5.6, Lemma 5.5 (worst-case strategies)", RunE24},
	}
}

// byID indexes the registry once; ByID lookups must not re-allocate and
// re-scan All() (amexp and the bench harness look experiments up per run).
var byID = func() map[string]Experiment {
	m := make(map[string]Experiment, len(All()))
	for _, e := range All() {
		m[strings.ToUpper(e.ID)] = e
	}
	return m
}()

// ByID returns the experiment with the given id (case-insensitive).
func ByID(id string) (Experiment, bool) {
	e, ok := byID[strings.ToUpper(id)]
	return e, ok
}

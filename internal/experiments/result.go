package experiments

import (
	"time"

	"repro/internal/scenario"
)

// Result is one experiment run as a structured record: identity, the
// options it ran under, typed tables, the declarative paper predictions
// against those tables, and wall-clock cost. It is the unit the report
// package renders and the bench harness records.
type Result struct {
	ID       string        `json:"id"`
	Title    string        `json:"title"`
	PaperRef string        `json:"paper_ref"`
	Options  Options       `json:"options"`
	Seed     uint64        `json:"seed"`
	Tables   []*Table      `json:"tables"`
	Checks   []Check       `json:"checks,omitempty"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	// Reuse aggregates checkpoint prefix-reuse counts hoisted from the
	// tables; nil when no table ran a checkpointed sweep.
	Reuse *scenario.ReuseStats `json:"reuse,omitempty"`
}

// NewResult assembles a Result from already-built tables, hoisting the
// checks each table declared into Result.Checks with table indices
// resolved. Callers outside the experiment registry (amcheck) use it to
// wrap ad-hoc tables in the same structured record.
func NewResult(id, title, paperRef string, tables []*Table) *Result {
	r := &Result{ID: id, Title: title, PaperRef: paperRef, Tables: tables}
	for ti, t := range tables {
		for _, c := range t.checks {
			c.Table = ti
			if c.Against != nil {
				ref := *c.Against // copy: the table's declaration stays index-free
				ref.Table = ti
				c.Against = &ref
			}
			r.Checks = append(r.Checks, c)
		}
		t.checks = nil
		if t.Reuse != nil {
			if r.Reuse == nil {
				r.Reuse = &scenario.ReuseStats{}
			}
			r.Reuse.Captured += t.Reuse.Captured
			r.Reuse.Resumed += t.Reuse.Resumed
		}
	}
	return r
}

// Run executes the experiment and assembles its Result.
func Run(e Experiment, o Options) *Result {
	start := time.Now()
	tables := e.Run(o)
	r := NewResult(e.ID, e.Title, e.PaperRef, tables)
	r.Options = o
	r.Seed = o.Seed
	r.Elapsed = time.Since(start)
	return r
}

// EvalChecks evaluates every declared check against the result's tables.
func (r *Result) EvalChecks() []CheckResult {
	out := make([]CheckResult, len(r.Checks))
	for i, c := range r.Checks {
		out[i] = c.Eval(r.Tables)
	}
	return out
}

// FailedChecks counts the checks that did not pass.
func FailedChecks(results []CheckResult) int {
	n := 0
	for _, cr := range results {
		if !cr.Pass {
			n++
		}
	}
	return n
}

package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// Markdown renders the table as GitHub-flavoured markdown (used by
// `amexp -format md` to regenerate EXPERIMENTS.md sections).
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Cols, " | ") + " |\n")
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n_%s_\n", t.Note)
	}
	return b.String()
}

// CellValue extracts the leading float of a cell ("0.85 (17/20)" → 0.85).
// ok is false for non-numeric cells.
func CellValue(cell string) (float64, bool) {
	fields := strings.Fields(cell)
	if len(fields) == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Bars renders one numeric column of the table as a horizontal bar chart
// — the textual "figure" form of a sweep. Bars scale to the column's
// maximum; width is the maximum bar length in characters. Non-numeric
// cells render as empty bars.
func (t *Table) Bars(col, width int) string {
	if col < 0 || col >= len(t.Cols) || width < 1 {
		return ""
	}
	maxVal := 0.0
	vals := make([]float64, len(t.Rows))
	oks := make([]bool, len(t.Rows))
	for i, row := range t.Rows {
		if col < len(row) {
			vals[i], oks[i] = CellValue(row[col])
			if oks[i] && vals[i] > maxVal {
				maxVal = vals[i]
			}
		}
	}
	labelW := 0
	for _, row := range t.Rows {
		if len(row[0]) > labelW {
			labelW = len(row[0])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s\n", t.Cols[col], t.Cols[0])
	for i, row := range t.Rows {
		n := 0
		if oks[i] && maxVal > 0 {
			n = int(vals[i]/maxVal*float64(width) + 0.5)
		}
		fmt.Fprintf(&b, "%-*s |%s%s", labelW, row[0], strings.Repeat("█", n), strings.Repeat(" ", width-n))
		if oks[i] {
			fmt.Fprintf(&b, "| %.3g\n", vals[i])
		} else {
			b.WriteString("| -\n")
		}
	}
	return b.String()
}

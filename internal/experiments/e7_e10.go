package experiments

import (
	"fmt"
	"math"

	"repro/internal/abdsim"
	"repro/internal/access"
	"repro/internal/dag"
	"repro/internal/msgnet"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// maxByzGapBurst simulates the raw Poisson token stream for n nodes (t of
// them Byzantine) until `grants` grants have been issued and returns the
// largest number of Byzantine grants that fall inside one correct-silent
// interval — the length of the private chain Lemma 5.5's adversary can
// insert.
func maxByzGapBurst(seed uint64, n, t int, lambda float64, grants int) int {
	s := sim.New()
	rng := xrand.New(seed, 0xE7)
	maxBurst, burst := 0, 0
	var authority *access.PoissonAuthority
	authority = access.NewPoissonAuthority(s, rng, n, lambda, 1.0, func(g access.Grant) {
		if int(g.Node) >= n-t {
			burst++
			if burst > maxBurst {
				maxBurst = burst
			}
		} else {
			burst = 0
		}
		if g.Seq+1 >= grants {
			authority.Stop()
			s.Stop()
		}
	})
	authority.Start()
	s.Run()
	return maxBurst
}

// RunE7 — Lemma 5.5: the number of extra Byzantine values insertable just
// before the decision grows like Θ(λ log n). Table (a) measures the purest
// form of the quantity — the maximum Byzantine burst within one
// correct-silent interval of the token stream — across n, and fits
// a + b·log n. Table (b) confirms the mechanism end-to-end: the longest
// consecutive Byzantine run inside the first k ordered values of actual
// DAG executions under the DagChainExtender.
func RunE7(o Options) []*Table {
	trials := o.trials(100)
	ns := []int{8, 16, 32, 64, 128, 256}
	if o.Quick {
		trials = o.trials(30)
		ns = []int{8, 32, 128}
	}
	const lambda = 1.0

	burstTbl := NewTable("E7a: max Byzantine burst in one correct-silent interval (t = n/4, λ=1, 40n grants)",
		"n", "log n", "mean max burst", "±95%")
	var xs, ys []float64
	for _, n := range ns {
		n := n
		bursts := runner.Trials(trials, o.Seed, o.Workers, func(seed uint64) float64 {
			return float64(maxByzGapBurst(seed, n, n/4, lambda, 40*n))
		})
		sum := stats.Summarize(bursts)
		burstTbl.AddRow(n, math.Log(float64(n)), sum.Mean, sum.CI95())
		xs = append(xs, float64(n))
		ys = append(ys, sum.Mean)
	}
	a, b, r2 := stats.LogFit(xs, ys)
	burstTbl.Note = fmt.Sprintf("log fit: burst ≈ %.3g + %.3g·log n, r² = %.3f — the Θ(λ log n) of Lemma 5.5", a, b, r2)
	burstTbl.ExpectCell(len(burstTbl.Rows)-1, 2, OpGt, 0, 2, 0,
		"Lemma 5.5: the max Byzantine burst grows with n — Θ(λ log n), not O(1)")

	runTbl := NewTable("E7b: longest Byzantine run in the first k ordered DAG values (DagChainExtender, t/n=0.25, λ=1, k=81)",
		"n", "mean max run", "±95%", "byz fraction in first k")
	runNs := []int{8, 16, 32}
	if o.Quick {
		runNs = []int{8, 16}
	}
	for _, n := range runNs {
		type res struct {
			maxRun int
			frac   float64
		}
		b := scenario.MustBind(scenario.Spec{
			Protocol: scenario.Dag, N: n, T: n / 4, Lambda: lambda, K: 81,
			Attack: scenario.AttackPrivateChain,
		})
		rs := runner.Trials(trials/2+1, o.Seed, o.Workers, func(seed uint64) res {
			r := b.Randomized(seed)
			d := dag.Build(r.FinalView)
			order := d.Linearize(d.GhostPivot())
			if len(order) > 81 {
				order = order[:81]
			}
			maxRun, run, byz := 0, 0, 0
			for _, id := range order {
				if r.Roster.IsByzantine(r.FinalView.Message(id).Author) {
					byz++
					run++
					if run > maxRun {
						maxRun = run
					}
				} else {
					run = 0
				}
			}
			frac := 0.0
			if len(order) > 0 {
				frac = float64(byz) / float64(len(order))
			}
			return res{maxRun, frac}
		})
		var runs, fracs []float64
		for _, r := range rs {
			runs = append(runs, float64(r.maxRun))
			fracs = append(fracs, r.frac)
		}
		rs1, rs2 := stats.Summarize(runs), stats.Summarize(fracs)
		runTbl.AddRow(n, rs1.Mean, rs1.CI95(), rs2.Mean)
		runTbl.Expect(len(runTbl.Rows)-1, 3, OpGt, 0.25, 0,
			"Lemma 5.5: the Byzantine share of the ordered prefix exceeds the token share t/n = 0.25")
	}
	runTbl.Note = "the Byzantine share of the ordering exceeds the token share t/n — the inserted private chains"
	return []*Table{burstTbl, runTbl}
}

// RunE8 — Theorem 5.6: DAG resilience is independent of the access rate λ
// and close to the optimal 1/2. Table (a) sweeps (t/n, λ); validity stays
// flat in λ and degrades only as t/n approaches 1/2. Table (b) compares
// the GHOST and longest-chain pivot rules at the hostile corner.
func RunE8(o Options) []*Table {
	trials := o.trials(60)
	k := 81
	lambdas := []float64{0.05, 0.2, 1.0}
	ts := []int{2, 3, 4}
	if o.Quick {
		trials = o.trials(20)
		lambdas = []float64{0.05, 1.0}
		ts = []int{2, 4}
	}
	n := 10
	cols := []string{"t", "t/n"}
	for _, lambda := range lambdas {
		cols = append(cols, fmt.Sprintf("λ=%.2g", lambda))
	}
	grid := NewTable("E8a: DAG (GHOST pivot) validity vs DagChainExtender, n=10, k=81", cols...)
	cell := func(t int, lambda float64) runner.Ratio {
		b := scenario.MustBind(scenario.Spec{
			Protocol: scenario.Dag, N: n, T: t, Lambda: lambda, K: k,
			Attack: scenario.AttackPrivateChain,
		})
		return runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool {
			return b.Randomized(seed).Verdict.Validity
		})
	}
	for _, t := range ts {
		row := []any{t, Float(float64(t)/float64(n), "%.2f")}
		for _, lambda := range lambdas {
			row = append(row, cell(t, lambda))
		}
		grid.AddRow(row...)
		ri := len(grid.Rows) - 1
		grid.ExpectCell(ri, len(cols)-1, OpEq, ri, 2, 0.15,
			"Theorem 5.6: DAG validity is independent of the rate — the highest-λ column matches the lowest")
		for ci := 2; ci < len(cols); ci++ {
			grid.Expect(ri, ci, OpGe, 0.75, 0,
				"Theorem 5.6: DAG resilience stays near the optimal 1/2 for every t/n <= 0.4")
		}
	}
	grid.Note = "columns barely move with λ (contrast E6a, where the chain collapses by λ=0.25)"

	pivots := NewTable("E8b: pivot rule comparison at the hostile corner (n=10, t=4, λ=1, k=81)",
		"pivot", "validity ok")
	for _, p := range []scenario.Pivot{scenario.PivotGhost, scenario.PivotLongest} {
		b := scenario.MustBind(scenario.Spec{
			Protocol: scenario.Dag, N: n, T: 4, Lambda: 1, K: k,
			Pivot: p, Attack: scenario.AttackPrivateChain,
		})
		oks := runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool {
			return b.Randomized(seed).Verdict.Validity
		})
		pivots.AddRow(string(p), oks)
		pivots.Expect(len(pivots.Rows)-1, 1, OpGe, 0.75, 0,
			"Theorem 5.6: both pivot rules hold validity under the pivot-extending attack at the hostile corner")
	}
	return []*Table{grid, pivots}
}

// RunE9 — Section 4: the ABD-style simulation's message complexity. One
// append costs n broadcast messages plus n ack-broadcasts (n² messages);
// one read costs n requests plus n view responses whose size grows with
// the memory — the "exponential information exchange" warning when every
// node participates in every round.
func RunE9(o Options) []*Table {
	ns := []int{4, 8, 16, 32}
	if o.Quick {
		ns = []int{4, 16}
	}
	tbl := NewTable("E9: message cost of the append-memory simulation (Algorithms 2+3)",
		"n", "append msgs", "theory n+n²", "read msgs", "theory 2n", "read bytes", "view bytes growth")
	for _, n := range ns {
		s := sim.New()
		nw := msgnet.New(s, xrand.New(o.Seed, uint64(n)), n, 1.0)
		c := abdsim.NewCluster(nw, nil)
		c.Nodes[0].Append(+1, 0, nil)
		s.Run()
		st0 := nw.Stats()
		appendMsgs := st0.ByKind["append"] + st0.ByKind["ack"]

		c.Nodes[1].Read(nil)
		s.Run()
		st1 := nw.Stats()
		readMsgs := st1.ByKind["read"] + st1.ByKind["view"] - (st0.ByKind["read"] + st0.ByKind["view"])
		readBytes := st1.Bytes - st0.Bytes

		// Grow the memory and read again: view responses carry the whole
		// memory, so bytes per read grow linearly with history.
		for i := 0; i < 8; i++ {
			c.Nodes[i%n].Append(int64(i), 0, nil)
		}
		s.Run()
		st2 := nw.Stats()
		c.Nodes[2].Read(nil)
		s.Run()
		st3 := nw.Stats()
		grownReadBytes := st3.Bytes - st2.Bytes

		tbl.AddRow(n, appendMsgs, n+n*n, readMsgs, 2*n, readBytes,
			fmt.Sprintf("%d -> %d", readBytes, grownReadBytes))
		row := len(tbl.Rows) - 1
		tbl.ExpectCell(row, 1, OpEq, row, 2, 0,
			"Section 4: one append costs exactly n broadcast + n² ack messages")
		tbl.ExpectCell(row, 3, OpEq, row, 4, 0,
			"Section 4: one read costs exactly n requests + n view responses")
	}
	tbl.Note = "every local view is retransmitted in full on each read — protocols with full participation pay ever-growing traffic"
	return []*Table{tbl}
}

// RunE10 — the headline figure of Section 5: at a fixed Byzantine share
// t/n = 0.4, sweep the access rate and compare validity across the three
// structures. The chain dies as λ(n−t) grows; the DAG and the timestamp
// baseline do not care.
func RunE10(o Options) []*Table {
	trials := o.trials(60)
	lambdas := []float64{0.05, 0.1, 0.25, 0.5, 1.0}
	if o.Quick {
		trials = o.trials(20)
		lambdas = []float64{0.05, 0.25, 1.0}
	}
	n, t, k := 10, 4, 41
	tbl := NewTable("E10: validity at t/n = 0.4 (n=10, k=41) under each structure's worst adversary",
		"λ", "λ(n-t)", "chain bound 1/(1+λ(n-t))", "chain (rand ties)", "DAG (GHOST)", "timestamps")
	for _, lambda := range lambdas {
		validity := func(spec scenario.Spec) runner.Ratio {
			spec.N, spec.T, spec.Lambda, spec.K = n, t, lambda, k
			b := scenario.MustBind(spec)
			return runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool {
				return b.Randomized(seed).Verdict.Validity
			})
		}
		chainOK := validity(scenario.Spec{Protocol: scenario.Chain, Attack: scenario.AttackTieBreak})
		dagOK := validity(scenario.Spec{Protocol: scenario.Dag, Attack: scenario.AttackPrivateChain})
		tsOK := validity(scenario.Spec{Protocol: scenario.Timestamp, Attack: scenario.AttackFlip})
		rateNT := lambda * float64(n-t)
		tbl.AddRow(lambda, rateNT, 1/(1+rateNT), chainOK, dagOK, tsOK)
		row := len(tbl.Rows) - 1
		tbl.ExpectCell(row, 4, OpGe, row, 3, 0,
			"Section 5 headline: at every rate the DAG is at least as resilient as the chain")
		tbl.Expect(row, 4, OpGe, 0.7, 0,
			"Theorem 5.6: DAG validity stays high at t/n = 0.4 regardless of the rate")
		tbl.Expect(row, 5, OpGe, 0.75, 0,
			"Theorem 5.2: the timestamp baseline ignores the rate entirely")
	}
	tbl.Expect(len(tbl.Rows)-1, 3, OpLe, 0.2, 0,
		"Theorem 5.4: at the highest rate the chain's bound 1/(1+λ(n-t)) is far below t/n and validity collapses")
	tbl.Note = "why BlockDAGs excel blockchains: the DAG column tracks the timestamp baseline; the chain column tracks its rate-dependent bound"
	return []*Table{tbl}
}

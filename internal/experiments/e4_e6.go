package experiments

import (
	"math"

	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// tsTail returns Theorem 5.2's analytic validity-failure estimate: the
// normal approximation P[sum of k ±1 votes < 0] with vote distribution
// P[+1] = (n−t)/n.
func tsTail(k, n, t int) float64 {
	p := float64(n-t) / float64(n)
	mu := float64(k) * (2*p - 1)
	sigma := math.Sqrt(float64(k) * (1 - (2*p-1)*(2*p-1)))
	if sigma == 0 {
		return 0
	}
	return stats.NormalTail(mu/sigma, 0, 1)
}

// RunE4 — Theorem 5.2: the timestamp baseline satisfies validity with a
// failure probability decaying exponentially in k·((n−2t)/n)². Two
// regimes: a tight margin n−2t = 2 (k must be large) and a wide margin
// n−2t = Ω(n) (small k suffices). Agreement and termination never fail.
func RunE4(o Options) []*Table {
	trials := o.trials(200)
	ks := []int{5, 11, 21, 41, 81}
	if o.Quick {
		trials = o.trials(40)
		ks = []int{5, 21, 81}
	}
	var tables []*Table
	for _, regime := range []struct {
		name string
		n, t int
	}{
		{"tight margin (n=10, t=4, n-2t=2)", 10, 4},
		{"wide margin (n=10, t=2, n-2t=6)", 10, 2},
	} {
		tbl := NewTable("E4: timestamp baseline, "+regime.name,
			"k", "validity failures", "analytic tail", "agreement failures", "termination failures")
		for _, k := range ks {
			type res struct{ val, agr, term bool }
			type fails struct{ val, agr, term int }
			b := scenario.MustBind(scenario.Spec{
				Protocol: scenario.Timestamp, N: regime.n, T: regime.t,
				Lambda: 0.5, K: k, Attack: scenario.AttackFlip,
			})
			fs := runner.TrialsReduce(trials, o.Seed, o.Workers, fails{}, func(seed uint64) res {
				r := b.Randomized(seed)
				return res{!r.Verdict.Validity, !r.Verdict.Agreement, !r.Verdict.Termination}
			}, func(a fails, r res) fails {
				if r.val {
					a.val++
				}
				if r.agr {
					a.agr++
				}
				if r.term {
					a.term++
				}
				return a
			})
			tbl.AddRow(k, runner.Rate(fs.val, trials), tsTail(k, regime.n, regime.t), fs.agr, fs.term)
			row := len(tbl.Rows) - 1
			tbl.Expect(row, 3, OpEq, 0, 0,
				"Theorem 5.2: agreement is deterministic — the authority's order is total")
			tbl.Expect(row, 4, OpEq, 0, 0,
				"Theorem 5.2: termination is deterministic — k values always arrive")
		}
		tbl.ExpectCell(len(tbl.Rows)-1, 1, OpLe, 0, 1, 0,
			"Theorem 5.2: validity failures decay with k — the largest k is no worse than the smallest")
		tbl.Note = "agreement/termination are deterministic (the authority's order is total); only validity is weak"
		tables = append(tables, tbl)
	}
	return tables
}

// RunE5 — Theorem 5.3: with worst-case deterministic tie-breaking, the
// fork adversary drives the Byzantine fraction of the longest chain to
// t/(n−t); once that crosses 1/2 — i.e. t ≥ n/3 — validity collapses.
func RunE5(o Options) []*Table {
	trials := o.trials(60)
	if o.Quick {
		trials = o.trials(20)
	}
	n, lambda, k := 9, 0.5, 41
	tbl := NewTable("E5: chain + deterministic (adversarial) tie-breaking vs ChainForker, n=9, λ=0.5, k=41",
		"t", "t/n", "validity ok", "byz chain fraction", "theory t/(n-t)")
	for _, t := range []int{1, 2, 3, 4, 5} {
		t := t
		type res struct {
			ok   bool
			frac float64
		}
		type acc struct {
			oks     int
			fracSum float64
		}
		tb := chain.AdversarialTieBreaker{IsByzantine: func(id appendmem.NodeID) bool { return int(id) >= n-t }}
		b := scenario.MustBind(scenario.Spec{
			Protocol: scenario.Chain, N: n, T: t, Lambda: lambda, K: k,
			TieBreak: scenario.TieAdversarial, Attack: scenario.AttackFork,
		})
		sums := runner.TrialsReduce(trials, o.Seed, o.Workers, acc{}, func(seed uint64) res {
			r := b.Randomized(seed)
			tree := chain.Build(r.FinalView)
			tips := tree.LongestTips()
			frac := 0.0
			if len(tips) > 0 {
				ids := tree.ChainTo(tb.Pick(tips, r.FinalView, nil))
				if len(ids) > k {
					ids = ids[:k]
				}
				byz := 0
				for _, id := range ids {
					if r.Roster.IsByzantine(r.FinalView.Message(id).Author) {
						byz++
					}
				}
				frac = float64(byz) / float64(len(ids))
			}
			return res{r.Verdict.Validity, frac}
		}, func(a acc, r res) acc {
			if r.ok {
				a.oks++
			}
			a.fracSum += r.frac
			return a
		})
		tbl.AddRow(t, Float(float64(t)/float64(n), "%.2f"),
			runner.Rate(sums.oks, trials), sums.fracSum/float64(trials), float64(t)/float64(n-t))
		row := len(tbl.Rows) - 1
		if t < 3 {
			tbl.Expect(row, 2, OpGe, 0.9, 0,
				"Theorem 5.3: below t = n/3 the Byzantine chain fraction stays under 1/2 and validity holds")
		} else if t > 3 {
			tbl.Expect(row, 2, OpLe, 0.5, 0,
				"Theorem 5.3: above t = n/3 worst-case tie-breaking collapses validity")
		}
	}
	tbl.Note = "collapse sets in above t = n/3 = 3, where the Byzantine chain fraction crosses 1/2"
	return []*Table{tbl}
}

// RunE6 — Theorem 5.4: with randomized tie-breaking the chain's resilience
// is t/n ≤ 1/(1+λ(n−t)). Table (a) fixes t/n = 0.4 and sweeps the rate:
// validity flips from holding to failing as the bound drops below 0.4.
// Table (b) fixes the rate and sweeps t/n across the predicted threshold.
func RunE6(o Options) []*Table {
	trials := o.trials(60)
	if o.Quick {
		trials = o.trials(20)
	}
	n, t, k := 10, 4, 21
	bind := func(nn, tt int, lambda float64) *scenario.Bound {
		return scenario.MustBind(scenario.Spec{
			Protocol: scenario.Chain, N: nn, T: tt, Lambda: lambda, K: k,
			Attack: scenario.AttackTieBreak,
		})
	}

	sweep := NewTable("E6a: chain + randomized tie-breaking vs ChainTieBreaker, t/n = 0.4 fixed, rate swept",
		"λ", "λ(n-t)", "paper bound t/n ≤", "t/n", "validity ok")
	lambdas := []float64{0.025, 0.05, 0.1, 0.25, 0.5, 1.0}
	if o.Quick {
		lambdas = []float64{0.05, 0.25, 1.0}
	}
	for _, lambda := range lambdas {
		b := bind(n, t, lambda)
		oks := runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool { return b.Randomized(seed).Verdict.Validity })
		rateNT := lambda * float64(n-t)
		tbl := 1 / (1 + rateNT)
		sweep.AddRow(lambda, rateNT, tbl, Float(float64(t)/float64(n), "%.2f"), oks)
	}
	sweep.Expect(0, 4, OpGe, 0.7, 0,
		"Theorem 5.4: at the lowest rate the bound 1/(1+λ(n-t)) exceeds t/n = 0.4 and validity holds")
	sweep.Expect(len(lambdas)-1, 4, OpLe, 0.15, 0,
		"Theorem 5.4: at λ=1 the bound drops far below t/n = 0.4 and validity collapses")
	sweep.Note = "validity holds while t/n is below the bound and collapses once the rate pushes the bound under t/n"

	thresh := NewTable("E6b: same attack, rate fixed at λ=0.25, Byzantine share swept (n=10, k=21)",
		"t", "t/n", "λ(n-t)", "paper bound t/n ≤", "validity ok")
	for _, tt := range []int{1, 2, 3, 4, 5} {
		b := bind(n, tt, 0.25)
		oks := runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool { return b.Randomized(seed).Verdict.Validity })
		rateNT := 0.25 * float64(n-tt)
		thresh.AddRow(tt, Float(float64(tt)/float64(n), "%.2f"), rateNT, 1/(1+rateNT), oks)
	}
	thresh.Expect(0, 4, OpGe, 0.9, 0,
		"Theorem 5.4: t/n = 0.1 sits well below the λ=0.25 bound — validity must hold")
	thresh.Expect(len(thresh.Rows)-1, 4, OpLe, 0.2, 0,
		"Theorem 5.4: t/n = 0.5 sits above the λ=0.25 bound — validity must collapse")
	return []*Table{sweep, thresh}
}

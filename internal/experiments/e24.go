package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/distrib"
	"repro/internal/scenario"
	"repro/internal/search"
)

// RunE24 — searched adversaries vs hand-coded presets: every named
// attack is one point in its template's parameter space, so an optimizer
// over that space must find a parameterization at least as strong as
// every preset. On the chain substrate (near the Theorem 5.3 boundary,
// where adversarial tie-breaking makes correct nodes split) the searched
// objective is the disagreement rate; on the DAG (where agreement is
// robust — Theorem 5.6 — but a withheld burst can stall decisions, Lemma
// 5.5) it is the mean decision latency. Both tables measure the presets
// and the searched winner at the same final-rung trial budget.
func RunE24(o Options) []*Table {
	final := o.trials(192)
	if o.Quick {
		final = o.trials(48)
	}
	r1 := final / 4
	if r1 < 1 {
		r1 = 1
	}
	rungs := []int{r1, final}
	if r1 >= final {
		rungs = []int{final}
	}
	// Pool of ~12 candidates: preset + grid + random, successive-halved.
	budget := 12 * (r1 + final/4 + 1)

	var tables []*Table
	for _, sub := range []struct {
		title   string
		obj     search.Objective
		scoreC  string
		tol     float64
		base    scenario.Spec
		presets []scenario.Attack
	}{
		{
			title:  "E24a: chain (n=9, t=3, λ=0.5, k=41, adversarial tie-break), objective: disagreement",
			obj:    search.Disagreement,
			scoreC: "disagreement rate",
			// Finite-sample slack: the searched winner is selected on the
			// same seeds it is scored on, the presets are measured fresh.
			tol:  0.06,
			base: scenario.Spec{Protocol: scenario.Chain, N: 9, T: 3, Lambda: 0.5, K: 41, TieBreak: scenario.TieAdversarial, Attack: scenario.AttackFork, Seed: o.Seed},
			presets: []scenario.Attack{
				scenario.AttackFork, scenario.AttackTieBreak, scenario.AttackEquivocate,
			},
		},
		{
			title:  "E24b: dag (n=9, t=3, λ=0.5, k=41, ghost), objective: decision latency",
			obj:    search.Latency,
			scoreC: "mean decide-time (Δ)",
			tol:    1.0,
			base:   scenario.Spec{Protocol: scenario.Dag, N: 9, T: 3, Lambda: 0.5, K: 41, Attack: scenario.AttackPrivateChain, Seed: o.Seed},
			presets: []scenario.Attack{
				scenario.AttackPrivateChain, scenario.AttackLastMinute, scenario.AttackPrivateFork,
			},
		},
	} {
		metricName, err := sub.obj.Metric()
		if err != nil {
			panic(err)
		}
		tbl := NewTable(sub.title, "strategy", "parameters", sub.scoreC, "violations/trial")

		// Every preset, measured at the final-rung budget the searched
		// winner is scored at.
		for _, att := range sub.presets {
			sp := sub.base
			sp.Attack = att
			sp.Trials = final
			sp.Metrics = []string{metricName, "violations"}
			pt := scenario.MustRunSpec(sp, scenario.Options{Workers: o.Workers}).Points[0]
			score, viol := 0.0, 0.0
			for _, mv := range pt.Metrics {
				switch mv.Name {
				case metricName:
					score = sub.obj.Score(mv.Value)
				case "violations":
					viol = mv.Value
				}
			}
			tbl.AddRow(string(att), "(preset)", score, viol)
		}

		res, err := search.Run(search.Config{
			Spec: sub.base, Objective: sub.obj,
			Budget: budget, Seed: o.Seed, Rungs: rungs,
			Distrib: distrib.Config{InlineWorkers: o.Workers},
		})
		if err != nil {
			panic(err)
		}
		schema := searchSchema(sub.base)
		tbl.AddRow("searched", res.Best.Text(schema), res.Best.Score, res.Best.Violations)

		last := len(tbl.Rows) - 1
		for i := range sub.presets {
			tbl.ExpectCell(last, 2, OpGe, i, 2, sub.tol,
				"the searched parameterization is at least as strong as every hand-coded preset (same budget, same seeds)")
		}
		tbl.Note = fmt.Sprintf(
			"all presets of one substrate are points in the same template parameter space; "+
				"the search explores that space with budget %d trials (pool %d, final rung %d)",
			budget, res.Candidates, final)
		tables = append(tables, tbl)
	}
	return tables
}

// searchSchema resolves the base attack's parameter schema for rendering
// the winner's assignment.
func searchSchema(s scenario.Spec) adversary.Schema {
	def, ok := scenario.Attacks.Lookup(string(s.Attack))
	if !ok {
		return nil
	}
	return def.Schema
}

package experiments

import (
	"repro/internal/runner"
	"repro/internal/scenario"
)

// RunE20 — hashing power, not head count. The paper counts Byzantine
// *nodes* because its model gives every node the same access rate λ; in
// the proof-of-work reading (which §1.1 invokes), what an adversary
// controls is a fraction of the total hashing power. Heterogeneous
// per-node rates make the translation exact: we compare three
// configurations with identical total rate and identical Byzantine RATE
// share (0.4) but very different Byzantine node counts —
//
//	uniform:        t=4 of n=10, every node at λ=0.5
//	few-but-strong: t=2 whales at λ=1.0, 8 honest at λ=0.375
//	many-but-weak:  t=6 at λ=1/3, 4 honest whales at λ=0.75
//
// Validity under each structure's worst adversary should match across the
// three rows: resilience is a function of the rate share t·λ_byz/Σλ, the
// quantity the paper's t/n stands for.
func RunE20(o Options) []*Table {
	trials := o.trials(60)
	if o.Quick {
		trials = o.trials(20)
	}
	const k = 41

	type shape struct {
		label string
		t     int
		rates []float64
	}
	mkRates := func(n int, honest, byz float64, t int) []float64 {
		rates := make([]float64, n)
		for i := range rates {
			if i >= n-t {
				rates[i] = byz
			} else {
				rates[i] = honest
			}
		}
		return rates
	}
	shapes := []shape{
		{"uniform: t=4/10, all λ=0.5", 4, mkRates(10, 0.5, 0.5, 4)},
		{"few-but-strong: t=2 whales λ=1.0", 2, mkRates(10, 0.375, 1.0, 2)},
		{"many-but-weak: t=6 at λ=1/3", 6, mkRates(10, 0.75, 1.0/3.0, 6)},
	}
	if o.Quick {
		shapes = shapes[:2]
	}

	tbl := NewTable("E20: identical total rate (5/Δ) and Byzantine rate share (0.4), different node counts",
		"configuration", "byz nodes", "byz rate share", "chain validity", "dag validity")
	for _, sh := range shapes {
		total, byz := 0.0, 0.0
		for i, r := range sh.rates {
			total += r
			if i >= 10-sh.t {
				byz += r
			}
		}
		validity := func(p scenario.Protocol, attack scenario.Attack) runner.Ratio {
			b := scenario.MustBind(scenario.Spec{
				Protocol: p, N: 10, T: sh.t, Rates: sh.rates, K: k, Attack: attack,
			})
			return runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool {
				return b.Randomized(seed).Verdict.Validity
			})
		}
		chainOK := validity(scenario.Chain, scenario.AttackTieBreak)
		dagOK := validity(scenario.Dag, scenario.AttackPrivateChain)
		tbl.AddRow(sh.label, sh.t, Float(byz/total, "%.2f"), chainOK, dagOK)
		row := len(tbl.Rows) - 1
		if row > 0 {
			tbl.ExpectCell(row, 3, OpEq, 0, 3, 0.35,
				"Section 1.1: chain validity depends on the Byzantine RATE share, not the node count")
			tbl.ExpectCell(row, 4, OpEq, 0, 4, 0.35,
				"Section 1.1: DAG validity depends on the Byzantine RATE share, not the node count")
		}
	}
	tbl.Note = "rows match within noise: the paper's t/n is really the adversary's rate (hash-power) share"
	return []*Table{tbl}
}

package experiments

import "fmt"

// Op is a comparison operator for checks. Tol loosens every operator:
// eq passes within ±Tol, le within want+Tol, ge within want-Tol, and the
// strict lt/gt likewise gain Tol of slack.
type Op string

const (
	OpEq Op = "eq"
	OpNe Op = "ne"
	OpLt Op = "lt"
	OpLe Op = "le"
	OpGt Op = "gt"
	OpGe Op = "ge"
)

// CellRef addresses one cell of a result's tables.
type CellRef struct {
	Table int `json:"table"`
	Row   int `json:"row"`
	Col   int `json:"col"`
}

// Check is a declarative, machine-checkable paper prediction: the cell at
// (Table, Row, Col) must satisfy Op against either the constant Want or,
// if Against is set, the numeric value of another cell. Ref carries the
// paper reference and the prose form of the prediction.
type Check struct {
	Table   int      `json:"table"`
	Row     int      `json:"row"`
	Col     int      `json:"col"`
	Op      Op       `json:"op"`
	Want    float64  `json:"want"`
	Against *CellRef `json:"against,omitempty"`
	Tol     float64  `json:"tol,omitempty"`
	Ref     string   `json:"ref"`
}

// CheckResult is one evaluated check.
type CheckResult struct {
	Check Check   `json:"check"`
	Got   float64 `json:"got"`
	Want  float64 `json:"want"`
	Pass  bool    `json:"pass"`
	Err   string  `json:"err,omitempty"`
}

func cellAt(tables []*Table, table, row, col int) (Cell, error) {
	if table < 0 || table >= len(tables) {
		return Cell{}, fmt.Errorf("table %d out of range [0,%d)", table, len(tables))
	}
	t := tables[table]
	if row < 0 || row >= len(t.Rows) {
		return Cell{}, fmt.Errorf("row %d out of range [0,%d) in table %d", row, len(t.Rows), table)
	}
	if col < 0 || col >= len(t.Rows[row]) {
		return Cell{}, fmt.Errorf("col %d out of range [0,%d) in table %d row %d", col, len(t.Rows[row]), table, row)
	}
	return t.Rows[row][col], nil
}

func numericAt(tables []*Table, table, row, col int) (float64, error) {
	c, err := cellAt(tables, table, row, col)
	if err != nil {
		return 0, err
	}
	v, ok := c.Value()
	if !ok {
		return 0, fmt.Errorf("cell (%d,%d,%d) %q is not numeric", table, row, col, c.Text())
	}
	return v, nil
}

// Eval evaluates the check against the given tables. A malformed check
// (bad coordinates, non-numeric cell, unknown op) fails with Err set.
func (c Check) Eval(tables []*Table) CheckResult {
	res := CheckResult{Check: c, Want: c.Want}
	got, err := numericAt(tables, c.Table, c.Row, c.Col)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Got = got
	if c.Against != nil {
		want, err := numericAt(tables, c.Against.Table, c.Against.Row, c.Against.Col)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Want = want
	}
	switch c.Op {
	case OpEq:
		res.Pass = abs(got-res.Want) <= c.Tol
	case OpNe:
		res.Pass = abs(got-res.Want) > c.Tol
	case OpLt:
		res.Pass = got < res.Want+c.Tol
	case OpLe:
		res.Pass = got <= res.Want+c.Tol
	case OpGt:
		res.Pass = got > res.Want-c.Tol
	case OpGe:
		res.Pass = got >= res.Want-c.Tol
	default:
		res.Err = fmt.Sprintf("unknown op %q", c.Op)
	}
	return res
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package experiments_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/report"
)

var update = flag.Bool("update", false, "rewrite the golden files instead of comparing")

// TestGoldenByteIdentical locks the determinism contract the performance
// work must preserve: a same-seed experiment run renders byte-for-byte the
// same tables as it did before the allocation-free core landed. One chain
// experiment (E5) and one DAG experiment (E8) cover both substrates. The
// golden files were generated from the pre-optimization tree, so any
// change to RNG draw order, event tie-breaking, or view iteration order
// shows up here as a diff.
//
// To regenerate after an intentional output change:
//
//	go test ./internal/experiments -run TestGoldenByteIdentical -update
func TestGoldenByteIdentical(t *testing.T) {
	for _, id := range []string{"E5", "E8"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := experiments.ByID(id)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			r := experiments.Run(e, experiments.Options{Quick: true, Seed: 1})
			got := ""
			for _, tbl := range r.Tables {
				got += report.TableText(tbl) + "\n"
			}

			path := filepath.Join("testdata", "golden_"+id+"_quick.txt")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("%s quick output is not byte-identical to %s\n"+
					"(seeded runs must not change under perf work; "+
					"run with -update only for intentional output changes)", id, path)
				diffAt(t, string(want), got)
			}
		})
	}
}

// TestConcurrentWorkersByteIdentical locks the scheduler's determinism
// contract end to end: the full experiment suite, streamed concurrently
// over the shared worker pool, renders byte-for-byte the same tables at
// -workers 1 (inline serial trials, scheduler never engaged) as at
// -workers 8 (chunked dispatch with work stealing across all the
// concurrent fan-outs). Any dependence of a result on worker count,
// chunk boundaries, or cross-experiment interleaving shows up here.
func TestConcurrentWorkersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite at two worker counts is slow")
	}
	render := func(workers int) string {
		var sb []byte
		experiments.RunStream(experiments.All(),
			experiments.Options{Quick: true, Seed: 1, Workers: workers},
			func(r *experiments.Result) {
				for _, tbl := range r.Tables {
					sb = append(sb, report.TableText(tbl)...)
					sb = append(sb, '\n')
				}
			})
		return string(sb)
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("quick suite output differs between -workers 1 and -workers 8")
		diffAt(t, serial, parallel)
	}
}

// diffAt reports the first differing line, keeping failures readable
// without dumping both full outputs.
func diffAt(t *testing.T, want, got string) {
	t.Helper()
	wl, gl := splitLines(want), splitLines(got)
	for i := 0; i < len(wl) || i < len(gl); i++ {
		w, g := "", ""
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			t.Errorf("first difference at line %d:\n  golden: %q\n  got:    %q", i+1, w, g)
			return
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

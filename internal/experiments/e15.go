package experiments

import (
	"repro/internal/abdsim"
	"repro/internal/agreement/syncba"
	"repro/internal/dolev"
	"repro/internal/msgnet"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// RunE15 — the Section 1.3/4 abstraction claim: "the append memory
// abstracts away the unnecessary communication overhead which often makes
// the discussion of algorithms in the message passing model difficult and
// heavy in terms of message complexity."
//
// Table (a) runs the same t+1-round agreement task in both worlds —
// Algorithm 1 in the append memory vs Dolev–Strong over the signed
// message-passing network — and compares the "communication" each needs:
// appends+reads vs signed relays and bytes. Same guarantee, orders of
// magnitude apart.
//
// Table (b) shows the two lower-bound staircases side by side: the
// DelayedChain adversary in the append memory (Lemma 3.1) and the
// StagedRelease adversary in message passing break exactly the same round
// budgets — the t+1 bound is a property of the problem, not the medium.
func RunE15(o Options) []*Table {
	trials := o.trials(20)
	if o.Quick {
		trials = o.trials(8)
	}

	cost := NewTable("E15a: cost of t+1-round Byzantine agreement — append memory vs message passing",
		"n", "t", "append memory: ops (appends+reads)", "message passing: signed relays", "message passing: bytes")
	sizes := []struct{ n, t int }{{5, 2}, {7, 3}, {9, 4}, {13, 6}}
	if o.Quick {
		sizes = sizes[:2]
	}
	for _, sz := range sizes {
		// Append memory: one append + one read per node per round.
		r1 := syncba.MustRun(syncba.Config{N: sz.n, T: sz.t, Seed: o.Seed}, &syncba.LoudFlip{})
		amOps := r1.FinalView.Size() + sz.n*(sz.t+1) // appends + reads

		// Message passing: Dolev–Strong with every Byzantine node loud
		// (silent ones would flatter the traffic numbers).
		r2 := dolev.MustRun(dolev.Config{N: sz.n, T: sz.t, Seed: o.Seed})
		cost.AddRow(sz.n, sz.t, amOps, r2.Stats.Messages, r2.Stats.Bytes)
	}
	cost.Note = "one shared-memory op replaces a broadcast (and its signature chains); the model is the abstraction doing its job"

	stair := NewTable("E15b: the t+1 staircase in both worlds (n=8, t=3; failure rates per round budget)",
		"rounds", "append memory (Lemma 3.1 adversary)", "message passing (staged release)")
	n, t := 8, 3
	for rounds := 1; rounds <= t+1; rounds++ {
		rounds := rounds
		amFails := parallelTrials(trials, o.Seed, func(seed uint64) bool {
			c := n - t
			r := syncba.MustRun(syncba.Config{
				N: n, T: t, Rounds: rounds, Seed: seed,
				Inputs: node.SplitInputs(n, (c+1)/2),
			}, &syncba.DelayedChain{})
			return !r.Verdict.Agreement
		})
		mpFails := parallelTrials(trials, o.Seed, func(seed uint64) bool {
			r := dolev.MustRun(dolev.Config{
				N: n, T: t, Rounds: rounds, Seed: seed, Adversary: &dolev.StagedRelease{},
			})
			return !r.Consistent
		})
		stair.AddRow(rounds, rate(countTrue(amFails), trials), rate(countTrue(mpFails), trials))
	}
	stair.Note = "both columns fail for every budget ≤ t and never at t+1 — the lower bound transfers, as Section 3 argues"

	growth := NewTable("E15c: iterated full participation over the ABD simulation (n=6): bytes per round grow with history",
		"round", "bytes", "messages")
	s := sim.New()
	nw := msgnet.New(s, xrand.New(o.Seed, 0xE15), 6, 1.0)
	c := abdsim.NewCluster(nw, nil)
	res, err := abdsim.RunIterated(s, c, []int64{1, 1, 1, 1, -1, -1}, 6)
	if err == nil {
		for r := 0; r < res.Rounds; r++ {
			growth.AddRow(r+1, res.BytesPerRound[r], res.MsgsPerRound[r])
		}
	}
	growth.Note = "each read retransmits every responder's complete view — the §4 warning about simulating full-participation protocols"
	return []*Table{cost, stair, growth}
}

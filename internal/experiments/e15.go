package experiments

import (
	"fmt"

	"repro/internal/abdsim"
	"repro/internal/dolev"
	"repro/internal/msgnet"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// RunE15 — the Section 1.3/4 abstraction claim: "the append memory
// abstracts away the unnecessary communication overhead which often makes
// the discussion of algorithms in the message passing model difficult and
// heavy in terms of message complexity."
//
// Table (a) runs the same t+1-round agreement task in both worlds —
// Algorithm 1 in the append memory vs Dolev–Strong over the signed
// message-passing network — and compares the "communication" each needs:
// appends+reads vs signed relays and bytes. Same guarantee, orders of
// magnitude apart.
//
// Table (b) shows the two lower-bound staircases side by side: the
// DelayedChain adversary in the append memory (Lemma 3.1) and the
// StagedRelease adversary in message passing break exactly the same round
// budgets — the t+1 bound is a property of the problem, not the medium.
func RunE15(o Options) []*Table {
	trials := o.trials(20)
	if o.Quick {
		trials = o.trials(8)
	}

	cost := NewTable("E15a: cost of t+1-round Byzantine agreement — append memory vs message passing",
		"n", "t", "append memory: ops (appends+reads)", "message passing: signed relays", "message passing: bytes")
	sizes := []struct{ n, t int }{{5, 2}, {7, 3}, {9, 4}, {13, 6}}
	if o.Quick {
		sizes = sizes[:2]
	}
	for _, sz := range sizes {
		// Append memory: one append + one read per node per round.
		r1 := scenario.MustBind(scenario.Spec{
			Protocol: scenario.Sync, N: sz.n, T: sz.t, Attack: scenario.AttackLoudFlip,
		}).Sync(o.Seed)
		amOps := r1.FinalView.Size() + sz.n*(sz.t+1) // appends + reads

		// Message passing: Dolev–Strong with every Byzantine node loud
		// (silent ones would flatter the traffic numbers).
		r2 := dolev.MustRun(dolev.Config{N: sz.n, T: sz.t, Seed: o.Seed})
		cost.AddRow(sz.n, sz.t, amOps, r2.Stats.Messages, r2.Stats.Bytes)
		row := len(cost.Rows) - 1
		cost.ExpectCell(row, 3, OpGt, row, 2, 0,
			"Section 1.3: message passing needs strictly more communication than append-memory ops for the same task")
	}
	cost.Note = "one shared-memory op replaces a broadcast (and its signature chains); the model is the abstraction doing its job"

	stair := NewTable("E15b: the t+1 staircase in both worlds (n=8, t=3; failure rates per round budget)",
		"rounds", "append memory (Lemma 3.1 adversary)", "message passing (staged release)")
	n, t := 8, 3
	for rounds := 1; rounds <= t+1; rounds++ {
		rounds := rounds
		c := n - t
		b := scenario.MustBind(scenario.Spec{
			Protocol: scenario.Sync, N: n, T: t, Rounds: rounds,
			Attack: scenario.AttackDelayedChain,
			Inputs: fmt.Sprintf("split:%d", (c+1)/2),
		})
		amFails := runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool {
			return !b.Sync(seed).Verdict.Agreement
		})
		mpFails := runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool {
			r := dolev.MustRun(dolev.Config{
				N: n, T: t, Rounds: rounds, Seed: seed, Adversary: &dolev.StagedRelease{},
			})
			return !r.Consistent
		})
		row := len(stair.Rows)
		if rounds <= t {
			stair.Expect(row, 1, OpGt, 0, 0, "Lemma 3.1: the append-memory adversary breaks every budget <= t")
			stair.Expect(row, 2, OpGt, 0, 0, "Section 3: the staged-release adversary breaks the same budgets in message passing")
		} else {
			stair.Expect(row, 1, OpEq, 0, 0, "Lemma 3.1: t+1 rounds always suffice in the append memory")
			stair.Expect(row, 2, OpEq, 0, 0, "Section 3: t+1 rounds always suffice in message passing — the staircase transfers")
		}
		stair.AddRow(rounds, amFails, mpFails)
	}
	stair.Note = "both columns fail for every budget ≤ t and never at t+1 — the lower bound transfers, as Section 3 argues"

	growth := NewTable("E15c: iterated full participation over the ABD simulation (n=6): bytes per round grow with history",
		"round", "bytes", "messages")
	s := sim.New()
	nw := msgnet.New(s, xrand.New(o.Seed, 0xE15), 6, 1.0)
	c := abdsim.NewCluster(nw, nil)
	res, err := abdsim.RunIterated(s, c, []int64{1, 1, 1, 1, -1, -1}, 6)
	if err == nil {
		for r := 0; r < res.Rounds; r++ {
			growth.AddRow(r+1, res.BytesPerRound[r], res.MsgsPerRound[r])
		}
		last := len(growth.Rows) - 1
		growth.ExpectCell(last, 1, OpGt, 0, 1, 0,
			"Section 4: bytes per round grow with history — each read retransmits every full view")
		growth.ExpectCell(last, 2, OpEq, 0, 2, 0,
			"Section 4: the message COUNT per round is constant; only the bytes grow")
	}
	growth.Note = "each read retransmits every responder's complete view — the §4 warning about simulating full-participation protocols"
	return []*Table{cost, stair, growth}
}

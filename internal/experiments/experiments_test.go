package experiments

import (
	"strings"
	"testing"
)

func TestByID(t *testing.T) {
	if _, ok := ByID("E7"); !ok {
		t.Fatal("E7 not found")
	}
	if _, ok := ByID("e10"); !ok {
		t.Fatal("lookup not case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("bogus id found")
	}
}

func TestAllHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" || e.PaperRef == "" {
			t.Fatalf("incomplete experiment %+v", e)
		}
	}
	if len(seen) != 24 {
		t.Fatalf("%d experiments, want 24", len(seen))
	}
}

func TestCellText(t *testing.T) {
	for _, tc := range []struct {
		cell Cell
		want string
	}{
		{Cell{Kind: KindStr, Str: "x"}, "x"},
		{Cell{Kind: KindInt, Int: -3}, "-3"},
		{Cell{Kind: KindBool, Bool: true}, "true"},
		{Cell{Kind: KindFloat, Float: 2.5}, "2.5"},
		{Cell{Kind: KindFloat, Float: 0.123456}, "0.1235"},
		{Cell{Kind: KindFloat, Float: 0.4, Fmt: "%.2f"}, "0.40"},
		{Cell{Kind: KindRatio, Num: 17, Den: 20}, "0.85 (17/20)"},
		{Cell{Kind: KindRatio, Num: 0, Den: 0}, "n/a"},
	} {
		if got := tc.cell.Text(); got != tc.want {
			t.Errorf("Text(%+v) = %q, want %q", tc.cell, got, tc.want)
		}
	}
}

func TestCellValue(t *testing.T) {
	for _, tc := range []struct {
		cell Cell
		want float64
		ok   bool
	}{
		{Cell{Kind: KindFloat, Float: 2.5}, 2.5, true},
		{Cell{Kind: KindInt, Int: 3}, 3, true},
		{Cell{Kind: KindBool, Bool: true}, 1, true},
		{Cell{Kind: KindBool, Bool: false}, 0, true},
		{Cell{Kind: KindRatio, Num: 17, Den: 20}, 0.85, true},
		{Cell{Kind: KindRatio, Num: 0, Den: 0}, 0, false},
		{Cell{Kind: KindStr, Str: "x"}, 0, false},
	} {
		got, ok := tc.cell.Value()
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("Value(%+v) = (%v,%v), want (%v,%v)", tc.cell, got, ok, tc.want, tc.ok)
		}
	}
}

func TestAddRowTyping(t *testing.T) {
	tbl := NewTable("t", "a", "b", "c", "d", "e")
	tbl.AddRow(1, 2.5, true, "x", Float(0.4, "%.2f"))
	row := tbl.Rows[0]
	kinds := []CellKind{KindInt, KindFloat, KindBool, KindStr, KindFloat}
	for i, k := range kinds {
		if row[i].Kind != k {
			t.Errorf("cell %d kind = %s, want %s", i, row[i].Kind, k)
		}
	}
}

func TestCheckEval(t *testing.T) {
	tbl := NewTable("t", "x", "y")
	tbl.AddRow(1, 0.8)
	tbl.AddRow(2, 0.3)
	tbl.Expect(0, 1, OpGe, 0.7, 0, "r1")
	tbl.Expect(1, 1, OpLe, 0.5, 0, "r2")
	tbl.ExpectCell(0, 1, OpGe, 1, 1, 0, "r3")
	tbl.Expect(1, 1, OpGe, 0.9, 0, "r4") // fails
	tbl.Expect(5, 1, OpGe, 0, 0, "r5")   // out of range -> eval error
	tables := []*Table{tbl}
	var results []CheckResult
	for _, c := range tbl.checks {
		results = append(results, c.Eval(tables))
	}
	wantPass := []bool{true, true, true, false, false}
	for i, want := range wantPass {
		if results[i].Pass != want {
			t.Errorf("check %d (%s): pass = %v, want %v", i, results[i].Check.Ref, results[i].Pass, want)
		}
	}
	if results[4].Err == "" {
		t.Error("out-of-range check did not report an eval error")
	}
	if FailedChecks(results) != 2 {
		t.Errorf("FailedChecks = %d, want 2", FailedChecks(results))
	}
}

func TestCheckTolerance(t *testing.T) {
	tbl := NewTable("t", "x")
	tbl.AddRow(0.8)
	tbl.Expect(0, 0, OpEq, 0.7, 0.15, "within tol")
	tbl.Expect(0, 0, OpEq, 0.7, 0.05, "outside tol")
	tbl.Expect(0, 0, OpLe, 0.75, 0.1, "le with tol")
	tbl.Expect(0, 0, OpGe, 0.85, 0.1, "ge with tol")
	want := []bool{true, false, true, true}
	for i, c := range tbl.checks {
		if got := c.Eval([]*Table{tbl}); got.Pass != want[i] {
			t.Errorf("%s: pass = %v, want %v", c.Ref, got.Pass, want[i])
		}
	}
}

// rateCell reads a numeric cell, failing the test on non-numeric cells.
func rateCell(t *testing.T, c Cell) float64 {
	t.Helper()
	v, ok := c.Value()
	if !ok {
		t.Fatalf("cell %+v is not numeric", c)
	}
	return v
}

// TestAllExperimentsSmoke runs every experiment at minimal scale through
// the Result pipeline and sanity-checks the typed output: no ragged rows,
// populated metadata, and every declared prediction evaluable (checks may
// fail at this tiny scale, but they must never hit an index error).
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments smoke test skipped in -short mode")
	}
	o := Options{Quick: true, Trials: 6, Seed: 7}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			r := Run(e, o)
			if r.ID != e.ID || r.Title != e.Title || r.PaperRef != e.PaperRef {
				t.Fatalf("result metadata mismatch: %+v", r)
			}
			if r.Seed != o.Seed {
				t.Fatalf("result seed = %d, want %d", r.Seed, o.Seed)
			}
			if len(r.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tbl := range r.Tables {
				if len(tbl.Rows) == 0 {
					t.Fatalf("empty table %q", tbl.Title)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Cols) {
						t.Fatalf("ragged row in %q: %v", tbl.Title, row)
					}
					for _, c := range row {
						if c.Text() == "" {
							t.Fatalf("empty cell text in %q: %+v", tbl.Title, c)
						}
					}
				}
				if tbl.checks != nil {
					t.Fatalf("table %q kept its checks after Run hoisted them", tbl.Title)
				}
			}
			if len(r.Checks) == 0 {
				t.Fatalf("experiment %s declares no prediction checks", e.ID)
			}
			for _, cr := range r.EvalChecks() {
				if cr.Err != "" {
					t.Fatalf("check eval error: %s (%+v)", cr.Err, cr.Check)
				}
			}
		})
	}
}

func TestE10HeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := RunE10(Options{Quick: true, Trials: 15, Seed: 3})
	tbl := tables[0]
	// At the highest rate (last row): chain must be far below DAG.
	last := tbl.Rows[len(tbl.Rows)-1]
	chainRate := rateCell(t, last[3])
	dagRate := rateCell(t, last[4])
	tsRate := rateCell(t, last[5])
	if chainRate >= dagRate {
		t.Fatalf("headline inverted: chain %.2f >= dag %.2f", chainRate, dagRate)
	}
	if dagRate < 0.5 || tsRate < 0.5 {
		t.Fatalf("dag/ts unexpectedly weak: %.2f / %.2f", dagRate, tsRate)
	}
}

func TestE1TheoremHolds(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := RunE1(Options{Quick: true, Seed: 1})
	family := tables[0]
	okCol := len(family.Cols) - 1
	for _, row := range family.Rows {
		if row[okCol].Kind != KindBool || row[okCol].Bool {
			t.Fatalf("a protocol solved consensus: %v", row)
		}
	}
}

func TestE7LogFitPositiveSlope(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := RunE7(Options{Quick: true, Trials: 20, Seed: 5})
	note := tables[0].Note
	if !strings.Contains(note, "log fit") {
		t.Fatalf("note missing fit: %q", note)
	}
	// Mean max burst must increase from the first to the last n.
	f := rateCell(t, tables[0].Rows[0][2])
	l := rateCell(t, tables[0].Rows[len(tables[0].Rows)-1][2])
	if l <= f {
		t.Fatalf("burst did not grow with n: %v -> %v", f, l)
	}
}

func TestE17BurstinessShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := RunE17(Options{Quick: true, Trials: 15, Seed: 9})
	for _, row := range tables[0].Rows {
		dagPoisson := rateCell(t, row[3])
		dagRR := rateCell(t, row[4])
		if dagRR < dagPoisson-0.1 {
			t.Fatalf("round-robin made the dag WORSE at λ=%s: %.2f vs %.2f", row[0].Text(), dagRR, dagPoisson)
		}
	}
}

func TestE18LatencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := RunE18(Options{Quick: true, Trials: 10, Seed: 9})
	for _, row := range tables[0].Rows {
		ideal := rateCell(t, row[1])
		ts := rateCell(t, row[2])
		chainLat := rateCell(t, row[3])
		dagLat := rateCell(t, row[4])
		if ts > ideal*1.3 {
			t.Fatalf("timestamp latency %.2f far above ideal %.2f", ts, ideal)
		}
		if chainLat < dagLat {
			t.Fatalf("chain (%.2f) decided faster than dag (%.2f)", chainLat, dagLat)
		}
	}
}

func TestE21GhostShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := RunE21(Options{Quick: true, Trials: 15, Seed: 9})
	// At the highest rate GHOST must beat longest-chain.
	last := tables[0].Rows[len(tables[0].Rows)-1]
	ghost := rateCell(t, last[1])
	longest := rateCell(t, last[2])
	if ghost < longest {
		t.Fatalf("ghost (%.2f) not better than longest (%.2f) under the private fork", ghost, longest)
	}
}

func TestE20RateShareShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := RunE20(Options{Quick: true, Trials: 20, Seed: 9})
	// Dag validity spread across shapes stays small.
	lo, hi := 2.0, -1.0
	for _, row := range tables[0].Rows {
		v := rateCell(t, row[4])
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo > 0.35 {
		t.Fatalf("dag validity spread %.2f across equal-rate-share shapes", hi-lo)
	}
}

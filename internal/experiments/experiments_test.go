package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("title", "a", "bb")
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", "y")
	tbl.Note = "n"
	s := tbl.String()
	for _, want := range []string{"== title ==", "a", "bb", "2.5", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTableRowWidth(t *testing.T) {
	tbl := NewTable("t", "col")
	tbl.AddRow("longer-than-col")
	lines := strings.Split(strings.TrimSpace(tbl.String()), "\n")
	// header, separator, row — all same width
	if len(lines) != 4 {
		t.Fatalf("lines = %v", lines)
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E7"); !ok {
		t.Fatal("E7 not found")
	}
	if _, ok := ByID("e10"); !ok {
		t.Fatal("lookup not case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("bogus id found")
	}
}

func TestAllHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" || e.PaperRef == "" {
			t.Fatalf("incomplete experiment %+v", e)
		}
	}
	if len(seen) != 21 {
		t.Fatalf("%d experiments, want 21", len(seen))
	}
}

func TestParallelTrialsOrderAndDeterminism(t *testing.T) {
	f := func(seed uint64) uint64 { return seed * 3 }
	out := parallelTrials(20, 100, f)
	for i, v := range out {
		if v != (100+uint64(i))*3 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// smoke runs every experiment at minimal scale and sanity-checks output.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments smoke test skipped in -short mode")
	}
	o := Options{Quick: true, Trials: 6, Seed: 7}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables := e.Run(o)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tbl := range tables {
				if len(tbl.Rows) == 0 {
					t.Fatalf("empty table %q", tbl.Title)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Cols) {
						t.Fatalf("ragged row in %q: %v", tbl.Title, row)
					}
				}
			}
		})
	}
}

// parseRate extracts the leading float from a "0.85 (17/20)" cell.
func parseRate(t *testing.T, cell string) float64 {
	t.Helper()
	fields := strings.Fields(cell)
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("cannot parse rate cell %q", cell)
	}
	return v
}

func TestE10HeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := RunE10(Options{Quick: true, Trials: 15, Seed: 3})
	tbl := tables[0]
	// At the highest rate (last row): chain must be far below DAG.
	last := tbl.Rows[len(tbl.Rows)-1]
	chainRate := parseRate(t, last[3])
	dagRate := parseRate(t, last[4])
	tsRate := parseRate(t, last[5])
	if chainRate >= dagRate {
		t.Fatalf("headline inverted: chain %.2f >= dag %.2f", chainRate, dagRate)
	}
	if dagRate < 0.5 || tsRate < 0.5 {
		t.Fatalf("dag/ts unexpectedly weak: %.2f / %.2f", dagRate, tsRate)
	}
}

func TestE1TheoremHolds(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := RunE1(Options{Quick: true, Seed: 1})
	family := tables[0]
	okCol := len(family.Cols) - 1
	for _, row := range family.Rows {
		if row[okCol] != "false" {
			t.Fatalf("a protocol solved consensus: %v", row)
		}
	}
}

func TestE7LogFitPositiveSlope(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := RunE7(Options{Quick: true, Trials: 20, Seed: 5})
	note := tables[0].Note
	if !strings.Contains(note, "log fit") {
		t.Fatalf("note missing fit: %q", note)
	}
	// Mean max burst must increase from the first to the last n.
	first := tables[0].Rows[0]
	last := tables[0].Rows[len(tables[0].Rows)-1]
	f, _ := strconv.ParseFloat(first[2], 64)
	l, _ := strconv.ParseFloat(last[2], 64)
	if l <= f {
		t.Fatalf("burst did not grow with n: %v -> %v", f, l)
	}
}

func TestMarkdownRendering(t *testing.T) {
	tbl := NewTable("ti|tle", "a", "b")
	tbl.AddRow(1, "x")
	tbl.Note = "n"
	md := tbl.Markdown()
	for _, want := range []string{"**ti|tle**", "| a | b |", "| --- | --- |", "| 1 | x |", "_n_"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestCellValue(t *testing.T) {
	for _, tc := range []struct {
		cell string
		want float64
		ok   bool
	}{
		{"0.85 (17/20)", 0.85, true},
		{"3", 3, true},
		{"-1.5e2", -150, true},
		{"n/a", 0, false},
		{"", 0, false},
	} {
		got, ok := CellValue(tc.cell)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("CellValue(%q) = (%v,%v)", tc.cell, got, ok)
		}
	}
}

func TestBars(t *testing.T) {
	tbl := NewTable("t", "x", "rate")
	tbl.AddRow("a", "1.0 (20/20)")
	tbl.AddRow("bb", "0.5 (10/20)")
	tbl.AddRow("c", "n/a")
	out := tbl.Bars(1, 10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("█", 10)) {
		t.Errorf("full bar missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], strings.Repeat("█", 5)) || strings.Contains(lines[2], strings.Repeat("█", 6)) {
		t.Errorf("half bar wrong: %q", lines[2])
	}
	if !strings.Contains(lines[3], "| -") {
		t.Errorf("non-numeric row wrong: %q", lines[3])
	}
	if tbl.Bars(9, 10) != "" || tbl.Bars(1, 0) != "" {
		t.Error("invalid args not rejected")
	}
}

func TestE17BurstinessShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := RunE17(Options{Quick: true, Trials: 15, Seed: 9})
	for _, row := range tables[0].Rows {
		dagPoisson := parseRate(t, row[3])
		dagRR := parseRate(t, row[4])
		if dagRR < dagPoisson-0.1 {
			t.Fatalf("round-robin made the dag WORSE at λ=%s: %.2f vs %.2f", row[0], dagRR, dagPoisson)
		}
	}
}

func TestE18LatencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := RunE18(Options{Quick: true, Trials: 10, Seed: 9})
	for _, row := range tables[0].Rows {
		ideal := parseRate(t, row[1])
		ts := parseRate(t, row[2])
		chainLat := parseRate(t, row[3])
		dagLat := parseRate(t, row[4])
		if ts > ideal*1.3 {
			t.Fatalf("timestamp latency %.2f far above ideal %.2f", ts, ideal)
		}
		if chainLat < dagLat {
			t.Fatalf("chain (%.2f) decided faster than dag (%.2f)", chainLat, dagLat)
		}
	}
}

func TestE21GhostShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := RunE21(Options{Quick: true, Trials: 15, Seed: 9})
	// At the highest rate GHOST must beat longest-chain.
	last := tables[0].Rows[len(tables[0].Rows)-1]
	ghost := parseRate(t, last[1])
	longest := parseRate(t, last[2])
	if ghost < longest {
		t.Fatalf("ghost (%.2f) not better than longest (%.2f) under the private fork", ghost, longest)
	}
}

func TestE20RateShareShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := RunE20(Options{Quick: true, Trials: 20, Seed: 9})
	// Dag validity spread across shapes stays small.
	lo, hi := 2.0, -1.0
	for _, row := range tables[0].Rows {
		v := parseRate(t, row[4])
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo > 0.35 {
		t.Fatalf("dag validity spread %.2f across equal-rate-share shapes", hi-lo)
	}
}

package experiments

import (
	"repro/internal/runner"
	"repro/internal/scenario"
)

// RunE16 — Theorem 5.1's operational content: randomized memory access
// does not rescue deterministic agreement from asynchronous nodes. The
// theorem itself is an impossibility over worst-case schedules — that
// exhaustive adversary lives in the E1 model checker, whose scheduler
// already orders events (including the token-to-append gap) arbitrarily.
// This experiment shows the quantitative face of the same phenomenon:
// when honest nodes take an unbounded-in-expectation time between
// receiving a token and appending (uniform in (0, w·Δ]), the authority's
// access order loses its meaning and resilience degrades at ANY rate —
// here at λ = 0.05, where the fully synchronous chain is comfortably
// safe. The DAG suffers too (staleness delays inclusion), consistent with
// the §5.3 warning that its Byzantine-agreement guarantees need synchrony.
//
// A second table isolates asynchrony with NO Byzantine nodes and split
// inputs: random (non-adversarial) delays alone do not break agreement —
// the impossibility needs the worst-case scheduler, which is exactly why
// the paper pairs randomized access with synchronous nodes from Section
// 5.1 on.
func RunE16(o Options) []*Table {
	trials := o.trials(60)
	delays := []float64{0, 1, 2, 4, 8}
	if o.Quick {
		trials = o.trials(20)
		delays = []float64{0, 2, 8}
	}
	n, t, k := 10, 4, 21
	const lambda = 0.05 // λ(n−t) = 0.3: the synchronous chain is safe here

	validity := func(spec scenario.Spec) runner.Ratio {
		b := scenario.MustBind(spec)
		return runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool {
			return b.Randomized(seed).Verdict.Validity
		})
	}
	agreement := func(spec scenario.Spec) runner.Ratio {
		b := scenario.MustBind(spec)
		return runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool {
			return b.Randomized(seed).Verdict.Agreement
		})
	}

	attacked := NewTable("E16a: honest token-to-append delay w·Δ under attack (n=10, t=4, λ=0.05, k=21)",
		"delay w (Δ)", "chain validity", "dag validity")
	for _, w := range delays {
		chainOK := validity(scenario.Spec{
			Protocol: scenario.Chain, N: n, T: t, Lambda: lambda, K: k,
			Attack: scenario.AttackTieBreak, AsyncDelayMax: w,
		})
		dagOK := validity(scenario.Spec{
			Protocol: scenario.Dag, N: n, T: t, Lambda: lambda, K: k,
			Attack: scenario.AttackPrivateChain, AsyncDelayMax: w,
		})
		attacked.AddRow(w, chainOK, dagOK)
	}
	last := len(attacked.Rows) - 1
	attacked.ExpectCell(last, 1, OpLe, 0, 1, 0,
		"Theorem 5.1: honest asynchrony strictly degrades the chain below its synchronous validity")
	attacked.Expect(last, 1, OpLe, 0.3, 0,
		"Theorem 5.1: at large delays the low rate no longer protects the chain at all")
	attacked.ExpectCell(last, 2, OpLe, 0, 2, 0,
		"Section 5.3: the DAG also suffers — its Byzantine-agreement guarantees need synchronous nodes")
	attacked.Note = "the rate no longer protects anyone: asynchrony hands the fresh-reading adversary an unbounded staleness advantage"

	benign := NewTable("E16b: the same delays with NO Byzantine nodes, split inputs (agreement at stake)",
		"delay w (Δ)", "chain agreement", "dag agreement")
	for _, w := range delays {
		chainOK := agreement(scenario.Spec{
			Protocol: scenario.Chain, N: 8, T: 0, Lambda: 0.5, K: k,
			Inputs: "split:4", AsyncDelayMax: w,
		})
		dagOK := agreement(scenario.Spec{
			Protocol: scenario.Dag, N: 8, T: 0, Lambda: 0.5, K: k,
			Inputs: "split:4", AsyncDelayMax: w,
		})
		row := len(benign.Rows)
		benign.Expect(row, 1, OpGe, 0.85, 0,
			"Theorem 5.1: random (non-adversarial) delays alone do not break chain agreement")
		benign.Expect(row, 2, OpGe, 0.85, 0,
			"Theorem 5.1: random delays alone do not break DAG agreement — the impossibility needs the worst-case scheduler")
		benign.AddRow(w, chainOK, dagOK)
	}
	benign.Note = "random delays alone are harmless; Theorem 5.1 needs the worst-case scheduler — which is the E1 model checker's job"
	return []*Table{attacked, benign}
}

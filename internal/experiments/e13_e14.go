package experiments

import (
	"fmt"

	"repro/internal/backbone"
	"repro/internal/bivalence"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stickybit"
)

// RunE13 — the §1.2 separation: sticky bits (Plotkin / Malkhi et al.)
// implicitly order concurrent writes and therefore solve 1-resilient
// consensus with a trivial protocol — verified exhaustively over all
// schedules and crash variants — while the append memory, which refuses
// to break write ties, cannot (Theorem 2.1 / E1). The two objects differ
// in exactly the power the paper identifies.
func RunE13(o Options) []*Table {
	tbl := NewTable("E13: sticky bits vs append memory — the §1.2 separation, exhaustively",
		"shared object", "n", "agreement", "validity", "1-res termination", "configs", "solves consensus")
	maxN := 4
	if o.Quick {
		maxN = 3
	}
	for n := 2; n <= maxN; n++ {
		rep := stickybit.Verify(n)
		tbl.AddRow("sticky bit", n, rep.Agreement, rep.Validity, rep.Termination, rep.Configurations, rep.OK())
		tbl.Expect(len(tbl.Rows)-1, 6, OpEq, 1, 0,
			"Section 1.2: sticky bits order concurrent writes and solve 1-resilient consensus")
	}
	checkN := 3
	if o.Quick {
		checkN = 2
	}
	for n := 2; n <= checkN; n++ {
		family := bivalence.Family(n)
		agr, val, term, solves, configs := 0, 0, 0, 0, 0
		for _, p := range family {
			v := bivalence.CheckTheorem(p, n, 300000)
			configs += v.Configs
			if v.Agreement {
				agr++
			}
			if v.Validity {
				val++
			}
			if v.Termination {
				term++
			}
			if v.OK() {
				solves++
			}
		}
		m := len(family)
		tbl.AddRow(fmt.Sprintf("append memory (%d-member family)", m), n,
			fmt.Sprintf("%d/%d members", agr, m), fmt.Sprintf("%d/%d members", val, m),
			fmt.Sprintf("%d/%d members", term, m), configs,
			fmt.Sprintf("%d/%d members", solves, m))
	}
	tbl.Note = "sticky bits order concurrent writes (first write wins); the append memory deliberately does not — Theorem 2.1 bites only the latter"
	return []*Table{tbl}
}

// RunE14 — backbone properties (Garay et al. / Ren, the analyses §5.2
// builds on) measured across structures and adversaries: chain quality is
// the operational meaning of validity under a −1-voting adversary
// (quality > 1/2 ⇔ decision +1); the chain's quality collapses with the
// rate while the DAG's floors at the honest token share; forked/wasted
// fractions show where the chain's losses come from.
func RunE14(o Options) []*Table {
	trials := o.trials(40)
	if o.Quick {
		trials = o.trials(15)
	}
	n, t, k := 10, 4, 41

	type point struct {
		label string
		spec  scenario.Spec
		isDag bool
	}
	points := []point{
		{"chain, silent",
			scenario.Spec{Protocol: scenario.Chain, Lambda: 0.25, Attack: scenario.AttackSilent}, false},
		{"chain, tiebreak λ=0.25",
			scenario.Spec{Protocol: scenario.Chain, Lambda: 0.25, Attack: scenario.AttackTieBreak}, false},
		{"chain, tiebreak λ=1",
			scenario.Spec{Protocol: scenario.Chain, Lambda: 1, Attack: scenario.AttackTieBreak}, false},
		{"dag, private-chain λ=0.25",
			scenario.Spec{Protocol: scenario.Dag, Lambda: 0.25, Attack: scenario.AttackPrivateChain}, true},
		{"dag, private-chain λ=1",
			scenario.Spec{Protocol: scenario.Dag, Lambda: 1, Attack: scenario.AttackPrivateChain}, true},
	}

	tbl := NewTable("E14: backbone properties at t/n = 0.4 (n=10, k=41); honest token share = 0.6",
		"scenario", "chain growth (blocks/Δ)", "chain quality", "wasted fraction", "common-prefix viol.", "validity ok")
	for _, p := range points {
		p := p
		type res struct {
			rep   backbone.Report
			valid bool
		}
		type acc struct {
			growth, quality, wasted, viol float64
			valid                         int
		}
		spec := p.spec
		spec.N, spec.T, spec.K = n, t, k
		b := scenario.MustBind(spec)
		sums := runner.TrialsReduce(trials, o.Seed, o.Workers, acc{}, func(seed uint64) res {
			r := b.Randomized(seed)
			var rep backbone.Report
			if p.isDag {
				rep = backbone.AnalyzeDag(r, k, true)
			} else {
				rep = backbone.AnalyzeChain(r, k)
			}
			return res{rep, r.Verdict.Validity}
		}, func(a acc, r res) acc {
			a.growth += r.rep.Growth
			a.quality += r.rep.Quality
			a.wasted += r.rep.Wasted
			a.viol += float64(r.rep.CommonPrefixViolation)
			if r.valid {
				a.valid++
			}
			return a
		})
		nt := float64(trials)
		tbl.AddRow(p.label,
			sums.growth/nt, sums.quality/nt, sums.wasted/nt, sums.viol/nt,
			runner.Rate(sums.valid, trials))
	}
	tbl.Expect(0, 2, OpEq, 1, 0,
		"Section 5.2: with a silent adversary every chain block is honest — quality is exactly 1")
	tbl.Expect(2, 2, OpLe, 0.5, 0,
		"Theorem 5.4 via chain quality: at λ=1 the tie-breaking attack drives quality below 1/2")
	tbl.Expect(3, 2, OpGe, 0.5, 0,
		"Section 5.2: the DAG's quality floors at the honest token share 0.6 — nothing honest is wasted")
	tbl.Expect(4, 2, OpGe, 0.5, 0,
		"Section 5.2: the DAG's quality floor is rate-independent")
	tbl.Note = "quality > 1/2 is the operational form of validity; the DAG's quality floors at the honest token share because nothing honest is wasted"
	return []*Table{tbl}
}

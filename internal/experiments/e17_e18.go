package experiments

import (
	"repro/internal/runner"
	"repro/internal/scenario"
)

// RunE17 — access-discipline ablation: the paper models proof-of-work as a
// Poisson process (§1.1). Which Section 5 effects come from the *rate* and
// which from Poisson *burstiness*? Replacing the authority with a
// deterministic round-robin token stream at the same aggregate rate keeps
// the rate and removes all variance:
//
//   - the chain's collapse (Theorem 5.4) survives — it is driven by honest
//     view staleness, which only needs the rate;
//   - the DAG's residual degradation (Lemma 5.5) disappears — the private
//     chains need consecutive Byzantine grants, i.e. bursts, which the
//     round-robin stream never produces.
func RunE17(o Options) []*Table {
	trials := o.trials(60)
	lambdas := []float64{0.25, 1.0}
	if o.Quick {
		trials = o.trials(20)
	}
	n, t, k := 10, 4, 41
	tbl := NewTable("E17: Poisson vs round-robin token authority at the same rate (n=10, t=4, k=41)",
		"λ", "chain, Poisson", "chain, round-robin", "dag, Poisson", "dag, round-robin")
	for _, lambda := range lambdas {
		lambda := lambda
		run := func(rr bool, isDag bool) runner.Ratio {
			spec := scenario.Spec{
				Protocol: scenario.Chain, N: n, T: t, Lambda: lambda, K: k,
				Attack: scenario.AttackTieBreak,
			}
			if isDag {
				spec.Protocol = scenario.Dag
				spec.Attack = scenario.AttackPrivateChain
			}
			if rr {
				spec.Access = scenario.AccessRoundRobin
			}
			b := scenario.MustBind(spec)
			return runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool {
				return b.Randomized(seed).Verdict.Validity
			})
		}
		tbl.AddRow(lambda,
			run(false, false), run(true, false),
			run(false, true), run(true, true))
		row := len(tbl.Rows) - 1
		tbl.ExpectCell(row, 4, OpGe, row, 3, 0.1,
			"Lemma 5.5: removing Poisson bursts (round-robin) heals the DAG's residual degradation")
	}
	tbl.Expect(len(tbl.Rows)-1, 2, OpLe, 0.3, 0,
		"Theorem 5.4: the chain's collapse survives de-bursting — it is driven by the rate via honest staleness")
	tbl.Note = "burstiness is Lemma 5.5's whole weapon (dag column heals); staleness is Theorem 5.4's (chain column doesn't)"
	return []*Table{tbl}
}

// RunE18 — decision latency. The synchronous protocol decides in exactly
// (t+1)·Δ (Theorem 3.2); the randomized protocols wait for k values, so
// the natural prediction is ≈ k·Δ/(n·λ) plus structure-specific overhead:
// the timestamp baseline needs exactly k appends; the chain needs a
// longest CHAIN of length k, and forks (which grow with λ) stretch that;
// the DAG needs k ordered values — forks don't hurt it, but inclusion
// lags by the staleness Δ. Measured mean decision times across λ:
func RunE18(o Options) []*Table {
	trials := o.trials(40)
	lambdas := []float64{0.1, 0.25, 0.5, 1.0}
	if o.Quick {
		trials = o.trials(15)
		lambdas = []float64{0.25, 1.0}
	}
	n, k := 10, 41
	tbl := NewTable("E18: mean decision time (in Δ) with no adversary, n=10, t=0, k=41",
		"λ", "ideal k/(nλ)", "timestamp", "chain", "dag (GHOST)")
	for _, lambda := range lambdas {
		lambda := lambda
		mean := func(p scenario.Protocol) float64 {
			b := scenario.MustBind(scenario.Spec{
				Protocol: p, N: n, T: 0, Lambda: lambda, K: k,
			})
			return runner.MeanTrials(trials, o.Seed, o.Workers, func(seed uint64) float64 {
				r := b.Randomized(seed)
				var sum float64
				cnt := 0
				for _, id := range r.Roster.Correct() {
					if r.Outcome.Decided[id] {
						sum += float64(r.DecideTime[id])
						cnt++
					}
				}
				if cnt == 0 {
					return 0
				}
				return sum / float64(cnt)
			})
		}
		ideal := float64(k) / (float64(n) * lambda)
		tbl.AddRow(lambda, ideal,
			mean(scenario.Timestamp),
			mean(scenario.Chain),
			mean(scenario.Dag))
		row := len(tbl.Rows) - 1
		tbl.ExpectCell(row, 2, OpLe, row, 1, 0.3*ideal,
			"Theorem 5.2 latency: the timestamp baseline needs exactly k appends — it tracks k/(nλ) closely")
		tbl.ExpectCell(row, 3, OpGe, row, 4, 0,
			"Section 5 latency: forks stretch the chain's wait for a length-k chain beyond the DAG's")
	}
	tbl.Note = "timestamp tracks the ideal; the chain pays for forks (worse as λ grows); the DAG pays only a near-constant staleness lag"
	return []*Table{tbl}
}

package experiments

import (
	"repro/internal/runner"
	"repro/internal/scenario"
)

// RunE11 — the closing observation of Section 5.3: unlike Nakamoto
// consensus (whose DAG resilience survives temporary asynchrony, per the
// inclusive-blockchain paper), *Byzantine agreement* on the DAG does not:
// the decision is pinned to the first k ordered values, so an adversary
// that keeps appending through a blackout of honest view refreshes stuffs
// the decision prefix. We inject a blackout of w·Δ starting when the
// memory reaches 30 messages (shortly before k=41 is in reach) and sweep w.
func RunE11(o Options) []*Table {
	trials := o.trials(60)
	stalls := []float64{0, 0.5, 1, 2, 4, 8}
	if o.Quick {
		trials = o.trials(20)
		stalls = []float64{0, 1, 4}
	}
	n, t, k := 10, 4, 41
	tbl := NewTable("E11: DAG BA under temporal asynchrony (n=10, t=4, λ=1, k=41; honest views blackout for w·Δ before decision)",
		"blackout w (Δ)", "validity ok", "regime")
	for _, w := range stalls {
		spec := scenario.Spec{
			Protocol: scenario.Dag, N: n, T: t, Lambda: 1, K: k,
			Attack: scenario.AttackPrivateChain,
		}
		if w > 0 {
			spec.StallAtSize = 30
			spec.StallFor = w
		}
		b := scenario.MustBind(spec)
		oks := runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool {
			return b.Randomized(seed).Verdict.Validity
		})
		regime := "synchronous"
		if w > 0 {
			regime = "temporarily asynchronous"
		}
		tbl.AddRow(w, oks, regime)
	}
	tbl.Expect(0, 1, OpGe, 0.7, 0,
		"Theorem 5.6: under synchrony (no blackout) the DAG holds validity at t/n = 0.4")
	tbl.ExpectCell(len(tbl.Rows)-1, 1, OpLe, 0, 1, 0,
		"Section 5.3: a long enough blackout strictly degrades DAG validity below the synchronous level")
	tbl.Expect(len(tbl.Rows)-1, 1, OpLe, 0.3, 0,
		"Section 5.3: DAG Byzantine agreement loses its resilience under temporal asynchrony")
	tbl.Note = "finality is rate-sensitive under asynchrony: Byzantine agreement on the DAG loses its resilience, exactly as §5.3 warns"
	return []*Table{tbl}
}

// RunE12 — ablation of Theorem 5.4's mechanism: the chain's rate-dependent
// collapse is caused by the Δ staleness of honest views (concurrent honest
// appends fork; the fresh-reading adversary breaks the ties). Removing the
// staleness (honest nodes read at the grant instant) must restore validity
// at the same (λ, t/n) point — and it does.
func RunE12(o Options) []*Table {
	trials := o.trials(60)
	lambdas := []float64{0.25, 0.5, 1.0}
	if o.Quick {
		trials = o.trials(20)
		lambdas = []float64{0.25, 1.0}
	}
	n, t, k := 10, 4, 41
	tbl := NewTable("E12: ablating honest staleness (chain + randomized ties vs ChainTieBreaker, n=10, t=4, k=41)",
		"λ", "λ(n-t)", "validity (stale views, Δ)", "validity (fresh views)")
	for _, lambda := range lambdas {
		run := func(fresh bool) runner.Ratio {
			b := scenario.MustBind(scenario.Spec{
				Protocol: scenario.Chain, N: n, T: t, Lambda: lambda, K: k,
				Attack: scenario.AttackTieBreak, FreshReads: fresh,
			})
			return runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool {
				return b.Randomized(seed).Verdict.Validity
			})
		}
		stale := run(false)
		fresh := run(true)
		tbl.AddRow(lambda, lambda*float64(n-t), stale, fresh)
		row := len(tbl.Rows) - 1
		tbl.ExpectCell(row, 3, OpGe, row, 2, 0,
			"Theorem 5.4 mechanism: removing honest staleness never hurts — fresh views dominate stale ones")
		tbl.Expect(row, 3, OpGe, 0.75, 0,
			"Theorem 5.4 mechanism: with zero staleness honest nodes never fork and validity is restored at any rate")
	}
	tbl.Note = "with zero staleness honest nodes never fork, the tie-breaker has no ties to break, and Theorem 5.4's bound dissolves — confirming Δ-staleness as the causal mechanism"
	return []*Table{tbl}
}

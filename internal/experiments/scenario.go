package experiments

import (
	"fmt"
	"math"

	"repro/internal/scenario"
)

// SweepTable renders an executed scenario sweep as a typed Table: one
// column per sweep axis (or a single label column for unswept specs),
// then one column per metric. Rate metrics become ratio cells
// (successes/trials), mean metrics float cells ("n/a" when no run
// defined the value).
func SweepTable(res *scenario.SweepResult) *Table {
	title := res.Spec.Name
	if title == "" {
		title = fmt.Sprintf("scenario: %s n=%d t=%d", res.Spec.Protocol, res.Spec.N, res.Spec.T)
	}
	cols := append([]string(nil), res.Axes...)
	if len(cols) == 0 {
		cols = []string{"scenario"}
	}
	var metricCols []string
	if len(res.Points) > 0 {
		for _, m := range res.Points[0].Metrics {
			metricCols = append(metricCols, m.Name)
		}
	}
	tbl := NewTable(title, append(cols, metricCols...)...)
	tbl.Note = res.Spec.Doc
	for _, pt := range res.Points {
		var row []any
		if len(res.Axes) == 0 {
			row = append(row, string(res.Spec.Protocol))
		}
		for _, c := range pt.Coords {
			if c.IsStr {
				row = append(row, c.Str)
			} else {
				row = append(row, c.Num)
			}
		}
		for _, m := range pt.Metrics {
			switch {
			case m.Kind == scenario.KindRate:
				row = append(row, m.Ratio(pt.Trials))
			case math.IsNaN(m.Value):
				row = append(row, "n/a")
			default:
				row = append(row, m.Value)
			}
		}
		tbl.AddRow(row...)
	}
	return tbl
}

// SweepResult wraps an executed sweep in the structured Result record the
// report package emits as JSON/CSV, mirroring what experiment runs
// produce.
func SweepResult(res *scenario.SweepResult) *Result {
	id := res.Spec.Name
	if id == "" {
		id = "scenario"
	}
	r := NewResult(id, res.Spec.Doc, "", []*Table{SweepTable(res)})
	r.Seed = res.Spec.Seed
	return r
}

package experiments

import (
	"fmt"
	"strconv"

	"repro/internal/runner"
	"repro/internal/scenario"
)

// CellKind discriminates the typed payload of a Cell.
type CellKind string

const (
	KindStr   CellKind = "str"
	KindFloat CellKind = "float"
	KindInt   CellKind = "int"
	KindBool  CellKind = "bool"
	KindRatio CellKind = "ratio"
)

// Cell is one typed table entry. Exactly the field selected by Kind is
// meaningful (Num/Den together for KindRatio); Fmt is optional formatting
// metadata for KindFloat (a printf verb, default "%.4g").
type Cell struct {
	Kind  CellKind `json:"kind"`
	Str   string   `json:"str,omitempty"`
	Float float64  `json:"float,omitempty"`
	Int   int64    `json:"int,omitempty"`
	Bool  bool     `json:"bool,omitempty"`
	Num   int      `json:"num,omitempty"`
	Den   int      `json:"den,omitempty"`
	Fmt   string   `json:"fmt,omitempty"`
}

// Float formats a float with an explicit printf verb (e.g. "%.2f") instead
// of the default "%.4g" applied to bare float64 row values.
func Float(v float64, format string) Cell {
	return Cell{Kind: KindFloat, Float: v, Fmt: format}
}

// Text is the canonical display form of the cell — the single place cell
// values are turned into strings.
func (c Cell) Text() string {
	switch c.Kind {
	case KindFloat:
		f := c.Fmt
		if f == "" {
			f = "%.4g"
		}
		return fmt.Sprintf(f, c.Float)
	case KindInt:
		return strconv.FormatInt(c.Int, 10)
	case KindBool:
		return strconv.FormatBool(c.Bool)
	case KindRatio:
		if c.Den == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2f (%d/%d)", float64(c.Num)/float64(c.Den), c.Num, c.Den)
	default:
		return c.Str
	}
}

// Value returns the cell's numeric reading: the float itself, the int,
// bools as 0/1, ratios as Num/Den. ok is false for string cells and
// empty ratios.
func (c Cell) Value() (float64, bool) {
	switch c.Kind {
	case KindFloat:
		return c.Float, true
	case KindInt:
		return float64(c.Int), true
	case KindBool:
		if c.Bool {
			return 1, true
		}
		return 0, true
	case KindRatio:
		if c.Den == 0 {
			return 0, false
		}
		return float64(c.Num) / float64(c.Den), true
	default:
		return 0, false
	}
}

// Table is one result table: named columns, typed cells, and any checks
// declared against its cells (collected into Result.Checks by Run).
type Table struct {
	Title string   `json:"title"`
	Note  string   `json:"note,omitempty"`
	Cols  []string `json:"cols"`
	Rows  [][]Cell `json:"rows"`
	// Reuse carries checkpoint prefix-reuse counts when the table came from
	// a checkpointed sweep; hoisted into Result.Reuse so amexp -timing can
	// report it.
	Reuse *scenario.ReuseStats `json:"reuse,omitempty"`

	checks []Check
}

// NewTable creates a table with the given title and columns.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// AddRow appends a row, converting each value to a typed Cell: floats
// (default "%.4g" formatting), ints, bools, strings, runner.Ratio, or a
// ready-made Cell. Anything else is formatted with %v into a string cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]Cell, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case Cell:
			row[i] = v
		case runner.Ratio:
			row[i] = Cell{Kind: KindRatio, Num: v.Num, Den: v.Den}
		case float64:
			row[i] = Cell{Kind: KindFloat, Float: v}
		case float32:
			row[i] = Cell{Kind: KindFloat, Float: float64(v)}
		case int:
			row[i] = Cell{Kind: KindInt, Int: int64(v)}
		case int64:
			row[i] = Cell{Kind: KindInt, Int: v}
		case bool:
			row[i] = Cell{Kind: KindBool, Bool: v}
		case string:
			row[i] = Cell{Kind: KindStr, Str: v}
		default:
			row[i] = Cell{Kind: KindStr, Str: fmt.Sprintf("%v", c)}
		}
	}
	t.Rows = append(t.Rows, row)
}

// Expect declares a check of cell (row, col) against the constant want.
// Row/col indices may refer to rows added later; they are only resolved
// at evaluation time.
func (t *Table) Expect(row, col int, op Op, want, tol float64, ref string) {
	t.checks = append(t.checks, Check{Row: row, Col: col, Op: op, Want: want, Tol: tol, Ref: ref})
}

// ExpectCell declares a check of cell (row, col) against another cell of
// the same table.
func (t *Table) ExpectCell(row, col int, op Op, wantRow, wantCol int, tol float64, ref string) {
	t.checks = append(t.checks, Check{
		Row: row, Col: col, Op: op,
		Against: &CellRef{Row: wantRow, Col: wantCol},
		Tol:     tol, Ref: ref,
	})
}

package experiments

import (
	"repro/internal/runner"
	"repro/internal/scenario"
)

// e22Point runs one (protocol, attack, topology) cell: validity rate plus
// the mean append-propagation lag over the graph.
func e22Point(o Options, trials int, spec scenario.Spec) (runner.Ratio, float64) {
	b := scenario.MustBind(spec)
	type sample struct {
		valid bool
		lag   float64
	}
	type acc struct {
		valid int
		lag   float64
	}
	a := runner.TrialsReduce(trials, o.Seed, o.Workers, acc{},
		func(seed uint64) sample {
			r := b.Randomized(seed)
			return sample{valid: r.Verdict.Validity, lag: r.VisMeanLag}
		},
		func(a acc, s sample) acc {
			if s.valid {
				a.valid++
			}
			a.lag += s.lag
			return a
		})
	return runner.Rate(a.valid, trials), a.lag / float64(trials)
}

// RunE22 — does the chain-vs-DAG separation survive real network graphs?
// The paper proves Theorem 5.4 (chain collapse) and Theorem 5.6 (DAG
// resilience) under the uniform Δ-bounded oracle: every append is visible
// everywhere within one Δ. This experiment swaps the oracle for generated
// topologies with per-link gossip delays (the transport layer) and
// re-runs both protocols under their signature attacks.
//
// Two findings. First, with links fast enough that flooding stays inside
// the Δ the theorems assume, the separation survives every graph: the
// attacked chain's validity is zero on the complete mesh and stays zero
// on sparse graphs, while the DAG keeps deciding correctly. Second, the
// synchrony bound is load-bearing: as per-link delay grows and multi-hop
// propagation stretches effective staleness past Δ, even the DAG's
// resilience erodes — the Theorem 5.1 lesson (asynchrony defeats
// randomized access) reappearing as a topology effect, with the measured
// propagation lag as the dose.
func RunE22(o Options) []*Table {
	trials := o.trials(40)
	if o.Quick {
		trials = o.trials(15)
	}
	n, t, k := 10, 4, 41
	base := scenario.Spec{N: n, T: t, Lambda: 1, K: k, DelayDist: "uniform"}

	type topo struct {
		name   scenario.Topology
		params map[string]float64
	}
	topos := []topo{
		{scenario.TopoComplete, nil},
		{scenario.TopoSmallWorld, map[string]float64{"k": 2, "beta": 0.2}},
		{scenario.TopoRing, map[string]float64{"k": 1}},
	}
	sep := NewTable("E22a: chain vs DAG across topologies, links within Δ (n=10, t=4, λ=1, k=41, link delay 0.1Δ)",
		"topology", "chain validity", "dag validity", "mean lag (Δ)")
	for _, tp := range topos {
		spec := base
		spec.Topology, spec.TopologyParams, spec.LinkDelay = tp.name, tp.params, 0.1
		chainSpec, dagSpec := spec, spec
		chainSpec.Protocol, chainSpec.Attack = scenario.Chain, scenario.AttackTieBreak
		dagSpec.Protocol, dagSpec.Attack = scenario.Dag, scenario.AttackPrivateChain
		chainValid, _ := e22Point(o, trials, chainSpec)
		dagValid, dagLag := e22Point(o, trials, dagSpec)
		sep.AddRow(string(tp.name), chainValid, dagValid, Float(dagLag, "%.3f"))
		row := len(sep.Rows) - 1
		sep.Expect(row, 1, OpLe, 0.05, 0,
			"Theorem 5.4: the tie-break attack collapses the chain on every graph")
		sep.Expect(row, 2, OpGe, 0.25, 0,
			"Theorem 5.6: the DAG keeps deciding correctly on every graph while the chain cannot")
		sep.ExpectCell(row, 2, OpGe, row, 1, 0.05,
			"Theorems 5.4/5.6: the DAG's validity dominates the attacked chain's on every topology")
	}
	sep.Expect(0, 3, OpEq, 0, 0, "complete topology takes the oracle path: zero propagation lag")
	sep.ExpectCell(1, 3, OpGe, 0, 3, 0.02, "sparse graphs pay real propagation lag")
	sep.Note = "the separation is a property of the structures, not of the oracle: gossip over sparse graphs preserves it while flooding stays within Δ"

	delays := []float64{0.05, 0.1, 0.25, 0.5}
	if o.Quick {
		delays = []float64{0.05, 0.5}
	}
	stretch := NewTable("E22b: DAG validity vs link delay on the k=1 ring (n=10, t=4, λ=1, k=41)",
		"link delay (Δ)", "dag validity", "mean lag (Δ)")
	for _, d := range delays {
		spec := base
		spec.Protocol, spec.Attack = scenario.Dag, scenario.AttackPrivateChain
		spec.Topology, spec.TopologyParams = scenario.TopoRing, map[string]float64{"k": 1}
		spec.LinkDelay = d
		valid, lag := e22Point(o, trials, spec)
		stretch.AddRow(Float(d, "%.2f"), valid, Float(lag, "%.3f"))
	}
	last := len(stretch.Rows) - 1
	stretch.ExpectCell(0, 1, OpGe, last, 1, 0.05,
		"Theorem 5.1's shadow: stretching propagation past Δ erodes even the DAG's resilience")
	stretch.ExpectCell(last, 2, OpGe, 0, 2, 0.05,
		"the dose is measurable: mean propagation lag grows with per-link delay")
	stretch.Expect(last, 1, OpLe, 0.2, 0,
		"at half a Δ per hop the five-hop ring is effectively asynchronous and the DAG yields")
	stretch.Note = "the Δ-bound the theorems assume is a property of the network, not of the protocol: sparse graphs spend it on hops"
	return []*Table{sep, stretch}
}

package experiments

import (
	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/dag"
	"repro/internal/scenario"
)

// e23Stream is one long bounded append stream driven over a substrate
// index: the memory's live high-water mark, the index watermark the
// substrate's Compact actually achieved, and the final retirement floor.
type e23Stream struct {
	liveHW  int
	indexWM int
	floor   int
}

const (
	e23Window = 1024
	e23Stride = 256
	e23Fork   = 64 // steps between abandoned forks
)

// e23Indexer is the slice of chain.Cached / dag.Cached the stream driver
// needs: extend over the current view, compact behind the floor.
type e23Indexer interface {
	CompactTo(reqW int) int
}

// e23Run streams `steps` appends through a bounded memory with a trailing
// retirement window. Every e23Fork steps a fork block extends forkParent's
// pick instead of the tip and the branch is abandoned; mainParents shapes
// the main-line block (single parent for the chain, tip+open-fork merge
// for the DAG). Every stride the index extends, compacts behind the
// floor, and the memory retires to it.
func e23Run(steps int,
	extend func(appendmem.View) e23Indexer,
	forkParent func(tip appendmem.MsgID, watermark int) appendmem.MsgID,
	mainParents func(tip appendmem.MsgID, open []appendmem.MsgID) []appendmem.MsgID,
) e23Stream {
	m := appendmem.NewBounded(8, e23Window/8)
	tip, wm := appendmem.None, 0
	var open []appendmem.MsgID
	for i := 0; i < steps; i++ {
		w := m.Writer(appendmem.NodeID(i % 8))
		// Mid-cycle forks: the compaction anchor candidate sits just below
		// the stride-aligned floor, so boundary-aligned forks would pin it
		// every attempt by construction rather than by fork shape.
		if i%e23Fork == e23Fork/2-1 && tip > 32 {
			fork := w.MustAppend(1, 0, []appendmem.MsgID{forkParent(tip, m.Watermark())}).ID
			open = append(open, fork)
		} else {
			tip = w.MustAppend(1, 0, mainParents(tip, open)).ID
			open = open[:0]
		}
		if (i+1)%e23Stride == 0 {
			if floor := m.Len() - e23Window; floor > 0 {
				// The index must cover the prefix before the memory drops it.
				wm = extend(m.Read()).CompactTo(floor)
				m.Retire(floor)
			}
		}
	}
	return e23Stream{liveHW: m.LiveHighWater(), indexWM: wm, floor: m.Watermark()}
}

// recentFork forks off a block 16 behind the tip — competing-branch
// pressure near the head, the shape honest racing and tip attacks produce.
func recentFork(tip appendmem.MsgID, _ int) appendmem.MsgID { return tip - 16 }

// deepFork forks off a block just above the retirement boundary — a
// branch pinned to the oldest reachable history.
func deepFork(_ appendmem.MsgID, watermark int) appendmem.MsgID {
	return appendmem.MsgID(watermark + 8)
}

func chainParents(tip appendmem.MsgID, _ []appendmem.MsgID) []appendmem.MsgID {
	return []appendmem.MsgID{tip}
}

// dagParents merges every open fork tip into the next main block, the
// inclusive-parent absorption BlockDAGs are built on.
func dagParents(tip appendmem.MsgID, open []appendmem.MsgID) []appendmem.MsgID {
	if tip == appendmem.None {
		return nil
	}
	return append([]appendmem.MsgID{tip}, open...)
}

func e23Chain(steps int, fork func(appendmem.MsgID, int) appendmem.MsgID) e23Stream {
	c := chain.NewCached()
	return e23Run(steps, func(v appendmem.View) e23Indexer { c.At(v); return c }, fork, chainParents)
}

func e23Dag(steps int, fork func(appendmem.MsgID, int) appendmem.MsgID) e23Stream {
	c := dag.NewCached()
	return e23Run(steps, func(v appendmem.View) e23Indexer { c.At(v); return c }, fork, dagParents)
}

// RunE23 — bounded-memory horizons: does pruning change anything, and
// what can be pruned? Three findings, one per table.
//
// E23a streams long fork-pressured histories through both substrates
// with a trailing retirement window. Memory retirement is floor-driven
// and unconditional: the live high-water mark stays near the window
// (≥10× below the horizon) in every configuration. Index compaction is
// conservative: under tip-level fork pressure (the shape honest racing
// and tip attacks produce) both indexes keep their watermark within a
// couple of windows of the floor, while a branch pinned just above the
// retirement boundary makes both decline — the anchor can never prove
// the old fork point unreachable — and the index simply carries the
// extra state without ever answering wrong.
//
// E23b/E23c rerun a confirmation-depth sweep with trial checkpointing:
// every point beyond the first resumes each trial from its captured
// first-decision prefix instead of re-simulating it, and every metric is
// bit-identical to the from-scratch sweep — prefix reuse is a pure
// wall-clock optimization.
func RunE23(o Options) []*Table {
	steps := 60000
	if o.Quick {
		steps = 20000
	}

	stream := NewTable("E23a: windowed retirement under fork pressure (window 1024, fork every 64 steps)",
		"substrate / forks", "appends", "live high-water", "reduction ×", "index watermark", "retirement floor")
	rows := []struct {
		name string
		s    e23Stream
	}{
		{"chain / tip-16", e23Chain(steps, recentFork)},
		{"dag / tip-16", e23Dag(steps, recentFork)},
		{"chain / boundary", e23Chain(steps, deepFork)},
		{"dag / boundary", e23Dag(steps, deepFork)},
	}
	for _, row := range rows {
		stream.AddRow(row.name, steps, row.s.liveHW,
			Float(float64(steps)/float64(row.s.liveHW), "%.1f"),
			row.s.indexWM, row.s.floor)
	}
	for i, row := range rows {
		stream.Expect(i, 3, OpGe, 10, 0,
			"acceptance: windowed memory high-water ≥10× below the horizon regardless of fork shape")
		if i > 0 {
			stream.ExpectCell(i, 5, OpEq, 0, 5, 0,
				"memory retirement is floor-driven: every configuration reaches the same floor")
		}
		if row.name == "chain / tip-16" || row.name == "dag / tip-16" {
			stream.Expect(i, 4, OpGe, float64(row.s.floor)-2*e23Window, 0,
				"tip-level forks fall below the anchor quickly: the index watermark tracks the floor")
		} else {
			stream.Expect(i, 4, OpLe, 2*e23Window, 0,
				"a branch pinned at the boundary is never provably unreachable: Compact declines, safely")
		}
	}
	stream.Note = "memory pruning needs only reachability floors; index compaction additionally needs forks to age out of the anchor's way"

	trials := o.trials(30)
	if o.Quick {
		trials = o.trials(10)
	}
	base := scenario.Spec{
		Protocol: scenario.Dag, N: 10, T: 3, Crashes: 1,
		Lambda: 1, K: 41, Attack: scenario.AttackFlip,
		Seed: o.Seed, Trials: trials,
		Metrics: []string{"ok", "decide-time", "duration"},
		Sweep: []scenario.Axis{{Name: "confirm", Values: []scenario.Value{
			{Num: 0}, {Num: 2}, {Num: 4}}}},
	}
	scratch := scenario.MustRunSpec(base, scenario.Options{Workers: o.Workers})
	cpSpec := base
	cpSpec.Checkpoint = true
	ckpt := scenario.MustRunSpec(cpSpec, scenario.Options{Workers: o.Workers})

	eq := NewTable("E23b: confirm sweep, from scratch vs checkpointed prefixes (dag, n=10, t=3, λ=1, k=41, flip)",
		"confirm", "ok scratch", "ok resumed", "decide-time scratch", "decide-time resumed")
	for i, pt := range scratch.Points {
		cp := ckpt.Points[i]
		eq.AddRow(pt.Coords[0].Num,
			pt.Metrics[0].Ratio(trials), cp.Metrics[0].Ratio(trials),
			Float(pt.Metrics[1].Value, "%.3f"), Float(cp.Metrics[1].Value, "%.3f"))
		eq.ExpectCell(i, 2, OpEq, i, 1, 0,
			"checkpoint resume is exact: success rates identical at every depth")
		eq.ExpectCell(i, 4, OpEq, i, 3, 0,
			"checkpoint resume is exact: decision times identical at every depth")
	}
	eq.Note = "a deeper confirmation only postpones the first decision, so the captured prefix replays exactly"

	reuse := NewTable("E23c: prefix reuse over the checkpointed sweep",
		"trials per point", "captured", "resumed")
	reuse.AddRow(trials, ckpt.Reuse.Captured, ckpt.Reuse.Resumed)
	reuse.Expect(0, 1, OpEq, float64(trials), 0,
		"the lowest-depth point captures one checkpoint per trial")
	reuse.Expect(0, 2, OpEq, float64(2*trials), 0,
		"every deeper point resumes every trial from its checkpoint")
	reuse.Reuse = ckpt.Reuse
	return []*Table{stream, eq, reuse}
}

package experiments

import (
	"fmt"

	"repro/internal/bivalence"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// RunE1 — Theorem 2.1 made executable. The model checker exhaustively
// explores every protocol of the threshold-vote family for n ∈ {2,3,4}
// (n=2 only under Quick) over all input assignments and reports which consensus
// property fails; the theorem predicts the OK column is always false.
// A second table demonstrates the proof's machinery on the FLP-style
// RetryVote protocol: a bivalent initial configuration (Lemma 2.2) and an
// explicit non-deciding schedule prefix (Lemma 2.3 / Theorem 2.1).
func RunE1(o Options) []*Table {
	sizes := []int{2, 3, 4}
	if o.Quick {
		sizes = []int{2}
	}
	family := NewTable("E1a: exhaustive check of the threshold-vote family (Theorem 2.1 predicts OK=false everywhere)",
		"n", "protocol", "agreement", "validity", "1-res termination", "bivalent init", "configs", "OK")
	for _, n := range sizes {
		for _, p := range bivalence.Family(n) {
			v := bivalence.CheckTheorem(p, n, 300000)
			family.AddRow(n, v.Protocol, v.Agreement, v.Validity, v.Termination, v.BivalentInitial, v.Configs, v.OK())
			family.Expect(len(family.Rows)-1, 7, OpEq, 0, 0,
				"Theorem 2.1: no protocol of the family solves 1-resilient consensus")
		}
	}

	demo := NewTable("E1b: Lemma 2.2/2.3 machinery on retry-vote (n=3, inputs 0,1,1)",
		"quantity", "value")
	p := &bivalence.RetryVote{N: 3}
	g := bivalence.Explore(p, bivalence.Initial(p, []int{0, 1, 1}), 30000)
	demo.AddRow("explored configurations", g.Size())
	demo.AddRow("initial configuration bivalent (Lemma 2.2)", g.Bivalent(g.Root()))
	cycles := 4
	trace, ok := g.NonDecidingSchedule(g.Root(), cycles)
	demo.AddRow(fmt.Sprintf("non-deciding schedule, %d round-robin cycles", cycles), ok)
	demo.AddRow("schedule length (configurations visited)", len(trace))
	allBivalent := true
	for _, i := range trace {
		if !g.Bivalent(i) {
			allBivalent = false
		}
	}
	demo.AddRow("every visited configuration bivalent", allBivalent)
	demo.Note = "the schedule extends indefinitely; Theorem 2.1's adversary never lets the protocol decide"
	demo.Expect(1, 1, OpEq, 1, 0, "Lemma 2.2: the initial configuration is bivalent")
	demo.Expect(2, 1, OpEq, 1, 0, "Lemma 2.3/Theorem 2.1: a non-deciding round-robin schedule exists")
	demo.Expect(4, 1, OpEq, 1, 0, "Theorem 2.1: every configuration the adversary visits stays bivalent")
	return []*Table{family, demo}
}

// RunE2 — Lemma 3.1: the DelayedChain adversary keeps agreement breakable
// for every round budget up to t; the full t+1 rounds repair it. Each row
// is one (n, t, rounds) point with the measured agreement-failure rate.
func RunE2(o Options) []*Table {
	trials := o.trials(30)
	cases := []struct{ n, t int }{{4, 1}, {5, 2}, {8, 3}}
	if o.Quick {
		cases = cases[:2]
	}
	tbl := NewTable("E2: agreement failure rate of Algorithm 1 truncated to r rounds (DelayedChain adversary, balanced inputs)",
		"n", "t", "rounds", "agreement failures", "expected")
	for _, tc := range cases {
		for rounds := 1; rounds <= tc.t+1; rounds++ {
			c := tc.n - tc.t
			b := scenario.MustBind(scenario.Spec{
				Protocol: scenario.Sync, N: tc.n, T: tc.t, Rounds: rounds,
				Attack: scenario.AttackDelayedChain,
				Inputs: fmt.Sprintf("split:%d", (c+1)/2),
			})
			fails := runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool {
				return !b.Sync(seed).Verdict.Agreement
			})
			expect := "failures (r <= t)"
			if rounds == tc.t+1 {
				expect = "none (r = t+1)"
				tbl.Expect(len(tbl.Rows), 3, OpEq, 0, 0,
					"Lemma 3.1: the full t+1 rounds repair agreement — zero failures at r = t+1")
			} else {
				tbl.Expect(len(tbl.Rows), 3, OpGt, 0, 0,
					"Lemma 3.1: every round budget r <= t leaves agreement breakable")
			}
			tbl.AddRow(tc.n, tc.t, rounds, fails, expect)
		}
	}
	tbl.Note = "the paper's lower bound: Byzantine agreement needs t+1 rounds in the append memory"
	return []*Table{tbl}
}

// RunE3 — Theorem 3.2: Algorithm 1 with t+1 rounds solves Byzantine
// agreement for t < n/2 and collapses beyond, under the LoudFlip adversary
// (every Byzantine node votes against the unanimous correct input).
func RunE3(o Options) []*Table {
	trials := o.trials(20)
	n := 9
	tbl := NewTable("E3: Algorithm 1 (t+1 rounds) vs LoudFlip, n=9, all correct inputs +1",
		"t", "t/n", "ok (agr+val+term)", "regime")
	maxT := n - 1
	if o.Quick {
		maxT = 6
	}
	for t := 0; t <= maxT; t++ {
		b := scenario.MustBind(scenario.Spec{
			Protocol: scenario.Sync, N: n, T: t, Attack: scenario.AttackLoudFlip,
		})
		oks := runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool {
			return b.Sync(seed).Verdict.OK()
		})
		regime := "t < n/2: must hold"
		if float64(t) >= float64(n)/2 {
			regime = "t >= n/2: must fail"
			tbl.Expect(len(tbl.Rows), 2, OpEq, 0, 0,
				"Theorem 3.2: beyond t >= n/2 the LoudFlip majority flips every run")
		} else {
			tbl.Expect(len(tbl.Rows), 2, OpEq, 1, 0,
				"Theorem 3.2: Algorithm 1 with t+1 rounds solves BA for every t < n/2")
		}
		tbl.AddRow(t, Float(float64(t)/float64(n), "%.2f"), oks, regime)
	}
	tbl.Note = "decision time is (t+1)·Δ — the O(tΔ) bound of Theorem 3.2"
	return []*Table{tbl}
}

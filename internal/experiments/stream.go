package experiments

import "runtime"

// RunStream executes the experiments concurrently and calls emit for each
// Result in input order: experiment i is emitted as soon as it and every
// earlier experiment have finished, so output streams instead of waiting
// for the whole set. The concurrency changes nothing about the results —
// each experiment derives all randomness from (Options.Seed, its own
// parameter grid), and their trial fan-outs interleave onto the shared
// runner pool, which merges every fan-out in seed order. emit runs on the
// calling goroutine.
//
// At most GOMAXPROCS experiments run at once. Beyond that there are no
// idle cycles left to fill — interleaving more of them only grows the
// live heap and thrashes caches (on a single-core box an uncapped stream
// was measurably slower than a serial loop, not faster).
func RunStream(es []Experiment, o Options, emit func(*Result)) {
	done := make([]chan *Result, len(es))
	slots := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	for i := range es {
		done[i] = make(chan *Result, 1)
		go func(i int) {
			slots <- struct{}{}
			defer func() { <-slots }()
			done[i] <- Run(es[i], o)
		}(i)
	}
	for i := range es {
		emit(<-done[i])
	}
}

package experiments

import (
	"repro/internal/runner"
	"repro/internal/scenario"
)

// RunE19 — confirmation depth, a deliberate null result. Real blockchains
// defend decisions by waiting c extra blocks ("confirmations") so that a
// late reorganization cannot displace the decided prefix. We added the
// same knob to Algorithms 5 and 6 (Rule.Confirm) and swept it against the
// strongest continuous attacks, in both the synchronous and the
// asynchronous (E16) regime. The columns do not move:
//
// In the append memory, confirmations buy nothing — and the reason is
// informative. Reorg protection helps when an adversary can *retroactively
// displace* a prefix (propagation delays let a hidden heavier chain
// surface late). The paper's attacks instead poison the prefix *as it
// forms*: the Byzantine share of the first k values is fixed by the
// steady-state rates (Theorems 5.3/5.4) or by bursts already in place
// (Lemma 5.5); deciding later re-reads the same poisoned prefix. And
// conversely, the surgical "burst just before the decision" adversary
// (DagLastMinute) defeats itself: staying silent early makes the prefix
// overwhelmingly honest, so the late burst cannot flip a k-majority —
// which is why the effective form of Lemma 5.5's attack is the continuous
// one, and why its damage is bounded by Θ(λ log n) extra values rather
// than a takeover.
func RunE19(o Options) []*Table {
	trials := o.trials(50)
	depths := []int{0, 5, 10, 20}
	if o.Quick {
		trials = o.trials(15)
		depths = []int{0, 10}
	}
	n, t, k := 10, 4, 41

	validity := func(spec scenario.Spec) runner.Ratio {
		spec.N, spec.T, spec.Lambda, spec.K = n, t, 1, k
		b := scenario.MustBind(spec)
		return runner.RateTrials(trials, o.Seed, o.Workers, func(seed uint64) bool {
			return b.Randomized(seed).Verdict.Validity
		})
	}

	sweep := NewTable("E19a: validity vs confirmation depth under the continuous attacks (n=10, t=4, λ=1, k=41)",
		"confirm depth", "chain (tiebreak attack)", "dag (private-chain attack)")
	for _, c := range depths {
		chainOK := validity(scenario.Spec{
			Protocol: scenario.Chain, Attack: scenario.AttackTieBreak, Confirm: c,
		})
		dagOK := validity(scenario.Spec{
			Protocol: scenario.Dag, Attack: scenario.AttackPrivateChain, Confirm: c,
		})
		sweep.AddRow(c, chainOK, dagOK)
		row := len(sweep.Rows) - 1
		if row > 0 {
			sweep.ExpectCell(row, 1, OpEq, 0, 1, 0.15,
				"null result: confirmation depth does not move chain validity — the prefix is poisoned as it forms")
			sweep.ExpectCell(row, 2, OpEq, 0, 2, 0.15,
				"null result: confirmation depth does not move DAG validity — deciding later re-reads the same prefix")
		}
	}
	sweep.Note = "flat columns: the attacks poison the prefix as it forms; deciding later re-reads the same prefix"

	burst := NewTable("E19b: the surgical last-minute burst (Lemma 5.5's literal adversary) is self-defeating",
		"adversary", "dag validity")
	for _, tc := range []struct {
		label string
		spec  scenario.Spec
	}{
		{"continuous private chains",
			scenario.Spec{Protocol: scenario.Dag, Attack: scenario.AttackPrivateChain}},
		{"silent until k-6, then burst",
			scenario.Spec{Protocol: scenario.Dag, Attack: scenario.AttackLastMinute, Margin: 6}},
		{"silent until k-12, then burst",
			scenario.Spec{Protocol: scenario.Dag, Attack: scenario.AttackLastMinute, Margin: 12}},
	} {
		oks := validity(tc.spec)
		burst.AddRow(tc.label, oks)
		row := len(burst.Rows) - 1
		if row > 0 {
			burst.ExpectCell(row, 1, OpGe, 0, 1, 0,
				"Lemma 5.5: the surgical last-minute burst is self-defeating — never stronger than continuous private chains")
		}
	}
	burst.Note = "early silence makes the prefix honest; the burst only appends to its tail — Lemma 5.5's damage is additive, never a takeover"
	return []*Table{sweep, burst}
}

package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed/stream diverged at step %d", i)
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := New(42, 1)
	b := New(42, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("streams with different ids coincide %d/1000 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(1, 1)
	a := root.Split()
	b := root.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("split streams coincide %d/1000 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	p := New(3, 3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := p.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1, 1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	p := New(11, 5)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[p.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	p := New(9, 9)
	if err := quick.Check(func(_ int) bool {
		f := p.Float64()
		return f >= 0 && f < 1
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	p := New(4, 4)
	sum := 0.0
	const trials = 200000
	for i := 0; i < trials; i++ {
		sum += p.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestExpMoments(t *testing.T) {
	p := New(5, 5)
	for _, lambda := range []float64{0.5, 1, 4} {
		sum := 0.0
		const trials = 200000
		for i := 0; i < trials; i++ {
			sum += p.Exp(lambda)
		}
		mean := sum / trials
		want := 1 / lambda
		if math.Abs(mean-want) > 0.05*want {
			t.Errorf("Exp(%v) mean = %v, want about %v", lambda, mean, want)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	p := New(6, 6)
	for _, lambda := range []float64{0.1, 1, 5, 20, 50, 200} {
		sum, sumSq := 0.0, 0.0
		const trials = 100000
		for i := 0; i < trials; i++ {
			x := float64(p.Poisson(lambda))
			sum += x
			sumSq += x * x
		}
		mean := sum / trials
		variance := sumSq/trials - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.02 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+0.05 {
			t.Errorf("Poisson(%v) variance = %v", lambda, variance)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	p := New(6, 7)
	if got := p.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestNormMoments(t *testing.T) {
	p := New(7, 7)
	const mean, sd, trials = 3.0, 2.0, 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		x := p.Norm(mean, sd)
		sum += x
		sumSq += x * x
	}
	m := sum / trials
	v := sumSq/trials - m*m
	if math.Abs(m-mean) > 0.03 {
		t.Errorf("Norm mean = %v, want %v", m, mean)
	}
	if math.Abs(v-sd*sd) > 0.1 {
		t.Errorf("Norm variance = %v, want %v", v, sd*sd)
	}
}

func TestBinomialMoments(t *testing.T) {
	p := New(8, 8)
	for _, tc := range []struct {
		n    int
		prob float64
	}{{10, 0.5}, {100, 0.1}, {1000, 0.3}} {
		sum := 0.0
		const trials = 50000
		for i := 0; i < trials; i++ {
			sum += float64(p.Binomial(tc.n, tc.prob))
		}
		mean := sum / trials
		want := float64(tc.n) * tc.prob
		if math.Abs(mean-want) > 0.05*want+0.05 {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", tc.n, tc.prob, mean, want)
		}
	}
}

func TestBinomialBounds(t *testing.T) {
	p := New(8, 9)
	for i := 0; i < 1000; i++ {
		k := p.Binomial(500, 0.01)
		if k < 0 || k > 500 {
			t.Fatalf("Binomial out of range: %d", k)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(10, 10)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		perm := p.Perm(n)
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPickWeights(t *testing.T) {
	p := New(12, 12)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[p.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight entry picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio = %v, want about 3", ratio)
	}
}

func TestPickPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero total did not panic")
		}
	}()
	New(1, 1).Pick([]float64{0, 0})
}

func TestShuffleDeterministic(t *testing.T) {
	run := func() []int {
		p := New(99, 99)
		s := []int{0, 1, 2, 3, 4, 5, 6, 7}
		p.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
		return s
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shuffle not deterministic for same seed")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	p := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = p.Uint64()
	}
}

func BenchmarkPoissonSmall(b *testing.B) {
	p := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = p.Poisson(2.5)
	}
}

func BenchmarkExp(b *testing.B) {
	p := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = p.Exp(1.5)
	}
}

func TestInt63n(t *testing.T) {
	p := New(20, 20)
	for _, n := range []int64{1, 7, 1 << 40} {
		for i := 0; i < 100; i++ {
			v := p.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(0) did not panic")
		}
	}()
	p.Int63n(0)
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1, 1).Exp(0)
}

func TestPoissonNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(-1) did not panic")
		}
	}()
	New(1, 1).Poisson(-1)
}

func TestBinomialPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(1, 1).Binomial(-1, 0.5) },
		func() { New(1, 1).Binomial(10, -0.1) },
		func() { New(1, 1).Binomial(10, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPickNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	New(1, 1).Pick([]float64{1, -1})
}

func TestBoolBalance(t *testing.T) {
	p := New(30, 30)
	trues := 0
	for i := 0; i < 10000; i++ {
		if p.Bool() {
			trues++
		}
	}
	if trues < 4700 || trues > 5300 {
		t.Fatalf("Bool biased: %d/10000", trues)
	}
}

// Package xrand provides deterministic pseudo-random number generation and
// the distribution samplers the append-memory simulations need.
//
// Everything in this repository must be a pure function of (Config, Seed),
// so xrand deliberately avoids math/rand's global state. The core generator
// is PCG-XSH-RR (O'Neill 2014), a small, fast, statistically strong PRNG
// with cheap stream splitting: every node, every trial and every adversary
// gets its own independent stream derived from a root seed, which keeps
// parallel trial execution race-free and replayable.
package xrand

import "math"

// PCG is a PCG-XSH-RR 64/32 generator. The zero value is NOT usable; create
// instances with New or Split.
type PCG struct {
	state uint64
	inc   uint64 // stream selector; always odd
}

const pcgMult = 6364136223846793005

// New returns a generator seeded with seed on stream stream. Two generators
// with different streams are statistically independent even for equal seeds.
func New(seed, stream uint64) *PCG {
	p := &PCG{inc: stream<<1 | 1}
	p.state = p.inc + seed
	p.Uint32()
	return p
}

// State is a snapshot of a generator's position in its stream. Capturing
// and restoring it is how trial checkpointing resumes every rng stream at
// the exact draw it had reached — replaying a run suffix byte-identically.
type State struct {
	State  uint64
	Stream uint64
}

// State returns the generator's current state for later Restore.
func (p *PCG) State() State { return State{State: p.state, Stream: p.inc} }

// Restore returns a generator positioned exactly at s: its next draw is
// the same the captured generator would have produced.
func Restore(s State) *PCG { return &PCG{state: s.State, inc: s.Stream} }

// Split derives a new, independent generator from p. The child's seed and
// stream are drawn from p, so repeated Split calls yield distinct streams.
// Split advances p.
func (p *PCG) Split() *PCG {
	seed := uint64(p.Uint32())<<32 | uint64(p.Uint32())
	stream := uint64(p.Uint32())<<32 | uint64(p.Uint32())
	return New(seed, stream)
}

// Uint32 returns the next 32 uniform random bits.
func (p *PCG) Uint32() uint32 {
	old := p.state
	p.state = old*pcgMult + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns the next 64 uniform random bits.
func (p *PCG) Uint64() uint64 {
	return uint64(p.Uint32())<<32 | uint64(p.Uint32())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless bounded sampling keeps it unbiased.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	bound := uint32(n)
	// Classic unbiased rejection: threshold = 2^32 mod n.
	threshold := -bound % bound
	for {
		r := p.Uint32()
		if r >= threshold {
			return int(r % bound)
		}
	}
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (p *PCG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	bound := uint64(n)
	threshold := -bound % bound
	for {
		r := p.Uint64()
		if r >= threshold {
			return int64(r % bound)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair random bit as a bool.
func (p *PCG) Bool() bool { return p.Uint32()&1 == 1 }

// Exp returns an exponentially distributed sample with rate lambda
// (mean 1/lambda). It panics if lambda <= 0. Used for Poisson-process
// inter-arrival times of memory-access tokens.
func (p *PCG) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("xrand: Exp with non-positive rate")
	}
	for {
		u := p.Float64()
		if u > 0 {
			return -math.Log(u) / lambda
		}
	}
}

// Poisson returns a Poisson-distributed sample with mean lambda.
// Knuth's multiplication method is used for small lambda; for large lambda
// it falls back to the normal approximation with continuity correction,
// which is accurate to well under the statistical noise of our experiments
// for lambda >= 30.
func (p *PCG) Poisson(lambda float64) int {
	if lambda <= 0 {
		if lambda == 0 {
			return 0
		}
		panic("xrand: Poisson with negative mean")
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		prod := p.Float64()
		for prod > l {
			k++
			prod *= p.Float64()
		}
		return k
	}
	for {
		x := p.Norm(lambda, math.Sqrt(lambda)) + 0.5
		if x >= 0 {
			return int(x)
		}
	}
}

// Norm returns a normally distributed sample with the given mean and
// standard deviation, via the Marsaglia polar method.
func (p *PCG) Norm(mean, stddev float64) float64 {
	for {
		u := 2*p.Float64() - 1
		v := 2*p.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Binomial returns the number of successes among n independent trials with
// success probability prob. It panics for prob outside [0,1] or n < 0.
func (p *PCG) Binomial(n int, prob float64) int {
	if n < 0 || prob < 0 || prob > 1 {
		panic("xrand: Binomial with invalid parameters")
	}
	// Direct simulation is fine at our sizes (n up to a few thousand);
	// for large n use the normal approximation.
	if n <= 256 {
		k := 0
		for i := 0; i < n; i++ {
			if p.Float64() < prob {
				k++
			}
		}
		return k
	}
	mean := float64(n) * prob
	sd := math.Sqrt(mean * (1 - prob))
	for {
		x := int(p.Norm(mean, sd) + 0.5)
		if x >= 0 && x <= n {
			return x
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (p *PCG) Perm(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (p *PCG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly random element index weighted by weights.
// Zero-weight entries are never picked. It panics when the total weight
// is not positive.
func (p *PCG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("xrand: Pick with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("xrand: Pick with non-positive total weight")
	}
	x := p.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

package topology

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// DelayKind selects the per-transmission delay distribution applied to a
// link's base latency.
type DelayKind uint8

// Delay distributions. All are mean-preserving around the base latency,
// so sweeping the distribution isolates the effect of *variance shape*
// from the effect of rate: fixed has none, uniform a bounded spread, and
// long-tail a Pareto tail whose rare stragglers model congestion spikes.
const (
	// DelayFixed delivers in exactly the base latency (no draw).
	DelayFixed DelayKind = iota
	// DelayUniform draws uniformly in [base·(1−j), base·(1+j)].
	DelayUniform
	// DelayLongTail mixes the base with a Pareto(α=2) factor: mean base,
	// infinite variance, tail P(delay > x) ~ x⁻². Samples are truncated
	// at 100× base so a single straggler cannot stall a finite run.
	DelayLongTail
)

// String returns the registry name of the kind.
func (k DelayKind) String() string {
	switch k {
	case DelayFixed:
		return "fixed"
	case DelayUniform:
		return "uniform"
	case DelayLongTail:
		return "longtail"
	}
	return fmt.Sprintf("DelayKind(%d)", uint8(k))
}

// DelayKinds enumerates the registered distribution names in order.
func DelayKinds() []string { return []string{"fixed", "uniform", "longtail"} }

// ParseDelayKind resolves a distribution name; "" means fixed.
func ParseDelayKind(name string) (DelayKind, error) {
	switch name {
	case "", "fixed":
		return DelayFixed, nil
	case "uniform":
		return DelayUniform, nil
	case "longtail":
		return DelayLongTail, nil
	}
	return 0, fmt.Errorf("topology: unknown delay distribution %q (have %s)",
		name, "fixed | uniform | longtail")
}

// DelayModel is one per-link delay distribution: a kind and its jitter
// fraction. The zero value is the fixed distribution.
type DelayModel struct {
	Kind DelayKind
	// Jitter is the spread as a fraction of the base latency in [0, 1];
	// 0 means the kind's default (0.5). Ignored by DelayFixed.
	Jitter float64
}

// longTailCap truncates Pareto samples (in units of the minimum) so one
// straggler cannot stall a finite-horizon run.
const longTailCap = 100.0

// jitter returns the effective spread fraction.
func (d DelayModel) jitter() float64 {
	if d.Jitter == 0 {
		return 0.5
	}
	return d.Jitter
}

// Sample draws one transmission delay for a link with the given base
// latency. Fixed consumes no randomness; uniform and long-tail consume
// exactly one draw, so the rng stream advance is a pure function of the
// transmission count.
func (d DelayModel) Sample(base float64, rng *xrand.PCG) float64 {
	switch d.Kind {
	case DelayUniform:
		j := d.jitter()
		return base * (1 - j + 2*j*rng.Float64())
	case DelayLongTail:
		// X = (1−U)^{−1/2} is Pareto(α=2) with minimum 1 and mean 2;
		// base·((1−j) + j·X/2) has mean exactly base.
		j := d.jitter()
		x := 1 / math.Sqrt(1-rng.Float64())
		if x > longTailCap {
			x = longTailCap
		}
		return base * (1 - j + j*x/2)
	default:
		return base
	}
}

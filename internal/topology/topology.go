// Package topology provides the network graphs the transport layer routes
// over: deterministic, seed-driven generators for the standard families
// (complete, ring lattice, grid, Watts–Strogatz small-world,
// Barabási–Albert scale-free) plus an explicit latency-table loader, and
// the per-link delay distributions (fixed, uniform, long-tail) that turn a
// link's base latency into one sampled transmission delay.
//
// The paper's delivery assumption — every append reaches every node within
// one uniform bound Δ — is the *complete* graph under an oracle transport.
// Everything else in this package exists to relax that assumption the way
// DAG-Sword (arXiv:2311.04638) and TangleSim (arXiv:2305.01232) do: large
// sparse topologies, heterogeneous per-link latencies, and gossip relay,
// so experiments can ask where the chain-vs-DAG separation bends when
// propagation is non-uniform.
//
// Graphs are immutable after construction and value-typed inside: one CSR
// adjacency (offsets/targets/latencies in three flat slices, both
// directions materialized), no per-node maps or pointer chasing, so
// neighbor iteration in the gossip hot loop is a contiguous scan and a
// built Graph is safe to share read-only across concurrent trials. The
// complete graph stays implicit (O(1) memory) — neighbor iteration
// synthesizes the full fan-out, which keeps 10k+-node complete topologies
// free of their O(n²) edge lists.
//
// Determinism contract: a generator is a pure function of its parameters
// and the rng handed to it; adjacency lists are sorted by neighbor id, so
// equal seeds yield byte-identical graphs and every traversal order
// downstream is reproducible.
package topology

import (
	"fmt"
	"sort"
)

// Graph is an undirected weighted network: nodes [0, n) and per-link base
// latencies. The zero value is not usable; build graphs with the
// generators or FromTable.
type Graph struct {
	n        int
	complete bool    // implicit complete graph; adjacency slices are nil
	lat      float64 // uniform base latency of the implicit complete graph

	// CSR adjacency, both directions: node i's neighbors are
	// targets[offsets[i]:offsets[i+1]] with latencies lats at the same
	// indexes, sorted by neighbor id.
	offsets []int32
	targets []int32
	lats    []float64
}

// edge is one undirected link during construction, u < v.
type edge struct {
	u, v int32
	lat  float64
}

// build assembles the CSR adjacency from undirected edges. Edges must be
// deduplicated by the caller; both directions are materialized and each
// adjacency list is sorted by neighbor id, so iteration order is a pure
// function of the edge set.
func build(n int, edges []edge) *Graph {
	g := &Graph{n: n, offsets: make([]int32, n+1)}
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.u]++
		deg[e.v]++
	}
	for i := 0; i < n; i++ {
		g.offsets[i+1] = g.offsets[i] + deg[i]
	}
	m := int(g.offsets[n])
	g.targets = make([]int32, m)
	g.lats = make([]float64, m)
	fill := make([]int32, n)
	put := func(from, to int32, lat float64) {
		idx := g.offsets[from] + fill[from]
		g.targets[idx] = to
		g.lats[idx] = lat
		fill[from]++
	}
	for _, e := range edges {
		put(e.u, e.v, e.lat)
		put(e.v, e.u, e.lat)
	}
	for i := 0; i < n; i++ {
		lo, hi := g.offsets[i], g.offsets[i+1]
		ts, ls := g.targets[lo:hi], g.lats[lo:hi]
		sort.Sort(&adjSort{ts, ls})
	}
	return g
}

// adjSort sorts one adjacency list by neighbor id, carrying latencies.
type adjSort struct {
	ts []int32
	ls []float64
}

func (a *adjSort) Len() int           { return len(a.ts) }
func (a *adjSort) Less(i, j int) bool { return a.ts[i] < a.ts[j] }
func (a *adjSort) Swap(i, j int) {
	a.ts[i], a.ts[j] = a.ts[j], a.ts[i]
	a.ls[i], a.ls[j] = a.ls[j], a.ls[i]
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// IsComplete reports whether the graph is the implicit complete graph.
func (g *Graph) IsComplete() bool { return g.complete }

// NumEdges returns the number of undirected links.
func (g *Graph) NumEdges() int {
	if g.complete {
		return g.n * (g.n - 1) / 2
	}
	return len(g.targets) / 2
}

// Degree returns the number of links at node i.
func (g *Graph) Degree(i int) int {
	if g.complete {
		return g.n - 1
	}
	return int(g.offsets[i+1] - g.offsets[i])
}

// Neighbors calls yield for every neighbor of node i in ascending id order
// with the link's base latency, stopping early when yield returns false.
// It allocates nothing.
func (g *Graph) Neighbors(i int, yield func(j int, lat float64) bool) {
	if g.complete {
		for j := 0; j < g.n; j++ {
			if j == i {
				continue
			}
			if !yield(j, g.lat) {
				return
			}
		}
		return
	}
	lo, hi := g.offsets[i], g.offsets[i+1]
	for k := lo; k < hi; k++ {
		if !yield(int(g.targets[k]), g.lats[k]) {
			return
		}
	}
}

// Adj returns node i's CSR adjacency row — neighbor ids and their base
// latencies, ascending by neighbor id — for batch iteration without a
// per-neighbor callback (the gossip relay hot loop). The slices alias
// the graph's storage and must be treated as read-only. Complete graphs
// keep their adjacency implicit and return nil slices; callers fall
// back to Neighbors, which synthesizes the fan-out.
func (g *Graph) Adj(i int) ([]int32, []float64) {
	if g.complete {
		return nil, nil
	}
	lo, hi := g.offsets[i], g.offsets[i+1]
	return g.targets[lo:hi], g.lats[lo:hi]
}

// Edges calls yield once per undirected link (u < v) with its base
// latency, stopping early when yield returns false.
func (g *Graph) Edges(yield func(u, v int, lat float64) bool) {
	if g.complete {
		for u := 0; u < g.n; u++ {
			for v := u + 1; v < g.n; v++ {
				if !yield(u, v, g.lat) {
					return
				}
			}
		}
		return
	}
	for u := 0; u < g.n; u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		for k := lo; k < hi; k++ {
			if v := int(g.targets[k]); v > u {
				if !yield(u, v, g.lats[k]) {
					return
				}
			}
		}
	}
}

// Link returns the base latency of the link between u and v, and whether
// the link exists.
func (g *Graph) Link(u, v int) (float64, bool) {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return 0, false
	}
	if g.complete {
		return g.lat, true
	}
	lo, hi := g.offsets[u], g.offsets[u+1]
	ts := g.targets[lo:hi]
	k := sort.Search(len(ts), func(i int) bool { return ts[i] >= int32(v) })
	if k < len(ts) && ts[k] == int32(v) {
		return g.lats[lo+int32(k)], true
	}
	return 0, false
}

// MinLatency returns the smallest base link latency, or 0 for a graph
// with no links.
func (g *Graph) MinLatency() float64 {
	if g.complete {
		return g.lat
	}
	min := 0.0
	for i, l := range g.lats {
		if i == 0 || l < min {
			min = l
		}
	}
	return min
}

// Connected reports whether every node is reachable from node 0.
func (g *Graph) Connected() bool {
	if g.complete || g.n <= 1 {
		return g.n > 0
	}
	seen := make([]bool, g.n)
	queue := make([]int32, 0, g.n)
	seen[0] = true
	queue = append(queue, 0)
	reached := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for k := g.offsets[u]; k < g.offsets[u+1]; k++ {
			if v := g.targets[k]; !seen[v] {
				seen[v] = true
				reached++
				queue = append(queue, v)
			}
		}
	}
	return reached == g.n
}

// HopDiameter returns the largest hop-count distance between any two
// nodes, or -1 when the graph is disconnected. O(n·m) BFS; intended for
// inspection and tests, not hot paths.
func (g *Graph) HopDiameter() int {
	if g.n <= 1 {
		return 0
	}
	if g.complete {
		return 1
	}
	dist := make([]int32, g.n)
	queue := make([]int32, 0, g.n)
	diam := 0
	for s := 0; s < g.n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], int32(s))
		reached := 1
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for k := g.offsets[u]; k < g.offsets[u+1]; k++ {
				if v := g.targets[k]; dist[v] < 0 {
					dist[v] = dist[u] + 1
					reached++
					if int(dist[v]) > diam {
						diam = int(dist[v])
					}
					queue = append(queue, v)
				}
			}
		}
		if reached != g.n {
			return -1
		}
	}
	return diam
}

// PathLatencies returns, for one source, the minimum summed base latency
// to every node (Dijkstra) and the predecessor of each node on that
// shortest path (-1 for the source and unreachable nodes). Used by the
// transport layer to source-route unicast messages.
func (g *Graph) PathLatencies(src int) (dist []float64, prev []int32) {
	dist = make([]float64, g.n)
	prev = make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
		prev[i] = -1
	}
	dist[src] = 0
	if g.complete {
		for j := 0; j < g.n; j++ {
			if j != src {
				dist[j] = g.lat
				prev[j] = int32(src)
			}
		}
		return dist, prev
	}
	// Value-typed binary heap of (latency, node); stale entries skipped.
	type item struct {
		d float64
		v int32
	}
	heap := []item{{0, int32(src)}}
	done := make([]bool, g.n)
	push := func(it item) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].d <= it.d {
				break
			}
			heap[i] = heap[p]
			i = p
		}
		heap[i] = it
	}
	pop := func() item {
		min := heap[0]
		last := heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		if len(heap) > 0 {
			i := 0
			for {
				l := 2*i + 1
				if l >= len(heap) {
					break
				}
				m := l
				if r := l + 1; r < len(heap) && heap[r].d < heap[l].d {
					m = r
				}
				if heap[m].d >= last.d {
					break
				}
				heap[i] = heap[m]
				i = m
			}
			heap[i] = last
		}
		return min
	}
	for len(heap) > 0 {
		it := pop()
		if done[it.v] {
			continue
		}
		done[it.v] = true
		for k := g.offsets[it.v]; k < g.offsets[it.v+1]; k++ {
			v, d := g.targets[k], it.d+g.lats[k]
			if done[v] || (dist[v] >= 0 && dist[v] <= d) {
				continue
			}
			dist[v] = d
			prev[v] = it.v
			push(item{d, v})
		}
	}
	return dist, prev
}

// validate panics on non-positive shape parameters shared by every
// generator; the scenario layer validates earlier and returns errors.
func validate(n int, lat float64) {
	if n <= 0 {
		panic(fmt.Sprintf("topology: non-positive n=%d", n))
	}
	if lat <= 0 {
		panic(fmt.Sprintf("topology: non-positive link latency %v", lat))
	}
}

// Complete returns the complete graph on n nodes with uniform base link
// latency lat, kept implicit (O(1) memory).
func Complete(n int, lat float64) *Graph {
	validate(n, lat)
	return &Graph{n: n, complete: true, lat: lat}
}

// Ring returns the ring lattice: node i linked to its k nearest neighbors
// on each side (2k total). Requires 1 <= k and 2k < n.
func Ring(n, k int, lat float64) *Graph {
	validate(n, lat)
	if k < 1 || 2*k >= n {
		panic(fmt.Sprintf("topology: ring needs 1 <= k and 2k < n, got n=%d k=%d", n, k))
	}
	edges := make([]edge, 0, n*k)
	for i := 0; i < n; i++ {
		for d := 1; d <= k; d++ {
			j := (i + d) % n
			u, v := int32(i), int32(j)
			if u > v {
				u, v = v, u
			}
			edges = append(edges, edge{u, v, lat})
		}
	}
	return build(n, edges)
}

// Grid returns the cols-wide 2D lattice on n nodes (4-neighborhood, last
// row possibly partial). Requires cols >= 1.
func Grid(n, cols int, lat float64) *Graph {
	validate(n, lat)
	if cols < 1 {
		panic(fmt.Sprintf("topology: grid needs cols >= 1, got %d", cols))
	}
	var edges []edge
	for i := 0; i < n; i++ {
		if (i+1)%cols != 0 && i+1 < n { // right neighbor
			edges = append(edges, edge{int32(i), int32(i + 1), lat})
		}
		if i+cols < n { // down neighbor
			edges = append(edges, edge{int32(i), int32(i + cols), lat})
		}
	}
	return build(n, edges)
}

package topology

import "sync/atomic"

// RoutePlane is one source's immutable shortest-path tree over a graph:
// Dist[v] is the minimum summed base latency from the source to v (-1
// when unreachable) and Prev[v] the predecessor of v on that path (-1
// for the source and unreachable nodes) — the exact pair PathLatencies
// returns, frozen for sharing. A published plane is never mutated.
type RoutePlane struct {
	Dist []float64
	Prev []int32
}

// Routes is the shared route plane of one immutable graph: per-source
// shortest-path trees computed at most once per (graph, source) and
// shared read-only across every transport, trial and worker that routes
// over the graph. Before Routes existed each gossip transport kept its
// own lazy per-source cache, so a 256-trial sweep re-ran Dijkstra 256
// times per source; a Routes handle amortizes that to once.
//
// Planes are computed lazily: the handle itself is O(n) and a plane is
// only materialized for sources that actually originate unicasts, which
// is what keeps 10k+-node graphs (where an eager all-pairs table would
// be O(n²) memory) affordable.
//
// Concurrency: For is safe to call from any number of goroutines with no
// locks. Dijkstra over an immutable graph is deterministic, so concurrent
// first callers compute identical planes and publication races are
// benign — one plane wins the CompareAndSwap, the rest are discarded.
// Determinism downstream is unaffected: every caller reads the same
// values either way, and route computation consumes no run rng.
type Routes struct {
	g      *Graph
	planes []atomic.Pointer[RoutePlane]
}

// NewRoutes creates the (empty) shared route plane for g.
func NewRoutes(g *Graph) *Routes {
	return &Routes{g: g, planes: make([]atomic.Pointer[RoutePlane], g.N())}
}

// Graph returns the graph the planes are computed over.
func (r *Routes) Graph() *Graph { return r.g }

// For returns src's shortest-path plane, computing and publishing it on
// first use. The returned plane is shared and must be treated as
// read-only.
func (r *Routes) For(src int) *RoutePlane {
	if p := r.planes[src].Load(); p != nil {
		return p
	}
	dist, prev := r.g.PathLatencies(src)
	p := &RoutePlane{Dist: dist, Prev: prev}
	if !r.planes[src].CompareAndSwap(nil, p) {
		return r.planes[src].Load() // a concurrent computation won; use it
	}
	return p
}

// Computed returns how many source planes have been materialized so far
// (inspection and tests; O(n)).
func (r *Routes) Computed() int {
	n := 0
	for i := range r.planes {
		if r.planes[i].Load() != nil {
			n++
		}
	}
	return n
}

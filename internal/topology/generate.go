package topology

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/xrand"
)

// edgeKey packs an undirected edge (u < v) for duplicate detection.
func edgeKey(u, v int32) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}

// WattsStrogatz returns the small-world graph of Watts and Strogatz: the
// ring lattice Ring(n, k) with each forward edge rewired to a uniformly
// random target with probability beta. beta=0 is the pure lattice (high
// diameter), beta=1 is near-random; small beta keeps local clustering
// while collapsing the diameter — the regime real peer-to-peer overlays
// live in. Rewiring never creates self-loops or duplicate links; a rewire
// with no legal target keeps the lattice edge. Deterministic in rng.
func WattsStrogatz(rng *xrand.PCG, n, k int, beta, lat float64) *Graph {
	validate(n, lat)
	if k < 1 || 2*k >= n {
		panic(fmt.Sprintf("topology: small-world needs 1 <= k and 2k < n, got n=%d k=%d", n, k))
	}
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("topology: small-world needs beta in [0,1], got %v", beta))
	}
	seen := make(map[int64]bool, n*k)
	edges := make([]edge, 0, n*k)
	for i := 0; i < n; i++ {
		for d := 1; d <= k; d++ {
			seen[edgeKey(int32(i), int32((i+d)%n))] = true
		}
	}
	for i := 0; i < n; i++ {
		for d := 1; d <= k; d++ {
			u, v := int32(i), int32((i+d)%n)
			if beta > 0 && rng.Float64() < beta {
				// Up to n attempts to find a fresh target; keep the
				// lattice edge when the node is saturated.
				for try := 0; try < n; try++ {
					w := int32(rng.Intn(n))
					if w == u || seen[edgeKey(u, w)] {
						continue
					}
					delete(seen, edgeKey(u, v))
					seen[edgeKey(u, w)] = true
					v = w
					break
				}
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			edges = append(edges, edge{a, b, lat})
		}
	}
	return build(n, edges)
}

// BarabasiAlbert returns the scale-free graph of Barabási and Albert:
// starting from a clique on m+1 nodes, each new node attaches m links to
// distinct existing nodes chosen proportionally to their current degree
// (the repeated-endpoints construction). Hubs emerge with power-law
// degrees — the shape measured in Bitcoin-like broadcast networks.
// Requires 1 <= m and m+1 <= n. Deterministic in rng.
func BarabasiAlbert(rng *xrand.PCG, n, m int, lat float64) *Graph {
	validate(n, lat)
	if m < 1 || m+1 > n {
		panic(fmt.Sprintf("topology: scale-free needs 1 <= m and m+1 <= n, got n=%d m=%d", n, m))
	}
	edges := make([]edge, 0, n*m)
	// endpoints holds every node once per incident link; sampling a
	// uniform element is degree-proportional sampling.
	endpoints := make([]int32, 0, 2*n*m)
	for u := int32(0); u < int32(m+1); u++ {
		for v := u + 1; v < int32(m+1); v++ {
			edges = append(edges, edge{u, v, lat})
			endpoints = append(endpoints, u, v)
		}
	}
	picked := make([]int32, 0, m)
	for i := m + 1; i < n; i++ {
		picked = picked[:0]
		for len(picked) < m {
			w := endpoints[rng.Intn(len(endpoints))]
			dup := false
			for _, p := range picked {
				if p == w {
					dup = true
					break
				}
			}
			if !dup {
				picked = append(picked, w)
			}
		}
		for _, w := range picked {
			edges = append(edges, edge{w, int32(i), lat})
			endpoints = append(endpoints, w, int32(i))
		}
	}
	return build(n, edges)
}

// Link is one explicit entry of a latency table.
type Link struct {
	From, To int
	Lat      float64
}

// FromTable builds a graph from an explicit link list — the loader for
// measured latency matrices. Links are undirected; duplicates (in either
// direction), self-loops, out-of-range endpoints and non-positive
// latencies are rejected.
func FromTable(n int, links []Link) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: table needs n > 0, got %d", n)
	}
	seen := make(map[int64]bool, len(links))
	edges := make([]edge, 0, len(links))
	for i, l := range links {
		if l.From < 0 || l.From >= n || l.To < 0 || l.To >= n {
			return nil, fmt.Errorf("topology: link %d (%d-%d) out of range [0,%d)", i, l.From, l.To, n)
		}
		if l.From == l.To {
			return nil, fmt.Errorf("topology: link %d is a self-loop at node %d", i, l.From)
		}
		if l.Lat <= 0 {
			return nil, fmt.Errorf("topology: link %d (%d-%d) has non-positive latency %v", i, l.From, l.To, l.Lat)
		}
		key := edgeKey(int32(l.From), int32(l.To))
		if seen[key] {
			return nil, fmt.Errorf("topology: duplicate link %d-%d", l.From, l.To)
		}
		seen[key] = true
		u, v := int32(l.From), int32(l.To)
		if u > v {
			u, v = v, u
		}
		edges = append(edges, edge{u, v, l.Lat})
	}
	return build(n, edges), nil
}

// tableJSON is the wire form of a latency table:
//
//	{"n": 4, "links": [[0,1,0.25], [1,2], [2,3,0.5]]}
//
// Each link is [from, to] or [from, to, latency]; omitted latencies
// default to 1.
type tableJSON struct {
	N     int         `json:"n"`
	Links [][]float64 `json:"links"`
}

// ParseTable decodes a JSON latency table and builds its graph.
func ParseTable(data []byte) (*Graph, error) {
	var t tableJSON
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("topology: bad table: %w", err)
	}
	links, err := TableLinks(t.Links)
	if err != nil {
		return nil, err
	}
	return FromTable(t.N, links)
}

// TableLinks converts the JSON link rows ([from, to] or [from, to, lat])
// into Links; omitted latencies default to 1.
func TableLinks(rows [][]float64) ([]Link, error) {
	links := make([]Link, 0, len(rows))
	for i, row := range rows {
		if len(row) != 2 && len(row) != 3 {
			return nil, fmt.Errorf("topology: link %d has %d elements, want [from, to] or [from, to, latency]", i, len(row))
		}
		l := Link{From: int(row[0]), To: int(row[1]), Lat: 1}
		if float64(l.From) != row[0] || float64(l.To) != row[1] {
			return nil, fmt.Errorf("topology: link %d endpoints must be integers, got %v-%v", i, row[0], row[1])
		}
		if len(row) == 3 {
			l.Lat = row[2]
		}
		links = append(links, l)
	}
	return links, nil
}

package topology

import (
	"sync"
	"testing"

	"repro/internal/xrand"
)

// TestRoutesMatchesPathLatencies pins that a shared plane is exactly the
// Dijkstra result PathLatencies computes, for every source, and that
// planes materialize lazily — only for sources that were asked for.
func TestRoutesMatchesPathLatencies(t *testing.T) {
	g := WattsStrogatz(xrand.New(3, 9), 40, 2, 0.3, 0.1)
	r := NewRoutes(g)
	if r.Graph() != g {
		t.Fatal("Graph() does not return the bound graph")
	}
	if r.Computed() != 0 {
		t.Fatalf("fresh Routes has %d planes computed, want 0", r.Computed())
	}
	for src := 0; src < g.N(); src += 3 {
		p := r.For(src)
		dist, prev := g.PathLatencies(src)
		for v := 0; v < g.N(); v++ {
			if p.Dist[v] != dist[v] || p.Prev[v] != prev[v] {
				t.Fatalf("plane for %d diverges from PathLatencies at node %d: (%v,%d) vs (%v,%d)",
					src, v, p.Dist[v], p.Prev[v], dist[v], prev[v])
			}
		}
		if again := r.For(src); again != p {
			t.Fatalf("For(%d) recomputed instead of returning the published plane", src)
		}
	}
	if want := (g.N() + 2) / 3; r.Computed() != want {
		t.Fatalf("Computed() = %d, want %d (only requested sources)", r.Computed(), want)
	}
}

// TestRoutesConcurrentFor pins that concurrent first callers of the same
// source converge on one published plane (the CompareAndSwap race is
// benign) and that the race detector sees no unsynchronized access.
func TestRoutesConcurrentFor(t *testing.T) {
	g := WattsStrogatz(xrand.New(5, 2), 64, 3, 0.2, 0.1)
	r := NewRoutes(g)
	const workers = 8
	planes := make([]*RoutePlane, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for src := 0; src < g.N(); src++ {
				p := r.For(src)
				if src == 17 {
					planes[w] = p
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if planes[w] != planes[0] {
			t.Fatalf("worker %d saw a different published plane for source 17", w)
		}
	}
	if r.Computed() != g.N() {
		t.Fatalf("Computed() = %d after touching every source, want %d", r.Computed(), g.N())
	}
}

package topology

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// edgeSet collects the undirected edge list for comparisons.
func edgeSet(g *Graph) map[[2]int]float64 {
	out := map[[2]int]float64{}
	g.Edges(func(u, v int, lat float64) bool {
		out[[2]int{u, v}] = lat
		return true
	})
	return out
}

func TestCompleteShape(t *testing.T) {
	g := Complete(5, 0.25)
	if !g.IsComplete() || g.N() != 5 || g.NumEdges() != 10 || g.HopDiameter() != 1 {
		t.Fatalf("complete: n=%d edges=%d diam=%d", g.N(), g.NumEdges(), g.HopDiameter())
	}
	for i := 0; i < 5; i++ {
		if g.Degree(i) != 4 {
			t.Fatalf("degree(%d) = %d", i, g.Degree(i))
		}
	}
	if lat, ok := g.Link(1, 3); !ok || lat != 0.25 {
		t.Fatalf("Link(1,3) = %v, %v", lat, ok)
	}
	if _, ok := g.Link(2, 2); ok {
		t.Fatal("self-loop reported in complete graph")
	}
	count := 0
	g.Neighbors(2, func(j int, lat float64) bool {
		if j == 2 || lat != 0.25 {
			t.Fatalf("neighbor %d lat %v", j, lat)
		}
		count++
		return true
	})
	if count != 4 {
		t.Fatalf("neighbor count = %d", count)
	}
}

func TestRingShape(t *testing.T) {
	g := Ring(10, 2, 1)
	if g.NumEdges() != 20 || !g.Connected() {
		t.Fatalf("ring: edges=%d connected=%v", g.NumEdges(), g.Connected())
	}
	for i := 0; i < 10; i++ {
		if g.Degree(i) != 4 {
			t.Fatalf("degree(%d) = %d", i, g.Degree(i))
		}
	}
	// Ring(n, 1) diameter is floor(n/2).
	if d := Ring(10, 1, 1).HopDiameter(); d != 5 {
		t.Fatalf("ring k=1 diameter = %d, want 5", d)
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(9, 3, 1)
	if g.NumEdges() != 12 || !g.Connected() || g.HopDiameter() != 4 {
		t.Fatalf("3x3 grid: edges=%d connected=%v diam=%d", g.NumEdges(), g.Connected(), g.HopDiameter())
	}
	if g.Degree(4) != 4 || g.Degree(0) != 2 {
		t.Fatalf("grid degrees: center=%d corner=%d", g.Degree(4), g.Degree(0))
	}
	// Partial last row stays connected.
	if p := Grid(7, 3, 1); !p.Connected() || p.Degree(6) != 1 {
		t.Fatalf("partial grid: connected=%v deg(6)=%d", p.Connected(), p.Degree(6))
	}
}

func TestWattsStrogatz(t *testing.T) {
	n, k := 50, 2
	g := WattsStrogatz(xrand.New(7, 1), n, k, 0.2, 1)
	// Rewiring preserves the edge count.
	if g.NumEdges() != n*k {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), n*k)
	}
	// beta=0 is exactly the ring lattice.
	lattice := edgeSet(Ring(n, k, 1))
	if got := edgeSet(WattsStrogatz(xrand.New(7, 1), n, k, 0, 1)); len(got) != len(lattice) {
		t.Fatalf("beta=0 edge count %d != lattice %d", len(got), len(lattice))
	} else {
		for e := range lattice {
			if _, ok := got[e]; !ok {
				t.Fatalf("beta=0 lost lattice edge %v", e)
			}
		}
	}
	// Same seed, same graph; different seed, (almost surely) different.
	a := edgeSet(WattsStrogatz(xrand.New(3, 9), n, k, 0.5, 1))
	b := edgeSet(WattsStrogatz(xrand.New(3, 9), n, k, 0.5, 1))
	if len(a) != len(b) {
		t.Fatal("same seed produced different graphs")
	}
	for e := range a {
		if _, ok := b[e]; !ok {
			t.Fatalf("same seed produced different graphs at %v", e)
		}
	}
	c := edgeSet(WattsStrogatz(xrand.New(4, 9), n, k, 0.5, 1))
	same := 0
	for e := range a {
		if _, ok := c[e]; ok {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical rewirings")
	}
	// Rewiring collapses the lattice diameter.
	if dl, ds := Ring(100, 2, 1).HopDiameter(), WattsStrogatz(xrand.New(1, 1), 100, 2, 0.3, 1).HopDiameter(); ds >= dl {
		t.Fatalf("small-world diameter %d not below lattice %d", ds, dl)
	}
}

func TestBarabasiAlbert(t *testing.T) {
	n, m := 60, 2
	g := BarabasiAlbert(xrand.New(5, 5), n, m, 1)
	wantEdges := m*(m+1)/2 + (n-m-1)*m
	if g.NumEdges() != wantEdges || !g.Connected() {
		t.Fatalf("ba: edges=%d want %d connected=%v", g.NumEdges(), wantEdges, g.Connected())
	}
	// Preferential attachment produces hubs: the max degree clearly
	// exceeds the attachment count.
	maxDeg := 0
	for i := 0; i < n; i++ {
		if g.Degree(i) < m {
			t.Fatalf("degree(%d) = %d < m", i, g.Degree(i))
		}
		if g.Degree(i) > maxDeg {
			maxDeg = g.Degree(i)
		}
	}
	if maxDeg < 3*m {
		t.Fatalf("max degree %d shows no hub", maxDeg)
	}
}

func TestFromTable(t *testing.T) {
	g, err := FromTable(4, []Link{{0, 1, 0.1}, {1, 2, 0.2}, {2, 3, 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() || g.NumEdges() != 3 {
		t.Fatalf("table graph: connected=%v edges=%d", g.Connected(), g.NumEdges())
	}
	if lat, ok := g.Link(2, 1); !ok || lat != 0.2 {
		t.Fatalf("Link(2,1) = %v, %v", lat, ok)
	}
	for _, bad := range [][]Link{
		{{0, 4, 1}},            // out of range
		{{1, 1, 1}},            // self-loop
		{{0, 1, 0}},            // non-positive latency
		{{0, 1, 1}, {1, 0, 2}}, // duplicate (reversed)
	} {
		if _, err := FromTable(4, bad); err == nil {
			t.Fatalf("FromTable accepted %v", bad)
		}
	}
}

func TestParseTable(t *testing.T) {
	g, err := ParseTable([]byte(`{"n": 3, "links": [[0,1,0.5], [1,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if lat, _ := g.Link(0, 1); lat != 0.5 {
		t.Fatalf("lat(0,1) = %v", lat)
	}
	if lat, _ := g.Link(1, 2); lat != 1 {
		t.Fatalf("default lat(1,2) = %v", lat)
	}
	for _, bad := range []string{
		`{"n": 3, "links": [[0]]}`,
		`{"n": 3, "links": [[0,1,1,1]]}`,
		`{"n": 3, "links": [[0.5,1]]}`,
		`{"n": 3, "linksss": []}`,
	} {
		if _, err := ParseTable([]byte(bad)); err == nil {
			t.Fatalf("ParseTable accepted %s", bad)
		}
	}
}

func TestDisconnected(t *testing.T) {
	g, err := FromTable(4, []Link{{0, 1, 1}, {2, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Connected() || g.HopDiameter() != -1 {
		t.Fatalf("disconnected graph: connected=%v diam=%d", g.Connected(), g.HopDiameter())
	}
}

func TestPathLatencies(t *testing.T) {
	// 0 -1- 1 -1- 2 with a slow shortcut 0 -3- 2: Dijkstra must take the
	// two-hop path (cost 2) over the direct link (cost 3).
	g, err := FromTable(3, []Link{{0, 1, 1}, {1, 2, 1}, {0, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	dist, prev := g.PathLatencies(0)
	if dist[2] != 2 || prev[2] != 1 || prev[1] != 0 {
		t.Fatalf("dist=%v prev=%v", dist, prev)
	}
	// Unreachable nodes stay at -1.
	d, err := FromTable(3, []Link{{0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if dist, _ := d.PathLatencies(0); dist[2] != -1 {
		t.Fatalf("unreachable dist = %v", dist[2])
	}
}

func TestDelayModels(t *testing.T) {
	rng := xrand.New(11, 3)
	base := 0.4
	if d := (DelayModel{}).Sample(base, rng); d != base {
		t.Fatalf("fixed sample %v != base", d)
	}
	uni := DelayModel{Kind: DelayUniform, Jitter: 0.25}
	sum := 0.0
	for i := 0; i < 4000; i++ {
		d := uni.Sample(base, rng)
		if d < base*0.75 || d > base*1.25 {
			t.Fatalf("uniform sample %v outside [%v, %v]", d, base*0.75, base*1.25)
		}
		sum += d
	}
	if mean := sum / 4000; math.Abs(mean-base) > 0.01 {
		t.Fatalf("uniform mean %v far from base %v", mean, base)
	}
	lt := DelayModel{Kind: DelayLongTail}
	sum, maxD := 0.0, 0.0
	for i := 0; i < 20000; i++ {
		d := lt.Sample(base, rng)
		if d < base*0.5 || d > base*(0.5+longTailCap/4+1) {
			t.Fatalf("long-tail sample %v out of range", d)
		}
		sum += d
		if d > maxD {
			maxD = d
		}
	}
	// Mean-preserving (within sampling noise of the truncated Pareto)
	// and actually long-tailed.
	if mean := sum / 20000; math.Abs(mean-base) > 0.05*base {
		t.Fatalf("long-tail mean %v far from base %v", mean, base)
	}
	if maxD < 2*base {
		t.Fatalf("long-tail max %v shows no tail", maxD)
	}
}

func TestParseDelayKind(t *testing.T) {
	for name, want := range map[string]DelayKind{
		"": DelayFixed, "fixed": DelayFixed, "uniform": DelayUniform, "longtail": DelayLongTail,
	} {
		k, err := ParseDelayKind(name)
		if err != nil || k != want {
			t.Fatalf("ParseDelayKind(%q) = %v, %v", name, k, err)
		}
		if name != "" && k.String() != name {
			t.Fatalf("String(%v) = %q", k, k.String())
		}
	}
	if _, err := ParseDelayKind("gaussian"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"ring k too big": func() { Ring(4, 2, 1) },
		"ring k zero":    func() { Ring(4, 0, 1) },
		"grid cols zero": func() { Grid(4, 0, 1) },
		"ws bad beta":    func() { WattsStrogatz(xrand.New(1, 1), 10, 2, 1.5, 1) },
		"ba m too big":   func() { BarabasiAlbert(xrand.New(1, 1), 3, 3, 1) },
		"non-positive n": func() { Complete(0, 1) },
		"zero latency":   func() { Complete(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

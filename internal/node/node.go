// Package node provides the node roster, input assignments and
// consensus-property checkers shared by every agreement protocol in this
// repository.
//
// The paper's Section 1.1 defines correct nodes, crash failures and
// Byzantine failures, plus the three consensus properties — agreement,
// termination, validity — and their "with high probability" weakenings.
// Protocol packages produce an Outcome; the checkers here turn outcomes
// into per-property verdicts that the experiment harness aggregates into
// empirical success rates (the w.h.p. claims become measured frequencies).
package node

import (
	"fmt"

	"repro/internal/appendmem"
	"repro/internal/xrand"
)

// Role describes a node's failure mode for a run.
type Role int

// Roles. Crash nodes behave correctly until their crash time.
const (
	Honest Role = iota
	Byzantine
	Crash
)

func (r Role) String() string {
	switch r {
	case Honest:
		return "honest"
	case Byzantine:
		return "byzantine"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Roster assigns roles to the n nodes of a run. By convention the last t
// nodes are Byzantine (the adversary corrupts a fixed set; protocols never
// read the roster, only adversaries and checkers do).
type Roster struct {
	roles []Role
}

// NewRoster returns a roster of n nodes whose last t are Byzantine.
// It panics unless 0 <= t <= n and n > 0.
func NewRoster(n, t int) Roster {
	if n <= 0 || t < 0 || t > n {
		panic(fmt.Sprintf("node: invalid roster n=%d t=%d", n, t))
	}
	roles := make([]Role, n)
	for i := n - t; i < n; i++ {
		roles[i] = Byzantine
	}
	return Roster{roles: roles}
}

// WithCrashes marks the first c honest nodes as crash-faulty and returns
// the modified roster. It panics when fewer than c honest nodes exist.
func (r Roster) WithCrashes(c int) Roster {
	roles := append([]Role(nil), r.roles...)
	for i := 0; i < len(roles) && c > 0; i++ {
		if roles[i] == Honest {
			roles[i] = Crash
			c--
		}
	}
	if c > 0 {
		panic("node: not enough honest nodes to crash")
	}
	return Roster{roles: roles}
}

// N returns the total number of nodes.
func (r Roster) N() int { return len(r.roles) }

// T returns the number of Byzantine nodes.
func (r Roster) T() int {
	t := 0
	for _, role := range r.roles {
		if role == Byzantine {
			t++
		}
	}
	return t
}

// Role returns the role of node id.
func (r Roster) Role(id appendmem.NodeID) Role { return r.roles[id] }

// IsByzantine reports whether node id is Byzantine.
func (r Roster) IsByzantine(id appendmem.NodeID) bool { return r.roles[id] == Byzantine }

// IsCorrect reports whether node id is correct (honest, non-crash).
func (r Roster) IsCorrect(id appendmem.NodeID) bool { return r.roles[id] == Honest }

// Correct returns the ids of all correct nodes, ascending.
func (r Roster) Correct() []appendmem.NodeID {
	var ids []appendmem.NodeID
	for i, role := range r.roles {
		if role == Honest {
			ids = append(ids, appendmem.NodeID(i))
		}
	}
	return ids
}

// Byzantines returns the ids of all Byzantine nodes, ascending.
func (r Roster) Byzantines() []appendmem.NodeID {
	var ids []appendmem.NodeID
	for i, role := range r.roles {
		if role == Byzantine {
			ids = append(ids, appendmem.NodeID(i))
		}
	}
	return ids
}

// Inputs holds the per-node binary input values (+1 / -1 as in Section 5,
// or 0/1 mapped onto ±1).
type Inputs []int64

// AllSame returns inputs where every node holds v.
func AllSame(n int, v int64) Inputs {
	in := make(Inputs, n)
	for i := range in {
		in[i] = v
	}
	return in
}

// SplitInputs returns inputs where the first ones nodes hold +1 and the
// rest hold -1.
func SplitInputs(n, ones int) Inputs {
	in := make(Inputs, n)
	for i := range in {
		if i < ones {
			in[i] = +1
		} else {
			in[i] = -1
		}
	}
	return in
}

// RandomInputs draws each input uniformly from {+1, -1}.
func RandomInputs(rng *xrand.PCG, n int) Inputs {
	in := make(Inputs, n)
	for i := range in {
		if rng.Bool() {
			in[i] = +1
		} else {
			in[i] = -1
		}
	}
	return in
}

// Outcome records what each node decided in one run.
type Outcome struct {
	Decided  []bool
	Decision []int64
}

// NewOutcome returns an empty outcome for n nodes.
func NewOutcome(n int) *Outcome {
	return &Outcome{Decided: make([]bool, n), Decision: make([]int64, n)}
}

// Decide records node id's decision. Double decision with a different
// value panics — a protocol bug, not a modelled behaviour.
func (o *Outcome) Decide(id appendmem.NodeID, v int64) {
	if o.Decided[id] && o.Decision[id] != v {
		panic(fmt.Sprintf("node: %d decided twice with different values", id))
	}
	o.Decided[id] = true
	o.Decision[id] = v
}

// Verdict is the evaluation of one run against the consensus properties,
// restricted to correct nodes as the definitions require.
type Verdict struct {
	Termination bool // every correct node decided
	Agreement   bool // all correct deciders decided the same value
	Validity    bool // if all correct inputs equal, the decision equals them
}

// OK reports whether all three properties hold.
func (v Verdict) OK() bool { return v.Termination && v.Agreement && v.Validity }

// Evaluate checks the outcome of one run against the consensus properties.
// Validity is vacuously true when correct inputs disagree (the paper's
// all-same-validity).
func Evaluate(r Roster, in Inputs, o *Outcome) Verdict {
	correct := r.Correct()
	v := Verdict{Termination: true, Agreement: true, Validity: true}

	for _, id := range correct {
		if !o.Decided[id] {
			v.Termination = false
		}
	}

	var first int64
	have := false
	for _, id := range correct {
		if !o.Decided[id] {
			continue
		}
		if !have {
			first, have = o.Decision[id], true
			continue
		}
		if o.Decision[id] != first {
			v.Agreement = false
		}
	}

	allSame := true
	var common int64
	for i, id := range correct {
		if i == 0 {
			common = in[id]
			continue
		}
		if in[id] != common {
			allSame = false
			break
		}
	}
	if allSame && len(correct) > 0 {
		for _, id := range correct {
			if o.Decided[id] && o.Decision[id] != common {
				v.Validity = false
			}
		}
		// An undecided correct node also violates validity's "must agree
		// on b at the end" when termination fails; we keep the properties
		// orthogonal and only fault explicit wrong decisions here.
	}
	return v
}

// Sign returns +1 for positive sums, -1 for negative, and -1 for zero —
// protocols choose odd k so that zero never occurs, but a deterministic
// convention keeps runs well-defined regardless.
func Sign(sum int64) int64 {
	if sum > 0 {
		return +1
	}
	return -1
}

// SumSign returns Sign of the sum of vals.
func SumSign(vals []int64) int64 {
	var sum int64
	for _, v := range vals {
		sum += v
	}
	return Sign(sum)
}

package node

import (
	"testing"

	"repro/internal/appendmem"
	"repro/internal/xrand"
)

func TestRosterRoles(t *testing.T) {
	r := NewRoster(5, 2)
	if r.N() != 5 || r.T() != 2 {
		t.Fatalf("N=%d T=%d", r.N(), r.T())
	}
	wantByz := []appendmem.NodeID{3, 4}
	byz := r.Byzantines()
	if len(byz) != 2 || byz[0] != wantByz[0] || byz[1] != wantByz[1] {
		t.Fatalf("byzantines = %v", byz)
	}
	correct := r.Correct()
	if len(correct) != 3 {
		t.Fatalf("correct = %v", correct)
	}
	for _, id := range correct {
		if r.IsByzantine(id) || !r.IsCorrect(id) {
			t.Fatal("role confusion")
		}
	}
}

func TestRosterPanics(t *testing.T) {
	for _, tc := range [][2]int{{0, 0}, {3, 4}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRoster(%d,%d) did not panic", tc[0], tc[1])
				}
			}()
			NewRoster(tc[0], tc[1])
		}()
	}
}

func TestWithCrashes(t *testing.T) {
	r := NewRoster(5, 1).WithCrashes(2)
	if r.Role(0) != Crash || r.Role(1) != Crash {
		t.Fatal("first honest nodes not crashed")
	}
	if r.Role(2) != Honest || r.Role(4) != Byzantine {
		t.Fatal("other roles disturbed")
	}
	if len(r.Correct()) != 2 {
		t.Fatalf("correct = %v", r.Correct())
	}
	// Original roster unchanged (value semantics).
	orig := NewRoster(5, 1)
	_ = orig.WithCrashes(1)
	if orig.Role(0) != Honest {
		t.Fatal("WithCrashes mutated the receiver")
	}
}

func TestWithCrashesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-crash did not panic")
		}
	}()
	NewRoster(3, 2).WithCrashes(2)
}

func TestInputs(t *testing.T) {
	same := AllSame(4, -1)
	for _, v := range same {
		if v != -1 {
			t.Fatal("AllSame wrong")
		}
	}
	split := SplitInputs(5, 2)
	if split[0] != 1 || split[1] != 1 || split[2] != -1 {
		t.Fatalf("split = %v", split)
	}
	rnd := RandomInputs(xrand.New(1, 1), 1000)
	pos := 0
	for _, v := range rnd {
		if v != 1 && v != -1 {
			t.Fatal("random input not ±1")
		}
		if v == 1 {
			pos++
		}
	}
	if pos < 400 || pos > 600 {
		t.Fatalf("random inputs biased: %d/1000 positive", pos)
	}
}

func TestOutcomeDoubleDecide(t *testing.T) {
	o := NewOutcome(2)
	o.Decide(0, 1)
	o.Decide(0, 1) // same value: fine
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting double decide did not panic")
		}
	}()
	o.Decide(0, -1)
}

func TestEvaluateAllGood(t *testing.T) {
	r := NewRoster(4, 1)
	in := AllSame(4, 1)
	o := NewOutcome(4)
	for _, id := range r.Correct() {
		o.Decide(id, 1)
	}
	v := Evaluate(r, in, o)
	if !v.OK() {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestEvaluateTerminationFailure(t *testing.T) {
	r := NewRoster(3, 0)
	o := NewOutcome(3)
	o.Decide(0, 1)
	o.Decide(1, 1)
	v := Evaluate(r, AllSame(3, 1), o)
	if v.Termination {
		t.Fatal("termination should fail")
	}
	if !v.Agreement {
		t.Fatal("agreement among deciders should hold")
	}
}

func TestEvaluateAgreementFailure(t *testing.T) {
	r := NewRoster(3, 0)
	o := NewOutcome(3)
	o.Decide(0, 1)
	o.Decide(1, -1)
	o.Decide(2, 1)
	v := Evaluate(r, SplitInputs(3, 2), o)
	if v.Agreement {
		t.Fatal("agreement should fail")
	}
	if !v.Validity {
		t.Fatal("validity vacuous for split inputs")
	}
}

func TestEvaluateValidityFailure(t *testing.T) {
	r := NewRoster(4, 1)
	in := AllSame(4, 1)
	o := NewOutcome(4)
	for _, id := range r.Correct() {
		o.Decide(id, -1) // agreed, terminated, but wrong value
	}
	v := Evaluate(r, in, o)
	if !v.Termination || !v.Agreement {
		t.Fatal("termination/agreement should hold")
	}
	if v.Validity {
		t.Fatal("validity should fail")
	}
}

func TestEvaluateByzantineDecisionsIgnored(t *testing.T) {
	r := NewRoster(3, 1)
	in := AllSame(3, 1)
	o := NewOutcome(3)
	o.Decide(0, 1)
	o.Decide(1, 1)
	o.Decide(2, -1) // Byzantine node's "decision" is irrelevant
	if v := Evaluate(r, in, o); !v.OK() {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestEvaluateCrashedExcluded(t *testing.T) {
	r := NewRoster(3, 0).WithCrashes(1)
	in := AllSame(3, 1)
	o := NewOutcome(3)
	o.Decide(1, 1)
	o.Decide(2, 1)
	if v := Evaluate(r, in, o); !v.OK() {
		t.Fatalf("crashed node counted as correct: %+v", v)
	}
}

func TestSign(t *testing.T) {
	if Sign(5) != 1 || Sign(-5) != -1 || Sign(0) != -1 {
		t.Fatal("Sign convention broken")
	}
	if SumSign([]int64{1, 1, -1}) != 1 {
		t.Fatal("SumSign wrong")
	}
	if SumSign(nil) != -1 {
		t.Fatal("SumSign(nil) convention broken")
	}
}

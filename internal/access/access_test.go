package access

import (
	"math"
	"testing"

	"repro/internal/appendmem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestRoundClockOrdering(t *testing.T) {
	rng := xrand.New(1, 1)
	rc := NewRoundClock(rng, 8, 1.0)
	for r := 1; r <= 5; r++ {
		start := rc.RoundStart(r)
		next := rc.RoundStart(r + 1)
		for i := 0; i < 8; i++ {
			id := appendmem.NodeID(i)
			at := rc.AppendTime(id, r)
			rt := rc.ReadTime(id, r)
			if at < start || at >= next {
				t.Fatalf("append time %v outside round %d", at, r)
			}
			if rt < start || rt >= next {
				t.Fatalf("read time %v outside round %d", rt, r)
			}
			// Every correct append of round r precedes every read of round r.
			for j := 0; j < 8; j++ {
				if at >= rc.ReadTime(appendmem.NodeID(j), r) {
					t.Fatalf("round-%d append of %d not before read of %d", r, i, j)
				}
			}
		}
	}
}

func TestRoundClockReadsDiffer(t *testing.T) {
	// The residual asynchrony must exist: not all reads coincide.
	rng := xrand.New(2, 2)
	rc := NewRoundClock(rng, 8, 1.0)
	distinct := map[sim.Time]bool{}
	for i := 0; i < 8; i++ {
		distinct[rc.ReadTime(appendmem.NodeID(i), 1)] = true
	}
	if len(distinct) < 2 {
		t.Fatal("all nodes read at the same instant; Byzantine split impossible")
	}
}

func TestReadDeadline(t *testing.T) {
	rng := xrand.New(3, 3)
	rc := NewRoundClock(rng, 5, 2.0)
	dl := rc.ReadDeadline(1)
	for i := 0; i < 5; i++ {
		if rc.ReadTime(appendmem.NodeID(i), 1) > dl {
			t.Fatal("deadline before some read")
		}
	}
}

func TestRoundClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad params did not panic")
		}
	}()
	NewRoundClock(xrand.New(1, 1), 0, 1)
}

func TestPoissonAuthorityRate(t *testing.T) {
	const (
		n       = 10
		lambda  = 0.5
		delta   = 1.0
		horizon = 2000.0
	)
	s := sim.New()
	rng := xrand.New(4, 4)
	counts := make([]int, n)
	a := NewPoissonAuthority(s, rng, n, lambda, delta, func(g Grant) {
		counts[g.Node]++
	})
	a.Start()
	s.RunUntil(sim.Time(horizon))
	a.Stop()

	perNode := make([]float64, n)
	for i, c := range counts {
		perNode[i] = float64(c)
	}
	sum := stats.Summarize(perNode)
	want := lambda * horizon / delta
	if math.Abs(sum.Mean-want) > 0.05*want {
		t.Fatalf("per-node grant mean = %v, want about %v", sum.Mean, want)
	}
	// Poisson: variance ≈ mean across nodes.
	if sum.Variance > 3*want || sum.Variance < want/3 {
		t.Fatalf("per-node variance = %v, want near %v", sum.Variance, want)
	}
}

func TestPoissonAuthoritySeqTotalOrder(t *testing.T) {
	s := sim.New()
	rng := xrand.New(5, 5)
	var grants []Grant
	a := NewPoissonAuthority(s, rng, 3, 1, 1, func(g Grant) { grants = append(grants, g) })
	a.Start()
	s.RunUntil(100)
	a.Stop()
	if len(grants) < 100 {
		t.Fatalf("only %d grants in 100Δ at aggregate rate 3", len(grants))
	}
	for i, g := range grants {
		if g.Seq != i {
			t.Fatalf("grant %d has seq %d", i, g.Seq)
		}
		if i > 0 && g.At < grants[i-1].At {
			t.Fatal("grant times not monotone")
		}
	}
	if a.Issued() != len(grants) {
		t.Fatalf("Issued() = %d, want %d", a.Issued(), len(grants))
	}
}

func TestPoissonAuthorityStop(t *testing.T) {
	s := sim.New()
	rng := xrand.New(6, 6)
	count := 0
	var a *PoissonAuthority
	a = NewPoissonAuthority(s, rng, 2, 1, 1, func(Grant) {
		count++
		if count == 5 {
			a.Stop()
		}
	})
	a.Start()
	s.Run() // must terminate because Stop halts rescheduling
	if count != 5 {
		t.Fatalf("grants after Stop: count = %d", count)
	}
}

func TestPoissonAuthorityDeterministic(t *testing.T) {
	run := func() []Grant {
		s := sim.New()
		rng := xrand.New(7, 7)
		var grants []Grant
		a := NewPoissonAuthority(s, rng, 4, 2, 1, func(g Grant) { grants = append(grants, g) })
		a.Start()
		s.RunUntil(50)
		a.Stop()
		return grants
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different grant counts for same seed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grant %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPoissonInterArrivalExponential(t *testing.T) {
	s := sim.New()
	rng := xrand.New(8, 8)
	var times []float64
	a := NewPoissonAuthority(s, rng, 5, 1, 1, func(g Grant) { times = append(times, float64(g.At)) })
	a.Start()
	s.RunUntil(4000)
	a.Stop()
	gaps := make([]float64, len(times)-1)
	for i := 1; i < len(times); i++ {
		gaps[i-1] = times[i] - times[i-1]
	}
	sum := stats.Summarize(gaps)
	want := 1.0 / 5.0 // merged rate nλ/Δ = 5
	if math.Abs(sum.Mean-want) > 0.05*want {
		t.Fatalf("mean gap = %v, want %v", sum.Mean, want)
	}
	// Exponential: stddev ≈ mean.
	if math.Abs(sum.Stddev()-want) > 0.15*want {
		t.Fatalf("gap stddev = %v, want about %v", sum.Stddev(), want)
	}
}

func TestRoundRobinAuthorityCadence(t *testing.T) {
	s := sim.New()
	var grants []Grant
	a := NewRoundRobinAuthority(s, 4, 0.5, 1.0, func(g Grant) { grants = append(grants, g) })
	a.Start()
	s.RunUntil(20)
	a.Stop()
	// gap = Δ/(nλ) = 0.5; expect ~40 grants.
	if len(grants) < 39 || len(grants) > 41 {
		t.Fatalf("grants = %d, want about 40", len(grants))
	}
	for i, g := range grants {
		if int(g.Node) != i%4 {
			t.Fatalf("grant %d to node %d, want %d", i, g.Node, i%4)
		}
		if g.Seq != i {
			t.Fatalf("seq %d at %d", g.Seq, i)
		}
	}
	// Perfectly even spacing.
	for i := 1; i < len(grants); i++ {
		gap := grants[i].At - grants[i-1].At
		if gap < 0.499 || gap > 0.501 {
			t.Fatalf("uneven gap %v", gap)
		}
	}
	if a.Issued() != len(grants) {
		t.Fatal("Issued mismatch")
	}
}

func TestRoundRobinStop(t *testing.T) {
	s := sim.New()
	count := 0
	var a *RoundRobinAuthority
	a = NewRoundRobinAuthority(s, 2, 1, 1, func(Grant) {
		count++
		if count == 3 {
			a.Stop()
		}
	})
	a.Start()
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d after Stop", count)
	}
}

func TestRoundRobinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad params did not panic")
		}
	}()
	NewRoundRobinAuthority(sim.New(), 0, 1, 1, nil)
}

func TestWeightedPoissonAuthorityShares(t *testing.T) {
	s := sim.New()
	rng := xrand.New(13, 13)
	rates := []float64{0.2, 0.8, 1.0} // total 2.0 per Δ
	counts := make([]int, 3)
	a := NewWeightedPoissonAuthority(s, rng, rates, 1.0, func(g Grant) { counts[g.Node]++ })
	a.Start()
	s.RunUntil(2000)
	a.Stop()
	total := counts[0] + counts[1] + counts[2]
	if total < 3800 || total > 4200 {
		t.Fatalf("total grants = %d, want about 4000", total)
	}
	for i, r := range rates {
		want := r / 2.0
		got := float64(counts[i]) / float64(total)
		if got < want-0.03 || got > want+0.03 {
			t.Fatalf("node %d share = %v, want %v", i, got, want)
		}
	}
}

func TestWeightedPoissonAuthorityPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewWeightedPoissonAuthority(sim.New(), xrand.New(1, 1), nil, 1, nil) },
		func() { NewWeightedPoissonAuthority(sim.New(), xrand.New(1, 1), []float64{1, 0}, 1, nil) },
		func() { NewWeightedPoissonAuthority(sim.New(), xrand.New(1, 1), []float64{1}, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Package access implements the memory-access disciplines of the paper:
//
//   - RoundClock: the synchronous setting (§1.1, §3), where every interval
//     between two local operations of a node is bounded by Δ. A round is one
//     communication step with the memory — at most one append and one read
//     per node. Nodes are *not* perfectly aligned: each node carries a fixed
//     sub-Δ jitter on its append and read instants. That residual asynchrony
//     is exactly what the Byzantine lower-bound strategy of Section 3.1
//     exploits (an append placed between two nodes' reads is seen by one
//     node this round and by the other only next round).
//
//   - PoissonAuthority: the randomized memory access of Section 5. Append
//     access requires a token handed out by an authority; each node's tokens
//     arrive as an independent Poisson process with rate λ per Δ, so the
//     aggregate token stream is Poisson with rate nλ per Δ. Reads are free
//     at any time. This is the paper's clean abstraction of proof-of-work.
//
// The implementation realizes the n independent processes as one merged
// exponential-clock process (rate nλ/Δ) whose grants are assigned to
// uniformly random nodes — a standard, exactly equivalent construction that
// additionally yields the authority's total arrival order used by the
// timestamp baseline (§5.1).
package access

import (
	"repro/internal/appendmem"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// RoundClock fixes the per-node operation instants of the synchronous
// model. Round r (1-based) occupies virtual time [(r-1)·Δ, r·Δ).
type RoundClock struct {
	Delta float64
	// appendJitter and readJitter are per-node fractions in [0,1) fixed at
	// construction; they encode the bounded asynchrony within a round.
	appendJitter []float64
	readJitter   []float64
}

// Jitter windows as fractions of Δ. Appends happen early in the round,
// reads late; the gap guarantees every correct round-r append is seen by
// every correct round-r read, while leaving room for a Byzantine append to
// land between two different nodes' reads.
const (
	appendWindow = 0.10 // appends occur in [0, 0.10)·Δ after round start
	readStart    = 0.80 // reads occur in [0.80, 0.95)·Δ after round start
	readWindow   = 0.15
)

// NewRoundClock draws fixed per-node jitters from rng and returns the clock
// for n nodes with synchrony bound delta. It panics when n <= 0 or
// delta <= 0.
func NewRoundClock(rng *xrand.PCG, n int, delta float64) *RoundClock {
	if n <= 0 || delta <= 0 {
		panic("access: invalid RoundClock parameters")
	}
	rc := &RoundClock{
		Delta:        delta,
		appendJitter: make([]float64, n),
		readJitter:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		rc.appendJitter[i] = rng.Float64()
		rc.readJitter[i] = rng.Float64()
	}
	return rc
}

// NumNodes returns the number of nodes the clock was built for.
func (rc *RoundClock) NumNodes() int { return len(rc.appendJitter) }

// RoundStart returns the start time of 1-based round r.
func (rc *RoundClock) RoundStart(r int) sim.Time {
	return sim.Time(float64(r-1) * rc.Delta)
}

// AppendTime returns when node id performs its round-r append.
func (rc *RoundClock) AppendTime(id appendmem.NodeID, r int) sim.Time {
	return rc.RoundStart(r) + sim.Time(appendWindow*rc.appendJitter[id]*rc.Delta)
}

// ReadTime returns when node id performs its round-r read. All correct
// round-r appends precede all round-r reads, but different nodes read at
// different instants — the crack a Byzantine append can slip into.
func (rc *RoundClock) ReadTime(id appendmem.NodeID, r int) sim.Time {
	return rc.RoundStart(r) + sim.Time((readStart+readWindow*rc.readJitter[id])*rc.Delta)
}

// ReadDeadline returns the latest read instant of round r across all nodes;
// an append after it is invisible in round r to everyone.
func (rc *RoundClock) ReadDeadline(r int) sim.Time {
	latest := sim.Time(0)
	for i := range rc.readJitter {
		if t := rc.ReadTime(appendmem.NodeID(i), r); t > latest {
			latest = t
		}
	}
	return latest
}

// Grant is one append-permission token.
type Grant struct {
	Node appendmem.NodeID
	At   sim.Time
	Seq  int // position in the authority's total arrival order
}

// PoissonAuthority hands out append tokens at Poisson-process instants.
type PoissonAuthority struct {
	s       *sim.Sim
	rng     *xrand.PCG
	n       int
	rate    float64   // merged rate: sum of per-node rates per unit time
	weights []float64 // per-node rates; nil means uniform
	seq     int
	handle  func(Grant)
	active  bool
	nextAt  sim.Time
	tick    func() // fire bound once, so scheduling a grant allocates nothing
}

// NewPoissonAuthority creates an authority for n nodes where each node's
// tokens arrive with rate lambda per delta time units. handle is invoked at
// each grant instant, inside the simulator. Call Start to begin issuing.
func NewPoissonAuthority(s *sim.Sim, rng *xrand.PCG, n int, lambda, delta float64, handle func(Grant)) *PoissonAuthority {
	if n <= 0 || lambda <= 0 || delta <= 0 {
		panic("access: invalid PoissonAuthority parameters")
	}
	return &PoissonAuthority{s: s, rng: rng, n: n, rate: float64(n) * lambda / delta, handle: handle}
}

// Start schedules the first grant. Grants continue until Stop (or until the
// simulator stops draining events).
func (a *PoissonAuthority) Start() {
	if a.active {
		return
	}
	a.active = true
	a.scheduleNext()
}

// Stop ceases issuing grants after any already-scheduled one fires.
func (a *PoissonAuthority) Stop() { a.active = false }

// Issued returns the number of grants handed out so far.
func (a *PoissonAuthority) Issued() int { return a.seq }

// NextAt returns the instant of the pending grant — the piece of authority
// state a run checkpoint must capture, since the inter-arrival draw behind
// it was already consumed from the rng.
func (a *PoissonAuthority) NextAt() sim.Time { return a.nextAt }

// ResumeAt restarts a fresh authority mid-stream: grant numbering
// continues from seq and the pending grant fires at absolute time at. The
// rng must be positioned exactly as at the checkpoint (the at draw is not
// re-consumed).
func (a *PoissonAuthority) ResumeAt(seq int, at sim.Time) {
	if a.active {
		return
	}
	a.active = true
	a.seq = seq
	a.nextAt = at
	if a.tick == nil {
		a.tick = a.fire
	}
	a.s.At(at, a.tick)
}

func (a *PoissonAuthority) scheduleNext() {
	if a.tick == nil {
		a.tick = a.fire
	}
	wait := sim.Time(a.rng.Exp(a.rate))
	a.nextAt = a.s.Now() + wait
	a.s.After(wait, a.tick)
}

func (a *PoissonAuthority) fire() {
	if !a.active {
		return
	}
	node := appendmem.NodeID(a.rng.Intn(a.n))
	if a.weights != nil {
		node = appendmem.NodeID(a.rng.Pick(a.weights))
	}
	g := Grant{
		Node: node,
		At:   a.s.Now(),
		Seq:  a.seq,
	}
	a.seq++
	a.handle(g)
	a.scheduleNext()
}

// RoundRobinAuthority is the burst-free counterpart of PoissonAuthority:
// grants arrive at a fixed cadence of Δ/(n·λ) and cycle deterministically
// through the nodes, so every node receives exactly λ grants per Δ with
// zero variance. Same aggregate rate as the Poisson authority, none of
// its burstiness — the ablation that separates which of the paper's
// Section 5 effects need Poisson clumping (Lemma 5.5's private bursts)
// from those that only need the rate (Theorem 5.4's staleness forks).
type RoundRobinAuthority struct {
	s      *sim.Sim
	n      int
	gap    sim.Time
	seq    int
	handle func(Grant)
	active bool
	nextAt sim.Time
	tick   func() // fire bound once, so scheduling a grant allocates nothing
}

// NewRoundRobinAuthority creates the deterministic authority with the
// same (n, lambda, delta) semantics as NewPoissonAuthority.
func NewRoundRobinAuthority(s *sim.Sim, n int, lambda, delta float64, handle func(Grant)) *RoundRobinAuthority {
	if n <= 0 || lambda <= 0 || delta <= 0 {
		panic("access: invalid RoundRobinAuthority parameters")
	}
	return &RoundRobinAuthority{s: s, n: n, gap: sim.Time(delta / (lambda * float64(n))), handle: handle}
}

// Start schedules the first grant.
func (a *RoundRobinAuthority) Start() {
	if a.active {
		return
	}
	a.active = true
	a.scheduleNext()
}

// Stop ceases issuing grants.
func (a *RoundRobinAuthority) Stop() { a.active = false }

// Issued returns the number of grants handed out so far.
func (a *RoundRobinAuthority) Issued() int { return a.seq }

// NextAt returns the instant of the pending grant (see PoissonAuthority).
func (a *RoundRobinAuthority) NextAt() sim.Time { return a.nextAt }

// ResumeAt restarts a fresh authority mid-stream (see PoissonAuthority).
func (a *RoundRobinAuthority) ResumeAt(seq int, at sim.Time) {
	if a.active {
		return
	}
	a.active = true
	a.seq = seq
	a.nextAt = at
	if a.tick == nil {
		a.tick = a.fire
	}
	a.s.At(at, a.tick)
}

func (a *RoundRobinAuthority) scheduleNext() {
	if a.tick == nil {
		a.tick = a.fire
	}
	a.nextAt = a.s.Now() + a.gap
	a.s.After(a.gap, a.tick)
}

func (a *RoundRobinAuthority) fire() {
	if !a.active {
		return
	}
	g := Grant{
		Node: appendmem.NodeID(a.seq % a.n),
		At:   a.s.Now(),
		Seq:  a.seq,
	}
	a.seq++
	a.handle(g)
	a.scheduleNext()
}

// NewWeightedPoissonAuthority generalizes NewPoissonAuthority to
// heterogeneous access rates: rates[i] is node i's token rate per delta
// time units (its "hashing power" in the proof-of-work reading). The
// merged process has rate sum(rates)/delta and each grant goes to node i
// with probability rates[i]/sum — the standard decomposition of
// independent Poisson processes. With equal rates this is exactly
// NewPoissonAuthority.
func NewWeightedPoissonAuthority(s *sim.Sim, rng *xrand.PCG, rates []float64, delta float64, handle func(Grant)) *PoissonAuthority {
	if len(rates) == 0 || delta <= 0 {
		panic("access: invalid weighted authority parameters")
	}
	total := 0.0
	for _, r := range rates {
		if r <= 0 {
			panic("access: non-positive per-node rate")
		}
		total += r
	}
	a := &PoissonAuthority{
		s: s, rng: rng, n: len(rates),
		rate:    total / delta,
		weights: append([]float64(nil), rates...),
		handle:  handle,
	}
	return a
}

package access

import (
	"fmt"
	"testing"

	"repro/internal/appendmem"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/xrand"
)

func TestVisibilityAuthorSeesOwnAppendImmediately(t *testing.T) {
	s := sim.New()
	mem := appendmem.New(4)
	g := topology.Ring(4, 1, 0.5)
	v := NewVisibility(s, xrand.New(1, 1), g, topology.DelayModel{}, mem)
	mem.Writer(2).MustAppend(7, 0, nil)
	v.Sync()
	if v.Prefix(2) != 1 {
		t.Fatalf("author prefix = %d", v.Prefix(2))
	}
	if v.Prefix(0) != 0 {
		t.Fatalf("remote prefix before propagation = %d", v.Prefix(0))
	}
}

func TestVisibilityPropagatesAtLinkLatency(t *testing.T) {
	// k=1 ring of 6 with fixed 0.5 latency: node 3 is three hops from
	// node 0, so it sees the append at exactly 1.5.
	s := sim.New()
	mem := appendmem.New(6)
	g := topology.Ring(6, 1, 0.5)
	v := NewVisibility(s, xrand.New(1, 1), g, topology.DelayModel{}, mem)
	mem.Writer(0).MustAppend(1, 0, nil)
	v.Sync()
	var sawAt sim.Time
	var probe func()
	probe = func() {
		if v.Prefix(3) == 1 && sawAt == 0 {
			sawAt = s.Now()
		}
		if v.Prefix(3) == 0 {
			s.After(0.01, probe)
		}
	}
	s.After(0.01, probe)
	s.Run()
	if sawAt < 1.5 || sawAt > 1.52 {
		t.Fatalf("node 3 saw the append at %v, want ~1.5", sawAt)
	}
	// Full propagation accounts 5 non-author arrivals at the ring's
	// graph distances: 0.5, 0.5, 1.0, 1.0, 1.5 → mean 0.9.
	if v.Deliveries() != 5 || v.MeanLag() < 0.89 || v.MeanLag() > 0.91 {
		t.Fatalf("deliveries=%d meanLag=%v", v.Deliveries(), v.MeanLag())
	}
}

func TestVisibilityViewsArePrefixes(t *testing.T) {
	// Appends from opposite ends of a long path arrive out of order in
	// the middle; views must still be memory prefixes, holding back a
	// later-arrived message until the gap before it fills.
	s := sim.New()
	mem := appendmem.New(8)
	g := topology.Ring(8, 1, 1)
	v := NewVisibility(s, xrand.New(3, 3), g, topology.DelayModel{}, mem)
	mem.Writer(0).MustAppend(10, 0, nil) // message 0: three hops from node 5
	mem.Writer(4).MustAppend(11, 0, nil) // message 1: one hop from node 5
	v.Sync()
	checked := false
	s.After(1.5, func() {
		// Message 1 has arrived at node 5, message 0 has not: the view
		// must stay empty rather than expose an out-of-order suffix.
		view := v.ViewFor(5)
		if view.Size() != 0 {
			t.Errorf("view size = %d before prefix complete", view.Size())
		}
		checked = true
	})
	s.Run()
	if !checked {
		t.Fatal("probe never ran")
	}
	if got := v.ViewFor(5).Size(); got != 2 {
		t.Fatalf("final view size = %d", got)
	}
	// Sanity: everyone converges to the full memory.
	for id := 0; id < 8; id++ {
		if v.Prefix(appendmem.NodeID(id)) != 2 {
			t.Fatalf("node %d prefix = %d", id, v.Prefix(appendmem.NodeID(id)))
		}
	}
}

func TestVisibilitySyncIsIncremental(t *testing.T) {
	s := sim.New()
	mem := appendmem.New(3)
	g := topology.Ring(3, 1, 0.1)
	v := NewVisibility(s, xrand.New(2, 2), g, topology.DelayModel{Kind: topology.DelayUniform}, mem)
	for i := 0; i < 5; i++ {
		mem.Writer(appendmem.NodeID(i%3)).MustAppend(int64(i), 0, nil)
		v.Sync()
		v.Sync() // idempotent
	}
	s.Run()
	for id := 0; id < 3; id++ {
		if v.Prefix(appendmem.NodeID(id)) != 5 {
			t.Fatalf("node %d prefix = %d", id, v.Prefix(appendmem.NodeID(id)))
		}
	}
}

func TestVisibilityDeterministic(t *testing.T) {
	run := func() string {
		s := sim.New()
		mem := appendmem.New(12)
		g := topology.WattsStrogatz(xrand.New(9, 9), 12, 2, 0.4, 0.2)
		v := NewVisibility(s, xrand.New(4, 4), g, topology.DelayModel{Kind: topology.DelayLongTail}, mem)
		for i := 0; i < 6; i++ {
			mem.Writer(appendmem.NodeID(i*2%12)).MustAppend(int64(i), 0, nil)
			v.Sync()
		}
		s.Run()
		out := ""
		for id := 0; id < 12; id++ {
			out += fmt.Sprintf("%d:%d;", id, v.Prefix(appendmem.NodeID(id)))
		}
		return out + fmt.Sprintf("lag=%.12f;n=%d", v.MeanLag(), v.Deliveries())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic visibility:\n%s\n%s", a, b)
	}
}

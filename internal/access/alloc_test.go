package access

import (
	"testing"

	"repro/internal/appendmem"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// TestVisibilitySteadyStateAllocs pins the per-append cost of the
// visibility flood: once the arrival bitsets, announce slice, hop heap
// and simulator event heap have grown past the measured window, one
// append-announce-drain cycle reuses all of it. Amortized slice growth is
// kept out of the window by warming up to just past a capacity doubling.
func TestVisibilitySteadyStateAllocs(t *testing.T) {
	s := sim.New()
	g := topology.Ring(16, 2, 0.1)
	m := appendmem.New(16)
	v := NewVisibility(s, xrand.New(1, 1), g, topology.DelayModel{}, m)
	parents := []appendmem.MsgID{appendmem.None}
	i := 0
	step := func() {
		msg := m.Writer(appendmem.NodeID(i%16)).MustAppend(1, 0, parents)
		parents[0] = msg.ID
		i++
		v.Sync()
		s.Run()
	}
	for i < 1100 {
		step()
	}

	allocs := testing.AllocsPerRun(100, step)
	if allocs > 0 {
		t.Errorf("warm visibility flood allocated %.2f times per append, want 0", allocs)
	}
	for id := 0; id < g.N(); id++ {
		if got := v.Prefix(appendmem.NodeID(id)); got != m.Len() {
			t.Fatalf("node %d prefix %d after quiescence, want %d", id, got, m.Len())
		}
	}
}

// TestVisibilitySyncIdempotentNoAllocs: Sync with nothing new must be a
// cheap no-op — it runs on every append site in the agreement loop.
func TestVisibilitySyncIdempotentNoAllocs(t *testing.T) {
	s := sim.New()
	g := topology.Ring(8, 1, 0.1)
	m := appendmem.New(8)
	v := NewVisibility(s, xrand.New(2, 2), g, topology.DelayModel{}, m)
	m.Writer(0).MustAppend(1, 0, []appendmem.MsgID{appendmem.None})
	v.Sync()
	s.Run()

	allocs := testing.AllocsPerRun(100, v.Sync)
	if allocs != 0 {
		t.Errorf("idempotent Sync allocated %.2f times per call, want 0", allocs)
	}
}

package access

import (
	"repro/internal/appendmem"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Visibility derives per-node views of the shared append memory from
// message arrival times over a network topology, replacing the uniform
// Δ-bound with propagation that depends on where the author sits in the
// graph.
//
// Each announced append is flooded from its author: the author sees it
// immediately, every other node at the instant the flood first reaches it
// (per-link delays sampled from the delay model, duplicates suppressed).
// A node's view is the *maximal fully-arrived prefix* of the global
// memory: the longest leading run of messages that have all reached it.
// Prefixes are what keeps the model honest — appendmem views are totally
// ordered by construction (M(τ) ⊆ M(τ′), Definition 2.1), so a node that
// has message 7 but not message 5 cannot expose 7 yet; it reads up to 4
// until the gap fills. The prefix rule makes per-node views valid Views
// while preserving "later reads see no less".
//
// Determinism: floods run on the simulator's event heap with a dedicated
// rng; every draw happens inside an event callback, so per-node views are
// a pure function of (graph, delay model, rng state, append order) and
// byte-identical at any worker count.
type Visibility struct {
	s   *sim.Sim
	rng *xrand.PCG
	g   *topology.Graph
	dm  topology.DelayModel
	mem *appendmem.Memory
	eps sim.Time

	announced int        // messages of mem already flooded
	announce  []float64  // announce instant per message
	arrived   [][]uint64 // per-node arrival bitset over message indexes
	prefix    []int      // per-node maximal fully-arrived prefix length

	hops []visHop // in-flight relay hops, min-heap on (at, seq)
	hseq uint64
	tick func() // bound drain, allocated once

	totalLag   float64 // summed (arrival − announce) over non-author arrivals
	deliveries int     // number of non-author arrivals
}

// visHop is one in-flight link transmission of a flooded announcement.
type visHop struct {
	at       sim.Time
	seq      uint64
	msg      int32 // message index being flooded
	to, from int32 // receiving node; inbound neighbor
}

func (h *visHop) before(o *visHop) bool {
	if h.at != o.at {
		return h.at < o.at
	}
	return h.seq < o.seq
}

// NewVisibility creates the visibility tracker for mem over graph g. The
// graph's node count must match the memory's; link latencies are in
// simulator time units.
func NewVisibility(s *sim.Sim, rng *xrand.PCG, g *topology.Graph, dm topology.DelayModel, mem *appendmem.Memory) *Visibility {
	if g.N() != mem.NumNodes() {
		panic("access: topology size does not match memory")
	}
	eps := sim.Time(g.MinLatency() / 1e9)
	if eps <= 0 {
		eps = 1e-9
	}
	v := &Visibility{
		s:       s,
		rng:     rng,
		g:       g,
		dm:      dm,
		mem:     mem,
		eps:     eps,
		arrived: make([][]uint64, g.N()),
		prefix:  make([]int, g.N()),
	}
	v.tick = v.drain
	return v
}

// Sync floods every message appended to the memory since the last call.
// Call it after each append site; announcing is idempotent and cheap when
// nothing is new. The author's own arrival is immediate (a node sees its
// own append the moment it lands).
func (v *Visibility) Sync() {
	n := v.mem.Len()
	if n == v.announced {
		return
	}
	now := float64(v.s.Now())
	words := (n + 63) / 64
	for id := range v.arrived {
		for len(v.arrived[id]) < words {
			v.arrived[id] = append(v.arrived[id], 0)
		}
	}
	for i := v.announced; i < n; i++ {
		v.announce = append(v.announce, now)
		author := int(v.mem.Message(appendmem.MsgID(i)).Author)
		// The author's own arrival: immediate, lag-free, no inbound link.
		bitSet(v.arrived[author], i)
		v.advancePrefix(author)
		v.relayFrom(int32(i), author, -1)
	}
	v.announced = n
}

// advancePrefix extends node's maximal fully-arrived prefix past any
// newly filled gaps.
func (v *Visibility) advancePrefix(node int) {
	for v.prefix[node] < len(v.announce) && bitGet(v.arrived[node], v.prefix[node]) {
		v.prefix[node]++
	}
}

// relayFrom schedules one hop of the flood to every neighbor of node
// except the inbound one.
func (v *Visibility) relayFrom(msg int32, node int, inbound int32) {
	v.g.Neighbors(node, func(j int, lat float64) bool {
		if int32(j) == inbound {
			return true
		}
		if bitGet(v.arrived[j], int(msg)) {
			return true // already there; skip the redundant transmission
		}
		delay := sim.Time(v.dm.Sample(lat, v.rng))
		if delay <= 0 {
			delay = v.eps
		}
		v.hseq++
		v.push(visHop{at: v.s.Now() + delay, seq: v.hseq, msg: msg, to: int32(j), from: int32(node)})
		v.s.After(delay, v.tick)
		return true
	})
}

// drain fires the earliest in-flight hop; duplicates are suppressed by the
// arrival bitset.
func (v *Visibility) drain() {
	h := v.pop()
	node := int(h.to)
	if bitGet(v.arrived[node], int(h.msg)) {
		return
	}
	bitSet(v.arrived[node], int(h.msg))
	v.advancePrefix(node)
	v.totalLag += float64(v.s.Now()) - v.announce[h.msg]
	v.deliveries++
	v.relayFrom(h.msg, node, h.from)
}

// Prefix returns the length of node id's maximal fully-arrived prefix.
func (v *Visibility) Prefix(id appendmem.NodeID) int { return v.prefix[id] }

// ViewFor returns node id's current view: the maximal prefix of the
// global memory all of whose messages have reached the node.
func (v *Visibility) ViewFor(id appendmem.NodeID) appendmem.View {
	return v.mem.ViewAt(v.prefix[id])
}

// MeanLag returns the mean propagation lag over all non-author arrivals
// so far (0 when nothing has propagated yet). Messages still in flight at
// the end of a run are not counted.
func (v *Visibility) MeanLag() float64 {
	if v.deliveries == 0 {
		return 0
	}
	return v.totalLag / float64(v.deliveries)
}

// Deliveries returns the number of non-author arrivals accounted so far.
func (v *Visibility) Deliveries() int { return v.deliveries }

func bitGet(b []uint64, i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func bitSet(b []uint64, i int)      { b[i>>6] |= 1 << (uint(i) & 63) }

// push adds h to the hop min-heap.
func (v *Visibility) push(h visHop) {
	hs := append(v.hops, h)
	i := len(hs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(&hs[parent]) {
			break
		}
		hs[i] = hs[parent]
		i = parent
	}
	hs[i] = h
	v.hops = hs
}

// pop removes and returns the minimum hop.
func (v *Visibility) pop() visHop {
	hs := v.hops
	min := hs[0]
	n := len(hs) - 1
	last := hs[n]
	hs = hs[:n]
	v.hops = hs
	if n > 0 {
		i := 0
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			m := l
			if r := l + 1; r < n && hs[r].before(&hs[l]) {
				m = r
			}
			if !hs[m].before(&last) {
				break
			}
			hs[i] = hs[m]
			i = m
		}
		hs[i] = last
	}
	return min
}

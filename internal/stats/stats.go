// Package stats provides the summary statistics, tail bounds and fitting
// helpers that the experiment harness uses to compare simulated executions
// against the paper's analytical predictions.
//
// The paper's Section 5 proofs rest on the central limit theorem (validity
// of the timestamp baseline, Theorem 5.2) and Poisson tail bounds (the
// private-chain length of Lemma 5.5). This package provides both the
// empirical side (Summary, Histogram) and the analytical side (NormalTail,
// PoissonTail) so experiments can print "measured vs predicted" rows.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds moment statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1 denominator)
	Min      float64
	Max      float64
}

// Summarize computes the Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
	}
	return s
}

// Stddev returns the sample standard deviation.
func (s Summary) Stddev() float64 { return math.Sqrt(s.Variance) }

// SEM returns the standard error of the mean.
func (s Summary) SEM() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Stddev() / math.Sqrt(float64(s.N))
}

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval around the mean.
func (s Summary) CI95() float64 { return 1.96 * s.SEM() }

// String renders the summary compactly: "mean ± ci95 [min,max] (n=..)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g [%.4g, %.4g] (n=%d)", s.Mean, s.CI95(), s.Min, s.Max, s.N)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty sample or
// q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile with q outside [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Proportion holds a binomial success-rate estimate.
type Proportion struct {
	Successes int
	Trials    int
}

// Rate returns the empirical success rate.
func (p Proportion) Rate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// Wilson95 returns the Wilson-score 95% confidence interval for the rate.
// Unlike the normal approximation, it behaves sensibly at rates near 0 or 1,
// which is exactly where our validity-failure experiments operate.
func (p Proportion) Wilson95() (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	const z = 1.96
	n := float64(p.Trials)
	phat := p.Rate()
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// String renders the proportion with its Wilson interval.
func (p Proportion) String() string {
	lo, hi := p.Wilson95()
	return fmt.Sprintf("%.3f [%.3f, %.3f] (%d/%d)", p.Rate(), lo, hi, p.Successes, p.Trials)
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Bins     []int
	Under    int // samples below Lo
	Over     int // samples at or above Hi
	binWidth float64
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
// It panics when hi <= lo or bins <= 0.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo || bins <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, bins), binWidth: (hi - lo) / float64(bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Bins) { // guard against float rounding at the edge
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Total returns the number of recorded samples including out-of-range ones.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, b := range h.Bins {
		n += b
	}
	return n
}

// NormalTail returns P[X > x] for X ~ N(mean, sd^2).
func NormalTail(x, mean, sd float64) float64 {
	if sd <= 0 {
		if x >= mean {
			return 0
		}
		return 1
	}
	z := (x - mean) / (sd * math.Sqrt2)
	return 0.5 * math.Erfc(z)
}

// PoissonTail returns P[X >= k] for X ~ Poisson(lambda), computed by direct
// summation of the complementary CDF (stable for the moderate lambdas we use).
func PoissonTail(k int, lambda float64) float64 {
	if k <= 0 {
		return 1
	}
	if lambda <= 0 {
		return 0
	}
	// P[X >= k] = 1 - sum_{i<k} e^-l l^i / i!
	logTerm := -lambda // log of the i=0 term
	cdf := 0.0
	for i := 0; i < k; i++ {
		cdf += math.Exp(logTerm)
		logTerm += math.Log(lambda) - math.Log(float64(i+1))
	}
	if cdf > 1 {
		cdf = 1
	}
	return 1 - cdf
}

// LogFit fits y = a + b*log(x) by least squares and returns (a, b, r2).
// Used in experiment E7 to verify the Θ(log n) growth of the adversarial
// pre-decision chain (Lemma 5.5). It panics when fewer than two points or
// any x <= 0.
func LogFit(xs, ys []float64) (a, b, r2 float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: LogFit needs at least two points")
	}
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			panic("stats: LogFit with non-positive x")
		}
		lx[i] = math.Log(x)
	}
	return LinearFit(lx, ys)
}

// LinearFit fits y = a + b*x by least squares and returns (a, b, r2).
func LinearFit(xs, ys []float64) (a, b, r2 float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: LinearFit needs at least two points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		panic("stats: LinearFit with degenerate x values")
	}
	b = (n*sxy - sx*sy) / denom
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1
	}
	ssRes := 0.0
	for i := range xs {
		d := ys[i] - (a + b*xs[i])
		ssRes += d * d
	}
	r2 = 1 - ssRes/ssTot
	return a, b, r2
}

// Mean is a convenience over Summarize for when only the mean is needed.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

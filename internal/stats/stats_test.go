package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Variance != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 {
		t.Errorf("mean = %v, want 3", s.Mean)
	}
	if s.Variance != 2.5 {
		t.Errorf("variance = %v, want 2.5", s.Variance)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Variance != 0 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
}

func TestSummaryProperties(t *testing.T) {
	p := xrand.New(1, 1)
	if err := quick.Check(func(seed uint32) bool {
		n := int(seed%100) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = p.Norm(0, 10)
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Variance >= 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	} {
		if got := Quantile(xs, tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	got := Quantile([]float64{0, 10}, 0.5)
	if got != 5 {
		t.Fatalf("interpolated median = %v, want 5", got)
	}
}

func TestProportion(t *testing.T) {
	p := Proportion{Successes: 50, Trials: 100}
	if p.Rate() != 0.5 {
		t.Errorf("rate = %v", p.Rate())
	}
	lo, hi := p.Wilson95()
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("Wilson interval [%v,%v] excludes the point estimate", lo, hi)
	}
	if lo < 0.39 || hi > 0.61 {
		t.Errorf("Wilson interval [%v,%v] implausibly wide for n=100", lo, hi)
	}
}

func TestProportionEdges(t *testing.T) {
	zero := Proportion{0, 100}
	lo, hi := zero.Wilson95()
	if lo != 0 || hi > 0.05 {
		t.Errorf("all-failure interval [%v,%v]", lo, hi)
	}
	one := Proportion{100, 100}
	lo, hi = one.Wilson95()
	if hi < 0.999 || lo < 0.95 {
		t.Errorf("all-success interval [%v,%v]", lo, hi)
	}
	empty := Proportion{}
	lo, hi = empty.Wilson95()
	if lo != 0 || hi != 1 {
		t.Errorf("empty interval [%v,%v], want [0,1]", lo, hi)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-1, 0, 0.5, 5, 9.999, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("under = %d", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("over = %d", h.Over)
	}
	if h.Bins[0] != 2 {
		t.Errorf("bin 0 = %d, want 2", h.Bins[0])
	}
	if h.Bins[9] != 1 {
		t.Errorf("bin 9 = %d, want 1", h.Bins[9])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d, want 7", h.Total())
	}
}

func TestNormalTail(t *testing.T) {
	if got := NormalTail(0, 0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P[N>mean] = %v, want 0.5", got)
	}
	if got := NormalTail(1.96, 0, 1); math.Abs(got-0.025) > 0.001 {
		t.Errorf("P[N>1.96] = %v, want about 0.025", got)
	}
	if got := NormalTail(5, 10, 0); got != 1 {
		t.Errorf("degenerate tail below mean = %v, want 1", got)
	}
}

func TestPoissonTail(t *testing.T) {
	// P[X >= 1] = 1 - e^-lambda
	lambda := 2.0
	want := 1 - math.Exp(-lambda)
	if got := PoissonTail(1, lambda); math.Abs(got-want) > 1e-12 {
		t.Errorf("PoissonTail(1,%v) = %v, want %v", lambda, got, want)
	}
	if got := PoissonTail(0, 5); got != 1 {
		t.Errorf("PoissonTail(0) = %v, want 1", got)
	}
	// Tails are monotone decreasing in k.
	prev := 1.0
	for k := 1; k < 20; k++ {
		cur := PoissonTail(k, 3)
		if cur > prev+1e-12 {
			t.Fatalf("tail not monotone at k=%d: %v > %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestPoissonTailMatchesSampler(t *testing.T) {
	p := xrand.New(2, 2)
	const lambda, k, trials = 4.0, 6, 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if p.Poisson(lambda) >= k {
			hits++
		}
	}
	emp := float64(hits) / trials
	ana := PoissonTail(k, lambda)
	if math.Abs(emp-ana) > 0.01 {
		t.Fatalf("empirical tail %v vs analytical %v", emp, ana)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, r2 := LinearFit(xs, ys)
	if math.Abs(a-1) > 1e-9 || math.Abs(b-2) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Fatalf("fit = (%v, %v, %v), want (1, 2, 1)", a, b, r2)
	}
}

func TestLogFit(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 + 3*math.Log(x)
	}
	a, b, r2 := LogFit(xs, ys)
	if math.Abs(a-1) > 1e-9 || math.Abs(b-3) > 1e-9 || r2 < 0.999 {
		t.Fatalf("log fit = (%v, %v, %v), want (1, 3, 1)", a, b, r2)
	}
}

func TestLogFitRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LogFit with x=0 did not panic")
		}
	}()
	LogFit([]float64{0, 1}, []float64{0, 1})
}

func TestSummaryStringAndSEM(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.SEM() <= 0 || s.CI95() <= 0 {
		t.Fatal("SEM/CI95 not positive")
	}
	if str := s.String(); len(str) == 0 {
		t.Fatal("empty String")
	}
	empty := Summary{}
	if empty.SEM() != 0 {
		t.Fatal("empty SEM not 0")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestProportionString(t *testing.T) {
	p := Proportion{3, 10}
	if s := p.String(); len(s) == 0 {
		t.Fatal("empty String")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram bounds did not panic")
		}
	}()
	NewHistogram(1, 1, 3)
}

func TestNormalTailDegenerateAbove(t *testing.T) {
	if got := NormalTail(15, 10, 0); got != 0 {
		t.Fatalf("degenerate tail above mean = %v, want 0", got)
	}
}

func TestPoissonTailZeroLambda(t *testing.T) {
	if got := PoissonTail(3, 0); got != 0 {
		t.Fatalf("PoissonTail with lambda=0: %v", got)
	}
}

func TestLinearFitPanics(t *testing.T) {
	for _, f := range []func(){
		func() { LinearFit([]float64{1}, []float64{1}) },
		func() { LinearFit([]float64{2, 2}, []float64{1, 5}) }, // degenerate x
		func() { LogFit([]float64{1}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLinearFitPerfectlyFlat(t *testing.T) {
	// Zero variance in y: r² defined as 1.
	_, b, r2 := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if b != 0 || r2 != 1 {
		t.Fatalf("flat fit = (b=%v, r2=%v)", b, r2)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
}

package trace

import (
	"strings"
	"testing"

	"repro/internal/appendmem"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: Grant}) // must not panic
	if r.Enabled() {
		t.Fatal("nil recorder enabled")
	}
	if r.Len() != 0 || r.Events() != nil || r.ByNode(0) != nil {
		t.Fatal("nil recorder not empty")
	}
	if len(r.Summary()) != 0 {
		t.Fatal("nil summary not empty")
	}
	if !strings.Contains(r.Render(0), "no events") {
		t.Fatal("nil render wrong")
	}
}

func TestRecordAndSummary(t *testing.T) {
	r := New()
	r.Record(Event{At: 1, Kind: Grant, Node: 0})
	r.Record(Event{At: 1, Kind: Append, Node: 0, Msg: 0, Val: 1})
	r.Record(Event{At: 2, Kind: Read, Node: 1})
	r.Record(Event{At: 3, Kind: Decide, Node: 1, Val: -1})
	if r.Len() != 4 {
		t.Fatalf("len = %d", r.Len())
	}
	sum := r.Summary()
	if sum[Grant] != 1 || sum[Append] != 1 || sum[Read] != 1 || sum[Decide] != 1 {
		t.Fatalf("summary = %v", sum)
	}
}

func TestByNode(t *testing.T) {
	r := New()
	r.Record(Event{Kind: Grant, Node: 0})
	r.Record(Event{Kind: Grant, Node: 1})
	r.Record(Event{Kind: Read, Node: 0})
	if got := r.ByNode(0); len(got) != 2 {
		t.Fatalf("ByNode(0) = %d events", len(got))
	}
}

func TestRenderContents(t *testing.T) {
	r := New()
	r.Record(Event{At: 1.5, Kind: Append, Node: 3, Msg: 7, Val: -1, Note: "byzantine"})
	r.Record(Event{At: 2.25, Kind: Decide, Node: 1, Val: 1})
	r.Record(Event{At: 3, Kind: StallStart, Node: System, Note: "blackout"})
	out := r.Render(0)
	for _, want := range []string{"append", "node 3", "msg 7", "byzantine", "decide", "value +1", "system", "stall-start"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTruncation(t *testing.T) {
	r := New()
	for i := 0; i < 10; i++ {
		r.Record(Event{At: 0, Kind: Grant, Node: appendmem.NodeID(i % 3)})
	}
	out := r.Render(4)
	if !strings.Contains(out, "6 earlier events elided") {
		t.Fatalf("no truncation marker:\n%s", out)
	}
	if got := strings.Count(out, "grant"); got != 4 {
		t.Fatalf("rendered %d events, want 4", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Grant: "grant", Append: "append", Read: "read", Decide: "decide",
		Crash: "crash", StallStart: "stall-start", StallEnd: "stall-end", RoundStart: "round",
		Kind(99): "Kind(99)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestEqual(t *testing.T) {
	a, b := New(), New()
	a.Record(Event{At: 1, Kind: Grant})
	b.Record(Event{At: 1, Kind: Grant})
	if !Equal(a, b) {
		t.Fatal("identical recorders unequal")
	}
	b.Record(Event{At: 2, Kind: Read})
	if Equal(a, b) {
		t.Fatal("different lengths equal")
	}
	a.Record(Event{At: 2, Kind: Decide})
	if Equal(a, b) {
		t.Fatal("different events equal")
	}
	if !Equal(nil, nil) {
		t.Fatal("nil recorders should be equal")
	}
}

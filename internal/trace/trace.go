// Package trace records structured execution events of protocol runs —
// token grants, appends, reads, decisions, crashes, blackouts — and
// renders them as a human-readable timeline. Tracing is opt-in (a nil
// Recorder is a no-op sink, so the hot paths stay allocation-free when
// disabled) and deterministic: identical runs produce identical traces,
// which the test suite exploits as a replay check.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/appendmem"
	"repro/internal/sim"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	Grant Kind = iota
	Append
	Read
	Decide
	Crash
	StallStart
	StallEnd
	RoundStart
)

func (k Kind) String() string {
	switch k {
	case Grant:
		return "grant"
	case Append:
		return "append"
	case Read:
		return "read"
	case Decide:
		return "decide"
	case Crash:
		return "crash"
	case StallStart:
		return "stall-start"
	case StallEnd:
		return "stall-end"
	case RoundStart:
		return "round"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// System marks events not attributable to one node.
const System appendmem.NodeID = -1

// Event is one recorded occurrence.
type Event struct {
	At   sim.Time
	Kind Kind
	Node appendmem.NodeID
	Msg  appendmem.MsgID // the appended message, for Append events
	Val  int64           // decision value / append value
	Note string
}

// Recorder accumulates events. A nil *Recorder is a valid no-op sink.
type Recorder struct {
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Record appends an event; no-op on a nil receiver.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.events = append(r.events, e)
}

// Enabled reports whether events are being collected.
func (r *Recorder) Enabled() bool { return r != nil }

// Events returns the recorded events in order. The returned slice is the
// recorder's backing store; callers must not mutate it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Len returns the number of recorded events (0 for nil).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Summary counts events per kind.
func (r *Recorder) Summary() map[Kind]int {
	sum := make(map[Kind]int)
	if r == nil {
		return sum
	}
	for _, e := range r.events {
		sum[e.Kind]++
	}
	return sum
}

// ByNode returns the events of one node, in order.
func (r *Recorder) ByNode(id appendmem.NodeID) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, e := range r.events {
		if e.Node == id {
			out = append(out, e)
		}
	}
	return out
}

// Render prints the last max events (all when max <= 0) as an aligned
// timeline.
func (r *Recorder) Render(max int) string {
	if r == nil || len(r.events) == 0 {
		return "(no events)\n"
	}
	events := r.events
	truncated := 0
	if max > 0 && len(events) > max {
		truncated = len(events) - max
		events = events[truncated:]
	}
	var b strings.Builder
	if truncated > 0 {
		fmt.Fprintf(&b, "... %d earlier events elided ...\n", truncated)
	}
	for _, e := range events {
		who := "system"
		if e.Node != System {
			who = fmt.Sprintf("node %-2d", e.Node)
		}
		fmt.Fprintf(&b, "%9.3f  %-11s %s", float64(e.At), e.Kind, who)
		switch e.Kind {
		case Append:
			fmt.Fprintf(&b, "  msg %d val %+d", e.Msg, e.Val)
		case Decide:
			fmt.Fprintf(&b, "  value %+d", e.Val)
		}
		if e.Note != "" {
			fmt.Fprintf(&b, "  (%s)", e.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Equal reports whether two recorders hold identical event sequences —
// the determinism/replay check.
func Equal(a, b *Recorder) bool {
	if a.Len() != b.Len() {
		return false
	}
	ae, be := a.Events(), b.Events()
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

package search

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/distrib"
	"repro/internal/scenario"
)

// chainBase is a small near-critical chain scenario: adversarial
// tie-breaking at t = n/3 sits right at the Theorem 5.3 boundary, where
// the fork adversary produces a nonzero disagreement rate — so the
// objective has an actual gradient to climb.
func chainBase() scenario.Spec {
	return scenario.Spec{
		Protocol: scenario.Chain, N: 9, T: 3, Lambda: 0.5, K: 21,
		TieBreak: scenario.TieAdversarial, Attack: scenario.AttackFork,
		Seed: 1,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	schema := adversary.ChainSchema()
	warm := presetAssignments(chainBase(), schema)
	if len(warm) != 2 {
		t.Fatalf("%d warm starts for the chain template, want 2 (tiebreak, equivocate)", len(warm))
	}
	a := Generate(schema, warm, 24, 7)
	b := Generate(schema, warm, 24, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different candidate pools")
	}
	if len(a) != 24 {
		t.Fatalf("pool size %d, want 24", len(a))
	}
	if a[0].Origin != "preset" || len(a[0].Params) != 0 {
		t.Fatalf("candidate 0 = %+v, want the empty preset", a[0])
	}
	seen := map[string]bool{}
	for i, c := range a {
		if c.Index != i {
			t.Fatalf("candidate %d carries index %d", i, c.Index)
		}
		if c.Origin != "preset" && len(c.Params) != len(schema) {
			t.Fatalf("candidate %d (%s) sets %d of %d parameters", i, c.Origin, len(c.Params), len(schema))
		}
		key := canon(schema, c.Params)
		if seen[key] {
			t.Fatalf("duplicate candidate %d: %s", i, key)
		}
		seen[key] = true
	}

	c := Generate(schema, warm, 24, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical pools")
	}
	// The deterministic portion (preset + grid) is seed-independent.
	for i := 0; i < len(a); i++ {
		if a[i].Origin == "random" {
			break
		}
		if !reflect.DeepEqual(a[i], c[i]) {
			t.Fatalf("non-random candidate %d differs across seeds: %+v vs %+v", i, a[i], c[i])
		}
	}
}

func TestGeneratedCandidatesValid(t *testing.T) {
	base := chainBase()
	for _, c := range Generate(adversary.ChainSchema(), nil, 40, 3) {
		sp := base
		sp.AttackParams = c.Params
		if _, err := scenario.Bind(sp); err != nil {
			t.Fatalf("candidate %d (%s) does not bind: %v", c.Index, c.Origin, err)
		}
	}
}

// searchConfig keeps the test search tiny: two rungs, a handful of
// candidates, fixed chunking so even the lease plan is deterministic.
func searchConfig(workers int) Config {
	return Config{
		Spec: chainBase(), Objective: Disagreement,
		Budget: 48, Seed: 11, Rungs: []int{4, 8}, Eta: 4,
		Distrib: distrib.Config{ChunkSize: 4, InlineWorkers: workers},
	}
}

func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	serial, err := Run(searchConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(searchConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	// Stats are identical too under fixed chunking, but the determinism
	// contract is about the trajectory, not the accounting.
	serial.Stats, parallel.Stats = distrib.Stats{}, distrib.Stats{}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("search trajectory depends on worker count:\n 1: %+v\n 8: %+v", serial, parallel)
	}
	if serial.Best.Trials != 8 {
		t.Fatalf("best measured at %d trials, want the final rung 8", serial.Best.Trials)
	}
	if len(serial.Rungs) != 2 {
		t.Fatalf("%d rungs recorded, want 2", len(serial.Rungs))
	}
}

func TestSearchBestAtLeastPreset(t *testing.T) {
	res, err := Run(searchConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	// Measure the preset at the same final-rung budget the winner was
	// scored at: the searched worst case must not lose to the hand-coded
	// strategy it generalizes.
	sp := chainBase()
	sp.Trials = res.Best.Trials
	sp.Metrics = []string{res.MetricName}
	sw := scenario.MustRunSpec(sp, scenario.Options{})
	preset := res.Objective.Score(sw.Points[0].Metrics[0].Value)
	if res.Best.Score < preset {
		t.Fatalf("searched best %.4f scores below the preset %.4f", res.Best.Score, preset)
	}
}

func TestSearchRejectsUnparameterizedAttack(t *testing.T) {
	cfg := searchConfig(0)
	cfg.Spec.Attack = scenario.AttackSilent
	if _, err := Run(cfg); err == nil {
		t.Fatal("search over the silent attack should fail (no schema)")
	}
	cfg = searchConfig(0)
	cfg.Spec.Sweep = []scenario.Axis{{Name: "n", Values: []scenario.Value{{Num: 6}}}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("search over a sweeping spec should fail")
	}
}

func TestCounterexampleRoundTrip(t *testing.T) {
	// At t=4 the fork adversary disagrees in a few percent of trials, so a
	// short scan finds a witness.
	base := scenario.Spec{
		Protocol: scenario.Chain, N: 9, T: 4, Lambda: 0.5, K: 41,
		TieBreak: scenario.TieAdversarial, Attack: scenario.AttackFork,
		Seed: 1,
	}
	ce, err := Counterexample(base, Candidate{Origin: "preset"}, Disagreement, 128)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Trials != 1 {
		t.Fatalf("counterexample trials = %d, want 1 (minimized)", ce.Trials)
	}
	schema := adversary.ChainSchema()
	if len(ce.AttackParams) != len(schema) {
		t.Fatalf("counterexample pins %d of %d parameters", len(ce.AttackParams), len(schema))
	}

	// The committed artifact must survive the JSON round trip and still
	// reproduce: Replay is what CI runs against the file.
	data, err := json.Marshal(ce)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := scenario.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	hits, trials, why, err := Replay(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if trials != 1 || hits != 1 {
		t.Fatalf("replay hit %d/%d trials (%v), want the pinned seed to reproduce", hits, trials, why)
	}
}

func TestReplayCleanSpecMisses(t *testing.T) {
	sp := chainBase()
	sp.Attack = scenario.AttackSilent
	sp.TieBreak = ""
	sp.Trials = 4
	hits, trials, _, err := Replay(sp)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 0 || trials != 4 {
		t.Fatalf("silent run hit %d/%d, want 0/4", hits, trials)
	}
}

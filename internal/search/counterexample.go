package search

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/agreement"
	"repro/internal/scenario"
)

// Witness is one concrete bad trial: a seed whose run disagrees or
// violates an invariant under a given parameterization.
type Witness struct {
	Seed uint64
	// Why names what went wrong: "disagreement" or an invariant name
	// (agreement.InvConflictingDecisions, ...).
	Why string
}

// FindWitness scans the spec's trials in seed order and returns the
// first one that disagrees or violates an invariant — the minimization
// step between "the searched point scores badly over N trials" and "here
// is ONE run you can replay". The spec's own Trials field bounds the
// scan.
func FindWitness(spec scenario.Spec) (Witness, error) {
	trials := spec.Trials
	if trials <= 0 {
		trials = 1
	}
	b, err := scenario.Bind(spec)
	if err != nil {
		return Witness{}, err
	}
	iv, ivErr := b.Invariants() // sync specs have no invariant hooks; fall back to the verdict
	for i := 0; i < trials; i++ {
		seed := spec.Seed + uint64(i)
		r, err := b.Run(seed)
		if err != nil {
			return Witness{}, err
		}
		if ivErr == nil {
			if vs := r.CheckInvariants(iv); len(vs) > 0 {
				return Witness{Seed: seed, Why: vs[0].Invariant}, nil
			}
		}
		if !r.Verdict.Agreement {
			return Witness{Seed: seed, Why: "disagreement"}, nil
		}
	}
	return Witness{}, fmt.Errorf("search: no disagreeing or violating trial among seeds %d..%d",
		spec.Seed, spec.Seed+uint64(trials)-1)
}

// Counterexample minimizes a searched candidate into a committed
// regression: a fully-specified single-trial Spec pinned to the first
// witness seed, with the complete parameter assignment written out
// explicitly (so the file survives preset drift). The scan covers
// scanTrials seeds from base.Seed.
func Counterexample(base scenario.Spec, c Candidate, obj Objective, scanTrials int) (scenario.Spec, error) {
	sp := base
	sp.Sweep = nil
	sp.Metrics = nil
	sp.Trials = scanTrials
	if len(c.Params) > 0 {
		sp.AttackParams = c.Params
	}
	w, err := FindWitness(sp)
	if err != nil {
		return scenario.Spec{}, err
	}
	explicit, err := scenario.ExplicitAttackParams(sp)
	if err != nil {
		return scenario.Spec{}, err
	}
	sp.AttackParams = explicit
	sp.Margin = 0 // folded into the explicit start_within
	sp.Seed = w.Seed
	sp.Trials = 1
	sp.Name = fmt.Sprintf("searched-%s-%s", sp.Protocol, w.Why)
	sp.Doc = fmt.Sprintf("Searched counterexample (%s objective): seed %d exhibits %s. "+
		"Found by amsearch -seed %d; replay with amsearch -replay <this file>.",
		obj, w.Seed, w.Why, base.Seed)
	return sp, nil
}

// WriteCounterexample serializes the spec as an examples/scenarios-style
// JSON file. path may be an existing directory (the file name is derived
// from the spec name) or a target .json path; the written path is
// returned.
func WriteCounterexample(sp scenario.Spec, path string) (string, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		name := strings.ReplaceAll(sp.Name, " ", "_") + ".json"
		path = filepath.Join(path, name)
	}
	data, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Replay runs every trial of a (typically committed) spec and reports
// how many disagree or violate an invariant. CI gates on hits > 0: a
// counterexample that stops reproducing is a regression in the
// regression.
func Replay(spec scenario.Spec) (hits, trials int, why []string, err error) {
	trials = spec.Trials
	if trials <= 0 {
		trials = 1
	}
	b, err := scenario.Bind(spec)
	if err != nil {
		return 0, 0, nil, err
	}
	iv, ivErr := b.Invariants()
	for i := 0; i < trials; i++ {
		r, err := b.Run(spec.Seed + uint64(i))
		if err != nil {
			return 0, 0, nil, err
		}
		var vs agreement.Violations
		if ivErr == nil {
			vs = r.CheckInvariants(iv)
		}
		switch {
		case len(vs) > 0:
			hits++
			why = append(why, vs[0].Invariant)
		case !r.Verdict.Agreement:
			hits++
			why = append(why, "disagreement")
		}
	}
	return hits, trials, why, nil
}

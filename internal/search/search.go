// Package search optimizes over the attack-parameter space of a
// parameterized adversary template: given a base scenario (protocol, n,
// t, λ, ...), it looks for the parameter assignment that maximizes an
// objective — the disagreement rate, or the mean decision latency —
// instead of trusting the hand-coded presets to be the worst case.
//
// The optimizer is deliberately simple and deterministic: a candidate
// pool (the preset, a coarse grid over the schema, and seeded-random
// samples) is evaluated under successive halving — every candidate gets
// a small trial budget, survivors re-run at larger budgets — so most of
// the budget concentrates on the strongest parameterizations. The same
// seed yields the same candidate order, the same rung decisions and the
// same winner, regardless of worker count or fleet shape: evaluations go
// through internal/distrib, whose results are byte-identical to the
// in-process executor, and rung survival orders by (score, index).
// Escalating a survivor from a small rung to a larger one re-runs the
// same leading trial chunks, which a distrib result cache serves by
// content address — so halving's apparent re-execution cost mostly
// disappears when a cache is configured.
package search

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/adversary"
	"repro/internal/distrib"
	"repro/internal/scenario"
	"repro/internal/xrand"
)

// Objective selects what the search maximizes.
type Objective string

// Objectives.
const (
	// Disagreement maximizes 1 − agreement rate: the fraction of trials
	// where two correct nodes decide different values.
	Disagreement Objective = "disagreement"
	// Latency maximizes the mean decision time (in Δ) across trials.
	Latency Objective = "latency"
)

// Objectives enumerates the valid objective names.
func Objectives() []string { return []string{string(Disagreement), string(Latency)} }

// Metric is the scenario metric the objective reads.
func (o Objective) Metric() (string, error) {
	switch o {
	case Disagreement:
		return "agreement", nil
	case Latency:
		return "decide-time", nil
	}
	return "", fmt.Errorf("search: unknown objective %q (want %s)", o, strings.Join(Objectives(), " | "))
}

// Score turns the metric value into the maximized score.
func (o Objective) Score(metric float64) float64 {
	switch o {
	case Disagreement:
		return 1 - metric
	default: // Latency: an undecided run has no latency to maximize.
		if math.IsNaN(metric) {
			return 0
		}
		return metric
	}
}

// Config declares one search.
type Config struct {
	// Spec is the base scenario: everything but the attack parameters is
	// held fixed. Its attack must carry a parameter schema and its Sweep
	// must be empty (the search supplies the variation). Spec.Seed is the
	// trial base seed, exactly as in a sweep.
	Spec scenario.Spec
	// Objective selects the maximized quantity; "" means Disagreement.
	Objective Objective
	// Budget is the total trial budget across all rungs; it determines the
	// candidate pool size. 0 means DefaultBudget.
	Budget int
	// Seed drives candidate sampling (the random portion of the pool). The
	// same seed yields the same candidates in the same order — and, since
	// evaluation is deterministic, the same trajectory and winner.
	Seed uint64
	// Rungs are the successive-halving trial budgets, ascending; nil means
	// DefaultRungs. A single rung degenerates to plain grid+random search.
	Rungs []int
	// Eta is the halving rate: each rung keeps ceil(active/Eta) survivors.
	// 0 means DefaultEta.
	Eta int
	// Distrib configures the evaluation backend — workers, result cache,
	// inline parallelism. The zero value evaluates in-process.
	Distrib distrib.Config
}

// Defaults.
const (
	DefaultBudget = 4800
	DefaultEta    = 4
)

// DefaultRungs returns the default successive-halving schedule. The first
// rung matches distrib.DefaultChunkSize and each rung is a multiple of
// the previous, so a result cache serves every lower-rung chunk verbatim
// when a survivor escalates.
func DefaultRungs() []int { return []int{16, 64, 256} }

// Candidate is one attack parameterization under consideration.
type Candidate struct {
	// Index is the candidate's position in the deterministic generation
	// order; ties in score break toward the lower index.
	Index int
	// Origin records how the candidate was produced: "preset", "grid" or
	// "random".
	Origin string
	// Params is the full parameter assignment (every schema parameter set
	// explicitly); empty for the preset candidate.
	Params map[string]scenario.Value
}

// Text renders the candidate's assignment as "name=value ..." in schema
// declaration order (stable across runs).
func (c Candidate) Text(schema adversary.Schema) string {
	if len(c.Params) == 0 {
		return "(preset)"
	}
	parts := make([]string, 0, len(c.Params))
	for _, ps := range schema {
		if v, ok := c.Params[ps.Name]; ok {
			parts = append(parts, ps.Name+"="+v.Text())
		}
	}
	return strings.Join(parts, " ")
}

// Eval is one candidate's measured performance at one rung.
type Eval struct {
	Candidate
	// Trials is the rung budget the scores were measured at.
	Trials int
	// Metric is the raw objective metric (agreement rate or mean decision
	// latency); Score is the maximized transform of it.
	Metric float64
	Score  float64
	// Violations is the mean number of invariant violations per trial
	// (the "violations" metric): every searched execution runs under the
	// agreement invariant hooks, so a safety break surfaces here even
	// when the objective would not reward it.
	Violations float64
}

// Rung summarizes one successive-halving round.
type Rung struct {
	Trials    int // per-candidate trial budget
	Evaluated int // candidates evaluated
	Kept      int // survivors advanced to the next rung
	Best      Eval
}

// Result is one completed search.
type Result struct {
	Objective  Objective
	MetricName string
	Seed       uint64
	Budget     int
	Candidates int
	TrialsUsed int // nominal trials evaluated (cache hits included)
	Best       Eval
	// Final is the last rung's leaderboard, best first.
	Final []Eval
	Rungs []Rung
	Stats distrib.Stats
}

// Run executes the search. Errors surface eagerly: the base spec is
// validated (bound) with the preset parameters before any trial runs.
func Run(cfg Config) (*Result, error) {
	spec := cfg.Spec
	if len(spec.Sweep) > 0 {
		return nil, fmt.Errorf("search: base spec must not sweep (the search varies attack parameters); drop the sweep")
	}
	schema, err := schemaOf(spec)
	if err != nil {
		return nil, err
	}
	obj := cfg.Objective
	if obj == "" {
		obj = Disagreement
	}
	metricName, err := obj.Metric()
	if err != nil {
		return nil, err
	}
	spec.Metrics = []string{metricName, "violations"}
	if _, err := scenario.Bind(spec); err != nil {
		return nil, err
	}

	rungs := cfg.Rungs
	if len(rungs) == 0 {
		rungs = DefaultRungs()
	}
	for i, r := range rungs {
		if r <= 0 || (i > 0 && r <= rungs[i-1]) {
			return nil, fmt.Errorf("search: rungs must be positive and ascending, got %v", rungs)
		}
	}
	eta := cfg.Eta
	if eta <= 0 {
		eta = DefaultEta
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}

	// Pool size: successive halving costs about Σ rungs[i]/eta^i trials
	// per initial candidate (each rung keeps a 1/eta fraction).
	unit, div := 0.0, 1.0
	for _, r := range rungs {
		unit += float64(r) / div
		div *= float64(eta)
	}
	pool := int(float64(budget) / unit)
	if pool < 2 {
		pool = 2 // the preset plus at least one challenger
	}
	cands := Generate(schema, presetAssignments(spec, schema), pool, cfg.Seed)

	res := &Result{Objective: obj, MetricName: metricName, Seed: cfg.Seed,
		Budget: budget, Candidates: len(cands)}
	active := make([]Eval, len(cands))
	for i, c := range cands {
		active[i] = Eval{Candidate: c}
	}
	for ri, rung := range rungs {
		for i := range active {
			ev, err := evaluate(spec, active[i].Candidate, obj, metricName, rung, cfg.Distrib, &res.Stats)
			if err != nil {
				return nil, err
			}
			active[i] = ev
			res.TrialsUsed += rung
		}
		// Score descending, index ascending: the order is total, so the
		// trajectory cannot depend on sort internals or map iteration.
		sort.SliceStable(active, func(i, j int) bool {
			if active[i].Score != active[j].Score {
				return active[i].Score > active[j].Score
			}
			return active[i].Index < active[j].Index
		})
		keep := len(active)
		if ri < len(rungs)-1 {
			keep = (len(active) + eta - 1) / eta
			if keep < 1 {
				keep = 1
			}
		}
		res.Rungs = append(res.Rungs, Rung{Trials: rung, Evaluated: len(active), Kept: keep, Best: active[0]})
		active = active[:keep]
		if len(active) == 1 && ri < len(rungs)-1 {
			// A lone survivor still escalates: the final rung's budget is
			// what the winner's headline number is measured at.
			continue
		}
	}
	res.Final = active
	res.Best = active[0]
	return res, nil
}

// presetAssignments collects the explicit parameter assignments of every
// OTHER registered preset sharing the base attack's template (same
// parameter names, applicable to the base protocol). Seeding the pool
// with them makes "searched ≥ every hand-coded preset" hold by
// construction up to rung-elimination noise: each preset is a candidate,
// scored on the same seeds, so the winner can only match or beat it. The
// base attack's own preset is candidate 0 (the empty assignment) and is
// skipped here; its canonical key would collide anyway.
func presetAssignments(spec scenario.Spec, schema adversary.Schema) []map[string]scenario.Value {
	baseAttack := spec.Attack
	if baseAttack == "" {
		baseAttack = scenario.AttackSilent
	}
	var out []map[string]scenario.Value
	for _, name := range scenario.ParameterizedAttacks() {
		if scenario.Attack(name) == baseAttack {
			continue
		}
		def, ok := scenario.Attacks.Lookup(name)
		if !ok || !sameNames(def.Schema, schema) || !attackApplies(def, spec.Protocol) {
			continue
		}
		sp := spec
		sp.Attack = scenario.Attack(name)
		sp.AttackParams = nil
		if m, err := scenario.ExplicitAttackParams(sp); err == nil {
			out = append(out, m)
		}
	}
	return out
}

// sameNames reports whether two schemas declare the same parameter set
// in the same order — the test for "same template".
func sameNames(a, b adversary.Schema) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			return false
		}
	}
	return true
}

// attackApplies mirrors the registry's protocol gate: an empty Protocols
// list means every randomized protocol.
func attackApplies(def scenario.AttackDef, p scenario.Protocol) bool {
	if len(def.Protocols) == 0 {
		return def.New != nil
	}
	for _, ap := range def.Protocols {
		if ap == p {
			return true
		}
	}
	return false
}

// schemaOf resolves the base spec's attack schema, rejecting
// unparameterized attacks.
func schemaOf(spec scenario.Spec) (adversary.Schema, error) {
	attackName := spec.Attack
	if attackName == "" {
		attackName = scenario.AttackSilent
	}
	def, ok := scenario.Attacks.Lookup(string(attackName))
	if !ok {
		return nil, fmt.Errorf("search: unknown attack %q (have %s)", attackName, scenario.Attacks.Help())
	}
	if def.Schema == nil {
		return nil, fmt.Errorf("search: attack %q has no parameter schema to search (searchable attacks: %s)",
			attackName, strings.Join(scenario.ParameterizedAttacks(), " | "))
	}
	return def.Schema, nil
}

// evaluate measures one candidate at one rung via the distributed
// executor (which degenerates to the in-process path without workers).
func evaluate(base scenario.Spec, c Candidate, obj Objective, metricName string,
	trials int, dcfg distrib.Config, acc *distrib.Stats) (Eval, error) {
	sp := base
	sp.Trials = trials
	if len(c.Params) > 0 {
		// The candidate's assignment is complete, so it replaces rather
		// than merges any base overrides.
		sp.AttackParams = c.Params
	}
	res, stats, err := distrib.Run(sp, dcfg)
	if err != nil {
		return Eval{}, fmt.Errorf("search: candidate %d (%s): %w", c.Index, c.Origin, err)
	}
	acc.Points += stats.Points
	acc.Leases += stats.Leases
	acc.FromCache += stats.FromCache
	acc.Dispatched += stats.Dispatched
	acc.Inline += stats.Inline
	acc.Retries += stats.Retries
	acc.LostWorker += stats.LostWorker
	ev := Eval{Candidate: c, Trials: trials}
	for _, mv := range res.Points[0].Metrics {
		switch mv.Name {
		case metricName:
			ev.Metric = mv.Value
			ev.Score = obj.Score(mv.Value)
		case "violations":
			if !math.IsNaN(mv.Value) {
				ev.Violations = mv.Value
			}
		}
	}
	return ev, nil
}

// Generate builds the deterministic candidate pool: the base preset
// first, then the warm starts (the other registered presets of the same
// template — hand-coded strategies the search must not lose to), then up
// to half the remaining slots from a coarse grid over the schema (evenly
// subsampled in lexicographic order when the full grid exceeds the
// allotment), then seeded-random assignments until the pool is full.
// Duplicates (random re-draws of a grid point, say) are skipped, so every
// candidate spends its budget on a distinct parameterization.
func Generate(schema adversary.Schema, warm []map[string]scenario.Value, pool int, seed uint64) []Candidate {
	cands := []Candidate{{Index: 0, Origin: "preset"}}
	seen := map[string]bool{}
	add := func(origin string, params map[string]scenario.Value) {
		key := canon(schema, params)
		if seen[key] {
			return
		}
		seen[key] = true
		cands = append(cands, Candidate{Index: len(cands), Origin: origin, Params: params})
	}
	for _, w := range warm {
		if len(cands) < pool {
			add("preset", w)
		}
	}

	grid := gridAssignments(schema)
	gridSlots := (pool - 1) / 2
	if gridSlots > len(grid) {
		gridSlots = len(grid)
	}
	for i := 0; i < gridSlots && len(cands) < pool; i++ {
		// Even subsampling keeps coverage spread over every parameter when
		// the full cartesian grid exceeds the slot allotment.
		add("grid", grid[i*len(grid)/gridSlots])
	}

	rng := xrand.New(seed, 0x5ea2c4) // fixed stream: the seed alone selects the trajectory
	for attempts := 0; len(cands) < pool && attempts < 16*pool; attempts++ {
		add("random", randomAssignment(schema, rng))
	}
	return cands
}

// canon is the dedup key of an assignment: name=value joined in schema
// order (the preset's empty assignment canonicalizes to "").
func canon(schema adversary.Schema, params map[string]scenario.Value) string {
	var sb strings.Builder
	for _, ps := range schema {
		if v, ok := params[ps.Name]; ok {
			sb.WriteString(ps.Name)
			sb.WriteByte('=')
			sb.WriteString(v.Text())
			sb.WriteByte(' ')
		}
	}
	return sb.String()
}

// gridValues picks the coarse per-parameter grid: every enum and bool
// value, and {min, mid, max} for numeric ranges.
func gridValues(ps adversary.ParamSpec) []scenario.Value {
	switch ps.Kind {
	case adversary.KindEnum:
		out := make([]scenario.Value, len(ps.Enum))
		for i, e := range ps.Enum {
			out[i] = scenario.Value{Str: e, IsStr: true}
		}
		return out
	case adversary.KindBool:
		return []scenario.Value{{Num: 0}, {Num: 1}}
	case adversary.KindInt:
		lo, hi := ps.Min, ps.Max
		mid := math.Trunc((lo + hi) / 2)
		vals := []scenario.Value{{Num: lo}}
		if mid != lo && mid != hi {
			vals = append(vals, scenario.Value{Num: mid})
		}
		if hi != lo {
			vals = append(vals, scenario.Value{Num: hi})
		}
		return vals
	default: // KindFloat
		lo, hi := ps.Min, ps.Max
		vals := []scenario.Value{{Num: lo}}
		if hi != lo {
			vals = append(vals, scenario.Value{Num: (lo + hi) / 2}, scenario.Value{Num: hi})
		}
		return vals
	}
}

// gridAssignments is the cartesian product of the per-parameter grids,
// first schema parameter outermost (lexicographic in declaration order).
func gridAssignments(schema adversary.Schema) []map[string]scenario.Value {
	out := []map[string]scenario.Value{{}}
	for _, ps := range schema {
		vals := gridValues(ps)
		next := make([]map[string]scenario.Value, 0, len(out)*len(vals))
		for _, base := range out {
			for _, v := range vals {
				m := make(map[string]scenario.Value, len(base)+1)
				for k, bv := range base {
					m[k] = bv
				}
				m[ps.Name] = v
				next = append(next, m)
			}
		}
		out = next
	}
	return out
}

// randomAssignment draws one full assignment, one parameter at a time in
// schema declaration order (so the draw sequence — and therefore the
// candidate — is a pure function of the RNG state). Floats are quantized
// to 1/16 of their range: coarse enough to dedup well and to keep
// counterexample specs readable.
func randomAssignment(schema adversary.Schema, rng *xrand.PCG) map[string]scenario.Value {
	m := make(map[string]scenario.Value, len(schema))
	for _, ps := range schema {
		switch ps.Kind {
		case adversary.KindEnum:
			m[ps.Name] = scenario.Value{Str: ps.Enum[rng.Intn(len(ps.Enum))], IsStr: true}
		case adversary.KindBool:
			m[ps.Name] = scenario.Value{Num: float64(rng.Intn(2))}
		case adversary.KindInt:
			span := int(ps.Max-ps.Min) + 1
			m[ps.Name] = scenario.Value{Num: ps.Min + float64(rng.Intn(span))}
		default: // KindFloat
			step := (ps.Max - ps.Min) / 16
			m[ps.Name] = scenario.Value{Num: ps.Min + step*float64(rng.Intn(17))}
		}
	}
	return m
}

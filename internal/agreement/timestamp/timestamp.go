// Package timestamp implements Algorithm 4 of the paper: Byzantine
// agreement with absolute timestamps. Every append is stamped by the
// central authority (the Poisson token issuer), giving all appends a unique
// total order visible to every node. A node appends its input value
// whenever granted access, waits until k appends exist, orders them by
// timestamp, and decides on the sign of the sum of the first k values.
//
// This is the paper's best-case baseline (Section 5.1): agreement and
// termination hold deterministically; validity holds with high probability
// with failure probability decaying like exp(-k(n-2t)²/n²) (Theorem 5.2).
package timestamp

import (
	"repro/internal/appendmem"
	"repro/internal/node"
	"repro/internal/xrand"
)

// Rule is the honest-node behaviour of Algorithm 4. It implements
// agreement.HonestRule.
type Rule struct{}

// Append writes the node's input value; no references are needed because
// the authority's timestamps order everything (Algorithm 4 Line 5).
func (Rule) Append(_ appendmem.View, w *appendmem.Writer, input int64, _ *xrand.PCG) {
	w.MustAppend(input, 0, nil)
}

// Decide waits for k appends (Algorithm 4 Line 2), orders all appends by
// timestamp (Line 8) and decides on the sign of the sum of the first k
// (Line 9). The ArrivalOrder accessor is exactly the authority's timestamp
// order; this is the one protocol permitted to use it.
func (Rule) Decide(view appendmem.View, k int, _ *xrand.PCG) (int64, bool) {
	if view.Size() < k {
		return 0, false
	}
	first := view.ArrivalOrder()[:k]
	vals := make([]int64, k)
	for i, msg := range first {
		vals[i] = msg.Value
	}
	return node.SumSign(vals), true
}

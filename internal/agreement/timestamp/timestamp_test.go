package timestamp

import (
	"testing"

	"repro/internal/agreement"
	"repro/internal/appendmem"
	"repro/internal/node"
)

func TestDecideBeforeK(t *testing.T) {
	m := appendmem.New(2)
	m.Writer(0).MustAppend(1, 0, nil)
	if _, ok := (Rule{}).Decide(m.Read(), 3, nil); ok {
		t.Fatal("decided with fewer than k appends")
	}
}

func TestDecideUsesArrivalOrder(t *testing.T) {
	// First 3 arrivals sum to +1; a later burst of -1s must not matter.
	m := appendmem.New(3)
	m.Writer(2).MustAppend(+1, 0, nil) // arrival 0
	m.Writer(0).MustAppend(+1, 0, nil) // arrival 1
	m.Writer(1).MustAppend(-1, 0, nil) // arrival 2
	for i := 0; i < 5; i++ {
		m.Writer(1).MustAppend(-1, 0, nil)
	}
	v, ok := (Rule{}).Decide(m.Read(), 3, nil)
	if !ok || v != +1 {
		t.Fatalf("decide = (%d, %v), want (+1, true)", v, ok)
	}
}

func TestAppendHasNoReferences(t *testing.T) {
	m := appendmem.New(1)
	(Rule{}).Append(m.Read(), m.Writer(0), +1, nil)
	msg := m.Message(0)
	if len(msg.Parents) != 0 {
		t.Fatalf("timestamp append carries references: %v", msg.Parents)
	}
}

func TestNoByzantineAllDecideInput(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		r := agreement.MustRun(agreement.RandomizedConfig{
			N: 10, T: 0, Lambda: 0.5, K: 21, Seed: seed,
		}, Rule{}, agreement.Silent{})
		if !r.Verdict.OK() {
			t.Fatalf("seed %d: verdict = %+v", seed, r.Verdict)
		}
		for _, id := range r.Roster.Correct() {
			if r.Outcome.Decision[id] != +1 {
				t.Fatalf("seed %d: node %d decided %d", seed, id, r.Outcome.Decision[id])
			}
		}
	}
}

func TestAgreementAlwaysHolds(t *testing.T) {
	// Theorem 5.2: agreement and termination are deterministic — the
	// timestamps uniquely determine the first k writes — even under attack.
	for seed := uint64(0); seed < 30; seed++ {
		r := agreement.MustRun(agreement.RandomizedConfig{
			N: 10, T: 4, Lambda: 0.5, K: 5, Seed: seed,
		}, Rule{}, &agreement.ValueFlip{Rule: Rule{}})
		if !r.Verdict.Agreement {
			t.Fatalf("seed %d: agreement failed", seed)
		}
		if !r.Verdict.Termination {
			t.Fatalf("seed %d: termination failed", seed)
		}
	}
}

func TestValidityHighKMargin(t *testing.T) {
	// n-2t = 4 (comfortable margin), k = 41: validity should hold in the
	// vast majority of runs (Theorem 5.2's exponential decay in k).
	fails := 0
	for seed := uint64(0); seed < 20; seed++ {
		r := agreement.MustRun(agreement.RandomizedConfig{
			N: 10, T: 3, Lambda: 0.5, K: 41, Seed: seed,
		}, Rule{}, &agreement.ValueFlip{Rule: Rule{}})
		if !r.Verdict.Validity {
			fails++
		}
	}
	if fails > 2 {
		t.Fatalf("validity failed %d/20 despite wide margin and large k", fails)
	}
}

func TestValidityTightMarginSmallK(t *testing.T) {
	// n-2t = 2, k = 5: the Byzantine nodes win the first-k majority with
	// non-negligible probability — weak validity only.
	fails := 0
	const trials = 40
	for seed := uint64(0); seed < trials; seed++ {
		r := agreement.MustRun(agreement.RandomizedConfig{
			N: 10, T: 4, Lambda: 0.5, K: 5, Seed: seed,
		}, Rule{}, &agreement.ValueFlip{Rule: Rule{}})
		if !r.Verdict.Validity {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("validity never failed at tight margin; weak-validity regime not reproduced")
	}
	if fails > trials/2 {
		t.Fatalf("validity failed %d/%d; correct majority should usually win", fails, trials)
	}
}

func TestValidityImprovesWithK(t *testing.T) {
	failRate := func(k int) int {
		fails := 0
		for seed := uint64(0); seed < 40; seed++ {
			r := agreement.MustRun(agreement.RandomizedConfig{
				N: 10, T: 4, Lambda: 0.5, K: k, Seed: seed,
			}, Rule{}, &agreement.ValueFlip{Rule: Rule{}})
			if !r.Verdict.Validity {
				fails++
			}
		}
		return fails
	}
	small, large := failRate(5), failRate(81)
	if large > small {
		t.Fatalf("failures at k=81 (%d) exceed k=5 (%d); no exponential decay in k", large, small)
	}
	if large > 2 {
		t.Fatalf("validity failed %d/40 at k=81", large)
	}
}

func TestInputsMixedMajorityWins(t *testing.T) {
	// 7 nodes hold +1, 3 hold -1 (all correct): the decision tracks the
	// majority with high probability at large k.
	wins := 0
	for seed := uint64(0); seed < 20; seed++ {
		r := agreement.MustRun(agreement.RandomizedConfig{
			N: 10, T: 0, Lambda: 0.5, K: 41, Seed: seed,
			Inputs: node.SplitInputs(10, 7),
		}, Rule{}, agreement.Silent{})
		if !r.Verdict.Agreement || !r.Verdict.Termination {
			t.Fatalf("seed %d: %+v", seed, r.Verdict)
		}
		if r.Outcome.Decision[0] == +1 {
			wins++
		}
	}
	if wins < 15 {
		t.Fatalf("majority input won only %d/20 runs", wins)
	}
}

// Harness-level tests for bounded-memory windows and trial checkpoints:
// both features must leave every observable of a run untouched (decisions,
// times, counts) while changing only how much state stays resident or how
// much prefix is re-simulated. External test package: the tests drive the
// harness with the real chain/dag rules, which import agreement.
package agreement_test

import (
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/agreement"
	"repro/internal/agreement/chainba"
	"repro/internal/agreement/dagba"
	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// protoCase is one protocol under test, parameterized by confirmation depth
// so the checkpoint tests can sweep it.
type protoCase struct {
	name string
	rule func(confirm int) agreement.HonestRule
}

func windowProtocols() []protoCase {
	return []protoCase{
		{"chain-random", func(c int) agreement.HonestRule {
			return chainba.Rule{TB: chain.RandomTieBreaker{}, Confirm: c}
		}},
		{"chain-first", func(c int) agreement.HonestRule {
			return chainba.Rule{TB: chain.FirstTieBreaker{}, Confirm: c}
		}},
		{"dag-ghost", func(c int) agreement.HonestRule {
			return dagba.Rule{Pivot: dagba.Ghost, Confirm: c}
		}},
		{"dag-longest", func(c int) agreement.HonestRule {
			return dagba.Rule{Pivot: dagba.Longest, Confirm: c}
		}},
	}
}

type advCase struct {
	name string
	adv  func(rule agreement.HonestRule) agreement.Adversary
}

func windowAdversaries() []advCase {
	return []advCase{
		{"silent", func(agreement.HonestRule) agreement.Adversary { return agreement.Silent{} }},
		{"flip", func(rule agreement.HonestRule) agreement.Adversary { return &agreement.ValueFlip{Rule: rule} }},
	}
}

// assertSameResult compares every decision-relevant observable of two runs.
func assertSameResult(t *testing.T, want, got *agreement.Result) {
	t.Helper()
	if want.Verdict != got.Verdict {
		t.Errorf("verdict: want %+v, got %+v", want.Verdict, got.Verdict)
	}
	if want.Grants != got.Grants || want.Duration != got.Duration {
		t.Errorf("grants/duration: want %d/%v, got %d/%v",
			want.Grants, want.Duration, got.Grants, got.Duration)
	}
	if want.TotalAppends != got.TotalAppends || want.CorrectAppends != got.CorrectAppends ||
		want.ByzAppends != got.ByzAppends {
		t.Errorf("appends: want %d/%d/%d, got %d/%d/%d",
			want.TotalAppends, want.CorrectAppends, want.ByzAppends,
			got.TotalAppends, got.CorrectAppends, got.ByzAppends)
	}
	for i := range want.Outcome.Decided {
		if want.Outcome.Decided[i] != got.Outcome.Decided[i] ||
			want.Outcome.Decision[i] != got.Outcome.Decision[i] {
			t.Errorf("node %d outcome: want (%v,%d), got (%v,%d)", i,
				want.Outcome.Decided[i], want.Outcome.Decision[i],
				got.Outcome.Decided[i], got.Outcome.Decision[i])
		}
		if want.DecideTime[i] != got.DecideTime[i] || want.DecideViewSize[i] != got.DecideViewSize[i] {
			t.Errorf("node %d decide at/size: want %v/%d, got %v/%d", i,
				want.DecideTime[i], want.DecideViewSize[i],
				got.DecideTime[i], got.DecideViewSize[i])
		}
	}
}

// assertSameMemory compares the full message streams of two unbounded runs.
func assertSameMemory(t *testing.T, want, got *appendmem.Memory) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("memory length: want %d, got %d", want.Len(), got.Len())
	}
	for id := 0; id < want.Len(); id++ {
		a, b := want.Message(appendmem.MsgID(id)), got.Message(appendmem.MsgID(id))
		if a.Author != b.Author || a.Seq != b.Seq || a.Value != b.Value || len(a.Parents) != len(b.Parents) {
			t.Fatalf("message %d differs: %+v vs %+v", id, a, b)
		}
		for j := range a.Parents {
			if a.Parents[j] != b.Parents[j] {
				t.Fatalf("message %d parent %d differs: %v vs %v", id, j, a.Parents, b.Parents)
			}
		}
	}
}

// TestWindowedMatchesUnbounded: a windowed run must produce exactly the
// decisions, times and counts of the unbounded run with the same seed —
// retirement only drops state nobody can reach any more — while keeping
// strictly fewer messages live.
func TestWindowedMatchesUnbounded(t *testing.T) {
	for _, p := range windowProtocols() {
		for _, a := range windowAdversaries() {
			t.Run(p.name+"/"+a.name, func(t *testing.T) {
				for seed := uint64(1); seed <= 3; seed++ {
					cfg := agreement.RandomizedConfig{
						N: 6, T: 2, Lambda: 1, K: 81, Crashes: 1, Seed: seed,
					}
					rule := p.rule(0)
					full, err := agreement.RunRandomized(cfg, rule, a.adv(rule))
					if err != nil {
						t.Fatal(err)
					}
					wcfg := cfg
					wcfg.Window = 64
					windowed, err := agreement.RunRandomized(wcfg, rule, a.adv(rule))
					if err != nil {
						t.Fatal(err)
					}
					assertSameResult(t, full, windowed)
					if full.MemHighWater != full.TotalAppends {
						t.Errorf("seed %d: unbounded high-water %d != appends %d",
							seed, full.MemHighWater, full.TotalAppends)
					}
					if windowed.MemHighWater >= windowed.TotalAppends {
						t.Errorf("seed %d: windowed run retired nothing (high-water %d, appends %d)",
							seed, windowed.MemHighWater, windowed.TotalAppends)
					}
				}
			})
		}
	}
}

// plainRule is an HonestRule with no reachability floors.
type plainRule struct{}

func (plainRule) Append(_ appendmem.View, w *appendmem.Writer, input int64, _ *xrand.PCG) {
	w.MustAppend(input, 0, nil)
}

func (plainRule) Decide(view appendmem.View, k int, _ *xrand.PCG) (int64, bool) {
	if view.Size() < k {
		return 0, false
	}
	return 1, true
}

// floorlessAdversary appends nothing but also exposes no floors.
type floorlessAdversary struct{}

func (floorlessAdversary) Init(*agreement.Env)  {}
func (floorlessAdversary) OnGrant(access.Grant) {}

// TestWindowRequiresFloors: a windowed run must refuse parties that cannot
// bound their reachable prefix, instead of retiring state under them.
func TestWindowRequiresFloors(t *testing.T) {
	cfg := agreement.RandomizedConfig{N: 4, T: 1, Lambda: 1, K: 5, Seed: 1, Window: 32}
	if _, err := agreement.RunRandomized(cfg, plainRule{}, agreement.Silent{}); err == nil {
		t.Fatal("window accepted a rule without reachability floors")
	}
	rule := chainba.Rule{TB: chain.FirstTieBreaker{}}
	if _, err := agreement.RunRandomized(cfg, rule, floorlessAdversary{}); err == nil {
		t.Fatal("window accepted an adversary without reachability floors")
	}
	// With T = 0 the adversary never appends, so its floors are not needed.
	cfg.T = 0
	if _, err := agreement.RunRandomized(cfg, rule, floorlessAdversary{}); err != nil {
		t.Fatalf("window rejected a floorless adversary with T=0: %v", err)
	}
}

// TestWindowCheckpointValidation pins the mode-compatibility matrix.
func TestWindowCheckpointValidation(t *testing.T) {
	rule := chainba.Rule{TB: chain.FirstTieBreaker{}}
	base := agreement.RandomizedConfig{N: 4, T: 0, Lambda: 1, K: 5, Seed: 1}

	cfg := base
	cfg.Window = -1
	if _, err := agreement.RunRandomized(cfg, rule, agreement.Silent{}); err == nil {
		t.Error("negative window accepted")
	}

	cfg = base
	cfg.Window = 32
	cfg.CheckpointSink = func(*agreement.Checkpoint) {}
	if _, err := agreement.RunRandomized(cfg, rule, agreement.Silent{}); err == nil {
		t.Error("window + checkpoint accepted")
	}

	cfg = base
	cfg.Window = 32
	cfg.StallAtSize = 10
	if _, err := agreement.RunRandomized(cfg, rule, agreement.Silent{}); err == nil {
		t.Error("window + stall accepted")
	}

	cfg = base
	cfg.CheckpointSink = func(*agreement.Checkpoint) {}
	cfg.Trace = trace.New()
	if _, err := agreement.RunRandomized(cfg, rule, agreement.Silent{}); err == nil {
		t.Error("checkpoint + trace accepted")
	}

	cfg = base
	cfg.ResumeFrom = &agreement.Checkpoint{} // wrong node count
	if _, err := agreement.RunRandomized(cfg, rule, agreement.Silent{}); err == nil {
		t.Error("checkpoint for a different node count accepted")
	}
}

// TestCheckpointResumeMatchesScratch: capture a checkpoint at the first
// decision of a confirm-0 run, then verify that every deeper-confirmation
// run resumed from it is observable-for-observable identical to the same
// run simulated from scratch — the whole point of prefix reuse.
func TestCheckpointResumeMatchesScratch(t *testing.T) {
	for _, p := range windowProtocols() {
		t.Run(p.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				cfg := agreement.RandomizedConfig{
					N: 6, T: 2, Lambda: 1, K: 21, Crashes: 1, Seed: seed,
				}
				rule0 := p.rule(0)

				var cp *agreement.Checkpoint
				ccfg := cfg
				ccfg.CheckpointSink = func(c *agreement.Checkpoint) { cp = c }
				captured, err := agreement.RunRandomized(ccfg, rule0, &agreement.ValueFlip{Rule: rule0})
				if err != nil {
					t.Fatal(err)
				}

				// The sink itself must not perturb the run.
				plain, err := agreement.RunRandomized(cfg, rule0, &agreement.ValueFlip{Rule: rule0})
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, plain, captured)
				assertSameMemory(t, plain.Mem, captured.Mem)
				if cp == nil {
					t.Fatalf("seed %d: no decision, no checkpoint", seed)
				}

				for _, confirm := range []int{1, 4} {
					ruleC := p.rule(confirm)
					scratch, err := agreement.RunRandomized(cfg, ruleC, &agreement.ValueFlip{Rule: ruleC})
					if err != nil {
						t.Fatal(err)
					}
					rcfg := cfg
					rcfg.ResumeFrom = cp
					resumed, err := agreement.RunRandomized(rcfg, ruleC, &agreement.ValueFlip{Rule: ruleC})
					if err != nil {
						t.Fatal(err)
					}
					assertSameResult(t, scratch, resumed)
					assertSameMemory(t, scratch.Mem, resumed.Mem)
				}
			}
		})
	}
}

// TestCheckpointConcurrentResume: one checkpoint must serve many resumes
// concurrently (the sweep executor fans confirmation points out across
// workers) — every resume clones the memory, the checkpoint is immutable.
// Run under -race this pins the sharing discipline.
func TestCheckpointConcurrentResume(t *testing.T) {
	cfg := agreement.RandomizedConfig{N: 6, T: 2, Lambda: 1, K: 21, Seed: 7}
	rule0 := dagba.Rule{Pivot: dagba.Ghost}

	var cp *agreement.Checkpoint
	ccfg := cfg
	ccfg.CheckpointSink = func(c *agreement.Checkpoint) { cp = c }
	if _, err := agreement.RunRandomized(ccfg, rule0, &agreement.ValueFlip{Rule: rule0}); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}

	const lanes = 4
	results := make([]*agreement.Result, lanes)
	errs := make([]error, lanes)
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			ruleC := dagba.Rule{Pivot: dagba.Ghost, Confirm: 2}
			rcfg := cfg
			rcfg.ResumeFrom = cp
			results[lane], errs[lane] = agreement.RunRandomized(rcfg, ruleC, &agreement.ValueFlip{Rule: ruleC})
		}(lane)
	}
	wg.Wait()
	for lane := 0; lane < lanes; lane++ {
		if errs[lane] != nil {
			t.Fatal(errs[lane])
		}
		if lane > 0 {
			assertSameResult(t, results[0], results[lane])
			assertSameMemory(t, results[0].Mem, results[lane].Mem)
		}
	}
}

package agreement_test

import (
	"testing"

	"repro/internal/agreement"
	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/node"
	"repro/internal/xrand"
)

// lastValueRule is a deliberately unsafe protocol: it appends its input as
// a root block and decides the value of the newest message it can see as
// soon as k messages exist. Stale views make different nodes decide
// different values almost immediately — the invariant layer must catch it.
type lastValueRule struct{}

func (lastValueRule) Append(view appendmem.View, w *appendmem.Writer, input int64, rng *xrand.PCG) {
	w.MustAppend(input, 0, []appendmem.MsgID{appendmem.None})
}

func (lastValueRule) Decide(view appendmem.View, k int, rng *xrand.PCG) (int64, bool) {
	if view.Size() < k {
		return 0, false
	}
	return view.Message(appendmem.MsgID(view.Size()-1)).Value, true
}

func TestInvariantsCatchUnsafeRule(t *testing.T) {
	iv := agreement.Invariants{} // conflicting-decisions needs no order
	caught := false
	for seed := uint64(1); seed <= 64; seed++ {
		cfg := agreement.RandomizedConfig{
			N: 6, T: 0, Lambda: 1, K: 3, Seed: seed,
			Inputs: node.SplitInputs(6, 3),
		}
		r := agreement.MustRun(cfg, lastValueRule{}, agreement.Silent{})
		vs := iv.Check(r)
		if has := vs.Has(agreement.InvConflictingDecisions); has != !r.Verdict.Agreement {
			t.Fatalf("seed %d: conflicting-decisions=%v but Verdict.Agreement=%v", seed, has, r.Verdict.Agreement)
		}
		if !r.Verdict.Agreement {
			caught = true
		}
	}
	if !caught {
		t.Fatal("the unsafe rule never disagreed in 64 seeds — the test exercises nothing")
	}
}

// chainOrder is the longest-chain canonical order with the first-tip
// analysis tie-break, as the scenario layer binds it.
func chainOrder(v appendmem.View) []appendmem.MsgID {
	tree := chain.Build(v)
	tips := tree.LongestTips()
	if len(tips) == 0 {
		return nil
	}
	return tree.ChainTo(chain.FirstTieBreaker{}.Pick(tips, v, nil))
}

func TestDecidedPrefixViolation(t *testing.T) {
	// Node 0 decides on view [a]; node 1 decides later, when the Byzantine
	// sibling chain [b, c] has overtaken it. Same decision value, but the
	// ordered prefixes the decisions read disagree at position 0.
	mem := appendmem.New(3)
	mem.Writer(0).MustAppend(+1, 0, []appendmem.MsgID{appendmem.None}) // a = id 0
	mem.Writer(2).MustAppend(-1, 0, []appendmem.MsgID{appendmem.None}) // b = id 1
	mem.Writer(2).MustAppend(-1, 0, []appendmem.MsgID{1})              // c = id 2

	roster := node.NewRoster(3, 1)
	o := node.NewOutcome(3)
	o.Decide(0, +1)
	o.Decide(1, +1)

	iv := agreement.Invariants{Order: chainOrder, K: 1, MaxByzFraction: 0.5}
	vs := iv.CheckRun(roster, o, mem, []int{1, 3, 0})
	if !vs.Has(agreement.InvDecidedPrefix) {
		t.Fatalf("decided-prefix disagreement not caught: %v", vs)
	}
	if vs.Has(agreement.InvConflictingDecisions) {
		t.Fatalf("decisions agree, conflicting-decisions must not fire: %v", vs)
	}
}

func TestValidityBoundViolation(t *testing.T) {
	// Both correct nodes decide on an all-Byzantine prefix.
	mem := appendmem.New(3)
	mem.Writer(2).MustAppend(-1, 0, []appendmem.MsgID{appendmem.None})
	mem.Writer(2).MustAppend(-1, 0, []appendmem.MsgID{0})

	roster := node.NewRoster(3, 1)
	o := node.NewOutcome(3)
	o.Decide(0, -1)
	o.Decide(1, -1)

	iv := agreement.Invariants{Order: chainOrder, K: 2, MaxByzFraction: 0.5}
	vs := iv.CheckRun(roster, o, mem, []int{2, 2, 0})
	if !vs.Has(agreement.InvValidityBound) {
		t.Fatalf("validity bound breach not caught: %v", vs)
	}
	if vs.Has(agreement.InvDecidedPrefix) || vs.Has(agreement.InvConflictingDecisions) {
		t.Fatalf("only the validity bound should fire: %v", vs)
	}

	// The same prefix passes with the bound disabled.
	iv.MaxByzFraction = 0
	if vs := iv.CheckRun(roster, o, mem, []int{2, 2, 0}); len(vs) != 0 {
		t.Fatalf("disabled bound still fires: %v", vs)
	}
}

func TestInvariantsCleanRun(t *testing.T) {
	mem := appendmem.New(3)
	mem.Writer(0).MustAppend(+1, 0, []appendmem.MsgID{appendmem.None})
	mem.Writer(1).MustAppend(+1, 0, []appendmem.MsgID{0})

	roster := node.NewRoster(3, 1)
	o := node.NewOutcome(3)
	o.Decide(0, +1)
	o.Decide(1, +1)

	iv := agreement.Invariants{Order: chainOrder, K: 2, MaxByzFraction: 0.5}
	if vs := iv.CheckRun(roster, o, mem, []int{2, 2, 0}); len(vs) != 0 {
		t.Fatalf("clean run reports violations: %v", vs)
	}
}

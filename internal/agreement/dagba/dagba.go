// Package dagba implements Algorithm 6 of the paper: Byzantine agreement
// on the DAG. An honest node, when granted memory access, appends its input
// value referencing *all* tips of its current (up to Δ stale) view — the
// inclusive strategy (Algorithm 6 Lines 5–6) — with the pivot-rule tip as
// selected parent. Once the ordering induced by the pivot chain covers at
// least k values, the node orders the DAG with respect to the pivot chain
// (Line 9) and decides on the sign of the sum of the first k values in the
// ordering (Line 10).
//
// The pivot rule is either GHOST (heaviest subtree, Sompolinsky–Zohar) or
// the longest selected-parent chain (Conflux). Theorem 5.6: validity,
// termination and agreement hold w.h.p. with resilience independent of the
// access rate λ and close to the optimal t < n/2.
package dagba

import (
	"repro/internal/agreement"
	"repro/internal/appendmem"
	"repro/internal/dag"
	"repro/internal/node"
	"repro/internal/xrand"
)

// PivotRule selects how the pivot chain is chosen.
type PivotRule int

// Pivot rules.
const (
	Ghost   PivotRule = iota // heaviest selected-parent subtree
	Longest                  // longest selected-parent chain
)

func (p PivotRule) String() string {
	if p == Ghost {
		return "ghost"
	}
	return "longest"
}

// Pivot returns the pivot chain of d under rule p, oldest first.
func (p PivotRule) Pivot(d *dag.Dag) []appendmem.MsgID {
	if p == Ghost {
		return d.GhostPivot()
	}
	return d.LongestPivot()
}

// Rule is the honest-node behaviour of Algorithm 6. It implements
// agreement.HonestRule.
//
// Confirm is an extension beyond the paper's Algorithm 6: confirmation
// depth. With Confirm = c > 0 a node decides on the first k ordered values
// only once the ordering covers k+c values, making late insertion into the
// decision prefix (Lemma 5.5's attack) land beyond position k.
//
// The zero value is stateless and rebuilds the DAG index on every call.
// The agreement harness instead drives each correct node through
// NewNodeRule, whose per-node cached indexes extend with the node's
// monotonically growing view (see dag.Cached); behaviour is identical
// either way.
type Rule struct {
	Pivot   PivotRule
	Confirm int

	// Per-node incremental indexes, nil in the shared zero value. Appends
	// and decisions hold separate handles because their view streams
	// advance independently.
	app, dec *dag.Cached
}

// NewNodeRule implements agreement.PerNodeState: a copy of the rule with
// fresh per-node index caches.
func (r Rule) NewNodeRule() agreement.HonestRule {
	r.app, r.dec = dag.NewCached(), dag.NewCached()
	return r
}

// index indexes view through c when the rule carries per-node caches, else
// from scratch.
func index(c *dag.Cached, view appendmem.View) *dag.Dag {
	if c != nil {
		return c.At(view)
	}
	return dag.Build(view)
}

// Append references all tips of the node's view, pivot tip first (the
// selected parent), and carries the node's input value.
func (r Rule) Append(view appendmem.View, w *appendmem.Writer, input int64, _ *xrand.PCG) {
	d := index(r.app, view)
	tips := d.Tips()
	if len(tips) == 0 {
		w.MustAppend(input, 0, nil)
		return
	}
	pivot := r.Pivot.Pivot(d)
	pivotTip := pivot[len(pivot)-1]
	parents := make([]appendmem.MsgID, 0, len(tips))
	parents = append(parents, pivotTip)
	for _, tip := range tips {
		if tip != pivotTip {
			parents = append(parents, tip)
		}
	}
	w.MustAppend(input, 0, parents)
}

// Decide fires once the pivot-chain ordering covers at least k values and
// returns the sign of the sum of the first k ordered values.
func (r Rule) Decide(view appendmem.View, k int, _ *xrand.PCG) (int64, bool) {
	d := index(r.dec, view)
	pivot := r.Pivot.Pivot(d)
	vals := d.OrderedValues(pivot, k+r.Confirm)
	if len(vals) < k+r.Confirm {
		return 0, false
	}
	return node.SumSign(vals[:k]), true
}

// Ordering exposes the full decision ordering for a view — used by
// experiments to analyse the Byzantine composition of the first k values
// (Lemma 5.5).
func (r Rule) Ordering(view appendmem.View) []appendmem.MsgID {
	d := index(r.dec, view)
	return d.Linearize(r.Pivot.Pivot(d))
}

// ViewFloor implements agreement.WindowedRule: the smallest id this node's
// future appends or index extensions can reach, over both cached indexes.
// Zero for the stateless shared rule, which caches nothing.
func (r Rule) ViewFloor() int {
	if r.app == nil || r.dec == nil {
		return 0
	}
	f := r.app.Floor()
	if d := r.dec.Floor(); d < f {
		f = d
	}
	return f
}

// CompactTo implements agreement.WindowedRule by compacting both cached
// indexes; the watermark achieved is the smaller of the two.
func (r Rule) CompactTo(w int) int {
	if r.app == nil || r.dec == nil {
		return 0
	}
	wa, wd := r.app.CompactTo(w), r.dec.CompactTo(w)
	if wd < wa {
		wa = wd
	}
	return wa
}

// AppendFloor implements agreement.AppendWindowed: the floor of the
// append-side cache alone, for consumers (the fresh-reading adversary)
// that never exercise the decision path.
func (r Rule) AppendFloor() int {
	if r.app == nil {
		return 0
	}
	return r.app.Floor()
}

// CompactAppendTo implements agreement.AppendWindowed.
func (r Rule) CompactAppendTo(w int) int {
	if r.app == nil {
		return 0
	}
	return r.app.CompactTo(w)
}

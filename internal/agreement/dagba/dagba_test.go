package dagba_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/agreement/chainba"
	"repro/internal/agreement/dagba"
	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/dag"
)

func TestAppendReferencesAllTips(t *testing.T) {
	m := appendmem.New(4)
	g := m.Writer(0).MustAppend(0, 0, nil)
	a := m.Writer(1).MustAppend(1, 0, []appendmem.MsgID{g.ID})
	b := m.Writer(2).MustAppend(2, 0, []appendmem.MsgID{g.ID})
	dagba.Rule{Pivot: dagba.Ghost}.Append(m.Read(), m.Writer(3), +1, nil)
	msg := m.Message(3)
	if len(msg.Parents) != 2 {
		t.Fatalf("parents = %v, want both tips", msg.Parents)
	}
	seen := map[appendmem.MsgID]bool{}
	for _, p := range msg.Parents {
		seen[p] = true
	}
	if !seen[a.ID] || !seen[b.ID] {
		t.Fatalf("parents = %v, want {%d,%d}", msg.Parents, a.ID, b.ID)
	}
}

func TestAppendSelectedParentIsPivotTip(t *testing.T) {
	// Build a DAG where GHOST's pivot tip is the heavier branch.
	m := appendmem.New(4)
	g := m.Writer(0).MustAppend(0, 0, nil)
	m.Writer(1).MustAppend(1, 0, []appendmem.MsgID{g.ID}) // light branch
	b := m.Writer(2).MustAppend(2, 0, []appendmem.MsgID{g.ID})
	heavy := m.Writer(2).MustAppend(3, 0, []appendmem.MsgID{b.ID})
	dagba.Rule{Pivot: dagba.Ghost}.Append(m.Read(), m.Writer(3), +1, nil)
	msg := m.Message(4)
	if msg.Parents[0] != heavy.ID {
		t.Fatalf("selected parent = %d, want pivot tip %d", msg.Parents[0], heavy.ID)
	}
}

func TestAppendOnEmptyView(t *testing.T) {
	m := appendmem.New(1)
	dagba.Rule{Pivot: dagba.Ghost}.Append(m.Read(), m.Writer(0), -1, nil)
	if m.Len() != 1 || len(m.Message(0).Parents) != 0 {
		t.Fatal("empty-view append malformed")
	}
}

func TestDecideNeedsKOrderedValues(t *testing.T) {
	m := appendmem.New(2)
	r := dagba.Rule{Pivot: dagba.Ghost}
	parent := []appendmem.MsgID(nil)
	for i := 0; i < 4; i++ {
		if _, ok := r.Decide(m.Read(), 5, nil); ok {
			t.Fatalf("decided with %d < 5 ordered values", i)
		}
		msg := m.Writer(0).MustAppend(+1, 0, parent)
		parent = []appendmem.MsgID{msg.ID}
	}
	m.Writer(0).MustAppend(+1, 0, parent)
	if v, ok := r.Decide(m.Read(), 5, nil); !ok || v != +1 {
		t.Fatalf("decide = (%d, %v)", v, ok)
	}
}

func TestForkedValuesAreIncluded(t *testing.T) {
	// The DAG's inclusive strategy: a forked (+1) value still counts.
	// g(+1), fork a(+1)/b(-1), then c referencing both with selected
	// parent a. Ordering: g, a, b, c — all four values included.
	m := appendmem.New(3)
	g := m.Writer(0).MustAppend(+1, 0, nil)
	a := m.Writer(1).MustAppend(+1, 0, []appendmem.MsgID{g.ID})
	b := m.Writer(2).MustAppend(-1, 0, []appendmem.MsgID{g.ID})
	m.Writer(0).MustAppend(+1, 0, []appendmem.MsgID{a.ID, b.ID})
	r := dagba.Rule{Pivot: dagba.Ghost}
	order := r.Ordering(m.Read())
	if len(order) != 4 {
		t.Fatalf("ordering = %v, want all 4 blocks", order)
	}
	if order[2] != b.ID {
		t.Fatalf("forked block not included at epoch position: %v", order)
	}
	v, ok := r.Decide(m.Read(), 4, nil)
	if !ok || v != +1 {
		t.Fatalf("decide = (%d, %v)", v, ok)
	}
}

func TestPivotRuleString(t *testing.T) {
	if dagba.Ghost.String() != "ghost" || dagba.Longest.String() != "longest" {
		t.Fatal("dagba.PivotRule.String broken")
	}
}

func TestNoByzantineWorksBothPivots(t *testing.T) {
	for _, pivot := range []dagba.PivotRule{dagba.Ghost, dagba.Longest} {
		for seed := uint64(0); seed < 10; seed++ {
			r := agreement.MustRun(agreement.RandomizedConfig{
				N: 10, T: 0, Lambda: 0.5, K: 21, Seed: seed,
			}, dagba.Rule{Pivot: pivot}, agreement.Silent{})
			if !r.Verdict.OK() {
				t.Fatalf("pivot %v seed %d: %+v", pivot, seed, r.Verdict)
			}
		}
	}
}

// Theorem 5.6 headline: at parameters where the chain collapses
// (t/n = 0.4, λ(n−t) = 6), the DAG still satisfies validity in most runs.
func TestDagSurvivesWhereChainFails(t *testing.T) {
	const trials = 20
	chainFails, dagFails := 0, 0
	for seed := uint64(0); seed < trials; seed++ {
		cr := agreement.MustRun(agreement.RandomizedConfig{
			N: 10, T: 4, Lambda: 1, K: 41, Seed: seed,
		}, chainba.Rule{TB: chain.RandomTieBreaker{}}, &adversary.ChainTieBreaker{})
		if !cr.Verdict.Validity {
			chainFails++
		}
		dr := agreement.MustRun(agreement.RandomizedConfig{
			N: 10, T: 4, Lambda: 1, K: 41, Seed: seed,
		}, dagba.Rule{Pivot: dagba.Ghost}, &adversary.DagChainExtender{Pivot: dagba.Ghost})
		if !dr.Verdict.Validity {
			dagFails++
		}
	}
	if chainFails < trials*3/4 {
		t.Fatalf("chain failed only %d/%d; attack miscalibrated", chainFails, trials)
	}
	if dagFails > trials/2 {
		t.Fatalf("dag failed %d/%d; should survive where chain fails", dagFails, trials)
	}
	if dagFails >= chainFails {
		t.Fatalf("dag (%d fails) not better than chain (%d fails)", dagFails, chainFails)
	}
}

// Theorem 5.6: DAG validity improves with k (the Lemma 5.5 insertion is
// bounded, so larger k dilutes it).
func TestDagValidityImprovesWithK(t *testing.T) {
	failures := func(k int) int {
		fails := 0
		for seed := uint64(0); seed < 20; seed++ {
			r := agreement.MustRun(agreement.RandomizedConfig{
				N: 10, T: 4, Lambda: 1, K: k, Seed: seed,
			}, dagba.Rule{Pivot: dagba.Ghost}, &adversary.DagChainExtender{Pivot: dagba.Ghost})
			if !r.Verdict.Validity {
				fails++
			}
		}
		return fails
	}
	small, large := failures(11), failures(121)
	if large > small {
		t.Fatalf("failures at k=121 (%d) exceed k=11 (%d)", large, small)
	}
}

// λ-independence (Theorem 5.6): unlike the chain, DAG validity at fixed
// t/n stays high across a 20x range of λ.
func TestDagLambdaIndependence(t *testing.T) {
	failures := func(lam float64) int {
		fails := 0
		for seed := uint64(0); seed < 20; seed++ {
			r := agreement.MustRun(agreement.RandomizedConfig{
				N: 10, T: 4, Lambda: lam, K: 81, Seed: seed,
			}, dagba.Rule{Pivot: dagba.Ghost}, &adversary.DagChainExtender{Pivot: dagba.Ghost})
			if !r.Verdict.Validity {
				fails++
			}
		}
		return fails
	}
	slow, fast := failures(0.05), failures(1.0)
	if slow > 4 || fast > 6 {
		t.Fatalf("dag validity failures: lam=0.05 -> %d/20, lam=1.0 -> %d/20", slow, fast)
	}
}

func TestDagPrivateChainInsertsByzantineRuns(t *testing.T) {
	// The DagChainExtender must produce consecutive Byzantine runs in the
	// ordering that exceed what honest interleaving would give.
	r := agreement.MustRun(agreement.RandomizedConfig{
		N: 10, T: 4, Lambda: 1, K: 81, Seed: 7,
	}, dagba.Rule{Pivot: dagba.Ghost}, &adversary.DagChainExtender{Pivot: dagba.Ghost})
	d := dag.Build(r.FinalView)
	order := d.Linearize(d.GhostPivot())
	if len(order) > 81 {
		order = order[:81]
	}
	maxRun, run := 0, 0
	for _, id := range order {
		if r.Roster.IsByzantine(r.FinalView.Message(id).Author) {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if maxRun < 2 {
		t.Fatalf("max Byzantine run = %d; private-chain insertion not visible", maxRun)
	}
}

func TestCrashNodesDoNotBlockDag(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		r := agreement.MustRun(agreement.RandomizedConfig{
			N: 8, Crashes: 3, Lambda: 0.5, K: 15, Seed: seed,
		}, dagba.Rule{Pivot: dagba.Ghost}, agreement.Silent{})
		if !r.Verdict.OK() {
			t.Fatalf("seed %d: %+v", seed, r.Verdict)
		}
	}
}

func TestConfirmDepthDelaysDagDecision(t *testing.T) {
	m := appendmem.New(1)
	r := dagba.Rule{Pivot: dagba.Ghost, Confirm: 3}
	parent := []appendmem.MsgID(nil)
	for i := 0; i < 7; i++ {
		msg := m.Writer(0).MustAppend(+1, 0, parent)
		parent = []appendmem.MsgID{msg.ID}
	}
	if _, ok := r.Decide(m.Read(), 5, nil); ok {
		t.Fatal("decided before k+confirm ordered values")
	}
	m.Writer(0).MustAppend(-1, 0, parent) // 8th: reaches k+confirm
	v, ok := r.Decide(m.Read(), 5, nil)
	if !ok || v != +1 {
		t.Fatalf("decide = (%d,%v); the -1 beyond position k must not count", v, ok)
	}
}

// Package agreement provides the shared execution harness for the
// randomized-access Byzantine agreement protocols of Section 5: the
// timestamp baseline (Algorithm 4), the Chain (Algorithm 5) and the DAG
// (Algorithm 6). The three protocols differ only in how an honest node
// appends and when/how it decides; everything else — the Poisson token
// authority, the bounded-staleness read schedule of synchronous nodes, the
// crash model, outcome collection — is identical and lives here.
//
// # Timing model
//
// Nodes are synchronous with bound Δ (§1.1): the interval between two local
// operations of one node is at most Δ. Reads are free; append access is
// rationed by the Poisson authority (rate λ per node per Δ). The harness
// realizes the synchrony bound as bounded staleness: each correct node
// refreshes its view of the memory every Δ (at a fixed per-node phase) and,
// when granted access, appends based on its most recent refresh. An append
// may therefore reference a view up to Δ old — this is exactly the source
// of honest forks in Theorem 5.4's analysis ("appends by correct nodes
// inside the same interval Δ will be concurrent and therefore generate a
// fork").
//
// Byzantine nodes are bound by nothing except the access rationing: the
// Adversary sees the memory fresh at every instant and appends whatever
// well-formed message it likes when granted access.
package agreement

import (
	"fmt"
	"math"

	"repro/internal/access"
	"repro/internal/appendmem"
	"repro/internal/node"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// trialScratch is the reusable per-run state: the simulator (whose event
// heap keeps its high-water-mark capacity across runs) and the per-node
// scratch slices. Pooled via scratchPool — a runner.Pool, whose slots are
// retained across GC cycles, unlike sync.Pool's — so trial fan-outs on
// the persistent worker pool reuse warmed-up capacity instead of
// re-growing it every run; everything in it is re-initialized by
// RunRandomized, and nothing in it escapes into the returned Result (the
// Memory, which does escape, is never pooled).
type trialScratch struct {
	sim      *sim.Sim
	lastView []appendmem.View
	crashAt  []sim.Time
	rules    []HonestRule
	rngs     []*xrand.PCG
	readAt   []sim.Time
	readFns  []func()
}

var scratchPool = runner.NewPool(func() *trialScratch {
	return &trialScratch{sim: sim.New()}
})

// release zeroes the scratch (dropping references into the run's Memory and
// rule state) and returns it to the pool.
func (ts *trialScratch) release() {
	ts.sim.Reset()
	for i := range ts.lastView {
		ts.lastView[i] = appendmem.View{}
	}
	for i := range ts.rules {
		ts.rules[i] = nil
	}
	for i := range ts.rngs {
		ts.rngs[i] = nil
	}
	for i := range ts.readFns {
		ts.readFns[i] = nil
	}
	ts.lastView = ts.lastView[:0]
	ts.crashAt = ts.crashAt[:0]
	ts.rules = ts.rules[:0]
	ts.rngs = ts.rngs[:0]
	ts.readAt = ts.readAt[:0]
	ts.readFns = ts.readFns[:0]
	scratchPool.Put(ts)
}

// RandomizedConfig configures one run under randomized memory access.
type RandomizedConfig struct {
	N      int     // total nodes
	T      int     // Byzantine nodes (the last T ids)
	Lambda float64 // token rate per node per Delta
	// Rates, when non-nil, gives each node its own token rate per Delta —
	// heterogeneous "hashing power". Overrides Lambda; len must equal N.
	Rates []float64
	Delta float64 // synchrony bound; 0 means 1.0
	K     int     // decision threshold (number of values); should be odd
	Seed  uint64

	// Inputs are the per-node input values; nil means all correct nodes
	// hold +1 (the all-same-validity workload, with Byzantine inputs
	// irrelevant).
	Inputs node.Inputs

	// Crashes marks this many correct nodes crash-faulty; each stops at a
	// uniformly random time within the expected run duration.
	Crashes int

	// MaxAppends aborts the run (termination failure) once the memory
	// holds this many messages; 0 means 64*K + 64*N.
	MaxAppends int

	// FreshHonestReads removes the Δ staleness of honest nodes: appends
	// use a view read at the grant instant. This is an ablation knob — it
	// deletes the fork source of Theorem 5.4's analysis, so the chain's
	// rate-dependent collapse should disappear (experiment E12).
	FreshHonestReads bool

	// StallAtSize > 0 injects the temporal asynchrony discussed at the end
	// of Section 5.3: once the memory reaches StallAtSize messages, honest
	// nodes stop refreshing their views (and deciding) for StallFor·Δ,
	// while Byzantine nodes keep reading fresh. The paper argues this
	// reduces the DAG's Byzantine-agreement resilience — unlike Nakamoto
	// consensus, the decision prefix is fixed, so the adversary stuffs it
	// during the blackout (experiment E11).
	StallAtSize int
	StallFor    float64 // in multiples of Delta; 0 means 8

	// RoundRobinAccess replaces the Poisson token authority with the
	// burst-free deterministic round-robin authority at the same aggregate
	// rate — the access-discipline ablation of experiment E17.
	RoundRobinAccess bool

	// AsyncDelayMax > 0 makes the honest nodes asynchronous in the sense
	// of Theorem 5.1: the time between receiving an access token and
	// performing the append is no longer negligible but uniform in
	// (0, AsyncDelayMax·Δ], and the append is made against the view the
	// node held when the token arrived. The access order defined by the
	// authority then loses its meaning ("the delays are significantly
	// larger than the append rate, such that the access order ... becomes
	// insignificant"), and deterministic agreement degrades at ANY rate —
	// experiment E16.
	AsyncDelayMax float64

	// Topology, when non-nil, replaces the uniform Δ visibility of honest
	// nodes with propagation over an explicit network graph: every append
	// is flooded from its author (per-link delays shaped by
	// TopologyDelay, latencies in simulator time units), and a correct
	// node's refreshed view is the maximal fully-arrived prefix tracked
	// by access.Visibility instead of the whole memory. Appends still
	// land in the shared memory instantly — the topology delays who can
	// *see* them, which is where the paper's Δ assumption actually bites.
	// The adversary remains omniscient (fresh reads), the strongest
	// setting. The graph must have exactly N nodes and be connected. Nil
	// keeps the original code path untouched, byte for byte.
	Topology *topology.Graph
	// TopologyDelay shapes per-link transmission delays when Topology is
	// set; the zero value is the fixed distribution.
	TopologyDelay topology.DelayModel

	// Trace, when non-nil, records every grant, append, read, decision,
	// crash and blackout of the run (see internal/trace). Nil disables
	// tracing with no overhead.
	Trace *trace.Recorder

	// Window > 0 runs the memory in windowed (bounded-live) mode: every Δ
	// the harness computes the reachability watermark — the minimum
	// ViewFloor over all still-appending parties, keeping at least Window
	// messages live — compacts every party's index to it, and retires the
	// memory chunks below it back to the slab pool. Decisions are
	// unchanged; reads below the watermark panic. Requires the rule and
	// the adversary to implement WindowedRule/WindowedAdversary, and is
	// incompatible with Topology, AsyncDelayMax, StallAtSize and
	// checkpointing. 0 keeps the unbounded memory, byte for byte.
	Window int

	// CheckpointSink, when non-nil, receives the run's Checkpoint captured
	// immediately before the first decision commits (never called when no
	// node decides). ResumeFrom, when non-nil, fast-forwards the run from
	// such a checkpoint instead of simulating the shared prefix — valid
	// only when this run is guaranteed identical to the capturing run up
	// to the capture instant (e.g. the same spec with a deeper
	// confirmation). Both are incompatible with Topology, AsyncDelayMax,
	// StallAtSize, Trace and Window.
	CheckpointSink func(*Checkpoint)
	ResumeFrom     *Checkpoint
}

func (c *RandomizedConfig) fill() error {
	if c.Delta == 0 {
		c.Delta = 1
	}
	if c.N <= 0 || c.T < 0 || c.T >= c.N {
		return fmt.Errorf("agreement: invalid n=%d t=%d", c.N, c.T)
	}
	if c.Rates != nil {
		if len(c.Rates) != c.N {
			return fmt.Errorf("agreement: %d rates for %d nodes", len(c.Rates), c.N)
		}
		total := 0.0
		for _, r := range c.Rates {
			if r <= 0 {
				return fmt.Errorf("agreement: non-positive per-node rate %v", r)
			}
			total += r
		}
		c.Lambda = total / float64(c.N) // effective mean rate, for durations
	}
	if c.Lambda <= 0 || c.Delta <= 0 {
		return fmt.Errorf("agreement: invalid lambda=%v delta=%v", c.Lambda, c.Delta)
	}
	if c.K <= 0 {
		return fmt.Errorf("agreement: invalid k=%d", c.K)
	}
	if c.MaxAppends == 0 {
		c.MaxAppends = 64*c.K + 64*c.N
	}
	if c.StallAtSize > 0 && c.StallFor == 0 {
		c.StallFor = 8
	}
	if c.Inputs == nil {
		c.Inputs = node.AllSame(c.N, +1)
	}
	if len(c.Inputs) != c.N {
		return fmt.Errorf("agreement: %d inputs for %d nodes", len(c.Inputs), c.N)
	}
	if c.Topology != nil {
		if c.Topology.N() != c.N {
			return fmt.Errorf("agreement: topology has %d nodes for %d", c.Topology.N(), c.N)
		}
		if !c.Topology.Connected() {
			return fmt.Errorf("agreement: topology is disconnected")
		}
	}
	if c.Window < 0 {
		return fmt.Errorf("agreement: negative window %d", c.Window)
	}
	checkpointing := c.CheckpointSink != nil || c.ResumeFrom != nil
	if c.Window > 0 || checkpointing {
		if c.Topology != nil || c.AsyncDelayMax > 0 || c.StallAtSize > 0 {
			return fmt.Errorf("agreement: window/checkpoint modes require the default timing model (no topology, async delays or stalls)")
		}
	}
	if c.Window > 0 && checkpointing {
		return fmt.Errorf("agreement: window and checkpointing are mutually exclusive (a windowed memory cannot be cloned)")
	}
	if checkpointing && c.Trace.Enabled() {
		return fmt.Errorf("agreement: checkpointing is incompatible with tracing")
	}
	if cp := c.ResumeFrom; cp != nil {
		if len(cp.NodeRngs) != c.N || len(cp.CrashAt) != c.N || len(cp.ReadAt) != c.N || len(cp.ViewSizes) != c.N {
			return fmt.Errorf("agreement: checkpoint captured for a different node count")
		}
	}
	return nil
}

// HonestRule is the protocol-specific behaviour of a correct node.
type HonestRule interface {
	// Append performs the node's append given its (possibly stale) view.
	// Implementations must append exactly once via w.
	Append(view appendmem.View, w *appendmem.Writer, input int64, rng *xrand.PCG)
	// Decide inspects the node's freshly read view and returns the node's
	// decision when the protocol's condition (e.g. a longest chain of
	// length k) is met.
	Decide(view appendmem.View, k int, rng *xrand.PCG) (int64, bool)
}

// PerNodeState is optionally implemented by HonestRules that keep per-node
// incremental state — e.g. cached substrate indexes that extend with the
// node's monotonically growing view instead of rebuilding per read.
// RunRandomized calls NewNodeRule once per correct node and drives that
// node exclusively through the returned instance; a rule without it is
// shared, stateless, across all nodes. The returned rule must decide and
// append exactly like the original: per-node state is a performance
// vehicle, never a behavioural one.
type PerNodeState interface {
	NewNodeRule() HonestRule
}

// nodeRule returns the per-node instance of rule when it keeps per-node
// state, else rule itself.
func nodeRule(rule HonestRule) HonestRule {
	if f, ok := rule.(PerNodeState); ok {
		return f.NewNodeRule()
	}
	return rule
}

// Env is the run environment handed to adversaries: full fresh access to
// the memory, the roster and the configuration.
type Env struct {
	Sim    *sim.Sim
	Mem    *appendmem.Memory
	Roster node.Roster
	Cfg    RandomizedConfig
	Rng    *xrand.PCG // the adversary's private randomness
	// Inputs as handed to the nodes (the adversary knows everything).
	Inputs node.Inputs
}

// Writer returns the append capability of a Byzantine node. It panics when
// asked for a correct node's writer — the adversary controls only its own
// registers.
func (e *Env) Writer(id appendmem.NodeID) *appendmem.Writer {
	if !e.Roster.IsByzantine(id) {
		panic("agreement: adversary requested an honest writer")
	}
	return e.Mem.Writer(id)
}

// Adversary drives the Byzantine nodes. OnGrant is invoked whenever the
// authority grants access to a Byzantine node; the adversary may use the
// grant, bank it, or waste it.
type Adversary interface {
	Init(env *Env)
	OnGrant(g access.Grant)
}

// Silent is the adversary that never appends (Byzantine nodes crash-mute).
type Silent struct{}

// Init implements Adversary.
func (Silent) Init(*Env) {}

// OnGrant implements Adversary.
func (Silent) OnGrant(access.Grant) {}

// ValueFlip is the generic adversary of the validity analyses: Byzantine
// nodes follow the honest structure rule — but always vote the opposite of
// the correct nodes' common input, and with a perfectly fresh view (no
// staleness handicap).
type ValueFlip struct {
	Rule  HonestRule
	Value int64      // the vote to cast; 0 means -1
	rule  HonestRule // per-run instance (fresh caches), set by Init
	env   *Env
}

// Init implements Adversary.
func (a *ValueFlip) Init(env *Env) {
	a.env = env
	// The adversary reads fresh on every grant, so one per-run rule
	// instance sees monotonically growing views and can reuse its index.
	a.rule = nodeRule(a.Rule)
	if a.Value == 0 {
		a.Value = -1
	}
}

// OnGrant implements Adversary.
func (a *ValueFlip) OnGrant(g access.Grant) {
	a.rule.Append(a.env.Mem.Read(), a.env.Writer(g.Node), a.Value, a.env.Rng)
}

// Result collects everything an experiment wants from one run.
type Result struct {
	Cfg     RandomizedConfig // the filled configuration the run used
	Roster  node.Roster
	Inputs  node.Inputs
	Outcome *node.Outcome
	Verdict node.Verdict

	Grants         int // tokens issued
	TotalAppends   int
	CorrectAppends int
	ByzAppends     int

	// DecideTime[i] is when node i decided (correct nodes only; zero when
	// undecided).
	DecideTime []sim.Time
	// DecideViewSize[i] is the size of the view node i decided on; with
	// Memory.ViewAt it reconstructs each node's exact decision view for
	// post-hoc analysis (e.g. the backbone common-prefix property).
	DecideViewSize []int
	// FinalView is the memory at the end of the run, for structure
	// analysis by experiments.
	FinalView appendmem.View
	// Mem is the underlying memory; combined with DecideViewSize it
	// reconstructs per-node decision views via Mem.ViewAt.
	Mem *appendmem.Memory
	// Duration is the virtual time when the run ended.
	Duration sim.Time
	// VisMeanLag is the mean propagation lag of appends over the
	// topology (0 under the default uniform-Δ visibility).
	VisMeanLag float64
	// MemHighWater is the peak number of live (unretired) messages over
	// the run — equal to TotalAppends for an unbounded memory, bounded
	// near Cfg.Window in windowed mode.
	MemHighWater int
}

// RunRandomized executes one protocol run and returns its Result.
func RunRandomized(cfg RandomizedConfig, rule HonestRule, adv Adversary) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed, 0xA11CE)
	rngAuthority := root.Split()
	rngAdv := root.Split()
	scratch := scratchPool.Get()
	defer scratch.release()
	nodeRngs := runner.Resize(scratch.rngs, cfg.N)
	scratch.rngs = nodeRngs
	for i := range nodeRngs {
		nodeRngs[i] = root.Split()
	}
	// The visibility rng split is gated on Topology so the default path
	// consumes root in exactly the historical order — goldens depend on it.
	var rngVis *xrand.PCG
	if cfg.Topology != nil {
		rngVis = root.Split()
	}
	// Resuming: every rng stream restarts at the exact draw it had reached
	// at capture; root's own draws (crash times, read phases) are replaced
	// by the captured values below.
	resume := cfg.ResumeFrom
	if resume != nil {
		rngAuthority = xrand.Restore(resume.AuthorityRng)
		rngAdv = xrand.Restore(resume.AdversaryRng)
		for i := range nodeRngs {
			nodeRngs[i] = xrand.Restore(resume.NodeRngs[i])
		}
	}

	s := scratch.sim
	var mem *appendmem.Memory
	switch {
	case resume != nil:
		mem = resume.Mem.Clone()
		s.StartAt(resume.Now)
	case cfg.Window > 0:
		mem = appendmem.NewBounded(cfg.N, windowChunk(cfg.Window))
	default:
		mem = appendmem.New(cfg.N)
	}
	roster := node.NewRoster(cfg.N, cfg.T).WithCrashes(cfg.Crashes)
	outcome := node.NewOutcome(cfg.N)
	result := &Result{
		Cfg:            cfg,
		Roster:         roster,
		Inputs:         cfg.Inputs,
		Outcome:        outcome,
		DecideTime:     make([]sim.Time, cfg.N),
		DecideViewSize: make([]int, cfg.N),
	}

	// Expected run duration: K appends at aggregate rate Nλ/Δ, doubled for
	// slack; used only to place crash times.
	expDuration := sim.Time(2 * float64(cfg.K) * cfg.Delta / (cfg.Lambda * float64(cfg.N)))
	crashAt := runner.Resize(scratch.crashAt, cfg.N)
	scratch.crashAt = crashAt
	for i := range crashAt {
		crashAt[i] = sim.Time(math.Inf(1))
		if roster.Role(appendmem.NodeID(i)) == node.Crash {
			crashAt[i] = sim.Time(root.Float64()) * expDuration
		}
	}
	if resume != nil {
		copy(crashAt, resume.CrashAt)
	}
	alive := func(id appendmem.NodeID) bool { return s.Now() < crashAt[id] }

	lastView := runner.Resize(scratch.lastView, cfg.N)
	scratch.lastView = lastView
	for i := range lastView {
		lastView[i] = mem.ViewAt(0)
		if resume != nil {
			lastView[i] = mem.ViewAt(resume.ViewSizes[i])
		}
	}

	// Topology-aware visibility: honest reads become per-node arrival
	// prefixes; syncVis floods newly landed appends after every append
	// site. Both stay nil/no-op on the default path.
	var vis *access.Visibility
	if cfg.Topology != nil {
		vis = access.NewVisibility(s, rngVis, cfg.Topology, cfg.TopologyDelay, mem)
	}
	syncVis := func() {
		if vis != nil {
			vis.Sync()
		}
	}
	readView := func(id appendmem.NodeID) appendmem.View {
		if vis != nil {
			return vis.ViewFor(id)
		}
		return mem.Read()
	}

	// Per-node rule instances: a correct node's views grow monotonically
	// over the run, so a rule with per-node state (cached substrate
	// indexes) extends one index per node instead of rebuilding per step.
	nodeRules := runner.Resize(scratch.rules, cfg.N)
	scratch.rules = nodeRules
	for i := range nodeRules {
		if !roster.IsByzantine(appendmem.NodeID(i)) {
			nodeRules[i] = nodeRule(rule)
		}
	}

	// Windowed mode: every party that can still append must expose a
	// reachability floor, or no retirement bound exists.
	var winRules []WindowedRule
	var winAdv WindowedAdversary
	if cfg.Window > 0 {
		winRules = make([]WindowedRule, cfg.N)
		for i, r := range nodeRules {
			if r == nil {
				continue
			}
			wr, ok := r.(WindowedRule)
			if !ok {
				return nil, fmt.Errorf("agreement: window requires a rule with reachability floors; %T has none", rule)
			}
			winRules[i] = wr
		}
		if cfg.T > 0 {
			wa, ok := adv.(WindowedAdversary)
			if !ok {
				return nil, fmt.Errorf("agreement: window requires an adversary with reachability floors; %T has none", adv)
			}
			winAdv = wa
		}
	}
	if resume != nil {
		result.Grants = resume.Grants
	}

	// Only non-crash correct nodes are expected to decide; crash nodes may
	// stop at any time and are excluded from the consensus properties.
	undecided := len(roster.Correct())
	done := false
	finish := func() {
		if !done {
			done = true
			s.Stop()
		}
	}
	// Hard horizon: even a silent adversary with crashed correct nodes must
	// not spin the run forever.
	s.At(64*expDuration+sim.Time(64*cfg.Delta), finish)

	env := &Env{Sim: s, Mem: mem, Roster: roster, Cfg: cfg, Rng: rngAdv, Inputs: cfg.Inputs}
	adv.Init(env)

	// Windowed retirement: every Δ, take the minimum reachability floor
	// over the parties that can still append (decided and dead nodes never
	// append again), keep at least Window messages live, compact every
	// index to the watermark and retire the memory below it. Consumes no
	// randomness and registers no events unless Window > 0, so the default
	// path is untouched.
	if cfg.Window > 0 {
		var retire func()
		retire = func() {
			if done {
				return
			}
			w := mem.Len() - cfg.Window
			for i := 0; i < cfg.N && w > mem.Watermark(); i++ {
				id := appendmem.NodeID(i)
				if winRules[i] == nil || !alive(id) || outcome.Decided[id] {
					continue
				}
				if f := winRules[i].ViewFloor(); f < w {
					w = f
				}
			}
			if winAdv != nil && w > mem.Watermark() {
				if f := winAdv.ViewFloor(); f < w {
					w = f
				}
			}
			if w > mem.Watermark() {
				for _, wr := range winRules {
					if wr != nil {
						wr.CompactTo(w)
					}
				}
				if winAdv != nil {
					winAdv.CompactTo(w)
				}
				mem.Retire(w)
			}
			s.After(sim.Time(cfg.Delta), retire)
		}
		s.After(sim.Time(cfg.Delta), retire)
	}

	// Temporal-asynchrony injection (§5.3 discussion): honest view
	// refreshes blackout for StallFor·Δ once the memory reaches
	// StallAtSize.
	stallUntil := sim.Time(-1)
	stallFired := false
	maybeStall := func() {
		if cfg.StallAtSize > 0 && !stallFired && mem.Len() >= cfg.StallAtSize {
			stallFired = true
			stallUntil = s.Now() + sim.Time(cfg.StallFor*cfg.Delta)
			cfg.Trace.Record(trace.Event{At: s.Now(), Kind: trace.StallStart, Node: trace.System,
				Note: fmt.Sprintf("honest views blacked out until %.3f", float64(stallUntil))})
			s.At(stallUntil, func() {
				cfg.Trace.Record(trace.Event{At: s.Now(), Kind: trace.StallEnd, Node: trace.System})
			})
		}
	}

	// Crash events for the trace.
	if cfg.Trace.Enabled() {
		for i := range crashAt {
			if roster.Role(appendmem.NodeID(i)) == node.Crash {
				id := appendmem.NodeID(i)
				s.At(crashAt[i], func() {
					cfg.Trace.Record(trace.Event{At: s.Now(), Kind: trace.Crash, Node: id})
				})
			}
		}
	}
	recordAppends := func(before int, note string) {
		if !cfg.Trace.Enabled() {
			return
		}
		for l := before; l < mem.Len(); l++ {
			msg := mem.Message(appendmem.MsgID(l))
			cfg.Trace.Record(trace.Event{At: s.Now(), Kind: trace.Append, Node: msg.Author,
				Msg: msg.ID, Val: msg.Value, Note: note})
		}
	}

	onGrant := func(g access.Grant) {
		if done {
			return
		}
		result.Grants++
		id := g.Node
		cfg.Trace.Record(trace.Event{At: s.Now(), Kind: trace.Grant, Node: id})
		before := mem.Len()
		switch {
		case roster.IsByzantine(id):
			adv.OnGrant(g)
			recordAppends(before, "byzantine")
		case alive(id):
			if !outcome.Decided[id] { // Algorithm 5/6: stop appending after deciding
				view := lastView[id]
				if cfg.FreshHonestReads {
					view = readView(id)
				}
				if cfg.AsyncDelayMax > 0 {
					// Asynchronous node: the append lands after an
					// arbitrary delay, committed to the view held at
					// token receipt.
					delay := sim.Time(nodeRngs[id].Float64() * cfg.AsyncDelayMax * cfg.Delta)
					s.After(delay, func() {
						if done || !alive(id) {
							return
						}
						b := mem.Len()
						nodeRules[id].Append(view, mem.Writer(id), cfg.Inputs[id], nodeRngs[id])
						recordAppends(b, "delayed")
						syncVis()
						maybeStall()
						if mem.Len() >= cfg.MaxAppends {
							finish()
						}
					})
				} else {
					nodeRules[id].Append(view, mem.Writer(id), cfg.Inputs[id], nodeRngs[id])
					recordAppends(before, "")
				}
			}
		}
		syncVis()
		maybeStall()
		if mem.Len() >= cfg.MaxAppends {
			finish()
		}
	}
	type authorityIface interface {
		Start()
		Stop()
		Issued() int
		NextAt() sim.Time
		ResumeAt(seq int, at sim.Time)
	}
	var authority authorityIface
	switch {
	case cfg.Rates != nil:
		authority = access.NewWeightedPoissonAuthority(s, rngAuthority, cfg.Rates, cfg.Delta, onGrant)
	case cfg.RoundRobinAccess:
		authority = access.NewRoundRobinAuthority(s, cfg.N, cfg.Lambda, cfg.Delta, onGrant)
	default:
		authority = access.NewPoissonAuthority(s, rngAuthority, cfg.N, cfg.Lambda, cfg.Delta, onGrant)
	}

	// Checkpoint capture, armed until the first decision. The snapshot is
	// taken inside the deciding node's read event but represents the state
	// just before it fired: the node's rng is captured pre-Decide (the
	// resumed run replays the event, re-consuming those draws), its
	// pending read is still at the event's own instant, and no decision
	// has been recorded anywhere.
	armCheckpoint := cfg.CheckpointSink != nil
	capture := func(id appendmem.NodeID, pre xrand.State) *Checkpoint {
		cp := &Checkpoint{
			Mem:          mem.Clone(),
			Now:          s.Now(),
			Grants:       result.Grants,
			AuthoritySeq: authority.Issued(),
			AuthorityAt:  authority.NextAt(),
			AuthorityRng: rngAuthority.State(),
			AdversaryRng: rngAdv.State(),
			NodeRngs:     make([]xrand.State, cfg.N),
			CrashAt:      append([]sim.Time(nil), crashAt...),
			ReadAt:       append([]sim.Time(nil), scratch.readAt...),
			ViewSizes:    make([]int, cfg.N),
		}
		for i := range nodeRngs {
			cp.NodeRngs[i] = nodeRngs[i].State()
		}
		cp.NodeRngs[id] = pre
		for i := range lastView {
			cp.ViewSizes[i] = lastView[i].Size()
		}
		return cp
	}

	// Per-node read schedule: refresh view and attempt decision every Δ at
	// a fixed per-node phase. Each node gets ONE closure for the whole run;
	// rescheduling re-queues that same func value, so the steady state of
	// the read loop allocates nothing.
	readAt := runner.Resize(scratch.readAt, cfg.N)
	scratch.readAt = readAt
	readFns := runner.Resize(scratch.readFns, cfg.N)
	scratch.readFns = readFns
	for i := 0; i < cfg.N; i++ {
		id := appendmem.NodeID(i)
		if roster.IsByzantine(id) {
			continue
		}
		readFns[id] = func() {
			if done || !alive(id) || roster.IsByzantine(id) {
				return
			}
			if s.Now() < stallUntil {
				// Blacked out: no refresh, no decision; try again later.
				readAt[id] += sim.Time(cfg.Delta)
				s.At(readAt[id], readFns[id])
				return
			}
			lastView[id] = readView(id)
			cfg.Trace.Record(trace.Event{At: s.Now(), Kind: trace.Read, Node: id})
			if !outcome.Decided[id] {
				var preDecide xrand.State
				if armCheckpoint {
					preDecide = nodeRngs[id].State()
				}
				if v, ok := nodeRules[id].Decide(lastView[id], cfg.K, nodeRngs[id]); ok {
					if armCheckpoint {
						armCheckpoint = false
						cfg.CheckpointSink(capture(id, preDecide))
					}
					outcome.Decide(id, v)
					result.DecideTime[id] = s.Now()
					result.DecideViewSize[id] = lastView[id].Size()
					cfg.Trace.Record(trace.Event{At: s.Now(), Kind: trace.Decide, Node: id, Val: v})
					if roster.IsCorrect(id) {
						undecided--
						if undecided == 0 {
							finish()
							return
						}
					}
				}
			}
			readAt[id] += sim.Time(cfg.Delta)
			s.At(readAt[id], readFns[id])
		}
	}
	for i := 0; i < cfg.N; i++ {
		id := appendmem.NodeID(i)
		if roster.IsByzantine(id) {
			continue
		}
		if resume != nil {
			// Re-register each node's pending read at its captured instant.
			// A node that crashed before the capture had already dropped
			// out of the read loop; leave it out.
			if !alive(id) {
				continue
			}
			readAt[id] = resume.ReadAt[id]
		} else {
			readAt[id] = sim.Time(root.Float64() * cfg.Delta)
		}
		s.At(readAt[id], readFns[id])
	}

	if resume != nil {
		authority.ResumeAt(resume.AuthoritySeq, resume.AuthorityAt)
	} else {
		authority.Start()
	}
	s.Run()
	authority.Stop()

	result.FinalView = mem.Read()
	result.Mem = mem
	result.Duration = s.Now()
	result.TotalAppends = mem.Len()
	result.MemHighWater = mem.LiveHighWater()
	// Per-author counts come from the register lengths — identical to
	// scanning the messages, but valid over a windowed memory too.
	for i := 0; i < cfg.N; i++ {
		id := appendmem.NodeID(i)
		if roster.IsByzantine(id) {
			result.ByzAppends += mem.RegisterLen(id)
		} else {
			result.CorrectAppends += mem.RegisterLen(id)
		}
	}
	if vis != nil {
		result.VisMeanLag = vis.MeanLag()
	}
	result.Verdict = node.Evaluate(roster, cfg.Inputs, outcome)
	return result, nil
}

// MustRun is RunRandomized but panics on configuration errors; for
// experiment code with vetted configs.
func MustRun(cfg RandomizedConfig, rule HonestRule, adv Adversary) *Result {
	r, err := RunRandomized(cfg, rule, adv)
	if err != nil {
		panic(err)
	}
	return r
}

// Package syncba implements Algorithm 1 of the paper: deterministic
// Byzantine agreement in the append memory with synchronous nodes
// (Section 3). In each of t+1 rounds every node appends its input value
// together with a reference to the set L_{r-1} of round-(r−1) appends it
// read; after the last round a value is *accepted* if it is backed by a
// chain of t+1 distinct nodes — its author plus t round-by-round
// supporters — and each node decides on the majority of accepted values.
//
// The package also contains the machinery for the matching lower bound
// (Lemma 3.1): a Byzantine node can delay its round-r append into the
// crack between two correct nodes' round-r reads, so that only a subset of
// the nodes sees it that round. The DelayedChain adversary uses exactly
// this power to keep the system bivalent for t rounds; running the
// protocol with fewer than t+1 rounds therefore breaks agreement, and with
// t+1 rounds it does not (Theorem 3.2, for t < n/2).
package syncba

import (
	"fmt"
	"sort"

	"repro/internal/access"
	"repro/internal/appendmem"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Config configures one synchronous run.
type Config struct {
	N, T   int
	Rounds int     // 0 means T+1 (the protocol's correct round count)
	Delta  float64 // synchrony bound; 0 means 1.0
	Seed   uint64
	// Inputs are the per-node inputs (±1); nil means all correct hold +1.
	Inputs node.Inputs
	// Crashes marks this many correct nodes crash-faulty; each stops after
	// a uniformly random round.
	Crashes int
	// Trace, when non-nil, records round starts, appends, reads and
	// decisions (see internal/trace).
	Trace *trace.Recorder
}

func (c *Config) fill() error {
	if c.Delta == 0 {
		c.Delta = 1
	}
	if c.N <= 0 || c.N > 64 || c.T < 0 || c.T >= c.N {
		return fmt.Errorf("syncba: invalid n=%d t=%d (need 0 < n <= 64, t < n)", c.N, c.T)
	}
	if c.Rounds == 0 {
		c.Rounds = c.T + 1
	}
	if c.Rounds < 1 {
		return fmt.Errorf("syncba: invalid rounds=%d", c.Rounds)
	}
	if c.Inputs == nil {
		c.Inputs = node.AllSame(c.N, +1)
	}
	if len(c.Inputs) != c.N {
		return fmt.Errorf("syncba: %d inputs for %d nodes", len(c.Inputs), c.N)
	}
	return nil
}

// Env is the environment handed to synchronous adversaries: the memory
// (fresh reads at any instant), the round clock (including every node's
// exact read instants — the paper's adversary picks the subset of nodes
// that will see its append, which requires knowing the read schedule), the
// roster and all inputs.
type Env struct {
	Sim    *sim.Sim
	Mem    *appendmem.Memory
	Clock  *access.RoundClock
	Roster node.Roster
	Cfg    Config
	Rng    *xrand.PCG
}

// Writer returns the append capability of a Byzantine node; it panics for
// honest ids.
func (e *Env) Writer(id appendmem.NodeID) *appendmem.Writer {
	if !e.Roster.IsByzantine(id) {
		panic("syncba: adversary requested an honest writer")
	}
	return e.Mem.Writer(id)
}

// CorrectReadTimes returns the sorted round-r read instants of the correct
// nodes — the "cracks" a delayed append can target.
func (e *Env) CorrectReadTimes(r int) []sim.Time {
	var ts []sim.Time
	for _, id := range e.Roster.Correct() {
		ts = append(ts, e.Clock.ReadTime(id, r))
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

// Adversary drives the Byzantine nodes of a synchronous run. Round is
// invoked at the start of every round; the adversary schedules its appends
// on env.Sim at whatever instants it likes.
type Adversary interface {
	Init(env *Env)
	Round(r int)
}

// Silent is the adversary whose Byzantine nodes never append.
type Silent struct{}

// Init implements Adversary.
func (Silent) Init(*Env) {}

// Round implements Adversary.
func (Silent) Round(int) {}

// Result collects the outcome of one synchronous run.
type Result struct {
	Roster   node.Roster
	Inputs   node.Inputs
	Outcome  *node.Outcome
	Verdict  node.Verdict
	Rounds   int
	Duration sim.Time
	// AcceptedSum[i] is the sum of the values node i accepted (correct
	// nodes only); exposes *why* decisions differ when agreement breaks.
	AcceptedSum []int64
	FinalView   appendmem.View
}

// Run executes Algorithm 1 (with a possibly truncated round count) against
// the given adversary and returns the result.
func Run(cfg Config, adv Adversary) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed, 0x5C7BA)
	s := sim.New()
	mem := appendmem.New(cfg.N)
	clock := access.NewRoundClock(root.Split(), cfg.N, cfg.Delta)
	roster := node.NewRoster(cfg.N, cfg.T).WithCrashes(cfg.Crashes)
	outcome := node.NewOutcome(cfg.N)
	result := &Result{
		Roster:      roster,
		Inputs:      cfg.Inputs,
		Outcome:     outcome,
		Rounds:      cfg.Rounds,
		AcceptedSum: make([]int64, cfg.N),
	}

	crashRound := make([]int, cfg.N)
	for i := range crashRound {
		crashRound[i] = cfg.Rounds + 1
		if roster.Role(appendmem.NodeID(i)) == node.Crash {
			crashRound[i] = 1 + root.Intn(cfg.Rounds)
		}
	}

	env := &Env{Sim: s, Mem: mem, Clock: clock, Roster: roster, Cfg: cfg, Rng: root.Split()}
	adv.Init(env)

	// lastL[i] holds node i's L_{r-1}: the round-(r−1) appends it saw at
	// its round-(r−1) read (L_0 = ∅).
	lastL := make([][]appendmem.MsgID, cfg.N)

	for r := 1; r <= cfg.Rounds; r++ {
		r := r
		s.At(clock.RoundStart(r), func() {
			cfg.Trace.Record(trace.Event{At: s.Now(), Kind: trace.RoundStart, Node: trace.System,
				Note: fmt.Sprintf("round %d", r)})
			adv.Round(r)
		})
		for i := 0; i < cfg.N; i++ {
			id := appendmem.NodeID(i)
			if roster.IsByzantine(id) {
				continue
			}
			if r >= crashRound[i] {
				continue
			}
			// Line 2: M.append(val(v), L_{r-1}).
			s.At(clock.AppendTime(id, r), func() {
				msg := mem.Writer(id).MustAppend(cfg.Inputs[id], r, lastL[id])
				cfg.Trace.Record(trace.Event{At: s.Now(), Kind: trace.Append, Node: id,
					Msg: msg.ID, Val: msg.Value})
			})
			// Lines 3-4: wait Δ, read; L_r := round-r appends seen.
			s.At(clock.ReadTime(id, r), func() {
				view := mem.Read()
				cfg.Trace.Record(trace.Event{At: s.Now(), Kind: trace.Read, Node: id})
				var lr []appendmem.MsgID
				for _, msg := range view.ByRound(r) {
					lr = append(lr, msg.ID)
				}
				lastL[id] = lr
				if r == cfg.Rounds {
					// Lines 6-7: accept and decide on the majority.
					accepted := AcceptedValues(view, cfg.Rounds)
					var sum int64
					for _, v := range accepted {
						sum += v
					}
					result.AcceptedSum[id] = sum
					outcome.Decide(id, node.Sign(sum))
					cfg.Trace.Record(trace.Event{At: s.Now(), Kind: trace.Decide, Node: id, Val: node.Sign(sum)})
				}
			})
		}
	}

	s.Run()
	result.FinalView = mem.Read()
	result.Duration = s.Now()
	result.Verdict = node.Evaluate(roster, cfg.Inputs, outcome)
	return result, nil
}

// MustRun is Run but panics on configuration errors.
func MustRun(cfg Config, adv Adversary) *Result {
	r, err := Run(cfg, adv)
	if err != nil {
		panic(err)
	}
	return r
}

// AcceptedValues implements Algorithm 1 Line 6 on a view: a round-1 value
// val(v) is accepted when the view contains a chain of `rounds` distinct
// nodes — the author plus one supporter per subsequent round, each
// referencing the previous link. Every accepted round-1 message
// contributes its value once.
func AcceptedValues(view appendmem.View, rounds int) []int64 {
	msgs := view.Messages()
	// supports[id] lists the messages of round r+1 referencing message id
	// of round r.
	supports := make(map[appendmem.MsgID][]*appendmem.Message)
	for _, msg := range msgs {
		for _, p := range msg.Parents {
			if p == appendmem.None {
				continue
			}
			parent := view.Message(p)
			if parent != nil && msg.Round == parent.Round+1 {
				supports[p] = append(supports[p], msg)
			}
		}
	}

	type key struct {
		id   appendmem.MsgID
		used uint64
	}
	memo := make(map[key]bool)
	// chainFrom reports whether a support chain of the given remaining
	// length exists starting at msg, avoiding authors in used.
	var chainFrom func(msg *appendmem.Message, used uint64, remaining int) bool
	chainFrom = func(msg *appendmem.Message, used uint64, remaining int) bool {
		if remaining == 0 {
			return true
		}
		k := key{msg.ID, used}
		if v, ok := memo[k]; ok {
			return v
		}
		ok := false
		for _, next := range supports[msg.ID] {
			bit := uint64(1) << uint(next.Author)
			if used&bit != 0 {
				continue
			}
			if chainFrom(next, used|bit, remaining-1) {
				ok = true
				break
			}
		}
		memo[k] = ok
		return ok
	}

	var accepted []int64
	for _, msg := range msgs {
		if msg.Round != 1 {
			continue
		}
		if chainFrom(msg, uint64(1)<<uint(msg.Author), rounds-1) {
			accepted = append(accepted, msg.Value)
		}
	}
	return accepted
}

package syncba

import (
	"testing"

	"repro/internal/appendmem"
	"repro/internal/node"
	"repro/internal/trace"
)

// balancedInputs gives the correct nodes a +1 majority of exactly one
// (requires an odd number of correct nodes), the knife's edge where a
// single hidden Byzantine value flips the decision.
func balancedInputs(n, t int) node.Inputs {
	c := n - t
	if c%2 == 0 {
		panic("balancedInputs needs an odd number of correct nodes")
	}
	return node.SplitInputs(n, (c+1)/2)
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 0, T: 0},
		{N: 65, T: 0}, // author bitmask limit
		{N: 4, T: 4},
		{N: 4, T: -1},
		{N: 4, T: 1, Rounds: -1},
		{N: 4, T: 1, Inputs: node.AllSame(3, 1)},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, Silent{}); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestDefaultRoundsIsTPlusOne(t *testing.T) {
	r := MustRun(Config{N: 5, T: 2, Seed: 1}, Silent{})
	if r.Rounds != 3 {
		t.Fatalf("rounds = %d, want t+1 = 3", r.Rounds)
	}
}

func TestDurationIsLinearInRounds(t *testing.T) {
	// Theorem 3.2: O(tΔ) time. The run must finish within (t+1)·Δ.
	r := MustRun(Config{N: 5, T: 3, Delta: 2.0, Seed: 1}, Silent{})
	if float64(r.Duration) > float64(r.Rounds)*2.0 {
		t.Fatalf("duration %v exceeds rounds·Δ = %v", r.Duration, float64(r.Rounds)*2.0)
	}
}

func TestNoFaultsAllDecideInput(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		r := MustRun(Config{N: 6, T: 0, Rounds: 1, Seed: seed}, Silent{})
		if !r.Verdict.OK() {
			t.Fatalf("seed %d: %+v", seed, r.Verdict)
		}
		for _, id := range r.Roster.Correct() {
			if r.Outcome.Decision[id] != +1 {
				t.Fatalf("node %d decided %d", id, r.Outcome.Decision[id])
			}
		}
	}
}

func TestCrashFailuresToleratedInOneRound(t *testing.T) {
	// Section 3: "agreement with crash failures can be solved in the
	// append memory with synchronous nodes within one round only" — all
	// appends that reach the memory are visible to everyone.
	for seed := uint64(0); seed < 10; seed++ {
		r := MustRun(Config{N: 7, T: 0, Rounds: 1, Crashes: 3, Seed: seed}, Silent{})
		if !r.Verdict.OK() {
			t.Fatalf("seed %d: %+v", seed, r.Verdict)
		}
	}
}

func TestSilentByzantineHarmless(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		r := MustRun(Config{N: 7, T: 3, Seed: seed}, Silent{})
		if !r.Verdict.OK() {
			t.Fatalf("seed %d: %+v", seed, r.Verdict)
		}
	}
}

// Lemma 3.1 / the t+1 lower bound: under the DelayedChain adversary with a
// balanced input assignment, every truncated round count r ≤ t breaks
// agreement, and the full t+1 rounds never does.
func TestRoundLowerBoundStaircase(t *testing.T) {
	cases := []struct{ n, tt int }{{4, 1}, {5, 2}, {8, 3}}
	for _, tc := range cases {
		for rounds := 1; rounds <= tc.tt+1; rounds++ {
			fails := 0
			const trials = 20
			for seed := uint64(0); seed < trials; seed++ {
				r := MustRun(Config{
					N: tc.n, T: tc.tt, Rounds: rounds, Seed: seed,
					Inputs: balancedInputs(tc.n, tc.tt),
				}, &DelayedChain{})
				if !r.Verdict.Agreement {
					fails++
				}
			}
			if rounds <= tc.tt && fails == 0 {
				t.Errorf("n=%d t=%d rounds=%d: agreement never failed; lower bound not exercised",
					tc.n, tc.tt, rounds)
			}
			if rounds == tc.tt+1 && fails != 0 {
				t.Errorf("n=%d t=%d rounds=%d: agreement failed %d/%d at t+1 rounds",
					tc.n, tc.tt, rounds, fails, trials)
			}
		}
	}
}

// Theorem 3.2: with t+1 rounds the protocol solves Byzantine agreement for
// t < n/2 and collapses at t >= n/2 under the LoudFlip adversary.
func TestResilienceThresholdHalf(t *testing.T) {
	failures := func(n, tt int) int {
		fails := 0
		for seed := uint64(0); seed < 15; seed++ {
			r := MustRun(Config{N: n, T: tt, Seed: seed}, &LoudFlip{})
			if !r.Verdict.OK() {
				fails++
			}
		}
		return fails
	}
	if got := failures(9, 4); got != 0 { // t < n/2
		t.Errorf("t=4 < n/2=4.5: %d/15 failures", got)
	}
	if got := failures(9, 5); got != 15 { // t > n/2
		t.Errorf("t=5 > n/2: only %d/15 failures", got)
	}
	if got := failures(8, 4); got != 15 { // t = n/2 (sign convention -1)
		t.Errorf("t=n/2: only %d/15 failures", got)
	}
}

func TestDelayedChainHarmlessWithFullRounds(t *testing.T) {
	// Validity-flavoured check too: all-correct-same inputs, full rounds.
	for seed := uint64(0); seed < 15; seed++ {
		r := MustRun(Config{N: 7, T: 3, Seed: seed}, &DelayedChain{})
		if !r.Verdict.OK() {
			t.Fatalf("seed %d: %+v", seed, r.Verdict)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		return MustRun(Config{N: 8, T: 3, Rounds: 3, Seed: 42, Inputs: balancedInputs(8, 3)}, &DelayedChain{})
	}
	a, b := run(), run()
	for i := range a.Outcome.Decision {
		if a.Outcome.Decision[i] != b.Outcome.Decision[i] || a.Outcome.Decided[i] != b.Outcome.Decided[i] {
			t.Fatal("decisions differ across identical runs")
		}
	}
	if a.FinalView.Size() != b.FinalView.Size() {
		t.Fatal("memory sizes differ across identical runs")
	}
}

func TestAcceptedValuesChainLogic(t *testing.T) {
	// Hand-built view, n=4, rounds=2. Value of node 0 supported by node 1;
	// value of node 3 unsupported.
	m := appendmem.New(4)
	v0 := m.Writer(0).MustAppend(+1, 1, nil)
	m.Writer(3).MustAppend(-1, 1, nil)
	m.Writer(1).MustAppend(+1, 2, []appendmem.MsgID{v0.ID})
	got := AcceptedValues(m.Read(), 2)
	if len(got) != 1 || got[0] != +1 {
		t.Fatalf("accepted = %v, want [+1]", got)
	}
}

func TestAcceptedValuesDistinctAuthors(t *testing.T) {
	// A chain that reuses an author must not count: node 0's value
	// "supported" by node 0 itself across rounds.
	m := appendmem.New(2)
	v0 := m.Writer(0).MustAppend(+1, 1, nil)
	m.Writer(0).MustAppend(+1, 2, []appendmem.MsgID{v0.ID})
	if got := AcceptedValues(m.Read(), 2); len(got) != 0 {
		t.Fatalf("self-supported chain accepted: %v", got)
	}
	// With a distinct supporter it counts.
	m2 := appendmem.New(2)
	w0 := m2.Writer(0).MustAppend(+1, 1, nil)
	m2.Writer(1).MustAppend(+1, 2, []appendmem.MsgID{w0.ID})
	if got := AcceptedValues(m2.Read(), 2); len(got) != 1 {
		t.Fatalf("properly supported chain rejected: %v", got)
	}
}

func TestAcceptedValuesRoundGaps(t *testing.T) {
	// A supporter must be exactly one round later; a round-3 message
	// referencing a round-1 message is not a valid link for rounds=2... it
	// is simply not a link at all.
	m := appendmem.New(3)
	v0 := m.Writer(0).MustAppend(+1, 1, nil)
	m.Writer(1).MustAppend(+1, 3, []appendmem.MsgID{v0.ID})
	if got := AcceptedValues(m.Read(), 2); len(got) != 0 {
		t.Fatalf("round-gap chain accepted: %v", got)
	}
}

func TestAcceptedSumExposed(t *testing.T) {
	r := MustRun(Config{N: 5, T: 0, Rounds: 1, Seed: 3}, Silent{})
	for _, id := range r.Roster.Correct() {
		if r.AcceptedSum[id] != 5 {
			t.Fatalf("node %d accepted sum %d, want 5", id, r.AcceptedSum[id])
		}
	}
}

func TestSyncTraceRecordsRounds(t *testing.T) {
	rec := trace.New()
	r := MustRun(Config{N: 5, T: 1, Seed: 4, Trace: rec}, &LoudFlip{})
	sum := rec.Summary()
	if sum[trace.RoundStart] != r.Rounds {
		t.Fatalf("round-start events = %d, want %d", sum[trace.RoundStart], r.Rounds)
	}
	// 4 correct nodes append each round; the adversary's appends go
	// through env.Writer directly (not traced by the runner).
	if sum[trace.Append] != 4*r.Rounds {
		t.Fatalf("append events = %d, want %d", sum[trace.Append], 4*r.Rounds)
	}
	if sum[trace.Decide] != 4 {
		t.Fatalf("decide events = %d, want 4", sum[trace.Decide])
	}
}

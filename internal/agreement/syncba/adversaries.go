package syncba

import (
	"repro/internal/appendmem"
	"repro/internal/sim"
)

// DelayedChain is the Lemma 3.1 lower-bound adversary. A different
// Byzantine node acts in each round r ≤ t, building a chain of Byzantine
// messages that is hidden from every correct node until the final round:
// each link is appended *after* all correct round-r reads (so it never
// enters any correct L_r and is never referenced by correct nodes), except
// the last link, which is appended *between* two correct nodes' final
// reads. The nodes that read late accept the Byzantine value; the nodes
// that read early do not.
//
// Running Algorithm 1 with rounds ≤ t therefore splits the accepted sets
// and — with a balanced input assignment — the decisions. With the full
// t+1 rounds the chain cannot be completed by Byzantine authors alone
// (only t of them exist), so either a correct node joins the chain (making
// it visible to everyone one round before the end) or the value is
// accepted by nobody; agreement survives, exactly as the paper's Theorem
// 3.2 argues.
type DelayedChain struct {
	// Value is the vote the Byzantine chain carries; 0 means -1.
	Value int64
	env   *Env
	prev  appendmem.MsgID // last chain link appended
}

// Init implements Adversary.
func (a *DelayedChain) Init(env *Env) {
	a.env = env
	a.prev = appendmem.None
	if a.Value == 0 {
		a.Value = -1
	}
}

// Round schedules the round-r chain link.
func (a *DelayedChain) Round(r int) {
	byz := a.env.Roster.Byzantines()
	if r > len(byz) {
		return // out of distinct Byzantine authors; chain cannot grow
	}
	author := byz[r-1]
	env := a.env

	var at sim.Time
	reads := env.CorrectReadTimes(r)
	if r < env.Cfg.Rounds {
		// Hide the link: append after every correct round-r read but still
		// within round r.
		roundEnd := env.Clock.RoundStart(r + 1)
		last := reads[len(reads)-1]
		at = last + (roundEnd-last)/2
	} else {
		// Final round: split the correct readers down the middle.
		if len(reads) < 2 {
			return // nobody to split
		}
		m := len(reads) / 2
		at = reads[m-1] + (reads[m]-reads[m-1])/2
	}

	round := r
	env.Sim.At(at, func() {
		var parents []appendmem.MsgID
		if a.prev != appendmem.None {
			parents = []appendmem.MsgID{a.prev}
		}
		msg := env.Writer(author).MustAppend(a.Value, round, parents)
		a.prev = msg.ID
	})
}

// LoudFlip is the brute-force validity adversary: every Byzantine node
// appends the flipped value (−1) in every round, on the honest schedule,
// referencing the previous round's appends like a correct node would. All
// Byzantine values are seen, supported and accepted by everyone, so the
// decision is the sign of (n−t)·(+1) + t·(−1) — validity survives exactly
// when the correct nodes outnumber the Byzantine ones (Theorem 3.2's
// t < n/2).
type LoudFlip struct {
	// Value is the vote to cast; 0 means -1.
	Value int64
	env   *Env
}

// Init implements Adversary.
func (a *LoudFlip) Init(env *Env) {
	a.env = env
	if a.Value == 0 {
		a.Value = -1
	}
}

// Round schedules one on-time append per Byzantine node.
func (a *LoudFlip) Round(r int) {
	env := a.env
	round := r
	for _, id := range env.Roster.Byzantines() {
		id := id
		env.Sim.At(env.Clock.AppendTime(id, r), func() {
			var parents []appendmem.MsgID
			for _, msg := range env.Mem.Read().ByRound(round - 1) {
				parents = append(parents, msg.ID)
			}
			env.Writer(id).MustAppend(a.Value, round, parents)
		})
	}
}

package agreement

import (
	"fmt"

	"repro/internal/appendmem"
	"repro/internal/node"
)

// This file is the invariant hook layer: named safety checks evaluated on
// a finished randomized run. The checks re-derive safety from the run's
// raw material — the outcome vector, the memory, and each node's recorded
// decision-view size — independently of the harness's own Verdict, so a
// harness bug cannot hide a violation, and the adversary-search loop
// (internal/search) can treat "a violation occurred" as an objective and
// promote the violating seed into a committed regression scenario.

// Invariant names, as reported in Violation.Invariant.
const (
	// InvConflictingDecisions: two correct nodes decided different values.
	InvConflictingDecisions = "conflicting-decisions"
	// InvDecidedPrefix: two correct nodes decided on k-prefixes that
	// disagree — the append-memory orderings their decisions read were
	// not prefix-consistent.
	InvDecidedPrefix = "decided-prefix"
	// InvValidityBound: the Byzantine share of a decided k-prefix exceeds
	// the configured bound (the resilience arguments need a correct
	// majority of every decided prefix).
	InvValidityBound = "validity-bound"
)

// Violation is one invariant failure on one run.
type Violation struct {
	Invariant string // one of the Inv* names
	Detail    string // human-readable specifics (nodes, values, positions)
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Violations is a reported violation list.
type Violations []Violation

// Has reports whether a named invariant fired.
func (vs Violations) Has(invariant string) bool {
	for _, v := range vs {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

// Invariants bundles the safety checks with their protocol-specific
// inputs. The conflicting-decisions check always runs; Order enables the
// decided-prefix and validity-bound checks (nil disables them — e.g. the
// timestamp protocol has no structural order to re-derive).
type Invariants struct {
	// Order linearizes a view into the protocol's canonical message
	// order (longest chain walk, pivot linearization, ...). It must be
	// deterministic: post-hoc analysis has no protocol RNG.
	Order func(v appendmem.View) []appendmem.MsgID
	// K is the decision threshold: the checks compare the first K ordered
	// messages of each node's decision view (0 means the whole order).
	K int
	// MaxByzFraction bounds the Byzantine share of any decided k-prefix;
	// 0 disables the validity-bound check.
	MaxByzFraction float64
}

// Check evaluates the invariants on one randomized-harness result.
func (iv Invariants) Check(r *Result) Violations {
	return iv.CheckRun(r.Roster, r.Outcome, r.Mem, r.DecideViewSize)
}

// CheckRun is Check over the raw run material, for callers holding a
// scenario-level result instead of an agreement.Result. At most one
// violation per invariant is reported — the first found, so output is
// deterministic and small.
func (iv Invariants) CheckRun(roster node.Roster, o *node.Outcome, mem *appendmem.Memory, decideViewSize []int) Violations {
	var out Violations
	correct := roster.Correct()

	// Conflicting decisions: all decided correct nodes must agree.
	first := appendmem.NodeID(-1)
	for _, id := range correct {
		if !o.Decided[id] {
			continue
		}
		if first < 0 {
			first = id
		} else if o.Decision[id] != o.Decision[first] {
			out = append(out, Violation{InvConflictingDecisions,
				fmt.Sprintf("node %d decided %+d, node %d decided %+d",
					first, o.Decision[first], id, o.Decision[id])})
			break
		}
	}

	if iv.Order == nil || mem == nil || decideViewSize == nil {
		return out
	}

	// Reconstruct each decided node's k-prefix from its exact decision
	// view (Memory.ViewAt is a prefix view; the sizes were recorded at
	// decision time).
	type prefix struct {
		node appendmem.NodeID
		vals []int64
		byz  int
	}
	var prefixes []prefix
	for _, id := range correct {
		if !o.Decided[id] {
			continue
		}
		view := mem.ViewAt(decideViewSize[id])
		order := iv.Order(view)
		if iv.K > 0 && len(order) > iv.K {
			order = order[:iv.K]
		}
		p := prefix{node: id, vals: make([]int64, len(order))}
		for j, mid := range order {
			m := view.Message(mid)
			p.vals[j] = m.Value
			if roster.IsByzantine(m.Author) {
				p.byz++
			}
		}
		prefixes = append(prefixes, p)
	}

	// Decided-prefix agreement: every pair of decided prefixes must agree
	// value-for-value (comparing to the first suffices for a witness).
	if len(prefixes) > 1 {
		base := prefixes[0]
	scan:
		for _, p := range prefixes[1:] {
			n := len(base.vals)
			if len(p.vals) < n {
				n = len(p.vals)
			}
			for j := 0; j < n; j++ {
				if p.vals[j] != base.vals[j] {
					out = append(out, Violation{InvDecidedPrefix,
						fmt.Sprintf("nodes %d and %d disagree at ordered position %d (%+d vs %+d)",
							base.node, p.node, j, base.vals[j], p.vals[j])})
					break scan
				}
			}
			if len(p.vals) != len(base.vals) {
				out = append(out, Violation{InvDecidedPrefix,
					fmt.Sprintf("nodes %d and %d decided on prefixes of different length (%d vs %d)",
						base.node, p.node, len(base.vals), len(p.vals))})
				break
			}
		}
	}

	// Validity bound: the Byzantine share of every decided prefix.
	if iv.MaxByzFraction > 0 {
		for _, p := range prefixes {
			if len(p.vals) == 0 {
				continue
			}
			if f := float64(p.byz) / float64(len(p.vals)); f > iv.MaxByzFraction {
				out = append(out, Violation{InvValidityBound,
					fmt.Sprintf("node %d decided on a prefix with Byzantine share %.2f > %.2f",
						p.node, f, iv.MaxByzFraction)})
				break
			}
		}
	}
	return out
}

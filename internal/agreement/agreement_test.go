package agreement

import (
	"testing"

	"repro/internal/access"
	"repro/internal/appendmem"
	"repro/internal/node"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// countRule is a trivial HonestRule: append the input with no references,
// decide +1 once the view holds k messages. Exercises the runner mechanics
// without protocol logic.
type countRule struct{}

func (countRule) Append(_ appendmem.View, w *appendmem.Writer, input int64, _ *xrand.PCG) {
	w.MustAppend(input, 0, nil)
}

func (countRule) Decide(view appendmem.View, k int, _ *xrand.PCG) (int64, bool) {
	if view.Size() < k {
		return 0, false
	}
	return 1, true
}

func TestRunnerBasic(t *testing.T) {
	r, err := RunRandomized(RandomizedConfig{N: 5, Lambda: 1, K: 11, Seed: 1}, countRule{}, Silent{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verdict.OK() {
		t.Fatalf("verdict = %+v", r.Verdict)
	}
	if r.TotalAppends < 11 {
		t.Fatalf("appends = %d, want >= 11", r.TotalAppends)
	}
	if r.ByzAppends != 0 {
		t.Fatalf("byz appends = %d with t=0", r.ByzAppends)
	}
	for _, id := range r.Roster.Correct() {
		if r.DecideTime[id] <= 0 {
			t.Fatalf("node %d has no decide time", id)
		}
	}
}

func TestRunnerConfigValidation(t *testing.T) {
	bad := []RandomizedConfig{
		{N: 0, Lambda: 1, K: 1},
		{N: 3, T: 3, Lambda: 1, K: 1}, // t must be < n
		{N: 3, T: -1, Lambda: 1, K: 1},
		{N: 3, Lambda: 0, K: 1},
		{N: 3, Lambda: 1, K: 0},
		{N: 3, Lambda: 1, K: 1, Inputs: node.AllSame(2, 1)}, // wrong input length
	}
	for i, cfg := range bad {
		if _, err := RunRandomized(cfg, countRule{}, Silent{}); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRunnerDeterminism(t *testing.T) {
	run := func() *Result {
		r, err := RunRandomized(RandomizedConfig{N: 6, T: 2, Lambda: 0.7, K: 15, Seed: 99}, countRule{}, &ValueFlip{Rule: countRule{}})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.TotalAppends != b.TotalAppends || a.Grants != b.Grants || a.Duration != b.Duration {
		t.Fatalf("nondeterministic: %d/%d/%v vs %d/%d/%v",
			a.TotalAppends, a.Grants, a.Duration, b.TotalAppends, b.Grants, b.Duration)
	}
	for i := range a.DecideTime {
		if a.DecideTime[i] != b.DecideTime[i] {
			t.Fatalf("decide time %d differs", i)
		}
	}
	am, bm := a.FinalView.Messages(), b.FinalView.Messages()
	for i := range am {
		if am[i].Author != bm[i].Author || am[i].Value != bm[i].Value {
			t.Fatalf("memory content differs at %d", i)
		}
	}
}

func TestRunnerSeedsDiffer(t *testing.T) {
	mk := func(seed uint64) *Result {
		return MustRun(RandomizedConfig{N: 6, Lambda: 0.7, K: 15, Seed: seed}, countRule{}, Silent{})
	}
	if mk(1).Duration == mk(2).Duration {
		t.Fatal("different seeds gave identical durations (suspicious)")
	}
}

func TestRunnerByzantineAppendsCounted(t *testing.T) {
	r := MustRun(RandomizedConfig{N: 6, T: 2, Lambda: 1, K: 21, Seed: 3}, countRule{}, &ValueFlip{Rule: countRule{}})
	if r.ByzAppends == 0 {
		t.Fatal("ValueFlip adversary appended nothing")
	}
	if r.CorrectAppends+r.ByzAppends != r.TotalAppends {
		t.Fatal("append accounting inconsistent")
	}
	// ByzAppends should be roughly t/n of the total.
	frac := float64(r.ByzAppends) / float64(r.TotalAppends)
	if frac < 0.1 || frac > 0.6 {
		t.Fatalf("byz append fraction = %v, expected near 1/3", frac)
	}
}

func TestRunnerSilentAdversary(t *testing.T) {
	r := MustRun(RandomizedConfig{N: 6, T: 2, Lambda: 1, K: 11, Seed: 4}, countRule{}, Silent{})
	if r.ByzAppends != 0 {
		t.Fatalf("Silent adversary appended %d times", r.ByzAppends)
	}
	if !r.Verdict.OK() {
		t.Fatalf("verdict = %+v", r.Verdict)
	}
}

func TestRunnerCrashes(t *testing.T) {
	r := MustRun(RandomizedConfig{N: 8, Crashes: 3, Lambda: 1, K: 11, Seed: 5}, countRule{}, Silent{})
	if !r.Verdict.OK() {
		t.Fatalf("crashes broke consensus for the survivors: %+v", r.Verdict)
	}
	if len(r.Roster.Correct()) != 5 {
		t.Fatalf("correct = %d, want 5", len(r.Roster.Correct()))
	}
}

func TestRunnerHorizonTerminates(t *testing.T) {
	// All correct nodes crash immediately-ish and the adversary is silent:
	// nothing ever decides, yet the run must end (hard horizon).
	r := MustRun(RandomizedConfig{N: 3, Crashes: 3, Lambda: 0.5, K: 1000, Seed: 6}, countRule{}, Silent{})
	if len(r.Roster.Correct()) != 0 {
		t.Fatal("expected all correct nodes crashed")
	}
	_ = r // reaching here is the assertion
}

func TestRunnerMaxAppendsAborts(t *testing.T) {
	// K unreachable before MaxAppends: termination must fail, run must end.
	r := MustRun(RandomizedConfig{N: 4, Lambda: 1, K: 1 << 20, MaxAppends: 50, Seed: 7}, countRule{}, Silent{})
	if r.Verdict.Termination {
		t.Fatal("termination verdict true despite abort")
	}
	if r.TotalAppends < 50 || r.TotalAppends > 60 {
		t.Fatalf("aborted at %d appends, want about 50", r.TotalAppends)
	}
}

func TestEnvWriterGuards(t *testing.T) {
	var captured *Env
	grab := adversaryFunc{
		init: func(e *Env) { captured = e },
	}
	MustRun(RandomizedConfig{N: 4, T: 1, Lambda: 1, K: 5, Seed: 8}, countRule{}, grab)
	if captured == nil {
		t.Fatal("Init not called")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("adversary obtained an honest writer")
		}
	}()
	captured.Writer(0) // node 0 is honest
}

// adversaryFunc adapts closures to the Adversary interface.
type adversaryFunc struct {
	init    func(*Env)
	onGrant func(access.Grant)
}

func (a adversaryFunc) Init(e *Env) {
	if a.init != nil {
		a.init(e)
	}
}

func (a adversaryFunc) OnGrant(g access.Grant) {
	if a.onGrant != nil {
		a.onGrant(g)
	}
}

// tipRule appends referencing the newest message in the node's view; used
// to observe how stale the runner's honest views are.
type tipRule struct{}

func (tipRule) Append(view appendmem.View, w *appendmem.Writer, input int64, _ *xrand.PCG) {
	tip := appendmem.None
	if view.Size() > 0 {
		tip = appendmem.MsgID(view.Size() - 1)
	}
	w.MustAppend(input, 0, []appendmem.MsgID{tip})
}

func (tipRule) Decide(view appendmem.View, k int, _ *xrand.PCG) (int64, bool) {
	if view.Size() < k {
		return 0, false
	}
	return 1, true
}

func TestHonestViewsAreStale(t *testing.T) {
	// The synchrony bound Δ must make honest appends reference views up to
	// Δ old (the fork source of Theorem 5.4). With λ=4 the memory receives
	// ~32 appends per Δ, so an honest append referencing the latest message
	// it saw must frequently miss recent appends: Parents[0] < ID-1.
	r := MustRun(RandomizedConfig{N: 8, Lambda: 4, K: 201, Seed: 11}, tipRule{}, Silent{})
	stale := 0
	total := 0
	for _, msg := range r.FinalView.Messages() {
		if len(msg.Parents) == 0 || msg.Parents[0] == appendmem.None {
			continue
		}
		total++
		if msg.Parents[0] < msg.ID-1 {
			stale++
		}
	}
	if total == 0 {
		t.Fatal("no parented appends")
	}
	if frac := float64(stale) / float64(total); frac < 0.5 {
		t.Fatalf("stale-reference fraction = %v; staleness not modelled", frac)
	}
}

func TestFreshHonestReadsRemoveStaleness(t *testing.T) {
	// With FreshHonestReads, a tipRule append always references the
	// immediately preceding message: no stale parents at all.
	r := MustRun(RandomizedConfig{N: 8, Lambda: 4, K: 101, Seed: 12, FreshHonestReads: true}, tipRule{}, Silent{})
	for _, msg := range r.FinalView.Messages() {
		if len(msg.Parents) == 0 || msg.Parents[0] == appendmem.None {
			continue
		}
		if msg.Parents[0] != msg.ID-1 {
			t.Fatalf("fresh read still produced a stale parent: %d -> %d", msg.ID, msg.Parents[0])
		}
	}
}

func TestStallDelaysDecisions(t *testing.T) {
	base := MustRun(RandomizedConfig{N: 6, Lambda: 1, K: 21, Seed: 13}, countRule{}, Silent{})
	stalled := MustRun(RandomizedConfig{N: 6, Lambda: 1, K: 21, Seed: 13, StallAtSize: 10, StallFor: 6}, countRule{}, Silent{})
	if !stalled.Verdict.Termination {
		t.Fatalf("stall broke termination: %+v", stalled.Verdict)
	}
	if stalled.Duration <= base.Duration {
		t.Fatalf("stall did not delay the run: %v vs %v", stalled.Duration, base.Duration)
	}
}

func TestStallDefaults(t *testing.T) {
	cfg := RandomizedConfig{N: 4, Lambda: 1, K: 5, StallAtSize: 3}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	if cfg.StallFor != 8 {
		t.Fatalf("default StallFor = %v, want 8", cfg.StallFor)
	}
}

func TestTraceRecordsRun(t *testing.T) {
	rec := trace.New()
	r := MustRun(RandomizedConfig{N: 6, T: 2, Lambda: 1, K: 11, Seed: 21, Trace: rec},
		countRule{}, &ValueFlip{Rule: countRule{}})
	sum := rec.Summary()
	if sum[trace.Grant] != r.Grants {
		t.Fatalf("traced %d grants, result says %d", sum[trace.Grant], r.Grants)
	}
	if sum[trace.Append] != r.TotalAppends {
		t.Fatalf("traced %d appends, memory has %d", sum[trace.Append], r.TotalAppends)
	}
	if sum[trace.Decide] == 0 || sum[trace.Read] == 0 {
		t.Fatalf("missing reads/decisions: %v", sum)
	}
	// Byzantine appends are annotated.
	byzNoted := 0
	for _, e := range rec.Events() {
		if e.Kind == trace.Append && e.Note == "byzantine" {
			byzNoted++
		}
	}
	if byzNoted != r.ByzAppends {
		t.Fatalf("byzantine annotations %d, byz appends %d", byzNoted, r.ByzAppends)
	}
}

func TestTraceReplayIdentical(t *testing.T) {
	run := func() *trace.Recorder {
		rec := trace.New()
		MustRun(RandomizedConfig{N: 6, T: 2, Lambda: 1, K: 11, Seed: 22, Trace: rec},
			countRule{}, &ValueFlip{Rule: countRule{}})
		return rec
	}
	if !trace.Equal(run(), run()) {
		t.Fatal("identical runs produced different traces")
	}
}

func TestTraceRecordsStallAndCrash(t *testing.T) {
	rec := trace.New()
	MustRun(RandomizedConfig{N: 6, Crashes: 2, Lambda: 1, K: 21, Seed: 23,
		StallAtSize: 8, StallFor: 2, Trace: rec}, countRule{}, Silent{})
	sum := rec.Summary()
	if sum[trace.StallStart] != 1 {
		t.Fatalf("stall-start events: %d", sum[trace.StallStart])
	}
	if sum[trace.Crash] == 0 {
		t.Fatalf("no crash events recorded")
	}
}

// Catch-all determinism property: for random combinations of every config
// knob, two runs with the same seed produce byte-identical traces.
func TestDeterminismAcrossAllKnobs(t *testing.T) {
	metaRng := xrand.New(0xDE7, 1)
	for trial := 0; trial < 25; trial++ {
		cfg := RandomizedConfig{
			N:                4 + metaRng.Intn(8),
			Lambda:           0.1 + metaRng.Float64(),
			K:                5 + 2*metaRng.Intn(10),
			Seed:             metaRng.Uint64(),
			FreshHonestReads: metaRng.Bool(),
			RoundRobinAccess: metaRng.Bool(),
		}
		cfg.T = metaRng.Intn(cfg.N / 2)
		if metaRng.Bool() {
			cfg.Crashes = metaRng.Intn(cfg.N - cfg.T)
		}
		if metaRng.Bool() {
			cfg.StallAtSize = 1 + metaRng.Intn(cfg.K)
			cfg.StallFor = 1 + metaRng.Float64()*4
		}
		if metaRng.Bool() {
			cfg.AsyncDelayMax = metaRng.Float64() * 4
		}
		run := func() *trace.Recorder {
			c := cfg
			c.Trace = trace.New()
			MustRun(c, countRule{}, &ValueFlip{Rule: countRule{}})
			return c.Trace
		}
		a, b := run(), run()
		if !trace.Equal(a, b) {
			t.Fatalf("trial %d: nondeterministic under %+v", trial, cfg)
		}
		if a.Len() == 0 {
			t.Fatalf("trial %d: empty trace", trial)
		}
	}
}

func TestRatesConfig(t *testing.T) {
	// Heterogeneous rates: the whale should author far more appends.
	r := MustRun(RandomizedConfig{
		N: 4, Rates: []float64{2.0, 0.1, 0.1, 0.1}, K: 41, Seed: 31,
	}, countRule{}, Silent{})
	counts := make(map[appendmem.NodeID]int)
	for _, msg := range r.FinalView.Messages() {
		counts[msg.Author]++
	}
	if counts[0] < 3*counts[1] {
		t.Fatalf("whale not dominant: %v", counts)
	}
	if !r.Verdict.OK() {
		t.Fatalf("%+v", r.Verdict)
	}
}

func TestRatesValidation(t *testing.T) {
	bad := []RandomizedConfig{
		{N: 3, Rates: []float64{1, 1}, K: 5},
		{N: 2, Rates: []float64{1, 0}, K: 5},
		{N: 2, Rates: []float64{1, -1}, K: 5},
	}
	for i, cfg := range bad {
		if _, err := RunRandomized(cfg, countRule{}, Silent{}); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

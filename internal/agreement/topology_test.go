package agreement

import (
	"fmt"
	"testing"

	"repro/internal/topology"
	"repro/internal/xrand"
)

func ringCfg(seed uint64, n int) RandomizedConfig {
	return RandomizedConfig{
		N: n, Lambda: 1, K: 15, Seed: seed,
		Topology:      topology.Ring(n, 1, 0.5),
		TopologyDelay: topology.DelayModel{Kind: topology.DelayUniform},
	}
}

// fingerprint reduces a Result to a comparable string covering everything
// downstream metrics read.
func fingerprint(r *Result) string {
	out := fmt.Sprintf("grants=%d appends=%d dur=%.12f lag=%.12f ok=%v;",
		r.Grants, r.TotalAppends, float64(r.Duration), r.VisMeanLag, r.Verdict.OK())
	for i := range r.DecideTime {
		out += fmt.Sprintf("%d:%.12f:%d;", i, float64(r.DecideTime[i]), r.DecideViewSize[i])
	}
	return out
}

func TestTopologyRunDeterministic(t *testing.T) {
	a := MustRun(ringCfg(7, 6), countRule{}, Silent{})
	b := MustRun(ringCfg(7, 6), countRule{}, Silent{})
	if fa, fb := fingerprint(a), fingerprint(b); fa != fb {
		t.Fatalf("same seed diverged:\n%s\n%s", fa, fb)
	}
	if c := MustRun(ringCfg(8, 6), countRule{}, Silent{}); fingerprint(c) == fingerprint(a) {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestTopologyDelaysVisibility(t *testing.T) {
	// Propagation over a sparse ring means honest decisions lag behind
	// the global memory: the run completes, lag accounting is live, and
	// every correct node still terminates and agrees.
	r := MustRun(ringCfg(21, 8), countRule{}, Silent{})
	if !r.Verdict.OK() {
		t.Fatalf("verdict = %+v", r.Verdict)
	}
	if r.VisMeanLag <= 0 {
		t.Fatalf("VisMeanLag = %v, want > 0", r.VisMeanLag)
	}
}

func TestTopologyDefaultPathHasZeroLag(t *testing.T) {
	r := MustRun(RandomizedConfig{N: 6, Lambda: 1, K: 15, Seed: 7}, countRule{}, Silent{})
	if r.VisMeanLag != 0 {
		t.Fatalf("default path VisMeanLag = %v", r.VisMeanLag)
	}
}

func TestTopologyValidation(t *testing.T) {
	bad := []RandomizedConfig{
		// wrong node count
		{N: 5, Lambda: 1, K: 5, Topology: topology.Ring(6, 1, 1)},
		// disconnected
		{N: 4, Lambda: 1, K: 5, Topology: mustTable(4, []topology.Link{{From: 0, To: 1, Lat: 1}, {From: 2, To: 3, Lat: 1}})},
	}
	for i, cfg := range bad {
		if _, err := RunRandomized(cfg, countRule{}, Silent{}); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

func mustTable(n int, links []topology.Link) *topology.Graph {
	g, err := topology.FromTable(n, links)
	if err != nil {
		panic(err)
	}
	return g
}

func TestTopologyWithAdversaryAndAsync(t *testing.T) {
	// The topology path must compose with the other knobs: an omniscient
	// flipping adversary and asynchronous honest appends.
	g := topology.WattsStrogatz(xrand.New(5, 5), 8, 2, 0.3, 0.25)
	cfg := RandomizedConfig{
		N: 8, T: 2, Lambda: 1, K: 15, Seed: 9,
		Topology:      g,
		TopologyDelay: topology.DelayModel{Kind: topology.DelayLongTail},
		AsyncDelayMax: 0.5,
	}
	a := MustRun(cfg, countRule{}, &ValueFlip{Rule: countRule{}})
	b := MustRun(cfg, countRule{}, &ValueFlip{Rule: countRule{}})
	if fingerprint(a) != fingerprint(b) {
		t.Fatal("topology+adversary+async run not deterministic")
	}
	if a.TotalAppends == 0 || a.Grants == 0 {
		t.Fatalf("run did nothing: %+v", a)
	}
}

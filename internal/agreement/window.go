// Bounded-memory execution: windowed retirement of the append memory and
// pre-decision trial checkpoints. Both are opt-in; with the Window,
// CheckpointSink and ResumeFrom knobs at their zero values RunRandomized
// consumes randomness and schedules events in exactly the historical
// order, byte for byte.
package agreement

import (
	"math"

	"repro/internal/appendmem"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// WindowedRule is implemented by per-node rule instances that can bound
// and retire their reachable prefix. ViewFloor returns the smallest id the
// node's future appends or index extensions can touch (min of the cached
// indexes' built sizes and tip floors — both monotone, so a floor once
// reported stays safe). CompactTo retires index state below w, returning
// the watermark achieved (indexes may decline conservatively).
//
// The harness retires memory chunks only below the minimum floor over all
// appending parties, so a rule that never implements this simply disables
// windowed mode for its protocol.
type WindowedRule interface {
	ViewFloor() int
	CompactTo(w int) int
}

// WindowedAdversary is the adversary-side counterpart of WindowedRule.
type WindowedAdversary interface {
	ViewFloor() int
	CompactTo(w int)
}

// AppendWindowed is optionally implemented by rules whose append path
// bounds its reachable prefix independently of the decision path. A
// fresh-reading adversary (ValueFlip) drives only Append, so its floor is
// the append-side floor alone — the decision-side cache it never touches
// would otherwise pin the combined ViewFloor at 0 and disable retirement.
type AppendWindowed interface {
	AppendFloor() int
	CompactAppendTo(w int) int
}

// ViewFloor implements WindowedAdversary: a silent adversary never reads
// or appends, so it bounds nothing.
func (Silent) ViewFloor() int { return math.MaxInt }

// CompactTo implements WindowedAdversary.
func (Silent) CompactTo(int) {}

// ViewFloor implements WindowedAdversary by delegating to the flip rule's
// append-side cache: the adversary reads fresh and never decides.
func (a *ValueFlip) ViewFloor() int {
	if aw, ok := a.rule.(AppendWindowed); ok {
		return aw.AppendFloor()
	}
	if wr, ok := a.rule.(WindowedRule); ok {
		return wr.ViewFloor()
	}
	return 0
}

// CompactTo implements WindowedAdversary.
func (a *ValueFlip) CompactTo(w int) {
	if aw, ok := a.rule.(AppendWindowed); ok {
		aw.CompactAppendTo(w)
		return
	}
	if wr, ok := a.rule.(WindowedRule); ok {
		wr.CompactTo(w)
	}
}

// windowChunk sizes the fixed slab chunks of a windowed memory: an eighth
// of the window (clamped) so retirement reclaims in steps much smaller
// than the live window itself.
func windowChunk(window int) int {
	c := window / 8
	if c < 64 {
		c = 64
	}
	if c > 4096 {
		c = 4096
	}
	return c
}

// Checkpoint is a resumable snapshot of a run, captured immediately before
// the first decision commits: the cloned memory, the virtual clock, the
// authority's pending grant, and the position of every rng stream. At that
// instant no node has decided, so two runs differing only in confirmation
// depth (or any knob that can only postpone decisions) have evolved
// identically — resuming the deeper run from the shallower run's
// checkpoint replays the exact suffix a from-scratch run would produce,
// skipping the shared prefix.
//
// A Checkpoint is immutable after capture: every resume clones the memory
// again, so one checkpoint serves many sweep points, concurrently.
type Checkpoint struct {
	Mem    *appendmem.Memory
	Now    sim.Time
	Grants int

	// AuthoritySeq and AuthorityAt restart grant numbering and the pending
	// grant instant; the inter-arrival draw behind AuthorityAt was already
	// consumed, which is why the authority rng state alone is not enough.
	AuthoritySeq int
	AuthorityAt  sim.Time

	AuthorityRng xrand.State
	AdversaryRng xrand.State
	NodeRngs     []xrand.State

	CrashAt   []sim.Time
	ReadAt    []sim.Time
	ViewSizes []int
}

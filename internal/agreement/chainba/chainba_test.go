package chainba

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/xrand"
)

func advTB(n, t int) chain.AdversarialTieBreaker {
	return chain.AdversarialTieBreaker{
		IsByzantine: func(id appendmem.NodeID) bool { return int(id) >= n-t },
	}
}

func TestAppendOnEmptyViewAttachesGenesis(t *testing.T) {
	m := appendmem.New(1)
	Rule{TB: chain.FirstTieBreaker{}}.Append(m.Read(), m.Writer(0), +1, nil)
	msg := m.Message(0)
	if len(msg.Parents) != 1 || msg.Parents[0] != appendmem.None {
		t.Fatalf("parents = %v", msg.Parents)
	}
}

func TestAppendExtendsLongest(t *testing.T) {
	m := appendmem.New(2)
	g := m.Writer(0).MustAppend(0, 0, []appendmem.MsgID{appendmem.None})
	tip := m.Writer(0).MustAppend(1, 0, []appendmem.MsgID{g.ID})
	Rule{TB: chain.FirstTieBreaker{}}.Append(m.Read(), m.Writer(1), +1, nil)
	got := m.Message(2)
	if got.Parents[0] != tip.ID {
		t.Fatalf("appended to %d, want %d", got.Parents[0], tip.ID)
	}
}

func TestDecideNeedsHeightK(t *testing.T) {
	m := appendmem.New(1)
	parent := appendmem.None
	r := Rule{TB: chain.FirstTieBreaker{}}
	for i := 0; i < 4; i++ {
		if _, ok := r.Decide(m.Read(), 5, nil); ok {
			t.Fatalf("decided at height %d < 5", i)
		}
		msg := m.Writer(0).MustAppend(+1, 0, []appendmem.MsgID{parent})
		parent = msg.ID
	}
	m.Writer(0).MustAppend(+1, 0, []appendmem.MsgID{parent})
	v, ok := r.Decide(m.Read(), 5, nil)
	if !ok || v != +1 {
		t.Fatalf("decide = (%d, %v)", v, ok)
	}
}

func TestDecideSumsFirstK(t *testing.T) {
	// Chain values: -1, -1, +1, +1, +1. k=3 sums first three: -1.
	m := appendmem.New(1)
	vals := []int64{-1, -1, +1, +1, +1}
	parent := appendmem.None
	for _, v := range vals {
		msg := m.Writer(0).MustAppend(v, 0, []appendmem.MsgID{parent})
		parent = msg.ID
	}
	v, ok := Rule{TB: chain.FirstTieBreaker{}}.Decide(m.Read(), 3, nil)
	if !ok || v != -1 {
		t.Fatalf("decide = (%d, %v), want (-1, true)", v, ok)
	}
}

func TestNoByzantineWorks(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		r := agreement.MustRun(agreement.RandomizedConfig{
			N: 10, T: 0, Lambda: 0.1, K: 21, Seed: seed,
		}, Rule{TB: chain.RandomTieBreaker{}}, agreement.Silent{})
		if !r.Verdict.OK() {
			t.Fatalf("seed %d: %+v", seed, r.Verdict)
		}
	}
}

// Theorem 5.3: with worst-case deterministic tie-breaking, the fork attack
// overwhelms validity above t = n/3 but not well below it.
func TestDeterministicTieBreakThreshold(t *testing.T) {
	failures := func(n, tt int, lam float64) int {
		fails := 0
		for seed := uint64(0); seed < 20; seed++ {
			r := agreement.MustRun(agreement.RandomizedConfig{
				N: n, T: tt, Lambda: lam, K: 41, Seed: seed,
			}, Rule{TB: advTB(n, tt)}, &adversary.ChainForker{})
			if !r.Verdict.Validity {
				fails++
			}
		}
		return fails
	}
	below := failures(9, 2, 0.5) // t/n = 0.22 < 1/3
	above := failures(9, 5, 0.5) // t/n = 0.56 > 1/3
	if below > 2 {
		t.Fatalf("validity failed %d/20 below the n/3 threshold", below)
	}
	if above < 10 {
		t.Fatalf("validity failed only %d/20 above the n/3 threshold", above)
	}
}

// Theorem 5.4: with randomized tie-breaking, resilience collapses as
// λ(n−t) grows — t/n = 0.4 survives at λ(n−t)=0.3 and dies at λ(n−t)=6.
func TestRandomizedTieBreakLambdaDependence(t *testing.T) {
	failures := func(lam float64) int {
		fails := 0
		for seed := uint64(0); seed < 20; seed++ {
			r := agreement.MustRun(agreement.RandomizedConfig{
				N: 10, T: 4, Lambda: lam, K: 21, Seed: seed,
			}, Rule{TB: chain.RandomTieBreaker{}}, &adversary.ChainTieBreaker{})
			if !r.Verdict.Validity {
				fails++
			}
		}
		return fails
	}
	slow := failures(0.05) // λ(n−t) = 0.3: bound 1/(1.3) = 0.77 > 0.4
	fast := failures(1.0)  // λ(n−t) = 6:   bound 1/7 ≈ 0.14 < 0.4
	if slow > 8 {
		t.Fatalf("validity failed %d/20 at low rate; chain should survive", slow)
	}
	if fast < 15 {
		t.Fatalf("validity failed only %d/20 at high rate; tie-break attack ineffective", fast)
	}
}

func TestRandomizedBeatsAdversarialTies(t *testing.T) {
	// The paper: under the fork attack, randomized tie-breaking includes
	// only every second Byzantine fork, deterministic-adversarial all of
	// them. Compare Byzantine chain fractions directly.
	byzFrac := func(tb chain.TieBreaker) float64 {
		total, byz := 0, 0
		for seed := uint64(0); seed < 10; seed++ {
			r := agreement.MustRun(agreement.RandomizedConfig{
				N: 9, T: 4, Lambda: 0.5, K: 41, Seed: seed,
			}, Rule{TB: tb}, &adversary.ChainForker{})
			tree := chain.Build(r.FinalView)
			tips := tree.LongestTips()
			if len(tips) == 0 {
				continue
			}
			rng := xrand.New(seed, 123)
			tip := tb.Pick(tips, r.FinalView, rng)
			for _, id := range tree.ChainTo(tip) {
				total++
				if r.Roster.IsByzantine(r.FinalView.Message(id).Author) {
					byz++
				}
			}
		}
		return float64(byz) / float64(total)
	}
	advFrac := byzFrac(advTB(9, 4))
	rndFrac := byzFrac(chain.RandomTieBreaker{})
	if advFrac <= rndFrac {
		t.Fatalf("adversarial ties (%v) not worse than randomized (%v)", advFrac, rndFrac)
	}
}

func TestEquivocatorDoesNotBlockTermination(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		r := agreement.MustRun(agreement.RandomizedConfig{
			N: 8, T: 2, Lambda: 0.3, K: 15, Seed: seed,
		}, Rule{TB: chain.RandomTieBreaker{}}, &adversary.Equivocator{})
		if !r.Verdict.Termination {
			t.Fatalf("seed %d: equivocation blocked termination", seed)
		}
	}
}

func TestCrashNodesDoNotBlock(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		r := agreement.MustRun(agreement.RandomizedConfig{
			N: 8, Crashes: 3, Lambda: 0.2, K: 15, Seed: seed,
		}, Rule{TB: chain.RandomTieBreaker{}}, agreement.Silent{})
		if !r.Verdict.OK() {
			t.Fatalf("seed %d: %+v", seed, r.Verdict)
		}
	}
}

func TestConfirmDepthDelaysDecision(t *testing.T) {
	m := appendmem.New(1)
	parent := appendmem.None
	r := Rule{TB: chain.FirstTieBreaker{}, Confirm: 2}
	for i := 0; i < 6; i++ {
		msg := m.Writer(0).MustAppend(+1, 0, []appendmem.MsgID{parent})
		parent = msg.ID
	}
	// Height 6 < k+confirm = 7: not yet.
	if _, ok := r.Decide(m.Read(), 5, nil); ok {
		t.Fatal("decided before confirmation depth reached")
	}
	msg := m.Writer(0).MustAppend(+1, 0, []appendmem.MsgID{parent})
	_ = msg
	v, ok := r.Decide(m.Read(), 5, nil)
	if !ok || v != +1 {
		t.Fatalf("decide = (%d,%v)", v, ok)
	}
}

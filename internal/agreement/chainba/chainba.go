// Package chainba implements Algorithm 5 of the paper: Byzantine agreement
// on the Chain. An honest node, when granted memory access, appends its
// input value to the tip of a longest chain of its current (up to Δ stale)
// view, breaking ties between equally long chains by a pluggable rule
// (Algorithm 5 Lines 5–7). Once some longest chain reaches length k, the
// node decides on the sign of the sum of the first k values in that chain
// (Line 10).
//
// The paper analyses two tie-breaking rules:
//
//   - deterministic (Garay et al.): Theorem 5.3 — weak Byzantine agreement
//     is impossible for t ≥ n/3 because the adversary can assume every tie
//     goes its way (chain.AdversarialTieBreaker);
//   - randomized (Ren): Theorem 5.4 — resilience degrades with the correct
//     append rate, t/n ≤ 1/(1+λ(n−t)).
package chainba

import (
	"repro/internal/agreement"
	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/node"
	"repro/internal/xrand"
)

// Rule is the honest-node behaviour of Algorithm 5, parameterized by the
// tie-breaking rule. It implements agreement.HonestRule.
//
// Confirm is an extension beyond the paper's Algorithm 5: the familiar
// blockchain "confirmation depth". With Confirm = c > 0 a node decides on
// the first k chain values only once the longest chain has length k+c, so
// the decision prefix is c blocks deep at decision time. Deep prefixes are
// harder to perturb late — experiment E19 measures how much that buys each
// structure.
//
// The zero value is stateless and rebuilds the chain index on every call.
// The agreement harness instead drives each correct node through
// NewNodeRule, whose per-node cached indexes extend with the node's
// monotonically growing view (see chain.Cached); behaviour is identical
// either way.
type Rule struct {
	TB      chain.TieBreaker
	Confirm int

	// Per-node incremental indexes, nil in the shared zero value. Appends
	// and decisions hold separate handles because their view streams
	// advance independently (an append may use a view older than the last
	// decision's refresh, e.g. under -FreshHonestReads decisions).
	app, dec *chain.Cached
}

// NewNodeRule implements agreement.PerNodeState: a copy of the rule with
// fresh per-node index caches.
func (r Rule) NewNodeRule() agreement.HonestRule {
	r.app, r.dec = chain.NewCached(), chain.NewCached()
	return r
}

// tree indexes view through c when the rule carries per-node caches, else
// from scratch.
func tree(c *chain.Cached, view appendmem.View) *chain.Tree {
	if c != nil {
		return c.At(view)
	}
	return chain.Build(view)
}

// Append extends the tie-broken longest chain of the node's view with the
// node's input value. On an empty view the block attaches to the genesis.
func (r Rule) Append(view appendmem.View, w *appendmem.Writer, input int64, rng *xrand.PCG) {
	tip := appendmem.None
	if tips := tree(r.app, view).LongestTips(); len(tips) > 0 {
		tip = r.TB.Pick(tips, view, rng)
	}
	w.MustAppend(input, 0, []appendmem.MsgID{tip})
}

// Decide fires once the view contains a longest chain of length at least k
// and returns the sign of the sum of that chain's first k values.
func (r Rule) Decide(view appendmem.View, k int, rng *xrand.PCG) (int64, bool) {
	t := tree(r.dec, view)
	if t.Height() < k+r.Confirm {
		return 0, false
	}
	tips := t.LongestTips()
	tip := r.TB.Pick(tips, view, rng)
	return node.SumSign(t.PrefixValues(tip, k)), true
}

// ViewFloor implements agreement.WindowedRule: the smallest id this node's
// future appends or index extensions can reach, over both cached indexes.
// Zero for the stateless shared rule, which caches nothing.
func (r Rule) ViewFloor() int {
	if r.app == nil || r.dec == nil {
		return 0
	}
	f := r.app.Floor()
	if d := r.dec.Floor(); d < f {
		f = d
	}
	return f
}

// CompactTo implements agreement.WindowedRule by compacting both cached
// indexes; the watermark achieved is the smaller of the two.
func (r Rule) CompactTo(w int) int {
	if r.app == nil || r.dec == nil {
		return 0
	}
	wa, wd := r.app.CompactTo(w), r.dec.CompactTo(w)
	if wd < wa {
		wa = wd
	}
	return wa
}

// AppendFloor implements agreement.AppendWindowed: the floor of the
// append-side cache alone, for consumers (the fresh-reading adversary)
// that never exercise the decision path.
func (r Rule) AppendFloor() int {
	if r.app == nil {
		return 0
	}
	return r.app.Floor()
}

// CompactAppendTo implements agreement.AppendWindowed.
func (r Rule) CompactAppendTo(w int) int {
	if r.app == nil {
		return 0
	}
	return r.app.CompactTo(w)
}

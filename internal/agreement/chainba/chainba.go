// Package chainba implements Algorithm 5 of the paper: Byzantine agreement
// on the Chain. An honest node, when granted memory access, appends its
// input value to the tip of a longest chain of its current (up to Δ stale)
// view, breaking ties between equally long chains by a pluggable rule
// (Algorithm 5 Lines 5–7). Once some longest chain reaches length k, the
// node decides on the sign of the sum of the first k values in that chain
// (Line 10).
//
// The paper analyses two tie-breaking rules:
//
//   - deterministic (Garay et al.): Theorem 5.3 — weak Byzantine agreement
//     is impossible for t ≥ n/3 because the adversary can assume every tie
//     goes its way (chain.AdversarialTieBreaker);
//   - randomized (Ren): Theorem 5.4 — resilience degrades with the correct
//     append rate, t/n ≤ 1/(1+λ(n−t)).
package chainba

import (
	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/node"
	"repro/internal/xrand"
)

// Rule is the honest-node behaviour of Algorithm 5, parameterized by the
// tie-breaking rule. It implements agreement.HonestRule.
//
// Confirm is an extension beyond the paper's Algorithm 5: the familiar
// blockchain "confirmation depth". With Confirm = c > 0 a node decides on
// the first k chain values only once the longest chain has length k+c, so
// the decision prefix is c blocks deep at decision time. Deep prefixes are
// harder to perturb late — experiment E19 measures how much that buys each
// structure.
type Rule struct {
	TB      chain.TieBreaker
	Confirm int
}

// Append extends the tie-broken longest chain of the node's view with the
// node's input value. On an empty view the block attaches to the genesis.
func (r Rule) Append(view appendmem.View, w *appendmem.Writer, input int64, rng *xrand.PCG) {
	tip, ok := chain.SelectTip(view, r.TB, rng)
	if !ok {
		tip = appendmem.None
	}
	w.MustAppend(input, 0, []appendmem.MsgID{tip})
}

// Decide fires once the view contains a longest chain of length at least k
// and returns the sign of the sum of that chain's first k values.
func (r Rule) Decide(view appendmem.View, k int, rng *xrand.PCG) (int64, bool) {
	tree := chain.Build(view)
	if tree.Height() < k+r.Confirm {
		return 0, false
	}
	tips := tree.LongestTips()
	tip := r.TB.Pick(tips, view, rng)
	return node.SumSign(tree.PrefixValues(tip, k)), true
}

package adversary

import (
	"repro/internal/access"
	"repro/internal/agreement"
	"repro/internal/appendmem"
)

// Random is the fuzzing adversary: on every grant it appends a
// syntactically arbitrary but well-formed message — random value in
// {-1, +1}, random round label, and a random set of parent references
// drawn from the whole memory (including duplicates, stale ancestors and
// the genesis). It exercises no strategy; its purpose is robustness: no
// input a Byzantine node can write into the memory may crash a protocol,
// block termination, or break agreement among correct nodes beyond what
// the model allows.
type Random struct {
	// MaxParents bounds the parent list; 0 means 4.
	MaxParents int
	env        *agreement.Env
}

// Init implements agreement.Adversary.
func (a *Random) Init(env *agreement.Env) {
	a.env = env
	if a.MaxParents == 0 {
		a.MaxParents = 4
	}
}

// OnGrant appends structured noise.
func (a *Random) OnGrant(g access.Grant) {
	rng := a.env.Rng
	memLen := a.env.Mem.Len()
	numParents := rng.Intn(a.MaxParents + 1)
	parents := make([]appendmem.MsgID, 0, numParents)
	for i := 0; i < numParents; i++ {
		if memLen == 0 || rng.Intn(8) == 0 {
			parents = append(parents, appendmem.None)
			continue
		}
		parents = append(parents, appendmem.MsgID(rng.Intn(memLen)))
	}
	value := int64(-1)
	if rng.Bool() {
		value = +1
	}
	round := rng.Intn(4)
	a.env.Writer(g.Node).MustAppend(value, round, parents)
}

package adversary

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Params is the uniform typed parameter assignment behind the template
// adversaries (ChainAttack, DagAttack). Every named attack in the scenario
// registry is a preset of one template — a Params value — and a search
// harness explores the same space by varying individual fields. Each
// template reads only its own subset; the Schema registered with an attack
// says which names are settable and within which ranges.
type Params struct {
	// Withhold delays each produced block: the parents are chosen at grant
	// time but the append lands Withhold·Δ later (0 = publish immediately,
	// the legacy behaviour). Shared by both templates.
	Withhold float64

	// Chain template (ChainAttack).
	ForkCount  int    // forking grants per ForkPeriod-grant cycle (0 = never fork)
	ForkPeriod int    // schedule cycle length in grants
	ForkLonely bool   // fork off-schedule whenever only one longest tip exists
	Target     string // fork target: TargetCorrect | TargetFirst
	Fanout     int    // chain: tips the extension schedule round-robins over; dag: parallel private chains

	// Dag template (DagAttack).
	Root        string // private segment root: RootPivot | RootGenesis
	Segment     int    // blocks per private segment before re-rooting (0 = root once, never again)
	StartWithin int    // stay silent until the ordering is within this many values of k (0 = always active)
}

// Fork-target and root choices of the templates.
const (
	TargetCorrect = "correct" // fork the first correct-authored longest tip
	TargetFirst   = "first"   // fork the first longest tip, whoever authored it
	RootPivot     = "pivot"   // re-root private segments at the fresh pivot tip
	RootGenesis   = "genesis" // root private segments at the genesis
)

// ParamKind is the type of one template parameter.
type ParamKind int

// Parameter kinds.
const (
	KindInt ParamKind = iota
	KindFloat
	KindBool
	KindEnum
)

func (k ParamKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return "enum"
	}
}

// ParamValue is one number-or-string parameter value, mirroring the JSON
// representation scenario specs use (bool parameters accept 0/1 or
// "true"/"false").
type ParamValue struct {
	Num   float64
	Str   string
	IsStr bool
}

// Text renders the value the way a spec or sweep axis would write it.
func (v ParamValue) Text() string {
	if v.IsStr {
		return v.Str
	}
	return strconv.FormatFloat(v.Num, 'g', -1, 64)
}

// Helpers for building ParamValues in Go code.
func IntVal(n int) ParamValue       { return ParamValue{Num: float64(n)} }
func FloatVal(f float64) ParamValue { return ParamValue{Num: f} }
func StrVal(s string) ParamValue    { return ParamValue{Str: s, IsStr: true} }

func BoolVal(b bool) ParamValue {
	if b {
		return ParamValue{Num: 1}
	}
	return ParamValue{Num: 0}
}

// ParamSpec declares one settable template parameter: its name, type,
// range and documentation, plus the accessors binding it to the Params
// struct. The exported fields are what -list and the search harness read;
// apply/value keep Params a plain struct instead of a stringly map.
type ParamSpec struct {
	Name string
	Kind ParamKind
	Doc  string
	// Min/Max bound numeric parameters (inclusive); Enum lists the valid
	// strings of an enum parameter.
	Min, Max float64
	Enum     []string

	apply func(*Params, ParamValue)
	value func(Params) ParamValue
}

// Range renders the parameter's valid range for help output.
func (s ParamSpec) Range() string {
	switch s.Kind {
	case KindEnum:
		return strings.Join(s.Enum, "|")
	case KindBool:
		return "true|false"
	default:
		return fmt.Sprintf("%s..%s",
			strconv.FormatFloat(s.Min, 'g', -1, 64), strconv.FormatFloat(s.Max, 'g', -1, 64))
	}
}

// Value reads the parameter's current setting out of a Params value (for
// rendering preset defaults).
func (s ParamSpec) Value(p Params) ParamValue { return s.value(p) }

// validate checks one value against the spec's type and range.
func (s ParamSpec) validate(v ParamValue) error {
	switch s.Kind {
	case KindEnum:
		if !v.IsStr {
			return fmt.Errorf("parameter %q wants one of %s, got %v", s.Name, s.Range(), v.Num)
		}
		for _, e := range s.Enum {
			if v.Str == e {
				return nil
			}
		}
		return fmt.Errorf("parameter %q wants one of %s, got %q", s.Name, s.Range(), v.Str)
	case KindBool:
		if v.IsStr && v.Str != "true" && v.Str != "false" {
			return fmt.Errorf("parameter %q wants true/false or 0/1, got %q", s.Name, v.Str)
		}
		if !v.IsStr && v.Num != 0 && v.Num != 1 {
			return fmt.Errorf("parameter %q wants true/false or 0/1, got %v", s.Name, v.Num)
		}
		return nil
	case KindInt:
		if v.IsStr {
			return fmt.Errorf("parameter %q wants an integer in %s, got %q", s.Name, s.Range(), v.Str)
		}
		if v.Num != math.Trunc(v.Num) {
			return fmt.Errorf("parameter %q wants an integer in %s, got %v", s.Name, s.Range(), v.Num)
		}
		if v.Num < s.Min || v.Num > s.Max {
			return fmt.Errorf("parameter %q is out of range %s: %v", s.Name, s.Range(), v.Num)
		}
		return nil
	default: // KindFloat
		if v.IsStr {
			return fmt.Errorf("parameter %q wants a number in %s, got %q", s.Name, s.Range(), v.Str)
		}
		if v.Num < s.Min || v.Num > s.Max {
			return fmt.Errorf("parameter %q is out of range %s: %v", s.Name, s.Range(), v.Num)
		}
		return nil
	}
}

func boolOf(v ParamValue) bool {
	if v.IsStr {
		return v.Str == "true"
	}
	return v.Num != 0
}

// Schema is an attack's settable parameter set, in declaration order.
type Schema []ParamSpec

// Lookup finds one parameter by name.
func (s Schema) Lookup(name string) (ParamSpec, bool) {
	for _, p := range s {
		if p.Name == name {
			return p, true
		}
	}
	return ParamSpec{}, false
}

// Names enumerates the parameter names in declaration order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, p := range s {
		out[i] = p.Name
	}
	return out
}

// Set validates one named value and applies it to p.
func (s Schema) Set(p *Params, name string, v ParamValue) error {
	spec, ok := s.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown parameter %q (have %s)", name, strings.Join(s.Names(), ", "))
	}
	if err := spec.validate(v); err != nil {
		return err
	}
	spec.apply(p, v)
	return nil
}

// Resolve applies a set of named overrides to a preset, validating every
// name and value. Overrides apply in sorted name order, so error messages
// are deterministic regardless of map iteration.
func (s Schema) Resolve(preset Params, overrides map[string]ParamValue) (Params, error) {
	p := preset
	names := make([]string, 0, len(overrides))
	for name := range overrides {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := s.Set(&p, name, overrides[name]); err != nil {
			return Params{}, err
		}
	}
	return p, nil
}

// ChainSchema is the parameter space of the ChainAttack template.
func ChainSchema() Schema {
	return Schema{
		{Name: "fork_count", Kind: KindInt, Min: 0, Max: 64,
			Doc:   "forking grants per fork_period-grant cycle (0 = always extend)",
			apply: func(p *Params, v ParamValue) { p.ForkCount = int(v.Num) },
			value: func(p Params) ParamValue { return IntVal(p.ForkCount) }},
		{Name: "fork_period", Kind: KindInt, Min: 1, Max: 64,
			Doc:   "fork/extend schedule cycle length in grants",
			apply: func(p *Params, v ParamValue) { p.ForkPeriod = int(v.Num) },
			value: func(p Params) ParamValue { return IntVal(p.ForkPeriod) }},
		{Name: "fork_lonely", Kind: KindBool,
			Doc:   "fork off-schedule whenever only one longest tip exists",
			apply: func(p *Params, v ParamValue) { p.ForkLonely = boolOf(v) },
			value: func(p Params) ParamValue { return BoolVal(p.ForkLonely) }},
		{Name: "target", Kind: KindEnum, Enum: []string{TargetCorrect, TargetFirst},
			Doc:   "fork target: first correct-authored longest tip, or first longest tip outright",
			apply: func(p *Params, v ParamValue) { p.Target = v.Str },
			value: func(p Params) ParamValue { return StrVal(p.Target) }},
		{Name: "fanout", Kind: KindInt, Min: 1, Max: 8,
			Doc:   "longest tips the extension schedule round-robins over (keeps forks alive)",
			apply: func(p *Params, v ParamValue) { p.Fanout = int(v.Num) },
			value: func(p Params) ParamValue { return IntVal(p.Fanout) }},
		{Name: "withhold", Kind: KindFloat, Min: 0, Max: 8,
			Doc:   "delay in Δ between the grant and the append landing (parents chosen at grant time)",
			apply: func(p *Params, v ParamValue) { p.Withhold = v.Num },
			value: func(p Params) ParamValue { return FloatVal(p.Withhold) }},
	}
}

// DagSchema is the parameter space of the DagAttack template.
func DagSchema() Schema {
	return Schema{
		{Name: "root", Kind: KindEnum, Enum: []string{RootPivot, RootGenesis},
			Doc:   "where private segments root: the fresh pivot tip, or the genesis",
			apply: func(p *Params, v ParamValue) { p.Root = v.Str },
			value: func(p Params) ParamValue { return StrVal(p.Root) }},
		{Name: "segment", Kind: KindInt, Min: 0, Max: 64,
			Doc:   "blocks per private segment before re-rooting (0 = root once, never re-root)",
			apply: func(p *Params, v ParamValue) { p.Segment = int(v.Num) },
			value: func(p Params) ParamValue { return IntVal(p.Segment) }},
		{Name: "start_within", Kind: KindInt, Min: 0, Max: 1024,
			Doc:   "stay silent until the pivot ordering is within this many values of k (0 = always active)",
			apply: func(p *Params, v ParamValue) { p.StartWithin = int(v.Num) },
			value: func(p Params) ParamValue { return IntVal(p.StartWithin) }},
		{Name: "fanout", Kind: KindInt, Min: 1, Max: 8,
			Doc:   "parallel private chains extended round-robin",
			apply: func(p *Params, v ParamValue) { p.Fanout = int(v.Num) },
			value: func(p Params) ParamValue { return IntVal(p.Fanout) }},
		{Name: "withhold", Kind: KindFloat, Min: 0, Max: 8,
			Doc:   "delay in Δ between the grant and the append landing (parents chosen at grant time)",
			apply: func(p *Params, v ParamValue) { p.Withhold = v.Num },
			value: func(p Params) ParamValue { return FloatVal(p.Withhold) }},
	}
}

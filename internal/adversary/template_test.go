package adversary_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/agreement/chainba"
	"repro/internal/agreement/dagba"
	"repro/internal/appendmem"
	"repro/internal/chain"
)

// fingerprint renders everything observable about one run — the verdict,
// timing, every message's (author, value, parents), and every decision —
// so two runs fingerprint equal iff they are byte-identical.
func fingerprint(r *agreement.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "verdict=%+v dur=%v grants=%d appends=%d byz=%d\n",
		r.Verdict, r.Duration, r.Grants, r.TotalAppends, r.ByzAppends)
	v := r.FinalView
	for i := 0; i < v.Size(); i++ {
		m := v.Message(appendmem.MsgID(i))
		fmt.Fprintf(&sb, "msg %d a=%d v=%d p=%v\n", i, m.Author, m.Value, m.Parents)
	}
	for i, d := range r.Outcome.Decided {
		if d {
			fmt.Fprintf(&sb, "node %d decided %+d at %v\n", i, r.Outcome.Decision[i], r.DecideTime[i])
		}
	}
	return sb.String()
}

// TestChainPresetsByteIdentical pins the ChainAttack template at the three
// chain presets byte-identical to the hand-coded adversaries across seeds
// and tie-break rules.
func TestChainPresetsByteIdentical(t *testing.T) {
	cases := []struct {
		name   string
		legacy func() agreement.Adversary
		params adversary.Params
	}{
		{"fork", func() agreement.Adversary { return &adversary.ChainForker{} },
			adversary.Params{ForkCount: 1, ForkPeriod: 1, Target: adversary.TargetCorrect, Fanout: 1}},
		{"tiebreak", func() agreement.Adversary { return &adversary.ChainTieBreaker{} },
			adversary.Params{ForkCount: 0, ForkPeriod: 1, Target: adversary.TargetCorrect, Fanout: 1}},
		{"equivocate", func() agreement.Adversary { return &adversary.Equivocator{} },
			adversary.Params{ForkCount: 1, ForkPeriod: 2, ForkLonely: true, Target: adversary.TargetFirst, Fanout: 1}},
	}
	tbs := map[string]chain.TieBreaker{
		"first":  chain.FirstTieBreaker{},
		"random": chain.RandomTieBreaker{},
		"adversarial": chain.AdversarialTieBreaker{
			IsByzantine: func(id appendmem.NodeID) bool { return int(id) >= 10-3 },
		},
	}
	for _, c := range cases {
		for tbName, tb := range tbs {
			for seed := uint64(1); seed <= 8; seed++ {
				cfg := agreement.RandomizedConfig{N: 10, T: 3, Lambda: 1, K: 21, Seed: seed}
				rule := chainba.Rule{TB: tb}
				want := fingerprint(agreement.MustRun(cfg, rule, c.legacy()))
				got := fingerprint(agreement.MustRun(cfg, rule, &adversary.ChainAttack{P: c.params}))
				if want != got {
					t.Fatalf("%s/%s seed %d: template diverges from legacy\nlegacy:\n%s\ntemplate:\n%s",
						c.name, tbName, seed, want, got)
				}
			}
		}
	}
}

// TestDagPresetsByteIdentical pins the DagAttack template at the three DAG
// presets byte-identical to the hand-coded adversaries across seeds and
// pivot rules.
func TestDagPresetsByteIdentical(t *testing.T) {
	cases := []struct {
		name   string
		legacy func(p dagba.PivotRule) agreement.Adversary
		params adversary.Params
	}{
		{"private-chain", func(p dagba.PivotRule) agreement.Adversary { return &adversary.DagChainExtender{Pivot: p} },
			adversary.Params{Root: adversary.RootPivot, Segment: 1, Fanout: 1}},
		{"last-minute", func(p dagba.PivotRule) agreement.Adversary { return &adversary.DagLastMinute{Pivot: p} },
			adversary.Params{Root: adversary.RootPivot, Segment: 1, StartWithin: 6, Fanout: 1}},
		{"private-fork", func(p dagba.PivotRule) agreement.Adversary { return &adversary.DagPrivateFork{} },
			adversary.Params{Root: adversary.RootGenesis, Segment: 0, Fanout: 1}},
	}
	for _, c := range cases {
		for _, pivot := range []dagba.PivotRule{dagba.Ghost, dagba.Longest} {
			for seed := uint64(1); seed <= 8; seed++ {
				cfg := agreement.RandomizedConfig{N: 10, T: 4, Lambda: 1, K: 21, Seed: seed}
				rule := dagba.Rule{Pivot: pivot}
				want := fingerprint(agreement.MustRun(cfg, rule, c.legacy(pivot)))
				got := fingerprint(agreement.MustRun(cfg, rule, &adversary.DagAttack{P: c.params, Pivot: pivot}))
				if want != got {
					t.Fatalf("%s/%v seed %d: template diverges from legacy\nlegacy:\n%s\ntemplate:\n%s",
						c.name, pivot, seed, want, got)
				}
			}
		}
	}
}

// TestSchemaValidation exercises the parameter schema: unknown names are
// rejected with the valid set enumerated, range and kind violations are
// rejected, and valid overrides land in the right fields.
func TestSchemaValidation(t *testing.T) {
	s := adversary.ChainSchema()
	if _, err := s.Resolve(adversary.Params{}, map[string]adversary.ParamValue{
		"no_such": adversary.IntVal(1)}); err == nil || !strings.Contains(err.Error(), "fork_count") {
		t.Fatalf("unknown parameter not rejected with valid set: %v", err)
	}
	if _, err := s.Resolve(adversary.Params{}, map[string]adversary.ParamValue{
		"fork_count": adversary.IntVal(-1)}); err == nil || !strings.Contains(err.Error(), "range") {
		t.Fatalf("out-of-range int not rejected: %v", err)
	}
	if _, err := s.Resolve(adversary.Params{}, map[string]adversary.ParamValue{
		"fork_count": adversary.FloatVal(1.5)}); err == nil {
		t.Fatalf("non-integer int not rejected")
	}
	if _, err := s.Resolve(adversary.Params{}, map[string]adversary.ParamValue{
		"target": adversary.StrVal("nonsense")}); err == nil {
		t.Fatalf("bad enum not rejected")
	}
	p, err := s.Resolve(adversary.Params{ForkPeriod: 1, Fanout: 1}, map[string]adversary.ParamValue{
		"fork_count":  adversary.IntVal(2),
		"fork_period": adversary.IntVal(4),
		"fork_lonely": adversary.BoolVal(true),
		"target":      adversary.StrVal(adversary.TargetFirst),
		"withhold":    adversary.FloatVal(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.ForkCount != 2 || p.ForkPeriod != 4 || !p.ForkLonely || p.Target != adversary.TargetFirst || p.Withhold != 0.5 {
		t.Fatalf("overrides not applied: %+v", p)
	}

	d := adversary.DagSchema()
	if _, err := d.Resolve(adversary.Params{}, map[string]adversary.ParamValue{
		"fork_count": adversary.IntVal(1)}); err == nil {
		t.Fatalf("chain parameter accepted by dag schema")
	}
}

// TestTemplateNewCapabilities smoke-tests parameterizations outside the
// preset space: they must run, terminate and stay deterministic.
func TestTemplateNewCapabilities(t *testing.T) {
	chainP := adversary.Params{ForkCount: 2, ForkPeriod: 3, Target: adversary.TargetFirst, Fanout: 3, Withhold: 0.5}
	dagP := adversary.Params{Root: adversary.RootGenesis, Segment: 4, Fanout: 3, Withhold: 0.25}
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := agreement.RandomizedConfig{N: 10, T: 4, Lambda: 1, K: 21, Seed: seed}
		a := fingerprint(agreement.MustRun(cfg, chainba.Rule{TB: chain.FirstTieBreaker{}}, &adversary.ChainAttack{P: chainP}))
		b := fingerprint(agreement.MustRun(cfg, chainba.Rule{TB: chain.FirstTieBreaker{}}, &adversary.ChainAttack{P: chainP}))
		if a != b {
			t.Fatalf("chain template with withhold is not deterministic at seed %d", seed)
		}
		a = fingerprint(agreement.MustRun(cfg, dagba.Rule{Pivot: dagba.Ghost}, &adversary.DagAttack{P: dagP, Pivot: dagba.Ghost}))
		b = fingerprint(agreement.MustRun(cfg, dagba.Rule{Pivot: dagba.Ghost}, &adversary.DagAttack{P: dagP, Pivot: dagba.Ghost}))
		if a != b {
			t.Fatalf("dag template with withhold is not deterministic at seed %d", seed)
		}
	}
}

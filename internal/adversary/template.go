package adversary

import (
	"repro/internal/access"
	"repro/internal/agreement"
	"repro/internal/agreement/dagba"
	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/dag"
	"repro/internal/sim"
)

// This file holds the two parameterized attack templates the named chain
// and DAG attacks are presets of. Each template generalizes the hand-coded
// strategies of adversary.go along the axes a search harness wants to
// explore — fork schedule, fork target, equivocation fan-out, private-chain
// segment length, activation margin, release delay — while reproducing the
// legacy adversaries byte-for-byte at the preset parameter values (the
// differential tests in template_test.go pin this). Like the hand-coded
// strategies, the templates draw no randomness of their own: a template run
// is a pure function of (Params, seed).

// ChainAttack is the parameterized chain-substrate template. Per grant it
// reads the memory fresh and either *forks* (appends a sibling of a longest
// tip, per Target) or *extends* (appends a child of a longest tip), driven
// by a cyclic schedule: grant i forks iff i mod ForkPeriod < ForkCount,
// plus the ForkLonely override that forks whenever only one longest tip
// exists (keeping ties alive). Presets:
//
//	fork       = {ForkCount:1, ForkPeriod:1, Target:correct}   → ChainForker (Theorem 5.3)
//	tiebreak   = {ForkCount:0, ForkPeriod:1}                   → ChainTieBreaker (Theorem 5.4)
//	equivocate = {ForkCount:1, ForkPeriod:2, ForkLonely:true,
//	              Target:first}                                → Equivocator
type ChainAttack struct {
	P     Params
	env   *agreement.Env
	idx   *chain.Cached
	grant int
}

// Init implements agreement.Adversary.
func (a *ChainAttack) Init(env *agreement.Env) {
	a.env = env
	a.idx = chain.NewCached()
	a.grant = 0
	if a.P.ForkPeriod < 1 {
		a.P.ForkPeriod = 1
	}
	if a.P.Fanout < 1 {
		a.P.Fanout = 1
	}
}

// OnGrant implements agreement.Adversary.
func (a *ChainAttack) OnGrant(g access.Grant) {
	step := a.grant
	a.grant++
	view := a.env.Mem.Read()
	tips := a.idx.At(view).LongestTips()
	if len(tips) == 0 {
		a.publish(g.Node, []appendmem.MsgID{appendmem.None})
		return
	}
	fork := step%a.P.ForkPeriod < a.P.ForkCount
	if !fork && a.P.ForkLonely && len(tips) == 1 {
		fork = true
	}
	if fork {
		if a.P.Target == TargetCorrect {
			// Fork the first correct-authored longest tip; if every longest
			// tip is already Byzantine, extend ours (no point forking it).
			for _, tip := range tips {
				if !a.env.Roster.IsByzantine(view.Message(tip).Author) {
					a.publish(g.Node, []appendmem.MsgID{chain.Parent(view.Message(tip))})
					return
				}
			}
			a.publish(g.Node, []appendmem.MsgID{tips[0]})
			return
		}
		a.publish(g.Node, []appendmem.MsgID{chain.Parent(view.Message(tips[0]))})
		return
	}
	// Extend: round-robin across the first Fanout longest tips, so a raised
	// fan-out feeds every live fork instead of only the first.
	i := 0
	if a.P.Fanout > 1 {
		i = step % a.P.Fanout
		if i >= len(tips) {
			i = len(tips) - 1
		}
	}
	a.publish(g.Node, []appendmem.MsgID{tips[i]})
}

// publish lands the block, immediately or Withhold·Δ later. The parents
// were chosen against the grant-time view either way: a withheld block is
// decided early and released late.
func (a *ChainAttack) publish(node appendmem.NodeID, parents []appendmem.MsgID) {
	if a.P.Withhold <= 0 {
		a.env.Writer(node).MustAppend(-1, 0, parents)
		return
	}
	a.env.Sim.After(sim.Time(a.P.Withhold*a.env.Cfg.Delta), func() {
		a.env.Writer(node).MustAppend(-1, 0, parents)
	})
}

// DagAttack is the parameterized DAG-substrate template: Byzantine grants
// build private single-parent chains in Fanout round-robin lanes. A lane
// roots its segments at the fresh pivot tip or at the genesis (Root), and
// re-roots after every Segment blocks (0 = root once, never again).
// StartWithin > 0 wastes every grant until the pivot ordering is within
// that many values of the decision threshold k — the "last minute" gate.
// Presets:
//
//	private-chain = {Root:pivot, Segment:1}                   → DagChainExtender (Lemma 5.5)
//	last-minute   = {Root:pivot, Segment:1, StartWithin:m}    → DagLastMinute (margin m)
//	private-fork  = {Root:genesis, Segment:0}                 → DagPrivateFork
type DagAttack struct {
	P Params
	// Pivot must match the honest pivot rule when Root or StartWithin use it.
	Pivot dagba.PivotRule
	env   *agreement.Env
	idx   *dag.Cached
	tips  []appendmem.MsgID // per-lane private tip; None until rooted
	seg   []int             // per-lane blocks since the last rooting
	grant int
}

// Init implements agreement.Adversary.
func (a *DagAttack) Init(env *agreement.Env) {
	a.env = env
	a.idx = dag.NewCached()
	a.grant = 0
	if a.P.Fanout < 1 {
		a.P.Fanout = 1
	}
	if a.P.Root == "" {
		a.P.Root = RootPivot
	}
	a.tips = make([]appendmem.MsgID, a.P.Fanout)
	a.seg = make([]int, a.P.Fanout)
	for i := range a.tips {
		a.tips[i] = appendmem.None
	}
}

// OnGrant implements agreement.Adversary.
func (a *DagAttack) OnGrant(g access.Grant) {
	step := a.grant
	a.grant++
	// The fresh view is only consulted when a parameter needs it, matching
	// the legacy private-fork strategy, which never reads at all.
	var pivot []appendmem.MsgID
	if a.P.Root == RootPivot || a.P.StartWithin > 0 {
		d := a.idx.At(a.env.Mem.Read())
		pivot = a.Pivot.Pivot(d)
		if a.P.StartWithin > 0 && len(d.Linearize(pivot)) < a.env.Cfg.K-a.P.StartWithin {
			return // too early: wasting the token IS the strategy
		}
	}
	lane := 0
	if a.P.Fanout > 1 {
		lane = step % a.P.Fanout
	}
	if a.tips[lane] == appendmem.None || (a.P.Segment > 0 && a.seg[lane] >= a.P.Segment) {
		// Root a fresh segment.
		var parents []appendmem.MsgID
		if a.P.Root == RootPivot && len(pivot) > 0 {
			parents = []appendmem.MsgID{pivot[len(pivot)-1]}
		}
		a.seg[lane] = 1
		a.publish(g.Node, lane, parents)
		return
	}
	a.seg[lane]++
	a.publish(g.Node, lane, []appendmem.MsgID{a.tips[lane]})
}

// publish lands the block and records it as the lane's new tip — at grant
// time, or Withhold·Δ later (in which case intervening grants still chain
// off the previous tip, widening the private structure).
func (a *DagAttack) publish(node appendmem.NodeID, lane int, parents []appendmem.MsgID) {
	if a.P.Withhold <= 0 {
		a.tips[lane] = a.env.Writer(node).MustAppend(-1, 0, parents).ID
		return
	}
	a.env.Sim.After(sim.Time(a.P.Withhold*a.env.Cfg.Delta), func() {
		a.tips[lane] = a.env.Writer(node).MustAppend(-1, 0, parents).ID
	})
}

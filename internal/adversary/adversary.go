// Package adversary implements the Byzantine strategies the paper's
// Section 5 analyses use to derive the resilience bounds:
//
//   - ChainForker (Theorem 5.3): against deterministic tie-breaking, every
//     Byzantine append forks the chain by appending a sibling of the
//     deepest correct block; with worst-case (adversarial) tie-breaking
//     the fork wins and the correct block is orphaned, so the longest
//     chain carries a Byzantine fraction of t/(n−t) — a majority as soon
//     as t ≥ n/3.
//   - ChainTieBreaker (Theorem 5.4): against randomized tie-breaking, the
//     adversary "plays the role of a tie-breaker among the concurrent
//     correct appends": reading the memory fresh (no staleness handicap),
//     it immediately extends the first correct append of the current Δ
//     interval, prolonging the chain so that the remaining correct appends
//     of the interval — made against an outdated state — are wasted.
//   - DagChainExtender (Lemma 5.5): on the DAG, the adversary cannot orphan
//     correct values (they are included inclusively), but it can append
//     private chains on top of the pivot during intervals in which no
//     correct node appends, inserting runs of Θ(λ log n) Byzantine values
//     into the first k positions of the decision ordering.
//
// All strategies exploit exactly the powers the model grants Byzantine
// nodes: free fresh reads at any instant, free choice of referenced state,
// and the same Poisson access rationing as everyone else.
package adversary

import (
	"repro/internal/access"
	"repro/internal/agreement"
	"repro/internal/agreement/dagba"
	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/dag"
)

// ChainForker implements the Theorem 5.3 strategy. Pair it with honest
// nodes using chain.AdversarialTieBreaker (the worst case over all
// deterministic rules) to reproduce the t ≥ n/3 validity failure; pair it
// with chain.FirstTieBreaker to see the attack lose its force.
type ChainForker struct {
	// Value is the vote Byzantine blocks carry; 0 means -1.
	Value int64
	env   *agreement.Env
	idx   *chain.Cached
}

// Init implements agreement.Adversary.
func (a *ChainForker) Init(env *agreement.Env) {
	a.env = env
	a.idx = chain.NewCached()
	if a.Value == 0 {
		a.Value = -1
	}
}

// OnGrant appends a sibling of the deepest correct block ("its value to the
// same append as the last correct node"), producing two longest chains.
func (a *ChainForker) OnGrant(g access.Grant) {
	view := a.env.Mem.Read()
	tree := a.idx.At(view)
	w := a.env.Writer(g.Node)
	tips := tree.LongestTips()
	if len(tips) == 0 {
		w.MustAppend(a.Value, 0, []appendmem.MsgID{appendmem.None})
		return
	}
	// Fork the first correct-authored longest tip; if every longest tip is
	// already Byzantine, extend ours instead (no point forking ourselves).
	for _, tip := range tips {
		if !a.env.Roster.IsByzantine(view.Message(tip).Author) {
			w.MustAppend(a.Value, 0, []appendmem.MsgID{chain.Parent(view.Message(tip))})
			return
		}
	}
	w.MustAppend(a.Value, 0, []appendmem.MsgID{tips[0]})
}

// ChainTieBreaker implements the Theorem 5.4 strategy against randomized
// tie-breaking: with a perfectly fresh view it extends the deepest tip the
// moment it appears, so concurrent correct appends (working against views
// up to Δ stale) land one level short and fall off the longest chain.
type ChainTieBreaker struct {
	// Value is the vote Byzantine blocks carry; 0 means -1.
	Value int64
	env   *agreement.Env
	idx   *chain.Cached
}

// Init implements agreement.Adversary.
func (a *ChainTieBreaker) Init(env *agreement.Env) {
	a.env = env
	a.idx = chain.NewCached()
	if a.Value == 0 {
		a.Value = -1
	}
}

// OnGrant extends the first-arrived longest tip of the *fresh* memory.
func (a *ChainTieBreaker) OnGrant(g access.Grant) {
	view := a.env.Mem.Read()
	tip := appendmem.None
	if tips := a.idx.At(view).LongestTips(); len(tips) > 0 {
		tip = tips[0]
	}
	a.env.Writer(g.Node).MustAppend(a.Value, 0, []appendmem.MsgID{tip})
}

// DagChainExtender implements the Lemma 5.5 strategy. Every Byzantine
// grant extends the current pivot tip with a block that references *only*
// its selected parent — never the other tips — so the adversary's blocks
// form chains that enter the ordering early while contributing nothing to
// the inclusion of correct values. During a correct-silent interval the
// Byzantine chain grows unobstructed, inserting a consecutive run of
// Byzantine values into the first k ordered positions.
type DagChainExtender struct {
	// Pivot must match the honest nodes' pivot rule so the private chain
	// lands on the pivot they will order by.
	Pivot dagba.PivotRule
	// Value is the vote Byzantine blocks carry; 0 means -1.
	Value int64
	env   *agreement.Env
	idx   *dag.Cached
}

// Init implements agreement.Adversary.
func (a *DagChainExtender) Init(env *agreement.Env) {
	a.env = env
	a.idx = dag.NewCached()
	if a.Value == 0 {
		a.Value = -1
	}
}

// OnGrant extends the fresh pivot tip with a single-parent block.
func (a *DagChainExtender) OnGrant(g access.Grant) {
	view := a.env.Mem.Read()
	d := a.idx.At(view)
	pivot := a.Pivot.Pivot(d)
	w := a.env.Writer(g.Node)
	if len(pivot) == 0 {
		w.MustAppend(a.Value, 0, nil)
		return
	}
	w.MustAppend(a.Value, 0, []appendmem.MsgID{pivot[len(pivot)-1]})
}

// Equivocator appends two conflicting chain blocks per grant-pair: it
// alternates extending the two deepest distinct tips it can find, keeping
// forks alive as long as possible. Used in robustness tests — the chain
// protocols must still terminate (the paper's termination argument only
// needs *some* longest chain to reach k).
type Equivocator struct {
	env  *agreement.Env
	flip bool
	idx  *chain.Cached
}

// Init implements agreement.Adversary.
func (a *Equivocator) Init(env *agreement.Env) {
	a.env = env
	a.flip = false
	a.idx = chain.NewCached()
}

// OnGrant alternately extends the two earliest longest tips.
func (a *Equivocator) OnGrant(g access.Grant) {
	view := a.env.Mem.Read()
	tree := a.idx.At(view)
	tips := tree.LongestTips()
	w := a.env.Writer(g.Node)
	switch {
	case len(tips) == 0:
		w.MustAppend(-1, 0, []appendmem.MsgID{appendmem.None})
	case len(tips) == 1 || !a.flip:
		// Fork: sibling of the unique/first longest tip.
		w.MustAppend(-1, 0, []appendmem.MsgID{chain.Parent(view.Message(tips[0]))})
	default:
		w.MustAppend(-1, 0, []appendmem.MsgID{tips[0]})
	}
	a.flip = !a.flip
}

// DagLastMinute is the literal Lemma 5.5 strategy: the Byzantine nodes
// stay silent while the correct nodes fill the ordering, and only once the
// decision threshold k is within Margin values do they start extending the
// pivot with private chains — "append a chain of values in the last
// interval just before the decision". With zero confirmation depth the
// burst occupies the tail of the first k ordered values; with a
// confirmation depth larger than the burst, the prefix is sealed before
// the attack can reach it (experiment E19).
type DagLastMinute struct {
	// Pivot must match the honest pivot rule.
	Pivot dagba.PivotRule
	// Margin is how close (in ordered values) the decision must be before
	// the attack starts; 0 means 6.
	Margin int
	// Value is the vote of the private blocks; 0 means -1.
	Value int64
	env   *agreement.Env
	idx   *dag.Cached
}

// Init implements agreement.Adversary.
func (a *DagLastMinute) Init(env *agreement.Env) {
	a.env = env
	a.idx = dag.NewCached()
	if a.Margin == 0 {
		a.Margin = 6
	}
	if a.Value == 0 {
		a.Value = -1
	}
}

// OnGrant stays silent until the ordering is within Margin of k, then
// extends the pivot tip with single-parent blocks.
func (a *DagLastMinute) OnGrant(g access.Grant) {
	view := a.env.Mem.Read()
	d := a.idx.At(view)
	pivot := a.Pivot.Pivot(d)
	if len(d.Linearize(pivot)) < a.env.Cfg.K-a.Margin {
		return // too early: wasting the token IS the strategy
	}
	w := a.env.Writer(g.Node)
	if len(pivot) == 0 {
		w.MustAppend(a.Value, 0, nil)
		return
	}
	w.MustAppend(a.Value, 0, []appendmem.MsgID{pivot[len(pivot)-1]})
}

// DagPrivateFork is the classic GHOST-motivating attack (Sompolinsky &
// Zohar [22], the paper's DAG tie-breaking reference): the Byzantine nodes
// build a single private chain from the genesis that never references any
// honest block. Honest staleness forks dilute the honest nodes' *longest*
// selected-parent chain, so at high rates the compact Byzantine chain can
// out-length it and hijack a longest-chain pivot — while GHOST, which
// weighs entire subtrees, keeps following the (heavier) honest side. This
// is exactly why Algorithm 6's correctness leans on GHOST-style rules.
type DagPrivateFork struct {
	// Value is the vote of the private blocks; 0 means -1.
	Value int64
	env   *agreement.Env
	tip   appendmem.MsgID
	have  bool
}

// Init implements agreement.Adversary.
func (a *DagPrivateFork) Init(env *agreement.Env) {
	a.env = env
	a.tip = appendmem.None
	a.have = false
	if a.Value == 0 {
		a.Value = -1
	}
}

// OnGrant extends the private genesis-rooted chain.
func (a *DagPrivateFork) OnGrant(g access.Grant) {
	w := a.env.Writer(g.Node)
	var msg *appendmem.Message
	if !a.have {
		msg = w.MustAppend(a.Value, 0, nil)
		a.have = true
	} else {
		msg = w.MustAppend(a.Value, 0, []appendmem.MsgID{a.tip})
	}
	a.tip = msg.ID
}

package adversary

import (
	"testing"

	"repro/internal/agreement"
	"repro/internal/agreement/chainba"
	"repro/internal/agreement/dagba"
	"repro/internal/agreement/timestamp"
	"repro/internal/chain"
)

// Fuzz-style robustness: every protocol must terminate with agreement
// among correct nodes under arbitrary well-formed Byzantine appends, at a
// Byzantine share where validity is guaranteed only weakly.
func TestRandomAdversaryRobustness(t *testing.T) {
	type proto struct {
		name string
		rule agreement.HonestRule
	}
	protos := []proto{
		{"timestamp", timestamp.Rule{}},
		{"chain", chainba.Rule{TB: chain.RandomTieBreaker{}}},
		{"dag-ghost", dagba.Rule{Pivot: dagba.Ghost}},
		{"dag-longest", dagba.Rule{Pivot: dagba.Longest}},
	}
	for _, p := range protos {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 25; seed++ {
				r, err := agreement.RunRandomized(agreement.RandomizedConfig{
					N: 9, T: 3, Lambda: 0.7, K: 15, Seed: seed,
				}, p.rule, &Random{})
				if err != nil {
					t.Fatal(err)
				}
				if !r.Verdict.Termination {
					t.Fatalf("seed %d: random noise blocked termination", seed)
				}
			}
		})
	}
}

func TestRandomAdversaryActuallyAppends(t *testing.T) {
	r := agreement.MustRun(agreement.RandomizedConfig{
		N: 6, T: 2, Lambda: 1, K: 15, Seed: 3,
	}, chainba.Rule{TB: chain.RandomTieBreaker{}}, &Random{})
	if r.ByzAppends == 0 {
		t.Fatal("random adversary appended nothing")
	}
	// Its messages must include some with multiple or no parents.
	multi, none := false, false
	for _, msg := range r.FinalView.Messages() {
		if !r.Roster.IsByzantine(msg.Author) {
			continue
		}
		if len(msg.Parents) > 1 {
			multi = true
		}
		if len(msg.Parents) == 0 {
			none = true
		}
	}
	if !multi || !none {
		t.Fatalf("random adversary not diverse: multi=%v none=%v", multi, none)
	}
}

func TestRandomAdversaryCrashSafetyWithCrashes(t *testing.T) {
	// Noise + crashes together must still terminate for the survivors.
	for seed := uint64(0); seed < 10; seed++ {
		r := agreement.MustRun(agreement.RandomizedConfig{
			N: 9, T: 2, Crashes: 2, Lambda: 0.7, K: 15, Seed: seed,
		}, dagba.Rule{Pivot: dagba.Ghost}, &Random{})
		if !r.Verdict.Termination || !r.Verdict.Agreement {
			t.Fatalf("seed %d: %+v", seed, r.Verdict)
		}
	}
}

package adversary

import (
	"testing"

	"repro/internal/access"
	"repro/internal/agreement"
	"repro/internal/agreement/dagba"
	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/node"
	"repro/internal/xrand"
)

// testEnv builds a bare environment: n nodes, last t Byzantine.
func testEnv(n, t int) *agreement.Env {
	return &agreement.Env{
		Mem:    appendmem.New(n),
		Roster: node.NewRoster(n, t),
		Rng:    xrand.New(1, 1),
	}
}

func grantFor(id appendmem.NodeID) access.Grant {
	return access.Grant{Node: id}
}

func TestChainForkerEmptyMemory(t *testing.T) {
	env := testEnv(4, 1)
	a := &ChainForker{}
	a.Init(env)
	a.OnGrant(grantFor(3))
	if env.Mem.Len() != 1 {
		t.Fatal("no append")
	}
	msg := env.Mem.Message(0)
	if msg.Value != -1 || msg.Parents[0] != appendmem.None {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestChainForkerForksCorrectTip(t *testing.T) {
	env := testEnv(4, 1)
	g := env.Mem.Writer(0).MustAppend(+1, 0, []appendmem.MsgID{appendmem.None})
	tip := env.Mem.Writer(1).MustAppend(+1, 0, []appendmem.MsgID{g.ID})
	a := &ChainForker{}
	a.Init(env)
	a.OnGrant(grantFor(3))
	forked := env.Mem.Message(2)
	// Sibling of the correct tip: same parent, same depth.
	if forked.Parents[0] != chain.Parent(env.Mem.Message(tip.ID)) {
		t.Fatalf("forked parent = %d, want %d", forked.Parents[0], g.ID)
	}
	tree := chain.Build(env.Mem.Read())
	tips := tree.LongestTips()
	if len(tips) != 2 {
		t.Fatalf("fork did not create a tie: tips = %v", tips)
	}
}

func TestChainForkerExtendsOwnTip(t *testing.T) {
	// When every longest tip is Byzantine, extend instead of self-forking.
	env := testEnv(4, 2)
	byzTip := env.Mem.Writer(3).MustAppend(-1, 0, []appendmem.MsgID{appendmem.None})
	a := &ChainForker{}
	a.Init(env)
	a.OnGrant(grantFor(2))
	got := env.Mem.Message(1)
	if got.Parents[0] != byzTip.ID {
		t.Fatalf("parent = %d, want extension of %d", got.Parents[0], byzTip.ID)
	}
}

func TestChainForkerCustomValue(t *testing.T) {
	env := testEnv(3, 1)
	a := &ChainForker{Value: +1}
	a.Init(env)
	a.OnGrant(grantFor(2))
	if env.Mem.Message(0).Value != +1 {
		t.Fatal("custom value ignored")
	}
}

func TestChainTieBreakerExtendsFreshTip(t *testing.T) {
	env := testEnv(4, 1)
	g := env.Mem.Writer(0).MustAppend(+1, 0, []appendmem.MsgID{appendmem.None})
	tip := env.Mem.Writer(1).MustAppend(+1, 0, []appendmem.MsgID{g.ID})
	a := &ChainTieBreaker{}
	a.Init(env)
	a.OnGrant(grantFor(3))
	got := env.Mem.Message(2)
	if got.Parents[0] != tip.ID {
		t.Fatalf("parent = %d, want fresh tip %d", got.Parents[0], tip.ID)
	}
	if got.Value != -1 {
		t.Fatalf("value = %d", got.Value)
	}
}

func TestChainTieBreakerEmptyMemory(t *testing.T) {
	env := testEnv(3, 1)
	a := &ChainTieBreaker{}
	a.Init(env)
	a.OnGrant(grantFor(2))
	if env.Mem.Len() != 1 || env.Mem.Message(0).Parents[0] != appendmem.None {
		t.Fatal("empty-memory append malformed")
	}
}

func TestDagChainExtenderSingleParent(t *testing.T) {
	env := testEnv(4, 1)
	g := env.Mem.Writer(0).MustAppend(+1, 0, nil)
	other := env.Mem.Writer(1).MustAppend(+1, 0, []appendmem.MsgID{g.ID})
	_ = other
	a := &DagChainExtender{Pivot: dagba.Ghost}
	a.Init(env)
	a.OnGrant(grantFor(3))
	msg := env.Mem.Message(2)
	if len(msg.Parents) != 1 {
		t.Fatalf("private block references %d parents, want 1", len(msg.Parents))
	}
	// Two consecutive grants build a chain.
	a.OnGrant(grantFor(3))
	next := env.Mem.Message(3)
	if next.Parents[0] != msg.ID {
		t.Fatalf("second private block extends %d, want %d", next.Parents[0], msg.ID)
	}
}

func TestDagChainExtenderEmptyMemory(t *testing.T) {
	env := testEnv(3, 1)
	a := &DagChainExtender{Pivot: dagba.Longest}
	a.Init(env)
	a.OnGrant(grantFor(2))
	if env.Mem.Len() != 1 {
		t.Fatal("no append on empty memory")
	}
}

func TestEquivocatorAlternates(t *testing.T) {
	env := testEnv(4, 1)
	g := env.Mem.Writer(0).MustAppend(+1, 0, []appendmem.MsgID{appendmem.None})
	env.Mem.Writer(1).MustAppend(+1, 0, []appendmem.MsgID{g.ID})
	a := &Equivocator{}
	a.Init(env)
	a.OnGrant(grantFor(3)) // fork
	a.OnGrant(grantFor(3)) // extend
	first, second := env.Mem.Message(2), env.Mem.Message(3)
	if first.Parents[0] == second.Parents[0] {
		t.Fatal("equivocator did not alternate targets")
	}
}

func TestAdversariesOnlyUseOwnWriters(t *testing.T) {
	// Granting an adversary an honest node's id must panic via Env.Writer.
	env := testEnv(4, 1)
	for _, adv := range []agreement.Adversary{&ChainForker{}, &ChainTieBreaker{}, &DagChainExtender{}, &Equivocator{}} {
		adv.Init(env)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%T appended via an honest writer", adv)
				}
			}()
			adv.OnGrant(grantFor(0)) // node 0 is honest
		}()
	}
}

func TestDagLastMinuteStaysSilentEarly(t *testing.T) {
	env := testEnv(4, 1)
	env.Cfg.K = 41
	g := env.Mem.Writer(0).MustAppend(+1, 0, nil)
	_ = g
	a := &DagLastMinute{Pivot: dagba.Ghost, Margin: 6}
	a.Init(env)
	a.OnGrant(grantFor(3))
	if env.Mem.Len() != 1 {
		t.Fatal("last-minute adversary appended before the trigger")
	}
}

func TestDagLastMinuteBurstsNearK(t *testing.T) {
	env := testEnv(4, 1)
	env.Cfg.K = 5
	parent := appendmem.None
	for i := 0; i < 4; i++ { // ordering length 4 >= K - Margin(6)... trigger immediately
		msg := env.Mem.Writer(0).MustAppend(+1, 0, []appendmem.MsgID{parent})
		parent = msg.ID
	}
	a := &DagLastMinute{Pivot: dagba.Ghost, Margin: 2}
	a.Init(env)
	a.OnGrant(grantFor(3))
	if env.Mem.Len() != 5 {
		t.Fatal("last-minute adversary did not fire near k")
	}
	msg := env.Mem.Message(4)
	if len(msg.Parents) != 1 || msg.Value != -1 {
		t.Fatalf("burst block malformed: %+v", msg)
	}
}

func TestDagPrivateForkNeverReferencesHonest(t *testing.T) {
	env := testEnv(4, 1)
	g := env.Mem.Writer(0).MustAppend(+1, 0, nil)
	_ = g
	a := &DagPrivateFork{}
	a.Init(env)
	a.OnGrant(grantFor(3))
	a.OnGrant(grantFor(3))
	first, second := env.Mem.Message(1), env.Mem.Message(2)
	if len(first.Parents) != 0 {
		t.Fatalf("fork root has parents: %v", first.Parents)
	}
	if len(second.Parents) != 1 || second.Parents[0] != first.ID {
		t.Fatalf("fork not chained: %+v", second)
	}
}

package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

func ringSpec() Spec {
	return Spec{
		Protocol: Dag, N: 8, Lambda: 1, K: 12, Seed: 5,
		Topology: TopoRing, TopologyParams: map[string]float64{"k": 1},
		DelayDist: "uniform",
	}
}

func TestBindTopologyErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"unknown topology", func(s *Spec) { s.Topology = "torus" }, "unknown topology"},
		{"unknown delay dist", func(s *Spec) { s.DelayDist = "gaussian" }, "delay"},
		{"jitter out of range", func(s *Spec) { s.LinkJitter = 1 }, "link_jitter"},
		{"negative link delay", func(s *Spec) { s.LinkDelay = -0.5 }, "link_delay"},
		{"ring too dense", func(s *Spec) { s.TopologyParams = map[string]float64{"k": 4} }, "2k < n"},
		{"non-integer param", func(s *Spec) { s.TopologyParams = map[string]float64{"k": 1.5} }, "positive integer"},
		{"table without rows", func(s *Spec) { s.Topology = TopoTable }, "topology_table"},
		{"disconnected table", func(s *Spec) {
			s.N, s.Topology = 4, TopoTable
			s.TopologyTable = [][]float64{{0, 1}, {2, 3}}
		}, "disconnected"},
	}
	for _, c := range cases {
		spec := ringSpec()
		c.mut(&spec)
		_, err := Bind(spec)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	// The unknown-name error must enumerate the registry, like the other
	// registries' errors do.
	spec := ringSpec()
	spec.Topology = "torus"
	if _, err := Bind(spec); err == nil || !strings.Contains(err.Error(), Topologies.Help()) {
		t.Errorf("unknown-topology error does not enumerate the registry: %v", err)
	}
}

func TestBindTopologySyncRejected(t *testing.T) {
	spec := Spec{Protocol: Sync, N: 4, T: 1, Topology: TopoRing}
	if _, err := Bind(spec); err == nil || !strings.Contains(err.Error(), "randomized protocols only") {
		t.Fatalf("err = %v", err)
	}
	// Explicit "complete" is the default and stays valid everywhere.
	spec.Topology = TopoComplete
	if _, err := Bind(spec); err != nil {
		t.Fatalf("sync with complete topology: %v", err)
	}
}

func TestTopologyRunProducesLag(t *testing.T) {
	b, err := Bind(ringSpec())
	if err != nil {
		t.Fatal(err)
	}
	r, err := b.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verdict.OK() {
		t.Fatalf("verdict = %+v", r.Verdict)
	}
	if r.VisMeanLag <= 0 {
		t.Fatalf("VisMeanLag = %v, want > 0 on a sparse ring", r.VisMeanLag)
	}
	// The default (no topology) path reports no lag.
	spec := ringSpec()
	spec.Topology, spec.TopologyParams, spec.DelayDist = "", nil, ""
	r2 := MustBind(spec).mustRun(5)
	if r2.VisMeanLag != 0 {
		t.Fatalf("oracle path VisMeanLag = %v", r2.VisMeanLag)
	}
}

func TestTopologySweepParamsNotAliased(t *testing.T) {
	spec := ringSpec()
	spec.Topology = TopoSmallWorld
	spec.TopologyParams = map[string]float64{"k": 1}
	spec.Sweep = []Axis{{Name: "topo:beta", Values: []Value{{Num: 0}, {Num: 0.5}, {Num: 1}}}}
	points, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i, want := range []float64{0, 0.5, 1} {
		if got := points[i].Spec.TopologyParams["beta"]; got != want {
			t.Fatalf("point %d beta = %v, want %v", i, got, want)
		}
		if got := points[i].Spec.TopologyParams["k"]; got != 1 {
			t.Fatalf("point %d lost base param k: %v", i, got)
		}
	}
	if spec.TopologyParams["beta"] != 0 || len(spec.TopologyParams) != 1 {
		t.Fatalf("expansion mutated the root spec's params: %v", spec.TopologyParams)
	}
}

func TestBuildTopology(t *testing.T) {
	g, err := BuildTopology(ringSpec())
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 || g.NumEdges() != 8 {
		t.Fatalf("ring graph: n=%d edges=%d", g.N(), g.NumEdges())
	}
	// "complete" materializes an explicit mesh for inspection, unlike the
	// nil oracle marker Bind uses internally.
	g, err = BuildTopology(Spec{Protocol: Dag, N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsComplete() || g.N() != 5 {
		t.Fatalf("complete graph: %+v", g)
	}
}

// TestTopologySweepWorkerInvariance is the PR's acceptance criterion at
// the scenario level: a gossip-delayed sweep must aggregate to
// byte-identical JSON whether the trials run on one worker or eight.
func TestTopologySweepWorkerInvariance(t *testing.T) {
	spec := ringSpec()
	spec.Trials = 6
	spec.Metrics = []string{"ok", "duration", "vis-lag"}
	spec.Sweep = []Axis{
		{Name: "topology", Values: []Value{
			{Str: "complete", IsStr: true},
			{Str: "ring", IsStr: true},
			{Str: "smallworld", IsStr: true},
		}},
		{Name: "delay_dist", Values: []Value{
			{Str: "fixed", IsStr: true},
			{Str: "longtail", IsStr: true},
		}},
	}
	run := func(workers int) []byte {
		res, err := RunSpec(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(1), run(8)
	if string(a) != string(b) {
		t.Fatalf("sweep diverges across worker counts:\n%s\n%s", a, b)
	}
}

func TestBindSharedRoutePlane(t *testing.T) {
	// A topology binding carries one shared route plane over its graph,
	// empty until someone routes; the oracle path carries none.
	b, err := Bind(ringSpec())
	if err != nil {
		t.Fatal(err)
	}
	r := b.Routes()
	if r == nil {
		t.Fatal("topology binding has no shared route plane")
	}
	if r.Graph() == nil || r.Graph().N() != 8 {
		t.Fatalf("route plane bound to wrong graph: %+v", r.Graph())
	}
	if r.Computed() != 0 {
		t.Fatalf("fresh binding precomputed %d planes, want lazy", r.Computed())
	}

	spec := ringSpec()
	spec.Topology = TopoComplete
	spec.TopologyParams = nil
	cb, err := Bind(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Routes() != nil {
		t.Fatal("oracle binding carries a route plane")
	}
}

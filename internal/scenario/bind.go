package scenario

import (
	"fmt"
	"strings"

	"repro/internal/agreement"
	"repro/internal/agreement/syncba"
	"repro/internal/appendmem"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Result is the uniform outcome of one run, across the synchronous and
// the randomized harnesses.
type Result struct {
	Verdict  node.Verdict
	Decision []int64 // per node; meaningful where Decided
	Decided  []bool
	Roster   node.Roster
	Inputs   node.Inputs

	TotalAppends int
	ByzAppends   int // randomized runs only
	Grants       int // randomized runs only
	Duration     sim.Time
	FinalView    appendmem.View
	HasView      bool

	// DecideTime[i] is when correct node i decided (randomized runs only;
	// zero when undecided or for sync runs).
	DecideTime []sim.Time

	// VisMeanLag is the mean append-propagation lag over the topology
	// (randomized runs with a non-complete topology; zero otherwise).
	VisMeanLag float64

	// MemHighWater is the peak live-message count over the run — equal to
	// TotalAppends for an unbounded memory, bounded near the spec's Window
	// in windowed mode (randomized runs only).
	MemHighWater int

	// Mem and DecideViewSize reconstruct each node's exact decision view
	// (Mem.ViewAt(DecideViewSize[i])) for the invariant checks; randomized
	// runs only, nil for sync.
	Mem            *appendmem.Memory
	DecideViewSize []int
}

// Bound is a spec resolved against the registries: the honest rule, the
// adversary factory and the input schedule are closures, so per-trial
// execution performs no registry or string lookups. A Bound is safe for
// concurrent use — trial fan-outs call Randomized/Sync/Run from many
// goroutines.
type Bound struct {
	spec Spec
	sync bool

	rule    agreement.HonestRule          // randomized protocols
	newAdv  func() agreement.Adversary    // fresh instance per run
	newSync func() syncba.Adversary       // sync protocol
	access  AccessDef                     // randomized protocols
	inputs  func(seed uint64) node.Inputs // fresh slice per run

	topo      *topology.Graph     // nil on the complete (oracle) path
	topoDelay topology.DelayModel // per-link delay model (topo != nil)
	routes    *topology.Routes    // shared route plane over topo (topo != nil)
}

// Spec returns the spec the binding was resolved from.
func (b *Bound) Spec() Spec { return b.spec }

// IsSync reports whether the scenario runs on the synchronous-round
// harness.
func (b *Bound) IsSync() bool { return b.sync }

// Routes returns the binding's shared route plane — per-source
// shortest-path trees over the bound topology, computed at most once per
// graph and safe to share read-only across trials and workers. Nil when
// the scenario runs on the complete (oracle) path.
func (b *Bound) Routes() *topology.Routes { return b.routes }

// parseInputs validates an input spec and returns its per-seed resolver.
// The "random" form draws from a seed-derived stream (the same one the
// amrun CLI always used), so random-input trials stay deterministic per
// seed.
func parseInputs(spec string, n int) (func(seed uint64) node.Inputs, error) {
	switch {
	case spec == "" || spec == "same":
		return func(uint64) node.Inputs { return node.AllSame(n, +1) }, nil
	case spec == "same:-1":
		return func(uint64) node.Inputs { return node.AllSame(n, -1) }, nil
	case strings.HasPrefix(spec, "split:"):
		var ones int
		if _, err := fmt.Sscanf(spec, "split:%d", &ones); err != nil || ones < 0 || ones > n {
			return nil, fmt.Errorf("scenario: bad input spec %q for n=%d", spec, n)
		}
		return func(uint64) node.Inputs { return node.SplitInputs(n, ones) }, nil
	case spec == "random":
		return func(seed uint64) node.Inputs {
			return node.RandomInputs(xrand.New(seed, 0xC0DE), n)
		}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown input spec %q (want same, same:-1, split:<ones> or random)", spec)
	}
}

// Bind resolves a spec against the registries. All validation that does
// not depend on the seed happens here, so the returned Bound's run
// methods cannot fail on configuration.
func Bind(spec Spec) (*Bound, error) {
	p, ok := Protocols.Lookup(string(spec.Protocol))
	if !ok {
		return nil, fmt.Errorf("scenario: unknown protocol %q (have %s)", spec.Protocol, Protocols.Help())
	}
	if spec.N <= 0 || spec.T < 0 || spec.T >= spec.N {
		return nil, fmt.Errorf("scenario: invalid roster n=%d t=%d", spec.N, spec.T)
	}
	if spec.Crashes < 0 || spec.T+spec.Crashes > spec.N {
		return nil, fmt.Errorf("scenario: %d crashes do not fit n=%d t=%d", spec.Crashes, spec.N, spec.T)
	}
	inputs, err := parseInputs(spec.Inputs, spec.N)
	if err != nil {
		return nil, err
	}

	attackName := spec.Attack
	if attackName == "" {
		attackName = AttackSilent
	}
	att, ok := Attacks.Lookup(string(attackName))
	if !ok {
		return nil, fmt.Errorf("scenario: unknown attack %q (have %s)", attackName, Attacks.Help())
	}
	if len(spec.AttackParams) > 0 && att.Schema == nil {
		return nil, fmt.Errorf("scenario: attack %q takes no parameters (parameterized attacks: %s)",
			attackName, strings.Join(ParameterizedAttacks(), " | "))
	}

	b := &Bound{spec: spec, sync: p.Sync, inputs: inputs}
	if p.Sync {
		if att.NewSync == nil {
			return nil, fmt.Errorf("scenario: attack %q not valid for protocol sync (have %s)",
				attackName, strings.Join(SyncAttacks(), " | "))
		}
		if spec.Access != "" && spec.Access != AccessPoisson {
			return nil, fmt.Errorf("scenario: access model %q applies to randomized protocols only", spec.Access)
		}
		if spec.Topology != "" && spec.Topology != TopoComplete {
			return nil, fmt.Errorf("scenario: topology %q applies to randomized protocols only", spec.Topology)
		}
		b.newSync, err = att.NewSync(&spec)
		if err != nil {
			return nil, err
		}
		return b, nil
	}

	if spec.Rates != nil {
		if len(spec.Rates) != spec.N {
			return nil, fmt.Errorf("scenario: %d rates for %d nodes", len(spec.Rates), spec.N)
		}
		for _, r := range spec.Rates {
			if r <= 0 {
				return nil, fmt.Errorf("scenario: non-positive per-node rate %v", r)
			}
		}
	} else if spec.Lambda <= 0 {
		return nil, fmt.Errorf("scenario: protocol %q needs lambda > 0 (or per-node rates)", spec.Protocol)
	}
	if spec.K <= 0 {
		return nil, fmt.Errorf("scenario: protocol %q needs k > 0", spec.Protocol)
	}
	b.rule, err = p.Rule(&spec)
	if err != nil {
		return nil, err
	}
	if att.New == nil || !att.appliesTo(spec.Protocol) {
		return nil, fmt.Errorf("scenario: attack %q not valid for protocol %q (have %s)",
			attackName, spec.Protocol, strings.Join(AttacksFor(spec.Protocol), " | "))
	}
	b.newAdv, err = att.New(&spec, b.rule)
	if err != nil {
		return nil, err
	}
	accessName := spec.Access
	if accessName == "" {
		accessName = AccessPoisson
	}
	b.access, ok = AccessModels.Lookup(string(accessName))
	if !ok {
		return nil, fmt.Errorf("scenario: unknown access model %q (have %s)", accessName, AccessModels.Help())
	}
	if err := b.bindTopology(); err != nil {
		return nil, err
	}
	if err := b.bindBounded(); err != nil {
		return nil, err
	}
	return b, nil
}

// bindBounded validates the windowed-memory and checkpointing knobs
// eagerly, so a sweep cannot fail (or silently disable a mode) trials in.
func (b *Bound) bindBounded() error {
	s := &b.spec
	if s.Window < 0 {
		return fmt.Errorf("scenario: window must be >= 0, got %d", s.Window)
	}
	if s.Window == 0 && !s.Checkpoint {
		return nil
	}
	if s.Window > 0 && s.Checkpoint {
		return fmt.Errorf("scenario: window and checkpoint are mutually exclusive (a windowed memory cannot be snapshotted)")
	}
	if s.Protocol != Chain && s.Protocol != Dag {
		return fmt.Errorf("scenario: window/checkpoint apply to chain/dag protocols only, not %q", s.Protocol)
	}
	switch {
	case b.topo != nil:
		return fmt.Errorf("scenario: window/checkpoint require the complete topology, not %q", s.Topology)
	case s.AsyncDelayMax > 0:
		return fmt.Errorf("scenario: window/checkpoint are incompatible with async_delay_max")
	case s.StallAtSize > 0:
		return fmt.Errorf("scenario: window/checkpoint are incompatible with stall_at")
	}
	if s.Window > 0 {
		if lookback := s.K + s.Confirm; s.Window < lookback {
			return fmt.Errorf("scenario: window %d is smaller than the decision lookback k+confirm = %d+%d = %d",
				s.Window, s.K, s.Confirm, lookback)
		}
		if _, ok := b.rule.(agreement.WindowedRule); !ok {
			return fmt.Errorf("scenario: protocol %q cannot bound its reachable prefix", s.Protocol)
		}
		if s.T > 0 {
			if _, ok := b.newAdv().(agreement.WindowedAdversary); !ok {
				return fmt.Errorf("scenario: attack %q cannot bound its reachable prefix; window supports silent/flip", s.Attack)
			}
		}
	}
	if s.Checkpoint {
		// A resumed run re-creates the adversary from scratch; only
		// adversaries fully determined by (fresh view, rng cursor) replay
		// correctly. The private-chain family carries hidden per-run state
		// the checkpoint does not capture.
		if a := s.Attack; a != "" && a != AttackSilent && a != AttackFlip {
			return fmt.Errorf("scenario: checkpoint supports attacks silent/flip only, not %q (adversary state is not checkpointed)", a)
		}
	}
	return nil
}

// bindTopology resolves the spec's topology and delay-model fields. The
// complete topology (the default) binds to a nil graph: the harness then
// takes the original Δ-bounded oracle path, byte-for-byte.
func (b *Bound) bindTopology() error {
	dk, err := topology.ParseDelayKind(b.spec.DelayDist)
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if j := b.spec.LinkJitter; j < 0 || j >= 1 {
		return fmt.Errorf("scenario: link_jitter must be in [0,1), got %v", j)
	}
	if b.spec.LinkDelay < 0 {
		return fmt.Errorf("scenario: link_delay must be >= 0, got %v", b.spec.LinkDelay)
	}
	b.topoDelay = topology.DelayModel{Kind: dk, Jitter: b.spec.LinkJitter}
	name := b.spec.Topology
	if name == "" {
		name = TopoComplete
	}
	if _, ok := Topologies.Lookup(string(name)); !ok {
		return fmt.Errorf("scenario: unknown topology %q (have %s)", name, Topologies.Help())
	}
	if name == TopoComplete {
		return nil
	}
	g, err := buildGraph(&b.spec, name)
	if err != nil {
		return err
	}
	if !g.Connected() {
		return fmt.Errorf("scenario: topology %q with n=%d is disconnected", name, b.spec.N)
	}
	b.topo = g
	// One shared route plane per binding: transports and tools that
	// source-route over this graph share its shortest-path trees across
	// every trial and worker instead of recomputing them per trial.
	b.routes = topology.NewRoutes(g)
	return nil
}

// buildGraph runs the registered generator for one topology name. Link
// latencies come out in simulator time units: LinkDelay (default 0.5) is
// in Δ, so a sparse graph's extra hops are measured against the oracle's
// Δ-bound.
func buildGraph(s *Spec, name Topology) (*topology.Graph, error) {
	def, ok := Topologies.Lookup(string(name))
	if !ok {
		return nil, fmt.Errorf("scenario: unknown topology %q (have %s)", name, Topologies.Help())
	}
	delta := s.Delta
	if delta == 0 {
		delta = 1
	}
	linkDelay := s.LinkDelay
	if linkDelay == 0 {
		linkDelay = 0.5
	}
	return def(s, xrand.New(s.Seed, topologyStream), linkDelay*delta, delta)
}

// BuildTopology materializes the graph a spec names, exactly as Bind
// would — except that the complete topology yields an explicit mesh
// instead of the nil oracle marker, so inspection tools (amdot) can draw
// it. Connectivity is reported, not enforced.
func BuildTopology(spec Spec) (*topology.Graph, error) {
	if spec.N <= 0 {
		return nil, fmt.Errorf("scenario: topology needs n > 0, got %d", spec.N)
	}
	name := spec.Topology
	if name == "" {
		name = TopoComplete
	}
	return buildGraph(&spec, name)
}

// MustBind is Bind for vetted specs (experiment code); it panics on error.
func MustBind(spec Spec) *Bound {
	b, err := Bind(spec)
	if err != nil {
		panic(err)
	}
	return b
}

// Rule returns the resolved honest rule (nil for sync scenarios).
func (b *Bound) Rule() agreement.HonestRule { return b.rule }

// NewAdversary returns a fresh adversary instance (randomized scenarios).
func (b *Bound) NewAdversary() agreement.Adversary { return b.newAdv() }

// randomizedConfig assembles the per-seed harness config. Field-for-field
// it matches what the experiments passed to agreement.MustRun before the
// scenario layer existed — the golden tests pin that equivalence.
func (b *Bound) randomizedConfig(seed uint64, rec *trace.Recorder) agreement.RandomizedConfig {
	cfg := agreement.RandomizedConfig{
		N: b.spec.N, T: b.spec.T, Lambda: b.spec.Lambda, Rates: b.spec.Rates,
		Delta: b.spec.Delta, K: b.spec.K, Seed: seed,
		Inputs: b.inputs(seed), Crashes: b.spec.Crashes,
		FreshHonestReads: b.spec.FreshReads,
		StallAtSize:      b.spec.StallAtSize, StallFor: b.spec.StallFor,
		AsyncDelayMax: b.spec.AsyncDelayMax,
		Window:        b.spec.Window,
		Trace:         rec,
	}
	if b.topo != nil {
		cfg.Topology = b.topo
		cfg.TopologyDelay = b.topoDelay
	}
	b.access(&cfg)
	return cfg
}

// Randomized executes one run on the randomized-access harness and
// returns the harness-level result (experiments analyse its FinalView,
// DecideTime, Mem, ...). It panics on sync scenarios and on the
// impossible config error (Bind validated everything seed-independent).
func (b *Bound) Randomized(seed uint64) *agreement.Result {
	if b.sync {
		panic("scenario: Randomized called on a sync scenario")
	}
	return agreement.MustRun(b.randomizedConfig(seed, nil), b.rule, b.newAdv())
}

// Sync executes one run on the synchronous-round harness. It panics on
// randomized scenarios.
func (b *Bound) Sync(seed uint64) *syncba.Result {
	if !b.sync {
		panic("scenario: Sync called on a randomized scenario")
	}
	r, err := syncba.Run(b.syncConfig(seed, nil), b.newSync())
	if err != nil {
		panic(err)
	}
	return r
}

func (b *Bound) syncConfig(seed uint64, rec *trace.Recorder) syncba.Config {
	return syncba.Config{
		N: b.spec.N, T: b.spec.T, Rounds: b.spec.Rounds, Delta: b.spec.Delta,
		Seed: seed, Inputs: b.inputs(seed), Crashes: b.spec.Crashes,
		Trace: rec,
	}
}

// Run executes one run at the given seed and returns the uniform Result.
func (b *Bound) Run(seed uint64) (*Result, error) {
	return b.RunTraced(seed, nil)
}

// RunTraced is Run with an optional event recorder (see internal/trace).
func (b *Bound) RunTraced(seed uint64, rec *trace.Recorder) (*Result, error) {
	if b.sync {
		r, err := syncba.Run(b.syncConfig(seed, rec), b.newSync())
		if err != nil {
			return nil, err
		}
		return &Result{
			Verdict:  r.Verdict,
			Decision: r.Outcome.Decision, Decided: r.Outcome.Decided,
			Roster: r.Roster, Inputs: r.Inputs,
			TotalAppends: r.FinalView.Size(), Duration: r.Duration,
			FinalView: r.FinalView, HasView: true,
		}, nil
	}
	r, err := agreement.RunRandomized(b.randomizedConfig(seed, rec), b.rule, b.newAdv())
	if err != nil {
		return nil, err
	}
	return fromRandomized(r), nil
}

// fromRandomized converts a randomized-harness result into the uniform
// scenario Result (shared by the trial path and the checkpointing sweep
// executor).
func fromRandomized(r *agreement.Result) *Result {
	return &Result{
		Verdict:  r.Verdict,
		Decision: r.Outcome.Decision, Decided: r.Outcome.Decided,
		Roster: r.Roster, Inputs: r.Inputs,
		TotalAppends: r.TotalAppends, ByzAppends: r.ByzAppends,
		Grants: r.Grants, Duration: r.Duration,
		FinalView: r.FinalView, HasView: true,
		DecideTime:   r.DecideTime,
		VisMeanLag:   r.VisMeanLag,
		MemHighWater: r.MemHighWater,
		Mem:          r.Mem, DecideViewSize: r.DecideViewSize,
	}
}

// mustRun is Run for the sweep executor: Bind has already validated the
// spec, so a run error is a programming error.
func (b *Bound) mustRun(seed uint64) *Result {
	r, err := b.Run(seed)
	if err != nil {
		panic(err)
	}
	return r
}

// TrialSummary aggregates repeated runs of one scenario.
type TrialSummary struct {
	Trials      int
	OK          int
	Agreement   int
	Validity    int
	Termination int
}

// Rate returns the all-properties success rate.
func (s TrialSummary) Rate() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.OK) / float64(s.Trials)
}

func (s TrialSummary) String() string {
	return fmt.Sprintf("ok %d/%d (agreement %d, validity %d, termination %d)",
		s.OK, s.Trials, s.Agreement, s.Validity, s.Termination)
}

// RunTrials executes trials runs with seeds spec.Seed, spec.Seed+1, ...
// and aggregates the verdicts.
func RunTrials(spec Spec, trials int) (TrialSummary, error) {
	var s TrialSummary
	b, err := Bind(spec)
	if err != nil {
		return s, err
	}
	for i := 0; i < trials; i++ {
		r, err := b.Run(spec.Seed + uint64(i))
		if err != nil {
			return s, err
		}
		s.Trials++
		if r.Verdict.OK() {
			s.OK++
		}
		if r.Verdict.Agreement {
			s.Agreement++
		}
		if r.Verdict.Validity {
			s.Validity++
		}
		if r.Verdict.Termination {
			s.Termination++
		}
	}
	return s, nil
}

package scenario

import (
	"math"
	"testing"
)

func TestRunSpecSweep(t *testing.T) {
	res, err := RunSpec(Spec{
		Protocol: Chain, N: 5, T: 1, Lambda: 1, K: 7,
		Trials:  3,
		Metrics: []string{"ok", "duration", "appends"},
		Sweep: []Axis{
			{Name: "lambda", Values: []Value{{Num: 0.5}, {Num: 1}}},
			{Name: "attack", Values: []Value{
				{Str: "silent", IsStr: true}, {Str: "tiebreak", IsStr: true},
			}},
		},
	}, Options{})
	if err != nil {
		t.Fatalf("RunSpec: %v", err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("want 4 points, got %d", len(res.Points))
	}
	if len(res.Axes) != 2 || res.Axes[0] != "lambda" || res.Axes[1] != "attack" {
		t.Fatalf("axes = %v", res.Axes)
	}
	for i, pt := range res.Points {
		if pt.Trials != 3 {
			t.Errorf("point %d: trials = %d", i, pt.Trials)
		}
		if len(pt.Coords) != 2 || len(pt.Metrics) != 3 {
			t.Fatalf("point %d: coords %v metrics %v", i, pt.Coords, pt.Metrics)
		}
		ok := pt.Metrics[0]
		if ok.Name != "ok" || ok.Kind != KindRate || ok.Count < 0 || ok.Count > 3 {
			t.Errorf("point %d: ok metric %+v", i, ok)
		}
		if ok.Value != float64(ok.Count)/3 {
			t.Errorf("point %d: rate value %v inconsistent with count %d", i, ok.Value, ok.Count)
		}
		dur := pt.Metrics[1]
		if dur.Kind != KindMean || dur.Count != 3 || dur.Value <= 0 {
			t.Errorf("point %d: duration metric %+v", i, dur)
		}
		if pt.Metrics[2].Value <= 0 {
			t.Errorf("point %d: appends metric %+v", i, pt.Metrics[2])
		}
	}
}

// TestRunSpecDeterministic: same spec, same result — the sweep executor
// must not introduce scheduling nondeterminism into the numbers.
func TestRunSpecDeterministic(t *testing.T) {
	spec := Spec{
		Protocol: Dag, N: 6, T: 2, Lambda: 1, K: 9,
		Attack: AttackPrivateChain, Trials: 4, Seed: 7,
		Metrics: []string{"ok", "byz-append-share"},
		Sweep:   []Axis{{Name: "lambda", Values: []Value{{Num: 0.5}, {Num: 2}}}},
	}
	a, err := RunSpec(spec, Options{})
	if err != nil {
		t.Fatalf("RunSpec: %v", err)
	}
	b, err := RunSpec(spec, Options{Workers: 1})
	if err != nil {
		t.Fatalf("RunSpec: %v", err)
	}
	for i := range a.Points {
		for j := range a.Points[i].Metrics {
			ma, mb := a.Points[i].Metrics[j], b.Points[i].Metrics[j]
			if ma.Value != mb.Value || ma.Count != mb.Count {
				t.Errorf("point %d metric %s: %v/%d vs %v/%d across worker counts",
					i, ma.Name, ma.Value, ma.Count, mb.Value, mb.Count)
			}
		}
	}
}

func TestRunSpecErrors(t *testing.T) {
	if _, err := RunSpec(Spec{Protocol: Chain, N: 4, Lambda: 1, K: 5,
		Metrics: []string{"vibes"}}, Options{}); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if _, err := RunSpec(Spec{Protocol: "nope", N: 4}, Options{}); err == nil {
		t.Fatal("bad spec accepted")
	}
	// Sync scenarios cannot evaluate randomized-only metrics; the error
	// must surface at bind time, not mid-sweep.
	if _, err := RunSpec(Spec{Protocol: Sync, N: 4, T: 1,
		Metrics: []string{"byz-appends"}}, Options{}); err == nil {
		t.Fatal("randomized-only metric accepted for sync")
	}
}

func TestRunSpecDefaultMetricsAndTrials(t *testing.T) {
	res, err := RunSpec(Spec{Protocol: Sync, N: 4, T: 1}, Options{})
	if err != nil {
		t.Fatalf("RunSpec: %v", err)
	}
	if len(res.Points) != 1 || res.Points[0].Trials != 1 {
		t.Fatalf("defaults: %+v", res.Points)
	}
	want := DefaultMetrics()
	if len(res.Points[0].Metrics) != len(want) {
		t.Fatalf("default metrics: %+v", res.Points[0].Metrics)
	}
	for i, m := range res.Points[0].Metrics {
		if m.Name != want[i] {
			t.Errorf("metric %d = %s, want %s", i, m.Name, want[i])
		}
	}
}

// TestMeanMetricNaN: a mean metric undefined in every run must come back
// NaN with Count 0 — not zero, which would be a fake data point. User
// metrics register through the same registry the built-ins use, so the
// test doubles as a check that the registry is extensible from outside
// init().
func TestMeanMetricNaN(t *testing.T) {
	Metrics.Register("test-undefined", "always NaN (test only)", MetricDef{
		Kind: KindMean,
		Bind: func(*Bound) (func(*Result) float64, error) {
			return func(*Result) float64 { return math.NaN() }, nil
		},
	})
	res, err := RunSpec(Spec{Protocol: Chain, N: 4, T: 1, Lambda: 1, K: 5,
		Trials: 3, Metrics: []string{"test-undefined"}}, Options{})
	if err != nil {
		t.Fatalf("RunSpec: %v", err)
	}
	m := res.Points[0].Metrics[0]
	if !math.IsNaN(m.Value) || m.Count != 0 {
		t.Fatalf("undefined mean metric = %+v, want NaN with count 0", m)
	}
}

// TestRunSpecCheckpointReuse: a confirm sweep with Checkpoint on must
// produce byte-identical metrics to the same sweep without it — prefix
// reuse is a wall-clock optimization, never a semantic one — and must
// actually capture and resume.
func TestRunSpecCheckpointReuse(t *testing.T) {
	base := Spec{
		Protocol: Dag, N: 6, T: 2, Lambda: 1, K: 15, Crashes: 1,
		Attack: AttackFlip, Trials: 3, Seed: 11,
		Metrics: []string{"ok", "duration", "appends", "decide-time"},
		Sweep:   []Axis{{Name: "confirm", Values: []Value{{Num: 0}, {Num: 2}, {Num: 5}}}},
	}
	plain, err := RunSpec(base, Options{})
	if err != nil {
		t.Fatalf("RunSpec: %v", err)
	}
	cp := base
	cp.Checkpoint = true
	for _, workers := range []int{0, 1} {
		got, err := RunSpec(cp, Options{Workers: workers})
		if err != nil {
			t.Fatalf("RunSpec(checkpoint, workers=%d): %v", workers, err)
		}
		for i := range plain.Points {
			for j := range plain.Points[i].Metrics {
				a, b := plain.Points[i].Metrics[j], got.Points[i].Metrics[j]
				if a.Value != b.Value || a.Count != b.Count {
					t.Errorf("workers=%d point %d metric %s: %v/%d with checkpoint, %v/%d without",
						workers, i, a.Name, b.Value, b.Count, a.Value, a.Count)
				}
			}
		}
		if got.Reuse == nil || got.Reuse.Captured != 3 || got.Reuse.Resumed != 6 {
			t.Errorf("workers=%d reuse stats %+v, want 3 captured / 6 resumed", workers, got.Reuse)
		}
	}
	if plain.Reuse != nil {
		t.Errorf("plain sweep reports reuse stats %+v", plain.Reuse)
	}
}

// TestRunSpecWindowed: a windowed sweep point decides exactly like the
// unbounded one and reports a lower memory high-water mark.
func TestRunSpecWindowed(t *testing.T) {
	base := Spec{
		Protocol: Chain, N: 6, T: 2, Lambda: 1, K: 41,
		Attack: AttackFlip, Trials: 3, Seed: 3,
		Metrics: []string{"ok", "duration", "appends", "mem-high-water"},
	}
	plain, err := RunSpec(base, Options{})
	if err != nil {
		t.Fatalf("RunSpec: %v", err)
	}
	win := base
	win.Window = 48
	windowed, err := RunSpec(win, Options{})
	if err != nil {
		t.Fatalf("RunSpec(window): %v", err)
	}
	for j := 0; j < 3; j++ { // ok, duration, appends agree exactly
		a, b := plain.Points[0].Metrics[j], windowed.Points[0].Metrics[j]
		if a.Value != b.Value || a.Count != b.Count {
			t.Errorf("metric %s: %v/%d windowed, %v/%d unbounded", a.Name, b.Value, b.Count, a.Value, a.Count)
		}
	}
	hw, whw := plain.Points[0].Metrics[3], windowed.Points[0].Metrics[3]
	if !(whw.Value < hw.Value) {
		t.Errorf("windowed high-water %v not below unbounded %v", whw.Value, hw.Value)
	}
}

package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// fullSpec sets every field of Spec to a non-zero value, so the
// round-trip test covers the whole schema.
func fullSpec() Spec {
	return Spec{
		Name:     "full",
		Doc:      "every field set",
		Protocol: Dag,
		N:        10, T: 3, Crashes: 1,
		Lambda: 0.5, Rates: []float64{1, 1, 1, 1, 1, 1, 1, 2, 2, 2},
		Delta: 1.5, K: 21, Rounds: 4,
		TieBreak: TieFirst, Pivot: PivotLongest, Confirm: 5,
		Attack: AttackPrivateChain, Margin: 6,
		AttackParams: map[string]Value{"segment": {Num: 3}, "root": {Str: "genesis", IsStr: true}},
		Inputs:       "split:4",
		Access:       AccessRoundRobin, FreshReads: true,
		Topology: TopoSmallWorld, TopologyParams: map[string]float64{"k": 2, "beta": 0.3},
		TopologyTable: [][]float64{{0, 1, 0.5}, {1, 2}},
		LinkDelay:     0.25, LinkJitter: 0.4, DelayDist: "uniform",
		StallAtSize: 30, StallFor: 2, AsyncDelayMax: 4,
		Window: 64, Checkpoint: true, // mutually exclusive at Bind; fine for the marshal round-trip
		Seed: 7, Trials: 12,
		Metrics: []string{"ok", "validity"},
		Sweep: []Axis{
			{Name: "lambda", Values: []Value{{Num: 0.25}, {Num: 1}}},
			{Name: "pivot", Values: []Value{{Str: "ghost", IsStr: true}, {Str: "longest", IsStr: true}}},
		},
	}
}

// TestSpecJSONRoundTrip marshals a fully populated spec and parses it
// back: every field must survive, including the polymorphic sweep values.
func TestSpecJSONRoundTrip(t *testing.T) {
	in := fullSpec()
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	out, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the spec:\n in: %+v\nout: %+v", in, out)
	}
}

// TestSpecRoundTripCoversEveryField guards the fixture itself: if a field
// is added to Spec and left zero in fullSpec, the round-trip test would
// pass vacuously for it. Every field must be non-zero.
func TestSpecRoundTripCoversEveryField(t *testing.T) {
	v := reflect.ValueOf(fullSpec())
	typ := v.Type()
	for i := 0; i < typ.NumField(); i++ {
		if v.Field(i).IsZero() {
			t.Errorf("fullSpec leaves field %s zero — the round-trip test does not cover it", typ.Field(i).Name)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"protocol": "dag", "n": 4, "lamdba": 0.5}`))
	if err == nil || !strings.Contains(err.Error(), "lamdba") {
		t.Fatalf("want unknown-field error naming the typo, got %v", err)
	}
}

func TestParseAxis(t *testing.T) {
	ax, err := ParseAxis("lambda=0.25,0.5,1")
	if err != nil {
		t.Fatalf("ParseAxis: %v", err)
	}
	if ax.Name != "lambda" || len(ax.Values) != 3 || ax.Values[0].Num != 0.25 || ax.Values[0].IsStr {
		t.Fatalf("ParseAxis parsed %+v", ax)
	}

	ax, err = ParseAxis("pivot=ghost,longest")
	if err != nil {
		t.Fatalf("ParseAxis: %v", err)
	}
	if !ax.Values[0].IsStr || ax.Values[0].Str != "ghost" {
		t.Fatalf("ParseAxis parsed %+v", ax)
	}

	for _, bad := range []string{"lambda", "=1,2", "lambda=", "lambda=1,,2", "bogus=1"} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("ParseAxis(%q): want error", bad)
		}
	}
}

// TestSweepAxesAllSettable: every advertised axis must be accepted by the
// expansion machinery (with a value of the right kind).
func TestSweepAxesAllSettable(t *testing.T) {
	samples := map[string]Value{
		"protocol":    {Str: "chain", IsStr: true},
		"tiebreak":    {Str: "first", IsStr: true},
		"pivot":       {Str: "ghost", IsStr: true},
		"attack":      {Str: "silent", IsStr: true},
		"inputs":      {Str: "same", IsStr: true},
		"access":      {Str: "poisson", IsStr: true},
		"fresh_reads": {Str: "true", IsStr: true},
		"topology":    {Str: "ring", IsStr: true},
		"delay_dist":  {Str: "uniform", IsStr: true},
	}
	for _, name := range SweepAxes() {
		v, ok := samples[name]
		if !ok {
			v = Value{Num: 2} // numeric axes
		}
		s := Spec{Protocol: Dag, N: 4, Sweep: []Axis{{Name: name, Values: []Value{v}}}}
		if _, err := s.Expand(); err != nil {
			t.Errorf("axis %q advertised by SweepAxes but not settable: %v", name, err)
		}
	}
}

func TestExpandCartesianOrder(t *testing.T) {
	s := Spec{
		Protocol: Chain, N: 4,
		Sweep: []Axis{
			{Name: "lambda", Values: []Value{{Num: 0.25}, {Num: 1}}},
			{Name: "k", Values: []Value{{Num: 11}, {Num: 21}, {Num: 41}}},
		},
	}
	points, err := s.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(points) != 6 {
		t.Fatalf("want 6 points, got %d", len(points))
	}
	// First axis outermost: lambda=0.25 covers the first three points.
	want := []struct {
		lambda float64
		k      int
	}{{0.25, 11}, {0.25, 21}, {0.25, 41}, {1, 11}, {1, 21}, {1, 41}}
	for i, p := range points {
		if p.Spec.Lambda != want[i].lambda || p.Spec.K != want[i].k {
			t.Errorf("point %d: got λ=%v k=%d, want λ=%v k=%d",
				i, p.Spec.Lambda, p.Spec.K, want[i].lambda, want[i].k)
		}
		if len(p.Coords) != 2 || p.Coords[0].Num != want[i].lambda || p.Coords[1].Num != float64(want[i].k) {
			t.Errorf("point %d coords = %v", i, p.Coords)
		}
		if p.Spec.Sweep != nil {
			t.Errorf("point %d retains a sweep", i)
		}
	}
}

func TestExpandErrors(t *testing.T) {
	cases := []Spec{
		{Protocol: Chain, N: 4, Sweep: []Axis{{Name: "lambda"}}},                                                // no values
		{Protocol: Chain, N: 4, Sweep: []Axis{{Name: "lambda", Values: []Value{{Str: "x", IsStr: true}}}}},      // string for float
		{Protocol: Chain, N: 4, Sweep: []Axis{{Name: "k", Values: []Value{{Num: 1.5}}}}},                        // non-integer for int
		{Protocol: Chain, N: 4, Sweep: []Axis{{Name: "pivot", Values: []Value{{Num: 3}}}}},                      // number for string
		{Protocol: Chain, N: 4, Sweep: []Axis{{Name: "bogus", Values: []Value{{Num: 1}}}}},                      // unknown axis
		{Protocol: Chain, N: 4, Sweep: []Axis{{Name: "fresh_reads", Values: []Value{{Str: "x", IsStr: true}}}}}, // bad bool
	}
	for i, s := range cases {
		if _, err := s.Expand(); err == nil {
			t.Errorf("case %d (%+v): want error", i, s.Sweep)
		}
	}
}

func TestValueJSON(t *testing.T) {
	var v Value
	if err := json.Unmarshal([]byte(`0.5`), &v); err != nil || v.IsStr || v.Num != 0.5 {
		t.Fatalf("number: %+v err %v", v, err)
	}
	if err := json.Unmarshal([]byte(`"ghost"`), &v); err != nil || !v.IsStr || v.Str != "ghost" {
		t.Fatalf("string: %+v err %v", v, err)
	}
	if v.Text() != "ghost" {
		t.Fatalf("Text() = %q", v.Text())
	}
	if ParseValue("1.5").Num != 1.5 || !ParseValue("x").IsStr {
		t.Fatal("ParseValue misclassifies")
	}
}
